# Repro of Vaswani & Zahorjan, SOSP 1991 — build/verify targets.
#
# `make ci` is the full gate: vet, build, race-enabled tests, and a
# one-iteration benchmark smoke pass over every exhibit. ROADMAP.md's
# tier-1 verify (`go build ./... && go test ./...`) is the `quick` target.

GO ?= go

.PHONY: all build vet test quick race bench-smoke bench-cache bench-compare bench-json bench-check serve-smoke obs-smoke cell-smoke analytic-smoke persist-smoke fleet-smoke ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# ROADMAP.md tier-1 verify.
quick: build test

race:
	$(GO) test -race ./...

# One iteration of every benchmark — proves the exhibit drivers still run,
# without the minutes-long full sweep.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# One iteration of the exact-cache fast-path benchmarks (flat-array cache,
# undo journal, single-replay plan/commit, block generation) — a dedicated
# gate so a regression in the hot path fails ci by name even though
# bench-smoke also sweeps these packages.
bench-cache:
	$(GO) test -run '^$$' -bench . -benchtime 1x \
		./internal/cache/ ./internal/cachemodel/ ./internal/memtrace/

# The worker-pool scaling benchmark (EXPERIMENTS.md "Campaign runner"):
# the same campaign at 1, 4 and 8 workers; outputs are bitwise identical,
# only the wall clock may differ.
bench-compare:
	$(GO) test -run '^$$' -bench 'BenchmarkComparePolicies$$' -cpu 1,4,8 -benchtime 2x .

# Machine-readable perf baseline (BENCH_cache.json): the cache/replay
# microbenchmarks at full benchtime plus the campaign-level exhibits and
# allocation-profile benchmarks at a few iterations, parsed into
# benchmark -> {ns/op, B/op, allocs/op}. benchjson is built (not `go run`)
# so the binary carries VCS build info and the baseline's _meta records the
# git revision that produced it; benchjson refuses to write a baseline from
# a dirty tree, so the recorded SHA always identifies the measured code.
bench-json:
	$(GO) build -o benchjson.bin ./cmd/benchjson
	{ $(GO) test -run '^$$' -bench . -benchmem \
		./internal/cache/ ./internal/cachemodel/ ./internal/memtrace/ ; \
	  $(GO) test -run '^$$' -benchmem -benchtime 2x \
		-bench 'BenchmarkComparePolicies$$|BenchmarkTable1$$|BenchmarkAblationExactEngine$$|BenchmarkSchedRunAllocs$$|BenchmarkSchedRunnerSteadyState$$|BenchmarkCompareCellAllocs$$' . ; } \
	| ./benchjson.bin -o BENCH_cache.json
	rm -f benchjson.bin

# The allocation regression gate: re-runs the campaign allocation-profile
# benchmarks and fails if any exceeds its committed BENCH_cache.json
# ceiling on B/op or allocs/op (ns/op is never gated — it varies with the
# host; allocation counts are properties of the code).
bench-check:
	$(GO) build -o benchjson.bin ./cmd/benchjson
	$(GO) test -run '^$$' -benchmem -benchtime 2x \
		-bench 'BenchmarkComparePolicies$$|BenchmarkSchedRunAllocs$$|BenchmarkSchedRunnerSteadyState$$|BenchmarkCompareCellAllocs$$' . \
	| ./benchjson.bin -check BENCH_cache.json
	rm -f benchjson.bin

# The affinityd gate: boots the daemon's serving core on a random port,
# POSTs the same table1 campaign twice, and requires the second response
# to be a result-cache hit with a byte-identical body; also proves SIGTERM
# drains the real binary cleanly. The service suite runs under -race.
serve-smoke:
	$(GO) test -race -count=1 ./cmd/affinityd/ ./internal/service/

# The observability gate: boots the serving core against the real
# simulation engine, POSTs a campaign, and requires the engine counters
# (reallocations, P^A/P^NA charges, flushes) and the request-span
# histograms (queue wait, execution) at /metrics to be nonzero — the
# whole stats path, scheduler to daemon, wired end to end.
obs-smoke:
	$(GO) test -race -count=1 -run 'TestObsSmoke' ./cmd/affinityd/

# The incremental-reuse gate: starts a table1 campaign, kills the daemon
# core mid-grid, and re-submits on a second server sharing the same cell
# cache — requiring that only the never-completed cells execute (per the
# affinityd_cell_* metrics) and that the resumed body is byte-identical
# to a cold, uninterrupted run.
cell-smoke:
	$(GO) test -race -count=1 -run 'TestCellSmoke' ./cmd/affinityd/

# The persistence gate: boots the real binary with a temp -store-dir,
# kill -9s it mid-campaign, reboots on the same directory, and requires
# the flushed cells to be served from disk with a final body
# byte-identical to a cold run — then a third boot to prove the
# completed campaign body itself is re-served from disk with zero cell
# executions (DESIGN.md "Persistence" crash-consistency contract).
persist-smoke:
	$(GO) test -race -count=1 -run 'TestPersistSmoke' ./cmd/affinityd/

# The fleet gate: builds the real binary, boots one coordinator and
# three workers (readiness by polling /v1/workers, never by sleeping),
# kill -9s a worker mid-campaign, and requires the coordinator to absorb
# the loss — at least one retried or hedged cell in affinityd_fleet_* —
# with a final body byte-identical to a cold single-process run.
fleet-smoke:
	$(GO) test -race -count=1 -run 'TestFleetSmoke' ./cmd/affinityd/

# The analytic-engine gate: re-runs the differential calibration grid on
# both engines and fails if any golden-promoted cell drifted past the 10%
# tolerance (analyticcalib check mode), then pins the engine-tier cache
# contract — engine=analytic and engine=sim derive distinct cell cache
# keys, the analytic body is byte-stable across runs, and engine=auto
# never selects analytic outside the promotion envelope.
analytic-smoke:
	$(GO) run ./cmd/analyticcalib -check
	$(GO) test -count=1 -run 'TestEngine|TestAnalytic|TestAuto|TestCalibration' ./internal/experiments/

ci: vet build race bench-smoke bench-cache bench-check serve-smoke obs-smoke cell-smoke persist-smoke fleet-smoke analytic-smoke
