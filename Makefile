# Repro of Vaswani & Zahorjan, SOSP 1991 — build/verify targets.
#
# `make ci` is the full gate: vet, build, race-enabled tests, and a
# one-iteration benchmark smoke pass over every exhibit. ROADMAP.md's
# tier-1 verify (`go build ./... && go test ./...`) is the `quick` target.

GO ?= go

.PHONY: all build vet test quick race bench-smoke bench-compare ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# ROADMAP.md tier-1 verify.
quick: build test

race:
	$(GO) test -race ./...

# One iteration of every benchmark — proves the exhibit drivers still run,
# without the minutes-long full sweep.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# The worker-pool scaling benchmark (EXPERIMENTS.md "Campaign runner"):
# the same campaign at 1, 4 and 8 workers; outputs are bitwise identical,
# only the wall clock may differ.
bench-compare:
	$(GO) test -run '^$$' -bench 'BenchmarkComparePolicies$$' -cpu 1,4,8 -benchtime 2x .

ci: vet build race bench-smoke
