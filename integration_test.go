package repro

import (
	"math"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// TestModelReproducesMeasurementAtBaseline verifies the parameter-extraction
// contract: the analytic model, parameterized from a scheduling experiment
// per Section 7.3, must reproduce the measured response time exactly at
// speed = cache = 1 (work is backed out of equation (1), so this is a
// round-trip check on the whole extraction pipeline).
func TestModelReproducesMeasurementAtBaseline(t *testing.T) {
	opts := experiments.FastOptions()
	mix, _ := workload.MixByNumber(5)
	policies := []string{"Equipartition", "Dynamic", "Dyn-Aff"}
	cr, err := experiments.ComparePolicies(opts, []workload.Mix{mix}, policies)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := experiments.Table1(opts)
	if err != nil {
		t.Fatal(err)
	}
	scen, err := experiments.FutureScenarios(cr, t1)
	if err != nil {
		t.Fatal(err)
	}
	for key, sc := range scen {
		for pol, params := range sc.Policies {
			modelRT := params.ResponseTime()
			// Recover the measured RT for this (mix, app, policy).
			var measured float64
			n := 0
			for _, js := range cr.Summaries[key.Mix][pol] {
				if js.App == key.App {
					measured += js.MeanRT()
					n++
				}
			}
			measured /= float64(n)
			if math.Abs(modelRT-measured)/measured > 0.01 {
				t.Errorf("%v/%s: model RT %.3f vs measured %.3f", key, pol, modelRT, measured)
			}
		}
	}
}

// TestPipelineDeterminism verifies that the entire experiment pipeline is
// reproducible: identical options produce byte-identical reports.
func TestPipelineDeterminism(t *testing.T) {
	render := func() string {
		opts := experiments.FastOptions()
		opts.Replications = 1
		mix, _ := workload.MixByNumber(5)
		cr, err := experiments.ComparePolicies(opts, []workload.Mix{mix},
			[]string{"Equipartition", "Dynamic", "Dyn-Aff"})
		if err != nil {
			t.Fatal(err)
		}
		tab, err := cr.Figure5Report([]string{"Dynamic", "Dyn-Aff"})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := tab.Write(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a, b := render(), render()
	if a != b {
		t.Errorf("pipeline not deterministic:\n%s\nvs\n%s", a, b)
	}
}

// TestPaperConclusionsAtPaperScale is the capstone: at full paper scale
// (one replication to keep it minutes-fast), every headline conclusion of
// the paper must hold. Skipped under -short.
func TestPaperConclusionsAtPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run is tens of seconds")
	}
	opts := experiments.DefaultOptions()
	opts.Replications = 1
	opts.MeasureBudget = 10 * simtime.Second
	policies := []string{"Equipartition", "Dynamic", "Dyn-Aff", "Dyn-Aff-Delay"}
	cr, err := experiments.ComparePolicies(opts, workload.Mixes(), policies)
	if err != nil {
		t.Fatal(err)
	}

	// Conclusion 1 (Fig 5): dynamic policies beat or match Equipartition
	// for every job of every mix.
	for _, mix := range workload.Mixes() {
		for _, pol := range []string{"Dynamic", "Dyn-Aff", "Dyn-Aff-Delay"} {
			rel, err := cr.Relative(mix.Number, pol, "Equipartition")
			if err != nil {
				t.Fatal(err)
			}
			for i, r := range rel {
				if r > 1.03 {
					t.Errorf("mix #%d job %d: %s relative RT %.3f > 1", mix.Number, i, pol, r)
				}
			}
		}
	}

	// Conclusion 2 (Table 3): the dynamic variants are nearly identical
	// today, while their %affinity differs dramatically.
	sums := cr.Summaries[5]
	dynAffGap := math.Abs(sums["Dynamic"][1].MeanRT()-sums["Dyn-Aff"][1].MeanRT()) /
		sums["Dynamic"][1].MeanRT()
	if dynAffGap > 0.05 {
		t.Errorf("Dynamic vs Dyn-Aff RT gap %.3f, want < 5%%", dynAffGap)
	}
	if sums["Dyn-Aff"][1].PctAffinity < 3*sums["Dynamic"][1].PctAffinity {
		t.Errorf("affinity contrast too weak: %v vs %v",
			sums["Dyn-Aff"][1].PctAffinity, sums["Dynamic"][1].PctAffinity)
	}

	// Conclusion 3 (Table 3): yield-delay substantially reduces
	// reallocations.
	if sums["Dyn-Aff-Delay"][1].Reallocations > 0.8*sums["Dyn-Aff"][1].Reallocations {
		t.Errorf("yield delay barely reduced reallocations: %v vs %v",
			sums["Dyn-Aff-Delay"][1].Reallocations, sums["Dyn-Aff"][1].Reallocations)
	}

	// Conclusion 4 (Figs 8-13): Dynamic's relative RT rises with the
	// speed×cache product and crosses 1.0; the affinity variants cross
	// later or not at all.
	t1, err := experiments.Table1(opts)
	if err != nil {
		t.Fatal(err)
	}
	scen, err := experiments.FutureScenarios(cr, t1)
	if err != nil {
		t.Fatal(err)
	}
	sc := scen[experiments.ScenarioKey{Mix: 5, App: "GRAVITY"}]
	products := model.Products(1<<14, 4)
	crossDyn, err := sc.Crossover("Dynamic", products)
	if err != nil {
		t.Fatal(err)
	}
	if crossDyn == 0 {
		t.Error("Dynamic never crossed Equipartition — Section 7's rise is missing")
	}
	crossAff, err := sc.Crossover("Dyn-Aff", products)
	if err != nil {
		t.Fatal(err)
	}
	if crossAff != 0 && crossAff < crossDyn {
		t.Errorf("Dyn-Aff crossed (%v) before Dynamic (%v)", crossAff, crossDyn)
	}
	crossDelay, err := sc.Crossover("Dyn-Aff-Delay", products)
	if err != nil {
		t.Fatal(err)
	}
	if crossDelay != 0 && crossAff != 0 && crossDelay < crossAff {
		t.Errorf("Dyn-Aff-Delay crossed (%v) before Dyn-Aff (%v)", crossDelay, crossAff)
	}
}
