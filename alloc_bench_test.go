package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sched"
	"repro/internal/workload"
)

// BenchmarkSchedRunAllocs measures the allocation profile of one
// scheduling run (mix #5 at test scale) — the unit of work every campaign
// cell repeats Replications times.
func BenchmarkSchedRunAllocs(b *testing.B) {
	opts := experiments.FastOptions()
	mix5, _ := workload.MixByNumber(5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol, _ := core.ByName("Dyn-Aff")
		apps := mix5.Apps(opts.Seed)
		_, err := sched.Run(sched.Config{
			Machine: opts.Machine,
			Policy:  pol,
			Apps:    apps,
			Seed:    opts.Seed,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedRunnerSteadyState measures the steady-state allocation
// profile of a reused Runner: the same cell as BenchmarkSchedRunAllocs but
// with the engine substrate warmed by a first run. This is the per-run cost
// a campaign worker actually pays, and the number the bench-check gate holds
// near zero.
func BenchmarkSchedRunnerSteadyState(b *testing.B) {
	opts := experiments.FastOptions()
	mix5, _ := workload.MixByNumber(5)
	apps := mix5.Apps(opts.Seed)
	cfg := sched.Config{
		Machine: opts.Machine,
		Apps:    apps,
		Seed:    opts.Seed,
	}
	r := sched.NewRunner()
	run := func() {
		// Policies carry per-run state and are rebuilt each run, exactly as
		// the campaign workers do.
		pol, _ := core.ByName("Dyn-Aff")
		cfg.Policy = pol
		if _, err := r.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	run() // warm the substrate
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

// BenchmarkCompareCellAllocs measures one full ComparePolicies cell
// (one mix, one policy, FastOptions replications), run sequentially.
func BenchmarkCompareCellAllocs(b *testing.B) {
	opts := experiments.FastOptions()
	opts.Workers = 1
	mix5, _ := workload.MixByNumber(5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := experiments.ComparePolicies(opts, []workload.Mix{mix5}, []string{"Dyn-Aff"})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkComparePolicies runs the full test-scale comparison campaign
// (6 mixes x 4 policies x 2 replications = 48 simulation cells) with
// Workers = GOMAXPROCS, so `go test -bench=ComparePolicies -cpu=1,4,8`
// sweeps the worker-pool width. The campaign's output is bitwise identical
// at every width; only the wall clock changes.
func BenchmarkComparePolicies(b *testing.B) {
	opts := experiments.FastOptions()
	policies := []string{"Equipartition", "Dynamic", "Dyn-Aff", "Dyn-Aff-Delay"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := experiments.ComparePolicies(opts, workload.Mixes(), policies)
		if err != nil {
			b.Fatal(err)
		}
	}
}
