// Command measurepenalty reproduces the paper's Table 1 in isolation: the
// per-context-switch cache penalties P^A and P^NA for each application,
// each intervening application, and each rescheduling interval Q, measured
// with the Section-4 stationary/migrating/multiprogrammed protocol against
// the exact cache simulator.
//
// Usage:
//
//	measurepenalty [-budget SEC] [-seed N] [-csv] [-detail] [-workers N] [-engine sim]
//
// -detail additionally prints the underlying run data (response times,
// switch counts, miss counts) for each regime.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliflags"
	"repro/internal/experiments"
	"repro/internal/measure"
	"repro/internal/report"
	"repro/internal/simtime"
)

func main() {
	common := cliflags.Register(flag.CommandLine)
	common.RegisterEngine(flag.CommandLine)
	budget := flag.Float64("budget", 20, "per-run compute budget (seconds)")
	csv := flag.Bool("csv", false, "emit CSV")
	detail := flag.Bool("detail", false, "print per-regime run details")
	flag.Parse()
	// Table 1 has no simulation grid: -engine exists for CLI uniformity
	// but only the simulator tier is meaningful, and asking for another
	// must fail fast with the service's field-path error rather than be
	// silently ignored.
	if err := experiments.ValidateEngine("table1", common.Engine); err != nil {
		fmt.Fprintln(os.Stderr, "measurepenalty:", err)
		os.Exit(1)
	}

	opts := experiments.DefaultOptions()
	opts.MeasureBudget = simtime.Seconds(*budget)
	common.Apply(&opts)
	stopProf, err := common.StartProfiling()
	if err != nil {
		fmt.Fprintln(os.Stderr, "measurepenalty:", err)
		os.Exit(1)
	}
	err = run(opts, *csv, *detail)
	if err == nil {
		err = common.WriteStats(os.Stdout)
	}
	if perr := stopProf(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "measurepenalty:", err)
		os.Exit(1)
	}
}

func run(opts experiments.Options, csv, detail bool) error {
	t1, err := experiments.Table1(opts)
	if err != nil {
		return err
	}
	for _, t := range experiments.Table1Report(t1) {
		if csv {
			if err := t.WriteCSV(os.Stdout); err != nil {
				return err
			}
		} else {
			if err := t.Write(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
	}
	if detail {
		return writeDetail(t1)
	}
	return nil
}

func writeDetail(t1 measure.Table1) error {
	t := report.Table{
		Title: "Per-regime run detail",
		Headers: []string{"Q", "measured", "regime", "intervening",
			"RT (s)", "switches", "misses", "miss ratio"},
	}
	addRun := func(q simtime.Duration, app, intervening string, r measure.RunResult) {
		ratio := 0.0
		if r.Accesses > 0 {
			ratio = float64(r.Misses) / float64(r.Accesses)
		}
		t.AddRow(q.String(), app, r.Regime.String(), intervening,
			report.F(r.ResponseTime.SecondsF(), 3),
			fmt.Sprintf("%d", r.Switches),
			fmt.Sprintf("%d", r.Misses),
			report.F(ratio, 4))
	}
	for _, q := range t1.Qs {
		for _, app := range t1.Apps {
			pen := t1.Cells[q][app]
			addRun(q, app, "-", pen.Stationary)
			addRun(q, app, "-", pen.Migrating)
			for _, iv := range t1.Apps {
				if r, ok := pen.Multi[iv]; ok {
					addRun(q, app, iv, r)
				}
			}
		}
	}
	return t.Write(os.Stdout)
}
