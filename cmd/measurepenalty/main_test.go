package main

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/simtime"
)

func TestRunSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement is seconds-long")
	}
	opts := experiments.DefaultOptions()
	opts.MeasureBudget = 3 * simtime.Second
	for _, mode := range []struct{ csv, detail bool }{{false, true}, {true, false}} {
		if err := run(opts, mode.csv, mode.detail); err != nil {
			t.Fatalf("csv=%v detail=%v: %v", mode.csv, mode.detail, err)
		}
	}
}

func TestRunRejectsBadOptions(t *testing.T) {
	opts := experiments.DefaultOptions()
	opts.MeasureBudget = 0
	if err := run(opts, false, false); err == nil {
		t.Error("zero budget accepted")
	}
}
