package main

import (
	"testing"

	"repro/internal/experiments"
)

func TestRunFast(t *testing.T) {
	if testing.Short() {
		t.Skip("extrapolation is seconds-long")
	}
	opts := experiments.FastOptions()
	opts.Replications = 1
	if err := run(opts, 64, false); err != nil {
		t.Fatal(err)
	}
	if err := run(opts, 64, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadOptions(t *testing.T) {
	opts := experiments.FastOptions()
	opts.Replications = 0
	if err := run(opts, 64, false); err == nil {
		t.Error("zero replications accepted")
	}
}

func TestRunSimulatedFast(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated scaling is seconds-long")
	}
	opts := experiments.FastOptions()
	opts.Replications = 1
	if err := runSimulated(opts); err != nil {
		t.Fatal(err)
	}
}
