// Command futuremodel reproduces the paper's Section-7 extrapolation in
// isolation: it runs the scheduling experiments and the Table-1 penalty
// measurements, parameterizes the extended response-time model (Figure 7),
// and sweeps the processor-speed × cache-size product to regenerate
// Figures 8-13, including the crossover points at which each dynamic policy
// stops beating Equipartition.
//
// Usage:
//
//	futuremodel [-procs N] [-reps N] [-seed N] [-fast] [-maxproduct P] [-csv] [-simulate] [-workers N] [-engine sim|analytic|auto]
//
// -simulate additionally re-runs the scheduling simulation on the scaled
// machines themselves and prints simulated vs model relative response
// times — a validation the paper's authors could not perform.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/cliflags"
	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	common := cliflags.Register(flag.CommandLine)
	common.RegisterEngine(flag.CommandLine)
	procs := flag.Int("procs", 16, "number of processors")
	reps := flag.Int("reps", 5, "replications per cell")
	fast := flag.Bool("fast", false, "scaled-down quick mode")
	maxProduct := flag.Float64("maxproduct", 4096, "largest speed*cache product")
	csv := flag.Bool("csv", false, "emit sweep data as CSV instead of charts")
	simulate := flag.Bool("simulate", false, "also simulate the scaled machines directly")
	flag.Parse()
	// The future sweep takes any tier, but an unknown -engine value must
	// fail here, not be silently folded to the simulator downstream.
	if err := experiments.ValidateEngine("future", common.Engine); err != nil {
		fmt.Fprintln(os.Stderr, "futuremodel:", err)
		os.Exit(1)
	}

	opts := experiments.DefaultOptions()
	if *fast {
		opts = experiments.FastOptions()
	}
	opts.Machine.Processors = *procs
	opts.Replications = *reps
	common.Apply(&opts)
	stopProf, err := common.StartProfiling()
	if err != nil {
		fmt.Fprintln(os.Stderr, "futuremodel:", err)
		os.Exit(1)
	}
	err = run(opts, *maxProduct, *csv)
	if err == nil && *simulate {
		err = runSimulated(opts)
	}
	if err == nil {
		err = common.WriteStats(os.Stdout)
	}
	if perr := stopProf(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "futuremodel:", err)
		os.Exit(1)
	}
}

// runSimulated re-runs mix #5 on directly scaled machines and prints the
// simulated relative response times next to the analytic model's.
func runSimulated(opts experiments.Options) error {
	mix, err := workload.MixByNumber(5)
	if err != nil {
		return err
	}
	policies := []string{"Dynamic", "Dyn-Aff", "Dyn-Aff-Delay"}
	products := []float64{1, 16, 64, 256, 1024}
	pts, err := experiments.FutureSimulated(opts, mix, policies, products)
	if err != nil {
		return err
	}
	// Model predictions for the same products.
	cr, err := experiments.ComparePolicies(opts, []workload.Mix{mix},
		append([]string{"Equipartition"}, policies...))
	if err != nil {
		return err
	}
	t1, err := experiments.Table1(opts)
	if err != nil {
		return err
	}
	scen, err := experiments.FutureScenarios(cr, t1)
	if err != nil {
		return err
	}
	sc := scen[experiments.ScenarioKey{Mix: 5, App: "GRAVITY"}]
	modelRel := make(map[string][]float64)
	for _, pol := range policies {
		ys, err := sc.SweepProduct(pol, products)
		if err != nil {
			return err
		}
		modelRel[pol] = ys
	}
	tab := experiments.FutureSimTable(pts, modelRel, policies)
	tab.Title = "Mix #5 — simulated scaled machines vs analytic model (model column: GRAVITY job)"
	return tab.Write(os.Stdout)
}

func run(opts experiments.Options, maxProduct float64, csv bool) error {
	policies := []string{"Equipartition", "Dynamic", "Dyn-Aff", "Dyn-Aff-Delay"}
	cr, err := experiments.ComparePolicies(opts, workload.Mixes(), policies)
	if err != nil {
		return err
	}
	t1, err := experiments.Table1(opts)
	if err != nil {
		return err
	}
	scen, err := experiments.FutureScenarios(cr, t1)
	if err != nil {
		return err
	}
	dyn := []string{"Dynamic", "Dyn-Aff", "Dyn-Aff-Delay"}

	if csv {
		return writeCSV(scen, dyn, maxProduct)
	}
	charts, err := experiments.FutureCharts(cr, scen, dyn, maxProduct)
	if err != nil {
		return err
	}
	for _, ch := range charts {
		if err := ch.Write(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return writeCrossovers(scen, dyn, maxProduct)
}

func sortedKeys(scen map[experiments.ScenarioKey]model.Scenario) []experiments.ScenarioKey {
	var keys []experiments.ScenarioKey
	for k := range scen {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Mix != keys[j].Mix {
			return keys[i].Mix < keys[j].Mix
		}
		return keys[i].App < keys[j].App
	})
	return keys
}

func writeCSV(scen map[experiments.ScenarioKey]model.Scenario, policies []string, maxProduct float64) error {
	products := model.Products(maxProduct, 2)
	t := report.Table{Headers: []string{"scenario", "policy", "product", "relative_rt"}}
	for _, k := range sortedKeys(scen) {
		sc := scen[k]
		for _, pol := range policies {
			if _, ok := sc.Policies[pol]; !ok {
				continue
			}
			ys, err := sc.SweepProduct(pol, products)
			if err != nil {
				return err
			}
			for i, y := range ys {
				t.AddRow(k.String(), pol, report.F(products[i], 2), report.F(y, 5))
			}
		}
	}
	return t.WriteCSV(os.Stdout)
}

func writeCrossovers(scen map[experiments.ScenarioKey]model.Scenario, policies []string, maxProduct float64) error {
	products := model.Products(maxProduct, 4)
	t := report.Table{
		Title:   "Crossover products (relative RT reaches 1.0; 0 = never within sweep)",
		Headers: append([]string{"scenario"}, policies...),
	}
	for _, k := range sortedKeys(scen) {
		sc := scen[k]
		row := []string{k.String()}
		for _, pol := range policies {
			if _, ok := sc.Policies[pol]; !ok {
				row = append(row, "-")
				continue
			}
			cross, err := sc.Crossover(pol, products)
			if err != nil {
				return err
			}
			row = append(row, report.F(cross, 0))
		}
		t.AddRow(row...)
	}
	return t.Write(os.Stdout)
}
