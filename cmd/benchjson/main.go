// benchjson converts `go test -bench -benchmem` output on stdin into a
// machine-readable JSON perf baseline: benchmark name -> ns/op, B/op,
// allocs/op. The Makefile's bench-json target pipes the cache/replay/
// campaign benchmarks through it to produce BENCH_cache.json, the
// committed baseline future PRs diff against.
//
// The GOMAXPROCS suffix (-16) is stripped from names so baselines compare
// across machines; the parallelism used, the git revision, and the engine
// version are recorded once under "_meta" so a committed baseline says
// exactly which code produced it.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"

	"repro/internal/version"
)

// Result is one benchmark's parsed measurements. Zero-valued fields were
// absent from the input line (e.g. B/op without -benchmem).
type Result struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// benchLine matches `BenchmarkName-N  iters  12.3 ns/op  45 B/op  6 allocs/op`.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+[0-9.]+ MB/s)?(?:\s+([0-9.]+) B/op)?(?:\s+([0-9.]+) allocs/op)?`)

func main() {
	out := flag.String("o", "", "output path (default stdout)")
	flag.Parse()
	if err := run(*out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func run(out string) error {
	results := make(map[string]any)
	procs := "1" // go test omits the -N name suffix when GOMAXPROCS is 1
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		r := Result{}
		r.Iterations, _ = strconv.ParseInt(m[3], 10, 64)
		r.NsPerOp, _ = strconv.ParseFloat(m[4], 64)
		if m[5] != "" {
			r.BPerOp, _ = strconv.ParseFloat(m[5], 64)
		}
		if m[6] != "" {
			r.AllocsPerOp, _ = strconv.ParseFloat(m[6], 64)
		}
		if m[2] != "" {
			procs = m[2]
		}
		results[m[1]] = r
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	results["_meta"] = map[string]string{
		"gomaxprocs":     procs,
		"git_sha":        version.GitSHA(),
		"engine_version": version.Engine,
	}
	buf, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(out, buf, 0o644)
}
