// benchjson converts `go test -bench -benchmem` output on stdin into a
// machine-readable JSON perf baseline: benchmark name -> ns/op, B/op,
// allocs/op. The Makefile's bench-json target pipes the cache/replay/
// campaign benchmarks through it to produce BENCH_cache.json, the
// committed baseline future PRs diff against.
//
// With -check, benchjson instead compares the benchmarks on stdin against
// an existing baseline and fails when any benchmark's B/op or allocs/op
// exceeds its baseline ceiling — the allocation regression gate wired into
// `make ci` via bench-check. Wall-clock (ns/op) is reported as a ratio
// against the baseline but never gated: it varies with the host, while
// allocation counts are properties of the code.
//
// The GOMAXPROCS suffix (-16) is stripped from names so baselines compare
// across machines; the parallelism used, the git revision, and the engine
// version are recorded once under "_meta" so a committed baseline says
// exactly which code produced it. Writing a baseline from a dirty working
// tree is refused (override with -allow-dirty): a baseline whose recorded
// SHA does not identify the measured code is worse than none.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/version"
)

// Result is one benchmark's parsed measurements. Zero-valued fields were
// absent from the input line (e.g. B/op without -benchmem).
type Result struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Ceiling slack for -check: a fresh measurement may exceed the baseline by
// the relative slack plus a small absolute allowance (which keeps
// near-zero baselines from flaking on a single extra allocation) without
// failing the gate. A real regression — the kind the gate exists for —
// blows through both.
const (
	relSlack    = 0.25
	absSlackB   = 2048
	absSlackAll = 16
)

// benchLine matches `BenchmarkName-N  iters  12.3 ns/op  45 B/op  6 allocs/op`.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+[0-9.]+ MB/s)?(?:\s+([0-9.]+) B/op)?(?:\s+([0-9.]+) allocs/op)?`)

func main() {
	out := flag.String("o", "", "output path (default stdout)")
	check := flag.String("check", "", "baseline JSON to compare stdin against instead of writing")
	allowDirty := flag.Bool("allow-dirty", false, "permit writing a baseline from a dirty working tree")
	flag.Parse()
	var err error
	if *check != "" {
		err = runCheck(*check)
	} else {
		err = runWrite(*out, *allowDirty)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseBench reads `go test -bench` output, returning parsed results and
// the GOMAXPROCS the benchmarks ran at.
func parseBench(r io.Reader) (map[string]Result, string, error) {
	results := make(map[string]Result)
	procs := "1" // go test omits the -N name suffix when GOMAXPROCS is 1
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		r := Result{}
		r.Iterations, _ = strconv.ParseInt(m[3], 10, 64)
		r.NsPerOp, _ = strconv.ParseFloat(m[4], 64)
		if m[5] != "" {
			r.BPerOp, _ = strconv.ParseFloat(m[5], 64)
		}
		if m[6] != "" {
			r.AllocsPerOp, _ = strconv.ParseFloat(m[6], 64)
		}
		if m[2] != "" {
			procs = m[2]
		}
		results[m[1]] = r
	}
	if err := sc.Err(); err != nil {
		return nil, "", err
	}
	if len(results) == 0 {
		return nil, "", fmt.Errorf("no benchmark lines found on stdin")
	}
	return results, procs, nil
}

func runWrite(out string, allowDirty bool) error {
	sha := version.GitSHA()
	if strings.HasSuffix(sha, "-dirty") && !allowDirty {
		return fmt.Errorf("refusing to write a baseline from a dirty working tree (%s); commit first or pass -allow-dirty", sha)
	}
	parsed, procs, err := parseBench(os.Stdin)
	if err != nil {
		return err
	}
	results := make(map[string]any, len(parsed)+1)
	for name, r := range parsed {
		results[name] = r
	}
	results["_meta"] = map[string]string{
		"gomaxprocs":     procs,
		"git_sha":        sha,
		"engine_version": version.Engine,
	}
	buf, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(out, buf, 0o644)
}

// runCheck compares the benchmarks on stdin against the baseline file and
// fails when any shared benchmark exceeds its B/op or allocs/op ceiling.
// Wall-clock is printed as a fresh/baseline time-per-op ratio alongside the
// gated columns, purely for the reader: a 3x allocation-neutral slowdown
// should be visible in ci output even though only allocations can fail it.
func runCheck(baselinePath string) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var baseline map[string]json.RawMessage
	if err := json.Unmarshal(raw, &baseline); err != nil {
		return fmt.Errorf("parsing %s: %w", baselinePath, err)
	}
	fresh, _, err := parseBench(os.Stdin)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(fresh))
	for name := range fresh {
		names = append(names, name)
	}
	sort.Strings(names)
	compared := 0
	var failures []string
	for _, name := range names {
		got := fresh[name]
		rawBase, ok := baseline[name]
		if !ok || name == "_meta" {
			continue
		}
		var base Result
		if err := json.Unmarshal(rawBase, &base); err != nil {
			return fmt.Errorf("baseline entry %s: %w", name, err)
		}
		compared++
		ceilB := base.BPerOp*(1+relSlack) + absSlackB
		ceilA := base.AllocsPerOp*(1+relSlack) + absSlackAll
		status := "ok"
		if got.BPerOp > ceilB || got.AllocsPerOp > ceilA {
			status = "FAIL"
			failures = append(failures, name)
		}
		timeRatio := "time n/a"
		if base.NsPerOp > 0 {
			timeRatio = fmt.Sprintf("time %5.2fx", got.NsPerOp/base.NsPerOp)
		}
		fmt.Printf("%-4s %-40s %12.0f B/op (ceiling %12.0f)  %9.0f allocs/op (ceiling %9.0f)  %s\n",
			status, name, got.BPerOp, ceilB, got.AllocsPerOp, ceilA, timeRatio)
	}
	if compared == 0 {
		return fmt.Errorf("no benchmarks on stdin matched the baseline")
	}
	if len(failures) > 0 {
		return fmt.Errorf("allocation ceilings exceeded: %s", strings.Join(failures, ", "))
	}
	fmt.Printf("bench-check: %d benchmark(s) within allocation ceilings (time ratios informational)\n", compared)
	return nil
}
