package main

import (
	"testing"
)

func TestParse(t *testing.T) {
	cmd, c, err := parse([]string{"compare", "-fast", "-mix", "5", "-reps", "1"})
	if err != nil {
		t.Fatal(err)
	}
	if cmd != "compare" || c.mix != 5 || c.opts.Replications != 1 {
		t.Fatalf("parse wrong: cmd=%q mix=%d reps=%d", cmd, c.mix, c.opts.Replications)
	}
	if _, _, err := parse(nil); err == nil {
		t.Error("missing subcommand accepted")
	}
	if _, _, err := parse([]string{"compare", "-badflag"}); err == nil {
		t.Error("bad flag accepted")
	}
	if _, _, err := parse([]string{"compare", "-procs", "0"}); err == nil {
		t.Error("zero procs accepted")
	}
}

func TestRunUnknownSubcommand(t *testing.T) {
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
}

func TestSubcommandsFast(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration is seconds-long")
	}
	cases := [][]string{
		{"characterize", "-fast"},
		{"measure", "-fast", "-budget", "3"},
		{"compare", "-fast", "-reps", "1", "-mix", "5", "-timeshare"},
		{"future", "-fast", "-reps", "1", "-mix", "5", "-maxproduct", "64"},
		{"trace", "-fast", "-mix", "4", "-policy", "Dynamic", "-window", "2"},
	}
	for _, args := range cases {
		args := args
		t.Run(args[0], func(t *testing.T) {
			if err := run(args); err != nil {
				t.Fatalf("affinitysim %v: %v", args, err)
			}
		})
	}
}

func TestTraceRejectsBadPolicy(t *testing.T) {
	if err := run([]string{"trace", "-fast", "-policy", "bogus"}); err == nil {
		t.Error("bogus trace policy accepted")
	}
}

func TestCSVMode(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration is seconds-long")
	}
	if err := run([]string{"characterize", "-fast", "-csv"}); err != nil {
		t.Fatal(err)
	}
}
