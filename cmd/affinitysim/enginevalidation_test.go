package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestEngineFlagValidation is the cross-CLI table test for -engine: every
// binary that registers the flag must reject a tier its campaign kind
// cannot run — analytic/auto on the non-grid kinds, unknown names
// anywhere — with the service's "params.engine" field-path error, before
// any simulation starts. One positive case per grid CLI pins that valid
// tiers still parse.
func TestEngineFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds four binaries in -short mode")
	}
	dir := t.TempDir()
	bins := map[string]string{}
	for _, cli := range []string{"affinitysim", "measurepenalty", "policycompare", "futuremodel"} {
		bin := filepath.Join(dir, cli)
		build := exec.Command("go", "build", "-o", bin, "../"+cli)
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", cli, err, out)
		}
		bins[cli] = bin
	}

	cases := []struct {
		name    string
		cli     string
		args    []string
		wantErr string // "" = must succeed
	}{
		{"affinitysim measure rejects analytic", "affinitysim",
			[]string{"measure", "-engine", "analytic"}, "params.engine"},
		{"affinitysim characterize rejects auto", "affinitysim",
			[]string{"characterize", "-engine", "auto"}, "params.engine"},
		{"affinitysim extras rejects analytic", "affinitysim",
			[]string{"extras", "-engine", "analytic"}, "params.engine"},
		{"affinitysim trace rejects analytic", "affinitysim",
			[]string{"trace", "-engine", "analytic"}, "params.engine"},
		{"affinitysim compare rejects unknown tier", "affinitysim",
			[]string{"compare", "-engine", "bogus"}, "params.engine"},
		{"affinitysim compare accepts analytic", "affinitysim",
			[]string{"compare", "-engine", "analytic", "-fast", "-mix", "5", "-reps", "1"}, ""},
		{"measurepenalty rejects analytic", "measurepenalty",
			[]string{"-engine", "analytic"}, "params.engine"},
		{"measurepenalty rejects unknown tier", "measurepenalty",
			[]string{"-engine", "bogus"}, "params.engine"},
		{"policycompare rejects unknown tier", "policycompare",
			[]string{"-engine", "bogus"}, "params.engine"},
		{"policycompare accepts analytic", "policycompare",
			[]string{"-engine", "analytic", "-fast", "-mix", "5", "-reps", "1"}, ""},
		{"futuremodel rejects unknown tier", "futuremodel",
			[]string{"-engine", "bogus"}, "params.engine"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := exec.Command(bins[tc.cli], tc.args...).CombinedOutput()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("%s %v failed: %v\n%s", tc.cli, tc.args, err, out)
				}
				return
			}
			if err == nil {
				t.Fatalf("%s %v succeeded, want failure mentioning %q", tc.cli, tc.args, tc.wantErr)
			}
			if !strings.Contains(string(out), tc.wantErr) {
				t.Fatalf("%s %v error output %q missing %q", tc.cli, tc.args, out, tc.wantErr)
			}
		})
	}
}
