// Command affinitysim reproduces the experiments of "The Implications of
// Cache Affinity on Processor Scheduling for Multiprogrammed, Shared Memory
// Multiprocessors" (Vaswani & Zahorjan, SOSP 1991) on the simulated Sequent
// Symmetry.
//
// Usage:
//
//	affinitysim characterize [flags]   # Figures 2-4: application characteristics
//	affinitysim measure      [flags]   # Table 1: P^A and P^NA penalties
//	affinitysim compare      [flags]   # Figures 5-6, Tables 3-4: policy comparison
//	affinitysim future       [flags]   # Figures 8-13: future-machine extrapolation
//	affinitysim trace        [flags]   # Gantt timeline of one run (-mix, -policy, -window)
//	affinitysim extras       [flags]   # beyond-the-paper exhibits (Section 8 contrast,
//	                                   # MPL sweep, two-level-cache analysis)
//	affinitysim all          [flags]   # everything, in paper order
//
// Common flags:
//
//	-procs N      number of processors (default 16, as in the paper)
//	-seed N       root random seed (default 1)
//	-reps N       replications per (mix, policy) cell (default 5)
//	-budget SEC   Table-1 measurement compute budget in seconds (default 20)
//	-fast         scaled-down quick mode
//	-csv          emit CSV instead of aligned tables
//	-mix N        restrict the comparison to one workload mix (1-6)
//	-timeshare    include the time-sharing round-robin baseline
//	-maxproduct P largest speed-times-cache product to sweep (default 4096)
//	-policy NAME  policy for the trace subcommand (default Dyn-Aff)
//	-window SEC   trace window length in seconds (default 5, from t=0)
//	-workers N    simulation cells run concurrently (0 = all CPUs, 1 = sequential);
//	              results are identical for every worker count
//	-stats        print the response-time decomposition table (engine
//	              counters: reallocations, P^A/P^NA charges, penalty time)
//	              after the exhibits; exhibit output is unchanged
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "affinitysim:", err)
		os.Exit(1)
	}
}

type cli struct {
	opts       experiments.Options
	csv        bool
	mix        int
	timeshare  bool
	maxProduct float64
	policy     string
	window     float64
	common     *cliflags.Common
}

func parse(args []string) (string, *cli, error) {
	if len(args) == 0 {
		return "", nil, fmt.Errorf("missing subcommand (characterize|measure|compare|future|all)")
	}
	cmd := args[0]
	fs := flag.NewFlagSet("affinitysim "+cmd, flag.ContinueOnError)
	c := &cli{opts: experiments.DefaultOptions()}
	c.common = cliflags.Register(fs)
	c.common.RegisterEngine(fs)
	procs := fs.Int("procs", c.opts.Machine.Processors, "number of processors")
	reps := fs.Int("reps", c.opts.Replications, "replications per cell")
	budget := fs.Float64("budget", c.opts.MeasureBudget.SecondsF(), "Table-1 compute budget (seconds)")
	fast := fs.Bool("fast", false, "scaled-down quick mode")
	fs.BoolVar(&c.csv, "csv", false, "emit CSV tables")
	fs.IntVar(&c.mix, "mix", 0, "restrict to one workload mix (1-6, 0 = all)")
	fs.BoolVar(&c.timeshare, "timeshare", false, "include the time-sharing baseline")
	fs.Float64Var(&c.maxProduct, "maxproduct", 4096, "largest speed*cache product")
	fs.StringVar(&c.policy, "policy", "Dyn-Aff", "policy for the trace subcommand")
	fs.Float64Var(&c.window, "window", 5, "trace window length (seconds)")
	if err := fs.Parse(args[1:]); err != nil {
		return "", nil, err
	}
	// The engine tier only exists on the grid-shaped subcommands (compare,
	// future, and all, which runs both); elsewhere -engine analytic/auto
	// would be silently ignored, so reject it up front with the same
	// field-path error the service returns for the kind the subcommand
	// drives. Grid subcommands still validate the tier name itself.
	engineKind := map[string]string{
		"characterize": "characterize",
		"measure":      "table1",
		"trace":        "trace",
		"extras":       "relatedwork",
		"compare":      "compare",
		"future":       "future",
		"all":          "future",
	}
	if k, ok := engineKind[cmd]; ok {
		if err := experiments.ValidateEngine(k, c.common.Engine); err != nil {
			return "", nil, err
		}
	}
	if *fast {
		c.opts = experiments.FastOptions()
	}
	c.opts.Machine.Processors = *procs
	c.opts.Replications = *reps
	c.opts.MeasureBudget = simtime.Seconds(*budget)
	c.common.Apply(&c.opts)
	if err := c.opts.Validate(); err != nil {
		return "", nil, err
	}
	return cmd, c, nil
}

func run(args []string) (err error) {
	cmd, c, err := parse(args)
	if err != nil {
		return err
	}
	stopProf, err := c.common.StartProfiling()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()
	if err := c.dispatch(cmd); err != nil {
		return err
	}
	// With -stats, the decomposition table totals every campaign the
	// subcommand ran.
	return c.common.WriteStats(os.Stdout)
}

func (c *cli) dispatch(cmd string) error {
	switch cmd {
	case "characterize":
		return c.characterize()
	case "measure":
		return c.measure()
	case "compare":
		_, err := c.compare()
		return err
	case "future":
		return c.future()
	case "trace":
		return c.trace()
	case "extras":
		return c.extras()
	case "all":
		if err := c.characterize(); err != nil {
			return err
		}
		if err := c.measure(); err != nil {
			return err
		}
		if _, err := c.compare(); err != nil {
			return err
		}
		return c.future()
	}
	return fmt.Errorf("unknown subcommand %q", cmd)
}

// trace runs one mix under one policy with tracing enabled and renders the
// processor-allocation Gantt timeline plus an event summary.
func (c *cli) trace() error {
	mixNo := c.mix
	if mixNo == 0 {
		mixNo = 5
	}
	mix, err := workload.MixByNumber(mixNo)
	if err != nil {
		return err
	}
	pol, ok := core.ByName(c.policy)
	if !ok {
		return fmt.Errorf("unknown policy %q", c.policy)
	}
	log := &trace.Log{}
	res, err := sched.Run(sched.Config{
		Machine: c.opts.Machine,
		Policy:  pol,
		Apps:    mix.Apps(c.opts.Seed),
		Seed:    c.opts.Seed,
		Trace:   log,
	})
	if err != nil {
		return err
	}
	end := simtime.Time(0).Add(simtime.Seconds(c.window))
	if end > res.Makespan {
		end = res.Makespan
	}
	fmt.Printf("%s on %s, %d processors — makespan %v, %d trace events\n\n",
		mix, pol.Name(), c.opts.Machine.Processors, res.Makespan, log.Len())
	fmt.Print(trace.Gantt(log.Events(), c.opts.Machine.Processors, 0, end, 100, true))
	fmt.Println()
	return trace.WriteSummary(os.Stdout, log)
}

// extras runs the beyond-the-paper exhibits.
func (c *cli) extras() error {
	rw, err := experiments.RelatedWork(c.opts)
	if err != nil {
		return err
	}
	if err := c.emit(experiments.RelatedWorkTable(rw)); err != nil {
		return err
	}
	mplPolicies := []string{"Equipartition", "Dynamic", "Dyn-Aff"}
	pts, err := experiments.MPLSweep(c.opts, 4, mplPolicies)
	if err != nil {
		return err
	}
	if err := c.emit(experiments.MPLTable(pts, mplPolicies)); err != nil {
		return err
	}
	// The Section-7.2 two-level-cache feasibility analysis.
	rows, err := model.AnalyzeHierarchy(model.SymmetryHierarchy(),
		[]float64{1, 2, 4, 8, 16, 32, 64})
	if err != nil {
		return err
	}
	t := report.Table{
		Title: "Section 7.2 — can larger hit rates replace faster miss resolution?",
		Headers: []string{"speed", "required L1 hit rate", "achievable?",
			"slowdown with sqrt(speed) memory"},
	}
	for _, r := range rows {
		feas := "yes"
		if !r.Feasible {
			feas = "NO"
		}
		t.AddRow(report.F(r.Speed, 0), report.F(r.RequiredH1, 4), feas,
			report.F(r.EffectiveSlowdown, 2))
	}
	return c.emit(t)
}

func (c *cli) emit(t report.Table) error {
	if c.csv {
		return t.WriteCSV(os.Stdout)
	}
	if err := t.Write(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

func (c *cli) characterize() error {
	chars, err := experiments.Characterize(c.opts)
	if err != nil {
		return err
	}
	if err := c.emit(experiments.CharacterTable(chars)); err != nil {
		return err
	}
	return c.emit(experiments.ProfileTable(chars))
}

func (c *cli) measure() error {
	t1, err := experiments.Table1(c.opts)
	if err != nil {
		return err
	}
	for _, t := range experiments.Table1Report(t1) {
		if err := c.emit(t); err != nil {
			return err
		}
	}
	return nil
}

func (c *cli) mixes() ([]workload.Mix, error) {
	if c.mix == 0 {
		return workload.Mixes(), nil
	}
	m, err := workload.MixByNumber(c.mix)
	if err != nil {
		return nil, err
	}
	return []workload.Mix{m}, nil
}

func (c *cli) policies() []string {
	ps := []string{"Equipartition", "Dynamic", "Dyn-Aff", "Dyn-Aff-Delay", "Dyn-Aff-NoPri"}
	if c.timeshare {
		ps = append(ps, "TimeShare-RR")
	}
	return ps
}

func (c *cli) compare() (*experiments.CompareResult, error) {
	mixes, err := c.mixes()
	if err != nil {
		return nil, err
	}
	cr, err := experiments.ComparePolicies(c.opts, mixes, c.policies())
	if err != nil {
		return nil, err
	}
	fig5, err := cr.Figure5Report([]string{"Dynamic", "Dyn-Aff", "Dyn-Aff-Delay"})
	if err != nil {
		return nil, err
	}
	if err := c.emit(fig5); err != nil {
		return nil, err
	}
	fig6, err := cr.Figure5Report([]string{"Dyn-Aff-NoPri"})
	if err != nil {
		return nil, err
	}
	fig6.Title = "Figure 6 — Dyn-Aff-NoPri response times relative to Equipartition"
	if err := c.emit(fig6); err != nil {
		return nil, err
	}
	if c.timeshare {
		ts, err := cr.Figure5Report([]string{"TimeShare-RR"})
		if err != nil {
			return nil, err
		}
		ts.Title = "Extra — TimeShare-RR (quantum-driven) relative to Equipartition"
		if err := c.emit(ts); err != nil {
			return nil, err
		}
	}
	for _, mix := range mixes {
		if mix.Number == 5 || c.mix == mix.Number {
			t3, err := cr.Table3Report(mix.Number, []string{"Dynamic", "Dyn-Aff", "Dyn-Aff-Delay"})
			if err != nil {
				return nil, err
			}
			if err := c.emit(t3); err != nil {
				return nil, err
			}
		}
	}
	var homog []int
	for _, mix := range mixes {
		if mix.Homogeneous() {
			homog = append(homog, mix.Number)
		}
	}
	if len(homog) > 0 {
		t4, err := cr.Table4Report(homog, "Dyn-Aff", "Dyn-Aff-NoPri")
		if err != nil {
			return nil, err
		}
		if err := c.emit(t4); err != nil {
			return nil, err
		}
	}
	return cr, nil
}

func (c *cli) future() error {
	mixes, err := c.mixes()
	if err != nil {
		return err
	}
	cr, err := experiments.ComparePolicies(c.opts, mixes, c.policies())
	if err != nil {
		return err
	}
	t1, err := experiments.Table1(c.opts)
	if err != nil {
		return err
	}
	scen, err := experiments.FutureScenarios(cr, t1)
	if err != nil {
		return err
	}
	charts, err := experiments.FutureCharts(cr, scen,
		[]string{"Dynamic", "Dyn-Aff", "Dyn-Aff-Delay"}, c.maxProduct)
	if err != nil {
		return err
	}
	for _, ch := range charts {
		if err := ch.Write(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}
