// Command policycompare reproduces the paper's Section-6 policy comparison
// in isolation: Figures 5 and 6 (response times of the dynamic policies
// relative to Equipartition across the six Table-2 workload mixes) and
// Tables 3 and 4 (the influence of affinity on scheduling, and the cost of
// sacrificing fairness to affinity).
//
// Usage:
//
//	policycompare [-procs N] [-reps N] [-seed N] [-mix N] [-fast] [-csv] [-timeshare] [-workers N] [-engine sim|analytic|auto]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliflags"
	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	common := cliflags.Register(flag.CommandLine)
	common.RegisterEngine(flag.CommandLine)
	procs := flag.Int("procs", 16, "number of processors")
	reps := flag.Int("reps", 5, "replications per cell")
	mixNo := flag.Int("mix", 0, "restrict to one workload mix (1-6, 0 = all)")
	fast := flag.Bool("fast", false, "scaled-down quick mode")
	csv := flag.Bool("csv", false, "emit CSV")
	timeshare := flag.Bool("timeshare", false, "include the time-sharing baseline")
	flag.Parse()
	// The compare grid takes any tier, but an unknown -engine value must
	// fail here, not be silently folded to the simulator downstream.
	if err := experiments.ValidateEngine("compare", common.Engine); err != nil {
		fmt.Fprintln(os.Stderr, "policycompare:", err)
		os.Exit(1)
	}

	opts := experiments.DefaultOptions()
	if *fast {
		opts = experiments.FastOptions()
	}
	opts.Machine.Processors = *procs
	opts.Replications = *reps
	common.Apply(&opts)
	stopProf, err := common.StartProfiling()
	if err != nil {
		fmt.Fprintln(os.Stderr, "policycompare:", err)
		os.Exit(1)
	}
	err = run(opts, *mixNo, *csv, *timeshare)
	if err == nil {
		err = common.WriteStats(os.Stdout)
	}
	if perr := stopProf(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "policycompare:", err)
		os.Exit(1)
	}
}

func run(opts experiments.Options, mixNo int, csv, timeshare bool) error {
	mixes := workload.Mixes()
	if mixNo != 0 {
		m, err := workload.MixByNumber(mixNo)
		if err != nil {
			return err
		}
		mixes = []workload.Mix{m}
	}
	policies := []string{"Equipartition", "Dynamic", "Dyn-Aff", "Dyn-Aff-Delay", "Dyn-Aff-NoPri"}
	if timeshare {
		policies = append(policies, "TimeShare-RR")
	}
	cr, err := experiments.ComparePolicies(opts, mixes, policies)
	if err != nil {
		return err
	}

	emit := func(t report.Table) error {
		if csv {
			return t.WriteCSV(os.Stdout)
		}
		if err := t.Write(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		return nil
	}

	dynPolicies := []string{"Dynamic", "Dyn-Aff", "Dyn-Aff-Delay"}
	if timeshare {
		dynPolicies = append(dynPolicies, "TimeShare-RR")
	}
	fig5, err := cr.Figure5Report(dynPolicies)
	if err != nil {
		return err
	}
	if err := emit(fig5); err != nil {
		return err
	}
	fig6, err := cr.Figure5Report([]string{"Dyn-Aff-NoPri"})
	if err != nil {
		return err
	}
	fig6.Title = "Figure 6 — Dyn-Aff-NoPri response times relative to Equipartition"
	if err := emit(fig6); err != nil {
		return err
	}
	for _, mix := range mixes {
		if mix.Number == 5 || mixNo == mix.Number {
			t3, err := cr.Table3Report(mix.Number, []string{"Dynamic", "Dyn-Aff", "Dyn-Aff-Delay"})
			if err != nil {
				return err
			}
			if err := emit(t3); err != nil {
				return err
			}
		}
	}
	var homog []int
	for _, mix := range mixes {
		if mix.Homogeneous() {
			homog = append(homog, mix.Number)
		}
	}
	if len(homog) > 0 {
		t4, err := cr.Table4Report(homog, "Dyn-Aff", "Dyn-Aff-NoPri")
		if err != nil {
			return err
		}
		if err := emit(t4); err != nil {
			return err
		}
	}
	return nil
}
