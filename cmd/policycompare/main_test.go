package main

import (
	"testing"

	"repro/internal/experiments"
)

func TestRunFast(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison is seconds-long")
	}
	opts := experiments.FastOptions()
	opts.Replications = 1
	if err := run(opts, 5, false, true); err != nil {
		t.Fatal(err)
	}
	if err := run(opts, 1, true, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadMix(t *testing.T) {
	if err := run(experiments.FastOptions(), 9, false, false); err == nil {
		t.Error("mix 9 accepted")
	}
}
