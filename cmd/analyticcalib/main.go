// Command analyticcalib maintains the analytic engine's promotion golden
// (internal/analytic/promotion.json): the differential calibration record
// that defines which campaign cells the `auto` engine tier may serve from
// the fast analytic estimator instead of the discrete-event simulator.
//
// Usage:
//
//	analyticcalib [-workers N]                 check mode (default)
//	analyticcalib -write [-o PATH] [-workers N]
//
// Both modes run the pinned calibration grid (internal/experiments
// .CalibrationGrid) through BOTH engines and print the per-cell error
// table and the measured wall-clock speedup.
//
// -write regenerates the golden: cells whose analytic mean response time
// is within the strict promote threshold (8%) are marked promoted.
//
// Check mode enforces the looser tolerance (10%) on every cell the
// checked-in golden promotes, failing if the analytic engine has drifted —
// the hysteresis between the two thresholds keeps borderline cells from
// flapping across platforms. `make analytic-smoke` runs check mode in ci.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analytic"
	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	write := flag.Bool("write", false, "regenerate the promotion golden at -o from this pass")
	flag.Bool("check", false, "enforce the golden's tolerance on promoted cells (the default mode; flag accepted for explicitness)")
	out := flag.String("o", "internal/analytic/promotion.json", "golden path for -write")
	workers := flag.Int("workers", 0, "concurrent calibration cells (0 = all CPUs)")
	flag.Parse()

	if err := run(*write, *out, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "analyticcalib:", err)
		os.Exit(1)
	}
}

func run(write bool, out string, workers int) error {
	cal, err := experiments.Calibrate(context.Background(), workers)
	if err != nil {
		return err
	}
	if err := printTable(cal); err != nil {
		return err
	}
	if write {
		data, err := json.MarshalIndent(cal.Table, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		promoted := 0
		for _, c := range cal.Table.Cells {
			if c.Promoted {
				promoted++
			}
		}
		fmt.Printf("wrote %s: %d cells, %d promoted (threshold %.0f%%)\n",
			out, len(cal.Table.Cells), promoted, 100*cal.Table.PromoteRelErr)
		return nil
	}
	return check(cal)
}

// cellLabel renders one cell's grid coordinate compactly for the table.
func cellLabel(c analytic.CalCell) string {
	if c.Kind == "futuresim" {
		return fmt.Sprintf("futuresim mix=%d p=%g %s", c.Mix, c.Product, c.Policy)
	}
	return fmt.Sprintf("compare mix=%d %s", c.Mix, c.Policy)
}

// printTable renders the per-cell error table and the wall-clock totals.
func printTable(cal *experiments.Calibration) error {
	t := report.Table{
		Title:   "Differential calibration — analytic vs exact simulation",
		Headers: []string{"cell", "sim RT (s)", "analytic RT (s)", "rel err", "promoted"},
	}
	for _, c := range cal.Table.Cells {
		m := c.Metrics[analytic.PromotionMetric]
		promoted := ""
		if c.Promoted {
			promoted = "yes"
		}
		t.AddRow(cellLabel(c), report.F(m.Sim, 3), report.F(m.Analytic, 3),
			fmt.Sprintf("%.1f%%", 100*m.RelErr), promoted)
	}
	if err := t.Write(os.Stdout); err != nil {
		return err
	}
	speedup := 0.0
	if cal.AnalyticSeconds > 0 {
		speedup = cal.SimSeconds / cal.AnalyticSeconds
	}
	fmt.Printf("\nwall clock: sim %.2fs, analytic %.3fs (%.0fx)\n",
		cal.SimSeconds, cal.AnalyticSeconds, speedup)
	return nil
}

// check enforces the golden's tolerance bound on every promoted cell of
// the fresh pass.
func check(cal *experiments.Calibration) error {
	golden := analytic.DefaultTable()
	fresh := make(map[string]analytic.CalCell, len(cal.Table.Cells))
	for _, c := range cal.Table.Cells {
		fresh[c.Coord] = c
	}
	var bad []string
	promoted := 0
	for _, g := range golden.Cells {
		if !g.Promoted {
			continue
		}
		promoted++
		f, ok := fresh[g.Coord]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: golden-promoted cell absent from the calibration grid", g.Coord))
			continue
		}
		if re := f.Metrics[analytic.PromotionMetric].RelErr; re > golden.TolRelErr {
			bad = append(bad, fmt.Sprintf("%s: %s rel err %.1f%% exceeds tolerance %.0f%%",
				g.Coord, analytic.PromotionMetric, 100*re, 100*golden.TolRelErr))
		}
	}
	if promoted == 0 {
		return fmt.Errorf("golden promotes no cells; regenerate with -write")
	}
	if len(bad) > 0 {
		return fmt.Errorf("%d envelope violations:\n  %s", len(bad), strings.Join(bad, "\n  "))
	}
	fmt.Printf("\nall %d golden-promoted cells within tolerance %.0f%%\n", promoted, 100*golden.TolRelErr)
	return nil
}
