// Command affinityd serves the repo's experiment campaigns as a
// long-running HTTP/JSON daemon: POST a campaign request, get the result
// body — memoized in a content-addressed cache, deduplicated against
// identical in-flight requests, admission-controlled behind a bounded
// queue, and cancellable. Campaigns execute cell by cell through a
// second content-addressed cache, so overlapping or re-submitted
// campaigns re-run only the cells they have never completed, and
// GET /v1/jobs/{id}/events streams per-cell progress as NDJSON.
// See internal/service for the API and semantics.
//
// Usage:
//
//	affinityd [-addr HOST:PORT] [-queue N] [-jobs N] [-cache-mb MB]
//	          [-retry-after SEC] [-job-ttl-sec SEC] [-max-jobs N]
//	          [-store-dir DIR] [-store-budget MB] [-store-sync]
//	          [-coordinator] [-join URL] [-advertise URL] [-hedge-ms N]
//	          [-hedge-budget N] [-fleet-token SECRET]
//	          [-workers N] [-seed N] [-cpuprofile FILE] [-memprofile FILE]
//	          [-stats] [-pprof]
//
//	-addr        listen address (default 127.0.0.1:8642; use :0 for a
//	             random port, printed on startup)
//	-queue       max queued campaigns before requests get 429 (default 16)
//	-jobs        campaigns executed concurrently (default 2)
//	-cache-mb    result-cache byte budget in MiB (default 64)
//	-retry-after Retry-After hint on 429 responses, seconds (default 2)
//	-job-ttl-sec seconds a finished job's status/result stay pollable at
//	             /v1/jobs before eviction (default 300); evicted ids
//	             return 404, but the result body stays in the cache
//	-max-jobs    retained finished jobs regardless of age (default 256)
//	-store-dir   directory for the persistent result store; results (both
//	             campaign bodies and individual cells) survive restarts
//	             and are re-served without executing (default: off)
//	-store-budget disk byte budget for -store-dir in MiB; the store
//	             evicts cheapest-to-recompute entries first (0 = no limit)
//	-store-sync  fsync each write-behind flush batch (safer on power loss,
//	             slower; without it a crash can lose the last batch)
//	-coordinator run as a fleet coordinator: campaign cells that miss
//	             both cache tiers are dispatched to workers that joined
//	             via -join, with retry, hedged re-dispatch, and local
//	             fallback (see internal/fleet and GET /v1/workers)
//	-join        run as a fleet worker: register with (and heartbeat)
//	             the coordinator at this base URL and execute cells it
//	             dispatches; mutually exclusive with -coordinator
//	-advertise   base URL workers advertise to the coordinator (default:
//	             derived from the bound listener address — set it when
//	             behind NAT or a non-loopback interface)
//	-hedge-ms    coordinator: milliseconds before a straggling cell is
//	             re-dispatched to another worker (default 1000)
//	-hedge-budget coordinator: max retries + hedges one campaign may spend
//	             across all its cells (default 16, <0 = unlimited); once
//	             dry, cells fall back to local execution and the job view
//	             reports budget_exhausted
//	-fleet-token shared secret authenticating every fleet request (HMAC
//	             over method, path, timestamp, and body; constant-time
//	             verification). Set the same value on the coordinator and
//	             every worker; empty keeps the open trusted-network mode
//	-workers     per-campaign simulation-cell concurrency applied when a
//	             request omits params.workers (0 = all CPUs)
//	-seed        default root seed for requests that omit params.seed
//	-stats       print each completed job's response-time decomposition
//	             table to stdout
//	-pprof       expose /debug/pprof/ runtime profiles (off by default)
//
// Quick check once running:
//
//	curl -s localhost:8642/healthz
//	curl -s -X POST localhost:8642/v1/campaigns \
//	     -d '{"kind":"table1","params":{"fast":true}}'
//	curl -s localhost:8642/v1/campaigns            # kinds + param schemas
//	curl -s 'localhost:8642/v1/jobs?status=done&limit=10'
//	curl -sN localhost:8642/v1/jobs/j00000001/events  # NDJSON progress
//
// SIGINT/SIGTERM drain gracefully: queued jobs are cancelled, in-flight
// jobs run to completion (up to -drain-sec), the persistent store's
// write-behind queue is flushed and fsynced, then the listener closes.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliflags"
	"repro/internal/diskstore"
	"repro/internal/fleet"
	"repro/internal/resultcache"
	"repro/internal/service"
	"repro/internal/version"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "affinityd:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	fs := flag.NewFlagSet("affinityd", flag.ExitOnError)
	common := cliflags.Register(fs)
	addr := fs.String("addr", "127.0.0.1:8642", "listen address (:0 = random port)")
	queue := fs.Int("queue", 16, "max queued campaigns before 429")
	jobs := fs.Int("jobs", 2, "campaigns executed concurrently")
	cacheMB := fs.Int64("cache-mb", 64, "result-cache budget (MiB)")
	retryAfter := fs.Int("retry-after", 2, "Retry-After hint on 429 (seconds)")
	jobTTL := fs.Int("job-ttl-sec", 300, "seconds finished jobs stay pollable before eviction")
	maxJobs := fs.Int("max-jobs", 256, "max retained finished jobs regardless of age")
	drainSec := fs.Int("drain-sec", 60, "max seconds to drain in-flight jobs at shutdown")
	storeDir := fs.String("store-dir", "", "persistent result-store directory (empty = no persistence)")
	storeBudget := fs.Int64("store-budget", 0, "persistent-store disk budget (MiB, 0 = no limit)")
	storeSync := fs.Bool("store-sync", false, "fsync each persistent-store flush batch")
	coordinator := fs.Bool("coordinator", false, "run as fleet coordinator (dispatch cells to joined workers)")
	join := fs.String("join", "", "run as fleet worker: coordinator base URL to register with")
	advertise := fs.String("advertise", "", "base URL to advertise to the coordinator (default: bound address)")
	hedgeMS := fs.Int("hedge-ms", 1000, "coordinator: ms before a straggling cell is re-dispatched")
	fleetToken := fs.String("fleet-token", "", "shared secret authenticating fleet requests (HMAC; empty = unauthenticated)")
	hedgeBudget := fs.Int("hedge-budget", 16, "coordinator: max retries+hedges per campaign (<0 = unlimited)")
	pprofOn := fs.Bool("pprof", false, "expose /debug/pprof/ runtime profiles")
	fs.Parse(os.Args[1:])
	if *coordinator && *join != "" {
		return fmt.Errorf("-coordinator and -join are mutually exclusive (a worker serves its own /v1 traffic but does not dispatch)")
	}

	stopProf, err := common.StartProfiling()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()

	cfg := service.Config{
		QueueDepth:  *queue,
		JobWorkers:  *jobs,
		CacheBytes:  *cacheMB << 20,
		CellWorkers: common.Workers,
		DefaultSeed: common.Seed,
		RetryAfter:  time.Duration(*retryAfter) * time.Second,
		JobTTL:      time.Duration(*jobTTL) * time.Second,
		MaxJobs:     *maxJobs,
		EnablePprof: *pprofOn,
	}
	if common.Stats {
		// -stats on the daemon prints each completed job's decomposition
		// table to stdout as it finishes.
		cfg.StatsWriter = os.Stdout
	}
	if *storeDir != "" {
		store, serr := diskstore.Open(*storeDir, diskstore.Options{
			Budget:        *storeBudget << 20,
			SyncEach:      *storeSync,
			EngineVersion: version.Engine,
		})
		if serr != nil {
			return fmt.Errorf("open store %s: %w", *storeDir, serr)
		}
		// Close after the drain below: Shutdown already synced the
		// write-behind queue, so Close here just releases file handles.
		defer store.Close()
		st := store.Stats()
		fmt.Printf("affinityd: store %s: %d entries in %d segments (%d bytes)\n",
			*storeDir, st.Entries, st.Segments, st.DiskBytes)
		cfg.Store = store
	}
	// Fleet roles. Both build the cell cache explicitly so the fleet
	// side and the service share one instance: the coordinator's peer
	// cache fill must serve exactly the tiers the service reads, and a
	// worker's execute path must reuse what its own /v1 traffic cached.
	var fleetWorker *fleet.Worker
	switch {
	case *coordinator:
		cellCache := resultcache.New(cfg.CacheBytes)
		cfg.CellCache = cellCache
		cfg.HedgeBudget = *hedgeBudget
		cfg.Fleet = fleet.NewCoordinator(fleet.Config{
			Cache:      cellCache,
			Store:      cfg.Store,
			Token:      *fleetToken,
			HedgeDelay: time.Duration(*hedgeMS) * time.Millisecond,
		})
		authMode := "unauthenticated"
		if *fleetToken != "" {
			authMode = "authenticated"
		}
		fmt.Printf("affinityd: coordinator mode (%s; hedge after %dms, budget %d; workers join at %s)\n",
			authMode, *hedgeMS, *hedgeBudget, fleet.PathRegister)
	case *join != "":
		cellCache := resultcache.New(cfg.CacheBytes)
		cfg.CellCache = cellCache
		fleetWorker = fleet.NewWorker(fleet.WorkerConfig{
			Coordinator: *join,
			Token:       *fleetToken,
			Capacity:    common.Workers,
			Cache:       cellCache,
			Store:       cfg.Store,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "affinityd: "+format+"\n", args...)
			},
		})
		cfg.FleetWorker = fleetWorker
	}
	srv := service.New(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The smoke gate and scripts parse this line for the bound port.
	fmt.Printf("affinityd: listening on http://%s (engine %s, %s)\n",
		ln.Addr(), version.Engine, version.GitSHA())
	if fleetWorker != nil {
		adv := *advertise
		if adv == "" {
			adv = "http://" + ln.Addr().String()
		}
		// Start registers synchronously, but a refused registration (401
		// token mismatch, 409 engine skew — both logged above by the
		// worker) leaves the heartbeat loop retrying, so this line claims
		// only what is certain: worker mode is on and aimed at the
		// coordinator.
		fleetWorker.Start(adv)
		defer fleetWorker.Stop()
		fmt.Printf("affinityd: worker mode (registering with %s, advertising %s)\n", *join, adv)
	}

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("affinityd: %v — draining (in-flight jobs finish, queued jobs cancel)\n", s)
	case err := <-serveErr:
		return err
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), time.Duration(*drainSec)*time.Second)
	defer cancel()
	// Drain the serving core first (the listener stays up so final status
	// polls are answered), then close the listener.
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "affinityd: drain incomplete: %v\n", err)
	}
	if err := hs.Shutdown(drainCtx); err != nil {
		return err
	}
	fmt.Println("affinityd: drained, exiting")
	return nil
}
