package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/resultcache"
	"repro/internal/service"
)

// TestServeSmoke is the `make serve-smoke` gate: boot the daemon's
// serving core on a random port, run the same table1 campaign twice
// against the real simulation engine, and require the second response to
// be a result-cache hit with a byte-identical body. Run under -race.
func TestServeSmoke(t *testing.T) {
	srv := service.New(service.Config{QueueDepth: 4, JobWorkers: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	req := `{"kind":"table1","params":{"fast":true,"budget_sec":0.5,"reps":1}}`
	post := func() (*http.Response, []byte) {
		resp, err := http.Post(base+"/v1/campaigns", "application/json", strings.NewReader(req))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, b
	}

	r1, body1 := post()
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("first request: %d %s", r1.StatusCode, body1)
	}
	if got := r1.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("first request X-Cache = %q, want miss", got)
	}
	if !bytes.Contains(body1, []byte(`"pna_us"`)) {
		t.Errorf("table1 body missing penalties: %.120s", body1)
	}

	r2, body2 := post()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("second request: %d %s", r2.StatusCode, body2)
	}
	if got := r2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("second request X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Errorf("cache hit body not byte-identical:\n%s\n%s", body1, body2)
	}
	if st := srv.Cache().Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("cache stats %+v, want exactly one miss then one hit", st)
	}

	// The hit is visible in /metrics too.
	mr, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	if !bytes.Contains(mb, []byte("affinityd_cache_hits_total 1")) {
		t.Errorf("metrics missing cache hit counter:\n%s", mb)
	}
}

// TestObsSmoke is the `make obs-smoke` gate: boot the serving core with
// the real campaign registry, run one simulation-backed campaign, and
// require the engine-level counters and the request-span histograms at
// /metrics to be nonzero — proving the stats path is wired end to end
// (scheduler -> cache model -> campaign fold -> job collector -> daemon
// metrics) without touching the result body.
func TestObsSmoke(t *testing.T) {
	srv := service.New(service.Config{QueueDepth: 4, JobWorkers: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	resp, err := http.Post(base+"/v1/campaigns", "application/json",
		strings.NewReader(`{"kind":"table1","params":{"fast":true,"budget_sec":0.5,"reps":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("campaign: %d %s", resp.StatusCode, body)
	}
	if rid := resp.Header.Get("X-Request-Id"); rid == "" {
		t.Error("X-Request-Id header missing")
	}

	mr, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mr.Body)
	mr.Body.Close()

	// metric scans the exposition text for an exact series name and
	// returns its value.
	metric := func(name string) float64 {
		for _, line := range strings.Split(string(mb), "\n") {
			fields := strings.Fields(line)
			if len(fields) == 2 && fields[0] == name {
				v, err := strconv.ParseFloat(fields[1], 64)
				if err != nil {
					t.Fatalf("%s: bad value %q", name, fields[1])
				}
				return v
			}
		}
		t.Fatalf("metrics missing series %s:\n%s", name, mb)
		return 0
	}
	for _, name := range []string{
		"affinityd_sim_runs_total",
		"affinityd_sim_reallocations_total",
		"affinityd_sim_migrations_total",
		"affinityd_sim_pa_charges_total",
		"affinityd_sim_pna_charges_total",
		"affinityd_sim_flushes_total",
		"affinityd_sim_penalty_seconds_total",
		"affinityd_request_queue_wait_seconds_count",
		"affinityd_request_exec_seconds_count",
		"affinityd_request_cache_lookup_seconds_count",
		"affinityd_request_admit_seconds_count",
	} {
		if v := metric(name); v <= 0 {
			t.Errorf("%s = %v, want > 0", name, v)
		}
	}
	// The exec histogram's +Inf bucket must agree with its count.
	if !bytes.Contains(mb, []byte(`affinityd_request_exec_seconds_bucket{le="+Inf"} 1`)) {
		t.Errorf("exec histogram +Inf bucket missing or wrong:\n%s", mb)
	}
}

// TestSigtermDrains builds the real binary, runs it on a random port,
// and checks SIGTERM triggers a graceful drain and a clean exit.
func TestSigtermDrains(t *testing.T) {
	if testing.Short() {
		t.Skip("binary build in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "affinityd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-jobs", "1", "-queue", "2")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Parse the advertised address, then collect the rest of the output.
	sc := bufio.NewScanner(stdout)
	var base string
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "http://"); i >= 0 {
			base = strings.Fields(line[i:])[0]
			break
		}
	}
	if base == "" {
		t.Fatal("daemon never advertised its address")
	}
	rest := make(chan string, 1)
	go func() {
		var b strings.Builder
		for sc.Scan() {
			b.WriteString(sc.Text())
			b.WriteByte('\n')
		}
		rest <- b.String()
	}()

	// Prove it serves, then terminate.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Drain stdout to EOF before calling Wait: Wait closes the pipe and
	// would race the reader out of the final drain messages.
	var out string
	select {
	case out = <-rest:
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit within 30s of SIGTERM")
	}
	if err := cmd.Wait(); err != nil {
		t.Errorf("daemon exited non-zero after SIGTERM: %v", err)
	}
	if !strings.Contains(out, "drained, exiting") {
		t.Errorf("shutdown output missing drain message:\n%s", out)
	}
}

// TestPersistSmoke is the `make persist-smoke` gate, the whole
// persistence story against the real binary:
//
//  1. Boot with a fresh -store-dir, start a table1 campaign, and SIGKILL
//     the process mid-grid — no drain, no flush barrier.
//  2. Reboot on the same directory and re-submit: every cell the dead
//     process had flushed must be served from disk (zero re-execution
//     for them), and the final body must be byte-identical to a cold,
//     uninterrupted run.
//  3. Terminate gracefully, boot a third time, re-submit: the completed
//     campaign body itself is now on disk, so the response is X-Cache:
//     disk with zero cells executed.
func TestPersistSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("binary build and campaign runs in -short mode")
	}
	const totalCells = 9 // table1: 3 Qs x 3 measured applications
	req := `{"kind":"table1","params":{"fast":true,"budget_sec":0.5,"reps":1,"workers":1}}`
	bin := filepath.Join(t.TempDir(), "affinityd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	storeDir := filepath.Join(t.TempDir(), "store")

	// boot starts the daemon against storeDir and returns the process and
	// its advertised base URL.
	boot := func() (*exec.Cmd, string) {
		t.Helper()
		cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-jobs", "1", "-queue", "2", "-store-dir", storeDir)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = cmd.Stdout
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "http://"); i >= 0 {
				go func() {
					for sc.Scan() {
					} // drain the pipe so the child never blocks on stdout
				}()
				return cmd, strings.Fields(line[i:])[0]
			}
		}
		t.Fatal("daemon never advertised its address")
		return nil, ""
	}
	get := func(base, path string) []byte {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	metric := func(base, name string) int {
		t.Helper()
		mb := get(base, "/metrics")
		for _, line := range strings.Split(string(mb), "\n") {
			fields := strings.Fields(line)
			if len(fields) == 2 && fields[0] == name {
				v, err := strconv.Atoi(fields[1])
				if err != nil {
					t.Fatalf("%s: bad value %q", name, fields[1])
				}
				return v
			}
		}
		t.Fatalf("metrics missing series %s:\n%s", name, mb)
		return 0
	}

	// Cold, uninterrupted reference body from the in-process serving core.
	coldSrv := service.New(service.Config{QueueDepth: 4, JobWorkers: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		coldSrv.Shutdown(ctx)
	}()
	coldLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coldHS := &http.Server{Handler: coldSrv.Handler()}
	go coldHS.Serve(coldLn)
	defer coldHS.Close()
	coldResp, err := http.Post("http://"+coldLn.Addr().String()+"/v1/campaigns", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	coldBody, _ := io.ReadAll(coldResp.Body)
	coldResp.Body.Close()
	if coldResp.StatusCode != http.StatusOK {
		t.Fatalf("cold run: %d %s", coldResp.StatusCode, coldBody)
	}

	// Phase 1: run, wait for at least 4 flushed cell frames, kill -9.
	procA, baseA := boot()
	defer procA.Process.Kill()
	ar, err := http.Post(baseA+"/v1/campaigns", "application/json", strings.NewReader(strings.TrimSuffix(req, "}")+`,"async":true}`))
	if err != nil {
		t.Fatal(err)
	}
	ab, _ := io.ReadAll(ar.Body)
	ar.Body.Close()
	if ar.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: %d %s", ar.StatusCode, ab)
	}
	deadline := time.Now().Add(120 * time.Second)
	for metric(baseA, "affinityd_store_flushed_frames_total") < 4 {
		if time.Now().After(deadline) {
			t.Fatal("store never flushed 4 frames")
		}
		time.Sleep(20 * time.Millisecond)
	}
	flushed := metric(baseA, "affinityd_store_flushed_frames_total")
	if err := procA.Process.Kill(); err != nil { // SIGKILL: no drain, no fsync
		t.Fatal(err)
	}
	procA.Wait()

	// Phase 2: reboot on the same directory. The killed run's flushed
	// cells are served from disk; only the remainder executes; the body
	// matches the cold run bit for bit.
	procB, baseB := boot()
	defer procB.Process.Kill()
	br, err := http.Post(baseB+"/v1/campaigns", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	warmBody, _ := io.ReadAll(br.Body)
	br.Body.Close()
	if br.StatusCode != http.StatusOK {
		t.Fatalf("rebooted run: %d %s", br.StatusCode, warmBody)
	}
	if !bytes.Equal(warmBody, coldBody) {
		t.Errorf("rebooted body differs from cold run:\n%.200s\n%.200s", warmBody, coldBody)
	}
	disk := metric(baseB, "affinityd_cell_disk_hits_total")
	execs := metric(baseB, "affinityd_cell_executions_total")
	misses := metric(baseB, "affinityd_cell_misses_total")
	// At least the 4 frames observed flushed were durable (nothing past
	// `flushed` is guaranteed: the kill races the flusher).
	if disk < 4 {
		t.Errorf("rebooted run served %d cells from disk, want >= 4 (flushed=%d)", disk, flushed)
	}
	if disk+execs != totalCells || misses != execs {
		t.Errorf("cell accounting: disk=%d misses=%d executions=%d, want disk+executions=%d and misses=executions",
			disk, misses, execs, totalCells)
	}
	// Graceful SIGTERM: the drain flushes the completed campaign body.
	if err := procB.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := procB.Wait(); err != nil {
		t.Fatalf("daemon exited non-zero after SIGTERM: %v", err)
	}

	// Phase 3: third boot serves the whole campaign straight from disk.
	procC, baseC := boot()
	defer procC.Process.Kill()
	cr, err := http.Post(baseC+"/v1/campaigns", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	diskBody, _ := io.ReadAll(cr.Body)
	cr.Body.Close()
	if cr.StatusCode != http.StatusOK {
		t.Fatalf("third-boot run: %d %s", cr.StatusCode, diskBody)
	}
	if got := cr.Header.Get("X-Cache"); got != "disk" {
		t.Errorf("third-boot X-Cache = %q, want disk", got)
	}
	if !bytes.Equal(diskBody, coldBody) {
		t.Errorf("third-boot body differs from cold run:\n%.200s\n%.200s", diskBody, coldBody)
	}
	if x := metric(baseC, "affinityd_cell_executions_total"); x != 0 {
		t.Errorf("third boot executed %d cells, want 0", x)
	}
	procC.Process.Signal(syscall.SIGTERM)
	procC.Wait()
}

// TestCellSmoke is the `make cell-smoke` gate: start a table1 campaign,
// kill the daemon core mid-grid via an expired drain context, then
// re-submit the identical campaign on a second server sharing the same
// cell cache. The resumed run must execute only the cells the first one
// never completed (visible in the affinityd_cell_* metrics) and produce
// a body byte-identical to a cold, uninterrupted run.
func TestCellSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign runs in -short mode")
	}
	const totalCells = 9 // table1: 3 Qs x 3 measured applications
	req := `{"kind":"table1","params":{"fast":true,"budget_sec":0.5,"reps":1,"workers":1}}`

	listen := func(srv *service.Server) (string, *http.Server) {
		t.Helper()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		return "http://" + ln.Addr().String(), hs
	}
	post := func(base, body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(base+"/v1/campaigns", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, b
	}

	// Cold, uninterrupted reference run on a private server.
	coldSrv := service.New(service.Config{QueueDepth: 4, JobWorkers: 1})
	coldBase, coldHS := listen(coldSrv)
	defer coldHS.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		coldSrv.Shutdown(ctx)
	}()
	cr, coldBody := post(coldBase, req)
	if cr.StatusCode != http.StatusOK {
		t.Fatalf("cold run: %d %s", cr.StatusCode, coldBody)
	}

	// Server A shares `cells` with the resuming server B.
	cells := resultcache.New(64 << 20)
	srvA := service.New(service.Config{QueueDepth: 4, JobWorkers: 1, CellCache: cells})
	baseA, hsA := listen(srvA)
	defer hsA.Close()
	ar, ab := post(baseA, strings.TrimSuffix(req, "}")+`,"async":true}`)
	if ar.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: %d %s", ar.StatusCode, ab)
	}
	var jv struct {
		ID         string `json:"id"`
		Status     string `json:"status"`
		CellsDone  int    `json:"cells_done"`
		CellsTotal int    `json:"cells_total"`
	}
	if err := json.Unmarshal(ab, &jv); err != nil {
		t.Fatal(err)
	}

	// Let the campaign pass roughly half its grid, then pull the plug:
	// an already-cancelled drain context turns Shutdown into a hard stop
	// that cancels the in-flight job between cells.
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := http.Get(baseA + "/v1/jobs/" + jv.ID)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := json.Unmarshal(b, &jv); err != nil {
			t.Fatalf("job poll: %v (%s)", err, b)
		}
		if jv.CellsDone >= 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign never reached 4 cells: %s", b)
		}
		time.Sleep(20 * time.Millisecond)
	}
	killed, cancelKilled := context.WithCancel(context.Background())
	cancelKilled()
	srvA.Shutdown(killed) // returns context.Canceled by design; the point is the hard stop

	// Server B resumes from the shared cell cache.
	srvB := service.New(service.Config{QueueDepth: 4, JobWorkers: 1, CellCache: cells})
	baseB, hsB := listen(srvB)
	defer hsB.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srvB.Shutdown(ctx)
	}()
	br, warmBody := post(baseB, req)
	if br.StatusCode != http.StatusOK {
		t.Fatalf("resumed run: %d %s", br.StatusCode, warmBody)
	}
	if !bytes.Equal(warmBody, coldBody) {
		t.Errorf("resumed body differs from cold run:\n%.200s\n%.200s", warmBody, coldBody)
	}

	// The resumed run reused every cell the killed run completed and
	// executed exactly the remainder.
	mr, err := http.Get(baseB + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	metric := func(name string) int {
		for _, line := range strings.Split(string(mb), "\n") {
			fields := strings.Fields(line)
			if len(fields) == 2 && fields[0] == name {
				v, err := strconv.Atoi(fields[1])
				if err != nil {
					t.Fatalf("%s: bad value %q", name, fields[1])
				}
				return v
			}
		}
		t.Fatalf("metrics missing series %s:\n%s", name, mb)
		return 0
	}
	hits := metric("affinityd_cell_hits_total")
	execs := metric("affinityd_cell_executions_total")
	misses := metric("affinityd_cell_misses_total")
	if hits < 4 {
		t.Errorf("resumed run reused %d cells, want >= 4", hits)
	}
	if hits+execs != totalCells || misses != execs {
		t.Errorf("cell accounting: hits=%d misses=%d executions=%d, want hits+executions=%d and misses=executions",
			hits, misses, execs, totalCells)
	}
}

// TestFleetSmoke is the `make fleet-smoke` gate, the distributed story
// against real binaries:
//
//  1. Boot one coordinator and three workers (random ports, workers
//     joining via -join), all holding the same -fleet-token, waiting on
//     /v1/workers for all three to register — readiness is polled,
//     never slept for. A fourth worker with no token keeps knocking and
//     never joins, and a hand-rolled unsigned registration gets the 401
//     envelope: the authenticated transport is on for the whole run.
//  2. Submit a table1 campaign and kill -9 the best-scored worker (the
//     one placement loaded most) mid-grid. The coordinator must absorb
//     the loss — retry or hedge the orphaned cells elsewhere (visible
//     in affinityd_fleet_*), shift placement to the survivors — and
//     finish; the dead worker drops from /v1/workers/{id}.
//  3. The final body must be byte-identical to a cold single-process
//     run, with the coordinator's misses == executions invariant intact
//     (duplicates from hedging never double-fold).
func TestFleetSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("binary build and campaign runs in -short mode")
	}
	const totalCells = 9 // table1: 3 Qs x 3 measured applications
	req := `{"kind":"table1","params":{"fast":true,"budget_sec":0.5,"reps":1,"workers":3}}`
	bin := filepath.Join(t.TempDir(), "affinityd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	boot := func(args ...string) (*exec.Cmd, string) {
		t.Helper()
		cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = cmd.Stdout
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "http://"); i >= 0 && strings.Contains(line, "listening on") {
				go func() {
					for sc.Scan() {
					} // drain the pipe so the child never blocks on stdout
				}()
				return cmd, strings.Fields(line[i:])[0]
			}
		}
		t.Fatal("daemon never advertised its address")
		return nil, ""
	}
	get := func(base, path string) []byte {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	metric := func(base, name string) int {
		t.Helper()
		mb := get(base, "/metrics")
		for _, line := range strings.Split(string(mb), "\n") {
			fields := strings.Fields(line)
			if len(fields) == 2 && fields[0] == name {
				v, err := strconv.Atoi(fields[1])
				if err != nil {
					t.Fatalf("%s: bad value %q", name, fields[1])
				}
				return v
			}
		}
		t.Fatalf("metrics missing series %s:\n%s", name, mb)
		return 0
	}

	// Cold single-process reference body.
	coldSrv := service.New(service.Config{QueueDepth: 4, JobWorkers: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		coldSrv.Shutdown(ctx)
	}()
	coldLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coldHS := &http.Server{Handler: coldSrv.Handler()}
	go coldHS.Serve(coldLn)
	defer coldHS.Close()
	coldResp, err := http.Post("http://"+coldLn.Addr().String()+"/v1/campaigns", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	coldBody, _ := io.ReadAll(coldResp.Body)
	coldResp.Body.Close()
	if coldResp.StatusCode != http.StatusOK {
		t.Fatalf("cold run: %d %s", coldResp.StatusCode, coldBody)
	}

	// Fleet: one coordinator, three workers, all sharing a fleet token —
	// the smoke gate runs with the authenticated transport on. A short
	// hedge delay makes any straggler (including the one we orphan by
	// SIGKILL) re-dispatch quickly.
	const token = "fleet-smoke-secret"
	coord, coordBase := boot("-coordinator", "-fleet-token", token, "-hedge-ms", "250", "-jobs", "1", "-queue", "4")
	defer coord.Process.Kill()
	var workers []*exec.Cmd
	var workerBases []string
	for i := 0; i < 3; i++ {
		w, base := boot("-join", coordBase, "-fleet-token", token)
		defer w.Process.Kill()
		workers = append(workers, w)
		workerBases = append(workerBases, base)
	}
	// A rogue worker with no token: it keeps knocking, never joins.
	rogue, _ := boot("-join", coordBase)
	defer rogue.Process.Kill()

	// Readiness: poll the registry until all three workers are live.
	type workersView struct {
		Coordinator bool `json:"coordinator"`
		Workers     []struct {
			ID         string `json:"id"`
			URL        string `json:"url"`
			Dispatched int    `json:"dispatched"`
		} `json:"workers"`
	}
	deadline := time.Now().Add(60 * time.Second)
	var wv workersView
	for {
		if err := json.Unmarshal(get(coordBase, "/v1/workers"), &wv); err != nil {
			t.Fatal(err)
		}
		if len(wv.Workers) == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never reached 3 workers: %+v", wv)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !wv.Coordinator {
		t.Fatalf("/v1/workers does not report coordinator mode: %+v", wv)
	}

	// The rogue's unsigned registrations are being refused: the rejection
	// counter moves while the registry stays at three.
	for metric(coordBase, "affinityd_fleet_auth_rejections_total") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("coordinator never counted an auth rejection from the tokenless worker")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := json.Unmarshal(get(coordBase, "/v1/workers"), &wv); err != nil {
		t.Fatal(err)
	}
	if len(wv.Workers) != 3 {
		t.Fatalf("tokenless worker joined the registry: %+v", wv)
	}

	// A hand-rolled unsigned registration gets the standard 401 envelope.
	unauth, err := http.Post(coordBase+"/v1/fleet/register", "application/json",
		strings.NewReader(`{"url":"http://203.0.113.9:7101","engine_version":"whatever"}`))
	if err != nil {
		t.Fatal(err)
	}
	ub, _ := io.ReadAll(unauth.Body)
	unauth.Body.Close()
	if unauth.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unsigned register: status %d %s, want 401", unauth.StatusCode, ub)
	}
	var envlp struct {
		APIVersion string `json:"api_version"`
		Error      struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(ub, &envlp); err != nil {
		t.Fatalf("unsigned register response is not the envelope: %s", ub)
	}
	if envlp.APIVersion != "v1" || envlp.Error.Code != "unauthenticated" {
		t.Fatalf("unsigned register envelope = %s, want v1/unauthenticated", ub)
	}

	// Submit async, then kill -9 a worker as soon as the grid is moving.
	ar, err := http.Post(coordBase+"/v1/campaigns", "application/json",
		strings.NewReader(strings.TrimSuffix(req, "}")+`,"async":true}`))
	if err != nil {
		t.Fatal(err)
	}
	ab, _ := io.ReadAll(ar.Body)
	ar.Body.Close()
	if ar.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: %d %s", ar.StatusCode, ab)
	}
	var accepted struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(ab, &accepted); err != nil {
		t.Fatal(err)
	}
	jobView := func() (status string, done int) {
		t.Helper()
		var v struct {
			Status    string `json:"status"`
			CellsDone int    `json:"cells_done"`
		}
		if err := json.Unmarshal(get(coordBase, "/v1/jobs/"+accepted.ID), &v); err != nil {
			t.Fatal(err)
		}
		return v.Status, v.CellsDone
	}
	for {
		if _, done := jobView(); done >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no cell completed before deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Kill the best-scored worker: the one placement has loaded the most
	// so far. Losing the scorer's favourite forces a visible placement
	// shift onto the survivors.
	if err := json.Unmarshal(get(coordBase, "/v1/workers"), &wv); err != nil {
		t.Fatal(err)
	}
	victim, deadID, maxDispatched := 0, "", -1
	for _, w := range wv.Workers {
		for i, base := range workerBases {
			if w.URL == base && w.Dispatched > maxDispatched {
				victim, deadID, maxDispatched = i, w.ID, w.Dispatched
			}
		}
	}
	if deadID == "" {
		t.Fatalf("no registered worker matches a booted base: %+v vs %v", wv, workerBases)
	}
	if err := workers[victim].Process.Kill(); err != nil { // SIGKILL: no goodbye
		t.Fatal(err)
	}
	workers[victim].Wait()

	// The campaign must still finish.
	for {
		status, _ := jobView()
		if status == "done" {
			break
		}
		if status != "running" && status != "queued" {
			t.Fatalf("job reached %q, want done", status)
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign did not finish after worker kill")
		}
		time.Sleep(10 * time.Millisecond)
	}
	fleetBody := get(coordBase, "/v1/jobs/"+accepted.ID+"/result")
	if !bytes.Equal(fleetBody, coldBody) {
		t.Errorf("fleet body differs from single-process run:\n%.200s\n%.200s", fleetBody, coldBody)
	}

	// The loss was absorbed remotely: cells ran on workers, the orphaned
	// dispatch retried or hedged, and the dead worker left the registry.
	remote := metric(coordBase, "affinityd_fleet_remote_cells_total")
	retries := metric(coordBase, "affinityd_fleet_retries_total")
	hedges := metric(coordBase, "affinityd_fleet_hedges_total")
	if remote < 1 {
		t.Errorf("no cells executed remotely (remote=%d)", remote)
	}
	if retries+hedges < 1 {
		t.Errorf("worker kill produced no retry or hedge (retries=%d hedges=%d)", retries, hedges)
	}
	if live := metric(coordBase, "affinityd_fleet_workers"); live != 2 {
		t.Errorf("affinityd_fleet_workers = %d after kill, want 2", live)
	}
	// The dead worker dropped from the detail surface too.
	if dr, err := http.Get(coordBase + "/v1/workers/" + deadID); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, dr.Body)
		dr.Body.Close()
		if dr.StatusCode != http.StatusNotFound {
			t.Errorf("GET /v1/workers/%s after kill: %d, want 404", deadID, dr.StatusCode)
		}
	}
	// Placement was scored, not round-robined: every dispatch recorded a
	// decision, and the survivors' detail rows show RTT measurements.
	if pd := metric(coordBase, "affinityd_fleet_placement_decisions_total"); pd < totalCells {
		t.Errorf("placement decisions = %d, want >= %d", pd, totalCells)
	}
	if err := json.Unmarshal(get(coordBase, "/v1/workers"), &wv); err != nil {
		t.Fatal(err)
	}
	measured := 0
	for _, w := range wv.Workers {
		var d struct {
			RTTCount int `json:"rtt_count"`
		}
		if err := json.Unmarshal(get(coordBase, "/v1/workers/"+w.ID), &d); err != nil {
			t.Fatal(err)
		}
		measured += d.RTTCount
	}
	if measured < 1 {
		t.Errorf("no survivor has an RTT measurement; placement shift invisible")
	}
	// Placement-independent accounting: every miss resolved to exactly
	// one execution, however many dispatch attempts it took.
	misses := metric(coordBase, "affinityd_cell_misses_total")
	execs := metric(coordBase, "affinityd_cell_executions_total")
	if misses != totalCells || execs != totalCells {
		t.Errorf("cell accounting: misses=%d executions=%d, want %d each", misses, execs, totalCells)
	}

	// The job view attributes remote cells to worker URLs.
	var attributed struct {
		CellsRemote int            `json:"cells_remote"`
		Workers     map[string]int `json:"workers"`
	}
	if err := json.Unmarshal(get(coordBase, "/v1/jobs/"+accepted.ID), &attributed); err != nil {
		t.Fatal(err)
	}
	if attributed.CellsRemote < 1 || len(attributed.Workers) == 0 {
		t.Errorf("job view missing worker attribution: %+v", attributed)
	}

	coord.Process.Signal(syscall.SIGTERM)
	coord.Wait()
}
