// Package repro's benchmark harness regenerates every table and figure of
// the paper's evaluation, one benchmark per exhibit (see DESIGN.md §4 for
// the experiment index). Each benchmark reports the exhibit's headline
// quantity via b.ReportMetric so the paper-vs-measured comparison in
// EXPERIMENTS.md can be refreshed from a single run:
//
//	go test -bench=. -benchmem
//
// The benchmarks run at paper machine scale (16-processor Symmetry) with a
// reduced replication count so a full sweep stays in the minutes range.
package repro

import (
	"math"
	"testing"

	"repro/internal/cache"
	"repro/internal/cachemodel"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/footprint"
	"repro/internal/memtrace"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// benchOptions returns paper-scale options trimmed for benchmarking.
func benchOptions() experiments.Options {
	o := experiments.DefaultOptions()
	o.Replications = 2
	o.MeasureBudget = 10 * simtime.Second
	return o
}

// BenchmarkCharacterize regenerates Figures 2-4: the applications'
// parallelism profiles, elapsed times and average demands in isolation.
func BenchmarkCharacterize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		chars, err := experiments.Characterize(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range chars {
			switch c.Name {
			case "MVA":
				b.ReportMetric(c.AvgDemand, "MVA-avg-demand")
			case "MATRIX":
				b.ReportMetric(c.AvgDemand, "MATRIX-avg-demand")
			case "GRAVITY":
				b.ReportMetric(c.AvgDemand, "GRAVITY-avg-demand")
			}
		}
	}
}

// BenchmarkTable1 regenerates Table 1: P^A and P^NA for every application
// pair at Q = 25, 100 and 400 ms. Headline metrics: MVA's P^NA at the
// extremes (paper: 914 µs and 2330 µs).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t1, err := experiments.Table1(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		q25, q400 := 25*simtime.Millisecond, 400*simtime.Millisecond
		b.ReportMetric(t1.Cells[q25]["MVA"].PNA.Micros(), "PNA-MVA-Q25-us")
		b.ReportMetric(t1.Cells[q400]["MVA"].PNA.Micros(), "PNA-MVA-Q400-us")
		b.ReportMetric(t1.Cells[q400]["GRAVITY"].PNA.Micros(), "PNA-GRAV-Q400-us")
		b.ReportMetric(t1.Cells[q400]["MATRIX"].PA["MVA"].Micros(), "PA-MAT-vs-MVA-Q400-us")
	}
}

// compareAllMixes runs the Section-6 comparison across all six mixes.
func compareAllMixes(b *testing.B, policies []string) *experiments.CompareResult {
	b.Helper()
	cr, err := experiments.ComparePolicies(benchOptions(), workload.Mixes(), policies)
	if err != nil {
		b.Fatal(err)
	}
	return cr
}

// BenchmarkFigure5 regenerates Figure 5: response times of Dynamic,
// Dyn-Aff, and Dyn-Aff-Delay relative to Equipartition over all six mixes.
// Headline metric: the mean relative response time of Dynamic (paper: < 1
// for every job).
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cr := compareAllMixes(b, []string{"Equipartition", "Dynamic", "Dyn-Aff", "Dyn-Aff-Delay"})
		var sum float64
		var n int
		var worst float64
		for _, mix := range workload.Mixes() {
			rel, err := cr.Relative(mix.Number, "Dynamic", "Equipartition")
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range rel {
				sum += r
				n++
				if r > worst {
					worst = r
				}
			}
		}
		b.ReportMetric(sum/float64(n), "mean-relRT-Dynamic")
		b.ReportMetric(worst, "max-relRT-Dynamic")
	}
}

// BenchmarkFigure6 regenerates Figure 6: Dyn-Aff-NoPri relative to
// Equipartition. Headline metric: the spread (max − min) of the relative
// response times, which the paper shows is dramatically larger than for the
// fair policies.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cr := compareAllMixes(b, []string{"Equipartition", "Dyn-Aff-NoPri"})
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, mix := range workload.Mixes() {
			rel, err := cr.Relative(mix.Number, "Dyn-Aff-NoPri", "Equipartition")
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range rel {
				lo = math.Min(lo, r)
				hi = math.Max(hi, r)
			}
		}
		b.ReportMetric(hi-lo, "relRT-spread-NoPri")
	}
}

// BenchmarkTable3 regenerates Table 3: the influence of affinity on
// scheduling for mix #5. Headline metrics: %affinity under Dynamic vs
// Dyn-Aff (paper: 21-31% vs 54-83%) and the reallocation reduction under
// yield-delay (paper: about one third).
func BenchmarkTable3(b *testing.B) {
	mix5, _ := workload.MixByNumber(5)
	for i := 0; i < b.N; i++ {
		cr, err := experiments.ComparePolicies(benchOptions(), []workload.Mix{mix5},
			[]string{"Equipartition", "Dynamic", "Dyn-Aff", "Dyn-Aff-Delay"})
		if err != nil {
			b.Fatal(err)
		}
		sums := cr.Summaries[5]
		b.ReportMetric(100*sums["Dynamic"][1].PctAffinity, "aff-pct-Dynamic-GRAV")
		b.ReportMetric(100*sums["Dyn-Aff"][1].PctAffinity, "aff-pct-DynAff-GRAV")
		b.ReportMetric(sums["Dyn-Aff"][1].Reallocations, "reallocs-DynAff-GRAV")
		b.ReportMetric(sums["Dyn-Aff-Delay"][1].Reallocations, "reallocs-Delay-GRAV")
		b.ReportMetric(sums["Dyn-Aff"][1].IntervalMs, "interval-DynAff-GRAV-ms")
	}
}

// BenchmarkTable4 regenerates Table 4: average job response times of the
// homogeneous mixes under Dyn-Aff vs Dyn-Aff-NoPri.
func BenchmarkTable4(b *testing.B) {
	mix1, _ := workload.MixByNumber(1)
	mix4, _ := workload.MixByNumber(4)
	for i := 0; i < b.N; i++ {
		cr, err := experiments.ComparePolicies(benchOptions(),
			[]workload.Mix{mix1, mix4},
			[]string{"Equipartition", "Dyn-Aff", "Dyn-Aff-NoPri"})
		if err != nil {
			b.Fatal(err)
		}
		mean := func(mix int, pol string) float64 {
			sums := cr.Summaries[mix][pol]
			t := 0.0
			for _, s := range sums {
				t += s.MeanRT()
			}
			return t / float64(len(sums))
		}
		b.ReportMetric(mean(1, "Dyn-Aff"), "mix1-DynAff-RT-s")
		b.ReportMetric(mean(1, "Dyn-Aff-NoPri"), "mix1-NoPri-RT-s")
		b.ReportMetric(mean(4, "Dyn-Aff"), "mix4-DynAff-RT-s")
		b.ReportMetric(mean(4, "Dyn-Aff-NoPri"), "mix4-NoPri-RT-s")
	}
}

// BenchmarkFigure8to13 regenerates Figures 8-13: the future-machine
// extrapolation over all six mixes. Headline metrics: Dynamic's relative RT
// for mix 5's GRAVITY at product 1 and 4096, and its crossover product.
func BenchmarkFigure8to13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := benchOptions()
		cr := compareAllMixes(b, []string{"Equipartition", "Dynamic", "Dyn-Aff", "Dyn-Aff-Delay"})
		t1, err := experiments.Table1(opts)
		if err != nil {
			b.Fatal(err)
		}
		scen, err := experiments.FutureScenarios(cr, t1)
		if err != nil {
			b.Fatal(err)
		}
		charts, err := experiments.FutureCharts(cr, scen,
			[]string{"Dynamic", "Dyn-Aff", "Dyn-Aff-Delay"}, 4096)
		if err != nil {
			b.Fatal(err)
		}
		if len(charts) != 6 {
			b.Fatalf("charts = %d, want 6", len(charts))
		}
		sc := scen[experiments.ScenarioKey{Mix: 5, App: "GRAVITY"}]
		ys, err := sc.SweepProduct("Dynamic", []float64{1, 4096})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ys[0], "relRT-Dynamic-grav5-at-1")
		b.ReportMetric(ys[1], "relRT-Dynamic-grav5-at-4096")
		cross, err := sc.Crossover("Dynamic", model.Products(1<<20, 4))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cross, "crossover-Dynamic-grav5")
	}
}

// BenchmarkAblationFootprint validates the analytic footprint model used in
// the scheduler against the exact cache simulator on the warm/intervene/
// resume protocol, reporting the prediction ratio (DESIGN.md §4 calls this
// out as the central modelling substitution).
func BenchmarkAblationFootprint(b *testing.B) {
	mcCache := cache.SymmetryConfig()
	measured := memtrace.MVAPattern()
	interv := memtrace.MatrixPattern()
	const q = 200 * simtime.Millisecond
	for i := 0; i < b.N; i++ {
		c := cache.MustNew(mcCache)
		gm := memtrace.NewGenerator(measured, 0, 11)
		gi := memtrace.NewGenerator(interv, 1<<40, 13)
		runFor := func(g *memtrace.Generator, owner int, d simtime.Duration) int {
			misses := 0
			start := g.Elapsed()
			for g.Elapsed()-start < d {
				addr, _ := g.Next()
				if !c.Access(owner, addr) {
					misses++
				}
			}
			return misses
		}
		runFor(gm, 0, simtime.Second)
		resident := float64(c.Resident(0))
		runFor(gi, 1, q)
		exact := runFor(gm, 0, q)

		fp := footprint.MustNew(mcCache.Lines())
		fp.Load(0, resident)
		fp.RunSegment(1, interv, 0, q, 0)
		predicted := footprint.Segment(measured, 0, q, fp.Resident(0))
		if exact > 0 {
			b.ReportMetric(predicted/float64(exact), "model/exact-miss-ratio")
		}
	}
}

// BenchmarkTimeShareBaseline contrasts quantum-driven time sharing with the
// space-sharing policies on mix 5 — the Section-8 comparison motivating why
// this paper's affinity conclusions differ from time-sharing studies.
func BenchmarkTimeShareBaseline(b *testing.B) {
	mix5, _ := workload.MixByNumber(5)
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		run := func(pol string) *sched.Result {
			p, _ := core.ByName(pol)
			res, err := sched.Run(sched.Config{
				Machine: opts.Machine,
				Policy:  p,
				Apps:    mix5.Apps(opts.Seed),
				Seed:    opts.Seed,
			})
			if err != nil {
				b.Fatal(err)
			}
			return &res
		}
		ts := run("TimeShare-RR")
		aff := run("Dyn-Aff")
		b.ReportMetric(ts.MeanResponse()/aff.MeanResponse(), "timeshare/dynaff-RT")
		// Time sharing migrates constantly: reallocations per job.
		b.ReportMetric(float64(ts.Jobs[0].Reallocations), "timeshare-reallocs-MAT")
		b.ReportMetric(ts.Jobs[0].PctAffinity()*100, "timeshare-aff-pct-MAT")
	}
}

// BenchmarkAblationExactEngine runs the same scaled-down scheduling
// experiment under the analytic footprint cache model and under full
// reference-stream replay, reporting the response-time agreement — the
// whole-system version of BenchmarkAblationFootprint.
func BenchmarkAblationExactEngine(b *testing.B) {
	apps := func() []workload.App {
		return []workload.App{
			workload.MatrixSized(6, 200*simtime.Millisecond),
			workload.GravitySized(3, 24, 50*simtime.Millisecond, 20*simtime.Millisecond, 7),
		}
	}
	mc := benchOptions().Machine
	for i := 0; i < b.N; i++ {
		run := func(kind cachemodel.Kind) sched.Result {
			pol, _ := core.ByName("Dyn-Aff")
			res, err := sched.Run(sched.Config{
				Machine: mc, Policy: pol, Apps: apps(), Seed: 1, CacheModel: kind,
			})
			if err != nil {
				b.Fatal(err)
			}
			return res
		}
		fp := run(cachemodel.KindFootprint)
		ex := run(cachemodel.KindExact)
		b.ReportMetric(fp.MeanResponse()/ex.MeanResponse(), "footprint/exact-RT")
		b.ReportMetric(fp.Jobs[1].MissLines/ex.Jobs[1].MissLines, "footprint/exact-misslines-GRAV")
	}
}

// BenchmarkAblationYieldDelay sweeps the yield-delay hold time on mix #5,
// reporting reallocations and response time per delay — the design-choice
// ablation behind Dyn-Aff-Delay's default (DESIGN.md §5).
func BenchmarkAblationYieldDelay(b *testing.B) {
	mix5, _ := workload.MixByNumber(5)
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		for _, delayMs := range []int64{0, 10, 20, 50} {
			pol := core.NewDynAffDelayD(simtime.Milliseconds(delayMs))
			res, err := sched.Run(sched.Config{
				Machine: opts.Machine,
				Policy:  pol,
				Apps:    mix5.Apps(opts.Seed),
				Seed:    opts.Seed,
			})
			if err != nil {
				b.Fatal(err)
			}
			var reallocs int
			for _, j := range res.Jobs {
				reallocs += j.Reallocations
			}
			suffix := simtime.Milliseconds(delayMs).String()
			b.ReportMetric(float64(reallocs), "reallocs-delay-"+suffix)
			b.ReportMetric(res.MeanResponse(), "meanRT-s-delay-"+suffix)
		}
	}
}

// BenchmarkAblationCreditSpending compares the Dynamic policy's behaviour
// with bursty (credit-spending) jobs: the GRAVITY job's response time under
// Dynamic vs under Equipartition is the benefit the credit scheme buys
// (without it, GRAVITY cannot exceed its equal share during bursts).
func BenchmarkAblationCreditSpending(b *testing.B) {
	mix5, _ := workload.MixByNumber(5)
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		run := func(polName string) sched.Result {
			pol, _ := core.ByName(polName)
			res, err := sched.Run(sched.Config{
				Machine: opts.Machine,
				Policy:  pol,
				Apps:    mix5.Apps(opts.Seed),
				Seed:    opts.Seed,
			})
			if err != nil {
				b.Fatal(err)
			}
			return res
		}
		dyn := run("Dynamic")
		equi := run("Equipartition")
		b.ReportMetric(dyn.Jobs[1].ResponseTime.SecondsF()/equi.Jobs[1].ResponseTime.SecondsF(),
			"grav-relRT-Dynamic")
		b.ReportMetric(dyn.Jobs[1].AvgAlloc, "grav-avgalloc-Dynamic")
	}
}

// BenchmarkSharedInvalidation measures the coherency-traffic effect: mix #5
// with GRAVITY's default shared fraction versus sharing disabled.
func BenchmarkSharedInvalidation(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		run := func(shared bool) sched.Result {
			mix5, _ := workload.MixByNumber(5)
			apps := mix5.Apps(opts.Seed)
			if !shared {
				for k := range apps {
					apps[k].SharedFrac = 0
				}
			}
			pol, _ := core.ByName("Dyn-Aff")
			res, err := sched.Run(sched.Config{
				Machine: opts.Machine,
				Policy:  pol,
				Apps:    apps,
				Seed:    opts.Seed,
			})
			if err != nil {
				b.Fatal(err)
			}
			return res
		}
		with := run(true)
		without := run(false)
		b.ReportMetric(with.Jobs[1].InvalLines, "grav-inval-lines")
		b.ReportMetric(with.MeanResponse()/without.MeanResponse(), "shared/unshared-RT")
	}
}
