// Futurecast: parameterize the paper's analytic response-time model from
// simulation measurements and extrapolate scheduling policy behaviour to
// future machines (Section 7, Figures 8-13).
//
// The program (1) measures cache penalties P^A/P^NA with the Section-4
// protocol, (2) runs the mix-5 scheduling experiment under each policy,
// (3) extracts the model parameters, and (4) sweeps processor-speed ×
// cache-size to find where each dynamic policy stops beating Equipartition.
//
// Run with:
//
//	go run ./examples/futurecast [-fast]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/workload"
)

func main() {
	fast := flag.Bool("fast", false, "scaled-down quick mode")
	flag.Parse()

	opts := experiments.DefaultOptions()
	if *fast {
		opts = experiments.FastOptions()
	}

	// Step 1-2: measurements.
	mix, err := workload.MixByNumber(5)
	if err != nil {
		log.Fatal(err)
	}
	policies := []string{"Equipartition", "Dynamic", "Dyn-Aff", "Dyn-Aff-Delay"}
	cr, err := experiments.ComparePolicies(opts, []workload.Mix{mix}, policies)
	if err != nil {
		log.Fatal(err)
	}
	t1, err := experiments.Table1(opts)
	if err != nil {
		log.Fatal(err)
	}

	// Step 3: parameter extraction.
	scen, err := experiments.FutureScenarios(cr, t1)
	if err != nil {
		log.Fatal(err)
	}
	key := experiments.ScenarioKey{Mix: 5, App: "GRAVITY"}
	sc := scen[key]
	fmt.Printf("Extracted model parameters for %s:\n", key)
	for _, pol := range policies {
		p := sc.Policies[pol]
		fmt.Printf("  %-14s work=%6.1f waste=%6.1f reallocs=%6.0f %%aff=%3.0f%% "+
			"P^A=%4.0fµs P^NA=%4.0fµs alloc=%4.1f\n",
			pol, p.Work, p.Waste, p.Reallocations, 100*p.PctAffinity,
			p.PA*1e6, p.PNA*1e6, p.AvgAlloc)
	}
	fmt.Println()

	// Step 4: sweep and crossovers.
	charts, err := experiments.FutureCharts(cr, scen,
		[]string{"Dynamic", "Dyn-Aff", "Dyn-Aff-Delay"}, 4096)
	if err != nil {
		log.Fatal(err)
	}
	for _, ch := range charts {
		if err := ch.Write(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}

	products := model.Products(1<<22, 4)
	fmt.Println("\nCrossover products (where the policy stops beating Equipartition):")
	for _, pol := range []string{"Dynamic", "Dyn-Aff", "Dyn-Aff-Delay"} {
		cross, err := sc.Crossover(pol, products)
		if err != nil {
			log.Fatal(err)
		}
		if cross == 0 {
			fmt.Printf("  %-14s never (within speed*cache <= %d)\n", pol, 1<<22)
		} else {
			fmt.Printf("  %-14s at speed*cache ~ %.0f\n", pol, cross)
		}
	}
	fmt.Println("\nThe oblivious Dynamic policy degrades first; adding affinity (Dyn-Aff)")
	fmt.Println("pushes the crossover out, and adding yield-delay pushes it further —")
	fmt.Println("the paper's Section 7 conclusion that affinity and yield-delay cost")
	fmt.Println("nothing today and matter on future machines.")
}
