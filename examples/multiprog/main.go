// Multiprog: the paper's full Section-6 experiment in one program — all six
// Table-2 workload mixes scheduled under all five policies, with per-job
// metrics and response times relative to Equipartition.
//
// Run with (about a minute at paper scale, or use -fast):
//
//	go run ./examples/multiprog [-fast]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
	"repro/internal/workload"
)

func main() {
	fast := flag.Bool("fast", false, "scaled-down applications and fewer replications")
	flag.Parse()

	opts := experiments.DefaultOptions()
	if *fast {
		opts = experiments.FastOptions()
	}
	policies := []string{"Equipartition", "Dynamic", "Dyn-Aff", "Dyn-Aff-Delay", "Dyn-Aff-NoPri"}
	cr, err := experiments.ComparePolicies(opts, workload.Mixes(), policies)
	if err != nil {
		log.Fatal(err)
	}

	// Figure 5: the well-behaved dynamic policies.
	fig5, err := cr.Figure5Report([]string{"Dynamic", "Dyn-Aff", "Dyn-Aff-Delay"})
	if err != nil {
		log.Fatal(err)
	}
	must(fig5.Write(os.Stdout))
	fmt.Println()

	// Figure 6: the artificial no-priority variant — note how erratic the
	// ratios are compared to Figure 5.
	fig6, err := cr.Figure5Report([]string{"Dyn-Aff-NoPri"})
	if err != nil {
		log.Fatal(err)
	}
	fig6.Title = "Figure 6 — Dyn-Aff-NoPri relative to Equipartition (unfairness!)"
	must(fig6.Write(os.Stdout))
	fmt.Println()

	// Table 3: why affinity doesn't matter (yet): compare the affinity
	// percentages with the response times.
	t3, err := cr.Table3Report(5, []string{"Dynamic", "Dyn-Aff", "Dyn-Aff-Delay"})
	if err != nil {
		log.Fatal(err)
	}
	must(t3.Write(os.Stdout))
	fmt.Println()

	// Table 4: sacrificing fairness for affinity buys (at best) noise.
	t4, err := cr.Table4Report([]int{1, 4}, "Dyn-Aff", "Dyn-Aff-NoPri")
	if err != nil {
		log.Fatal(err)
	}
	must(t4.Write(os.Stdout))

	fmt.Println()
	fmt.Println("Observations (cf. Section 6 of the paper):")
	fmt.Println(" 1. every dynamic policy beats Equipartition on every job (Fig 5 <= 1);")
	fmt.Println(" 2. the three dynamic variants are nearly identical today — affinity")
	fmt.Println("    scheduling buys almost nothing because cache penalties are small")
	fmt.Println("    compared with the time between reallocations (Table 3);")
	fmt.Println(" 3. ignoring the priority scheme makes response times erratic (Fig 6),")
	fmt.Println("    so fairness should not be sacrificed to affinity (Table 4).")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
