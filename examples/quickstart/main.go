// Quickstart: simulate one multiprogrammed workload on the modelled Sequent
// Symmetry under two scheduling policies and compare response times.
//
// This is the smallest end-to-end use of the library: build a machine,
// instantiate applications, run the discrete-event scheduler, read metrics.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/workload"
)

func main() {
	// The paper's testbed: a Sequent Symmetry, restricted to 16 processors.
	mc := machine.Symmetry()
	mc.Processors = 16

	// Workload mix #5 from the paper's Table 2: one blocked matrix
	// multiply (massive constant parallelism) multiprogrammed with one
	// Barnes-Hut simulation (bursty parallelism with barriers).
	apps := []workload.App{workload.Matrix(), workload.Gravity(42)}

	for _, mkPolicy := range []func() string{
		func() string { return "Equipartition" },
		func() string { return "Dyn-Aff" },
	} {
		name := mkPolicy()
		policy, ok := core.ByName(name)
		if !ok {
			log.Fatalf("unknown policy %s", name)
		}
		res, err := sched.Run(sched.Config{
			Machine: mc,
			Policy:  policy,
			Apps:    apps,
			Seed:    1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", res.Policy)
		for _, j := range res.Jobs {
			fmt.Printf("  %-8s response %6.2fs | held %4.1f CPUs | wasted %6.2f CPU-s | "+
				"%4d reallocations (%2.0f%% with affinity, every %3.0f ms)\n",
				j.App, j.ResponseTime.SecondsF(), j.AvgAlloc, j.Waste.SecondsF(),
				j.Reallocations, 100*j.PctAffinity(), j.ReallocInterval().Millis())
		}
	}

	fmt.Println("\nThe dynamic policy finishes both jobs sooner: reallocating")
	fmt.Println("processors in response to changing parallelism beats a static")
	fmt.Println("equal partition, even though every reallocation costs a context")
	fmt.Println("switch plus cache reloading — the paper's central result.")
}
