// Customapp: define your own parallel application — dependence graph plus
// cache reference pattern — and schedule it against the paper's workloads.
//
// The example builds a two-stage pipeline application (a "map" stage
// feeding a "reduce" stage through a narrow waist), gives it a streaming
// reference pattern, measures its cache penalties with the Section-4
// protocol, and multiprograms it with MATRIX under Equipartition and
// Dyn-Aff.
//
// Run with:
//
//	go run ./examples/customapp
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/measure"
	"repro/internal/memtrace"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// pipelineApp builds a fork-join pipeline: `width` map threads, a narrow
// shuffle barrier, then `width` reduce threads.
func pipelineApp(width int, mapWork, reduceWork simtime.Duration) workload.App {
	var b workload.GraphBuilder
	shuffle := b.AddThread(30 * simtime.Millisecond)
	sink := b.AddThread(30 * simtime.Millisecond)
	for i := 0; i < width; i++ {
		m := b.AddThread(mapWork)
		b.AddDep(m, shuffle)
		r := b.AddThread(reduceWork)
		b.AddDep(shuffle, r)
		b.AddDep(r, sink)
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return workload.App{
		Name:  "PIPELINE",
		Graph: g,
		// A streaming pattern: modest hot state, one large region walked
		// quickly (input scan), another walked slowly (aggregation table).
		Pattern: memtrace.Pattern{
			Name: "PIPELINE",
			Gap:  5 * simtime.Microsecond,
			Components: []memtrace.Component{
				{Lines: 96, Period: 1 * simtime.Millisecond},
				{Lines: 1400, Period: 40 * simtime.Millisecond},
				{Lines: 1800, Period: 500 * simtime.Millisecond, Permuted: true},
			},
		},
	}
}

func main() {
	mc := machine.Symmetry()
	mc.Processors = 16
	app := pipelineApp(48, 120*simtime.Millisecond, 200*simtime.Millisecond)

	// How expensive is it to move this application between processors?
	fmt.Println("Section-4 penalty measurement for PIPELINE:")
	for _, q := range measure.DefaultQs() {
		pen, err := measure.MeasurePenalties(mc, app.Pattern,
			[]memtrace.Pattern{memtrace.MatrixPattern()},
			measure.Options{Q: q, Budget: 10 * simtime.Second, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  Q=%-6v P^NA=%5.0fµs  P^A(vs MATRIX)=%5.0fµs\n",
			q, pen.PNA.Micros(), pen.PA["MATRIX"].Micros())
	}

	// Multiprogram it with MATRIX under two policies.
	fmt.Println("\nPIPELINE + MATRIX, 16 processors:")
	for _, name := range []string{"Equipartition", "Dyn-Aff"} {
		pol, _ := core.ByName(name)
		res, err := sched.Run(sched.Config{
			Machine: mc,
			Policy:  pol,
			Apps:    []workload.App{app, workload.Matrix()},
			Seed:    7,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s:\n", name)
		for _, j := range res.Jobs {
			fmt.Printf("    %-8s RT=%6.2fs  avg alloc=%4.1f  waste=%6.2f CPU-s  reallocs=%4d (%2.0f%% affinity)\n",
				j.App, j.ResponseTime.SecondsF(), j.AvgAlloc, j.Waste.SecondsF(),
				j.Reallocations, 100*j.PctAffinity())
		}
	}
}
