package measure

import (
	"reflect"
	"testing"

	"repro/internal/machine"
	"repro/internal/memtrace"
	"repro/internal/simtime"
)

// fast returns options that keep unit-test runs quick: a short budget with
// plenty of switch points.
func fast(q simtime.Duration) Options {
	return Options{Q: q, Budget: 3 * simtime.Second, Seed: 1}
}

func TestOptionsValidate(t *testing.T) {
	if err := (Options{Q: 0, Budget: simtime.Second}).Validate(); err == nil {
		t.Error("zero Q accepted")
	}
	if err := (Options{Q: simtime.Second, Budget: simtime.Millisecond}).Validate(); err == nil {
		t.Error("budget < Q accepted")
	}
	if err := fast(25 * simtime.Millisecond).Validate(); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
}

func TestRegimeString(t *testing.T) {
	if Stationary.String() != "stationary" || Migrating.String() != "migrating" ||
		Multiprog.String() != "multiprog" {
		t.Error("regime names wrong")
	}
	if Regime(9).String() == "" {
		t.Error("unknown regime has empty name")
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	mc := machine.Symmetry()
	mc.Processors = 0
	if _, err := Run(mc, memtrace.MVAPattern(), memtrace.Pattern{}, Stationary, fast(25*simtime.Millisecond)); err == nil {
		t.Error("bad machine accepted")
	}
	if _, err := Run(machine.Symmetry(), memtrace.MVAPattern(), memtrace.Pattern{}, Stationary, Options{}); err == nil {
		t.Error("bad options accepted")
	}
}

func TestStationaryBaselineProperties(t *testing.T) {
	mc := machine.Symmetry()
	opts := fast(25 * simtime.Millisecond)
	res, err := Run(mc, memtrace.MatrixPattern(), memtrace.Pattern{}, Stationary, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResponseTime < opts.Budget {
		t.Errorf("response time %v shorter than pure compute budget %v", res.ResponseTime, opts.Budget)
	}
	if res.Switches == 0 {
		t.Error("no switches occurred")
	}
	if res.Misses == 0 || res.Misses >= res.Accesses {
		t.Errorf("implausible miss count %d of %d", res.Misses, res.Accesses)
	}
}

func TestMigratingCostsMoreThanStationary(t *testing.T) {
	mc := machine.Symmetry()
	opts := fast(25 * simtime.Millisecond)
	for _, p := range memtrace.Patterns() {
		stat, err := Run(mc, p, memtrace.Pattern{}, Stationary, opts)
		if err != nil {
			t.Fatal(err)
		}
		mig, err := Run(mc, p, memtrace.Pattern{}, Migrating, opts)
		if err != nil {
			t.Fatal(err)
		}
		if mig.ResponseTime <= stat.ResponseTime {
			t.Errorf("%s: migrating RT %v not greater than stationary %v",
				p.Name, mig.ResponseTime, stat.ResponseTime)
		}
		if mig.Misses <= stat.Misses {
			t.Errorf("%s: migrating misses %d not greater than stationary %d",
				p.Name, mig.Misses, stat.Misses)
		}
	}
}

func TestMultiprogBetweenStationaryAndMigrating(t *testing.T) {
	// The affinity penalty must be positive but smaller than the
	// no-affinity penalty: an intervening task ejects only part of the
	// returning task's context.
	mc := machine.Symmetry()
	opts := fast(25 * simtime.Millisecond)
	pen, err := MeasurePenalties(mc, memtrace.MVAPattern(), []memtrace.Pattern{memtrace.MatrixPattern()}, opts)
	if err != nil {
		t.Fatal(err)
	}
	pa := pen.PA["MATRIX"]
	if pa <= 0 {
		t.Fatalf("P^A = %v, want positive", pa)
	}
	if pa >= pen.PNA {
		t.Fatalf("P^A %v not less than P^NA %v", pa, pen.PNA)
	}
}

func TestPenaltiesGrowWithQ(t *testing.T) {
	// Paper: both penalties increase with Q, because longer quanta touch
	// (and let intervening tasks eject) more data.
	mc := machine.Symmetry()
	prevPNA := simtime.Duration(-1)
	for _, q := range []simtime.Duration{25 * simtime.Millisecond, 100 * simtime.Millisecond} {
		opts := Options{Q: q, Budget: 5 * simtime.Second, Seed: 1}
		pen, err := MeasurePenalties(mc, memtrace.MVAPattern(), nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		if pen.PNA <= prevPNA {
			t.Errorf("P^NA at Q=%v is %v, not greater than %v at smaller Q", q, pen.PNA, prevPNA)
		}
		prevPNA = pen.PNA
	}
}

func TestPNAExceedsSwitchPathAtLargeQ(t *testing.T) {
	// The paper's headline Section-4 observation: the cache effect of a
	// reallocation can exceed the 750 µs kernel path length.
	mc := machine.Symmetry()
	opts := Options{Q: 100 * simtime.Millisecond, Budget: 5 * simtime.Second, Seed: 1}
	pen, err := MeasurePenalties(mc, memtrace.MVAPattern(), nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if pen.PNA <= mc.SwitchPath {
		t.Errorf("P^NA %v does not exceed switch path %v", pen.PNA, mc.SwitchPath)
	}
}

func TestDeterminism(t *testing.T) {
	mc := machine.Symmetry()
	opts := fast(25 * simtime.Millisecond)
	a, err := Run(mc, memtrace.GravityPattern(), memtrace.MVAPattern(), Multiprog, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(mc, memtrace.GravityPattern(), memtrace.MVAPattern(), Multiprog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("identical runs differ:\n%+v\n%+v", a, b)
	}
}

func TestPerSwitch(t *testing.T) {
	if got := perSwitch(1000, 10); got != 100 {
		t.Errorf("perSwitch = %v", got)
	}
	if got := perSwitch(1000, 0); got != 0 {
		t.Errorf("perSwitch with zero switches = %v", got)
	}
	if got := perSwitch(-50, 10); got != 0 {
		t.Errorf("negative delta not clamped: %v", got)
	}
}

func TestBuildTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("table build is seconds-long")
	}
	mc := machine.Symmetry()
	qs := []simtime.Duration{25 * simtime.Millisecond, 100 * simtime.Millisecond}
	tbl, err := BuildTable1(mc, memtrace.Patterns(), qs, 4*simtime.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Apps) != 3 {
		t.Fatalf("apps = %v", tbl.Apps)
	}
	for _, q := range qs {
		for _, app := range tbl.Apps {
			pen, ok := tbl.Cells[q][app]
			if !ok {
				t.Fatalf("missing cell %v/%s", q, app)
			}
			if pen.PNA <= 0 {
				t.Errorf("%s at Q=%v: P^NA = %v, want positive", app, q, pen.PNA)
			}
			if len(pen.PA) != 3 {
				t.Errorf("%s at Q=%v: %d P^A entries, want 3", app, q, len(pen.PA))
			}
			for iv, pa := range pen.PA {
				if pa < 0 {
					t.Errorf("%s/%s: negative P^A %v", app, iv, pa)
				}
				if pa >= pen.PNA {
					t.Errorf("%s/%s at Q=%v: P^A %v >= P^NA %v", app, iv, q, pa, pen.PNA)
				}
			}
		}
	}
}

// TestMeasureCellMatchesBuildTable1 checks the single-cell entry point
// reproduces the corresponding BuildTable1 cell exactly — the contract
// the experiments layer's cell decomposition relies on.
func TestMeasureCellMatchesBuildTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement runs in -short mode")
	}
	mc := machine.Symmetry()
	pats := memtrace.Patterns()
	qs := []simtime.Duration{25 * simtime.Millisecond, 100 * simtime.Millisecond}
	budget := 500 * simtime.Millisecond
	tbl, err := BuildTable1(mc, pats, qs, budget, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		for pi, p := range pats {
			pen, err := MeasureCell(mc, pats, pi, q, budget, 7)
			if err != nil {
				t.Fatalf("%s at Q=%v: %v", p.Name, q, err)
			}
			if !reflect.DeepEqual(pen, tbl.Cells[q][p.Name]) {
				t.Errorf("%s at Q=%v: MeasureCell differs from BuildTable1 cell\ncell:  %+v\ntable: %+v",
					p.Name, q, pen, tbl.Cells[q][p.Name])
			}
		}
	}
	if _, err := MeasureCell(mc, pats, -1, qs[0], budget, 7); err == nil {
		t.Error("negative measured index accepted")
	}
	if _, err := MeasureCell(mc, pats, len(pats), qs[0], budget, 7); err == nil {
		t.Error("out-of-range measured index accepted")
	}
}
