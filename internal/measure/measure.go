// Package measure reproduces the paper's Section 4 experiment: quantifying
// the per-context-switch cache penalties P^A (task resumes on a processor
// for which it has affinity, after an intervening task ran there) and P^NA
// (task resumes on a processor with no affinity, i.e. a cold cache).
//
// The experimental design follows the paper exactly. The measured program
// runs on a single processor under a special allocator that reschedules it
// every Q of its own execution time, taking one of three actions at each
// switch point:
//
//   - Stationary: the program is immediately replaced; its response time
//     RT_stationary is the baseline.
//   - Migrating: the cache is flushed (the paper streams through memory),
//     then the program is replaced, capturing the no-affinity penalty;
//     response time RT_migrating.
//   - Multiprogrammed: a task from another program runs on the processor
//     for Q, then the original is replaced, capturing the penalty incurred
//     despite affinity; response time RT_multiprog.
//
// Then P^NA = (RT_migrating − RT_stationary)/#switches and
// P^A = (RT_multiprog − RT_stationary)/#switches.
//
// "Response time" here is the measured program's own accumulated time
// (compute + its cache-miss stalls + its switch path costs), so the
// intervening program's execution does not pollute the numerator — the
// deltas isolate pure cache effects, exactly the quantities tabulated in
// the paper's Table 1.
package measure

import (
	"context"
	"fmt"

	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/memtrace"
	"repro/internal/parallel"
	"repro/internal/simtime"
)

// Regime selects the action taken at each switch point.
type Regime int

// The three Section-4 regimes.
const (
	Stationary Regime = iota
	Migrating
	Multiprog
)

// String names the regime.
func (r Regime) String() string {
	switch r {
	case Stationary:
		return "stationary"
	case Migrating:
		return "migrating"
	case Multiprog:
		return "multiprog"
	}
	return fmt.Sprintf("Regime(%d)", int(r))
}

// Options configures a measurement run.
type Options struct {
	// Q is the rescheduling interval.
	Q simtime.Duration
	// Budget is the amount of pure compute the measured program executes;
	// the run ends when it is consumed.
	Budget simtime.Duration
	// Seed fixes all random walks in the run.
	Seed uint64
}

// Validate checks the options.
func (o Options) Validate() error {
	if o.Q <= 0 {
		return fmt.Errorf("measure: Q must be positive, got %v", o.Q)
	}
	if o.Budget < o.Q {
		return fmt.Errorf("measure: budget %v shorter than one quantum %v", o.Budget, o.Q)
	}
	return nil
}

// RunResult reports one single-regime run.
type RunResult struct {
	Regime Regime
	// ResponseTime is the measured program's accumulated own time.
	ResponseTime simtime.Duration
	// Switches is the number of rescheduling points that occurred.
	Switches int
	// Misses is the measured program's cache miss count.
	Misses uint64
	// Accesses is the measured program's reference count.
	Accesses uint64
}

// ownerMeasured and ownerIntervening tag cache lines in the shared cache.
const (
	ownerMeasured    = 0
	ownerIntervening = 1
)

// interveningBase keeps the intervening program's address space disjoint
// from the measured program's (separate processes share nothing).
const interveningBase = 1 << 40

// Run performs one single-processor run of the measured pattern under the
// given regime. For Multiprog, intervening supplies the program run between
// successive dispatches of the measured one; it is ignored otherwise.
func Run(mc machine.Config, measured memtrace.Pattern, intervening memtrace.Pattern, regime Regime, opts Options) (RunResult, error) {
	if err := mc.Validate(); err != nil {
		return RunResult{}, err
	}
	if err := opts.Validate(); err != nil {
		return RunResult{}, err
	}
	c, err := cache.New(mc.Cache)
	if err != nil {
		return RunResult{}, err
	}

	gen := memtrace.NewGenerator(measured, 0, opts.Seed)
	var inter *memtrace.Generator
	if regime == Multiprog {
		inter = memtrace.NewGenerator(intervening, interveningBase, opts.Seed^0x5bd1e995)
	}

	var (
		own        simtime.Duration // measured program's accumulated time
		nextSwitch = simtime.Duration(opts.Q)
		switches   int
		misses     uint64
		accesses   uint64
	)
	for gen.Elapsed() < opts.Budget {
		addr, think := gen.Next()
		own += mc.Compute(think)
		accesses++
		if !c.Access(ownerMeasured, addr) {
			misses++
			own += mc.LineFill
		}
		if own >= nextSwitch {
			switches++
			own += mc.SwitchPath
			switch regime {
			case Stationary:
				// Immediately replaced: no cache disturbance.
			case Migrating:
				c.Flush()
			case Multiprog:
				runIntervening(mc, c, inter, opts.Q)
			}
			nextSwitch = own + opts.Q
		}
	}
	return RunResult{
		Regime:       regime,
		ResponseTime: own,
		Switches:     switches,
		Misses:       misses,
		Accesses:     accesses,
	}, nil
}

// runIntervening executes the intervening program on the same cache for q
// of its own time. Its time does not count against the measured program.
func runIntervening(mc machine.Config, c *cache.Cache, gen *memtrace.Generator, q simtime.Duration) {
	var t simtime.Duration
	for t < q {
		addr, think := gen.Next()
		t += mc.Compute(think)
		if !c.Access(ownerIntervening, addr) {
			t += mc.LineFill
		}
	}
}

// Penalties holds the derived per-switch cache penalties for one measured
// application.
type Penalties struct {
	Measured string
	Q        simtime.Duration
	// PNA is the no-affinity penalty per switch.
	PNA simtime.Duration
	// PA maps intervening application name to the affinity penalty per
	// switch when that application runs in between.
	PA map[string]simtime.Duration
	// Stationary, Migrating and MultiprogRT retain the underlying runs for
	// reporting.
	Stationary RunResult
	Migrating  RunResult
	Multi      map[string]RunResult
}

// MeasurePenalties runs the full Section-4 protocol for one measured
// application against a set of intervening applications at one Q, and
// derives P^NA and P^A.
func MeasurePenalties(mc machine.Config, measured memtrace.Pattern, intervening []memtrace.Pattern, opts Options) (Penalties, error) {
	stat, err := Run(mc, measured, memtrace.Pattern{}, Stationary, opts)
	if err != nil {
		return Penalties{}, err
	}
	mig, err := Run(mc, measured, memtrace.Pattern{}, Migrating, opts)
	if err != nil {
		return Penalties{}, err
	}
	p := Penalties{
		Measured:   measured.Name,
		Q:          opts.Q,
		PNA:        perSwitch(mig.ResponseTime-stat.ResponseTime, mig.Switches),
		PA:         make(map[string]simtime.Duration, len(intervening)),
		Stationary: stat,
		Migrating:  mig,
		Multi:      make(map[string]RunResult, len(intervening)),
	}
	for _, iv := range intervening {
		multi, err := Run(mc, measured, iv, Multiprog, opts)
		if err != nil {
			return Penalties{}, err
		}
		p.Multi[iv.Name] = multi
		p.PA[iv.Name] = perSwitch(multi.ResponseTime-stat.ResponseTime, multi.Switches)
	}
	return p, nil
}

func perSwitch(delta simtime.Duration, switches int) simtime.Duration {
	if switches <= 0 {
		return 0
	}
	d := delta / simtime.Duration(switches)
	if d < 0 {
		// Sampling noise can push a tiny negative; clamp, a penalty is
		// non-negative by definition.
		return 0
	}
	return d
}

// Table1 reproduces the paper's Table 1: for every measured application,
// every intervening application, and every Q, the penalties P^NA and P^A.
type Table1 struct {
	Qs   []simtime.Duration
	Apps []string
	// Cells[q][measured] holds the penalties for that combination.
	Cells map[simtime.Duration]map[string]Penalties
}

// DefaultQs returns the paper's three rescheduling intervals: 25, 100 and
// 400 ms.
func DefaultQs() []simtime.Duration {
	return []simtime.Duration{
		25 * simtime.Millisecond,
		100 * simtime.Millisecond,
		400 * simtime.Millisecond,
	}
}

// BuildTable1 runs the complete protocol over all application pairs and Qs.
// budget is the per-run compute budget; seed fixes the random streams.
func BuildTable1(mc machine.Config, patterns []memtrace.Pattern, qs []simtime.Duration, budget simtime.Duration, seed uint64) (Table1, error) {
	return BuildTable1Ctx(context.Background(), mc, patterns, qs, budget, seed, 0)
}

// BuildTable1Ctx is BuildTable1 with cancellation and a worker bound,
// fanning the (Q, measured application) cells out over workers goroutines
// (zero means runtime.GOMAXPROCS(0), one is sequential). Every cell is an
// independent set of single-processor runs with its own caches and
// generators seeded only by (seed, Q, pattern), so the table is identical
// for every worker count.
func BuildTable1Ctx(ctx context.Context, mc machine.Config, patterns []memtrace.Pattern, qs []simtime.Duration, budget simtime.Duration, seed uint64, workers int) (Table1, error) {
	t := Table1{
		Qs:    qs,
		Cells: make(map[simtime.Duration]map[string]Penalties),
	}
	for _, p := range patterns {
		t.Apps = append(t.Apps, p.Name)
	}
	// One slot per (q, measured) cell; idx = qi*len(patterns) + pi.
	cells := make([]Penalties, len(qs)*len(patterns))
	err := parallel.ForEach(ctx, workers, len(cells), func(ctx context.Context, idx int) error {
		q := qs[idx/len(patterns)]
		p := patterns[idx%len(patterns)]
		pen, err := MeasurePenalties(mc, p, patterns, Options{Q: q, Budget: budget, Seed: seed})
		if err != nil {
			return err
		}
		cells[idx] = pen
		return nil
	})
	if err != nil {
		return Table1{}, err
	}
	for qi, q := range qs {
		t.Cells[q] = make(map[string]Penalties)
		for pi, p := range patterns {
			t.Cells[q][p.Name] = cells[qi*len(patterns)+pi]
		}
	}
	return t, nil
}
