// Package measure reproduces the paper's Section 4 experiment: quantifying
// the per-context-switch cache penalties P^A (task resumes on a processor
// for which it has affinity, after an intervening task ran there) and P^NA
// (task resumes on a processor with no affinity, i.e. a cold cache).
//
// The experimental design follows the paper exactly. The measured program
// runs on a single processor under a special allocator that reschedules it
// every Q of its own execution time, taking one of three actions at each
// switch point:
//
//   - Stationary: the program is immediately replaced; its response time
//     RT_stationary is the baseline.
//   - Migrating: the cache is flushed (the paper streams through memory),
//     then the program is replaced, capturing the no-affinity penalty;
//     response time RT_migrating.
//   - Multiprogrammed: a task from another program runs on the processor
//     for Q, then the original is replaced, capturing the penalty incurred
//     despite affinity; response time RT_multiprog.
//
// Then P^NA = (RT_migrating − RT_stationary)/#switches and
// P^A = (RT_multiprog − RT_stationary)/#switches.
//
// "Response time" here is the measured program's own accumulated time
// (compute + its cache-miss stalls + its switch path costs), so the
// intervening program's execution does not pollute the numerator — the
// deltas isolate pure cache effects, exactly the quantities tabulated in
// the paper's Table 1.
package measure

import (
	"context"
	"fmt"

	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/memtrace"
	"repro/internal/parallel"
	"repro/internal/simtime"
)

// Regime selects the action taken at each switch point.
type Regime int

// The three Section-4 regimes.
const (
	Stationary Regime = iota
	Migrating
	Multiprog
)

// String names the regime.
func (r Regime) String() string {
	switch r {
	case Stationary:
		return "stationary"
	case Migrating:
		return "migrating"
	case Multiprog:
		return "multiprog"
	}
	return fmt.Sprintf("Regime(%d)", int(r))
}

// Options configures a measurement run.
type Options struct {
	// Q is the rescheduling interval.
	Q simtime.Duration
	// Budget is the amount of pure compute the measured program executes;
	// the run ends when it is consumed.
	Budget simtime.Duration
	// Seed fixes all random walks in the run.
	Seed uint64
}

// Validate checks the options.
func (o Options) Validate() error {
	if o.Q <= 0 {
		return fmt.Errorf("measure: Q must be positive, got %v", o.Q)
	}
	if o.Budget < o.Q {
		return fmt.Errorf("measure: budget %v shorter than one quantum %v", o.Budget, o.Q)
	}
	return nil
}

// RunResult reports one single-regime run.
type RunResult struct {
	Regime Regime
	// ResponseTime is the measured program's accumulated own time.
	ResponseTime simtime.Duration
	// Switches is the number of rescheduling points that occurred.
	Switches int
	// Misses is the measured program's cache miss count.
	Misses uint64
	// Accesses is the measured program's reference count.
	Accesses uint64
}

// ownerMeasured and ownerIntervening tag cache lines in the shared cache.
const (
	ownerMeasured    = 0
	ownerIntervening = 1
)

// interveningBase keeps the intervening program's address space disjoint
// from the measured program's (separate processes share nothing).
const interveningBase = 1 << 40

// Stream is a precomputed prefix of one program's reference stream, plus a
// generator parked at the prefix end for the (rare) references beyond it.
//
// The reference streams of this experiment are fixed by (pattern, address
// base, seed) alone: think time is one gap per reference, and nothing the
// cache or the scheduler does feeds back into address generation. Every run
// of a Table 1 cell therefore replays the same measured stream, and every
// multiprogrammed run against the same intervening application consumes a
// prefix of the same intervening stream. Precomputing each stream once and
// sharing it read-only across runs (and across campaign workers) removes
// the dominant generator cost from the hot loop while staying trivially
// bitwise identical to per-reference generation.
type Stream struct {
	addrs []uint64
	gap   simtime.Duration
	tail  *memtrace.Generator // positioned after addrs; cloned, never mutated
}

// NewStream precomputes n references of the pattern's stream. A Stream is
// immutable after construction and safe for concurrent use.
func NewStream(pat memtrace.Pattern, base, seed uint64, n int) *Stream {
	g := memtrace.NewGenerator(pat, base, seed)
	s := &Stream{addrs: make([]uint64, n), gap: g.Gap()}
	g.FillBlock(s.addrs)
	s.tail = g
	return s
}

// measuredStream precomputes the measured program's stream for one run:
// exactly the references a budget's worth of compute performs.
func measuredStream(measured memtrace.Pattern, opts Options) *Stream {
	g := memtrace.NewGenerator(measured, 0, opts.Seed)
	return NewStream(measured, 0, opts.Seed, g.RefsFor(opts.Budget))
}

// interveningStream precomputes the intervening program's stream for one
// run. The amount consumed depends on cache behaviour, so the length is a
// heuristic (one budget's worth of its references); consumption beyond it
// falls back to the stream's tail generator.
func interveningStream(intervening memtrace.Pattern, opts Options) *Stream {
	g := memtrace.NewGenerator(intervening, interveningBase, opts.Seed^0x5bd1e995)
	return NewStream(intervening, interveningBase, opts.Seed^0x5bd1e995, g.RefsFor(opts.Budget))
}

// cursor is one run's private read position over a shared Stream.
type cursor struct {
	s    *Stream
	pos  int
	tail *memtrace.Generator // lazy clone of s.tail once pos passes the prefix
}

// Run performs one single-processor run of the measured pattern under the
// given regime. For Multiprog, intervening supplies the program run between
// successive dispatches of the measured one; it is ignored otherwise.
func Run(mc machine.Config, measured memtrace.Pattern, intervening memtrace.Pattern, regime Regime, opts Options) (RunResult, error) {
	if err := mc.Validate(); err != nil {
		return RunResult{}, err
	}
	if err := opts.Validate(); err != nil {
		return RunResult{}, err
	}
	var istream *Stream
	if regime == Multiprog {
		istream = interveningStream(intervening, opts)
	}
	return runStreams(mc, measuredStream(measured, opts), istream, regime, opts)
}

// runStreams is Run over precomputed streams (see MeasurePenalties and
// BuildTable1Ctx, which share streams across runs).
func runStreams(mc machine.Config, measured *Stream, intervening *Stream, regime Regime, opts Options) (RunResult, error) {
	if err := mc.Validate(); err != nil {
		return RunResult{}, err
	}
	if err := opts.Validate(); err != nil {
		return RunResult{}, err
	}
	c, err := cache.New(mc.Cache)
	if err != nil {
		return RunResult{}, err
	}

	var inter cursor
	if regime == Multiprog {
		inter = cursor{s: intervening}
	}

	var (
		own        simtime.Duration // measured program's accumulated time
		nextSwitch = simtime.Duration(opts.Q)
		switches   int
		misses     uint64
	)
	step := mc.Compute(measured.gap)
	for _, addr := range measured.addrs {
		own += step
		if !c.Access(ownerMeasured, addr) {
			misses++
			own += mc.LineFill
		}
		if own >= nextSwitch {
			switches++
			own += mc.SwitchPath
			switch regime {
			case Stationary:
				// Immediately replaced: no cache disturbance.
			case Migrating:
				c.Flush()
			case Multiprog:
				runIntervening(mc, c, &inter, opts.Q)
			}
			nextSwitch = own + opts.Q
		}
	}
	return RunResult{
		Regime:       regime,
		ResponseTime: own,
		Switches:     switches,
		Misses:       misses,
		Accesses:     uint64(len(measured.addrs)),
	}, nil
}

// interBlock is the address-batch size for the intervening stream's
// beyond-the-prefix tail path.
const interBlock = 256

// runIntervening executes the intervening program on the same cache for q
// of its own time. Its time does not count against the measured program.
func runIntervening(mc machine.Config, c *cache.Cache, cur *cursor, q simtime.Duration) {
	step := mc.Compute(cur.s.gap)
	var t simtime.Duration
	addrs := cur.s.addrs
	i := cur.pos
	for t < q && i < len(addrs) {
		t += step
		if !c.Access(ownerIntervening, addrs[i]) {
			t += mc.LineFill
		}
		i++
	}
	cur.pos = i
	if t >= q {
		return
	}
	// Prefix exhausted mid-quantum: continue on the tail generator. How
	// many more references fit depends on the misses along the way, so
	// blocks are fetched against an every-reference-hits upper bound; when
	// the quantum ends mid-block the generator rewinds to the block start
	// and re-consumes exactly the references used, landing bitwise where
	// per-call generation would.
	if cur.tail == nil {
		cur.tail = cur.s.tail.Clone()
	}
	gen := cur.tail
	var buf [interBlock]uint64
	var mark memtrace.Mark
	for t < q {
		n := len(buf)
		if step > 0 {
			if need := int((q - t + step - 1) / step); need < n {
				n = need
			}
		}
		gen.Save(&mark)
		blk := buf[:n]
		gen.FillBlock(blk)
		used := 0
		for _, addr := range blk {
			t += step
			if !c.Access(ownerIntervening, addr) {
				t += mc.LineFill
			}
			used++
			if t >= q {
				break
			}
		}
		if used < n {
			gen.Restore(&mark)
			gen.FillBlock(blk[:used])
		}
	}
}

// Penalties holds the derived per-switch cache penalties for one measured
// application.
type Penalties struct {
	Measured string
	Q        simtime.Duration
	// PNA is the no-affinity penalty per switch.
	PNA simtime.Duration
	// PA maps intervening application name to the affinity penalty per
	// switch when that application runs in between.
	PA map[string]simtime.Duration
	// Stationary, Migrating and MultiprogRT retain the underlying runs for
	// reporting.
	Stationary RunResult
	Migrating  RunResult
	Multi      map[string]RunResult
}

// MeasurePenalties runs the full Section-4 protocol for one measured
// application against a set of intervening applications at one Q, and
// derives P^NA and P^A.
func MeasurePenalties(mc machine.Config, measured memtrace.Pattern, intervening []memtrace.Pattern, opts Options) (Penalties, error) {
	if err := mc.Validate(); err != nil {
		return Penalties{}, err
	}
	if err := opts.Validate(); err != nil {
		return Penalties{}, err
	}
	ms := measuredStream(measured, opts)
	ivs := make([]*Stream, len(intervening))
	for i, iv := range intervening {
		ivs[i] = interveningStream(iv, opts)
	}
	return measurePenalties(mc, measured.Name, ms, intervening, ivs, opts)
}

// measurePenalties is MeasurePenalties over precomputed streams: the
// measured stream is replayed by all len(intervening)+2 runs rather than
// regenerated per run.
func measurePenalties(mc machine.Config, name string, measured *Stream, intervening []memtrace.Pattern, ivStreams []*Stream, opts Options) (Penalties, error) {
	stat, err := runStreams(mc, measured, nil, Stationary, opts)
	if err != nil {
		return Penalties{}, err
	}
	mig, err := runStreams(mc, measured, nil, Migrating, opts)
	if err != nil {
		return Penalties{}, err
	}
	p := Penalties{
		Measured:   name,
		Q:          opts.Q,
		PNA:        perSwitch(mig.ResponseTime-stat.ResponseTime, mig.Switches),
		PA:         make(map[string]simtime.Duration, len(intervening)),
		Stationary: stat,
		Migrating:  mig,
		Multi:      make(map[string]RunResult, len(intervening)),
	}
	for i, iv := range intervening {
		multi, err := runStreams(mc, measured, ivStreams[i], Multiprog, opts)
		if err != nil {
			return Penalties{}, err
		}
		p.Multi[iv.Name] = multi
		p.PA[iv.Name] = perSwitch(multi.ResponseTime-stat.ResponseTime, multi.Switches)
	}
	return p, nil
}

func perSwitch(delta simtime.Duration, switches int) simtime.Duration {
	if switches <= 0 {
		return 0
	}
	d := delta / simtime.Duration(switches)
	if d < 0 {
		// Sampling noise can push a tiny negative; clamp, a penalty is
		// non-negative by definition.
		return 0
	}
	return d
}

// MeasureCell runs the Section-4 protocol for a single (Q, measured
// application) cell of Table 1 in isolation. It reproduces the matching
// BuildTable1Ctx cell bitwise: the measured and intervening streams
// depend only on (pattern, budget, seed) — Q never enters stream
// construction — so rebuilding them here replays exactly the references
// the shared-stream table build replays. The cell caches of the sharded
// campaign path rely on this identity.
func MeasureCell(mc machine.Config, patterns []memtrace.Pattern, measured int, q, budget simtime.Duration, seed uint64) (Penalties, error) {
	if measured < 0 || measured >= len(patterns) {
		return Penalties{}, fmt.Errorf("measure: measured index %d out of range [0,%d)", measured, len(patterns))
	}
	if err := mc.Validate(); err != nil {
		return Penalties{}, err
	}
	opts := Options{Q: q, Budget: budget, Seed: seed}
	if err := opts.Validate(); err != nil {
		return Penalties{}, err
	}
	streamOpts := Options{Q: budget, Budget: budget, Seed: seed}
	ms := measuredStream(patterns[measured], streamOpts)
	ivs := make([]*Stream, len(patterns))
	for i, p := range patterns {
		ivs[i] = interveningStream(p, streamOpts)
	}
	return measurePenalties(mc, patterns[measured].Name, ms, patterns, ivs, opts)
}

// Table1 reproduces the paper's Table 1: for every measured application,
// every intervening application, and every Q, the penalties P^NA and P^A.
type Table1 struct {
	Qs   []simtime.Duration
	Apps []string
	// Cells[q][measured] holds the penalties for that combination.
	Cells map[simtime.Duration]map[string]Penalties
}

// DefaultQs returns the paper's three rescheduling intervals: 25, 100 and
// 400 ms.
func DefaultQs() []simtime.Duration {
	return []simtime.Duration{
		25 * simtime.Millisecond,
		100 * simtime.Millisecond,
		400 * simtime.Millisecond,
	}
}

// BuildTable1 runs the complete protocol over all application pairs and Qs.
// budget is the per-run compute budget; seed fixes the random streams.
func BuildTable1(mc machine.Config, patterns []memtrace.Pattern, qs []simtime.Duration, budget simtime.Duration, seed uint64) (Table1, error) {
	return BuildTable1Ctx(context.Background(), mc, patterns, qs, budget, seed, 0)
}

// BuildTable1Ctx is BuildTable1 with cancellation and a worker bound,
// fanning the (Q, measured application) cells out over workers goroutines
// (zero means runtime.GOMAXPROCS(0), one is sequential). Every cell is an
// independent set of single-processor runs with its own caches and
// generators seeded only by (seed, Q, pattern), so the table is identical
// for every worker count.
func BuildTable1Ctx(ctx context.Context, mc machine.Config, patterns []memtrace.Pattern, qs []simtime.Duration, budget simtime.Duration, seed uint64, workers int) (Table1, error) {
	t := Table1{
		Qs:    qs,
		Cells: make(map[simtime.Duration]map[string]Penalties),
	}
	for _, p := range patterns {
		t.Apps = append(t.Apps, p.Name)
	}
	// The streams depend only on (pattern, budget, seed), not on Q or the
	// regime, so each pattern's measured and intervening streams are built
	// once here and shared read-only by every cell.
	streamOpts := Options{Q: budget, Budget: budget, Seed: seed}
	measStreams := make([]*Stream, len(patterns))
	ivStreams := make([]*Stream, len(patterns))
	err := parallel.ForEach(ctx, workers, 2*len(patterns), func(ctx context.Context, idx int) error {
		if idx < len(patterns) {
			measStreams[idx] = measuredStream(patterns[idx], streamOpts)
		} else {
			ivStreams[idx-len(patterns)] = interveningStream(patterns[idx-len(patterns)], streamOpts)
		}
		return nil
	})
	if err != nil {
		return Table1{}, err
	}
	// One slot per (q, measured) cell; idx = qi*len(patterns) + pi.
	cells := make([]Penalties, len(qs)*len(patterns))
	err = parallel.ForEach(ctx, workers, len(cells), func(ctx context.Context, idx int) error {
		q := qs[idx/len(patterns)]
		p := patterns[idx%len(patterns)]
		pen, err := measurePenalties(mc, p.Name, measStreams[idx%len(patterns)], patterns, ivStreams,
			Options{Q: q, Budget: budget, Seed: seed})
		if err != nil {
			return err
		}
		cells[idx] = pen
		return nil
	})
	if err != nil {
		return Table1{}, err
	}
	for qi, q := range qs {
		t.Cells[q] = make(map[string]Penalties)
		for pi, p := range patterns {
			t.Cells[q][p.Name] = cells[qi*len(patterns)+pi]
		}
	}
	return t, nil
}
