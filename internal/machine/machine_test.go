package machine

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/simtime"
)

func TestSymmetryMatchesPaper(t *testing.T) {
	c := Symmetry()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Processors != 20 {
		t.Errorf("Processors = %d, want 20", c.Processors)
	}
	if c.Cache.Lines() != 4096 {
		t.Errorf("cache lines = %d, want 4096", c.Cache.Lines())
	}
	if c.LineFill != simtime.Duration(750) {
		t.Errorf("LineFill = %v, want 750ns", c.LineFill)
	}
	if c.SwitchPath != 750*simtime.Microsecond {
		t.Errorf("SwitchPath = %v, want 750µs", c.SwitchPath)
	}
	// The paper's yardstick: at least 3.072 ms to fill the whole cache.
	if got := c.FullCacheFill(); got != simtime.Microseconds(3072) {
		t.Errorf("FullCacheFill = %v, want 3.072ms", got)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	base := Symmetry()
	mutations := []func(*Config){
		func(c *Config) { c.Processors = 0 },
		func(c *Config) { c.Cache.LineBytes = 3 },
		func(c *Config) { c.LineFill = 0 },
		func(c *Config) { c.SwitchPath = -1 },
		func(c *Config) { c.Speed = 0 },
	}
	for i, mut := range mutations {
		c := base
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestScaledAppliesPaperRules(t *testing.T) {
	base := Symmetry()
	s, err := base.Scaled(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Speed != 4 {
		t.Errorf("Speed = %v, want 4", s.Speed)
	}
	// Path length divides by speed.
	if s.SwitchPath != base.SwitchPath/4 {
		t.Errorf("SwitchPath = %v, want %v", s.SwitchPath, base.SwitchPath/4)
	}
	// Miss resolution divides by sqrt(speed) = 2.
	if s.LineFill != base.LineFill/2 {
		t.Errorf("LineFill = %v, want %v", s.LineFill, base.LineFill/2)
	}
	// Cache doubles.
	if s.Cache.SizeBytes != base.Cache.SizeBytes*2 {
		t.Errorf("cache size = %d, want %d", s.Cache.SizeBytes, base.Cache.SizeBytes*2)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("scaled config invalid: %v", err)
	}
}

func TestScaledRejectsBadFactors(t *testing.T) {
	base := Symmetry()
	if _, err := base.Scaled(0, 1); err == nil {
		t.Error("speed 0 accepted")
	}
	if _, err := base.Scaled(-1, 1); err == nil {
		t.Error("negative speed accepted")
	}
	if _, err := base.Scaled(1, 0); err == nil {
		t.Error("cache scale 0 accepted")
	}
}

func TestCompute(t *testing.T) {
	c := Symmetry()
	if got := c.Compute(simtime.Milliseconds(10)); got != simtime.Milliseconds(10) {
		t.Errorf("Compute at speed 1 changed duration: %v", got)
	}
	c.Speed = 2
	if got := c.Compute(simtime.Milliseconds(10)); got != simtime.Milliseconds(5) {
		t.Errorf("Compute at speed 2 = %v, want 5ms", got)
	}
}

// Property: composing Scaled twice multiplies the factors (within rounding).
func TestQuickScaledComposes(t *testing.T) {
	f := func(aRaw, bRaw uint8) bool {
		a := float64(aRaw%8) + 1
		b := float64(bRaw%8) + 1
		base := Symmetry()
		once, err := base.Scaled(a*b, 1)
		if err != nil {
			return false
		}
		s1, err := base.Scaled(a, 1)
		if err != nil {
			return false
		}
		twice, err := s1.Scaled(b, 1)
		if err != nil {
			return false
		}
		if math.Abs(float64(once.SwitchPath-twice.SwitchPath)) > 2 {
			return false
		}
		// LineFill uses sqrt, which rounds per step; allow slack.
		return math.Abs(float64(once.LineFill-twice.LineFill)) <= 2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
