// Package machine describes the simulated shared-memory multiprocessor:
// processor count, per-processor cache geometry, and the timing constants
// every experiment depends on.
//
// The default configuration is the paper's testbed, a Sequent Symmetry
// Model B: twenty 16 MHz Intel 80386 processors, each with a 64-Kbyte 2-way
// set-associative copy-back cache with 16-byte lines, connected by a shared
// bus. The paper estimates 0.75 µs to fetch one cache block from main
// memory without bus contention (so ≥3.072 ms to fill a whole cache) and
// measures the kernel path length of a processor reallocation at about
// 750 µs.
//
// Future machines (Section 7) are expressed with Scaled, which applies the
// paper's extrapolation rules: computational costs shrink linearly with
// processor speed, miss resolution speeds up as sqrt(processor-speed), and
// the cache grows by an integer factor.
package machine

import (
	"fmt"
	"math"

	"repro/internal/cache"
	"repro/internal/simtime"
)

// Config is a machine description.
type Config struct {
	// Processors is the number of CPUs.
	Processors int
	// Cache is the per-processor cache geometry.
	Cache cache.Config
	// LineFill is the uncontended time to fetch one cache line from main
	// memory (miss resolution time).
	LineFill simtime.Duration
	// SwitchPath is the kernel path-length cost of a processor
	// reallocation (context switch), excluding cache effects.
	SwitchPath simtime.Duration
	// Speed is the processor speed relative to the baseline Symmetry.
	// Purely computational durations divide by Speed.
	Speed float64
	// BusWindow is the sliding window over which bus utilization is
	// averaged for the contention model.
	BusWindow simtime.Duration
}

// Symmetry returns the Sequent Symmetry Model B configuration.
func Symmetry() Config {
	return Config{
		Processors: 20,
		Cache:      cache.SymmetryConfig(),
		LineFill:   simtime.Duration(750), // 0.75 µs in nanoseconds
		SwitchPath: 750 * simtime.Microsecond,
		Speed:      1.0,
		BusWindow:  10 * simtime.Millisecond,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Processors <= 0 {
		return fmt.Errorf("machine: need at least one processor, got %d", c.Processors)
	}
	if err := c.Cache.Validate(); err != nil {
		return err
	}
	if c.LineFill <= 0 {
		return fmt.Errorf("machine: LineFill must be positive, got %v", c.LineFill)
	}
	if c.SwitchPath < 0 {
		return fmt.Errorf("machine: SwitchPath must be non-negative, got %v", c.SwitchPath)
	}
	if c.Speed <= 0 {
		return fmt.Errorf("machine: Speed must be positive, got %v", c.Speed)
	}
	return nil
}

// Scaled returns the configuration of a future machine with the given
// relative processor speed and cache-size factor, applying the paper's
// Section 7 scaling rules:
//
//   - path-length costs (SwitchPath) divide by speed;
//   - miss resolution (LineFill) divides by sqrt(speed);
//   - cache capacity multiplies by cacheScale.
//
// Computational work is divided by Speed at simulation time, so Speed is
// carried in the config rather than folded into durations here.
func (c Config) Scaled(speed float64, cacheScale int) (Config, error) {
	if speed <= 0 {
		return Config{}, fmt.Errorf("machine: speed factor must be positive, got %v", speed)
	}
	if cacheScale < 1 {
		return Config{}, fmt.Errorf("machine: cache scale must be >= 1, got %d", cacheScale)
	}
	out := c
	out.Speed = c.Speed * speed
	out.SwitchPath = c.SwitchPath.Scale(1 / speed)
	out.LineFill = c.LineFill.Scale(1 / math.Sqrt(speed))
	out.Cache.SizeBytes = c.Cache.SizeBytes * cacheScale
	if err := out.Validate(); err != nil {
		return Config{}, err
	}
	return out, nil
}

// FullCacheFill returns the uncontended time to fill the entire cache, the
// paper's 3.072 ms yardstick for the Symmetry.
func (c Config) FullCacheFill() simtime.Duration {
	return simtime.Duration(int64(c.LineFill) * int64(c.Cache.Lines()))
}

// Compute returns the wall time to execute d of baseline-machine
// computation on this machine (d divided by Speed).
func (c Config) Compute(d simtime.Duration) simtime.Duration {
	if c.Speed == 1.0 {
		return d
	}
	return d.Scale(1 / c.Speed)
}
