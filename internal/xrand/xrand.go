// Package xrand provides the deterministic, splittable pseudo-random number
// generation used by the workload generators and the experiment harness.
//
// Two properties matter more here than statistical sophistication:
//
//   - Reproducibility: a run is identified by a single root seed; every
//     result in EXPERIMENTS.md can be regenerated bit-for-bit.
//   - Splittability: each job, task, and trace generator derives its own
//     independent stream from the root seed, so adding instrumentation or
//     reordering draws in one component never perturbs another.
//
// The generator is PCG32 (O'Neill, pcg-random.org) seeded through SplitMix64,
// both implemented here from their published descriptions.
package xrand

import "math"

// Source is a deterministic PCG32 random stream. The zero value is a valid
// stream (equivalent to New(0, 0)), but callers normally construct streams
// with New or Split.
type Source struct {
	state uint64
	inc   uint64
}

// splitmix64 advances a SplitMix64 state and returns the next output.
// It is used to expand user seeds into well-distributed PCG parameters.
func splitmix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a stream determined by (seed, stream). Distinct stream values
// yield statistically independent sequences for the same seed.
func New(seed, stream uint64) *Source {
	s := &Source{}
	s.Seed(seed, stream)
	return s
}

// Seed resets s in place to the stream New(seed, stream) would produce, so
// a long-lived component can rewind its generator between runs without
// allocating. After Seed the source is bitwise identical to a fresh New.
func (s *Source) Seed(seed, stream uint64) {
	sm := seed
	s.state = splitmix64(&sm)
	s.inc = (splitmix64(&sm)+2*stream)*2 + 1 // must be odd
	// Advance a couple of steps so that similar seeds diverge immediately.
	s.Uint32()
	s.Uint32()
}

// Split derives a child stream from s, keyed by label. The parent stream is
// not advanced, so components may be split in any order.
func (s *Source) Split(label uint64) *Source {
	mix := s.state ^ (label * 0xda942042e4dd58b5)
	return New(mix, s.inc>>1^label)
}

// Uint32 returns the next 32 uniformly distributed bits.
func (s *Source) Uint32() uint32 {
	old := s.state
	s.state = old*6364136223846793005 + s.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	return uint64(s.Uint32())<<32 | uint64(s.Uint32())
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Lemire's multiply-shift rejection method keeps the result unbiased.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	bound := uint32(n)
	threshold := -bound % bound
	for {
		r := s.Uint32()
		m := uint64(r) * uint64(bound)
		if uint32(m) >= threshold {
			return int(m >> 32)
		}
	}
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (s *Source) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n with non-positive n")
	}
	maxUsable := math.MaxUint64 - math.MaxUint64%uint64(n)
	for {
		v := s.Uint64()
		if v < maxUsable {
			return int64(v % uint64(n))
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponentially distributed value with mean 1, by
// inversion. Inversion (rather than ziggurat) keeps the draw count per
// variate fixed, preserving stream alignment across code changes.
func (s *Source) ExpFloat64() float64 {
	for {
		u := s.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// NormFloat64 returns a standard normal value using the Box-Muller
// transform (again chosen for its fixed draw count).
func (s *Source) NormFloat64() float64 {
	for {
		u1 := s.Float64()
		if u1 == 0 {
			continue
		}
		u2 := s.Float64()
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// Perm returns a uniform random permutation of [0, n) using Fisher-Yates.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Clone returns an independent copy of the stream: both produce the same
// subsequent values but advance separately.
func (s *Source) Clone() *Source {
	c := *s
	return &c
}
