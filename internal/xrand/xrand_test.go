package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42, 0)
	b := New(42, 0)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with same seed diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1, 0)
	b := New(2, 0)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestStreamsDiffer(t *testing.T) {
	a := New(7, 0)
	b := New(7, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different streams produced %d/100 identical draws", same)
	}
}

func TestSplitIndependentOfOrder(t *testing.T) {
	parent1 := New(9, 3)
	c1a := parent1.Split(1)
	c1b := parent1.Split(2)

	parent2 := New(9, 3)
	c2b := parent2.Split(2) // split in the opposite order
	c2a := parent2.Split(1)

	for i := 0; i < 100; i++ {
		if c1a.Uint64() != c2a.Uint64() || c1b.Uint64() != c2b.Uint64() {
			t.Fatal("Split results depend on split order")
		}
	}
}

func TestSplitChildrenDiffer(t *testing.T) {
	p := New(5, 5)
	a, b := p.Split(10), p.Split(11)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sibling splits produced %d/100 identical draws", same)
	}
}

func TestIntnRangeAndPanic(t *testing.T) {
	s := New(1, 1)
	for i := 0; i < 10000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for Intn(0)")
		}
	}()
	s.Intn(0)
}

func TestInt63nRangeAndPanic(t *testing.T) {
	s := New(2, 1)
	const n = int64(1) << 40
	for i := 0; i < 10000; i++ {
		v := s.Int63n(n)
		if v < 0 || v >= n {
			t.Fatalf("Int63n = %d out of range", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for Int63n(-1)")
		}
	}()
	s.Int63n(-1)
}

func TestIntnApproximatelyUniform(t *testing.T) {
	s := New(3, 1)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d too far from %v", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(4, 1)
	var sum float64
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(5, 1)
	var sum float64
	const draws = 200000
	for i := 0; i < draws; i++ {
		v := s.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 = %v negative", v)
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-1) > 0.02 {
		t.Errorf("ExpFloat64 mean = %v, want ~1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(6, 1)
	var sum, sumSq float64
	const draws = 200000
	for i := 0; i < draws; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("NormFloat64 mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("NormFloat64 variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(7, 1)
	for trial := 0; trial < 50; trial++ {
		n := 1 + s.Intn(64)
		p := s.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestZeroValueUsable(t *testing.T) {
	var s Source
	// Must not panic or loop forever; values come from the zero PCG state.
	_ = s.Uint32()
	_ = s.Float64()
}

// Property: Intn values stay in range for arbitrary positive n.
func TestQuickIntnInRange(t *testing.T) {
	s := New(11, 0)
	f := func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := s.Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClone(t *testing.T) {
	a := New(9, 9)
	a.Uint32()
	b := a.Clone()
	for i := 0; i < 100; i++ {
		if a.Uint32() != b.Uint32() {
			t.Fatal("clone diverged")
		}
	}
	// Advancing the clone does not advance the original.
	c := a.Clone()
	c.Uint32()
	d := a.Clone()
	if c.Uint32() == d.Uint32() {
		// c is one draw ahead of d; equality would mean shared state.
		t.Log("note: coincidental equality possible but unlikely")
	}
}
