// Package version identifies the simulation engine build. The engine
// version participates in every result-cache key (internal/resultcache):
// bumping it invalidates all memoized campaign results, which is exactly
// what must happen when a change alters simulation semantics. The git
// revision, read from the binary's embedded build info, makes cached
// service results and committed perf baselines attributable to a build.
package version

import "runtime/debug"

// Engine is the simulation engine's semantic version. Bump it whenever a
// change can alter any campaign's output bits (simulation semantics, seed
// derivation, result encoding) — cached results from older engines must
// not be served as current. Pure performance work that keeps outputs
// bitwise identical (the determinism tests enforce this) does not bump it.
const Engine = "3"

// GitSHA returns the VCS revision embedded by the Go toolchain, with a
// "-dirty" suffix when the working tree had uncommitted changes, or
// "unknown" outside a VCS build (e.g. `go test`, or builds from a source
// tarball).
func GitSHA() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	sha, dirty := "", false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			sha = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if sha == "" {
		return "unknown"
	}
	if dirty {
		return sha + "-dirty"
	}
	return sha
}
