package service

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/diskstore"
	"repro/internal/obs"
)

// latencyBuckets are the upper bounds (seconds) of the per-campaign
// latency histogram. Campaigns span four orders of magnitude — a fast
// characterize takes milliseconds, a paper-scale future sweep minutes —
// so the buckets are roughly quartic.
var latencyBuckets = []float64{0.01, 0.05, 0.25, 1, 5, 30, 120, 600}

// histogram is a fixed-bucket latency histogram (Prometheus semantics:
// cumulative buckets plus sum and count).
type histogram struct {
	counts [9]uint64 // len(latencyBuckets)+1; last = +Inf
	sum    float64
	total  uint64
}

func (h *histogram) observe(sec float64) {
	i := 0
	for i < len(latencyBuckets) && sec > latencyBuckets[i] {
		i++
	}
	h.counts[i]++
	h.sum += sec
	h.total++
}

// metrics aggregates the serving counters exposed at /metrics.
type metrics struct {
	server *Server

	submitted atomic.Uint64 // POST /v1/campaigns accepted for processing
	deduped   atomic.Uint64 // submissions coalesced onto an in-flight job
	rejected  atomic.Uint64 // 429s
	completed atomic.Uint64
	failed    atomic.Uint64
	canceled  atomic.Uint64
	reaped    atomic.Uint64 // terminal jobs evicted by TTL or MaxJobs cap
	inflight  atomic.Int64

	// Request-scoped span histograms, in nanoseconds (obs log2 buckets;
	// two atomic adds per observation, no floating point until render).
	spanCacheLookup obs.Histogram // result-cache Get on the submit path
	spanStoreLookup obs.Histogram // disk-store Get after a memory miss
	spanAdmit       obs.Histogram // admission / singleflight attach
	spanQueueWait   obs.Histogram // admitted -> dispatched by a worker
	spanExec        obs.Histogram // campaign execution wall time

	// cells counts the cell execution path: cache hits, misses,
	// completed executions, and the exec/merge latency histograms.
	cells obs.CellStats

	// sim aggregates the engine-level counters of every completed job's
	// CampaignStats; guarded by simMu (folds are per-job, off the request
	// hot path).
	simMu sync.Mutex
	sim   obs.SimStats

	mu      sync.Mutex
	latency map[string]*histogram // by campaign kind
}

func newMetrics(s *Server) *metrics {
	return &metrics{server: s, latency: make(map[string]*histogram)}
}

// span records one request-phase duration into the given histogram.
// Negative durations (clock steps) are clamped to zero rather than
// wrapping into the top bucket.
func span(h *obs.Histogram, d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// foldSim merges one completed job's accumulated simulation counters
// into the daemon-wide totals exposed at /metrics.
func (m *metrics) foldSim(cs *obs.CampaignStats) {
	if cs == nil {
		return
	}
	snap := cs.Snapshot()
	m.simMu.Lock()
	m.sim.Merge(snap.Total)
	m.simMu.Unlock()
}

// observe records one successful campaign execution's wall time.
func (m *metrics) observe(kind string, d time.Duration) {
	m.mu.Lock()
	h := m.latency[kind]
	if h == nil {
		h = &histogram{}
		m.latency[kind] = h
	}
	h.observe(d.Seconds())
	m.mu.Unlock()
}

// serve renders the Prometheus text exposition format. Output ordering is
// deterministic (kinds sorted) so scrapes and tests are stable.
func (m *metrics) serve(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	gauge := func(name, help string, v any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	gauge("affinityd_queue_depth", "Jobs waiting in the admission queue.", len(m.server.queue))
	gauge("affinityd_jobs_inflight", "Campaigns currently executing.", m.inflight.Load())
	counter("affinityd_jobs_submitted_total", "Campaign submissions accepted for processing.", m.submitted.Load())
	counter("affinityd_jobs_deduped_total", "Submissions coalesced onto an identical in-flight job.", m.deduped.Load())
	counter("affinityd_jobs_rejected_total", "Submissions rejected with 429 because the queue was full.", m.rejected.Load())
	counter("affinityd_jobs_completed_total", "Campaigns that finished successfully.", m.completed.Load())
	counter("affinityd_jobs_failed_total", "Campaigns that finished with an error.", m.failed.Load())
	counter("affinityd_jobs_canceled_total", "Campaigns canceled before completion.", m.canceled.Load())
	counter("affinityd_jobs_reaped_total", "Terminal jobs evicted from retention by TTL or the MaxJobs cap.", m.reaped.Load())
	m.server.mu.Lock()
	retained := len(m.server.jobs)
	m.server.mu.Unlock()
	gauge("affinityd_jobs_retained", "Jobs currently retained in the jobs map (queued, running, and recent terminal).", retained)

	cs := m.server.cache.Stats()
	counter("affinityd_cache_hits_total", "Result-cache hits.", cs.Hits)
	counter("affinityd_cache_misses_total", "Result-cache misses.", cs.Misses)
	counter("affinityd_cache_evictions_total", "Result-cache LRU evictions.", cs.Evictions)
	gauge("affinityd_cache_entries", "Result-cache resident entries.", cs.Entries)
	gauge("affinityd_cache_bytes", "Result-cache resident bytes.", cs.Bytes)
	gauge("affinityd_cache_budget_bytes", "Result-cache byte budget.", cs.Budget)

	// Cell-level execution: how much of each campaign's grid was reused
	// from the per-cell cache versus freshly simulated.
	counter("affinityd_cell_hits_total", "Campaign cells satisfied from the cell cache.", m.cells.Hits.Load())
	counter("affinityd_cell_disk_hits_total", "Campaign cells satisfied from the persistent disk tier.", m.cells.DiskHits.Load())
	counter("affinityd_cell_misses_total", "Campaign cells not found in any cache tier.", m.cells.Misses.Load())
	counter("affinityd_cell_executions_total", "Campaign cells executed to completion.", m.cells.Executions.Load())
	// Engine-tier split of the executions above: discrete-event simulator
	// versus the analytic fast estimator (kinds without an engine choice
	// always simulate and count as sim).
	b.WriteString("# HELP affinityd_cell_engine_executions_total Campaign cells executed to completion, by engine tier.\n" +
		"# TYPE affinityd_cell_engine_executions_total counter\n")
	fmt.Fprintf(&b, "affinityd_cell_engine_executions_total{engine=\"sim\"} %d\n", m.cells.EngineSim.Load())
	fmt.Fprintf(&b, "affinityd_cell_engine_executions_total{engine=\"analytic\"} %d\n", m.cells.EngineAnalytic.Load())
	ccs := m.server.cellCache.Stats()
	counter("affinityd_cellcache_evictions_total", "Cell-cache LRU evictions.", ccs.Evictions)
	gauge("affinityd_cellcache_entries", "Cell-cache resident entries.", ccs.Entries)
	gauge("affinityd_cellcache_bytes", "Cell-cache resident bytes.", ccs.Bytes)
	gauge("affinityd_cellcache_budget_bytes", "Cell-cache byte budget.", ccs.Budget)

	// Persistent disk tier. Rendered even when no store is configured (all
	// zeros) so dashboards and scrape tests see a stable metric set.
	var ds diskstore.Stats
	if m.server.store != nil {
		ds = m.server.store.Stats()
	}
	counter("affinityd_store_hits_total", "Disk-store hits (CRC-verified reads).", ds.Hits)
	counter("affinityd_store_misses_total", "Disk-store misses.", ds.Misses)
	counter("affinityd_store_puts_total", "Disk-store writes accepted onto the write-behind queue.", ds.Puts)
	counter("affinityd_store_dropped_total", "Disk-store writes dropped because the write-behind queue was full.", ds.Dropped)
	counter("affinityd_store_flushed_frames_total", "Frames the background flusher appended to segment files.", ds.FlushedFrames)
	counter("affinityd_store_evictions_total", "Disk-store entries evicted under the byte budget.", ds.Evictions)
	counter("affinityd_store_corrupt_frames_total", "Frames rejected by CRC or framing checks (scan and read paths).", ds.CorruptFrames)
	counter("affinityd_store_dup_frames_total", "Duplicate-key frames skipped (scan and flush paths).", ds.DupFrames)
	counter("affinityd_store_truncated_bytes_total", "Bytes truncated from segment tails during startup recovery.", ds.TruncatedBytes)
	gauge("affinityd_store_entries", "Disk-store live entries.", ds.Entries)
	gauge("affinityd_store_segments", "Disk-store segment files.", ds.Segments)
	gauge("affinityd_store_disk_bytes", "Disk-store bytes on disk (live + dead).", ds.DiskBytes)
	gauge("affinityd_store_live_bytes", "Disk-store bytes referenced by live entries.", ds.LiveBytes)
	gauge("affinityd_store_budget_bytes", "Disk-store byte budget (0 = unbudgeted).", ds.Budget)
	gauge("affinityd_store_flush_queue_depth", "Writes waiting on the write-behind queue.", ds.QueueDepth)

	// Fleet dispatch (coordinator mode) and worker-side execution
	// counters; rendered only on daemons with a fleet role so
	// single-process scrapes keep their historical metric set.
	if fc := m.server.fleet; fc != nil {
		gauge("affinityd_fleet_workers", "Live registered fleet workers.", fc.LiveWorkers())
		counter("affinityd_fleet_dispatches_total", "Cell dispatch attempts launched (first tries, retries, hedges).", fc.Stats.Dispatches.Load())
		counter("affinityd_fleet_remote_cells_total", "Cells resolved by a fleet worker's result.", fc.Stats.RemoteCells.Load())
		counter("affinityd_fleet_retries_total", "Dispatch attempts relaunched after a failed one.", fc.Stats.Retries.Load())
		counter("affinityd_fleet_hedges_total", "Hedged re-dispatches of straggling cells.", fc.Stats.Hedges.Load())
		counter("affinityd_fleet_hedge_wins_total", "Dispatches won by a retry or hedge rather than the first attempt.", fc.Stats.HedgeWins.Load())
		counter("affinityd_fleet_duplicates_discarded_total", "Valid duplicate results discarded after a winner (at-least-once overshoot).", fc.Stats.Duplicates.Load())
		counter("affinityd_fleet_attempt_failures_total", "Dispatch attempts that returned an error.", fc.Stats.Failures.Load())
		counter("affinityd_fleet_local_fallbacks_total", "Dispatches that returned no result, executing the cell locally.", fc.Stats.Fallbacks.Load())
		counter("affinityd_fleet_registrations_total", "New workers registered.", fc.Stats.Registrations.Load())
		counter("affinityd_fleet_auth_rejections_total", "Fleet requests refused with 401 (missing, garbled, or stale signature).", fc.Stats.AuthRejections.Load())
		counter("affinityd_fleet_expirations_total", "Workers dropped by heartbeat expiry or connection failure.", fc.Stats.Expirations.Load())
		counter("affinityd_fleet_peer_hits_total", "Peer cache-fill lookups served from the coordinator's tiers.", fc.Stats.PeerHits.Load())
		counter("affinityd_fleet_peer_misses_total", "Peer cache-fill lookups that missed every fleet tier.", fc.Stats.PeerMisses.Load())
		counter("affinityd_fleet_worker_fills_total", "Cell reads resolved by relaying to another worker's tiers.", fc.Stats.WorkerFills.Load())
		counter("affinityd_fleet_placement_decisions_total", "Scored placement decisions (one per launched attempt).", fc.Stats.PlacementDecisions.Load())
		counter("affinityd_fleet_placement_capacity_skips_total", "Candidate workers passed over because all capacity slots were occupied.", fc.Stats.PlacementCapacitySkips.Load())
		counter("affinityd_fleet_placement_penalized_total", "Placement decisions made while a candidate carried a failure penalty.", fc.Stats.PlacementPenalized.Load())
		counter("affinityd_fleet_budget_exhausted_total", "Campaigns whose retry+hedge budget ran dry.", fc.Stats.BudgetExhausted.Load())
		nsHistogram(&b, "affinityd_fleet_rtt_seconds", "Round-trip time of successful dispatch attempts.", &fc.Stats.RTTNs)
	}
	if fw := m.server.fleetWorker; fw != nil {
		counter("affinityd_fleet_worker_requests_total", "Cell execute requests received from the coordinator.", fw.Stats.Requests.Load())
		counter("affinityd_fleet_worker_executions_total", "Cells this worker simulated to completion.", fw.Stats.Executions.Load())
		counter("affinityd_fleet_worker_cache_hits_total", "Execute requests served from the worker's memory cache.", fw.Stats.CacheHits.Load())
		counter("affinityd_fleet_worker_disk_hits_total", "Execute requests served from the worker's disk store.", fw.Stats.DiskHits.Load())
		counter("affinityd_fleet_worker_peer_fills_total", "Cells served by fetching from the coordinator's store.", fw.Stats.PeerFills.Load())
		counter("affinityd_fleet_worker_cell_serves_total", "Cell reads this worker answered from its own tiers.", fw.Stats.CellServes.Load())
		counter("affinityd_fleet_worker_auth_rejections_total", "Fleet requests this worker refused with 401.", fw.Stats.AuthRejections.Load())
		counter("affinityd_fleet_worker_rejections_total", "Execute requests refused with 429 at advertised capacity.", fw.Stats.Rejections.Load())
		counter("affinityd_fleet_worker_errors_total", "Execute requests that failed.", fw.Stats.Errors.Load())
		nsHistogram(&b, "affinityd_fleet_worker_exec_seconds", "Local execution wall time per executed cell.", &fw.Stats.ExecNs)
	}

	// Engine-level simulation counters, folded from every completed job's
	// per-run SimStats (the paper's Figure 1 decomposition).
	m.simMu.Lock()
	sim := m.sim
	m.simMu.Unlock()
	counter("affinityd_sim_runs_total", "Simulation runs executed by completed campaigns.", sim.Runs)
	counter("affinityd_sim_events_total", "Discrete events fired by completed campaigns.", sim.Events)
	counter("affinityd_sim_reallocations_total", "Processor reallocations (non-continuation dispatches).", sim.Reallocations)
	counter("affinityd_sim_migrations_total", "Reallocations that moved a task to a different processor.", sim.Migrations)
	counter("affinityd_sim_pa_charges_total", "Reallocations resuming on the last processor (P^A penalty).", sim.PACharges)
	counter("affinityd_sim_pna_charges_total", "Reallocations with no useful footprint left (P^NA penalty).", sim.PNACharges)
	counter("affinityd_sim_flushes_total", "Cache coherency invalidation sweeps.", sim.Flushes)
	gauge("affinityd_sim_penalty_seconds_total", "Simulated cache-reload transient time (cpu-seconds).", trimFloat(float64(sim.PenaltyNs)/1e9))
	gauge("affinityd_sim_eventq_peak", "Max pending-event depth across completed runs.", sim.EventqPeak)

	nsHistogram(&b, "affinityd_request_cache_lookup_seconds", "Result-cache lookup latency on the submit path.", &m.spanCacheLookup)
	nsHistogram(&b, "affinityd_request_store_lookup_seconds", "Disk-store lookup latency after a memory-cache miss.", &m.spanStoreLookup)
	nsHistogram(&b, "affinityd_request_admit_seconds", "Admission / singleflight-attach latency.", &m.spanAdmit)
	nsHistogram(&b, "affinityd_request_queue_wait_seconds", "Time an admitted job waited before a worker dispatched it.", &m.spanQueueWait)
	nsHistogram(&b, "affinityd_request_exec_seconds", "Campaign execution wall time per job.", &m.spanExec)
	nsHistogram(&b, "affinityd_cell_exec_seconds", "Per-cell execution wall time (cache misses only).", &m.cells.ExecNs)
	b.WriteString("# HELP affinityd_cell_engine_exec_seconds Per-cell execution wall time by engine tier (cache misses only).\n" +
		"# TYPE affinityd_cell_engine_exec_seconds histogram\n")
	nsHistogramSeries(&b, "affinityd_cell_engine_exec_seconds", `engine="sim"`, &m.cells.EngineSimNs)
	nsHistogramSeries(&b, "affinityd_cell_engine_exec_seconds", `engine="analytic"`, &m.cells.EngineAnalyticNs)
	nsHistogram(&b, "affinityd_cell_merge_seconds", "Per-campaign cell-merge wall time.", &m.cells.MergeNs)

	m.mu.Lock()
	kinds := make([]string, 0, len(m.latency))
	for k := range m.latency {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	if len(kinds) > 0 {
		b.WriteString("# HELP affinityd_campaign_latency_seconds Wall time of successful campaign executions.\n" +
			"# TYPE affinityd_campaign_latency_seconds histogram\n")
	}
	for _, k := range kinds {
		h := m.latency[k]
		cum := uint64(0)
		for i, ub := range latencyBuckets {
			cum += h.counts[i]
			fmt.Fprintf(&b, "affinityd_campaign_latency_seconds_bucket{kind=%q,le=%q} %d\n", k, trimFloat(ub), cum)
		}
		fmt.Fprintf(&b, "affinityd_campaign_latency_seconds_bucket{kind=%q,le=\"+Inf\"} %d\n", k, h.total)
		fmt.Fprintf(&b, "affinityd_campaign_latency_seconds_sum{kind=%q} %g\n", k, h.sum)
		fmt.Fprintf(&b, "affinityd_campaign_latency_seconds_count{kind=%q} %d\n", k, h.total)
	}
	m.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String()))
}

func trimFloat(f float64) string {
	return fmt.Sprintf("%g", f)
}

// nsHistogram bucket bounds rendered as Prometheus le labels: exponents
// 10..36 of the obs log2 histogram, i.e. ~1 µs to ~69 s in powers of
// two. Observations below the range fold into the first bucket's
// cumulative count; above it, into +Inf.
const (
	nsHistMinExp = 10
	nsHistMaxExp = 36
)

// nsHistogram renders an obs.Histogram of nanosecond observations in the
// Prometheus text format, in seconds. Buckets are cumulative; the bound
// of exponent i is (2^i - 1) ns. Counts are read via a snapshot, so one
// render is internally consistent even while observations continue.
func nsHistogram(b *strings.Builder, name, help string, h *obs.Histogram) {
	snap := h.Snapshot()
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	cum := uint64(0)
	for i := 0; i < obs.HistogramBuckets; i++ {
		cum += snap.Counts[i]
		if i >= nsHistMinExp && i <= nsHistMaxExp {
			fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, trimFloat(float64(obs.BucketBound(i))/1e9), cum)
		}
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, snap.Count)
	fmt.Fprintf(b, "%s_sum %s\n", name, trimFloat(float64(snap.Sum)/1e9))
	fmt.Fprintf(b, "%s_count %d\n", name, snap.Count)
}

// nsHistogramSeries renders one labeled series of an ns-histogram family.
// The caller writes the family's HELP/TYPE header once; labels is the
// rendered label set shared by every line (e.g. `engine="sim"`).
func nsHistogramSeries(b *strings.Builder, name, labels string, h *obs.Histogram) {
	snap := h.Snapshot()
	cum := uint64(0)
	for i := 0; i < obs.HistogramBuckets; i++ {
		cum += snap.Counts[i]
		if i >= nsHistMinExp && i <= nsHistMaxExp {
			fmt.Fprintf(b, "%s_bucket{%s,le=%q} %d\n", name, labels, trimFloat(float64(obs.BucketBound(i))/1e9), cum)
		}
	}
	fmt.Fprintf(b, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, labels, snap.Count)
	fmt.Fprintf(b, "%s_sum{%s} %s\n", name, labels, trimFloat(float64(snap.Sum)/1e9))
	fmt.Fprintf(b, "%s_count{%s} %d\n", name, labels, snap.Count)
}
