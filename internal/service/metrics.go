package service

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBuckets are the upper bounds (seconds) of the per-campaign
// latency histogram. Campaigns span four orders of magnitude — a fast
// characterize takes milliseconds, a paper-scale future sweep minutes —
// so the buckets are roughly quartic.
var latencyBuckets = []float64{0.01, 0.05, 0.25, 1, 5, 30, 120, 600}

// histogram is a fixed-bucket latency histogram (Prometheus semantics:
// cumulative buckets plus sum and count).
type histogram struct {
	counts [9]uint64 // len(latencyBuckets)+1; last = +Inf
	sum    float64
	total  uint64
}

func (h *histogram) observe(sec float64) {
	i := 0
	for i < len(latencyBuckets) && sec > latencyBuckets[i] {
		i++
	}
	h.counts[i]++
	h.sum += sec
	h.total++
}

// metrics aggregates the serving counters exposed at /metrics.
type metrics struct {
	server *Server

	submitted atomic.Uint64 // POST /v1/campaigns accepted for processing
	deduped   atomic.Uint64 // submissions coalesced onto an in-flight job
	rejected  atomic.Uint64 // 429s
	completed atomic.Uint64
	failed    atomic.Uint64
	canceled  atomic.Uint64
	reaped    atomic.Uint64 // terminal jobs evicted by TTL or MaxJobs cap
	inflight  atomic.Int64

	mu      sync.Mutex
	latency map[string]*histogram // by campaign kind
}

func newMetrics(s *Server) *metrics {
	return &metrics{server: s, latency: make(map[string]*histogram)}
}

// observe records one successful campaign execution's wall time.
func (m *metrics) observe(kind string, d time.Duration) {
	m.mu.Lock()
	h := m.latency[kind]
	if h == nil {
		h = &histogram{}
		m.latency[kind] = h
	}
	h.observe(d.Seconds())
	m.mu.Unlock()
}

// serve renders the Prometheus text exposition format. Output ordering is
// deterministic (kinds sorted) so scrapes and tests are stable.
func (m *metrics) serve(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	gauge := func(name, help string, v any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	gauge("affinityd_queue_depth", "Jobs waiting in the admission queue.", len(m.server.queue))
	gauge("affinityd_jobs_inflight", "Campaigns currently executing.", m.inflight.Load())
	counter("affinityd_jobs_submitted_total", "Campaign submissions accepted for processing.", m.submitted.Load())
	counter("affinityd_jobs_deduped_total", "Submissions coalesced onto an identical in-flight job.", m.deduped.Load())
	counter("affinityd_jobs_rejected_total", "Submissions rejected with 429 because the queue was full.", m.rejected.Load())
	counter("affinityd_jobs_completed_total", "Campaigns that finished successfully.", m.completed.Load())
	counter("affinityd_jobs_failed_total", "Campaigns that finished with an error.", m.failed.Load())
	counter("affinityd_jobs_canceled_total", "Campaigns canceled before completion.", m.canceled.Load())
	counter("affinityd_jobs_reaped_total", "Terminal jobs evicted from retention by TTL or the MaxJobs cap.", m.reaped.Load())
	m.server.mu.Lock()
	retained := len(m.server.jobs)
	m.server.mu.Unlock()
	gauge("affinityd_jobs_retained", "Jobs currently retained in the jobs map (queued, running, and recent terminal).", retained)

	cs := m.server.cache.Stats()
	counter("affinityd_cache_hits_total", "Result-cache hits.", cs.Hits)
	counter("affinityd_cache_misses_total", "Result-cache misses.", cs.Misses)
	counter("affinityd_cache_evictions_total", "Result-cache LRU evictions.", cs.Evictions)
	gauge("affinityd_cache_entries", "Result-cache resident entries.", cs.Entries)
	gauge("affinityd_cache_bytes", "Result-cache resident bytes.", cs.Bytes)
	gauge("affinityd_cache_budget_bytes", "Result-cache byte budget.", cs.Budget)

	m.mu.Lock()
	kinds := make([]string, 0, len(m.latency))
	for k := range m.latency {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	if len(kinds) > 0 {
		b.WriteString("# HELP affinityd_campaign_latency_seconds Wall time of successful campaign executions.\n" +
			"# TYPE affinityd_campaign_latency_seconds histogram\n")
	}
	for _, k := range kinds {
		h := m.latency[k]
		cum := uint64(0)
		for i, ub := range latencyBuckets {
			cum += h.counts[i]
			fmt.Fprintf(&b, "affinityd_campaign_latency_seconds_bucket{kind=%q,le=%q} %d\n", k, trimFloat(ub), cum)
		}
		fmt.Fprintf(&b, "affinityd_campaign_latency_seconds_bucket{kind=%q,le=\"+Inf\"} %d\n", k, h.total)
		fmt.Fprintf(&b, "affinityd_campaign_latency_seconds_sum{kind=%q} %g\n", k, h.sum)
		fmt.Fprintf(&b, "affinityd_campaign_latency_seconds_count{kind=%q} %d\n", k, h.total)
	}
	m.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String()))
}

func trimFloat(f float64) string {
	return fmt.Sprintf("%g", f)
}
