package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
)

// testEnv wires a Server with a controllable runner behind an HTTP
// listener.
type testEnv struct {
	t   *testing.T
	s   *Server
	ts  *httptest.Server
	url string
}

func newEnv(t *testing.T, cfg Config) *testEnv {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return &testEnv{t: t, s: s, ts: ts, url: ts.URL}
}

// submit POSTs a campaign request and returns the response.
func (e *testEnv) submit(body string) *http.Response {
	e.t.Helper()
	resp, err := http.Post(e.url+"/v1/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		e.t.Fatal(err)
	}
	return resp
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// countingRunner returns a deterministic result and counts executions.
func countingRunner(runs *atomic.Int64, delay time.Duration) Runner {
	return func(ctx context.Context, kind string, p experiments.CampaignParams) (any, error) {
		runs.Add(1)
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return map[string]any{"kind": kind, "seed": p.Seed, "payload": "deterministic"}, nil
	}
}

// gateRunner blocks until released (or cancelled), reporting starts.
type gateRunner struct {
	started chan string
	release chan struct{}
}

func newGateRunner() *gateRunner {
	return &gateRunner{started: make(chan string, 16), release: make(chan struct{})}
}

func (g *gateRunner) run(ctx context.Context, kind string, p experiments.CampaignParams) (any, error) {
	g.started <- kind
	select {
	case <-g.release:
		return map[string]any{"seed": p.Seed}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func TestSubmitCacheHitByteIdentical(t *testing.T) {
	var runs atomic.Int64
	e := newEnv(t, Config{Runner: countingRunner(&runs, 0)})

	req := `{"kind":"table1","params":{"fast":true,"budget_sec":0.5}}`
	r1 := e.submit(req)
	body1 := readAll(t, r1)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("first submit: %d %s", r1.StatusCode, body1)
	}
	if got := r1.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("first submit X-Cache = %q, want miss", got)
	}

	r2 := e.submit(req)
	body2 := readAll(t, r2)
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("second submit: %d %s", r2.StatusCode, body2)
	}
	if got := r2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("second submit X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Errorf("bodies differ:\n%s\n%s", body1, body2)
	}
	if n := runs.Load(); n != 1 {
		t.Errorf("runner executed %d times, want 1", n)
	}
	if st := e.s.Cache().Stats(); st.Hits != 1 {
		t.Errorf("cache hits = %d, want 1", st.Hits)
	}

	// Equivalent spelling (explicit defaults) must also hit.
	r3 := e.submit(`{"kind":"table1","params":{"fast":true,"budget_sec":0.5,"seed":1,"workers":3}}`)
	body3 := readAll(t, r3)
	if got := r3.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("equivalent request X-Cache = %q, want hit (body %s)", got, body3)
	}
	if !bytes.Equal(body1, body3) {
		t.Errorf("equivalent request body differs")
	}
}

func TestSubmitValidation(t *testing.T) {
	e := newEnv(t, Config{Runner: countingRunner(new(atomic.Int64), 0)})
	cases := []struct {
		body string
		want int
	}{
		{`{"kind":"nonsense"}`, http.StatusBadRequest},
		{`{"kind":"compare","params":{"mix":42}}`, http.StatusBadRequest},
		{`{"kind":"compare","params":{"policies":["NoSuch"]}}`, http.StatusBadRequest},
		{`{"kind":"table1","stray":true}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp := e.submit(tc.body)
		b := readAll(t, resp)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: got %d (%s), want %d", tc.body, resp.StatusCode, b, tc.want)
		}
	}
}

func TestSingleflightDedup(t *testing.T) {
	g := newGateRunner()
	e := newEnv(t, Config{Runner: g.run, JobWorkers: 4, QueueDepth: 8})

	req := `{"kind":"characterize","params":{"seed":7}}`
	const clients = 5
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := e.submit(req)
			bodies[i] = readAll(e.t, resp)
		}(i)
	}
	<-g.started // exactly one execution begins
	// No second start may arrive; give a dedup failure a moment to show.
	select {
	case k := <-g.started:
		t.Errorf("second runner execution started (%s); singleflight failed", k)
	case <-time.After(100 * time.Millisecond):
	}
	close(g.release)
	wg.Wait()
	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Errorf("client %d got different bytes", i)
		}
	}
}

func TestQueueFull429(t *testing.T) {
	g := newGateRunner()
	e := newEnv(t, Config{Runner: g.run, JobWorkers: 1, QueueDepth: 1, RetryAfter: 3 * time.Second})

	// Occupy the single worker.
	go e.submit(`{"kind":"characterize","params":{"seed":1}}`)
	<-g.started
	// Fill the single queue slot (async so we don't block).
	r2 := e.submit(`{"kind":"characterize","params":{"seed":2},"async":true}`)
	readAll(t, r2)
	if r2.StatusCode != http.StatusAccepted {
		t.Fatalf("queue-filling submit: %d", r2.StatusCode)
	}
	// Third distinct request must bounce.
	r3 := e.submit(`{"kind":"characterize","params":{"seed":3}}`)
	b3 := readAll(t, r3)
	if r3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload submit: got %d (%s), want 429", r3.StatusCode, b3)
	}
	if ra := r3.Header.Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After = %q, want 3", ra)
	}
	// An identical duplicate of the RUNNING job still dedups — no queue
	// slot needed, no 429.
	r4 := e.submit(`{"kind":"characterize","params":{"seed":1},"async":true}`)
	readAll(t, r4)
	if r4.StatusCode != http.StatusAccepted {
		t.Errorf("dedup-during-overload: got %d, want 202", r4.StatusCode)
	}
	close(g.release)
}

func TestAsyncLifecycleAndResult(t *testing.T) {
	g := newGateRunner()
	e := newEnv(t, Config{Runner: g.run})

	resp := e.submit(`{"kind":"relatedwork","params":{"seed":9},"async":true}`)
	var v jobView
	if err := json.Unmarshal(readAll(t, resp), &v); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted || v.ID == "" {
		t.Fatalf("async submit: %d %+v", resp.StatusCode, v)
	}
	<-g.started

	get := func(path string) (*http.Response, []byte) {
		r, err := http.Get(e.url + path)
		if err != nil {
			t.Fatal(err)
		}
		return r, readAll(t, r)
	}
	r, b := get("/v1/jobs/" + v.ID)
	var running jobView
	json.Unmarshal(b, &running)
	if r.StatusCode != 200 || running.Status != "running" {
		t.Fatalf("status while running: %d %+v", r.StatusCode, running)
	}
	// Result before completion: 409.
	if r, _ := get("/v1/jobs/" + v.ID + "/result"); r.StatusCode != http.StatusConflict {
		t.Errorf("early result fetch: got %d, want 409", r.StatusCode)
	}
	close(g.release)

	deadline := time.Now().Add(5 * time.Second)
	var done jobView
	for time.Now().Before(deadline) {
		_, b := get("/v1/jobs/" + v.ID)
		json.Unmarshal(b, &done)
		if done.Status == "done" {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if done.Status != "done" || done.ResultURL == "" {
		t.Fatalf("job never completed: %+v", done)
	}
	r, body := get(done.ResultURL)
	if r.StatusCode != 200 || !strings.Contains(string(body), `"seed":9`) {
		t.Errorf("result fetch: %d %s", r.StatusCode, body)
	}
	// Unknown job id.
	if r, _ := get("/v1/jobs/zzz"); r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: got %d, want 404", r.StatusCode)
	}
}

func TestCancelRunningJob(t *testing.T) {
	g := newGateRunner()
	e := newEnv(t, Config{Runner: g.run})

	resp := e.submit(`{"kind":"compare","params":{"seed":4},"async":true}`)
	var v jobView
	json.Unmarshal(readAll(t, resp), &v)
	<-g.started

	req, _ := http.NewRequest(http.MethodDelete, e.url+"/v1/jobs/"+v.ID, nil)
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, r)
	if r.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: %d", r.StatusCode)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		rs, err := http.Get(e.url + "/v1/jobs/" + v.ID)
		if err != nil {
			t.Fatal(err)
		}
		var now jobView
		json.Unmarshal(readAll(t, rs), &now)
		if now.Status == "canceled" {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job never reached canceled")
}

// TestDisconnectCancelsSoleWaiter: a synchronous client that goes away is
// the only party interested; the campaign must stop.
func TestDisconnectCancelsSoleWaiter(t *testing.T) {
	g := newGateRunner()
	e := newEnv(t, Config{Runner: g.run})

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, e.url+"/v1/campaigns",
		strings.NewReader(`{"kind":"future","params":{"seed":6}}`))
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		errc <- err
	}()
	<-g.started
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("expected client-side context error")
	}
	// The runner observes ctx cancellation and the job lands in canceled.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		r, err := http.Get(e.url + "/v1/jobs")
		if err != nil {
			t.Fatal(err)
		}
		b := readAll(t, r)
		if strings.Contains(string(b), `"canceled"`) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("abandoned job never canceled")
}

func TestShutdownDrainsInflightCancelsQueued(t *testing.T) {
	g := newGateRunner()
	s := New(Config{Runner: g.run, JobWorkers: 1, QueueDepth: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body string) *http.Response {
		resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	// One running...
	r1 := post(`{"kind":"characterize","params":{"seed":1},"async":true}`)
	var running jobView
	json.Unmarshal(readAll(t, r1), &running)
	<-g.started
	// ...and one queued.
	r2 := post(`{"kind":"characterize","params":{"seed":2},"async":true}`)
	var queued jobView
	json.Unmarshal(readAll(t, r2), &queued)

	// Release the in-flight job just after shutdown starts draining.
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(g.release)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	status := func(id string) string {
		r, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v jobView
		json.Unmarshal(readAll(t, r), &v)
		return v.Status
	}
	if st := status(running.ID); st != "done" {
		t.Errorf("in-flight job drained to %q, want done", st)
	}
	if st := status(queued.ID); st != "canceled" {
		t.Errorf("queued job at shutdown: %q, want canceled", st)
	}
	// New submissions are refused while draining/drained.
	r3 := post(`{"kind":"characterize","params":{"seed":3}}`)
	readAll(t, r3)
	if r3.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown submit: got %d, want 503", r3.StatusCode)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	var runs atomic.Int64
	e := newEnv(t, Config{Runner: countingRunner(&runs, 0)})

	r, err := http.Get(e.url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb := readAll(t, r)
	if r.StatusCode != 200 || !strings.Contains(string(hb), `"ok"`) {
		t.Fatalf("healthz: %d %s", r.StatusCode, hb)
	}

	// Run a campaign twice: one miss, one hit.
	for i := 0; i < 2; i++ {
		readAll(t, e.submit(`{"kind":"table1","params":{"fast":true}}`))
	}
	r, err = http.Get(e.url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb := string(readAll(t, r))
	for _, want := range []string{
		"affinityd_queue_depth 0",
		"affinityd_jobs_submitted_total 2",
		"affinityd_jobs_completed_total 1",
		"affinityd_cache_hits_total 1",
		"affinityd_cache_misses_total 1",
		`affinityd_campaign_latency_seconds_count{kind="table1"} 1`,
		// Request spans: both submits look up the cache; only the miss
		// is admitted, dispatched, and executed.
		"affinityd_request_cache_lookup_seconds_count 2",
		"affinityd_request_admit_seconds_count 1",
		"affinityd_request_queue_wait_seconds_count 1",
		"affinityd_request_exec_seconds_count 1",
		`affinityd_request_exec_seconds_bucket{le="+Inf"} 1`,
		// The stub runner carries no collector through the registry, so
		// the engine counters exist but stay zero.
		"affinityd_sim_runs_total 0",
		"affinityd_sim_reallocations_total 0",
	} {
		if !strings.Contains(mb, want) {
			t.Errorf("metrics missing %q\n%s", want, mb)
		}
	}

	rc, err := http.Get(e.url + "/v1/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	cb := string(readAll(t, rc))
	for _, kind := range []string{"characterize", "table1", "compare", "future", "futuresim", "relatedwork"} {
		if !strings.Contains(cb, fmt.Sprintf("%q", kind)) {
			t.Errorf("campaign listing missing %q: %s", kind, cb)
		}
	}
}

// TestCancelQueuedVsDequeueNoPanic races DELETE /v1/jobs/{id} on queued
// jobs against workers dequeuing them. Before the worker's guarded
// queued→running transition, this interleaving could finish a job twice
// and panic the daemon on a double close of j.done.
func TestCancelQueuedVsDequeueNoPanic(t *testing.T) {
	var runs atomic.Int64
	e := newEnv(t, Config{Runner: countingRunner(&runs, 0), JobWorkers: 2, QueueDepth: 64})

	for i := 1; i <= 60; i++ {
		resp := e.submit(fmt.Sprintf(`{"kind":"characterize","params":{"seed":%d},"async":true}`, i))
		b := readAll(t, resp)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, resp.StatusCode, b)
		}
		var v jobView
		json.Unmarshal(b, &v)
		req, _ := http.NewRequest(http.MethodDelete, e.url+"/v1/jobs/"+v.ID, nil)
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		readAll(t, r)
		if r.StatusCode != http.StatusAccepted {
			t.Fatalf("cancel %d: %d", i, r.StatusCode)
		}
	}

	// Every job must settle into a terminal state: nothing wedged, nothing
	// resurrected to running after being finished.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		r, err := http.Get(e.url + "/v1/jobs")
		if err != nil {
			t.Fatal(err)
		}
		b := string(readAll(t, r))
		if !strings.Contains(b, `"queued"`) && !strings.Contains(b, `"running"`) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("jobs never all reached a terminal state")
}

// TestResubmitAfterAbandonGetsFreshRun: a job cancelled by its last
// waiter's disconnect can squat on the singleflight slot until its worker
// notices. A new identical request must not attach to that dying job (it
// would get a 409 it never caused) — it gets a fresh run.
func TestResubmitAfterAbandonGetsFreshRun(t *testing.T) {
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	stubborn := func(ctx context.Context, kind string, p experiments.CampaignParams) (any, error) {
		started <- struct{}{}
		<-release // slow to observe cancellation, like a real campaign mid-cell
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return map[string]any{"seed": p.Seed}, nil
	}
	e := newEnv(t, Config{Runner: stubborn, JobWorkers: 1})

	// Client A is the sole waiter; disconnecting cancels the job, but the
	// runner keeps it occupying the singleflight slot.
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, e.url+"/v1/campaigns",
		strings.NewReader(`{"kind":"characterize","params":{"seed":11}}`))
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		errc <- err
	}()
	<-started
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("expected client-side context error")
	}

	// Wait until the server has cancelled the abandoned job's context.
	deadline := time.Now().Add(5 * time.Second)
	for {
		e.s.mu.Lock()
		cancelled := false
		for _, j := range e.s.inflight {
			cancelled = j.ctx.Err() != nil
		}
		e.s.mu.Unlock()
		if cancelled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("abandoned job never observed cancellation")
		}
		time.Sleep(time.Millisecond)
	}

	// Client B resubmits the identical request while the dying job still
	// holds the slot, then the worker is released to reap it.
	done := make(chan *http.Response, 1)
	go func() { done <- e.submit(`{"kind":"characterize","params":{"seed":11}}`) }()
	time.Sleep(50 * time.Millisecond) // let B's admit run against the dying job
	close(release)
	resp := <-done
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resubmit after abandon: got %d (%s), want 200 from a fresh run", resp.StatusCode, body)
	}
}

// TestRetryAfterNeverZero: a sub-second RetryAfter config used to round
// to "Retry-After: 0", which clients treat as "retry immediately" —
// amplifying the very overload the 429 is shedding. The hint must ceil
// to whole seconds with a floor of 1.
func TestRetryAfterNeverZero(t *testing.T) {
	cases := []struct {
		cfg  time.Duration
		want string
	}{
		{100 * time.Millisecond, "1"},
		{499 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1500 * time.Millisecond, "2"},
		{3 * time.Second, "3"},
	}
	for _, tc := range cases {
		t.Run(tc.cfg.String(), func(t *testing.T) {
			g := newGateRunner()
			e := newEnv(t, Config{Runner: g.run, JobWorkers: 1, QueueDepth: 1, RetryAfter: tc.cfg})
			// Occupy the worker and the single queue slot.
			go e.submit(`{"kind":"characterize","params":{"seed":1}}`)
			<-g.started
			readAll(t, e.submit(`{"kind":"characterize","params":{"seed":2},"async":true}`))
			r := e.submit(`{"kind":"characterize","params":{"seed":3}}`)
			readAll(t, r)
			if r.StatusCode != http.StatusTooManyRequests {
				t.Fatalf("overload submit: %d, want 429", r.StatusCode)
			}
			if ra := r.Header.Get("Retry-After"); ra != tc.want {
				t.Errorf("Retry-After = %q, want %q", ra, tc.want)
			}
			close(g.release)
		})
	}
}

// TestDrainRejectsSubmitsWithConnectionClose: a submission landing in
// the window between SIGTERM (core draining) and the listener actually
// closing must get an immediate 503 telling the client to drop the
// connection — not attach to a job shutdown is about to cancel, and not
// hang waiting on a worker pool that is winding down.
func TestDrainRejectsSubmitsWithConnectionClose(t *testing.T) {
	g := newGateRunner()
	s := New(Config{Runner: g.run, JobWorkers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Put one job in flight so Shutdown blocks mid-drain.
	r1, err := http.Post(ts.URL+"/v1/campaigns", "application/json",
		strings.NewReader(`{"kind":"characterize","params":{"seed":1},"async":true}`))
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, r1)
	<-g.started

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	// Wait until the core is actually draining.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(time.Millisecond)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		r, err := http.Post(ts.URL+"/v1/campaigns", "application/json",
			strings.NewReader(`{"kind":"characterize","params":{"seed":2}}`))
		if err != nil {
			t.Errorf("mid-drain submit failed: %v", err)
			return
		}
		readAll(t, r)
		if r.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("mid-drain submit: %d, want 503", r.StatusCode)
		}
		// Go's client consumes the hop-by-hop Connection header but
		// reports its effect: Close is true iff the server sent
		// "Connection: close".
		if !r.Close {
			t.Error("response did not carry Connection: close")
		}
		if rid := r.Header.Get("X-Request-Id"); rid == "" {
			t.Error("X-Request-Id header missing")
		}
	}()
	select {
	case <-done:
		// Responded while the in-flight job was still running: no hang.
	case <-time.After(5 * time.Second):
		t.Fatal("mid-drain submit hung instead of returning 503")
	}
	close(g.release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestJobStatsEndpoint: every job exposes its simulation-counter
// snapshot out of band at /v1/jobs/{id}/stats, at any lifecycle stage.
func TestJobStatsEndpoint(t *testing.T) {
	g := newGateRunner()
	e := newEnv(t, Config{Runner: g.run})

	resp := e.submit(`{"kind":"characterize","params":{"seed":3},"async":true}`)
	var v jobView
	json.Unmarshal(readAll(t, resp), &v)
	<-g.started

	r, err := http.Get(e.url + "/v1/jobs/" + v.ID + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	b := readAll(t, r)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("stats while running: %d %s", r.StatusCode, b)
	}
	var payload struct {
		ID     string `json:"id"`
		Status string `json:"status"`
		Stats  struct {
			Cells uint64          `json:"cells"`
			Total json.RawMessage `json:"total"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(b, &payload); err != nil {
		t.Fatalf("stats body %s: %v", b, err)
	}
	if payload.ID != v.ID || payload.Status != "running" || len(payload.Stats.Total) == 0 {
		t.Errorf("stats payload %s", b)
	}
	close(g.release)
	if r, _ := http.Get(e.url + "/v1/jobs/zzz/stats"); r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job stats: %d, want 404", r.StatusCode)
	}
}

// TestPprofGating: the profiling surface exists only when explicitly
// enabled.
func TestPprofGating(t *testing.T) {
	off := newEnv(t, Config{Runner: countingRunner(new(atomic.Int64), 0)})
	if r, err := http.Get(off.url + "/debug/pprof/"); err != nil {
		t.Fatal(err)
	} else if readAll(t, r); r.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without EnablePprof: %d, want 404", r.StatusCode)
	}
	on := newEnv(t, Config{Runner: countingRunner(new(atomic.Int64), 0), EnablePprof: true})
	if r, err := http.Get(on.url + "/debug/pprof/"); err != nil {
		t.Fatal(err)
	} else if b := readAll(t, r); r.StatusCode != http.StatusOK || !strings.Contains(string(b), "goroutine") {
		t.Errorf("pprof index with EnablePprof: %d %.80s", r.StatusCode, b)
	}
}

// TestTerminalJobRetention: terminal jobs are evicted by the MaxJobs cap
// and the JobTTL clock, so a long-running daemon's jobs map — and the
// result bodies it pins — stays bounded. The results themselves survive in
// the content-addressed cache.
func TestTerminalJobRetention(t *testing.T) {
	var runs atomic.Int64
	e := newEnv(t, Config{Runner: countingRunner(&runs, 0), JobTTL: 50 * time.Millisecond, MaxJobs: 2})

	for i := 1; i <= 4; i++ {
		resp := e.submit(fmt.Sprintf(`{"kind":"characterize","params":{"seed":%d}}`, i))
		readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("submit %d: %d", i, resp.StatusCode)
		}
	}

	reap := func() int {
		e.s.mu.Lock()
		e.s.reapLocked(time.Now())
		n := len(e.s.jobs)
		e.s.mu.Unlock()
		return n
	}
	if n := reap(); n > 2 {
		t.Errorf("retained %d terminal jobs, want <= MaxJobs (2)", n)
	}

	// Grab a surviving id, let the TTL lapse, and verify full eviction.
	r, err := http.Get(e.url + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Jobs []jobView `json:"jobs"`
	}
	json.Unmarshal(readAll(t, r), &listing)
	time.Sleep(60 * time.Millisecond)
	if n := reap(); n != 0 {
		t.Errorf("after TTL, retained %d jobs, want 0", n)
	}
	for _, v := range listing.Jobs {
		rs, err := http.Get(e.url + "/v1/jobs/" + v.ID)
		if err != nil {
			t.Fatal(err)
		}
		readAll(t, rs)
		if rs.StatusCode != http.StatusNotFound {
			t.Errorf("evicted job %s: got %d, want 404", v.ID, rs.StatusCode)
		}
	}

	// Eviction does not forget results: the identical request still hits.
	resp := e.submit(`{"kind":"characterize","params":{"seed":4}}`)
	readAll(t, resp)
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("resubmit after eviction X-Cache = %q, want hit", got)
	}
	if n := runs.Load(); n != 4 {
		t.Errorf("runner executed %d times, want 4", n)
	}
}

// TestListJobsPaginationSurvivesReaping pins the keyset-pagination
// contract under the janitor race: a page_token naming a job the janitor
// reaped between pages is still a valid position — the next page resumes
// strictly after it, skipping no survivor and replaying none. Malformed
// tokens are 400s, and the keyset compares admission sequences
// numerically, so ids that outgrow their zero-padding still order
// correctly.
func TestListJobsPaginationSurvivesReaping(t *testing.T) {
	var runs atomic.Int64
	e := newEnv(t, Config{QueueDepth: 16, JobWorkers: 1, Runner: countingRunner(&runs, 0)})
	submit := func(seed int) {
		t.Helper()
		r := e.submit(fmt.Sprintf(`{"kind":"table1","params":{"fast":true,"budget_sec":0.5,"seed":%d}}`, seed))
		b := readAll(t, r)
		if r.StatusCode != http.StatusOK {
			t.Fatalf("submit seed %d: %d %s", seed, r.StatusCode, b)
		}
	}
	for seed := 1; seed <= 6; seed++ {
		submit(seed)
	}

	list := func(query string) (ids []string, next string) {
		t.Helper()
		resp, err := http.Get(e.url + "/v1/jobs?" + query)
		if err != nil {
			t.Fatal(err)
		}
		body := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("list %q: %d %s", query, resp.StatusCode, body)
		}
		var out struct {
			Jobs []jobView `json:"jobs"`
			Next string    `json:"next_page_token"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		for _, v := range out.Jobs {
			ids = append(ids, v.ID)
		}
		return ids, out.Next
	}
	eq := func(got []string, want ...string) {
		t.Helper()
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("page = %v, want %v", got, want)
		}
	}

	ids, next := list("limit=2")
	eq(ids, "j00000001", "j00000002")
	if next != "j00000002" {
		t.Fatalf("next_page_token = %q, want j00000002", next)
	}

	// The janitor race: the token's own job and the one after it are
	// reaped between page fetches (exactly what reapLocked does).
	e.s.mu.Lock()
	delete(e.s.jobs, "j00000002")
	delete(e.s.jobs, "j00000003")
	e.s.mu.Unlock()

	ids, next = list("limit=2&page_token=j00000002")
	eq(ids, "j00000004", "j00000005")
	if next != "j00000005" {
		t.Fatalf("next_page_token after reap = %q, want j00000005", next)
	}
	ids, next = list("limit=2&page_token=" + next)
	eq(ids, "j00000006")
	if next != "" {
		t.Fatalf("final page carried next_page_token %q", next)
	}

	// Malformed tokens cannot denote a position: 400, field page_token.
	for _, tok := range []string{"garbage", "j12x", "00000004", "j", "j-3"} {
		resp, err := http.Get(e.url + "/v1/jobs?page_token=" + tok)
		if err != nil {
			t.Fatal(err)
		}
		body := readAll(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("token %q: status %d %s, want 400", tok, resp.StatusCode, body)
		}
		var env errorEnvelope
		if err := json.Unmarshal(body, &env); err != nil {
			t.Fatal(err)
		}
		if env.Error.Code != "invalid_param" || env.Error.Field != "page_token" {
			t.Fatalf("token %q: error %+v, want invalid_param on page_token", tok, env.Error)
		}
	}

	// Numeric keyset: ids that outgrow the 8-digit padding must still
	// order by admission sequence ("j100000000" comes after "j99999999",
	// though it sorts before it lexically).
	e.s.mu.Lock()
	e.s.jobSeq = 99999998
	e.s.mu.Unlock()
	submit(7) // j99999999
	submit(8) // j100000000
	ids, _ = list("page_token=j99999999&limit=10")
	eq(ids, "j100000000")
}
