package service

import (
	"errors"
	"net/http"

	"repro/internal/api"
	"repro/internal/experiments"
)

// apiVersion stamps every /v1 JSON body (job views, listings, error
// envelopes, stream events). The constant — and the envelope shape —
// live in internal/api, shared with the fleet wire surface so the two
// cannot drift.
const apiVersion = api.Version

// errorEnvelope aliases the shared wire form so in-package tests (and
// older call sites) keep decoding against the service's own name.
type errorEnvelope = api.ErrorEnvelope

// writeAPIError writes the uniform error envelope.
func writeAPIError(w http.ResponseWriter, status int, code, field, msg string) {
	api.WriteError(w, status, code, field, msg)
}

// apiParamError maps a parameter-validation failure to the envelope,
// surfacing the offending field path when the experiments layer names
// one.
func apiParamError(w http.ResponseWriter, err error) {
	var pe *experiments.ParamError
	if errors.As(err, &pe) {
		writeAPIError(w, http.StatusBadRequest, "invalid_param", pe.Field, err.Error())
		return
	}
	writeAPIError(w, http.StatusBadRequest, "invalid_param", "", err.Error())
}
