package service

import (
	"errors"
	"net/http"

	"repro/internal/experiments"
)

// apiVersion stamps every /v1 JSON body (job views, listings, error
// envelopes, stream events) so clients can detect surface changes
// without relying on response headers.
const apiVersion = "v1"

// apiError is the machine-readable error payload carried by every
// non-2xx /v1 response.
type apiError struct {
	// Code is a stable, grep-able identifier: invalid_request,
	// unknown_kind, invalid_param, queue_full, draining, not_found,
	// job_failed, job_canceled, job_not_finished, internal.
	Code string `json:"code"`
	// Message is the human-readable description.
	Message string `json:"message"`
	// Field names the offending parameter for validation failures, as a
	// path into the request body (e.g. "params.mix", "params.policies[1]").
	Field string `json:"field,omitempty"`
}

// errorEnvelope is the wire form of a failed request.
type errorEnvelope struct {
	APIVersion string   `json:"api_version"`
	Error      apiError `json:"error"`
}

// writeAPIError writes the uniform error envelope.
func writeAPIError(w http.ResponseWriter, status int, code, field, msg string) {
	writeJSON(w, status, errorEnvelope{
		APIVersion: apiVersion,
		Error:      apiError{Code: code, Message: msg, Field: field},
	})
}

// apiParamError maps a parameter-validation failure to the envelope,
// surfacing the offending field path when the experiments layer names
// one.
func apiParamError(w http.ResponseWriter, err error) {
	var pe *experiments.ParamError
	if errors.As(err, &pe) {
		writeAPIError(w, http.StatusBadRequest, "invalid_param", pe.Field, err.Error())
		return
	}
	writeAPIError(w, http.StatusBadRequest, "invalid_param", "", err.Error())
}
