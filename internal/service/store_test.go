package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/internal/diskstore"
	"repro/internal/version"
)

// This file tests the persistent tier end to end at the service layer:
// a restarted server (new process, new memory caches, same store
// directory) must re-serve completed campaigns and completed cells from
// disk without re-executing anything, and a graceful shutdown must make
// every acknowledged write-behind Put durable.

// openStore opens a diskstore on dir with the engine version the server
// keys by, failing the test on error.
func openStore(t *testing.T, dir string) *diskstore.Store {
	t.Helper()
	s, err := diskstore.Open(dir, diskstore.Options{EngineVersion: version.Engine})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// shutdown drains srv with a generous deadline so the write-behind
// queue is flushed (the Shutdown durability contract).
func shutdown(t *testing.T, srv *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestStoreWarmRestart is the restart contract: run a campaign, restart
// the service against the same store directory (fresh server, fresh
// in-memory caches), re-submit, and require the response to be served
// from disk — zero cells executed — with a byte-identical body.
func TestStoreWarmRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign runs in -short mode")
	}
	dir := t.TempDir()
	req := `{"kind":"compare","params":{"fast":true,"reps":1,"mix":5,"policies":["Equipartition","Dynamic"],"workers":2}}`

	store1 := openStore(t, dir)
	e1 := newEnv(t, Config{QueueDepth: 4, JobWorkers: 1, Store: store1})
	r1 := e1.submit(req)
	body1 := readAll(t, r1)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("first run: %d %s", r1.StatusCode, body1)
	}
	key := r1.Header.Get("X-Cache-Key")
	if key == "" {
		t.Fatal("first run carried no X-Cache-Key")
	}
	shutdown(t, e1.s)
	if err := store1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a second server with nothing in memory, same directory.
	store2 := openStore(t, dir)
	defer store2.Close()
	if !store2.Contains(key) {
		t.Fatalf("campaign body %s not durable across restart (%+v)", key, store2.Stats())
	}
	e2 := newEnv(t, Config{QueueDepth: 4, JobWorkers: 1, Store: store2})
	r2 := e2.submit(req)
	body2 := readAll(t, r2)
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("restarted run: %d %s", r2.StatusCode, body2)
	}
	if got := r2.Header.Get("X-Cache"); got != "disk" {
		t.Errorf("restarted X-Cache = %q, want disk", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Errorf("restarted body differs:\n%.200s\n%.200s", body1, body2)
	}
	if x := e2.s.metrics.cells.Executions.Load(); x != 0 {
		t.Errorf("restarted run executed %d cells, want 0", x)
	}
	if ds := store2.Stats(); ds.Hits == 0 {
		t.Errorf("store stats recorded no hit: %+v", ds)
	}

	// The disk hit was promoted into the memory tier: a third submit is a
	// plain memory hit without touching the store again.
	before := store2.Stats().Hits
	r3 := e2.submit(req)
	body3 := readAll(t, r3)
	if got := r3.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("post-promotion X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body1, body3) {
		t.Error("post-promotion body differs")
	}
	if after := store2.Stats().Hits; after != before {
		t.Errorf("memory hit consulted the store (%d -> %d hits)", before, after)
	}
}

// TestStoreCellPromotion covers the cell-level tier: a restarted server
// running a *superset* campaign reuses its predecessor's cells from
// disk and executes only the genuinely new one, with the reuse visible
// in job views and /metrics.
func TestStoreCellPromotion(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign runs in -short mode")
	}
	dir := t.TempDir()
	small := `{"kind":"compare","params":{"fast":true,"reps":1,"mix":5,"policies":["Equipartition","Dynamic"],"workers":2}}`
	super := `{"kind":"compare","params":{"fast":true,"reps":1,"mix":5,"policies":["Equipartition","Dynamic","Dyn-Aff"],"workers":2}}`

	store1 := openStore(t, dir)
	e1 := newEnv(t, Config{QueueDepth: 4, JobWorkers: 1, Store: store1})
	if r := e1.submit(small); r.StatusCode != http.StatusOK {
		t.Fatalf("small campaign: %d %s", r.StatusCode, readAll(t, r))
	} else {
		readAll(t, r)
	}
	shutdown(t, e1.s)
	store1.Close()

	// Cold reference for the superset on a storeless private server.
	cold := newEnv(t, Config{QueueDepth: 4, JobWorkers: 1})
	rc := cold.submit(super)
	coldBody := readAll(t, rc)
	if rc.StatusCode != http.StatusOK {
		t.Fatalf("cold superset: %d %s", rc.StatusCode, coldBody)
	}

	store2 := openStore(t, dir)
	defer store2.Close()
	e2 := newEnv(t, Config{QueueDepth: 4, JobWorkers: 1, Store: store2})
	r2 := e2.submit(super)
	body2 := readAll(t, r2)
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("superset after restart: %d %s", r2.StatusCode, body2)
	}
	if !bytes.Equal(coldBody, body2) {
		t.Errorf("disk-promoted superset body differs from cold run:\n%.200s\n%.200s", coldBody, body2)
	}
	// Two cells came from disk, one executed; disk hits are not misses.
	c := &e2.s.metrics.cells
	if d, h, m, x := c.DiskHits.Load(), c.Hits.Load(), c.Misses.Load(), c.Executions.Load(); d != 2 || h != 0 || m != 1 || x != 1 {
		t.Errorf("cell accounting: disk=%d hits=%d misses=%d executions=%d, want 2/0/1/1", d, h, m, x)
	}

	// The job view reports the disk reuse.
	var list struct {
		Jobs []jobView `json:"jobs"`
	}
	resp, err := http.Get(e2.url + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(readAll(t, resp), &list); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range list.Jobs {
		if v.CellsTotal == 3 {
			found = true
			if v.CellsFromDisk != 2 || v.CellsDone != 3 {
				t.Errorf("superset job view: %+v, want done=3 from_disk=2", v)
			}
		}
	}
	if !found {
		t.Errorf("no 3-cell job in listing: %+v", list.Jobs)
	}
}

// TestShutdownFlushesAcknowledgedPuts is the drain-durability contract:
// any Put acknowledged onto the write-behind queue before Shutdown
// returns must be readable by a fresh store on the same directory —
// a SIGTERM (which triggers exactly this Shutdown) never loses
// completed work.
func TestShutdownFlushesAcknowledgedPuts(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign runs in -short mode")
	}
	dir := t.TempDir()
	req := `{"kind":"compare","params":{"fast":true,"reps":1,"mix":5,"policies":["Dynamic"],"workers":1}}`

	store1 := openStore(t, dir)
	e := newEnv(t, Config{QueueDepth: 4, JobWorkers: 1, Store: store1})
	r := e.submit(req)
	body := readAll(t, r)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("campaign: %d %s", r.StatusCode, body)
	}
	key := r.Header.Get("X-Cache-Key")
	// The 200 acknowledged the result; Shutdown must make it durable
	// even though the flusher runs behind the serving path.
	shutdown(t, e.s)
	if err := store1.Close(); err != nil {
		t.Fatal(err)
	}

	reopened := openStore(t, dir)
	defer reopened.Close()
	got, _, ok := reopened.Get(key)
	if !ok {
		t.Fatalf("acknowledged campaign body lost across shutdown (%+v)", reopened.Stats())
	}
	if !bytes.Equal(got, body) {
		t.Errorf("durable body differs from served body:\n%.200s\n%.200s", got, body)
	}
	// The cell result is durable too (1-policy compare = 1 cell + body).
	if st := reopened.Stats(); st.Entries < 2 {
		t.Errorf("store entries = %d, want >= 2 (body + cell): %+v", st.Entries, st)
	}
}

// TestStoreMetricsRendered pins the /metrics surface: the store series
// are present (and zero) even without a store, and populated with one.
func TestStoreMetricsRendered(t *testing.T) {
	e := newEnv(t, Config{QueueDepth: 4, JobWorkers: 1})
	resp, err := http.Get(e.url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb := readAll(t, resp)
	for _, series := range []string{
		"affinityd_store_hits_total 0",
		"affinityd_store_misses_total 0",
		"affinityd_store_puts_total 0",
		"affinityd_store_dropped_total 0",
		"affinityd_store_flushed_frames_total 0",
		"affinityd_store_evictions_total 0",
		"affinityd_store_corrupt_frames_total 0",
		"affinityd_store_truncated_bytes_total 0",
		"affinityd_store_entries 0",
		"affinityd_store_disk_bytes 0",
		"affinityd_store_budget_bytes 0",
		"affinityd_store_flush_queue_depth 0",
		"affinityd_cell_disk_hits_total 0",
		"affinityd_request_store_lookup_seconds_count 0",
	} {
		if !bytes.Contains(mb, []byte(series+"\n")) {
			t.Errorf("metrics missing zero-valued series %q", series)
		}
	}
}

// TestCancelKeepsCompletedCellsDurable is the write-behind loss-window
// regression: cells completed before a job is cancelled were Put onto the
// diskstore flusher queue — cancellation must not void those acknowledged
// writes. Cancel a campaign mid-grid, restart the service on the same
// directory, re-submit, and require every cell completed before the
// cancel to be served from disk without re-executing.
func TestCancelKeepsCompletedCellsDurable(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign runs in -short mode")
	}
	dir := t.TempDir()
	// 5 sequential cells (~tens of ms each): enough runway to cancel
	// after the first completes and before the last starts.
	req := `{"kind":"compare","params":{"fast":true,"reps":8,"mix":5,"policies":["Equipartition","Dynamic","Dyn-Aff","Dyn-Aff-Delay","Dyn-Aff-NoPri"],"workers":1},"async":true}`

	store1 := openStore(t, dir)
	e1 := newEnv(t, Config{QueueDepth: 4, JobWorkers: 1, Store: store1})
	r := e1.submit(req)
	ab := readAll(t, r)
	if r.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: %d %s", r.StatusCode, ab)
	}
	var accepted jobView
	if err := json.Unmarshal(ab, &accepted); err != nil {
		t.Fatal(err)
	}

	// Poll until at least one cell completed, then cancel immediately.
	poll := func() jobView {
		t.Helper()
		resp, err := http.Get(e1.url + "/v1/jobs/" + accepted.ID)
		if err != nil {
			t.Fatal(err)
		}
		var v jobView
		if err := json.Unmarshal(readAll(t, resp), &v); err != nil {
			t.Fatal(err)
		}
		return v
	}
	deadline := time.Now().Add(30 * time.Second)
	var v jobView
	for {
		if v = poll(); v.CellsDone >= 1 || v.Status != "running" && v.Status != "queued" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no cell completed before deadline: %+v", v)
		}
		time.Sleep(time.Millisecond)
	}
	if v.Status != "running" {
		t.Fatalf("job reached %q before it could be cancelled mid-grid", v.Status)
	}
	del, err := http.NewRequest(http.MethodDelete, e1.url+"/v1/jobs/"+accepted.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, dresp)
	for {
		if v = poll(); v.Status != "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job did not stop after DELETE: %+v", v)
		}
		time.Sleep(time.Millisecond)
	}
	if v.Status != "canceled" {
		t.Fatalf("job status after DELETE = %q, want canceled (%+v)", v.Status, v)
	}
	completed := v.CellsDone
	if completed < 1 || completed >= v.CellsTotal {
		t.Fatalf("cancel landed outside the grid: %d/%d cells done", completed, v.CellsTotal)
	}

	// Restart: the cancelled job's completed cells must have survived the
	// write-behind queue across Shutdown+Close.
	shutdown(t, e1.s)
	if err := store1.Close(); err != nil {
		t.Fatal(err)
	}
	store2 := openStore(t, dir)
	defer store2.Close()
	if st := store2.Stats(); st.Entries < completed {
		t.Fatalf("reopened store has %d entries, want >= %d completed cells (%+v)", st.Entries, completed, st)
	}

	e2 := newEnv(t, Config{QueueDepth: 4, JobWorkers: 1, Store: store2})
	r2 := e2.submit(`{"kind":"compare","params":{"fast":true,"reps":8,"mix":5,"policies":["Equipartition","Dynamic","Dyn-Aff","Dyn-Aff-Delay","Dyn-Aff-NoPri"],"workers":1}}`)
	body2 := readAll(t, r2)
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("resubmit after restart: %d %s", r2.StatusCode, body2)
	}
	c := &e2.s.metrics.cells
	if d, x := c.DiskHits.Load(), c.Executions.Load(); int(d) < completed || int(d+x) != 5 {
		t.Errorf("resubmit accounting: disk=%d executions=%d, want disk >= %d and disk+exec = 5", d, x, completed)
	}
}
