package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"testing"
	"time"
)

// TestCellReuseAcrossCampaigns is the tentpole's service-level contract:
// a superset campaign re-executes only the cells its predecessor never
// ran, the reuse is visible in the job view and metrics, and the merged
// body is byte-identical to a cold run of the same superset.
func TestCellReuseAcrossCampaigns(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign runs in -short mode")
	}
	e := newEnv(t, Config{})    // real registry => cell execution path
	cold := newEnv(t, Config{}) // private caches: the cold-run reference

	small := `{"kind":"compare","params":{"fast":true,"reps":1,"mix":5,"policies":["Equipartition","Dynamic"],"workers":2}}`
	super := `{"kind":"compare","params":{"fast":true,"reps":1,"mix":5,"policies":["Equipartition","Dynamic","Dyn-Aff"],"workers":2}}`

	r1 := e.submit(small)
	b1 := readAll(t, r1)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("small campaign: %d %s", r1.StatusCode, b1)
	}
	if h, m, x := e.s.metrics.cells.Hits.Load(), e.s.metrics.cells.Misses.Load(), e.s.metrics.cells.Executions.Load(); h != 0 || m != 2 || x != 2 {
		t.Errorf("after small campaign: hits=%d misses=%d executions=%d, want 0/2/2", h, m, x)
	}

	r2 := e.submit(super)
	b2 := readAll(t, r2)
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("superset campaign: %d %s", r2.StatusCode, b2)
	}
	if got := r2.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("superset X-Cache = %q, want miss (different campaign key)", got)
	}
	// The superset's (mix=5, Equipartition) and (mix=5, Dynamic) cells
	// were already cached by the small campaign; only Dyn-Aff executes.
	if h, m, x := e.s.metrics.cells.Hits.Load(), e.s.metrics.cells.Misses.Load(), e.s.metrics.cells.Executions.Load(); h != 2 || m != 3 || x != 3 {
		t.Errorf("after superset: hits=%d misses=%d executions=%d, want 2/3/3", h, m, x)
	}

	// The reuse is visible on the job view.
	var list struct {
		Jobs []jobView `json:"jobs"`
	}
	resp, err := http.Get(e.url + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(readAll(t, resp), &list); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range list.Jobs {
		if v.CellsTotal == 3 {
			found = true
			if v.CellsDone != 3 || v.CellsFromCache != 2 {
				t.Errorf("superset job cells: %+v, want done=3 from_cache=2", v)
			}
		}
	}
	if !found {
		t.Errorf("no 3-cell job in listing: %+v", list.Jobs)
	}

	// Reused cells must not change a single byte of the merged result.
	rc := cold.submit(super)
	bc := readAll(t, rc)
	if rc.StatusCode != http.StatusOK {
		t.Fatalf("cold superset: %d %s", rc.StatusCode, bc)
	}
	if !bytes.Equal(b2, bc) {
		t.Errorf("superset body with reused cells differs from cold run:\n%.200s\n%.200s", b2, bc)
	}
}

// TestJobEventsStream checks GET /v1/jobs/{id}/events delivers one NDJSON
// cell event per completed cell and a terminal event, and that a stream
// opened after completion replays the identical log.
func TestJobEventsStream(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign runs in -short mode")
	}
	e := newEnv(t, Config{})
	resp := e.submit(`{"kind":"compare","params":{"fast":true,"reps":1,"mix":5,"policies":["Dynamic"],"workers":1},"async":true}`)
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: %d %s", resp.StatusCode, body)
	}
	var v jobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.APIVersion != apiVersion || v.Cache != "miss" || v.RequestID == "" || v.EventsURL == "" {
		t.Errorf("job view missing api fields: %+v", v)
	}

	readEvents := func() []jobEvent {
		er, err := http.Get(e.url + v.EventsURL)
		if err != nil {
			t.Fatal(err)
		}
		defer er.Body.Close()
		if ct := er.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Errorf("events Content-Type = %q", ct)
		}
		var events []jobEvent
		sc := bufio.NewScanner(er.Body)
		for sc.Scan() {
			var ev jobEvent
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				t.Fatalf("bad event line %q: %v", sc.Text(), err)
			}
			events = append(events, ev)
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		return events
	}

	events := readEvents() // blocks until the terminal event closes the stream
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2 (one cell + terminal): %+v", len(events), events)
	}
	cell, term := events[0], events[1]
	if cell.Type != "cell" || cell.Cache != "miss" || cell.Cell != "mix=5/policy=Dynamic" || cell.Index != 0 {
		t.Errorf("cell event: %+v", cell)
	}
	if cell.CellsTotal != 1 || cell.CellsDone != 1 || cell.CellsFromCache != 0 {
		t.Errorf("cell event counts: %+v", cell)
	}
	if term.Type != "done" || term.Index != -1 || term.ResultURL == "" || term.RequestID != v.RequestID {
		t.Errorf("terminal event: %+v", term)
	}
	for i, ev := range events {
		if ev.Seq != i+1 || ev.APIVersion != apiVersion || ev.JobID != v.ID {
			t.Errorf("event %d ids: %+v", i, ev)
		}
	}

	// Replays are deterministic: the recorded log, not the connection.
	replay := readEvents()
	a, _ := json.Marshal(events)
	b, _ := json.Marshal(replay)
	if !bytes.Equal(a, b) {
		t.Errorf("replayed events differ:\n%s\n%s", a, b)
	}
}

// TestErrorEnvelope checks every non-2xx /v1 response carries the
// machine-readable envelope, with field paths on validation failures.
func TestErrorEnvelope(t *testing.T) {
	e := newEnv(t, Config{Runner: countingRunner(new(atomic.Int64), 0)})
	decode := func(resp *http.Response) errorEnvelope {
		t.Helper()
		var env errorEnvelope
		if err := json.Unmarshal(readAll(t, resp), &env); err != nil {
			t.Fatal(err)
		}
		if env.APIVersion != apiVersion {
			t.Errorf("envelope api_version = %q", env.APIVersion)
		}
		return env
	}

	env := decode(e.submit(`{"kind":"nonsense"}`))
	if env.Error.Code != "unknown_kind" || env.Error.Field != "kind" {
		t.Errorf("unknown kind envelope: %+v", env.Error)
	}
	env = decode(e.submit(`{"kind":"compare","params":{"mix":42}}`))
	if env.Error.Code != "invalid_param" || env.Error.Field != "params.mix" {
		t.Errorf("bad mix envelope: %+v", env.Error)
	}
	env = decode(e.submit(`{"kind":"compare","params":{"policies":["Equipartition","NoSuch"]}}`))
	if env.Error.Code != "invalid_param" || env.Error.Field != "params.policies[1]" {
		t.Errorf("bad policy envelope: %+v", env.Error)
	}
	env = decode(e.submit(`not json`))
	if env.Error.Code != "invalid_request" {
		t.Errorf("bad body envelope: %+v", env.Error)
	}

	resp, err := http.Get(e.url + "/v1/jobs/zzz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing job: %d", resp.StatusCode)
	}
	if env = decode(resp); env.Error.Code != "not_found" {
		t.Errorf("missing job envelope: %+v", env.Error)
	}

	resp, err = http.Get(e.url + "/v1/jobs?limit=0")
	if err != nil {
		t.Fatal(err)
	}
	if env = decode(resp); env.Error.Code != "invalid_param" || env.Error.Field != "limit" {
		t.Errorf("bad limit envelope: %+v", env.Error)
	}
	resp, err = http.Get(e.url + "/v1/jobs?status=bogus")
	if err != nil {
		t.Fatal(err)
	}
	if env = decode(resp); env.Error.Code != "invalid_param" || env.Error.Field != "status" {
		t.Errorf("bad status envelope: %+v", env.Error)
	}
}

// TestListJobsFilterPagination checks the /v1/jobs filters and keyset
// pagination: stable id (admission) order, limit-sized pages, and
// next_page_token present exactly while more matches remain.
func TestListJobsFilterPagination(t *testing.T) {
	var runs atomic.Int64
	e := newEnv(t, Config{Runner: countingRunner(&runs, 0), JobWorkers: 1})

	kinds := []string{"compare", "table1", "compare", "table1", "compare"}
	for i, kind := range kinds {
		resp := e.submit(fmt.Sprintf(`{"kind":%q,"params":{"fast":true,"seed":%d},"async":true}`, kind, i+1))
		b := readAll(t, resp)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, resp.StatusCode, b)
		}
	}

	type listResp struct {
		APIVersion    string    `json:"api_version"`
		Jobs          []jobView `json:"jobs"`
		NextPageToken string    `json:"next_page_token"`
	}
	list := func(query string) listResp {
		t.Helper()
		resp, err := http.Get(e.url + "/v1/jobs" + query)
		if err != nil {
			t.Fatal(err)
		}
		b := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("list %q: %d %s", query, resp.StatusCode, b)
		}
		var lr listResp
		if err := json.Unmarshal(b, &lr); err != nil {
			t.Fatal(err)
		}
		if lr.APIVersion != apiVersion {
			t.Errorf("list api_version = %q", lr.APIVersion)
		}
		return lr
	}

	// Wait for all five to finish so status filters are deterministic.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if done := list("?status=done"); len(done.Jobs) == len(kinds) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs never finished: %+v", list(""))
		}
		time.Sleep(10 * time.Millisecond)
	}

	all := list("")
	if len(all.Jobs) != 5 || all.NextPageToken != "" {
		t.Fatalf("unfiltered list: %d jobs, token %q", len(all.Jobs), all.NextPageToken)
	}
	for i := 1; i < len(all.Jobs); i++ {
		if all.Jobs[i-1].ID >= all.Jobs[i].ID {
			t.Errorf("listing not in ascending id order: %s >= %s", all.Jobs[i-1].ID, all.Jobs[i].ID)
		}
	}

	// Two pages of two, then a final page of one, stitched by token.
	var paged []string
	token := ""
	pages := 0
	for {
		lr := list("?limit=2&page_token=" + token)
		if len(lr.Jobs) > 2 {
			t.Fatalf("page exceeds limit: %d", len(lr.Jobs))
		}
		for _, v := range lr.Jobs {
			paged = append(paged, v.ID)
		}
		pages++
		if lr.NextPageToken == "" {
			break
		}
		token = lr.NextPageToken
		if pages > 5 {
			t.Fatal("pagination never terminated")
		}
	}
	if pages != 3 || len(paged) != 5 {
		t.Errorf("pagination walked %d pages / %d jobs, want 3 / 5", pages, len(paged))
	}
	for i, v := range all.Jobs {
		if paged[i] != v.ID {
			t.Errorf("paged order differs at %d: %s vs %s", i, paged[i], v.ID)
		}
	}

	if byKind := list("?kind=table1"); len(byKind.Jobs) != 2 {
		t.Errorf("kind filter returned %d jobs, want 2", len(byKind.Jobs))
	}
	if combo := list("?kind=compare&status=done&limit=2"); len(combo.Jobs) != 2 || combo.NextPageToken == "" {
		t.Errorf("combined filter page: %d jobs, token %q", len(combo.Jobs), combo.NextPageToken)
	}
	if none := list("?status=failed"); len(none.Jobs) != 0 {
		t.Errorf("failed filter returned %d jobs", len(none.Jobs))
	}
}

// TestCampaignSchemas checks GET /v1/campaigns exposes a parameter
// schema for every kind.
func TestCampaignSchemas(t *testing.T) {
	e := newEnv(t, Config{Runner: countingRunner(new(atomic.Int64), 0)})
	resp, err := http.Get(e.url + "/v1/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		APIVersion string `json:"api_version"`
		Campaigns  []struct {
			Kind   string `json:"kind"`
			Params []struct {
				Name    string   `json:"name"`
				Type    string   `json:"type"`
				Default any      `json:"default"`
				Min     *float64 `json:"min"`
				Max     *float64 `json:"max"`
				Allowed []string `json:"allowed"`
			} `json:"params"`
		} `json:"campaigns"`
		EngineVersion string `json:"engine_version"`
	}
	if err := json.Unmarshal(readAll(t, resp), &out); err != nil {
		t.Fatal(err)
	}
	if out.APIVersion != apiVersion || out.EngineVersion == "" {
		t.Errorf("campaign listing meta: %+v", out)
	}
	if len(out.Campaigns) != 6 {
		t.Fatalf("campaign listing has %d kinds, want 6", len(out.Campaigns))
	}
	for _, c := range out.Campaigns {
		if len(c.Params) == 0 {
			t.Errorf("%s: no parameter schema", c.Kind)
			continue
		}
		names := map[string]bool{}
		for _, p := range c.Params {
			if p.Name == "" || p.Type == "" {
				t.Errorf("%s: incomplete spec %+v", c.Kind, p)
			}
			names[p.Name] = true
		}
		if !names["seed"] || !names["workers"] {
			t.Errorf("%s: schema missing common params: %v", c.Kind, names)
		}
		if c.Kind == "compare" {
			found := false
			for _, p := range c.Params {
				if p.Name == "policies" && len(p.Allowed) > 0 {
					found = true
				}
			}
			if !found {
				t.Errorf("compare: policies spec missing allowed values")
			}
		}
	}
}
