package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/fleet"
	"repro/internal/version"
)

// registerFleetWorker POSTs one worker registration to the service's own
// mux (the coordinator's fleet endpoints are mounted there).
func registerFleetWorker(t *testing.T, e *testEnv, url string, capacity int) string {
	t.Helper()
	body, _ := json.Marshal(fleet.RegisterRequest{URL: url, Capacity: capacity, EngineVersion: version.Engine})
	resp, err := http.Post(e.url+fleet.PathRegister, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ack fleet.RegisterResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("register %s: status %d, decode err %v", url, resp.StatusCode, err)
	}
	return ack.ID
}

// TestFleetBudgetExhaustedFallsBackLocal pins the re-dispatch budget's
// end-to-end contract: with every fleet worker dead and a one-unit
// budget, the campaign spends its single retry, stops re-dispatching,
// executes every cell locally — with a final body byte-identical to a
// fleet-less daemon's — and reports budget_exhausted in the job view and
// the exhaustion counter in /metrics.
func TestFleetBudgetExhaustedFallsBackLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign runs in -short mode")
	}
	coord := fleet.NewCoordinator(fleet.Config{
		Backoff:    time.Millisecond,
		HedgeDelay: time.Minute, // retries only; hedging stays out of the picture
	})
	e := newEnv(t, Config{Fleet: coord, HedgeBudget: 1})
	plain := newEnv(t, Config{}) // no fleet: the reference for byte-identity

	// Two dead workers: both connection-refused on dispatch. Capacity is
	// irrelevant — they never accept anything.
	registerFleetWorker(t, e, "http://127.0.0.1:1", 16)
	registerFleetWorker(t, e, "http://127.0.0.1:2", 16)

	campaign := `{"kind":"compare","params":{"fast":true,"reps":1,"mix":5,"policies":["Equipartition","Dynamic"],"workers":2}}`
	resp := e.submit(campaign)
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("campaign with dead fleet: %d %s", resp.StatusCode, body)
	}

	// Byte-identity: budget exhaustion degraded to local execution, and
	// local execution is the same merge the fleet-less daemon performs.
	ref := plain.submit(campaign)
	refBody := readAll(t, ref)
	if ref.StatusCode != http.StatusOK {
		t.Fatalf("fleet-less reference: %d %s", ref.StatusCode, refBody)
	}
	if !bytes.Equal(body, refBody) {
		t.Errorf("budget-exhausted body differs from fleet-less run:\n%.200s\n%.200s", body, refBody)
	}

	// The exhaustion is reported, not hidden: job view and metrics.
	var list struct {
		Jobs []jobView `json:"jobs"`
	}
	jl, err := http.Get(e.url + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(readAll(t, jl), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 {
		t.Fatalf("jobs listed: %d, want 1", len(list.Jobs))
	}
	if !list.Jobs[0].BudgetExhausted {
		t.Errorf("job view budget_exhausted = false, want true: %+v", list.Jobs[0])
	}
	// The budget is the ceiling on overshoot: across the whole campaign,
	// retries plus hedges never exceed the single budgeted unit (they can
	// total zero — with both cells racing, the sole unit can be claimed
	// by a relaunch that then finds every worker already dropped).
	if got := coord.Stats.Retries.Load() + coord.Stats.Hedges.Load(); got > 1 {
		t.Errorf("fleet retries+hedges = %d, want <= the budgeted 1", got)
	}
	mr, err := http.Get(e.url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(readAll(t, mr))
	if !strings.Contains(metrics, "affinityd_fleet_budget_exhausted_total 1") {
		t.Errorf("metrics missing affinityd_fleet_budget_exhausted_total 1:\n%s", metrics)
	}

	// A fleet-less daemon never reports the field at all (omitempty): the
	// raw listing JSON must not mention it.
	pl, err := http.Get(plain.url + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	if raw := string(readAll(t, pl)); strings.Contains(raw, "budget_exhausted") {
		t.Errorf("fleet-less job listing leaks budget_exhausted:\n%s", raw)
	}
}

// TestWorkersPaginationAndDetail drives GET /v1/workers through the
// /v1/jobs listing conventions — keyset pagination by worker id, status
// filters, envelope-wrapped parameter errors — and GET /v1/workers/{id}
// through found/missing/non-coordinator.
func TestWorkersPaginationAndDetail(t *testing.T) {
	coord := fleet.NewCoordinator(fleet.Config{})
	e := newEnv(t, Config{Fleet: coord})

	ids := make([]string, 0, 5)
	for i := 0; i < 5; i++ {
		ids = append(ids, registerFleetWorker(t, e, fmt.Sprintf("http://worker-%d:7101", i), 2))
	}

	type listing struct {
		APIVersion    string             `json:"api_version"`
		Coordinator   bool               `json:"coordinator"`
		Workers       []fleet.WorkerView `json:"workers"`
		NextPageToken string             `json:"next_page_token"`
	}
	getList := func(query string) listing {
		t.Helper()
		resp, err := http.Get(e.url + "/v1/workers" + query)
		if err != nil {
			t.Fatal(err)
		}
		b := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/workers%s: %d %s", query, resp.StatusCode, b)
		}
		var l listing
		if err := json.Unmarshal(b, &l); err != nil {
			t.Fatal(err)
		}
		if l.APIVersion != api.Version || !l.Coordinator {
			t.Fatalf("listing header wrong: %+v", l)
		}
		return l
	}

	// Walk the full keyset in pages of 2: 2 + 2 + 1, ids strictly
	// ascending across the walk, token absent on the last page.
	var walked []string
	token := ""
	for page := 0; ; page++ {
		q := "?limit=2"
		if token != "" {
			q += "&page_token=" + token
		}
		l := getList(q)
		if len(l.Workers) > 2 {
			t.Fatalf("page %d: %d workers, limit 2", page, len(l.Workers))
		}
		for _, w := range l.Workers {
			if n := len(walked); n > 0 && w.ID <= walked[n-1] {
				t.Fatalf("page %d: id %s out of order after %s", page, w.ID, walked[n-1])
			}
			walked = append(walked, w.ID)
		}
		if l.NextPageToken == "" {
			break
		}
		token = l.NextPageToken
		if page > 5 {
			t.Fatal("pagination never terminated")
		}
	}
	if len(walked) != 5 {
		t.Fatalf("walked %d workers, want 5: %v", len(walked), walked)
	}

	// Status filters: every worker is idle (nothing dispatched).
	if l := getList("?status=idle"); len(l.Workers) != 5 {
		t.Errorf("status=idle: %d workers, want 5", len(l.Workers))
	}
	if l := getList("?status=busy"); len(l.Workers) != 0 {
		t.Errorf("status=busy: %d workers, want 0", len(l.Workers))
	}

	// Parameter errors come back in the standard envelope with the
	// offending field named.
	for _, tc := range []struct{ query, field string }{
		{"?status=frobnicate", "status"},
		{"?limit=1001", "limit"},
		{"?limit=0", "limit"},
		{"?page_token=not-a-worker-id", "page_token"},
	} {
		resp, err := http.Get(e.url + "/v1/workers" + tc.query)
		if err != nil {
			t.Fatal(err)
		}
		b := readAll(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.query, resp.StatusCode)
			continue
		}
		var env errorEnvelope
		if err := json.Unmarshal(b, &env); err != nil {
			t.Fatalf("%s: not an envelope: %s", tc.query, b)
		}
		if env.Error.Code != "invalid_param" || env.Error.Field != tc.field {
			t.Errorf("%s: error = %+v, want invalid_param on %s", tc.query, env.Error, tc.field)
		}
	}

	// Detail: a registered worker's row plus its placement signals.
	resp, err := http.Get(e.url + "/v1/workers/" + ids[0])
	if err != nil {
		t.Fatal(err)
	}
	b := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("worker detail: %d %s", resp.StatusCode, b)
	}
	var d fleet.WorkerDetail
	if err := json.Unmarshal(b, &d); err != nil {
		t.Fatal(err)
	}
	if d.APIVersion != api.Version || d.ID != ids[0] || d.URL != "http://worker-0:7101" {
		t.Errorf("detail = %+v, want id %s for worker-0", d, ids[0])
	}
	if d.FailurePenalty != 0 || d.RTTCount != 0 {
		t.Errorf("fresh worker signals: penalty=%v rtt_count=%d, want zeros", d.FailurePenalty, d.RTTCount)
	}

	// Unknown (well-formed) id: 404 envelope.
	resp, err = http.Get(e.url + "/v1/workers/w000000000000")
	if err != nil {
		t.Fatal(err)
	}
	if b := readAll(t, resp); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown worker: %d %s, want 404", resp.StatusCode, b)
	}

	// Non-coordinator daemon: the listing endpoint exists (role probe),
	// the detail endpoint 404s.
	plain := newEnv(t, Config{})
	resp, err = http.Get(plain.url + "/v1/workers")
	if err != nil {
		t.Fatal(err)
	}
	var l listing
	if err := json.Unmarshal(readAll(t, resp), &l); err != nil {
		t.Fatal(err)
	}
	if l.Coordinator || len(l.Workers) != 0 {
		t.Errorf("non-coordinator listing = %+v, want coordinator=false, no workers", l)
	}
	resp, err = http.Get(plain.url + "/v1/workers/" + ids[0])
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("non-coordinator detail: %d, want 404", resp.StatusCode)
	}
}
