package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/pprof"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/report"
	"repro/internal/resultcache"
	"repro/internal/version"
)

// This file is the cell execution path: when the server runs the real
// campaign registry (Config.Runner == nil), a job is not executed as one
// opaque call but as its experiments.CellPlan — every cell is looked up
// in the per-cell result cache, only the missing ones execute, and each
// completed cell is cached immediately. A campaign cancelled mid-flight
// therefore leaves its finished cells behind, and a re-submission (or a
// superset campaign sharing a sub-grid) resumes instead of restarting.
// The merged body is byte-identical to a monolithic run — the
// experiments-layer contract pinned by TestCellMergeMatchesMonolithic —
// so the campaign-level cache and the cell cache never disagree.

// jobEvent is one NDJSON line of GET /v1/jobs/{id}/events: a "cell"
// progress event per completed cell, then exactly one terminal event
// ("done", "failed", or "canceled") before the stream closes.
type jobEvent struct {
	APIVersion string `json:"api_version"`
	// Type is "cell" for per-cell progress, or the terminal job status.
	Type  string `json:"type"`
	JobID string `json:"job_id"`
	// Seq increments by one per event within the job, from 1.
	Seq int `json:"seq"`
	// Cell names the completed cell ("q=100ms/app=MVA"); empty on
	// terminal events.
	Cell string `json:"cell,omitempty"`
	// Index is the cell's position in the plan; -1 on terminal events.
	Index int `json:"index"`
	// Cache is "hit" (memory tier), "disk" (persistent tier), or "miss"
	// for cell events — and "miss" on terminal events, mirroring the
	// X-Cache header a synchronous submit would have carried (a job only
	// exists for a fresh run).
	Cache string `json:"cache,omitempty"`
	// Engine is the cell's resolved execution tier ("sim" or "analytic")
	// on cell events of the grid-shaped kinds; empty elsewhere.
	Engine string `json:"engine,omitempty"`
	// Worker is the advertised URL of the fleet worker that produced a
	// remotely executed cell; empty for local execution and cache tiers.
	Worker string `json:"worker,omitempty"`
	// Placement attributes the coordinator's scored placement decision
	// for a remotely executed cell ("score=… load=… rtt_ms=… penalty=…",
	// or "peer_fill" when a worker's cache tier served the bytes after
	// dispatch failed); empty for local execution and cache tiers.
	Placement      string `json:"placement,omitempty"`
	CellsTotal     int    `json:"cells_total"`
	CellsDone      int    `json:"cells_done"`
	CellsFromCache int    `json:"cells_from_cache"`
	CellsFromDisk  int    `json:"cells_from_disk"`
	// RequestID mirrors the X-Request-Id of the submitting request.
	RequestID string `json:"request_id,omitempty"`
	Error     string `json:"error,omitempty"`
	ResultURL string `json:"result_url,omitempty"`
}

// cellTracker accumulates a job's cell progress and its event log.
// Readers (status views, the events stream) and writers (the executing
// worker, setTerminal) synchronize on its own lock, never the job's.
type cellTracker struct {
	mu        sync.Mutex
	total     int
	done      int
	fromCache int
	fromDisk  int
	remote    int
	// workers counts remotely executed cells per worker URL; nil until
	// the first remote cell.
	workers map[string]int
	events  []jobEvent
	// changed is closed and replaced whenever an event is appended;
	// stream handlers park on the current instance.
	changed chan struct{}
}

func newCellTracker() *cellTracker {
	return &cellTracker{changed: make(chan struct{})}
}

func (t *cellTracker) setTotal(n int) {
	t.mu.Lock()
	t.total = n
	t.mu.Unlock()
}

func (t *cellTracker) counts() (total, done, fromCache, fromDisk int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total, t.done, t.fromCache, t.fromDisk
}

// remoteCounts snapshots the fleet attribution: how many cells were
// executed by workers, and by whom.
func (t *cellTracker) remoteCounts() (remote int, workers map[string]int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.workers) > 0 {
		workers = make(map[string]int, len(t.workers))
		for w, n := range t.workers {
			workers[w] = n
		}
	}
	return t.remote, workers
}

// appendLocked stamps the event with the tracker's current counts and
// sequence, appends it, and wakes stream readers. Callers hold t.mu.
func (t *cellTracker) appendLocked(ev jobEvent) {
	ev.APIVersion = apiVersion
	ev.Seq = len(t.events) + 1
	ev.CellsTotal = t.total
	ev.CellsDone = t.done
	ev.CellsFromCache = t.fromCache
	ev.CellsFromDisk = t.fromDisk
	t.events = append(t.events, ev)
	close(t.changed)
	t.changed = make(chan struct{})
}

// recordCell logs one completed cell; cache is "hit" (memory), "disk"
// (persistent tier), or "miss", engine the cell's resolved tier ("" for
// kinds without one), worker the fleet worker that executed a remote
// cell ("" for local execution and cache tiers), placement the scored
// decision that routed it there.
func (t *cellTracker) recordCell(jobID, cellID string, index int, cache, engine, worker, placement string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.done++
	switch cache {
	case "hit":
		t.fromCache++
	case "disk":
		t.fromDisk++
	}
	if worker != "" {
		t.remote++
		if t.workers == nil {
			t.workers = make(map[string]int)
		}
		t.workers[worker]++
	}
	t.appendLocked(jobEvent{Type: "cell", JobID: jobID, Cell: cellID, Index: index, Cache: cache, Engine: engine, Worker: worker, Placement: placement})
}

// recordTerminal logs the job's final event. Called from setTerminal
// before j.done closes, so a stream reader woken by the close is
// guaranteed to observe it.
func (t *cellTracker) recordTerminal(ev jobEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ev.Index = -1
	t.appendLocked(ev)
}

// snapshot returns the event log so far and the channel that closes on
// the next append.
func (t *cellTracker) snapshot() ([]jobEvent, <-chan struct{}) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events[:len(t.events):len(t.events)], t.changed
}

// runCells executes one job through its cell plan, reusing cached cells
// and caching fresh ones as they complete. It returns the merged
// campaign body, canonically encoded.
func (s *Server) runCells(j *job) ([]byte, error) {
	plan, err := experiments.Cells(j.kind, j.params)
	if err != nil {
		return nil, err
	}
	j.cells.setTotal(len(plan.Cells))
	ctx := obs.WithCollector(j.ctx, j.stats)
	// In coordinator mode the campaign gets one re-dispatch budget for
	// all its cells: every retry and hedge spends a unit, and exhaustion
	// degrades to local execution (never failure). Published on the job
	// so status views report budget_exhausted live.
	if s.fleet != nil {
		b := fleet.NewBudget(s.cfg.HedgeBudget)
		j.mu.Lock()
		j.budget = b
		j.mu.Unlock()
	}
	partials := make([][]byte, len(plan.Cells))
	err = parallel.ForEach(ctx, j.params.Workers, len(plan.Cells), func(ctx context.Context, i int) error {
		cell := &plan.Cells[i]
		key := resultcache.Key(cell.KeyKind, cell.KeyParams, version.Engine)
		if body, ok := s.cellCache.Get(key); ok {
			s.metrics.cells.Hits.Inc()
			partials[i] = body
			j.cells.recordCell(j.id, cell.ID, i, "hit", cell.Engine, "", "")
			return nil
		}
		// Disk tier: a cell some earlier process (or an evicted cache
		// generation) already simulated. Promote it so siblings in this
		// grid — and the next campaign — hit memory.
		if s.store != nil {
			if body, costNs, ok := s.store.Get(key); ok {
				s.metrics.cells.DiskHits.Inc()
				s.cellCache.PutCost(key, body, costNs)
				partials[i] = body
				j.cells.recordCell(j.id, cell.ID, i, "disk", cell.Engine, "", "")
				return nil
			}
		}
		s.metrics.cells.Misses.Inc()
		start := time.Now()
		// Fleet dispatch: in coordinator mode a missed cell is executed
		// on a worker, with retry/hedging absorbed inside Dispatch so
		// exactly one result ever comes back per miss — the Misses ==
		// Executions invariant is placement-independent. When dispatch
		// cannot produce a result (no live workers, budget exhausted,
		// every attempt failed), bidirectional peer fill gets one shot —
		// a worker's cache tier may still hold bytes the fleet already
		// paid for — and then the cell falls back to local execution:
		// the fleet accelerates campaigns, never gates them.
		var body []byte
		var workerURL, placement string
		costNs := uint64(0)
		if s.fleet != nil {
			if resp, err := s.fleet.DispatchBudget(ctx, fleet.ExecuteRequest{
				Kind:      plan.Kind,
				Params:    j.params,
				Index:     i,
				CellID:    cell.ID,
				Key:       key,
				RequestID: j.requestID,
			}, j.budget); err == nil {
				body, workerURL, costNs, placement = resp.Body, resp.Worker, resp.ExecNs, resp.Placement
			} else if pb, pc, pw, ok := s.fleet.PeerFill(ctx, key); ok {
				body, workerURL, costNs, placement = pb, pw, pc, "peer_fill"
			}
		}
		if body == nil {
			// Label the execution so CPU profiles attribute samples to the
			// campaign kind and grid coordinate they simulated.
			var res any
			var runErr error
			pprof.Do(ctx, pprof.Labels("campaign", plan.Kind, "cell", cell.ID), func(ctx context.Context) {
				res, runErr = cell.Run(ctx)
			})
			if runErr != nil {
				return runErr
			}
			var err error
			body, err = report.CanonicalJSON(res)
			if err != nil {
				return fmt.Errorf("encode cell %s: %w", cell.ID, err)
			}
		}
		s.metrics.cells.Executions.Inc()
		elapsed := time.Since(start)
		span(&s.metrics.cells.ExecNs, elapsed)
		// Engine-tier accounting: kinds without an engine choice always
		// simulate, so anything not explicitly analytic counts as sim.
		if cell.Engine == experiments.EngineAnalytic {
			s.metrics.cells.EngineAnalytic.Inc()
			span(&s.metrics.cells.EngineAnalyticNs, elapsed)
		} else {
			s.metrics.cells.EngineSim.Inc()
			span(&s.metrics.cells.EngineSimNs, elapsed)
		}
		// Cache the partial the moment it completes — in both tiers: a
		// drain or cancel later in the campaign keeps this cell's work,
		// and the write-behind disk Put survives a process death. The
		// exec time rides along as the eviction currency (a remote cell
		// keeps the worker's measured cost, so eviction still weighs
		// simulation time rather than network time).
		if costNs == 0 {
			costNs = uint64(elapsed)
		}
		s.cellCache.PutCost(key, body, costNs)
		if s.store != nil {
			s.store.Put(key, body, costNs)
		}
		partials[i] = body
		j.cells.recordCell(j.id, cell.ID, i, "miss", cell.Engine, workerURL, placement)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if s.fleet != nil && j.budget.Exhausted() {
		s.fleet.Stats.BudgetExhausted.Inc()
	}
	start := time.Now()
	res, err := plan.Merge(j.ctx, partials)
	if err != nil {
		return nil, err
	}
	body, err := report.CanonicalJSON(res)
	if err != nil {
		return nil, fmt.Errorf("encode result: %w", err)
	}
	span(&s.metrics.cells.MergeNs, time.Since(start))
	return body, nil
}

// handleJobEvents streams a job's progress as NDJSON: one jobEvent line
// per completed cell, then the terminal event, then EOF. A stream opened
// after the job finished replays the recorded log — the stream is
// deterministic with respect to the job, not the connection.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	sent := 0
	emit := func(events []jobEvent) {
		for _, ev := range events[sent:] {
			enc.Encode(ev)
		}
		sent = len(events)
		if flusher != nil {
			flusher.Flush()
		}
	}
	for {
		events, changed := j.cells.snapshot()
		emit(events)
		select {
		case <-j.done:
			// The terminal event is recorded before done closes, so one
			// final snapshot drains everything.
			events, _ := j.cells.snapshot()
			emit(events)
			return
		default:
		}
		select {
		case <-changed:
		case <-j.done:
		case <-r.Context().Done():
			return
		}
	}
}
