// Package service is the serving layer of the repo: a long-running
// HTTP/JSON front end over the campaign registry
// (internal/experiments.Campaigns) with the four properties a
// production deployment needs and a batch CLI does not:
//
//   - Admission control. Jobs run on a fixed pool of worker goroutines
//     fed by a bounded queue; when the queue is full a request is
//     rejected immediately with 429 and a Retry-After hint, so overload
//     degrades into fast rejections rather than unbounded memory growth
//     and collapsing latency.
//   - Deduplication (singleflight). Identical requests that arrive while
//     the first is still running attach to the in-flight job instead of
//     enqueuing duplicate simulations.
//   - Memoization, at two granularities. Completed campaign bodies live
//     in a content-addressed LRU cache (internal/resultcache) keyed by
//     the canonical hash of (kind, normalized params, engine version).
//     Below that, every campaign executes as its cell plan
//     (internal/experiments.Cells): each cell — one coordinate of the
//     campaign's grid — is cached under its own content address the
//     moment it completes, so an overlapping or superset campaign
//     re-executes only the cells it has never seen, and a campaign
//     cancelled mid-flight resumes from its finished cells on
//     resubmission. Campaigns are deterministic and merges byte-exact,
//     so either cache serves bits identical to a fresh run. When
//     Config.Store is set, both caches sit on a persistent disk tier
//     (internal/diskstore): completed bodies and cells are written behind
//     to checksummed segment files and read through on a memory miss, so
//     a restart warm-starts from everything any earlier process finished.
//   - Cooperative cancellation. Every job carries a context; cancelling
//     it (client disconnect with no other waiters, DELETE /v1/jobs/{id},
//     or server shutdown) stops the campaign from scheduling new
//     simulation cells promptly.
//
// API (every /v1 JSON body carries "api_version"; non-2xx responses use
// the uniform {"api_version","error":{"code","message","field"}}
// envelope):
//
//	POST   /v1/campaigns        submit {kind, params, async}; sync by default
//	GET    /v1/campaigns        list campaign kinds with parameter schemas
//	GET    /v1/jobs             list jobs (?status=, ?kind=, limit, page_token)
//	GET    /v1/jobs/{id}        job status, incl. cell progress counters
//	GET    /v1/jobs/{id}/result completed job's body
//	GET    /v1/jobs/{id}/events NDJSON stream of per-cell progress events
//	GET    /v1/jobs/{id}/stats  job's simulation-counter decomposition
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/workers          fleet worker registry (?status=, limit, page_token)
//	GET    /v1/workers/{id}     one worker's detail: RTT summary, penalty, counters
//	GET    /healthz             liveness
//	GET    /metrics             Prometheus text exposition
//	GET    /debug/pprof/...     runtime profiles (Config.EnablePprof only)
//
// The X-Cache, X-Cache-Key, and X-Request-Id headers still accompany
// result bodies for compatibility, but header-only signaling is
// deprecated: job views and stream events mirror the cache disposition
// and request id in the JSON body, which is the supported surface.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/diskstore"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/resultcache"
	"repro/internal/version"
)

// Runner executes one campaign; the default dispatches through the
// experiments registry. Tests substitute controllable runners.
type Runner func(ctx context.Context, kind string, p experiments.CampaignParams) (any, error)

func registryRunner(ctx context.Context, kind string, p experiments.CampaignParams) (any, error) {
	c, ok := experiments.CampaignByKind(kind)
	if !ok {
		return nil, fmt.Errorf("service: unknown campaign kind %q", kind)
	}
	return c.Run(ctx, p)
}

// Config parameterizes a Server. Zero values select the defaults noted on
// each field.
type Config struct {
	// QueueDepth bounds the number of jobs waiting to run (default 16).
	// Jobs already running do not count against it.
	QueueDepth int
	// JobWorkers is the number of campaigns run concurrently (default 2).
	// Each campaign additionally fans its cells out over CellWorkers.
	JobWorkers int
	// CacheBytes is the result cache's byte budget (default 64 MiB).
	CacheBytes int64
	// CellWorkers is the per-campaign cell concurrency applied when a
	// request leaves params.workers at 0 (0 = let the campaign use all
	// CPUs).
	CellWorkers int
	// DefaultSeed overrides the registry's default root seed for requests
	// that omit params.seed (0 = keep the registry default).
	DefaultSeed uint64
	// RetryAfter is the hint returned with 429 responses (default 2s).
	RetryAfter time.Duration
	// JobTTL bounds how long a terminal job's status and result stay
	// retrievable through /v1/jobs after it finishes (default 5m).
	// Expired ids return 404; the result body itself lives on in the
	// byte-budgeted result cache, so identical resubmissions still hit.
	JobTTL time.Duration
	// MaxJobs caps retained terminal jobs regardless of age (default
	// 256); the oldest-finished are evicted first. Together with JobTTL
	// it keeps the jobs map — and the result bodies it pins — bounded on
	// a long-running daemon.
	MaxJobs int
	// Runner substitutes the campaign executor (tests); nil uses the
	// experiments registry, executed cell by cell through the cell cache.
	// A non-nil Runner is opaque to the server, so cell-level caching and
	// progress events are disabled for it.
	Runner Runner
	// CellCache substitutes the per-cell result cache, letting several
	// servers — or a restarted one — share completed cells; nil builds a
	// private cache with the CacheBytes budget. Separate from the
	// campaign-body cache so cell traffic never evicts (or pollutes the
	// hit counters of) whole-campaign entries.
	CellCache *resultcache.Cache
	// Store is the persistent tier beneath both in-memory caches
	// (internal/diskstore): campaign bodies and cell results are written
	// behind on completion and read through (with promotion into the LRU
	// tier) on an in-memory miss, so a restarted daemon re-serves
	// everything it ever finished without re-simulating. nil disables
	// persistence. The server flushes the store's write-behind queue
	// during Shutdown; closing the store remains the owner's job.
	Store *diskstore.Store
	// Fleet, when non-nil, makes this server a fleet coordinator
	// (internal/fleet): campaign cells that miss both cache tiers are
	// dispatched over HTTP to registered workers — with bounded retry,
	// hedged re-dispatch of stragglers, and local-execution fallback —
	// and the coordinator's fleet endpoints (worker registration, peer
	// cache fill) are mounted alongside /v1. The Coordinator should
	// share this server's CellCache and Store so peer fill serves the
	// same tiers the server reads.
	Fleet *fleet.Coordinator
	// FleetWorker, when non-nil, mounts the worker-side cell execution
	// endpoint and renders its counters at /metrics; set by cmd/affinityd
	// in -join mode. A daemon can be a worker and still serve its own
	// /v1 traffic.
	FleetWorker *fleet.Worker
	// HedgeBudget caps the total retries + hedges one campaign may spend
	// across all its cells in coordinator mode (default 16; <0 means
	// unlimited). A campaign that exhausts it keeps completing — cells
	// fall back to local execution — and its job view reports
	// budget_exhausted so operators see which campaigns hit the cap.
	HedgeBudget int
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (default
	// off: the profiling surface stays closed unless explicitly opened).
	EnablePprof bool
	// StatsWriter, when non-nil, receives each completed job's
	// response-time decomposition table (experiments.StatsReport).
	StatsWriter io.Writer
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.JobWorkers <= 0 {
		c.JobWorkers = 2
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 2 * time.Second
	}
	if c.JobTTL <= 0 {
		c.JobTTL = 5 * time.Minute
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 256
	}
	if c.Runner == nil {
		c.Runner = registryRunner
	}
	if c.HedgeBudget == 0 {
		c.HedgeBudget = 16
	}
	return c
}

// jobStatus is a job's lifecycle state.
type jobStatus string

const (
	statusQueued   jobStatus = "queued"
	statusRunning  jobStatus = "running"
	statusDone     jobStatus = "done"
	statusFailed   jobStatus = "failed"
	statusCanceled jobStatus = "canceled"
)

// job is one admitted campaign execution. Identical concurrent requests
// share one job (singleflight on the cache key).
type job struct {
	id     string
	kind   string
	key    string
	params experiments.CampaignParams
	// requestID is the X-Request-Id of the submission that created the
	// job, mirrored into views and stream events.
	requestID string
	// cells tracks cell-level progress and the job's event log; it has
	// its own lock and is safe to read at any lifecycle stage.
	cells *cellTracker
	// budget is the campaign's fleet re-dispatch budget (retries +
	// hedges); nil outside coordinator mode. Set under mu before the
	// first dispatch; its own state is atomic.
	budget *fleet.Budget

	ctx    context.Context
	cancel context.CancelFunc

	// stats collects the job's engine-level simulation counters; the
	// worker threads it to the campaign through the run context, so it
	// never enters the params — cache keys and result bodies are
	// untouched by instrumentation.
	stats *obs.CampaignStats

	// waiters counts synchronous requests blocked on this job; when the
	// last one disconnects the job is cancelled (nobody wants the bits).
	// Async submissions hold one permanent waiter so polling clients keep
	// their job alive.
	waiters atomic.Int64

	mu       sync.Mutex
	status   jobStatus
	body     []byte
	errMsg   string
	created  time.Time
	started  time.Time
	finished time.Time
	done     chan struct{}
}

// setStatus transitions the job under its lock; terminal states close
// done exactly once.
func (j *job) setTerminal(st jobStatus, body []byte, errMsg string, now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status == statusDone || j.status == statusFailed || j.status == statusCanceled {
		return false
	}
	j.status, j.body, j.errMsg, j.finished = st, body, errMsg, now
	// Record the terminal stream event before done closes: an events
	// reader woken by the close is then guaranteed to observe it on its
	// final snapshot.
	ev := jobEvent{Type: string(st), JobID: j.id, Cache: "miss", RequestID: j.requestID, Error: errMsg}
	if st == statusDone {
		ev.ResultURL = "/v1/jobs/" + j.id + "/result"
	}
	j.cells.recordTerminal(ev)
	close(j.done)
	return true
}

// view is a consistent snapshot for status responses.
func (j *job) view() jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := jobView{
		APIVersion: apiVersion,
		ID:         j.id,
		Kind:       j.kind,
		Status:     string(j.status),
		CacheKey:   j.key,
		// A job only exists for a fresh run — cache hits are served
		// inline without one — so its disposition is always "miss"; the
		// field mirrors the deprecated X-Cache header into the body.
		Cache:     "miss",
		Engine:    j.params.Engine,
		RequestID: j.requestID,
		Error:     j.errMsg,
		Created:   j.created.UTC().Format(time.RFC3339Nano),
		EventsURL: "/v1/jobs/" + j.id + "/events",
	}
	v.CellsTotal, v.CellsDone, v.CellsFromCache, v.CellsFromDisk = j.cells.counts()
	v.CellsRemote, v.Workers = j.cells.remoteCounts()
	v.BudgetExhausted = j.budget.Exhausted()
	if !j.started.IsZero() {
		v.Started = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		v.Finished = j.finished.UTC().Format(time.RFC3339Nano)
	}
	if j.status == statusDone {
		v.ResultURL = "/v1/jobs/" + j.id + "/result"
	}
	return v
}

// jobView is the wire form of a job's status.
type jobView struct {
	APIVersion string `json:"api_version"`
	ID         string `json:"id"`
	Kind       string `json:"kind"`
	Status     string `json:"status"`
	CacheKey   string `json:"cache_key"`
	// Cache mirrors the X-Cache disposition ("miss": jobs are fresh runs).
	Cache string `json:"cache,omitempty"`
	// Engine echoes the campaign's normalized engine tier ("sim",
	// "analytic", or "auto"); empty for kinds without an engine choice.
	Engine string `json:"engine,omitempty"`
	// RequestID mirrors the X-Request-Id of the submitting request.
	RequestID string `json:"request_id,omitempty"`
	Error     string `json:"error,omitempty"`
	Created   string `json:"created"`
	Started   string `json:"started,omitempty"`
	Finished  string `json:"finished,omitempty"`
	// Cell progress: total cells in the campaign's plan, completed so
	// far, and how many of those were satisfied from the cell cache.
	// All zero for jobs run through a custom Runner.
	CellsTotal     int `json:"cells_total"`
	CellsDone      int `json:"cells_done"`
	CellsFromCache int `json:"cells_from_cache"`
	CellsFromDisk  int `json:"cells_from_disk"`
	// CellsRemote counts cells executed by fleet workers, and Workers
	// attributes them by advertised worker URL; zero/absent outside
	// coordinator mode.
	CellsRemote int            `json:"cells_remote,omitempty"`
	Workers     map[string]int `json:"workers,omitempty"`
	// BudgetExhausted reports that the campaign spent its entire fleet
	// re-dispatch budget (-hedge-budget); later cells ran locally.
	BudgetExhausted bool `json:"budget_exhausted,omitempty"`
	ResultURL   string         `json:"result_url,omitempty"`
	EventsURL   string         `json:"events_url,omitempty"`
}

// Server is the affinityd serving core, independent of any listener so
// tests can drive it through httptest or a real socket alike.
type Server struct {
	cfg     Config
	cache   *resultcache.Cache
	metrics *metrics
	mux     *http.ServeMux
	// useCells selects the cell execution path; false when a custom
	// Runner makes the campaign opaque to the server.
	useCells bool
	// cellCache holds per-cell partial results, keyed by cell content
	// address.
	cellCache *resultcache.Cache
	// store is the disk tier under both caches; nil when persistence is
	// disabled.
	store *diskstore.Store
	// fleet is the coordinator-mode dispatcher; nil when this daemon
	// executes every cell itself.
	fleet *fleet.Coordinator
	// fleetWorker is the worker-mode execute endpoint; nil unless this
	// daemon joined a coordinator.
	fleetWorker *fleet.Worker

	mu       sync.Mutex
	draining bool
	queue    chan *job
	jobs     map[string]*job // by id, all ever admitted
	inflight map[string]*job // by cache key, queued or running only
	jobSeq   uint64
	reqSeq   atomic.Uint64 // X-Request-Id source

	baseCtx    context.Context
	baseCancel context.CancelFunc
	workerWG   sync.WaitGroup
	janitorWG  sync.WaitGroup
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	// Cell execution requires the real registry: a custom Runner is
	// opaque, so its jobs run monolithically. Decided before withDefaults
	// installs the registry runner.
	useCells := cfg.Runner == nil
	cfg = cfg.withDefaults()
	cellCache := cfg.CellCache
	if cellCache == nil {
		cellCache = resultcache.New(cfg.CacheBytes)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:         cfg,
		cache:       resultcache.New(cfg.CacheBytes),
		useCells:    useCells,
		cellCache:   cellCache,
		store:       cfg.Store,
		fleet:       cfg.Fleet,
		fleetWorker: cfg.FleetWorker,
		queue:       make(chan *job, cfg.QueueDepth),
		jobs:        make(map[string]*job),
		inflight:    make(map[string]*job),
		baseCtx:     ctx,
		baseCancel:  cancel,
	}
	s.metrics = newMetrics(s)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/campaigns", s.handleListCampaigns)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stats", s.handleJobStats)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /v1/workers", s.handleListWorkers)
	s.mux.HandleFunc("GET /v1/workers/{id}", s.handleWorkerDetail)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.metrics.serve)
	if s.fleet != nil {
		s.fleet.RegisterHandlers(s.mux)
	}
	if s.fleetWorker != nil {
		s.fleetWorker.RegisterHandlers(s.mux)
	}
	if cfg.EnablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	for i := 0; i < cfg.JobWorkers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	s.janitorWG.Add(1)
	go s.janitor()
	return s
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Cache exposes the result cache (the smoke gate reads its counters).
func (s *Server) Cache() *resultcache.Cache { return s.cache }

// CellCache exposes the per-cell result cache.
func (s *Server) CellCache() *resultcache.Cache { return s.cellCache }

// campaignRequest is the POST /v1/campaigns body.
type campaignRequest struct {
	Kind   string                     `json:"kind"`
	Params experiments.CampaignParams `json:"params"`
	// Async requests 202 + a job id for polling instead of blocking for
	// the result body.
	Async bool `json:"async,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	rid := fmt.Sprintf("r%08d", s.reqSeq.Add(1))
	w.Header().Set("X-Request-Id", rid)
	// A request landing between SIGTERM and the listener closing must get
	// a prompt 503 telling the client to drop the connection — not parse
	// work, not a queue slot, and never a wait on a job that shutdown is
	// about to cancel.
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		w.Header().Set("Connection", "close")
		writeAPIError(w, http.StatusServiceUnavailable, "draining", "", "server is shutting down")
		return
	}
	var req campaignRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeAPIError(w, http.StatusBadRequest, "invalid_request", "", fmt.Sprintf("bad request body: %v", err))
		return
	}
	camp, ok := experiments.CampaignByKind(req.Kind)
	if !ok {
		writeAPIError(w, http.StatusBadRequest, "unknown_kind", "kind", fmt.Sprintf("unknown campaign kind %q", req.Kind))
		return
	}
	if req.Params.Seed == 0 && s.cfg.DefaultSeed != 0 {
		req.Params.Seed = s.cfg.DefaultSeed
	}
	params, err := camp.Normalize(req.Params)
	if err != nil {
		apiParamError(w, err)
		return
	}
	if params.Workers == 0 {
		params.Workers = s.cfg.CellWorkers
	}
	key, err := cacheKey(req.Kind, params)
	if err != nil {
		writeAPIError(w, http.StatusInternalServerError, "internal", "", err.Error())
		return
	}
	s.metrics.submitted.Add(1)

	// Memoized result: serve the stored bytes verbatim.
	lookupStart := time.Now()
	body, hit := s.cache.Get(key)
	span(&s.metrics.spanCacheLookup, time.Since(lookupStart))
	if hit {
		writeBody(w, body, "hit", key)
		return
	}
	// Second tier: the persistent store. A hit is CRC-verified bytes an
	// earlier process paid for; promote it into the LRU tier (with its
	// cost metadata) and serve it — indistinguishable from a fresh run.
	if s.store != nil {
		storeStart := time.Now()
		diskBody, costNs, ok := s.store.Get(key)
		span(&s.metrics.spanStoreLookup, time.Since(storeStart))
		if ok {
			s.cache.PutCost(key, diskBody, costNs)
			writeBody(w, diskBody, "disk", key)
			return
		}
	}

	admitStart := time.Now()
	j, admitted, err := s.admit(req.Kind, key, rid, params)
	span(&s.metrics.spanAdmit, time.Since(admitStart))
	if err != nil {
		switch err {
		case errDraining:
			w.Header().Set("Connection", "close")
			writeAPIError(w, http.StatusServiceUnavailable, "draining", "", "server is shutting down")
		case errQueueFull:
			s.metrics.rejected.Add(1)
			// Ceil to whole seconds, floor 1: a sub-second hint used to
			// round to "Retry-After: 0", which many clients treat as
			// "retry immediately" — exactly wrong under overload.
			ra := int((s.cfg.RetryAfter + time.Second - 1) / time.Second)
			if ra < 1 {
				ra = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(ra))
			writeAPIError(w, http.StatusTooManyRequests, "queue_full", "", "campaign queue is full; retry later")
		default:
			writeAPIError(w, http.StatusInternalServerError, "internal", "", err.Error())
		}
		return
	}
	if !admitted {
		s.metrics.deduped.Add(1)
	}

	// admit registered this request as a waiter while holding s.mu.
	if req.Async {
		// A polling client's waiter is permanent: abandoning the poll
		// URL must not cancel the job under other clients.
		writeJSON(w, http.StatusAccepted, j.view())
		return
	}

	defer func() {
		// Detach under s.mu — the lock admit attaches under — so the
		// count reaching zero and the cancellation are one atomic step
		// no concurrent attach can split.
		s.mu.Lock()
		if j.waiters.Add(-1) == 0 {
			// Last interested client is gone; stop simulating.
			select {
			case <-j.done:
			default:
				j.cancel()
			}
		}
		s.mu.Unlock()
	}()
	select {
	case <-j.done:
	case <-r.Context().Done():
		return
	}
	j.mu.Lock()
	st, body, errMsg := j.status, j.body, j.errMsg
	j.mu.Unlock()
	switch st {
	case statusDone:
		writeBody(w, body, "miss", key)
	case statusCanceled:
		writeAPIError(w, http.StatusConflict, "job_canceled", "", "job canceled: "+errMsg)
	default:
		writeAPIError(w, http.StatusInternalServerError, "job_failed", "", errMsg)
	}
}

// cacheKey derives the content address of one normalized request.
// Workers is zeroed first: results are bitwise identical at any worker
// count, so concurrency must not fork the cache.
func cacheKey(kind string, params experiments.CampaignParams) (string, error) {
	params.Workers = 0
	canon, err := report.CanonicalJSON(params)
	if err != nil {
		return "", err
	}
	return resultcache.Key(kind, canon, version.Engine), nil
}

var (
	errDraining  = fmt.Errorf("service: draining")
	errQueueFull = fmt.Errorf("service: queue full")
)

// admit returns the in-flight job for key (singleflight) or enqueues a
// new one, registering the caller as a waiter while s.mu is held — the
// same lock detach takes — so an attach can never interleave with the
// previous last waiter's count-reaches-zero cancellation. admitted
// reports whether a new job was created.
func (s *Server) admit(kind, key, requestID string, params experiments.CampaignParams) (*job, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, false, errDraining
	}
	s.reapLocked(time.Now())
	if j, ok := s.inflight[key]; ok {
		// A cancelled job (abandoned by its last waiter, DELETEd, or
		// caught at shutdown) can occupy the singleflight slot until a
		// worker reaps it. Attaching would surface someone else's 409;
		// release the slot and admit a fresh run instead. Done or failed
		// jobs remain attachable — their result is ready.
		j.mu.Lock()
		st := j.status
		j.mu.Unlock()
		dying := st == statusCanceled ||
			((st == statusQueued || st == statusRunning) && j.ctx.Err() != nil)
		if !dying {
			j.waiters.Add(1)
			return j, false, nil
		}
		delete(s.inflight, key)
	}
	s.jobSeq++
	j := &job{
		id:        fmt.Sprintf("j%08d", s.jobSeq),
		kind:      kind,
		key:       key,
		params:    params,
		requestID: requestID,
		cells:     newCellTracker(),
		stats:     obs.NewCampaignStats(),
		status:    statusQueued,
		created:   time.Now(),
		done:      make(chan struct{}),
	}
	j.ctx, j.cancel = context.WithCancel(s.baseCtx)
	select {
	case s.queue <- j:
	default:
		j.cancel()
		return nil, false, errQueueFull
	}
	j.waiters.Add(1)
	s.jobs[j.id] = j
	s.inflight[key] = j
	return j, true, nil
}

// reapLocked evicts terminal jobs whose retention expired: anything
// finished more than JobTTL ago, plus the oldest-finished jobs beyond the
// MaxJobs cap. Queued and running jobs are never touched. Evicted ids
// return 404 afterwards, but the result itself stays in the
// content-addressed cache — resubmitting the identical request hits.
// Callers hold s.mu.
func (s *Server) reapLocked(now time.Time) {
	type terminal struct {
		id       string
		finished time.Time
	}
	var term []terminal
	for id, j := range s.jobs {
		j.mu.Lock()
		fin := j.finished
		j.mu.Unlock()
		if fin.IsZero() {
			continue // not terminal yet
		}
		if now.Sub(fin) > s.cfg.JobTTL {
			delete(s.jobs, id)
			s.metrics.reaped.Add(1)
			continue
		}
		term = append(term, terminal{id, fin})
	}
	if excess := len(term) - s.cfg.MaxJobs; excess > 0 {
		sort.Slice(term, func(i, k int) bool { return term[i].finished.Before(term[k].finished) })
		for _, t := range term[:excess] {
			delete(s.jobs, t.id)
			s.metrics.reaped.Add(1)
		}
	}
}

// janitor periodically reaps expired terminal jobs so an idle daemon's
// retention window still closes; exits when baseCtx is cancelled at
// shutdown.
func (s *Server) janitor() {
	defer s.janitorWG.Done()
	interval := s.cfg.JobTTL / 4
	if interval > 30*time.Second {
		interval = 30 * time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-tick.C:
			s.mu.Lock()
			s.reapLocked(time.Now())
			s.mu.Unlock()
		}
	}
}

// finish records a job's terminal state and clears its singleflight slot.
func (s *Server) finish(j *job, st jobStatus, body []byte, errMsg string) {
	if !j.setTerminal(st, body, errMsg, time.Now()) {
		return
	}
	j.cancel() // release the context's resources
	s.mu.Lock()
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	s.mu.Unlock()
	switch st {
	case statusDone:
		s.metrics.completed.Add(1)
	case statusFailed:
		s.metrics.failed.Add(1)
	case statusCanceled:
		s.metrics.canceled.Add(1)
	}
}

// worker executes queued jobs until the queue closes at shutdown.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for j := range s.queue {
		// The queued→running transition is guarded: DELETE /v1/jobs/{id}
		// can finish a queued job concurrently with this dequeue, and
		// overwriting that terminal state would make the worker's own
		// finish close j.done a second time.
		j.mu.Lock()
		if j.status != statusQueued {
			j.mu.Unlock()
			continue
		}
		if j.ctx.Err() != nil {
			j.mu.Unlock()
			s.finish(j, statusCanceled, nil, "canceled while queued")
			continue
		}
		j.status = statusRunning
		j.started = time.Now()
		j.mu.Unlock()
		span(&s.metrics.spanQueueWait, j.started.Sub(j.created))
		s.metrics.inflight.Add(1)
		// The registry path runs the campaign cell by cell through the
		// cell cache; a custom Runner is opaque and runs monolithically.
		// Either way the collector rides the context, not the params: the
		// campaign attaches it to its run options, so stats flow out of
		// band and the result bytes stay identical to an uninstrumented
		// run.
		exec := func() ([]byte, error) {
			if s.useCells {
				return s.runCells(j)
			}
			res, err := s.cfg.Runner(obs.WithCollector(j.ctx, j.stats), j.kind, j.params)
			if err != nil {
				return nil, err
			}
			body, err := report.CanonicalJSON(res)
			if err != nil {
				return nil, fmt.Errorf("encode result: %s", err)
			}
			return body, nil
		}
		body, err := exec()
		elapsed := time.Since(j.started)
		span(&s.metrics.spanExec, elapsed)
		s.metrics.inflight.Add(-1)
		switch {
		case j.ctx.Err() != nil:
			s.finish(j, statusCanceled, nil, j.ctx.Err().Error())
		case err != nil:
			s.finish(j, statusFailed, nil, err.Error())
		default:
			// The campaign's wall time is its cost metadata: both the
			// memory tier's Stats and the disk tier's bytes-per-simulated-
			// second eviction weigh the body by what it took to build. The
			// store Put is write-behind and never blocks this worker.
			s.cache.PutCost(j.key, body, uint64(elapsed))
			if s.store != nil {
				s.store.Put(j.key, body, uint64(elapsed))
			}
			s.metrics.observe(j.kind, elapsed)
			s.metrics.foldSim(j.stats)
			s.finish(j, statusDone, body, "")
			if s.cfg.StatsWriter != nil {
				t := experiments.StatsReport(j.stats)
				t.Title = fmt.Sprintf("%s — job %s (%s)", t.Title, j.id, j.kind)
				t.Write(s.cfg.StatsWriter)
			}
		}
	}
}

func (s *Server) handleListCampaigns(w http.ResponseWriter, r *http.Request) {
	type kindView struct {
		Kind        string                  `json:"kind"`
		Description string                  `json:"description"`
		Params      []experiments.ParamSpec `json:"params"`
	}
	var out []kindView
	for _, c := range experiments.Campaigns() {
		out = append(out, kindView{Kind: c.Kind, Description: c.Description, Params: c.ParamSchema()})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"api_version":    apiVersion,
		"campaigns":      out,
		"engine_version": version.Engine,
	})
}

// validJobStatus reports whether st names a job lifecycle state.
func validJobStatus(st string) bool {
	switch jobStatus(st) {
	case statusQueued, statusRunning, statusDone, statusFailed, statusCanceled:
		return true
	}
	return false
}

// parseJobSeq extracts the numeric admission sequence from a job id
// ("j" + decimal digits, zero-padded for display). Pagination compares
// sequences numerically, never as strings: a lexical keyset silently
// breaks the moment the sequence outgrows its padding ("j100000000"
// sorts before "j99999999"), skipping or replaying entries.
func parseJobSeq(id string) (uint64, bool) {
	if len(id) < 2 || id[0] != 'j' {
		return 0, false
	}
	seq, err := strconv.ParseUint(id[1:], 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// handleListJobs lists retained jobs with optional filters and keyset
// pagination. Ordering is stable and documented: ascending admission
// sequence (job ids are "j" + a zero-padded sequence number), so the
// order is admission order. page_token is the last id of the previous
// page; a page is full when limit (default 100, max 1000) views
// accumulate, and next_page_token is present iff more matching jobs
// remain.
//
// Token semantics under reaping: the listing resumes strictly after the
// token's admission position, whether or not that job still exists — a
// token naming a job the janitor has already evicted is still a valid
// position, so pagination never skips or replays survivors. A token
// that is not a job id at all (malformed) is a 400 invalid_param: it
// cannot denote a position.
func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	status := q.Get("status")
	if status != "" && !validJobStatus(status) {
		writeAPIError(w, http.StatusBadRequest, "invalid_param", "status",
			fmt.Sprintf("unknown status %q (want queued|running|done|failed|canceled)", status))
		return
	}
	kind := q.Get("kind")
	if kind != "" {
		if _, ok := experiments.CampaignByKind(kind); !ok {
			writeAPIError(w, http.StatusBadRequest, "invalid_param", "kind",
				fmt.Sprintf("unknown campaign kind %q", kind))
			return
		}
	}
	limit := 100
	if ls := q.Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 1 || n > 1000 {
			writeAPIError(w, http.StatusBadRequest, "invalid_param", "limit",
				fmt.Sprintf("limit %q outside [1,1000]", ls))
			return
		}
		limit = n
	}
	afterSeq := uint64(0)
	if token := q.Get("page_token"); token != "" {
		seq, ok := parseJobSeq(token)
		if !ok {
			writeAPIError(w, http.StatusBadRequest, "invalid_param", "page_token",
				fmt.Sprintf("malformed page token %q (want a job id)", token))
			return
		}
		afterSeq = seq
	}

	s.mu.Lock()
	views := make([]jobView, 0, len(s.jobs))
	seqs := make(map[string]uint64, len(s.jobs))
	for id, j := range s.jobs {
		if seq, ok := parseJobSeq(id); ok {
			seqs[id] = seq
			views = append(views, j.view())
		}
	}
	s.mu.Unlock()
	sort.Slice(views, func(i, k int) bool { return seqs[views[i].ID] < seqs[views[k].ID] })

	page := make([]jobView, 0, limit)
	next := ""
	for _, v := range views {
		if seqs[v.ID] <= afterSeq {
			continue
		}
		if status != "" && v.Status != status {
			continue
		}
		if kind != "" && v.Kind != kind {
			continue
		}
		if len(page) == limit {
			next = page[limit-1].ID
			break
		}
		page = append(page, v)
	}
	resp := map[string]any{"api_version": apiVersion, "jobs": page}
	if next != "" {
		resp["next_page_token"] = next
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) jobByID(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		writeAPIError(w, http.StatusNotFound, "not_found", "", "no such job")
	}
	return j
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.jobByID(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.view())
	}
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	st, body, errMsg := j.status, j.body, j.errMsg
	j.mu.Unlock()
	switch st {
	case statusDone:
		writeBody(w, body, "job", j.key)
	case statusFailed:
		writeAPIError(w, http.StatusInternalServerError, "job_failed", "", errMsg)
	case statusCanceled:
		writeAPIError(w, http.StatusConflict, "job_canceled", "", "job canceled: "+errMsg)
	default:
		writeAPIError(w, http.StatusConflict, "job_not_finished", "", "job not finished: "+string(st))
	}
}

// handleJobStats serves a job's accumulated simulation counters — the
// engine-side decomposition (reallocations, P^A/P^NA charges, penalty
// time) that the result body deliberately omits so it stays bitwise
// identical to an uninstrumented run. Available at any lifecycle stage;
// a running job reports its progress so far.
func (s *Server) handleJobStats(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	st := j.status
	j.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"api_version": apiVersion,
		"id":          j.id,
		"kind":        j.kind,
		"status":      string(st),
		"stats":       j.stats.Snapshot(),
	})
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(w, r)
	if j == nil {
		return
	}
	j.cancel()
	// A queued job can be finished synchronously; a running one will be
	// reaped by its worker when the campaign observes the cancellation.
	j.mu.Lock()
	queued := j.status == statusQueued
	j.mu.Unlock()
	if queued {
		s.finish(j, statusCanceled, nil, "canceled by request")
	}
	writeJSON(w, http.StatusAccepted, j.view())
}

// validWorkerID reports whether id has the shape WorkerID mints: "w"
// followed by 12 hex digits.
func validWorkerID(id string) bool {
	if len(id) != 13 || id[0] != 'w' {
		return false
	}
	for i := 1; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// handleListWorkers surfaces fleet state: the registered (unexpired)
// workers when this daemon is a coordinator, or an empty listing with
// coordinator=false when it is not — the endpoint exists either way so
// clients can probe a daemon's role. The listing follows the same
// conventions as GET /v1/jobs: a ?status= filter (idle|busy, by
// in-flight count), limit (default 100, max 1000), and keyset
// pagination ordered by worker id with page_token = the last id of the
// previous page. A token that is not a worker id is 400 invalid_param;
// a token naming a worker that has since expired is still a valid
// position.
func (s *Server) handleListWorkers(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	status := q.Get("status")
	if status != "" && status != "idle" && status != "busy" {
		writeAPIError(w, http.StatusBadRequest, "invalid_param", "status",
			fmt.Sprintf("unknown status %q (want idle|busy)", status))
		return
	}
	limit := 100
	if ls := q.Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 1 || n > 1000 {
			writeAPIError(w, http.StatusBadRequest, "invalid_param", "limit",
				fmt.Sprintf("limit %q outside [1,1000]", ls))
			return
		}
		limit = n
	}
	after := ""
	if token := q.Get("page_token"); token != "" {
		if !validWorkerID(token) {
			writeAPIError(w, http.StatusBadRequest, "invalid_param", "page_token",
				fmt.Sprintf("malformed page token %q (want a worker id)", token))
			return
		}
		after = token
	}
	if s.fleet == nil {
		writeJSON(w, http.StatusOK, map[string]any{
			"api_version": apiVersion,
			"coordinator": false,
			"workers":     []fleet.WorkerView{},
		})
		return
	}
	all := s.fleet.Workers() // sorted by id — the pagination keyset
	page := make([]fleet.WorkerView, 0, min(limit, len(all)))
	next := ""
	for _, v := range all {
		if v.ID <= after {
			continue
		}
		if status == "idle" && v.InFlight != 0 {
			continue
		}
		if status == "busy" && v.InFlight == 0 {
			continue
		}
		if len(page) == limit {
			next = page[limit-1].ID
			break
		}
		page = append(page, v)
	}
	resp := map[string]any{
		"api_version": apiVersion,
		"coordinator": true,
		"workers":     page,
	}
	if next != "" {
		resp["next_page_token"] = next
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleWorkerDetail serves one worker's placement signals — the RTT
// histogram summary and failure penalty behind the scorer — alongside
// its listing row. 404s outside coordinator mode (a non-coordinator has
// no workers) and for expired or unknown ids.
func (s *Server) handleWorkerDetail(w http.ResponseWriter, r *http.Request) {
	if s.fleet == nil {
		writeAPIError(w, http.StatusNotFound, "not_found", "", "not a fleet coordinator")
		return
	}
	d, ok := s.fleet.WorkerByID(r.PathValue("id"))
	if !ok {
		writeAPIError(w, http.StatusNotFound, "not_found", "", "no such worker (expired workers drop from the registry)")
		return
	}
	writeJSON(w, http.StatusOK, d)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	status := "ok"
	code := http.StatusOK
	if draining {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{
		"status":         status,
		"engine_version": version.Engine,
		"git_sha":        version.GitSHA(),
	})
}

// Shutdown gracefully stops the server core: new submissions are refused,
// queued jobs are cancelled, and in-flight jobs drain to completion. If
// ctx expires first, in-flight jobs are cancelled too and ctx's error is
// returned. The HTTP listener (if any) must be shut down by the caller —
// typically http.Server.Shutdown after this returns, so final status
// polls still get answers while the core drains.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	var queued []*job
	if !s.draining {
		s.draining = true
		// Pull everything still queued off the channel, then close it to
		// release the workers once in-flight jobs finish.
	drain:
		for {
			select {
			case j := <-s.queue:
				queued = append(queued, j)
			default:
				break drain
			}
		}
		close(s.queue)
	}
	s.mu.Unlock()
	for _, j := range queued {
		j.cancel()
		s.finish(j, statusCanceled, nil, "canceled at shutdown")
	}

	drained := make(chan struct{})
	go func() {
		s.workerWG.Wait()
		close(drained)
	}()
	stop := func() {
		s.baseCancel()
		s.janitorWG.Wait()
	}
	select {
	case <-drained:
		stop()
		// The drain contract includes durability: every result a finished
		// job acknowledged into the store's write-behind queue is flushed
		// and the active segment fsynced before Shutdown returns, so a
		// SIGTERM never loses completed work.
		return s.syncStore(ctx)
	case <-ctx.Done():
		stop()
		<-drained
		s.syncStore(ctx) // best effort under the expired deadline
		return ctx.Err()
	}
}

// syncStore flushes the persistent tier's write-behind queue, bounded by
// ctx. A nil store (persistence disabled) is a no-op.
func (s *Server) syncStore(ctx context.Context) error {
	if s.store == nil {
		return nil
	}
	return s.store.Sync(ctx)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeBody serves a campaign result body. source labels how it was
// obtained: "hit" (result cache), "disk" (persistent store, promoted on
// the way out), "miss" (freshly simulated), "job" (polled result
// endpoint).
func writeBody(w http.ResponseWriter, body []byte, source, key string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", source)
	w.Header().Set("X-Cache-Key", key)
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}
