// Package profiling wires the standard -cpuprofile/-memprofile CLI flags to
// runtime/pprof, so every command's hot path can be inspected with
// `go tool pprof` without ad-hoc scaffolding.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (when non-empty) and arranges for a
// heap profile to be written to memPath (when non-empty). The returned stop
// function finishes both profiles; defer it from main so profiles are valid
// on every exit path. Either path may be empty, in which case that profile
// is skipped; Start("", "") returns a no-op stop.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
		cpuFile = f
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize final live-heap state
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		return nil
	}, nil
}
