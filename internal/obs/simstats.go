package obs

import (
	"context"
	"sort"
	"sync"
)

// SimStats is the per-run decomposition of simulator activity in the
// terms of the paper's Figure 1: how much work was done, how much was
// wasted spinning, how many reallocations happened (split by whether
// the task kept affinity for its last processor), and how much time the
// cache-reload transient cost. All fields are plain integers except
// InvalLines (a deterministic float folded from the cache model), so
// Merge is exact and order-independent for any fixed multiset of runs.
//
// The scheduler fills the dispatch/penalty fields; the cache model
// fills Plans/Commits/Flushes/InvalLines. Only protocol-invariant
// quantities are counted: the exact model's fast (journal/rollback) and
// naive (clone-and-replay) protocols produce identical SimStats for the
// same run, so differential tests can compare whole Results.
type SimStats struct {
	Runs       uint64 `json:"runs"`        // simulation runs folded into this struct
	Events     uint64 `json:"events"`      // discrete events fired
	EventqPeak uint64 `json:"eventq_peak"` // max pending-event depth (Merge takes the max)

	Reallocations uint64 `json:"reallocations"` // dispatches that were not a same-task continuation
	Migrations    uint64 `json:"migrations"`    // reallocations onto a different processor than last time
	PACharges     uint64 `json:"pa_charges"`    // reallocations resuming on the last processor (P^A penalty)
	PNACharges    uint64 `json:"pna_charges"`   // reallocations with no useful footprint left (P^NA penalty)
	PenaltyNs     int64  `json:"penalty_ns"`    // cache-reload transient: miss stall of the first segment after each reallocation

	WorkNs   int64 `json:"work_ns"`   // useful compute
	WasteNs  int64 `json:"waste_ns"`  // synchronization spinning
	SwitchNs int64 `json:"switch_ns"` // context-switch overhead charged by the engine
	MissNs   int64 `json:"miss_ns"`   // total miss stall (includes the reload transient)

	Plans      uint64  `json:"plans"`       // cache-model Plan calls (one per executed segment)
	Commits    uint64  `json:"commits"`     // cache-model Commit calls
	Flushes    uint64  `json:"flushes"`     // coherency invalidation sweeps / cache flush events
	InvalLines float64 `json:"inval_lines"` // lines invalidated by coherency writes
}

// Merge folds o into s. Counters add; EventqPeak takes the max (it is a
// high-water mark, not a total).
func (s *SimStats) Merge(o SimStats) {
	s.Runs += o.Runs
	s.Events += o.Events
	if o.EventqPeak > s.EventqPeak {
		s.EventqPeak = o.EventqPeak
	}
	s.Reallocations += o.Reallocations
	s.Migrations += o.Migrations
	s.PACharges += o.PACharges
	s.PNACharges += o.PNACharges
	s.PenaltyNs += o.PenaltyNs
	s.WorkNs += o.WorkNs
	s.WasteNs += o.WasteNs
	s.SwitchNs += o.SwitchNs
	s.MissNs += o.MissNs
	s.Plans += o.Plans
	s.Commits += o.Commits
	s.Flushes += o.Flushes
	s.InvalLines += o.InvalLines
}

// CampaignStats accumulates SimStats across the cells of one campaign
// (or several campaigns sharing a collector), keyed by policy (or
// driver) label. It is safe for concurrent use; campaign drivers fold
// cells in deterministic grid order after the parallel phase completes,
// so the totals are identical at any worker count.
type CampaignStats struct {
	mu        sync.Mutex
	cells     uint64
	total     SimStats
	perPolicy map[string]*SimStats
}

// NewCampaignStats returns an empty collector.
func NewCampaignStats() *CampaignStats {
	return &CampaignStats{perPolicy: make(map[string]*SimStats)}
}

// Add folds one cell's stats under the given policy label.
func (c *CampaignStats) Add(policy string, s SimStats) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.cells++
	c.total.Merge(s)
	p := c.perPolicy[policy]
	if p == nil {
		p = &SimStats{}
		c.perPolicy[policy] = p
	}
	p.Merge(s)
	c.mu.Unlock()
}

// CampaignSnapshot is a point-in-time copy of a CampaignStats.
// PolicyOrder lists PerPolicy's keys sorted, so renderers iterate
// deterministically.
type CampaignSnapshot struct {
	Cells       uint64              `json:"cells"`
	Total       SimStats            `json:"total"`
	PerPolicy   map[string]SimStats `json:"per_policy"`
	PolicyOrder []string            `json:"-"`
}

// Snapshot copies the collector's current state. Safe to call while
// cells are still being folded in.
func (c *CampaignStats) Snapshot() CampaignSnapshot {
	snap := CampaignSnapshot{PerPolicy: map[string]SimStats{}}
	if c == nil {
		return snap
	}
	c.mu.Lock()
	snap.Cells = c.cells
	snap.Total = c.total
	for k, v := range c.perPolicy {
		snap.PerPolicy[k] = *v
		snap.PolicyOrder = append(snap.PolicyOrder, k)
	}
	c.mu.Unlock()
	sort.Strings(snap.PolicyOrder)
	return snap
}

type collectorKey struct{}

// WithCollector returns a context carrying the collector; campaign
// entry points (the registry's run functions) retrieve it with
// CollectorFrom and attach it to the run options. A nil collector is
// legal and yields a context with no collector.
func WithCollector(ctx context.Context, c *CampaignStats) context.Context {
	if c == nil {
		return ctx
	}
	return context.WithValue(ctx, collectorKey{}, c)
}

// CollectorFrom extracts the collector from ctx, or nil if none.
func CollectorFrom(ctx context.Context) *CampaignStats {
	c, _ := ctx.Value(collectorKey{}).(*CampaignStats)
	return c
}
