package obs

// CellStats counts the serving layer's cell-level execution: how many of
// a campaign's cells were satisfied from the per-cell result cache, how
// many had to execute, and how long executions and merges took. Like the
// other obs types it is written lock-free on the hot path and rendered
// at /metrics.
type CellStats struct {
	// Hits counts cells satisfied from the cell cache without executing.
	Hits Counter
	// DiskHits counts cells satisfied from the persistent disk tier
	// (internal/diskstore) after missing the in-memory cache; the body is
	// promoted into the memory tier as a side effect. Disk hits are not
	// Misses: the invariant Misses == execution attempts holds with or
	// without a disk tier.
	DiskHits Counter
	// Misses counts cell lookups that found nothing in any tier; each
	// miss is followed by an execution attempt.
	Misses Counter
	// Executions counts cells executed and encoded to completion
	// (Misses minus cells aborted by cancellation or error).
	Executions Counter
	// ExecNs is the per-cell execution wall time in nanoseconds.
	ExecNs Histogram
	// MergeNs is the per-campaign merge wall time in nanoseconds.
	MergeNs Histogram

	// EngineSim and EngineAnalytic split Executions by engine tier: cells
	// run through the discrete-event simulator (including the kinds with
	// no engine choice, which always simulate) versus the analytic
	// estimator. The paired histograms record each tier's execution wall
	// time, so /metrics exposes the fast tier's measured speedup directly.
	EngineSim        Counter
	EngineAnalytic   Counter
	EngineSimNs      Histogram
	EngineAnalyticNs Histogram
}
