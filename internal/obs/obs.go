// Package obs is a zero-dependency instrumentation layer: cheap atomic
// counters, log-bucketed latency histograms, and the per-run simulation
// statistics (SimStats / CampaignStats) threaded from the scheduling
// engine through the campaign drivers up to the affinityd daemon.
//
// Design constraints, in order:
//
//  1. Hot-path cost near zero. Counter is a bare atomic add. Histogram
//     buckets by bit length (bits.Len64) — one atomic add into a fixed
//     array plus one atomic add into the running sum; no floating point,
//     no locks, no allocation on the observe path. Floats appear only at
//     render/snapshot time.
//  2. Determinism. SimStats is plain integer (and one float64 whose
//     value is itself deterministic) arithmetic, merged in a caller-
//     chosen order; identical runs fold to identical totals regardless
//     of worker count.
//  3. Zero dependencies. The package imports only the standard library
//     (and nothing heavyweight from it), so every layer — including
//     internal/parallel and internal/eventq peers — can use it freely.
package obs

import (
	"math/bits"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// HistogramBuckets is the number of histogram buckets: bucket i holds
// observations v with bits.Len64(v) == i, i.e. 2^(i-1) <= v < 2^i
// (bucket 0 holds exactly v == 0). The inclusive upper bound of bucket
// i is 2^i - 1.
const HistogramBuckets = 65

// Histogram is a lock-free latency/size histogram with power-of-two
// buckets. Observations are raw uint64 units (the caller picks the unit;
// the daemon uses nanoseconds). Bucketing is by bit length, so the
// observe path is two atomic adds and zero floating-point operations.
type Histogram struct {
	counts [HistogramBuckets]atomic.Uint64
	sum    atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.counts[bits.Len64(v)].Add(1)
	h.sum.Add(v)
}

// HistogramSnapshot is a point-in-time copy of a Histogram. Counts are
// per-bucket (not cumulative); Count is the total number of
// observations and Sum their total in raw units.
type HistogramSnapshot struct {
	Counts [HistogramBuckets]uint64
	Sum    uint64
	Count  uint64
}

// Snapshot copies the histogram's current state. Concurrent Observe
// calls may or may not be included; each observation is counted at most
// once per field, so Count and the bucket totals drift by at most the
// number of in-flight observers.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		s.Count += s.Counts[i]
	}
	s.Sum = h.sum.Load()
	return s
}

// BucketBound returns the inclusive upper bound of bucket i
// (2^i - 1; bucket 0 is exactly zero, the last bucket is unbounded).
func BucketBound(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(i) - 1
}
