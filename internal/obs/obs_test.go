package obs

import (
	"context"
	"math/bits"
	"reflect"
	"sync"
	"testing"
)

func TestHistogramBucketing(t *testing.T) {
	var h Histogram
	cases := []uint64{0, 1, 2, 3, 4, 1023, 1024, 1 << 40, ^uint64(0)}
	for _, v := range cases {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != uint64(len(cases)) {
		t.Fatalf("Count = %d, want %d", s.Count, len(cases))
	}
	var wantSum uint64
	for _, v := range cases {
		wantSum += v
		i := bits.Len64(v)
		if s.Counts[i] == 0 {
			t.Errorf("value %d landed outside bucket %d", v, i)
		}
		if v > BucketBound(i) {
			t.Errorf("value %d exceeds BucketBound(%d) = %d", v, i, BucketBound(i))
		}
		if i > 0 && v <= BucketBound(i-1) {
			t.Errorf("value %d should be in an earlier bucket than %d", v, i)
		}
	}
	if s.Sum != wantSum {
		t.Fatalf("Sum = %d, want %d", s.Sum, wantSum)
	}
	if got := s.Counts[0]; got != 1 {
		t.Fatalf("zero bucket = %d, want 1", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const G, N = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < N; i++ {
				h.Observe(uint64(g*N + i))
			}
		}(g)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != G*N {
		t.Fatalf("Count = %d, want %d", s.Count, G*N)
	}
}

func TestSimStatsMerge(t *testing.T) {
	a := SimStats{Runs: 1, Events: 10, EventqPeak: 7, Reallocations: 3, PACharges: 2, PNACharges: 1, PenaltyNs: 50, InvalLines: 1.5}
	b := SimStats{Runs: 2, Events: 5, EventqPeak: 3, Reallocations: 1, Migrations: 1, PNACharges: 1, PenaltyNs: 25, InvalLines: 0.5}
	var m SimStats
	m.Merge(a)
	m.Merge(b)
	want := SimStats{Runs: 3, Events: 15, EventqPeak: 7, Reallocations: 4, Migrations: 1,
		PACharges: 2, PNACharges: 2, PenaltyNs: 75, InvalLines: 2}
	if m != want {
		t.Fatalf("Merge = %+v, want %+v", m, want)
	}
}

func TestCampaignStatsSnapshot(t *testing.T) {
	c := NewCampaignStats()
	c.Add("Equipartition", SimStats{Runs: 1, Reallocations: 4})
	c.Add("Affinity", SimStats{Runs: 1, Reallocations: 2})
	c.Add("Equipartition", SimStats{Runs: 1, Reallocations: 6})
	s := c.Snapshot()
	if s.Cells != 3 || s.Total.Reallocations != 12 {
		t.Fatalf("snapshot = %+v", s)
	}
	if !reflect.DeepEqual(s.PolicyOrder, []string{"Affinity", "Equipartition"}) {
		t.Fatalf("PolicyOrder = %v", s.PolicyOrder)
	}
	if s.PerPolicy["Equipartition"].Reallocations != 10 {
		t.Fatalf("per-policy = %+v", s.PerPolicy)
	}
	// nil receivers are inert so call sites need no guards.
	var nilC *CampaignStats
	nilC.Add("x", SimStats{Runs: 1})
	if got := nilC.Snapshot(); got.Cells != 0 {
		t.Fatalf("nil snapshot = %+v", got)
	}
}

func TestContextPlumbing(t *testing.T) {
	if got := CollectorFrom(context.Background()); got != nil {
		t.Fatalf("empty context yielded collector %p", got)
	}
	c := NewCampaignStats()
	ctx := WithCollector(context.Background(), c)
	if got := CollectorFrom(ctx); got != c {
		t.Fatalf("round trip failed: %p != %p", got, c)
	}
	if ctx2 := WithCollector(context.Background(), nil); CollectorFrom(ctx2) != nil {
		t.Fatal("nil collector should not be stored")
	}
}
