// Package simtime defines the simulated time base used throughout the
// simulator: a signed 64-bit count of nanoseconds since the start of a
// simulation run.
//
// All hardware and operating-system costs in the reproduced paper are
// expressed in microseconds or milliseconds (0.75 µs cache-line fill,
// 750 µs context-switch path length, 25/100/400 ms rescheduling quanta).
// A nanosecond integer base keeps every such constant exact and makes the
// discrete-event simulation fully deterministic: there is no floating-point
// accumulation anywhere on the simulated clock.
package simtime

import (
	"fmt"
	"time"
)

// Time is an instant on the simulated clock, in nanoseconds from the start
// of the run. The zero value is the beginning of simulated time.
type Time int64

// Duration is a span of simulated time in nanoseconds. It is a distinct
// type from time.Duration only to keep simulated and host clocks from being
// mixed accidentally; the representation is identical.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Never is a sentinel instant later than any reachable simulation time.
const Never Time = 1<<63 - 1

// Microseconds constructs a Duration from a count of microseconds.
func Microseconds(us int64) Duration { return Duration(us) * Microsecond }

// Milliseconds constructs a Duration from a count of milliseconds.
func Milliseconds(ms int64) Duration { return Duration(ms) * Millisecond }

// Seconds constructs a Duration from a floating-point count of seconds.
// It is intended for configuration values, not for hot-path arithmetic.
func Seconds(s float64) Duration { return Duration(s * float64(Second)) }

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the span from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// Micros returns t as a floating-point count of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// SecondsF returns t as a floating-point count of seconds.
func (t Time) SecondsF() float64 { return float64(t) / float64(Second) }

// String formats t with the standard library's duration formatting.
func (t Time) String() string { return time.Duration(t).String() }

// Micros returns d as a floating-point count of microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// Millis returns d as a floating-point count of milliseconds.
func (d Duration) Millis() float64 { return float64(d) / float64(Millisecond) }

// SecondsF returns d as a floating-point count of seconds.
func (d Duration) SecondsF() float64 { return float64(d) / float64(Second) }

// Scale returns d scaled by factor f, rounding to the nearest nanosecond.
// Scaling is used when modelling faster processors, which divide path-length
// costs by a speed factor.
func (d Duration) Scale(f float64) Duration {
	return Duration(float64(d)*f + 0.5)
}

// String formats d with the standard library's duration formatting.
func (d Duration) String() string { return time.Duration(d).String() }

// FromStd converts a host time.Duration into a simulated Duration.
func FromStd(d time.Duration) Duration { return Duration(d) }

// CheckNonNegative returns an error when d is negative. It is used to
// validate user-supplied configuration durations.
func CheckNonNegative(name string, d Duration) error {
	if d < 0 {
		return fmt.Errorf("simtime: %s must be non-negative, got %v", name, d)
	}
	return nil
}
