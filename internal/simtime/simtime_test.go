package simtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestUnitRatios(t *testing.T) {
	if Microsecond != 1000*Nanosecond {
		t.Errorf("Microsecond = %d ns, want 1000", Microsecond)
	}
	if Millisecond != 1000*Microsecond {
		t.Errorf("Millisecond = %d µs-equivalent, want 1000", Millisecond/Microsecond)
	}
	if Second != 1000*Millisecond {
		t.Errorf("Second = %d ms-equivalent, want 1000", Second/Millisecond)
	}
}

func TestConstructors(t *testing.T) {
	if got := Microseconds(750); got != 750*Microsecond {
		t.Errorf("Microseconds(750) = %v", got)
	}
	if got := Milliseconds(25); got != 25*Millisecond {
		t.Errorf("Milliseconds(25) = %v", got)
	}
	if got := Seconds(1.5); got != 1500*Millisecond {
		t.Errorf("Seconds(1.5) = %v", got)
	}
}

func TestAddSub(t *testing.T) {
	t0 := Time(0)
	t1 := t0.Add(Milliseconds(3))
	if t1 != Time(3*Millisecond) {
		t.Fatalf("Add: got %v", t1)
	}
	if d := t1.Sub(t0); d != Milliseconds(3) {
		t.Fatalf("Sub: got %v", d)
	}
	if !t0.Before(t1) || !t1.After(t0) {
		t.Fatal("Before/After disagree with Add")
	}
}

func TestConversions(t *testing.T) {
	d := Microseconds(2500)
	if d.Micros() != 2500 {
		t.Errorf("Micros = %v", d.Micros())
	}
	if d.Millis() != 2.5 {
		t.Errorf("Millis = %v", d.Millis())
	}
	if Seconds(2).SecondsF() != 2 {
		t.Errorf("SecondsF = %v", Seconds(2).SecondsF())
	}
	tm := Time(0).Add(Microseconds(1))
	if tm.Micros() != 1 {
		t.Errorf("Time.Micros = %v", tm.Micros())
	}
	if Time(Second).SecondsF() != 1 {
		t.Errorf("Time.SecondsF = %v", Time(Second).SecondsF())
	}
}

func TestScale(t *testing.T) {
	d := Microseconds(750)
	if got := d.Scale(0.5); got != Microseconds(375) {
		t.Errorf("Scale(0.5) = %v", got)
	}
	if got := d.Scale(2); got != Microseconds(1500) {
		t.Errorf("Scale(2) = %v", got)
	}
	// Rounding: 3 ns * (1/3) should round to 1 ns.
	if got := Duration(3).Scale(1.0 / 3.0); got != 1 {
		t.Errorf("Scale rounding: got %v", got)
	}
}

func TestNeverIsLaterThanEverything(t *testing.T) {
	if !Time(1 << 50).Before(Never) {
		t.Fatal("Never is not after a huge time")
	}
}

func TestString(t *testing.T) {
	if got := Milliseconds(25).String(); got != "25ms" {
		t.Errorf("Duration.String = %q", got)
	}
	if got := Time(25 * Millisecond).String(); got != "25ms" {
		t.Errorf("Time.String = %q", got)
	}
}

func TestFromStd(t *testing.T) {
	if got := FromStd(3 * time.Millisecond); got != Milliseconds(3) {
		t.Errorf("FromStd = %v", got)
	}
}

func TestCheckNonNegative(t *testing.T) {
	if err := CheckNonNegative("q", Milliseconds(1)); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
	if err := CheckNonNegative("q", Duration(-1)); err == nil {
		t.Error("want error for negative duration")
	}
}

// Property: Add and Sub are inverses for in-range values.
func TestQuickAddSubInverse(t *testing.T) {
	f := func(base int32, delta int32) bool {
		t0 := Time(base)
		d := Duration(delta)
		return t0.Add(d).Sub(t0) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ordering of times is consistent with integer ordering.
func TestQuickOrdering(t *testing.T) {
	f := func(a, b int64) bool {
		ta, tb := Time(a), Time(b)
		if a < b {
			return ta.Before(tb) && tb.After(ta)
		}
		return !ta.Before(tb) || a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
