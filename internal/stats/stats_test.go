package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestEmptySample(t *testing.T) {
	var s Sample
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Variance()) ||
		!math.IsNaN(s.Min()) || !math.IsNaN(s.Max()) ||
		!math.IsNaN(s.CI95()) || !math.IsNaN(s.Percentile(50)) {
		t.Error("empty sample statistics must be NaN")
	}
	if s.N() != 0 {
		t.Errorf("N = %d", s.N())
	}
}

func TestKnownValues(t *testing.T) {
	var s Sample
	s.AddAll(2, 4, 4, 4, 5, 5, 7, 9)
	if got := s.Mean(); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := s.Variance(); !almost(got, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, 32.0/7.0)
	}
	if got := s.Min(); got != 2 {
		t.Errorf("Min = %v", got)
	}
	if got := s.Max(); got != 9 {
		t.Errorf("Max = %v", got)
	}
}

func TestSingleObservation(t *testing.T) {
	var s Sample
	s.Add(3)
	if s.Mean() != 3 || s.Min() != 3 || s.Max() != 3 {
		t.Error("single-observation stats wrong")
	}
	if !math.IsNaN(s.Variance()) || !math.IsNaN(s.CI95()) {
		t.Error("variance/CI of single observation must be NaN")
	}
	if s.Percentile(50) != 3 {
		t.Errorf("Percentile(50) = %v", s.Percentile(50))
	}
}

func TestPercentile(t *testing.T) {
	var s Sample
	s.AddAll(10, 20, 30, 40, 50)
	cases := []struct{ p, want float64 }{
		{0, 10}, {25, 20}, {50, 30}, {75, 40}, {100, 50}, {12.5, 15},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); !almost(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(s.Percentile(-1)) || !math.IsNaN(s.Percentile(101)) {
		t.Error("out-of-range percentile must be NaN")
	}
}

func TestCI95KnownCase(t *testing.T) {
	// n=5, sd known: CI = t(4) * sd / sqrt(5) with t(4)=2.776.
	var s Sample
	s.AddAll(1, 2, 3, 4, 5)
	sd := s.StdDev()
	want := 2.776 * sd / math.Sqrt(5)
	if got := s.CI95(); !almost(got, want, 1e-9) {
		t.Errorf("CI95 = %v, want %v", got, want)
	}
}

func TestTCritical(t *testing.T) {
	if got := tCritical95(1); got != 12.706 {
		t.Errorf("t(1) = %v", got)
	}
	if got := tCritical95(30); got != 2.042 {
		t.Errorf("t(30) = %v", got)
	}
	if got := tCritical95(500); got != 1.960 {
		t.Errorf("t(500) = %v", got)
	}
	if !math.IsNaN(tCritical95(0)) {
		t.Error("t(0) must be NaN")
	}
}

func TestCI95RelOK(t *testing.T) {
	var tight Sample
	for i := 0; i < 100; i++ {
		tight.Add(100 + float64(i%2)) // values 100,101
	}
	if !tight.CI95RelOK(0.01) {
		t.Error("tight sample should satisfy 1% CI")
	}
	var loose Sample
	loose.AddAll(1, 200)
	if loose.CI95RelOK(0.01) {
		t.Error("loose sample should not satisfy 1% CI")
	}
	var zero Sample
	zero.AddAll(0, 0, 0)
	if zero.CI95RelOK(0.01) {
		t.Error("zero-mean sample cannot satisfy relative CI")
	}
}

func TestReplicate(t *testing.T) {
	s := Replicate(10, func(rep int) float64 { return float64(rep) })
	if s.N() != 10 || s.Mean() != 4.5 {
		t.Errorf("Replicate: n=%d mean=%v", s.N(), s.Mean())
	}
}

func TestReplicateToCIStopsEarly(t *testing.T) {
	// Constant observations: CI is zero from rep 2 on; should stop at minReps.
	calls := 0
	s := ReplicateToCI(5, 100, 0.01, func(rep int) float64 {
		calls++
		return 42
	})
	if calls != 5 || s.N() != 5 {
		t.Errorf("calls=%d n=%d, want 5", calls, s.N())
	}
}

func TestReplicateToCIHitsMax(t *testing.T) {
	rng := xrand.New(1, 1)
	s := ReplicateToCI(2, 20, 1e-9, func(rep int) float64 {
		return rng.Float64() * 1000
	})
	if s.N() != 20 {
		t.Errorf("n=%d, want max 20 for unreachable CI", s.N())
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(4, 2); got != 2 {
		t.Errorf("Ratio = %v", got)
	}
	if !math.IsNaN(Ratio(1, 0)) {
		t.Error("Ratio by zero must be NaN")
	}
}

func TestString(t *testing.T) {
	var s Sample
	s.AddAll(1, 2, 3)
	if got := s.String(); got == "" {
		t.Error("empty String")
	}
}

// Property: mean lies within [min, max]; variance is non-negative.
func TestQuickMeanBounds(t *testing.T) {
	f := func(raw []float64) bool {
		var s Sample
		ok := false
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				s.Add(x)
				ok = true
			}
		}
		if !ok {
			return true
		}
		m := s.Mean()
		if m < s.Min()-1e-6 || m > s.Max()+1e-6 {
			return false
		}
		if s.N() >= 2 && s.Variance() < -1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: adding a constant c to every observation shifts the mean by c
// and leaves the variance unchanged.
func TestQuickShiftInvariance(t *testing.T) {
	rng := xrand.New(3, 3)
	f := func(cRaw int16) bool {
		c := float64(cRaw)
		var a, b Sample
		for i := 0; i < 50; i++ {
			x := rng.Float64() * 100
			a.Add(x)
			b.Add(x + c)
		}
		return almost(b.Mean(), a.Mean()+c, 1e-6) &&
			almost(b.Variance(), a.Variance(), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
