// Package stats provides the summary statistics used by the experiment
// harness: sample means, variances, and Student-t confidence intervals.
//
// The paper reports point estimates whose 95% confidence intervals are
// within 1% of the mean, obtained by replication; Sample and the replication
// helpers in this package reproduce that methodology.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates observations and yields summary statistics. The zero
// value is an empty sample ready for use.
type Sample struct {
	xs []float64
}

// Add appends an observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// AddAll appends a batch of observations.
func (s *Sample) AddAll(xs ...float64) { s.xs = append(s.xs, xs...) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the sample mean, or NaN for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Variance returns the unbiased sample variance, or NaN for fewer than two
// observations.
func (s *Sample) Variance() float64 {
	n := len(s.xs)
	if n < 2 {
		return math.NaN()
	}
	m := s.Mean()
	ss := 0.0
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation, or NaN for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest observation, or NaN for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between order statistics. It returns NaN for an empty
// sample.
func (s *Sample) Percentile(p float64) float64 {
	n := len(s.xs)
	if n == 0 || p < 0 || p > 100 {
		return math.NaN()
	}
	sorted := append([]float64(nil), s.xs...)
	sort.Float64s(sorted)
	if n == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CI95 returns the half-width of the 95% confidence interval for the mean,
// using the Student t distribution. It returns NaN for fewer than two
// observations.
func (s *Sample) CI95() float64 {
	n := len(s.xs)
	if n < 2 {
		return math.NaN()
	}
	return tCritical95(n-1) * s.StdDev() / math.Sqrt(float64(n))
}

// CI95RelOK reports whether the 95% confidence interval half-width is within
// frac of the mean — the paper's replication stopping rule with frac = 0.01.
func (s *Sample) CI95RelOK(frac float64) bool {
	m := s.Mean()
	if m == 0 {
		return false
	}
	ci := s.CI95()
	return !math.IsNaN(ci) && ci/math.Abs(m) <= frac
}

// String summarizes the sample for logs.
func (s *Sample) String() string {
	return fmt.Sprintf("n=%d mean=%.4g ±%.2g (95%%)", s.N(), s.Mean(), s.CI95())
}

// tCritical95 returns the two-sided 95% Student-t critical value for the
// given degrees of freedom. Values through 30 degrees are tabulated; larger
// samples use the normal approximation 1.960.
func tCritical95(df int) float64 {
	table := [...]float64{
		0,                                                             // df 0 unused
		12.706,                                                        // 1
		4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, // 2-10
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, // 11-20
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042, // 21-30
	}
	if df <= 0 {
		return math.NaN()
	}
	if df < len(table) {
		return table[df]
	}
	return 1.960
}

// Replicate runs body with replication indices 0..n-1, collecting one
// observation per replication, and returns the resulting sample.
func Replicate(n int, body func(rep int) float64) *Sample {
	var s Sample
	for rep := 0; rep < n; rep++ {
		s.Add(body(rep))
	}
	return &s
}

// ReplicateToCI runs body with increasing replication counts until the 95%
// confidence interval half-width is within frac of the mean, or maxReps is
// reached. minReps replications are always performed. It returns the sample.
func ReplicateToCI(minReps, maxReps int, frac float64, body func(rep int) float64) *Sample {
	var s Sample
	for rep := 0; rep < maxReps; rep++ {
		s.Add(body(rep))
		if rep+1 >= minReps && s.CI95RelOK(frac) {
			break
		}
	}
	return &s
}

// Ratio returns a/b, or NaN when b is zero. It exists because nearly every
// figure in the paper is a response-time ratio.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return math.NaN()
	}
	return a / b
}
