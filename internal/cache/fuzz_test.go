package cache

import (
	"testing"
)

// FuzzCacheDifferential feeds an arbitrary op-code stream to the optimized
// cache and the naive oracle and requires bitwise-identical behaviour. The
// byte stream encodes ops: journaled windows are mirrored on the oracle via
// clone snapshots (commit keeps, rollback restores), so the fuzzer explores
// every interleaving of the journal protocol with flushes and invalidations
// the scheduler could produce — and many it couldn't.
func FuzzCacheDifferential(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 250, 4, 5, 251, 252, 6, 7, 253})
	f.Add([]byte{250, 10, 20, 30, 252, 250, 10, 20, 30, 251})
	f.Add([]byte{254, 0, 1, 255, 3, 100, 101, 254, 1})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const owners = 4
		c := MustNew(small())
		n := MustNewNaive(small())
		var snap *Naive // oracle state at BeginJournal, nil when no journal
		for i := 0; i < len(ops); i++ {
			op := ops[i]
			arg := func() int { // next byte as a small argument, 0 if exhausted
				if i+1 < len(ops) {
					i++
					return int(ops[i])
				}
				return 0
			}
			switch {
			case op == 250: // begin journal
				if snap == nil {
					snap = n.Clone()
					c.BeginJournal()
				}
			case op == 251: // commit
				if snap != nil {
					c.CommitJournal()
					snap = nil
				}
			case op == 252: // rollback
				if snap != nil {
					c.Rollback()
					n = snap
					snap = nil
				}
			case op == 253: // flush (illegal mid-journal; resolve first)
				if snap != nil {
					c.Rollback()
					n = snap
					snap = nil
				}
				c.Flush()
				n.Flush()
			case op == 254: // invalidate owner
				o := arg() % owners
				if snap != nil {
					c.CommitJournal()
					snap = nil
				}
				if got, want := c.InvalidateOwner(o), n.InvalidateOwner(o); got != want {
					t.Fatalf("op %d: InvalidateOwner(%d) = %d, naive %d", i, o, got, want)
				}
			case op == 255: // invalidate N
				o, k := arg()%owners, arg()%8
				if snap != nil {
					c.Rollback()
					n = snap
					snap = nil
				}
				if got, want := c.InvalidateN(o, k), n.InvalidateN(o, k); got != want {
					t.Fatalf("op %d: InvalidateN(%d,%d) = %d, naive %d", i, o, k, got, want)
				}
			default: // access: owner from the op byte, address from the next
				o := int(op) % owners
				addr := uint64(arg()%128) * 16
				if got, want := c.Access(o, addr), n.Access(o, addr); got != want {
					t.Fatalf("op %d: Access(%d,%#x) = %v, naive %v", i, o, addr, got, want)
				}
			}
			if cs, ns := c.Stats(), n.Stats(); cs != ns {
				t.Fatalf("op %d: stats diverged: fast %+v naive %+v", i, cs, ns)
			}
			if c.Occupied() != n.Occupied() {
				t.Fatalf("op %d: occupied diverged: fast %d naive %d", i, c.Occupied(), n.Occupied())
			}
			for o := 0; o < owners; o++ {
				if c.Resident(o) != n.Resident(o) {
					t.Fatalf("op %d: Resident(%d) diverged: fast %d naive %d",
						i, o, c.Resident(o), n.Resident(o))
				}
			}
		}
		if snap != nil {
			c.Rollback() // leave no journal open across iterations
		}
	})
}
