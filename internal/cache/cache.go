// Package cache implements an exact set-associative cache simulator with
// LRU replacement and per-owner residency accounting.
//
// The simulated cache corresponds to one per-processor cache of the Sequent
// Symmetry Model B studied in the paper: 64 Kbytes, 2-way set associative,
// 16-byte lines (4096 lines in 2048 sets), copy-back with an
// invalidation-based coherency protocol. All of those parameters are
// configurable.
//
// Because the reproduction's experiments are about *which task's* data
// occupies the cache, every access is tagged with an owner (a task
// identifier), and the cache tracks how many lines each owner currently has
// resident. That per-owner footprint is exactly the quantity the paper's
// affinity arguments are about, and is what the analytic footprint model in
// internal/footprint is validated against.
//
// # Data layout
//
// The simulator sits on the hot path of every exact-model experiment, so
// state lives in flat preallocated arrays rather than per-set slices and
// maps:
//
//   - Each line is one 32-byte record (tag, packed epoch+owner meta, LRU
//     word, journal stamp) in a single set-major array, so a 2-way set is
//     exactly one 64-byte hardware cache line and an access touches one
//     line of host memory. meta packs a line's validity epoch (upper 48
//     bits) with its owner slot (lower 16 bits): the hit test is two word
//     compares and Flush is an O(1) epoch bump — every line stamped with an
//     older epoch is invalid.
//   - Owner identifiers (arbitrary non-negative ints) are interned into
//     dense slots on first use; per-owner residency is a flat counter array
//     indexed by slot, replacing the map the original implementation
//     maintained (and paid a hash op per miss for).
//
// The retained map-based reference implementation is Naive (naive.go); the
// differential tests and fuzz target in this package hold the two bitwise
// equivalent.
//
// # Undo journal
//
// BeginJournal/CommitJournal/Rollback let a caller replay a speculative
// reference stream directly on the live cache and then either keep it (the
// common case, free) or restore the exact prior state. The journal records
// each touched line's prior tag/meta/LRU word once (first touch), plus the
// residency counters and global counters, so rollback cost is bounded by
// lines touched, never by references replayed. This is what lets the exact
// cache model plan a segment's misses with a single replay instead of the
// clone-and-replay-twice protocol (see internal/cachemodel).
package cache

import (
	"fmt"
	"math/bits"
)

// Config describes cache geometry.
type Config struct {
	// SizeBytes is the total capacity in bytes.
	SizeBytes int
	// LineBytes is the line (block) size in bytes. Must be a power of two.
	LineBytes int
	// Ways is the associativity. Must be >= 1.
	Ways int
}

// SymmetryConfig returns the cache geometry of the Sequent Symmetry Model B:
// 64 KB, 2-way set associative, 16-byte lines.
func SymmetryConfig() Config {
	return Config{SizeBytes: 64 * 1024, LineBytes: 16, Ways: 2}
}

// Lines returns the total number of lines the cache holds.
func (c Config) Lines() int { return c.SizeBytes / c.LineBytes }

// Sets returns the number of sets.
func (c Config) Sets() int { return c.Lines() / c.Ways }

// Validate checks the geometry for consistency.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d not a power of two", c.LineBytes)
	}
	if c.SizeBytes%c.LineBytes != 0 {
		return fmt.Errorf("cache: size %d not a multiple of line size %d", c.SizeBytes, c.LineBytes)
	}
	lines := c.Lines()
	if lines%c.Ways != 0 {
		return fmt.Errorf("cache: %d lines not divisible by %d ways", lines, c.Ways)
	}
	sets := lines / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// NoOwner marks an invalid (empty) way.
const NoOwner = -1

// slotBits is the width of the owner-slot field in a meta word; the rest
// holds the validity epoch. 16 bits bound the distinct owners one cache can
// ever see at 65536 — far beyond any simulated workload (owners are kernel
// tasks; runs have at most processors × jobs of them).
const (
	slotBits = 16
	slotMask = 1<<slotBits - 1
	maxSlots = 1 << slotBits
)

// lineRec is one cache line's state: 32 bytes, so a 2-way set occupies
// exactly one 64-byte hardware cache line (the backing array of a
// Symmetry-sized cache is page-aligned, keeping sets line-aligned).
type lineRec struct {
	tag   uint64 // line address (byte address >> lineShift)
	meta  uint64 // epoch<<slotBits | owner slot; valid iff epoch is current
	used  uint64 // global access counter value at last touch, for LRU
	jmark uint64 // journal generation stamp: journaled iff == jgen
}

// jentry records one journaled line's state prior to its first modification
// inside the current journal.
type jentry struct {
	idx  int32
	tag  uint64
	meta uint64
	used uint64
}

// jcounters snapshots the scalar counters at BeginJournal.
type jcounters struct {
	accesses uint64
	misses   uint64
	evicted  uint64
	occupied int
}

// Cache is a set-associative cache with LRU replacement.
type Cache struct {
	cfg       Config
	lineShift uint
	setMask   uint64
	nways     int

	lines []lineRec // sets*ways records, set-major

	epoch uint64 // current validity epoch, starts at 1 so zeroed meta is invalid

	// Owner interning: external owner id -> dense slot, with a one-entry
	// cache in front because accesses arrive in long same-owner runs.
	slotOf    map[int]uint64
	ownerOf   []int
	resCount  []int32 // lines resident per slot
	occupied  int
	lastOwner int
	lastSlot  uint64

	accesses uint64
	misses   uint64
	evicted  uint64

	// Undo journal (see package comment).
	journaling bool
	jgen       uint64
	jlog       []jentry
	jres       []int32 // resCount snapshot at BeginJournal
	jctr       jcounters
}

// New constructs a cache with the given geometry. It returns an error when
// the geometry is invalid.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cache{
		cfg:       cfg,
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setMask:   uint64(cfg.Sets() - 1),
		nways:     cfg.Ways,
		lines:     make([]lineRec, cfg.Lines()),
		epoch:     1,
		slotOf:    make(map[int]uint64),
		lastOwner: NoOwner,
		// Sized so steady-state journaling never regrows the undo log
		// (worst case touches every line once).
		jlog: make([]jentry, 0, cfg.Lines()),
	}
	return c, nil
}

// MustNew is New for known-good configurations; it panics on error.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// slot interns owner, returning its dense slot index. The one-entry cache
// in front of the map makes the common long-same-owner runs map-free; the
// split keeps slot itself within the compiler's inlining budget.
func (c *Cache) slot(owner int) uint64 {
	if owner == c.lastOwner {
		return c.lastSlot
	}
	return c.slotSlow(owner)
}

//go:noinline
func (c *Cache) slotSlow(owner int) uint64 {
	s, ok := c.slotOf[owner]
	if !ok {
		if len(c.ownerOf) >= maxSlots {
			panic("cache: more than 65536 distinct owners")
		}
		s = uint64(len(c.ownerOf))
		c.slotOf[owner] = s
		c.ownerOf = append(c.ownerOf, owner)
		c.resCount = append(c.resCount, 0)
	}
	c.lastOwner, c.lastSlot = owner, s
	return s
}

// journal records line i's current state, once per journal generation.
func (c *Cache) journal(i int) {
	l := &c.lines[i]
	if l.jmark == c.jgen {
		return
	}
	l.jmark = c.jgen
	c.jlog = append(c.jlog, jentry{idx: int32(i), tag: l.tag, meta: l.meta, used: l.used})
}

// Access simulates a reference by owner to the byte address addr and reports
// whether it hit. On a miss the line is installed for owner, evicting the
// set's least recently used line if necessary.
func (c *Cache) Access(owner int, addr uint64) bool {
	if owner < 0 {
		panic("cache: negative owner")
	}
	// accesses doubles as the LRU clock: both advance exactly once per
	// Access and nothing else touches them, so they are always equal.
	c.accesses++
	line := addr >> c.lineShift
	base := int(line&c.setMask) * c.nways
	ebase := c.epoch << slotBits

	// Unrolled fast path for the ubiquitous 2-way geometry (the Symmetry
	// machine); semantics identical to the generic loops below. The hit
	// logic is duplicated from hitAt because the call is not inlinable and
	// hits dominate.
	if c.nways == 2 {
		l0, l1 := &c.lines[base], &c.lines[base+1]
		var l *lineRec
		if l0.tag == line && l0.meta&^uint64(slotMask) == ebase {
			l = l0
		} else if l1.tag == line && l1.meta&^uint64(slotMask) == ebase {
			l = l1
			base++
		}
		if l != nil {
			if c.journaling {
				c.journal(base)
			}
			l.used = c.accesses
			slot := c.slot(owner)
			if prev := l.meta & slotMask; prev != slot {
				c.resCount[prev]--
				c.resCount[slot]++
				l.meta = ebase | slot
			}
			return true
		}
		victim, valid := base, true
		if l0.meta>>slotBits != c.epoch {
			valid = false
		} else if l1.meta>>slotBits != c.epoch {
			victim, valid = base+1, false
		} else if l1.used < l0.used {
			victim = base + 1
		}
		return c.installAt(victim, valid, owner, line, ebase)
	}

	// Hit?
	for i := base; i < base+c.nways; i++ {
		l := &c.lines[i]
		if l.tag == line && l.meta&^uint64(slotMask) == ebase {
			return c.hitAt(i, owner, ebase)
		}
	}

	// Miss: find an invalid way, else evict LRU.
	victim := base
	valid := true
	for i := base; i < base+c.nways; i++ {
		if c.lines[i].meta>>slotBits != c.epoch {
			victim = i
			valid = false
			break
		}
		if c.lines[i].used < c.lines[victim].used {
			victim = i
		}
	}
	return c.installAt(victim, valid, owner, line, ebase)
}

// hitAt applies a hit on line i, returning true.
func (c *Cache) hitAt(i, owner int, ebase uint64) bool {
	if c.journaling {
		c.journal(i)
	}
	l := &c.lines[i]
	l.used = c.accesses
	slot := c.slot(owner)
	if prev := l.meta & slotMask; prev != slot {
		// Shared line touched by a new owner: account it to the most
		// recent toucher, mirroring who benefits from it.
		c.resCount[prev]--
		c.resCount[slot]++
		l.meta = ebase | slot
	}
	return true
}

// installAt applies a miss install into line victim (evicting it when
// valid), returning false.
func (c *Cache) installAt(victim int, valid bool, owner int, line, ebase uint64) bool {
	c.misses++
	if c.journaling {
		c.journal(victim)
	}
	l := &c.lines[victim]
	if valid {
		c.evicted++
		c.resCount[l.meta&slotMask]--
	} else {
		c.occupied++
	}
	slot := c.slot(owner)
	l.tag = line
	l.meta = ebase | slot
	l.used = c.accesses
	c.resCount[slot]++
	return false
}

// Flush invalidates the entire cache, as the paper's migration experiment
// does by streaming through memory before resuming the measured program.
// It is an O(distinct owners) epoch bump, not an O(lines) clear.
func (c *Cache) Flush() {
	if c.journaling {
		panic("cache: Flush during an open journal")
	}
	c.epoch++
	for i := range c.resCount {
		c.resCount[i] = 0
	}
	c.occupied = 0
}

// InvalidateOwner removes every line belonging to owner, modelling coherency
// invalidations when the owner's task writes the same data from another
// processor. It returns the number of lines invalidated.
func (c *Cache) InvalidateOwner(owner int) int {
	if c.journaling {
		panic("cache: InvalidateOwner during an open journal")
	}
	s, ok := c.slotOf[owner]
	if !ok || c.resCount[s] == 0 {
		return 0
	}
	want := c.epoch<<slotBits | s
	n := 0
	for i := range c.lines {
		if c.lines[i].meta == want {
			c.lines[i].meta = 0 // epoch 0 is never current
			n++
			if int32(n) == c.resCount[s] {
				break
			}
		}
	}
	c.resCount[s] = 0
	c.occupied -= n
	return n
}

// InvalidateN removes up to n of owner's lines (scanning in way order, a
// deterministic stand-in for "whichever shared lines were written"). It
// returns the number of lines invalidated.
func (c *Cache) InvalidateN(owner, n int) int {
	if c.journaling {
		panic("cache: InvalidateN during an open journal")
	}
	if n <= 0 {
		return 0
	}
	s, ok := c.slotOf[owner]
	if !ok || c.resCount[s] == 0 {
		return 0
	}
	want := c.epoch<<slotBits | s
	removed := 0
	for i := range c.lines {
		if c.lines[i].meta == want {
			c.lines[i].meta = 0
			removed++
			if removed >= n || int32(removed) == c.resCount[s] {
				break
			}
		}
	}
	c.resCount[s] -= int32(removed)
	c.occupied -= removed
	return removed
}

// Resident returns the number of lines owner currently has in the cache.
func (c *Cache) Resident(owner int) int {
	if s, ok := c.slotOf[owner]; ok {
		return int(c.resCount[s])
	}
	return 0
}

// ResidentAtJournalStart returns owner's residency as of the BeginJournal
// call when a journal is open, and the current residency otherwise. The
// exact cache model uses it to prove a coherency invalidation is a no-op in
// both the journaled and the rolled-back state, letting a pending plan
// survive.
func (c *Cache) ResidentAtJournalStart(owner int) int {
	if !c.journaling {
		return c.Resident(owner)
	}
	if s, ok := c.slotOf[owner]; ok && s < uint64(len(c.jres)) {
		return int(c.jres[s])
	}
	return 0
}

// Occupied returns the total number of valid lines.
func (c *Cache) Occupied() int { return c.occupied }

// Owners returns the set of owners with at least one resident line.
func (c *Cache) Owners() []int {
	var out []int
	for s, n := range c.resCount {
		if n > 0 {
			out = append(out, c.ownerOf[s])
		}
	}
	return out
}

// BeginJournal starts recording undo state: every line modified by
// subsequent Accesses has its prior state captured once. The journal stays
// open until CommitJournal or Rollback; Flush and the invalidate operations
// panic while it is open (the callers that journal never interleave them —
// see internal/cachemodel).
func (c *Cache) BeginJournal() {
	if c.journaling {
		panic("cache: nested BeginJournal")
	}
	c.journaling = true
	c.jgen++
	c.jlog = c.jlog[:0]
	c.jres = append(c.jres[:0], c.resCount...)
	c.jctr = jcounters{
		accesses: c.accesses,
		misses:   c.misses,
		evicted:  c.evicted,
		occupied: c.occupied,
	}
}

// Journaling reports whether a journal is open.
func (c *Cache) Journaling() bool { return c.journaling }

// CommitJournal closes the journal keeping every effect recorded since
// BeginJournal — the speculative replay becomes the real state, at no cost
// beyond dropping the undo log.
func (c *Cache) CommitJournal() {
	if !c.journaling {
		panic("cache: CommitJournal without BeginJournal")
	}
	c.journaling = false
	c.jlog = c.jlog[:0]
}

// Rollback closes the journal restoring the exact state at BeginJournal:
// line contents, residency counters, and statistics. Owner slots interned
// during the journal remain interned (with zero residency); interning is
// not an observable effect.
func (c *Cache) Rollback() {
	if !c.journaling {
		panic("cache: Rollback without BeginJournal")
	}
	c.journaling = false
	for k := len(c.jlog) - 1; k >= 0; k-- {
		e := &c.jlog[k]
		l := &c.lines[e.idx]
		l.tag = e.tag
		l.meta = e.meta
		l.used = e.used
	}
	c.jlog = c.jlog[:0]
	for i := range c.resCount {
		if i < len(c.jres) {
			c.resCount[i] = c.jres[i]
		} else {
			c.resCount[i] = 0
		}
	}
	c.accesses = c.jctr.accesses
	c.misses = c.jctr.misses
	c.evicted = c.jctr.evicted
	c.occupied = c.jctr.occupied
}

// Stats reports cumulative access counts.
type Stats struct {
	Accesses uint64
	Misses   uint64
	Evicted  uint64
}

// Stats returns cumulative counters since construction (Flush does not
// reset them).
func (c *Cache) Stats() Stats {
	return Stats{Accesses: c.accesses, Misses: c.misses, Evicted: c.evicted}
}

// MissRatio returns misses/accesses, or 0 before any access.
func (s Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Clone returns an independent deep copy of the cache. The single-replay
// plan/commit protocol no longer clones on the hot path; Clone remains for
// the clone-based oracle model and tests. It panics while a journal is
// open.
func (c *Cache) Clone() *Cache {
	if c.journaling {
		panic("cache: Clone during an open journal")
	}
	out := *c
	out.lines = append([]lineRec(nil), c.lines...)
	out.ownerOf = append([]int(nil), c.ownerOf...)
	out.resCount = append([]int32(nil), c.resCount...)
	out.slotOf = make(map[int]uint64, len(c.slotOf))
	for k, v := range c.slotOf {
		out.slotOf[k] = v
	}
	for i := range out.lines {
		out.lines[i].jmark = 0
	}
	out.jgen = 0
	out.jlog = nil
	out.jres = nil
	return &out
}
