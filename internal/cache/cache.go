// Package cache implements an exact set-associative cache simulator with
// LRU replacement and per-owner residency accounting.
//
// The simulated cache corresponds to one per-processor cache of the Sequent
// Symmetry Model B studied in the paper: 64 Kbytes, 2-way set associative,
// 16-byte lines (4096 lines in 2048 sets), copy-back with an
// invalidation-based coherency protocol. All of those parameters are
// configurable.
//
// Because the reproduction's experiments are about *which task's* data
// occupies the cache, every access is tagged with an owner (a task
// identifier), and the cache tracks how many lines each owner currently has
// resident. That per-owner footprint is exactly the quantity the paper's
// affinity arguments are about, and is what the analytic footprint model in
// internal/footprint is validated against.
package cache

import (
	"fmt"
	"math/bits"
)

// Config describes cache geometry.
type Config struct {
	// SizeBytes is the total capacity in bytes.
	SizeBytes int
	// LineBytes is the line (block) size in bytes. Must be a power of two.
	LineBytes int
	// Ways is the associativity. Must be >= 1.
	Ways int
}

// SymmetryConfig returns the cache geometry of the Sequent Symmetry Model B:
// 64 KB, 2-way set associative, 16-byte lines.
func SymmetryConfig() Config {
	return Config{SizeBytes: 64 * 1024, LineBytes: 16, Ways: 2}
}

// Lines returns the total number of lines the cache holds.
func (c Config) Lines() int { return c.SizeBytes / c.LineBytes }

// Sets returns the number of sets.
func (c Config) Sets() int { return c.Lines() / c.Ways }

// Validate checks the geometry for consistency.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d not a power of two", c.LineBytes)
	}
	if c.SizeBytes%c.LineBytes != 0 {
		return fmt.Errorf("cache: size %d not a multiple of line size %d", c.SizeBytes, c.LineBytes)
	}
	lines := c.Lines()
	if lines%c.Ways != 0 {
		return fmt.Errorf("cache: %d lines not divisible by %d ways", lines, c.Ways)
	}
	sets := lines / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// NoOwner marks an invalid (empty) way.
const NoOwner = -1

type way struct {
	tag   uint64 // line address (byte address >> lineShift); valid iff owner != NoOwner
	owner int
	used  uint64 // global access counter value at last touch, for LRU
}

// Cache is a set-associative cache with LRU replacement.
type Cache struct {
	cfg       Config
	lineShift uint
	setMask   uint64
	ways      []way // sets*ways entries, set-major
	nways     int

	clock    uint64
	resident map[int]int // owner -> lines currently resident

	accesses uint64
	misses   uint64
	evicted  uint64
}

// New constructs a cache with the given geometry. It returns an error when
// the geometry is invalid.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cache{
		cfg:       cfg,
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setMask:   uint64(cfg.Sets() - 1),
		ways:      make([]way, cfg.Lines()),
		nways:     cfg.Ways,
		resident:  make(map[int]int),
	}
	for i := range c.ways {
		c.ways[i].owner = NoOwner
	}
	return c, nil
}

// MustNew is New for known-good configurations; it panics on error.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Access simulates a reference by owner to the byte address addr and reports
// whether it hit. On a miss the line is installed for owner, evicting the
// set's least recently used line if necessary.
func (c *Cache) Access(owner int, addr uint64) bool {
	if owner < 0 {
		panic("cache: negative owner")
	}
	c.clock++
	c.accesses++
	line := addr >> c.lineShift
	set := int(line&c.setMask) * c.nways
	ws := c.ways[set : set+c.nways]

	// Hit?
	for i := range ws {
		if ws[i].owner != NoOwner && ws[i].tag == line {
			ws[i].used = c.clock
			if ws[i].owner != owner {
				// Shared line touched by a new owner: account it to the
				// most recent toucher, mirroring who benefits from it.
				c.resident[ws[i].owner]--
				c.resident[owner]++
				ws[i].owner = owner
			}
			return true
		}
	}

	// Miss: find an invalid way, else evict LRU.
	c.misses++
	victim := 0
	for i := range ws {
		if ws[i].owner == NoOwner {
			victim = i
			goto install
		}
		if ws[i].used < ws[victim].used {
			victim = i
		}
	}
	c.evicted++
	c.resident[ws[victim].owner]--
install:
	ws[victim] = way{tag: line, owner: owner, used: c.clock}
	c.resident[owner]++
	return false
}

// Flush invalidates the entire cache, as the paper's migration experiment
// does by streaming through memory before resuming the measured program.
func (c *Cache) Flush() {
	for i := range c.ways {
		c.ways[i].owner = NoOwner
	}
	for k := range c.resident {
		delete(c.resident, k)
	}
}

// InvalidateOwner removes every line belonging to owner, modelling coherency
// invalidations when the owner's task writes the same data from another
// processor. It returns the number of lines invalidated.
func (c *Cache) InvalidateOwner(owner int) int {
	n := 0
	for i := range c.ways {
		if c.ways[i].owner == owner {
			c.ways[i].owner = NoOwner
			n++
		}
	}
	if n > 0 {
		delete(c.resident, owner)
	}
	return n
}

// InvalidateN removes up to n of owner's lines (scanning in way order, a
// deterministic stand-in for "whichever shared lines were written"). It
// returns the number of lines invalidated.
func (c *Cache) InvalidateN(owner, n int) int {
	if n <= 0 {
		return 0
	}
	removed := 0
	for i := range c.ways {
		if removed >= n {
			break
		}
		if c.ways[i].owner == owner {
			c.ways[i].owner = NoOwner
			removed++
		}
	}
	if removed > 0 {
		c.resident[owner] -= removed
		if c.resident[owner] <= 0 {
			delete(c.resident, owner)
		}
	}
	return removed
}

// Resident returns the number of lines owner currently has in the cache.
func (c *Cache) Resident(owner int) int { return c.resident[owner] }

// Occupied returns the total number of valid lines.
func (c *Cache) Occupied() int {
	total := 0
	for _, n := range c.resident {
		total += n
	}
	return total
}

// Owners returns the set of owners with at least one resident line.
func (c *Cache) Owners() []int {
	var out []int
	for o, n := range c.resident {
		if n > 0 {
			out = append(out, o)
		}
	}
	return out
}

// Stats reports cumulative access counts.
type Stats struct {
	Accesses uint64
	Misses   uint64
	Evicted  uint64
}

// Stats returns cumulative counters since construction (Flush does not
// reset them).
func (c *Cache) Stats() Stats {
	return Stats{Accesses: c.accesses, Misses: c.misses, Evicted: c.evicted}
}

// MissRatio returns misses/accesses, or 0 before any access.
func (s Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Clone returns an independent deep copy of the cache, used by the exact
// cache model to plan a segment's misses on scratch state before committing
// it to the real cache.
func (c *Cache) Clone() *Cache {
	out := *c
	out.ways = append([]way(nil), c.ways...)
	out.resident = make(map[int]int, len(c.resident))
	for k, v := range c.resident {
		out.resident[k] = v
	}
	return &out
}
