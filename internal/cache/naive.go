package cache

// Naive is the original per-set-slice, residency-map implementation of the
// simulator, retained verbatim as the differential-test oracle for the flat
// epoch-based Cache. It has no journal; callers that need rollback snapshot
// it with Clone. Production code must use Cache — Naive exists so the fuzz
// and differential tests in this package (and the clone-based exact-naive
// model in internal/cachemodel) can hold the optimized layout bitwise
// equivalent to the layout it replaced.
type Naive struct {
	cfg       Config
	lineShift uint
	setMask   uint64
	ways      []way // sets*ways entries, set-major
	nways     int

	clock    uint64
	resident map[int]int // owner -> lines currently resident

	accesses uint64
	misses   uint64
	evicted  uint64
}

type way struct {
	tag   uint64 // line address (byte address >> lineShift); valid iff owner != NoOwner
	owner int
	used  uint64 // global access counter value at last touch, for LRU
}

// NewNaive constructs the reference simulator with the given geometry.
func NewNaive(cfg Config) (*Naive, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Naive{
		cfg:       cfg,
		lineShift: uint(lineShiftOf(cfg)),
		setMask:   uint64(cfg.Sets() - 1),
		ways:      make([]way, cfg.Lines()),
		nways:     cfg.Ways,
		resident:  make(map[int]int),
	}
	for i := range c.ways {
		c.ways[i].owner = NoOwner
	}
	return c, nil
}

// MustNewNaive is NewNaive for known-good configurations; it panics on error.
func MustNewNaive(cfg Config) *Naive {
	c, err := NewNaive(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

func lineShiftOf(cfg Config) int {
	s := 0
	for 1<<s < cfg.LineBytes {
		s++
	}
	return s
}

// Config returns the cache geometry.
func (c *Naive) Config() Config { return c.cfg }

// Access simulates a reference by owner to the byte address addr and reports
// whether it hit.
func (c *Naive) Access(owner int, addr uint64) bool {
	if owner < 0 {
		panic("cache: negative owner")
	}
	c.clock++
	c.accesses++
	line := addr >> c.lineShift
	set := int(line&c.setMask) * c.nways
	ws := c.ways[set : set+c.nways]

	// Hit?
	for i := range ws {
		if ws[i].owner != NoOwner && ws[i].tag == line {
			ws[i].used = c.clock
			if ws[i].owner != owner {
				c.resident[ws[i].owner]--
				c.resident[owner]++
				ws[i].owner = owner
			}
			return true
		}
	}

	// Miss: find an invalid way, else evict LRU.
	c.misses++
	victim := 0
	for i := range ws {
		if ws[i].owner == NoOwner {
			victim = i
			goto install
		}
		if ws[i].used < ws[victim].used {
			victim = i
		}
	}
	c.evicted++
	c.resident[ws[victim].owner]--
install:
	ws[victim] = way{tag: line, owner: owner, used: c.clock}
	c.resident[owner]++
	return false
}

// Flush invalidates the entire cache.
func (c *Naive) Flush() {
	for i := range c.ways {
		c.ways[i].owner = NoOwner
	}
	for k := range c.resident {
		delete(c.resident, k)
	}
}

// InvalidateOwner removes every line belonging to owner, returning the
// number of lines invalidated.
func (c *Naive) InvalidateOwner(owner int) int {
	n := 0
	for i := range c.ways {
		if c.ways[i].owner == owner {
			c.ways[i].owner = NoOwner
			n++
		}
	}
	if n > 0 {
		delete(c.resident, owner)
	}
	return n
}

// InvalidateN removes up to n of owner's lines in way order, returning the
// number of lines invalidated.
func (c *Naive) InvalidateN(owner, n int) int {
	if n <= 0 {
		return 0
	}
	removed := 0
	for i := range c.ways {
		if removed >= n {
			break
		}
		if c.ways[i].owner == owner {
			c.ways[i].owner = NoOwner
			removed++
		}
	}
	if removed > 0 {
		c.resident[owner] -= removed
		if c.resident[owner] <= 0 {
			delete(c.resident, owner)
		}
	}
	return removed
}

// Resident returns the number of lines owner currently has in the cache.
func (c *Naive) Resident(owner int) int { return c.resident[owner] }

// Occupied returns the total number of valid lines.
func (c *Naive) Occupied() int {
	total := 0
	for _, n := range c.resident {
		total += n
	}
	return total
}

// Owners returns the set of owners with at least one resident line.
func (c *Naive) Owners() []int {
	var out []int
	for o, n := range c.resident {
		if n > 0 {
			out = append(out, o)
		}
	}
	return out
}

// Stats returns cumulative counters since construction.
func (c *Naive) Stats() Stats {
	return Stats{Accesses: c.accesses, Misses: c.misses, Evicted: c.evicted}
}

// Clone returns an independent deep copy.
func (c *Naive) Clone() *Naive {
	out := *c
	out.ways = append([]way(nil), c.ways...)
	out.resident = make(map[int]int, len(c.resident))
	for k, v := range c.resident {
		out.resident[k] = v
	}
	return &out
}
