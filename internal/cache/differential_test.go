package cache

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// sameState fails the test unless the optimized cache and the naive oracle
// agree on every observable: statistics, occupancy, per-owner residency and
// the owner set.
func sameState(t *testing.T, step int, c *Cache, n *Naive, owners int) {
	t.Helper()
	if cs, ns := c.Stats(), n.Stats(); cs != ns {
		t.Fatalf("step %d: stats diverged: fast %+v naive %+v", step, cs, ns)
	}
	if co, no := c.Occupied(), n.Occupied(); co != no {
		t.Fatalf("step %d: occupied diverged: fast %d naive %d", step, co, no)
	}
	for o := 0; o < owners; o++ {
		if cr, nr := c.Resident(o), n.Resident(o); cr != nr {
			t.Fatalf("step %d: Resident(%d) diverged: fast %d naive %d", step, o, cr, nr)
		}
	}
	co, no := c.Owners(), n.Owners()
	sort.Ints(co)
	sort.Ints(no)
	if len(co) != len(no) {
		t.Fatalf("step %d: owner sets diverged: fast %v naive %v", step, co, no)
	}
	for i := range co {
		if co[i] != no[i] {
			t.Fatalf("step %d: owner sets diverged: fast %v naive %v", step, co, no)
		}
	}
}

// TestDifferentialRandomOps drives the optimized cache and the naive oracle
// through identical random access/flush/invalidate sequences and requires
// bitwise-identical behaviour at every step.
func TestDifferentialRandomOps(t *testing.T) {
	const owners = 4
	f := func(seed uint64) bool {
		rng := xrand.New(seed, 0xd1ff)
		c := MustNew(small())
		n := MustNewNaive(small())
		for step := 0; step < 3000; step++ {
			switch rng.Intn(24) {
			case 0:
				c.Flush()
				n.Flush()
			case 1:
				o := rng.Intn(owners)
				if got, want := c.InvalidateOwner(o), n.InvalidateOwner(o); got != want {
					t.Errorf("seed %d step %d: InvalidateOwner(%d) = %d, naive %d",
						seed, step, o, got, want)
					return false
				}
			case 2:
				o, k := rng.Intn(owners), rng.Intn(8)
				if got, want := c.InvalidateN(o, k), n.InvalidateN(o, k); got != want {
					t.Errorf("seed %d step %d: InvalidateN(%d,%d) = %d, naive %d",
						seed, step, o, k, got, want)
					return false
				}
			default:
				o := rng.Intn(owners)
				addr := uint64(rng.Intn(96)) * 16
				if got, want := c.Access(o, addr), n.Access(o, addr); got != want {
					t.Errorf("seed %d step %d: Access(%d,%#x) = %v, naive %v",
						seed, step, o, addr, got, want)
					return false
				}
			}
			sameState(t, step, c, n, owners)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestDifferentialJournal interleaves journaled speculative windows with the
// random op stream. The naive oracle mirrors the journal with clone
// snapshots: commit keeps its post-window state, rollback restores the
// snapshot. The two must stay bitwise identical throughout and after.
func TestDifferentialJournal(t *testing.T) {
	const owners = 4
	f := func(seed uint64) bool {
		rng := xrand.New(seed, 0x10c5)
		c := MustNew(small())
		n := MustNewNaive(small())
		for round := 0; round < 60; round++ {
			// Some plain ops between windows.
			for i := rng.Intn(40); i > 0; i-- {
				o := rng.Intn(owners)
				addr := uint64(rng.Intn(96)) * 16
				if c.Access(o, addr) != n.Access(o, addr) {
					return false
				}
			}
			if rng.Intn(4) == 0 {
				c.Flush()
				n.Flush()
			}
			// A speculative window.
			snap := n.Clone()
			c.BeginJournal()
			if !c.Journaling() {
				return false
			}
			for i := rng.Intn(80); i > 0; i-- {
				o := rng.Intn(owners)
				addr := uint64(rng.Intn(96)) * 16
				if c.Access(o, addr) != n.Access(o, addr) {
					t.Errorf("seed %d round %d: journaled access diverged", seed, round)
					return false
				}
			}
			sameState(t, round, c, n, owners)
			if rng.Intn(2) == 0 {
				c.CommitJournal()
			} else {
				c.Rollback()
				n = snap
			}
			sameState(t, round, c, n, owners)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestJournalRollbackExact pins the journal contract directly: rollback
// restores line contents, residency, occupancy AND statistics to the
// BeginJournal point, so a subsequent identical replay behaves identically.
func TestJournalRollbackExact(t *testing.T) {
	c := MustNew(small())
	for i := 0; i < 10; i++ {
		c.Access(1, uint64(i*16))
	}
	before := c.Stats()
	r1, occ1 := c.Resident(1), c.Occupied()

	c.BeginJournal()
	missesA := 0
	for i := 0; i < 40; i++ {
		if !c.Access(2, uint64((i+32)*16)) {
			missesA++
		}
	}
	c.Rollback()

	if got := c.Stats(); got != before {
		t.Fatalf("stats after rollback = %+v, want %+v", got, before)
	}
	if c.Resident(1) != r1 || c.Resident(2) != 0 || c.Occupied() != occ1 {
		t.Fatalf("residency after rollback: r1=%d r2=%d occ=%d, want r1=%d r2=0 occ=%d",
			c.Resident(1), c.Resident(2), c.Occupied(), r1, occ1)
	}
	// The same replay against the restored state gives the same misses.
	c.BeginJournal()
	missesB := 0
	for i := 0; i < 40; i++ {
		if !c.Access(2, uint64((i+32)*16)) {
			missesB++
		}
	}
	c.CommitJournal()
	if missesA != missesB {
		t.Fatalf("replay after rollback: %d misses, first run %d", missesB, missesA)
	}
	if c.Resident(2) == 0 {
		t.Fatal("committed journal left no owner-2 lines")
	}
}

// TestJournalPanics pins the operations that are illegal while a journal is
// open or absent.
func TestJournalPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	open := func() *Cache {
		c := MustNew(small())
		c.BeginJournal()
		return c
	}
	mustPanic("Flush during journal", func() { open().Flush() })
	mustPanic("InvalidateOwner during journal", func() { open().InvalidateOwner(1) })
	mustPanic("InvalidateN during journal", func() { open().InvalidateN(1, 1) })
	mustPanic("Clone during journal", func() { open().Clone() })
	mustPanic("nested BeginJournal", func() { open().BeginJournal() })
	mustPanic("CommitJournal without journal", func() { MustNew(small()).CommitJournal() })
	mustPanic("Rollback without journal", func() { MustNew(small()).Rollback() })
}

// TestEpochFlushDoesNotResurrect guards the epoch-tagging scheme: after many
// flushes (epoch bumps) stale lines must never read as valid, even when the
// same addresses return.
func TestEpochFlushDoesNotResurrect(t *testing.T) {
	c := MustNew(small())
	n := MustNewNaive(small())
	for round := 0; round < 300; round++ {
		for i := 0; i < 8; i++ {
			addr := uint64(i * 16)
			if c.Access(round%3, addr) != n.Access(round%3, addr) {
				t.Fatalf("round %d: diverged on %#x", round, addr)
			}
		}
		c.Flush()
		n.Flush()
		if c.Occupied() != 0 {
			t.Fatalf("round %d: flush left %d lines", round, c.Occupied())
		}
	}
}

func BenchmarkFlush(b *testing.B) {
	c := MustNew(SymmetryConfig())
	for i := 0; i < 4096; i++ {
		c.Access(i%8, uint64(i)*16)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Flush()
		c.Access(i%8, uint64(i)*16) // keep the cache non-trivially occupied
	}
}

func BenchmarkNaiveAccessHot(b *testing.B) {
	c := MustNewNaive(SymmetryConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Access(1, uint64(i%1024)*16)
	}
}

// BenchmarkJournalCommit measures a full speculative window that commits —
// the exact model's common case: begin, replay a segment, keep it.
func BenchmarkJournalCommit(b *testing.B) {
	c := MustNew(SymmetryConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.BeginJournal()
		base := uint64(i % 64 * 256)
		for k := 0; k < 256; k++ {
			c.Access(1, (base+uint64(k))*16)
		}
		c.CommitJournal()
	}
}

// BenchmarkJournalRollback measures the preemption path: begin, replay,
// undo.
func BenchmarkJournalRollback(b *testing.B) {
	c := MustNew(SymmetryConfig())
	for k := 0; k < 2048; k++ {
		c.Access(1, uint64(k)*16)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.BeginJournal()
		base := uint64(i % 64 * 256)
		for k := 0; k < 256; k++ {
			c.Access(2, (base+uint64(k))*16)
		}
		c.Rollback()
	}
}
