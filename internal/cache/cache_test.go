package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func small() Config { return Config{SizeBytes: 256, LineBytes: 16, Ways: 2} } // 16 lines, 8 sets

func TestSymmetryGeometry(t *testing.T) {
	cfg := SymmetryConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Lines() != 4096 {
		t.Errorf("Lines = %d, want 4096", cfg.Lines())
	}
	if cfg.Sets() != 2048 {
		t.Errorf("Sets = %d, want 2048", cfg.Sets())
	}
}

func TestValidateRejectsBadGeometry(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, LineBytes: 16, Ways: 2},
		{SizeBytes: 64, LineBytes: 0, Ways: 2},
		{SizeBytes: 64, LineBytes: 16, Ways: 0},
		{SizeBytes: 64, LineBytes: 12, Ways: 2},  // line not power of two
		{SizeBytes: 100, LineBytes: 16, Ways: 2}, // size not multiple of line
		{SizeBytes: 96, LineBytes: 16, Ways: 4},  // 6 lines not divisible... actually 6 lines % 4 != 0
		{SizeBytes: 192, LineBytes: 16, Ways: 2}, // 12 lines, 6 sets: not power of two
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted bad geometry", cfg)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) accepted bad geometry", cfg)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic on bad config")
		}
	}()
	MustNew(Config{SizeBytes: 1, LineBytes: 3, Ways: 1})
}

func TestMissThenHit(t *testing.T) {
	c := MustNew(small())
	if c.Access(1, 0x100) {
		t.Fatal("first access hit a cold cache")
	}
	if !c.Access(1, 0x100) {
		t.Fatal("second access to same address missed")
	}
	if !c.Access(1, 0x10F) {
		t.Fatal("same-line access missed")
	}
	if c.Access(1, 0x110) {
		t.Fatal("next-line access hit")
	}
	st := c.Stats()
	if st.Accesses != 4 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 4 accesses 2 misses", st)
	}
}

func TestLRUEvictionWithinSet(t *testing.T) {
	c := MustNew(small()) // 8 sets, 2 ways; same set every 8 lines = 128 bytes
	a0 := uint64(0x000)
	a1 := uint64(0x080) // same set as a0
	a2 := uint64(0x100) // same set again
	c.Access(1, a0)
	c.Access(1, a1)
	if !c.Access(1, a0) { // touch a0 so a1 becomes LRU
		t.Fatal("a0 should hit")
	}
	c.Access(1, a2) // must evict a1
	if !c.Access(1, a0) {
		t.Fatal("a0 evicted despite being MRU")
	}
	if c.Access(1, a1) {
		t.Fatal("a1 should have been evicted as LRU")
	}
}

func TestResidentAccounting(t *testing.T) {
	c := MustNew(small())
	for i := 0; i < 4; i++ {
		c.Access(1, uint64(i*16))
	}
	for i := 4; i < 6; i++ {
		c.Access(2, uint64(i*16))
	}
	if got := c.Resident(1); got != 4 {
		t.Errorf("Resident(1) = %d, want 4", got)
	}
	if got := c.Resident(2); got != 2 {
		t.Errorf("Resident(2) = %d, want 2", got)
	}
	if got := c.Occupied(); got != 6 {
		t.Errorf("Occupied = %d, want 6", got)
	}
	if got := len(c.Owners()); got != 2 {
		t.Errorf("Owners = %v", c.Owners())
	}
}

func TestSharedLineChangesOwner(t *testing.T) {
	c := MustNew(small())
	c.Access(1, 0x40)
	if !c.Access(2, 0x40) {
		t.Fatal("second owner's access to resident line should hit")
	}
	if c.Resident(1) != 0 || c.Resident(2) != 1 {
		t.Fatalf("ownership transfer failed: r1=%d r2=%d", c.Resident(1), c.Resident(2))
	}
}

func TestFlush(t *testing.T) {
	c := MustNew(small())
	for i := 0; i < 10; i++ {
		c.Access(3, uint64(i*16))
	}
	c.Flush()
	if c.Occupied() != 0 || c.Resident(3) != 0 {
		t.Fatal("flush left residents")
	}
	if c.Access(3, 0) {
		t.Fatal("post-flush access hit")
	}
	// Stats survive flush.
	if c.Stats().Accesses != 11 {
		t.Errorf("accesses = %d, want 11", c.Stats().Accesses)
	}
}

func TestInvalidateOwner(t *testing.T) {
	c := MustNew(small())
	for i := 0; i < 4; i++ {
		c.Access(1, uint64(i*16))
	}
	for i := 4; i < 8; i++ {
		c.Access(2, uint64(i*16))
	}
	if n := c.InvalidateOwner(1); n != 4 {
		t.Fatalf("invalidated %d lines, want 4", n)
	}
	if c.Resident(1) != 0 || c.Resident(2) != 4 {
		t.Fatal("invalidate touched the wrong owner")
	}
	if n := c.InvalidateOwner(99); n != 0 {
		t.Fatalf("invalidating absent owner returned %d", n)
	}
}

func TestNegativeOwnerPanics(t *testing.T) {
	c := MustNew(small())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative owner")
		}
	}()
	c.Access(-1, 0)
}

func TestCapacityBound(t *testing.T) {
	c := MustNew(small())
	for i := 0; i < 1000; i++ {
		c.Access(1, uint64(i*16))
	}
	if got := c.Occupied(); got != 16 {
		t.Errorf("Occupied = %d, want capacity 16", got)
	}
	if got := c.Resident(1); got != 16 {
		t.Errorf("Resident = %d, want 16", got)
	}
}

func TestWorkingSetSmallerThanCacheAllHitsAfterWarmup(t *testing.T) {
	c := MustNew(SymmetryConfig())
	// 1000 distinct lines, well under 4096 capacity.
	for i := 0; i < 1000; i++ {
		c.Access(1, uint64(i*16))
	}
	st0 := c.Stats()
	for pass := 0; pass < 5; pass++ {
		for i := 0; i < 1000; i++ {
			if !c.Access(1, uint64(i*16)) {
				t.Fatalf("pass %d line %d missed after warmup", pass, i)
			}
		}
	}
	st1 := c.Stats()
	if st1.Misses != st0.Misses {
		t.Fatalf("misses grew from %d to %d on warm working set", st0.Misses, st1.Misses)
	}
}

func TestMissRatio(t *testing.T) {
	var s Stats
	if s.MissRatio() != 0 {
		t.Error("MissRatio of zero stats should be 0")
	}
	s = Stats{Accesses: 4, Misses: 1}
	if s.MissRatio() != 0.25 {
		t.Errorf("MissRatio = %v", s.MissRatio())
	}
}

// Property: occupancy never exceeds capacity, residency sums to occupancy,
// and per-owner residency is never negative — under arbitrary access,
// flush, and invalidate sequences.
func TestQuickInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed, 0)
		c := MustNew(small())
		for step := 0; step < 2000; step++ {
			switch rng.Intn(20) {
			case 0:
				c.Flush()
			case 1:
				c.InvalidateOwner(rng.Intn(3))
			default:
				c.Access(rng.Intn(3), uint64(rng.Intn(64)*16))
			}
			occ := c.Occupied()
			if occ < 0 || occ > c.Config().Lines() {
				return false
			}
			sum := 0
			for _, o := range c.Owners() {
				r := c.Resident(o)
				if r < 0 {
					return false
				}
				sum += r
			}
			if sum != occ {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: an access always hits immediately after an access to the same
// line by any owner, unless a flush/invalidate intervened.
func TestQuickRepeatHit(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed, 1)
		c := MustNew(small())
		for step := 0; step < 500; step++ {
			addr := uint64(rng.Intn(64) * 16)
			owner := rng.Intn(3)
			c.Access(owner, addr)
			if !c.Access(owner, addr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAccessHot(b *testing.B) {
	c := MustNew(SymmetryConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Access(1, uint64(i%1024)*16)
	}
}

func BenchmarkAccessThrash(b *testing.B) {
	c := MustNew(SymmetryConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Access(1, uint64(i%100000)*16)
	}
}

func TestClone(t *testing.T) {
	c := MustNew(small())
	for i := 0; i < 10; i++ {
		c.Access(1, uint64(i*16))
	}
	cl := c.Clone()
	// Same contents.
	if cl.Resident(1) != c.Resident(1) || cl.Occupied() != c.Occupied() {
		t.Fatal("clone contents differ")
	}
	if !cl.Access(1, 0) {
		t.Fatal("clone missed a line the original holds")
	}
	// Independence: touching the clone leaves the original unchanged.
	for i := 100; i < 120; i++ {
		cl.Access(2, uint64(i*16))
	}
	if c.Resident(2) != 0 {
		t.Fatal("mutating the clone leaked into the original")
	}
	if c.Stats().Accesses != 10 {
		t.Fatalf("original stats changed: %+v", c.Stats())
	}
}

func TestInvalidateN(t *testing.T) {
	c := MustNew(small())
	for i := 0; i < 8; i++ {
		c.Access(1, uint64(i*16))
	}
	if got := c.InvalidateN(1, 3); got != 3 {
		t.Errorf("InvalidateN = %d, want 3", got)
	}
	if c.Resident(1) != 5 {
		t.Errorf("Resident = %d, want 5", c.Resident(1))
	}
	// Removing more than resident clamps.
	if got := c.InvalidateN(1, 100); got != 5 {
		t.Errorf("clamped InvalidateN = %d, want 5", got)
	}
	if c.Resident(1) != 0 {
		t.Errorf("Resident = %d, want 0", c.Resident(1))
	}
	if got := c.InvalidateN(1, 1); got != 0 {
		t.Errorf("empty InvalidateN = %d", got)
	}
	if got := c.InvalidateN(1, 0); got != 0 {
		t.Errorf("zero InvalidateN = %d", got)
	}
}
