package model

import (
	"fmt"
	"math"
)

// Hierarchy is the simple two-level cache + central memory model the paper
// analyzes in Section 7.2 to justify its √speed miss-resolution assumption:
// "we analyzed a simple model consisting of two levels of cache memory and
// a single central memory. We found that because multiprocessor hit rates
// may already be expected to be quite high, there was little room for
// improvement: hit rates could not be increased enough to obviate the need
// for faster miss resolution."
//
// Times are in arbitrary units (conventionally first-level-cache cycles).
type Hierarchy struct {
	// H1 and H2 are the first- and second-level hit rates in [0, 1]
	// (H2 is the local hit rate of references that miss in L1).
	H1, H2 float64
	// T1, T2 and TMem are the access times of the first-level cache, the
	// second-level cache, and central memory.
	T1, T2, TMem float64
}

// Validate checks the hierarchy's parameters.
func (h Hierarchy) Validate() error {
	if h.H1 < 0 || h.H1 > 1 || h.H2 < 0 || h.H2 > 1 {
		return fmt.Errorf("model: hit rates %v/%v outside [0,1]", h.H1, h.H2)
	}
	if h.T1 <= 0 || h.T2 <= h.T1 || h.TMem <= h.T2 {
		return fmt.Errorf("model: access times must satisfy 0 < T1 < T2 < TMem, got %v/%v/%v",
			h.T1, h.T2, h.TMem)
	}
	return nil
}

// SymmetryHierarchy returns plausible 1991-era parameters: a 1-cycle L1, a
// 5-cycle L2, 40-cycle memory, and the high multiprocessor hit rates the
// paper assumes (95% L1, 80% of L1 misses caught by L2).
func SymmetryHierarchy() Hierarchy {
	return Hierarchy{H1: 0.95, H2: 0.80, T1: 1, T2: 5, TMem: 40}
}

// EffectiveAccess returns the mean memory access time:
// T1 + (1−H1)·(T2 + (1−H2)·TMem).
func (h Hierarchy) EffectiveAccess() float64 {
	return h.T1 + (1-h.H1)*(h.T2+(1-h.H2)*h.TMem)
}

// PracticalH1Ceiling is the highest first-level hit rate treated as
// achievable by real programs. The paper's Section-7.2 argument is exactly
// that multiprocessor hit rates are "already quite high" with "little room
// for improvement": required rates above this ceiling are infeasible even
// though they are arithmetically below one.
const PracticalH1Ceiling = 0.99

// RequiredH1 computes the first-level hit rate needed to keep the effective
// access time constant *in seconds* on a machine 'speed' times faster —
// i.e. EffectiveAccess must shrink to 1/speed of today's with cycle-scaled
// caches (T1, T2 shrink with speed) but memory latency fixed in seconds
// (TMem grows 'speed'× in cycles). The boolean reports whether the
// requirement is practically achievable (≤ PracticalH1Ceiling); beyond a
// modest speed it is not, which is the paper's point.
func (h Hierarchy) RequiredH1(speed float64) (float64, bool) {
	if speed <= 0 {
		return math.NaN(), false
	}
	// In cycle units of the faster machine: T1, T2 unchanged (they scale
	// with the clock), TMem_cycles = TMem * speed (fixed real latency).
	// Target: effective access in *seconds* unchanged relative to compute,
	// i.e. effective cycles must stay at today's EffectiveAccess().
	target := h.EffectiveAccess()
	memCycles := h.TMem * speed
	// target = T1 + (1-H1')*(T2 + (1-H2)*memCycles)  =>
	perMiss := h.T2 + (1-h.H2)*memCycles
	needMissRate := (target - h.T1) / perMiss
	h1 := 1 - needMissRate
	return h1, h1 <= PracticalH1Ceiling && needMissRate >= 0
}

// RequiredMemorySpeedup computes how much faster memory (miss resolution)
// must become, with hit rates held fixed, for the effective access time in
// seconds to keep pace with a 'speed'-times-faster processor. The paper
// adopts √speed as the achievable compromise; this function quantifies the
// full requirement (≈ speed for hit rates near today's).
func (h Hierarchy) RequiredMemorySpeedup(speed float64) float64 {
	if speed <= 1 {
		return 1
	}
	// Keeping effective cycles constant while the clock shrinks 1/speed
	// requires TMem (and T2, but memory dominates) to stay constant in
	// cycles, i.e. shrink 'speed'× in seconds.
	return speed
}

// HierarchyAnalysis is one row of the Section-7.2 feasibility table.
type HierarchyAnalysis struct {
	Speed      float64
	RequiredH1 float64
	Feasible   bool
	// EffectiveSlowdown is the factor by which memory stalls dilate
	// compute if hit rates stay fixed and miss resolution only improves
	// by √speed (the paper's assumption).
	EffectiveSlowdown float64
}

// AnalyzeHierarchy evaluates the feasibility of hit-rate-only scaling for a
// range of processor speeds, reproducing the Section-7.2 argument.
func AnalyzeHierarchy(h Hierarchy, speeds []float64) ([]HierarchyAnalysis, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	var out []HierarchyAnalysis
	base := h.EffectiveAccess()
	for _, s := range speeds {
		if s <= 0 {
			return nil, fmt.Errorf("model: non-positive speed %v", s)
		}
		h1, ok := h.RequiredH1(s)
		// With miss resolution improved √s (paper's assumption), memory
		// costs s/√s = √s more cycles; effective access in cycles:
		eff := h.T1 + (1-h.H1)*(h.T2+(1-h.H2)*h.TMem*s/math.Sqrt(s))
		out = append(out, HierarchyAnalysis{
			Speed:             s,
			RequiredH1:        h1,
			Feasible:          ok,
			EffectiveSlowdown: eff / base,
		})
	}
	return out, nil
}
