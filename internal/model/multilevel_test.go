package model

import (
	"math"
	"testing"
)

func TestHierarchyValidate(t *testing.T) {
	if err := SymmetryHierarchy().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Hierarchy{
		{H1: -0.1, H2: 0.5, T1: 1, T2: 5, TMem: 40},
		{H1: 0.9, H2: 1.5, T1: 1, T2: 5, TMem: 40},
		{H1: 0.9, H2: 0.5, T1: 0, T2: 5, TMem: 40},
		{H1: 0.9, H2: 0.5, T1: 5, T2: 5, TMem: 40},  // T2 not > T1
		{H1: 0.9, H2: 0.5, T1: 1, T2: 40, TMem: 40}, // TMem not > T2
	}
	for i, h := range bad {
		if err := h.Validate(); err == nil {
			t.Errorf("bad hierarchy %d accepted", i)
		}
	}
}

// Hit rates of exactly 0 and exactly 1 are legal boundary values — only
// rates outside [0,1] are parameter errors.
func TestHierarchyValidateBoundaries(t *testing.T) {
	for _, h := range []Hierarchy{
		{H1: 0, H2: 0, T1: 1, T2: 5, TMem: 40},
		{H1: 1, H2: 1, T1: 1, T2: 5, TMem: 40},
	} {
		if err := h.Validate(); err != nil {
			t.Errorf("boundary hierarchy %+v rejected: %v", h, err)
		}
	}
}

// Raising either hit rate must strictly lower the mean access time: H1
// short-circuits the whole miss path, H2 the memory leg of it.
func TestEffectiveAccessMonotoneInHitRates(t *testing.T) {
	base := Hierarchy{H1: 0.5, H2: 0.5, T1: 1, T2: 5, TMem: 40}
	prev := math.Inf(1)
	for h1 := 0.0; h1 <= 1.0; h1 += 0.05 {
		h := base
		h.H1 = h1
		if got := h.EffectiveAccess(); got >= prev {
			t.Fatalf("EffectiveAccess not decreasing in H1 at %v: %v >= %v", h1, got, prev)
		} else {
			prev = got
		}
	}
	prev = math.Inf(1)
	for h2 := 0.0; h2 <= 1.0; h2 += 0.05 {
		h := base
		h.H2 = h2
		if got := h.EffectiveAccess(); got >= prev {
			t.Fatalf("EffectiveAccess not decreasing in H2 at %v: %v >= %v", h2, got, prev)
		} else {
			prev = got
		}
	}
	// With perfect first-level hits, only T1 remains.
	perfect := Hierarchy{H1: 1, H2: 0, T1: 1, T2: 5, TMem: 40}
	if got := perfect.EffectiveAccess(); got != perfect.T1 {
		t.Errorf("H1=1 effective access = %v, want T1 = %v", got, perfect.T1)
	}
}

// Section 7.2, at the paper's quoted hit rates (95% L1, 80% of L1 misses
// caught by L2): "hit rates could not be increased enough to obviate the
// need for faster miss resolution." Quantified: pushing H1 from 95% to the
// practical ceiling buys well under a 2x access-time improvement, so
// hit-rate-only scaling is already infeasible by a one-generation (8x)
// processor speedup.
func TestLittleRoomForImprovement(t *testing.T) {
	h := SymmetryHierarchy()
	ceiling := h
	ceiling.H1 = PracticalH1Ceiling
	gain := h.EffectiveAccess() / ceiling.EffectiveAccess()
	if gain <= 1 || gain >= 2 {
		t.Errorf("hit-rate headroom = %.3fx; the 'little room' claim expects a gain in (1, 2)", gain)
	}
	if _, ok := h.RequiredH1(4); !ok {
		t.Error("speed 4 should still be within the practical H1 ceiling")
	}
	if h1, ok := h.RequiredH1(8); ok {
		t.Errorf("speed 8 claimed feasible (required H1 %.4f) — contradicts Section 7.2", h1)
	}
}

func TestEffectiveAccessKnownValue(t *testing.T) {
	h := Hierarchy{H1: 0.9, H2: 0.5, T1: 1, T2: 10, TMem: 100}
	// 1 + 0.1*(10 + 0.5*100) = 1 + 6 = 7
	if got := h.EffectiveAccess(); math.Abs(got-7) > 1e-12 {
		t.Errorf("EffectiveAccess = %v, want 7", got)
	}
}

func TestRequiredH1AtUnitSpeedIsCurrent(t *testing.T) {
	h := SymmetryHierarchy()
	h1, ok := h.RequiredH1(1)
	if !ok {
		t.Fatal("unit speed infeasible")
	}
	if math.Abs(h1-h.H1) > 1e-9 {
		t.Errorf("RequiredH1(1) = %v, want %v", h1, h.H1)
	}
}

// The paper's Section-7.2 finding: hit rates cannot be increased enough to
// obviate faster miss resolution — beyond a modest speedup, the required
// first-level hit rate exceeds 1.
func TestHitRatesCannotSaveYou(t *testing.T) {
	h := SymmetryHierarchy()
	// Required H1 is monotone increasing in speed...
	prev := 0.0
	for _, s := range []float64{1, 2, 4, 8} {
		h1, _ := h.RequiredH1(s)
		if h1 < prev {
			t.Errorf("RequiredH1 not monotone at speed %v: %v < %v", s, h1, prev)
		}
		prev = h1
	}
	// ...and already infeasible at large speeds.
	if _, ok := h.RequiredH1(64); ok {
		t.Error("hit-rate-only scaling claimed feasible at 64x — contradicts the paper")
	}
	if math.IsNaN(prev) {
		t.Error("RequiredH1 returned NaN for positive speed")
	}
	if _, ok := h.RequiredH1(-1); ok {
		t.Error("negative speed feasible")
	}
}

func TestRequiredMemorySpeedup(t *testing.T) {
	h := SymmetryHierarchy()
	if got := h.RequiredMemorySpeedup(0.5); got != 1 {
		t.Errorf("sub-unit speed should need no memory speedup, got %v", got)
	}
	if got := h.RequiredMemorySpeedup(16); got != 16 {
		t.Errorf("full requirement = %v, want 16 (memory must keep pace)", got)
	}
}

func TestAnalyzeHierarchy(t *testing.T) {
	h := SymmetryHierarchy()
	rows, err := AnalyzeHierarchy(h, []float64{1, 4, 16, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Slowdown under the paper's sqrt(speed) miss-resolution assumption
	// grows with speed but stays far below linear dilation.
	if rows[0].EffectiveSlowdown != 1 {
		t.Errorf("slowdown at speed 1 = %v", rows[0].EffectiveSlowdown)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].EffectiveSlowdown <= rows[i-1].EffectiveSlowdown {
			t.Error("slowdown not increasing with speed")
		}
		if rows[i].EffectiveSlowdown >= rows[i].Speed {
			t.Errorf("slowdown %v at speed %v should be sub-linear",
				rows[i].EffectiveSlowdown, rows[i].Speed)
		}
	}
	// Feasibility flips from true to false somewhere.
	if !rows[0].Feasible {
		t.Error("speed 1 must be feasible")
	}
	if rows[3].Feasible {
		t.Error("speed 64 must be infeasible")
	}
	// Errors propagate.
	if _, err := AnalyzeHierarchy(Hierarchy{}, []float64{1}); err == nil {
		t.Error("invalid hierarchy accepted")
	}
	if _, err := AnalyzeHierarchy(h, []float64{0}); err == nil {
		t.Error("zero speed accepted")
	}
}
