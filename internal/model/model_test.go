package model

import (
	"math"
	"testing"
	"testing/quick"
)

// dyn returns plausible Dynamic-policy parameters in the regime the
// experiments produce (seconds / processor-seconds).
func dyn() Params {
	return Params{
		// Work is backed out of equation (1) from the measured response
		// time, so a bursty policy with a lower time-averaged allocation
		// also books less model work than the static baseline.
		Work:          220,
		Waste:         5,
		Reallocations: 1100,
		ReallocTime:   750e-6,
		PctAffinity:   0.10,
		PA:            0.0015,
		PNA:           0.0023,
		AvgAlloc:      6.6,
	}
}

// equi returns Equipartition parameters for the same job.
func equi() Params {
	return Params{
		Work:          265,
		Waste:         55,
		Reallocations: 8,
		ReallocTime:   750e-6,
		PctAffinity:   0,
		PA:            0.0015,
		PNA:           0.0023,
		AvgAlloc:      8,
	}
}

func TestValidate(t *testing.T) {
	if err := dyn().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Params){
		func(p *Params) { p.Work = -1 },
		func(p *Params) { p.PctAffinity = 1.5 },
		func(p *Params) { p.AvgAlloc = 0 },
		func(p *Params) { p.PNA = -1 },
	}
	for i, mut := range bad {
		p := dyn()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestCachePenaltyEq2(t *testing.T) {
	p := Params{PctAffinity: 0.25, PA: 0.001, PNA: 0.003}
	want := 0.25*0.001 + 0.75*0.003
	if got := p.CachePenalty(); math.Abs(got-want) > 1e-15 {
		t.Errorf("CachePenalty = %v, want %v", got, want)
	}
}

func TestResponseTimeEq1(t *testing.T) {
	p := Params{
		Work: 100, Waste: 20, Reallocations: 50,
		ReallocTime: 0.001, PctAffinity: 0.5, PA: 0.002, PNA: 0.004,
		AvgAlloc: 4,
	}
	penalty := 0.5*0.002 + 0.5*0.004 // 0.003
	want := (100 + 20 + 50*(0.001+penalty)) / 4
	if got := p.ResponseTime(); math.Abs(got-want) > 1e-12 {
		t.Errorf("ResponseTime = %v, want %v", got, want)
	}
}

func TestFutureReducesToBaselineAtUnity(t *testing.T) {
	p := dyn()
	f := Future{Speed: 1, CacheSize: 1}
	if math.Abs(p.FutureResponseTime(f)-p.ResponseTime()) > 1e-12 {
		t.Errorf("future model at (1,1): %v vs %v", p.FutureResponseTime(f), p.ResponseTime())
	}
	if math.Abs(p.FutureCachePenalty(f)-p.CachePenalty()) > 1e-15 {
		t.Error("future penalty at (1,1) differs from eq (2)")
	}
}

func TestFutureScalingDirections(t *testing.T) {
	p := dyn()
	base := p.FutureResponseTime(Future{Speed: 1, CacheSize: 1})
	faster := p.FutureResponseTime(Future{Speed: 4, CacheSize: 1})
	if faster >= base {
		t.Errorf("faster processor did not reduce RT: %v vs %v", faster, base)
	}
	// A larger cache raises the no-affinity penalty (√c) for a
	// low-affinity policy, so RT grows slightly.
	bigger := p.FutureResponseTime(Future{Speed: 1, CacheSize: 4})
	if bigger <= base {
		t.Errorf("larger cache should raise a no-affinity policy's penalty: %v vs %v", bigger, base)
	}
	// For a perfect-affinity policy, a larger cache helps.
	pa := p
	pa.PctAffinity = 1
	if pa.FutureResponseTime(Future{Speed: 1, CacheSize: 4}) >= pa.FutureResponseTime(Future{Speed: 1, CacheSize: 1}) {
		t.Error("larger cache should cut a perfect-affinity policy's penalty")
	}
}

func scenario() Scenario {
	aff := dyn()
	aff.PctAffinity = 0.97
	return Scenario{
		Name:     "test",
		Baseline: "Equipartition",
		Policies: map[string]Params{
			"Equipartition": equi(),
			"Dynamic":       dyn(),
			"Dyn-Aff":       aff,
		},
	}
}

func TestScenarioValidate(t *testing.T) {
	if err := scenario().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Scenario{Name: "x"}).Validate(); err == nil {
		t.Error("empty scenario accepted")
	}
	s := scenario()
	s.Baseline = "nope"
	if err := s.Validate(); err == nil {
		t.Error("missing baseline accepted")
	}
}

func TestRelativeRTBasics(t *testing.T) {
	sc := scenario()
	v, err := sc.RelativeRT("Dynamic", Future{Speed: 1, CacheSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if v >= 1 {
		t.Errorf("Dynamic relative RT at baseline = %v, want < 1 (it beats Equipartition today)", v)
	}
	if _, err := sc.RelativeRT("nope", Future{Speed: 1, CacheSize: 1}); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := sc.RelativeRT("Dynamic", Future{}); err == nil {
		t.Error("invalid future accepted")
	}
}

// The paper's Section-7 headline: as the speed×cache product grows, the
// oblivious Dynamic policy's relative RT rises (its many no-affinity
// reallocations cost √c-growing penalties), while the affinity variant
// stays flatter; eventually the curves diverge.
func TestDynamicDegradesFasterThanDynAff(t *testing.T) {
	sc := scenario()
	products := []float64{1, 64, 1024}
	dynRel, err := sc.SweepProduct("Dynamic", products)
	if err != nil {
		t.Fatal(err)
	}
	affRel, err := sc.SweepProduct("Dyn-Aff", products)
	if err != nil {
		t.Fatal(err)
	}
	if dynRel[2] <= dynRel[0] {
		t.Errorf("Dynamic relative RT did not rise with product: %v", dynRel)
	}
	gapStart := dynRel[0] - affRel[0]
	gapEnd := dynRel[2] - affRel[2]
	if gapEnd <= gapStart {
		t.Errorf("Dynamic/Dyn-Aff divergence did not grow: %v vs %v", gapStart, gapEnd)
	}
}

func TestCrossover(t *testing.T) {
	sc := scenario()
	products := Products(1<<20, 2)
	cross, err := sc.Crossover("Dynamic", products)
	if err != nil {
		t.Fatal(err)
	}
	if cross <= 1 {
		t.Errorf("Dynamic crossover at product %v, want far in the future", cross)
	}
	// The affinity variant should cross later (or never, within range).
	crossAff, err := sc.Crossover("Dyn-Aff", products)
	if err != nil {
		t.Fatal(err)
	}
	if crossAff != 0 && crossAff < cross {
		t.Errorf("Dyn-Aff crossed (%v) before Dynamic (%v)", crossAff, cross)
	}
}

// The paper reports that relative response times depend (to three
// significant digits) only on the product speed×cache. The affinity term
// P^A/(c√s) breaks exact invariance, but it is negligible; verify the
// observation numerically.
func TestProductInvarianceApproximately(t *testing.T) {
	sc := scenario()
	for _, policy := range []string{"Dynamic", "Dyn-Aff"} {
		for _, prod := range []float64{16, 256, 4096} {
			var vals []float64
			for _, split := range []float64{1, 4, 16} {
				speed := split
				cache := prod / split
				v, err := sc.RelativeRT(policy, Future{Speed: speed, CacheSize: cache})
				if err != nil {
					t.Fatal(err)
				}
				vals = append(vals, v)
			}
			for _, v := range vals[1:] {
				// The P^A/(c√s) term breaks exact invariance; it is small
				// but not invisible for high-affinity policies at modest
				// products, so allow 3%.
				if math.Abs(v-vals[0])/vals[0] > 0.03 {
					t.Errorf("%s product %v: relative RT varies with split: %v", policy, prod, vals)
				}
			}
		}
	}
}

func TestProducts(t *testing.T) {
	ps := Products(16, 1)
	want := []float64{1, 2, 4, 8, 16}
	if len(ps) != len(want) {
		t.Fatalf("Products = %v", ps)
	}
	for i := range want {
		if math.Abs(ps[i]-want[i]) > 1e-9 {
			t.Fatalf("Products = %v", ps)
		}
	}
	if got := Products(0, 1); len(got) != 1 || got[0] != 1 {
		t.Errorf("degenerate Products = %v", got)
	}
}

func TestSweepRejectsBadProduct(t *testing.T) {
	sc := scenario()
	if _, err := sc.SweepProduct("Dynamic", []float64{0}); err == nil {
		t.Error("zero product accepted")
	}
}

// Property: future response time is positive and decreasing in speed for
// any valid parameters.
func TestQuickFutureMonotoneInSpeed(t *testing.T) {
	f := func(workRaw, nRaw uint16, affRaw uint8) bool {
		p := Params{
			Work:          float64(workRaw%1000) + 1,
			Waste:         10,
			Reallocations: float64(nRaw % 5000),
			ReallocTime:   750e-6,
			PctAffinity:   float64(affRaw%101) / 100,
			PA:            0.0015,
			PNA:           0.0023,
			AvgAlloc:      8,
		}
		prev := math.Inf(1)
		for _, s := range []float64{1, 2, 4, 8, 16} {
			v := p.FutureResponseTime(Future{Speed: s, CacheSize: 1})
			if v <= 0 || v >= prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
