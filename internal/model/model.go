// Package model implements the paper's analytic response-time model:
// equations (1) and (2) of Figure 1, and the Figure 7 extension used in
// Section 7 to extrapolate policy behaviour to future machines with faster
// processors and larger caches.
//
// Equation (1):
//
//	RT = (work + waste + #reallocations × (reallocation-time + cache-penalty)) / average-allocation
//
// Equation (2):
//
//	cache-penalty = %affinity × P^A + %no-affinity × P^NA
//
// Figure 7 extension, with s = processor-speed and c = cache-size relative
// to the baseline machine:
//
//	RT = ((work + waste)/s + #reallocations × (reallocation-time/s + penalty_future/√s)) / average-allocation
//	penalty_future = %affinity × P^A / c  +  %no-affinity × P^NA × √c
//
// All parameters are measured: work/waste/#reallocations/%affinity/
// average-allocation from the scheduling experiments (internal/sched) and
// P^A/P^NA from the Section-4 harness (internal/measure); see
// internal/experiments for the wiring.
package model

import (
	"fmt"
	"math"
)

// Params holds the measured model parameters for one job under one policy.
// Times are in seconds; Work and Waste are processor-seconds on the
// baseline machine.
type Params struct {
	// Work is the useful processing (processor-seconds).
	Work float64
	// Waste is processor time held without work (processor-seconds).
	Waste float64
	// Reallocations is the number of processor reallocations.
	Reallocations float64
	// ReallocTime is the kernel path length of one reallocation (seconds).
	ReallocTime float64
	// PctAffinity is the fraction of reallocations that resumed a task on
	// a processor for which it had affinity, in [0, 1].
	PctAffinity float64
	// PA and PNA are the per-reallocation cache penalties (seconds).
	PA, PNA float64
	// AvgAlloc is the average number of processors allocated.
	AvgAlloc float64
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	switch {
	case p.Work < 0, p.Waste < 0, p.Reallocations < 0, p.ReallocTime < 0, p.PA < 0, p.PNA < 0:
		return fmt.Errorf("model: negative parameter in %+v", p)
	case p.PctAffinity < 0 || p.PctAffinity > 1:
		return fmt.Errorf("model: %%affinity %v outside [0,1]", p.PctAffinity)
	case p.AvgAlloc <= 0:
		return fmt.Errorf("model: average allocation must be positive, got %v", p.AvgAlloc)
	}
	return nil
}

// CachePenalty evaluates equation (2): the expected cache penalty of one
// reallocation, in seconds.
func (p Params) CachePenalty() float64 {
	return p.PctAffinity*p.PA + (1-p.PctAffinity)*p.PNA
}

// ResponseTime evaluates equation (1) for the baseline machine, in seconds.
func (p Params) ResponseTime() float64 {
	return (p.Work + p.Waste + p.Reallocations*(p.ReallocTime+p.CachePenalty())) / p.AvgAlloc
}

// Future describes a future machine relative to the baseline: processor
// speed factor and cache size factor.
type Future struct {
	Speed     float64
	CacheSize float64
}

// Validate checks the scaling factors.
func (f Future) Validate() error {
	if f.Speed <= 0 || f.CacheSize <= 0 {
		return fmt.Errorf("model: future factors must be positive, got %+v", f)
	}
	return nil
}

// Product returns speed × cache-size, the x-axis of the paper's
// Figures 8-13.
func (f Future) Product() float64 { return f.Speed * f.CacheSize }

// FutureCachePenalty evaluates the Figure-7 penalty term: larger caches
// shrink the affinity penalty linearly (more context survives) but grow the
// no-affinity penalty as √cache-size (more data worth reloading).
func (p Params) FutureCachePenalty(f Future) float64 {
	return p.PctAffinity*p.PA/f.CacheSize + (1-p.PctAffinity)*p.PNA*math.Sqrt(f.CacheSize)
}

// FutureResponseTime evaluates the Figure-7 model: computation scales with
// processor speed, miss resolution with √speed.
func (p Params) FutureResponseTime(f Future) float64 {
	sqrtS := math.Sqrt(f.Speed)
	return ((p.Work+p.Waste)/f.Speed +
		p.Reallocations*(p.ReallocTime/f.Speed+p.FutureCachePenalty(f)/sqrtS)) / p.AvgAlloc
}

// Scenario bundles per-policy parameters for one job of one workload, so
// policies can be compared against a baseline (the paper uses
// Equipartition).
type Scenario struct {
	// Name identifies the workload/job ("wkload5 - grav", ...).
	Name string
	// Baseline is the reference policy name.
	Baseline string
	// Policies maps policy name to measured parameters.
	Policies map[string]Params
}

// Validate checks the scenario.
func (sc Scenario) Validate() error {
	if len(sc.Policies) == 0 {
		return fmt.Errorf("model: scenario %q has no policies", sc.Name)
	}
	if _, ok := sc.Policies[sc.Baseline]; !ok {
		return fmt.Errorf("model: scenario %q lacks baseline %q", sc.Name, sc.Baseline)
	}
	for name, p := range sc.Policies {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("model: scenario %q policy %q: %w", sc.Name, name, err)
		}
	}
	return nil
}

// RelativeRT returns policy's future response time divided by the
// baseline's, at the given machine factors.
func (sc Scenario) RelativeRT(policy string, f Future) (float64, error) {
	if err := f.Validate(); err != nil {
		return 0, err
	}
	p, ok := sc.Policies[policy]
	if !ok {
		return 0, fmt.Errorf("model: scenario %q has no policy %q", sc.Name, policy)
	}
	base := sc.Policies[sc.Baseline]
	b := base.FutureResponseTime(f)
	if b == 0 {
		return math.NaN(), nil
	}
	return p.FutureResponseTime(f) / b, nil
}

// SweepProduct evaluates RelativeRT along a product axis, splitting each
// product evenly between speed and cache (speed = cache = √product), as the
// paper does when presenting Figures 8-13. It returns one value per
// product.
func (sc Scenario) SweepProduct(policy string, products []float64) ([]float64, error) {
	out := make([]float64, 0, len(products))
	for _, prod := range products {
		if prod <= 0 {
			return nil, fmt.Errorf("model: non-positive product %v", prod)
		}
		s := math.Sqrt(prod)
		v, err := sc.RelativeRT(policy, Future{Speed: s, CacheSize: s})
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// Crossover returns the smallest product in the sweep at which the policy's
// relative response time reaches or exceeds 1.0 (i.e. the dynamic policy
// stops beating the baseline), or 0 if it never does.
func (sc Scenario) Crossover(policy string, products []float64) (float64, error) {
	rel, err := sc.SweepProduct(policy, products)
	if err != nil {
		return 0, err
	}
	for i, v := range rel {
		if v >= 1.0 {
			return products[i], nil
		}
	}
	return 0, nil
}

// Products returns a logarithmic product axis 1, …, max with the given
// number of points per factor-of-two, suitable for the Figures 8-13 x-axis.
func Products(max float64, perDoubling int) []float64 {
	if max < 1 || perDoubling < 1 {
		return []float64{1}
	}
	var out []float64
	step := math.Pow(2, 1/float64(perDoubling))
	for v := 1.0; v <= max*1.0000001; v *= step {
		out = append(out, v)
	}
	return out
}
