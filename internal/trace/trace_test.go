package trace

import (
	"strings"
	"testing"

	"repro/internal/simtime"
)

func TestNilLogSafe(t *testing.T) {
	var l *Log
	l.Record(Event{Kind: Dispatch})
	if l.Len() != 0 || l.Events() != nil {
		t.Fatal("nil log not inert")
	}
}

func TestRecordAndCounts(t *testing.T) {
	var l Log
	l.Record(Event{Kind: Dispatch, Proc: 0, Job: 0})
	l.Record(Event{Kind: Dispatch, Proc: 1, Job: 1})
	l.Record(Event{Kind: Preempt, Proc: 0, Job: 0})
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	c := l.Counts()
	if c[Dispatch] != 2 || c[Preempt] != 1 {
		t.Fatalf("Counts = %v", c)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		JobArrive: "arrive", JobComplete: "complete", Dispatch: "dispatch",
		Preempt: "preempt", Idle: "idle", Yield: "yield", Release: "release",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind empty")
	}
}

func TestJobGlyph(t *testing.T) {
	cases := map[int]byte{-1: ' ', 0: 'A', 25: 'Z', 26: 'a', 51: 'z', 52: '#'}
	for job, want := range cases {
		if got := jobGlyph(job); got != want {
			t.Errorf("jobGlyph(%d) = %c, want %c", job, got, want)
		}
	}
}

func sec(s int64) simtime.Time { return simtime.Time(s) * simtime.Time(simtime.Second) }

func TestGanttBasic(t *testing.T) {
	events := []Event{
		{At: sec(0), Kind: Dispatch, Proc: 0, Job: 0},
		{At: sec(5), Kind: Preempt, Proc: 0, Job: 0},
		{At: sec(5), Kind: Dispatch, Proc: 0, Job: 1, Realloc: true},
		{At: sec(0), Kind: Dispatch, Proc: 1, Job: 1},
		{At: sec(8), Kind: Idle, Proc: 1, Job: 1},
	}
	out := Gantt(events, 2, sec(0), sec(10), 20, false)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("gantt lines = %d:\n%s", len(lines), out)
	}
	cpu0, cpu1 := lines[1], lines[2]
	if !strings.Contains(cpu0, "A") || !strings.Contains(cpu0, "B") {
		t.Errorf("cpu0 row missing job transitions: %s", cpu0)
	}
	if !strings.Contains(cpu1, "B") || !strings.Contains(cpu1, ".") {
		t.Errorf("cpu1 row missing idle marker: %s", cpu1)
	}
	// Ordering within cpu0: A's run precedes B's.
	if strings.Index(cpu0, "A") > strings.LastIndex(cpu0, "B") {
		t.Errorf("cpu0 timeline out of order: %s", cpu0)
	}
}

func TestGanttReallocMarks(t *testing.T) {
	events := []Event{
		{At: sec(0), Kind: Dispatch, Proc: 0, Job: 0},
		{At: sec(5), Kind: Dispatch, Proc: 0, Job: 1, Realloc: true},
	}
	out := Gantt(events, 1, sec(0), sec(10), 20, true)
	if !strings.Contains(out, "|") {
		t.Errorf("no reallocation mark:\n%s", out)
	}
}

func TestGanttEdgeCases(t *testing.T) {
	if out := Gantt(nil, 2, sec(5), sec(5), 10, false); !strings.Contains(out, "empty") {
		t.Error("degenerate window not flagged")
	}
	// Events outside [start,end) clamp instead of panicking.
	events := []Event{
		{At: sec(100), Kind: Dispatch, Proc: 0, Job: 0},
		{At: sec(0), Kind: Dispatch, Proc: 5, Job: 0}, // proc out of range: skipped
	}
	out := Gantt(events, 1, sec(0), sec(10), 0, false) // width defaulted
	if out == "" {
		t.Error("empty render")
	}
}

func TestWriteSummary(t *testing.T) {
	var l Log
	l.Record(Event{Kind: JobArrive, Proc: -1, Job: 0})
	l.Record(Event{Kind: Dispatch, Proc: 0, Job: 0, Task: 0, Realloc: true, Affinity: true})
	l.Record(Event{Kind: Dispatch, Proc: 1, Job: 0, Task: 1, Realloc: true})
	l.Record(Event{Kind: Dispatch, Proc: 0, Job: 0, Task: 0})
	l.Record(Event{Kind: JobComplete, Proc: -1, Job: 0})
	var b strings.Builder
	if err := WriteSummary(&b, &l); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"dispatch", "3", "job A", "2 reallocations", "50% affinity"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
