// Package trace records scheduler decisions during a simulation run and
// renders them as a per-processor Gantt timeline — the visualization the
// paper's authors would have used to debug Minos policies.
//
// Tracing is opt-in: a nil *Log costs a single branch per event.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/simtime"
)

// Kind classifies a scheduler event.
type Kind int

// Scheduler event kinds.
const (
	// JobArrive: a job entered the system (Job set).
	JobArrive Kind = iota
	// JobComplete: a job left the system (Job set).
	JobComplete
	// Dispatch: a task started running (Proc, Job, Task set; Realloc
	// true when the dispatch followed a processor reallocation).
	Dispatch
	// Preempt: a running task was stopped (Proc, Job, Task set).
	Preempt
	// Idle: a processor went idle while still assigned (Proc, Job set).
	Idle
	// Yield: an idle processor was marked willing-to-yield (Proc, Job).
	Yield
	// Release: a processor returned to the unassigned pool (Proc, Job =
	// previous owner).
	Release
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case JobArrive:
		return "arrive"
	case JobComplete:
		return "complete"
	case Dispatch:
		return "dispatch"
	case Preempt:
		return "preempt"
	case Idle:
		return "idle"
	case Yield:
		return "yield"
	case Release:
		return "release"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one recorded scheduler action.
type Event struct {
	At   simtime.Time
	Kind Kind
	Proc int // -1 when not processor-specific
	Job  int
	Task int // -1 when not task-specific
	// Realloc marks dispatches that followed a processor reallocation.
	Realloc bool
	// Affinity marks reallocation dispatches that landed on the task's
	// previous processor.
	Affinity bool
}

// Log accumulates events. The zero value is ready to use. A nil *Log
// discards everything.
type Log struct {
	events []Event
}

// Record appends an event; safe on a nil receiver.
func (l *Log) Record(e Event) {
	if l == nil {
		return
	}
	l.events = append(l.events, e)
}

// Events returns the recorded events in order.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	return l.events
}

// Len returns the number of recorded events.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	return len(l.events)
}

// Counts summarizes events by kind.
func (l *Log) Counts() map[Kind]int {
	out := make(map[Kind]int)
	for _, e := range l.Events() {
		out[e.Kind]++
	}
	return out
}

// jobGlyph maps a job index to a display rune: 'A'-'Z', then 'a'-'z'.
func jobGlyph(job int) byte {
	switch {
	case job < 0:
		return ' '
	case job < 26:
		return byte('A' + job)
	case job < 52:
		return byte('a' + job - 26)
	}
	return '#'
}

// Gantt renders the processor-allocation timeline between start and end as
// one row per processor and width time buckets per row. Cell glyphs:
// a job's letter when a task of that job is running, the lowercase dot '.'
// when the processor is held idle by a job, and ' ' when unassigned.
// Buckets containing a reallocation dispatch are marked with '|' overlay
// when mark is true.
func Gantt(events []Event, procs int, start, end simtime.Time, width int, mark bool) string {
	if width <= 0 {
		width = 80
	}
	if end <= start {
		return "(empty trace window)\n"
	}
	span := float64(end.Sub(start))
	bucketOf := func(at simtime.Time) int {
		b := int(float64(at.Sub(start)) / span * float64(width))
		if b < 0 {
			b = 0
		}
		if b >= width {
			b = width - 1
		}
		return b
	}

	// Reconstruct per-processor state from the event stream.
	type segState struct {
		job     int
		running bool
	}
	grid := make([][]byte, procs)
	for p := range grid {
		grid[p] = []byte(strings.Repeat(" ", width))
	}
	cur := make([]segState, procs)
	for p := range cur {
		cur[p] = segState{job: -1}
	}
	lastBucket := make([]int, procs)

	sorted := append([]Event(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })

	paint := func(p, from, to int) {
		st := cur[p]
		glyph := byte(' ')
		if st.job >= 0 {
			if st.running {
				glyph = jobGlyph(st.job)
			} else {
				glyph = '.'
			}
		}
		for b := from; b <= to && b < width; b++ {
			grid[p][b] = glyph
		}
	}
	for _, e := range sorted {
		if e.Proc < 0 || e.Proc >= procs {
			continue
		}
		b := bucketOf(e.At)
		paint(e.Proc, lastBucket[e.Proc], b)
		lastBucket[e.Proc] = b
		switch e.Kind {
		case Dispatch:
			cur[e.Proc] = segState{job: e.Job, running: true}
			if mark && e.Realloc {
				grid[e.Proc][b] = '|'
				if b+1 <= width {
					lastBucket[e.Proc] = b + 1
				}
			}
		case Preempt, Idle, Yield:
			cur[e.Proc] = segState{job: e.Job, running: false}
		case Release:
			cur[e.Proc] = segState{job: -1}
		}
	}
	for p := 0; p < procs; p++ {
		paint(p, lastBucket[p], width-1)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "processor allocation %v .. %v  (letters = running job, '.' = held idle, '|' = reallocation)\n",
		start, end)
	for p := 0; p < procs; p++ {
		fmt.Fprintf(&b, "cpu%02d |%s|\n", p, string(grid[p]))
	}
	return b.String()
}

// WriteSummary prints per-kind event counts and per-job dispatch/realloc
// statistics.
func WriteSummary(w io.Writer, l *Log) error {
	counts := l.Counts()
	kinds := []Kind{JobArrive, JobComplete, Dispatch, Preempt, Idle, Yield, Release}
	var b strings.Builder
	b.WriteString("trace summary:\n")
	for _, k := range kinds {
		fmt.Fprintf(&b, "  %-9s %6d\n", k, counts[k])
	}
	// Per-job reallocation dispatches and affinity hits.
	type jobStat struct{ dispatches, reallocs, affinity int }
	stats := map[int]*jobStat{}
	var jobs []int
	for _, e := range l.Events() {
		if e.Kind != Dispatch {
			continue
		}
		st, ok := stats[e.Job]
		if !ok {
			st = &jobStat{}
			stats[e.Job] = st
			jobs = append(jobs, e.Job)
		}
		st.dispatches++
		if e.Realloc {
			st.reallocs++
			if e.Affinity {
				st.affinity++
			}
		}
	}
	sort.Ints(jobs)
	for _, j := range jobs {
		st := stats[j]
		pct := 0.0
		if st.reallocs > 0 {
			pct = 100 * float64(st.affinity) / float64(st.reallocs)
		}
		fmt.Fprintf(&b, "  job %c: %d dispatches, %d reallocations, %.0f%% affinity\n",
			jobGlyph(j), st.dispatches, st.reallocs, pct)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
