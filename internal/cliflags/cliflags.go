// Package cliflags factors the flag handling every campaign CLI shares —
// -workers, -seed, -cpuprofile, -memprofile — so the five binaries
// (affinitysim, measurepenalty, policycompare, futuremodel, affinityd)
// define them once, with identical names, defaults, and help text.
package cliflags

import (
	"flag"
	"io"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/profiling"
)

// Common holds the shared flag values after parsing.
type Common struct {
	// Workers bounds concurrent simulation cells (0 = all CPUs,
	// 1 = sequential). Results are identical for every worker count.
	Workers int
	// Seed is the campaign root random seed.
	Seed uint64
	// CPUProfile and MemProfile are pprof output paths ("" = off).
	CPUProfile string
	MemProfile string
	// Stats requests the response-time decomposition table after the
	// campaign's own exhibits (engine counters: reallocations, P^A/P^NA
	// charges, cache-reload transient). The exhibit output itself is
	// unchanged — stats flow out of band.
	Stats bool
	// Engine is the per-cell execution tier for grid-shaped campaigns;
	// set only when the binary called RegisterEngine (empty otherwise,
	// which Apply leaves alone so non-grid binaries are unaffected).
	Engine string

	// collector accumulates SimStats across every campaign Apply is
	// called for; created lazily on first Apply when Stats is set.
	collector *obs.CampaignStats
}

// Register installs the shared flags on fs and returns the value struct
// they parse into.
func Register(fs *flag.FlagSet) *Common {
	c := &Common{}
	fs.IntVar(&c.Workers, "workers", 0, "concurrent simulation cells (0 = all CPUs, 1 = sequential)")
	fs.Uint64Var(&c.Seed, "seed", 1, "root random seed")
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write a heap profile to this file at exit")
	fs.BoolVar(&c.Stats, "stats", false, "print the simulation-counter decomposition table after the exhibits")
	return c
}

// RegisterEngine installs the -engine flag on fs. Binaries that call it
// must validate the parsed value against the campaign kind they drive
// (experiments.ValidateEngine) before running: the flag is uniform
// across the CLIs, but only the grid-shaped kinds accept a tier other
// than the simulator, and a tier that would be ignored is an error, not
// a no-op.
func (c *Common) RegisterEngine(fs *flag.FlagSet) {
	fs.StringVar(&c.Engine, "engine", experiments.EngineSim,
		"per-cell execution tier for grid-shaped campaigns: sim (discrete-event simulator), "+
			"analytic (fast fluid estimator), or auto (analytic only inside the validated envelope)")
}

// Apply copies the shared values onto an experiment campaign's options,
// creating the stats collector when -stats was given. The collector is
// shared across every campaign the binary runs, so the printed table
// totals the whole invocation.
func (c *Common) Apply(opts *experiments.Options) {
	opts.Seed = c.Seed
	opts.Workers = c.Workers
	if c.Engine != "" {
		opts.Engine = c.Engine
	}
	if c.Stats && c.collector == nil {
		c.collector = obs.NewCampaignStats()
	}
	opts.Stats = c.collector
}

// WriteStats renders the accumulated decomposition table to w if -stats
// was given (and any campaign ran); otherwise it is a no-op.
func (c *Common) WriteStats(w io.Writer) error {
	if c.collector == nil {
		return nil
	}
	t := experiments.StatsReport(c.collector)
	return t.Write(w)
}

// StartProfiling begins any requested profiles. The returned stop
// function must run before process exit (it finalizes profile files) and
// its error reported.
func (c *Common) StartProfiling() (stop func() error, err error) {
	return profiling.Start(c.CPUProfile, c.MemProfile)
}
