// Package cliflags factors the flag handling every campaign CLI shares —
// -workers, -seed, -cpuprofile, -memprofile — so the five binaries
// (affinitysim, measurepenalty, policycompare, futuremodel, affinityd)
// define them once, with identical names, defaults, and help text.
package cliflags

import (
	"flag"

	"repro/internal/experiments"
	"repro/internal/profiling"
)

// Common holds the shared flag values after parsing.
type Common struct {
	// Workers bounds concurrent simulation cells (0 = all CPUs,
	// 1 = sequential). Results are identical for every worker count.
	Workers int
	// Seed is the campaign root random seed.
	Seed uint64
	// CPUProfile and MemProfile are pprof output paths ("" = off).
	CPUProfile string
	MemProfile string
}

// Register installs the shared flags on fs and returns the value struct
// they parse into.
func Register(fs *flag.FlagSet) *Common {
	c := &Common{}
	fs.IntVar(&c.Workers, "workers", 0, "concurrent simulation cells (0 = all CPUs, 1 = sequential)")
	fs.Uint64Var(&c.Seed, "seed", 1, "root random seed")
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write a heap profile to this file at exit")
	return c
}

// Apply copies the shared values onto an experiment campaign's options.
func (c *Common) Apply(opts *experiments.Options) {
	opts.Seed = c.Seed
	opts.Workers = c.Workers
}

// StartProfiling begins any requested profiles. The returned stop
// function must run before process exit (it finalizes profile files) and
// its error reported.
func (c *Common) StartProfiling() (stop func() error, err error) {
	return profiling.Start(c.CPUProfile, c.MemProfile)
}
