package cliflags

import (
	"flag"
	"testing"

	"repro/internal/experiments"
)

func TestRegisterDefaults(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	c := Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if c.Workers != 0 || c.Seed != 1 || c.CPUProfile != "" || c.MemProfile != "" {
		t.Errorf("defaults: %+v", c)
	}
}

func TestRegisterParseAndApply(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	c := Register(fs)
	err := fs.Parse([]string{"-workers", "4", "-seed", "99", "-cpuprofile", "cpu.out", "-memprofile", "mem.out"})
	if err != nil {
		t.Fatal(err)
	}
	if c.Workers != 4 || c.Seed != 99 || c.CPUProfile != "cpu.out" || c.MemProfile != "mem.out" {
		t.Errorf("parsed: %+v", c)
	}
	opts := experiments.DefaultOptions()
	c.Apply(&opts)
	if opts.Seed != 99 || opts.Workers != 4 {
		t.Errorf("applied options: seed=%d workers=%d", opts.Seed, opts.Workers)
	}
	if err := opts.Validate(); err != nil {
		t.Errorf("applied options invalid: %v", err)
	}
}

func TestStartProfilingDisabled(t *testing.T) {
	c := &Common{}
	stop, err := c.StartProfiling()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Errorf("stop: %v", err)
	}
}
