package workload

import (
	"fmt"

	"repro/internal/simtime"
)

// ThreadState tracks one thread's lifecycle within a running job.
type ThreadState int

// Thread lifecycle states.
const (
	ThreadBlocked ThreadState = iota // predecessors outstanding
	ThreadReady                      // runnable, not attached to a task
	ThreadRunning                    // attached to a task (running or preempted with it)
	ThreadDone
)

// Job is one executing instance of an App: the dependence graph plus the
// mutable ready-set bookkeeping the scheduler consumes.
type Job struct {
	// ID is the job's index within its simulation run.
	ID int
	// App is the static program description.
	App App

	state     []ThreadState
	preds     []int // outstanding predecessor counts
	ready     []ThreadID
	remaining []simtime.Duration // remaining compute per thread
	attached  int                // threads in ThreadRunning
	finished  int
}

// NewJob instantiates app as job id.
func NewJob(id int, app App) (*Job, error) {
	if err := app.Validate(); err != nil {
		return nil, err
	}
	n := app.Graph.NumThreads()
	j := &Job{
		ID:        id,
		App:       app,
		state:     make([]ThreadState, n),
		preds:     make([]int, n),
		remaining: make([]simtime.Duration, n),
	}
	for t := 0; t < n; t++ {
		th := app.Graph.Thread(ThreadID(t))
		j.preds[t] = th.NPreds
		j.remaining[t] = th.Work
	}
	for _, r := range app.Graph.Roots() {
		j.state[r] = ThreadReady
		j.ready = append(j.ready, r)
	}
	return j, nil
}

// MustNewJob is NewJob for known-good apps.
func MustNewJob(id int, app App) *Job {
	j, err := NewJob(id, app)
	if err != nil {
		panic(err)
	}
	return j
}

// ReadyCount returns the number of runnable, unattached threads.
func (j *Job) ReadyCount() int { return len(j.ready) }

// AttachedCount returns the number of threads attached to tasks.
func (j *Job) AttachedCount() int { return j.attached }

// Demand returns the job's instantaneous processor demand: threads already
// attached to tasks plus runnable threads awaiting one. This is the value
// the job "reflects to the allocator via shared memory" under the Dynamic
// policies.
func (j *Job) Demand() int { return j.attached + len(j.ready) }

// Done reports whether every thread has completed.
func (j *Job) Done() bool { return j.finished == len(j.state) }

// ThreadStateOf returns thread id's current state.
func (j *Job) ThreadStateOf(id ThreadID) ThreadState { return j.state[id] }

// Remaining returns thread id's outstanding compute.
func (j *Job) Remaining(id ThreadID) simtime.Duration { return j.remaining[id] }

// Attach pops a ready thread and marks it attached to a task. It returns
// false when no thread is ready.
func (j *Job) Attach() (ThreadID, bool) {
	if len(j.ready) == 0 {
		return 0, false
	}
	id := j.ready[0]
	j.ready = j.ready[1:]
	j.state[id] = ThreadRunning
	j.attached++
	return id, true
}

// Progress records that the attached thread id executed d of compute. It
// returns the remaining compute.
func (j *Job) Progress(id ThreadID, d simtime.Duration) simtime.Duration {
	if j.state[id] != ThreadRunning {
		panic(fmt.Sprintf("workload: Progress on thread %d in state %v", id, j.state[id]))
	}
	j.remaining[id] -= d
	if j.remaining[id] < 0 {
		j.remaining[id] = 0
	}
	return j.remaining[id]
}

// Complete marks the attached thread id finished and returns the threads
// that became ready as a result.
func (j *Job) Complete(id ThreadID) []ThreadID {
	if j.state[id] != ThreadRunning {
		panic(fmt.Sprintf("workload: Complete on thread %d in state %v", id, j.state[id]))
	}
	j.state[id] = ThreadDone
	j.attached--
	j.finished++
	var newly []ThreadID
	for _, s := range j.App.Graph.Thread(id).Succs {
		j.preds[s]--
		if j.preds[s] == 0 {
			j.state[s] = ThreadReady
			j.ready = append(j.ready, s)
			newly = append(newly, s)
		}
	}
	return newly
}

// Detach returns an attached (but not completed) thread to the ready set,
// used when a task abandons a thread permanently (not for preemption —
// preempted tasks keep their thread, which is why affinity exists).
func (j *Job) Detach(id ThreadID) {
	if j.state[id] != ThreadRunning {
		panic(fmt.Sprintf("workload: Detach on thread %d in state %v", id, j.state[id]))
	}
	j.state[id] = ThreadReady
	j.attached--
	j.ready = append(j.ready, id)
}
