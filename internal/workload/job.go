package workload

import (
	"fmt"

	"repro/internal/simtime"
)

// ThreadState tracks one thread's lifecycle within a running job.
type ThreadState int

// Thread lifecycle states.
const (
	ThreadBlocked ThreadState = iota // predecessors outstanding
	ThreadReady                      // runnable, not attached to a task
	ThreadRunning                    // attached to a task (running or preempted with it)
	ThreadDone
)

// Job is one executing instance of an App: the dependence graph plus the
// mutable ready-set bookkeeping the scheduler consumes.
type Job struct {
	// ID is the job's index within its simulation run.
	ID int
	// App is the static program description.
	App App

	state     []ThreadState
	preds     []int // outstanding predecessor counts
	ready     []ThreadID
	remaining []simtime.Duration // remaining compute per thread
	attached  int                // threads in ThreadRunning
	finished  int

	// readyBuf backs the ready window; Attach advances the window's head
	// while Complete appends at its tail, and since each thread becomes
	// ready exactly once a buffer of NumThreads entries covers a whole run
	// (Detach re-pushes are off the simulator's hot path and simply grow
	// the slice).
	readyBuf []ThreadID
	// newlyScratch backs Complete's return value.
	newlyScratch []ThreadID
}

// NewJob instantiates app as job id.
func NewJob(id int, app App) (*Job, error) {
	j := &Job{}
	if err := j.Reset(id, app); err != nil {
		return nil, err
	}
	return j, nil
}

// Reset reinitialises j in place as a fresh instance of app with the given
// id, reusing j's internal slices. A reset job is indistinguishable from
// NewJob(id, app), which lets long-lived runners recycle Job structures
// across simulation runs without allocating.
func (j *Job) Reset(id int, app App) error {
	if err := app.Validate(); err != nil {
		return err
	}
	n := app.Graph.NumThreads()
	j.ID = id
	j.App = app
	j.state = sized(j.state, n)
	j.preds = sized(j.preds, n)
	j.remaining = sized(j.remaining, n)
	if cap(j.readyBuf) < n {
		j.readyBuf = make([]ThreadID, n)
	}
	j.ready = j.readyBuf[:0]
	j.attached = 0
	j.finished = 0
	for t := 0; t < n; t++ {
		th := app.Graph.Thread(ThreadID(t))
		j.state[t] = ThreadBlocked
		j.preds[t] = th.NPreds
		j.remaining[t] = th.Work
	}
	for _, r := range app.Graph.roots {
		j.state[r] = ThreadReady
		j.ready = append(j.ready, r)
	}
	return nil
}

// sized returns s with length n, reusing its backing array when possible.
func sized[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// MustNewJob is NewJob for known-good apps.
func MustNewJob(id int, app App) *Job {
	j, err := NewJob(id, app)
	if err != nil {
		panic(err)
	}
	return j
}

// ReadyCount returns the number of runnable, unattached threads.
func (j *Job) ReadyCount() int { return len(j.ready) }

// AttachedCount returns the number of threads attached to tasks.
func (j *Job) AttachedCount() int { return j.attached }

// Demand returns the job's instantaneous processor demand: threads already
// attached to tasks plus runnable threads awaiting one. This is the value
// the job "reflects to the allocator via shared memory" under the Dynamic
// policies.
func (j *Job) Demand() int { return j.attached + len(j.ready) }

// Done reports whether every thread has completed.
func (j *Job) Done() bool { return j.finished == len(j.state) }

// ThreadStateOf returns thread id's current state.
func (j *Job) ThreadStateOf(id ThreadID) ThreadState { return j.state[id] }

// Remaining returns thread id's outstanding compute.
func (j *Job) Remaining(id ThreadID) simtime.Duration { return j.remaining[id] }

// Attach pops a ready thread and marks it attached to a task. It returns
// false when no thread is ready.
func (j *Job) Attach() (ThreadID, bool) {
	if len(j.ready) == 0 {
		return 0, false
	}
	id := j.ready[0]
	j.ready = j.ready[1:]
	j.state[id] = ThreadRunning
	j.attached++
	return id, true
}

// Progress records that the attached thread id executed d of compute. It
// returns the remaining compute.
func (j *Job) Progress(id ThreadID, d simtime.Duration) simtime.Duration {
	if j.state[id] != ThreadRunning {
		panic(fmt.Sprintf("workload: Progress on thread %d in state %v", id, j.state[id]))
	}
	j.remaining[id] -= d
	if j.remaining[id] < 0 {
		j.remaining[id] = 0
	}
	return j.remaining[id]
}

// Complete marks the attached thread id finished and returns the threads
// that became ready as a result. The returned slice is scratch owned by the
// job and is only valid until the next Complete call.
func (j *Job) Complete(id ThreadID) []ThreadID {
	if j.state[id] != ThreadRunning {
		panic(fmt.Sprintf("workload: Complete on thread %d in state %v", id, j.state[id]))
	}
	j.state[id] = ThreadDone
	j.attached--
	j.finished++
	newly := j.newlyScratch[:0]
	for _, s := range j.App.Graph.Thread(id).Succs {
		j.preds[s]--
		if j.preds[s] == 0 {
			j.state[s] = ThreadReady
			j.ready = append(j.ready, s)
			newly = append(newly, s)
		}
	}
	j.newlyScratch = newly
	return newly
}

// Detach returns an attached (but not completed) thread to the ready set,
// used when a task abandons a thread permanently (not for preemption —
// preempted tasks keep their thread, which is why affinity exists).
func (j *Job) Detach(id ThreadID) {
	if j.state[id] != ThreadRunning {
		panic(fmt.Sprintf("workload: Detach on thread %d in state %v", id, j.state[id]))
	}
	j.state[id] = ThreadReady
	j.attached--
	j.ready = append(j.ready, id)
}
