package workload

import (
	"testing"

	"repro/internal/simtime"
)

func TestForkJoinArchetype(t *testing.T) {
	app := ForkJoin(8, 100*simtime.Millisecond, 500*simtime.Millisecond, 50*simtime.Millisecond)
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	g := app.Graph
	if g.NumThreads() != 10 {
		t.Errorf("threads = %d, want 10", g.NumThreads())
	}
	if g.MaxWidth() != 8 {
		t.Errorf("MaxWidth = %d, want 8", g.MaxWidth())
	}
	want := 100*simtime.Millisecond + 500*simtime.Millisecond + 50*simtime.Millisecond
	if g.CriticalPath() != want {
		t.Errorf("CriticalPath = %v, want %v", g.CriticalPath(), want)
	}
}

func TestPipelineArchetype(t *testing.T) {
	app := Pipeline(16, 120*simtime.Millisecond, 200*simtime.Millisecond)
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	g := app.Graph
	// width maps + width reduces + shuffle + sink.
	if g.NumThreads() != 34 {
		t.Errorf("threads = %d, want 34", g.NumThreads())
	}
	if g.MaxWidth() != 16 {
		t.Errorf("MaxWidth = %d, want 16", g.MaxWidth())
	}
	// Critical path: map + shuffle + reduce + sink.
	want := 120*simtime.Millisecond + 30*simtime.Millisecond + 200*simtime.Millisecond + 30*simtime.Millisecond
	if g.CriticalPath() != want {
		t.Errorf("CriticalPath = %v, want %v", g.CriticalPath(), want)
	}
}

func TestDivideArchetype(t *testing.T) {
	app := Divide(4, 20*simtime.Millisecond, 200*simtime.Millisecond, 7)
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	g := app.Graph
	// Split tree: 1+2+4+8 = 15; 8 leaves; merge: 4+2+1 = 7. Total 30.
	if g.NumThreads() != 30 {
		t.Errorf("threads = %d, want 30", g.NumThreads())
	}
	if g.MaxWidth() != 8 {
		t.Errorf("MaxWidth = %d, want 8 (the leaf level)", g.MaxWidth())
	}
	// Determinism per seed; variation across seeds.
	a, b := Divide(3, simtime.Millisecond, simtime.Second, 1), Divide(3, simtime.Millisecond, simtime.Second, 1)
	if a.Graph.TotalWork() != b.Graph.TotalWork() {
		t.Error("same seed produced different work")
	}
	c := Divide(3, simtime.Millisecond, simtime.Second, 2)
	if a.Graph.TotalWork() == c.Graph.TotalWork() {
		t.Error("different seeds produced identical total work (possible but unlikely)")
	}
}
