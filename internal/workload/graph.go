// Package workload models the parallel programs the paper schedules: jobs
// composed of user-level threads organized in a thread dependence graph
// (the paper's Figures 2–4), executed by a smaller set of kernel-schedulable
// tasks, plus the six multiprogrammed workload mixes of Table 2.
package workload

import (
	"fmt"

	"repro/internal/simtime"
)

// ThreadID identifies a thread within one job's dependence graph.
type ThreadID int

// Thread is one node of a dependence graph: a unit of computation that
// becomes runnable when all of its predecessors have completed.
type Thread struct {
	// Work is the thread's pure compute demand on the baseline machine.
	Work simtime.Duration
	// Succs are the threads that depend on this one.
	Succs []ThreadID
	// NPreds is the number of predecessor threads.
	NPreds int
}

// Graph is an immutable thread dependence DAG. Build one with NewGraph and
// share it across job instances.
type Graph struct {
	threads []Thread
	roots   []ThreadID
	// totalWork is the sum of all thread work.
	totalWork simtime.Duration
	// maxWidth is the maximum number of simultaneously runnable threads
	// under greedy unbounded-processor execution.
	maxWidth int
}

// GraphBuilder accumulates threads and edges for a Graph.
type GraphBuilder struct {
	threads []Thread
	edges   [][2]ThreadID
}

// AddThread appends a thread with the given work and returns its ID.
func (b *GraphBuilder) AddThread(work simtime.Duration) ThreadID {
	if work <= 0 {
		panic(fmt.Sprintf("workload: thread work must be positive, got %v", work))
	}
	b.threads = append(b.threads, Thread{Work: work})
	return ThreadID(len(b.threads) - 1)
}

// AddDep records that 'to' cannot start before 'from' completes.
func (b *GraphBuilder) AddDep(from, to ThreadID) {
	b.edges = append(b.edges, [2]ThreadID{from, to})
}

// Build validates the DAG and computes its static properties.
func (b *GraphBuilder) Build() (*Graph, error) {
	n := len(b.threads)
	if n == 0 {
		return nil, fmt.Errorf("workload: graph has no threads")
	}
	g := &Graph{threads: make([]Thread, n)}
	copy(g.threads, b.threads)
	for _, e := range b.edges {
		from, to := e[0], e[1]
		if from < 0 || int(from) >= n || to < 0 || int(to) >= n {
			return nil, fmt.Errorf("workload: edge %v out of range", e)
		}
		if from == to {
			return nil, fmt.Errorf("workload: self-edge on thread %d", from)
		}
		g.threads[from].Succs = append(g.threads[from].Succs, to)
		g.threads[to].NPreds++
	}
	for id := range g.threads {
		if g.threads[id].NPreds == 0 {
			g.roots = append(g.roots, ThreadID(id))
		}
		g.totalWork += g.threads[id].Work
	}
	if len(g.roots) == 0 {
		return nil, fmt.Errorf("workload: graph has no roots (cyclic)")
	}
	width, acyclic := g.computeWidth()
	if !acyclic {
		return nil, fmt.Errorf("workload: graph contains a cycle")
	}
	g.maxWidth = width
	return g, nil
}

// computeWidth performs a level-by-level traversal (Kahn's algorithm),
// returning the maximum level width and whether the graph is acyclic.
// Level width is the runnable-set size assuming level-synchronous
// execution, which matches how the paper's figures present parallelism.
func (g *Graph) computeWidth() (int, bool) {
	preds := make([]int, len(g.threads))
	for id := range g.threads {
		preds[id] = g.threads[id].NPreds
	}
	frontier := append([]ThreadID(nil), g.roots...)
	visited := 0
	maxWidth := 0
	for len(frontier) > 0 {
		if len(frontier) > maxWidth {
			maxWidth = len(frontier)
		}
		var next []ThreadID
		for _, id := range frontier {
			visited++
			for _, s := range g.threads[id].Succs {
				preds[s]--
				if preds[s] == 0 {
					next = append(next, s)
				}
			}
		}
		frontier = next
	}
	return maxWidth, visited == len(g.threads)
}

// NumThreads returns the thread count.
func (g *Graph) NumThreads() int { return len(g.threads) }

// Thread returns thread id's immutable description.
func (g *Graph) Thread(id ThreadID) Thread { return g.threads[id] }

// Roots returns the initially runnable threads.
func (g *Graph) Roots() []ThreadID { return append([]ThreadID(nil), g.roots...) }

// TotalWork returns the sum of thread compute demands.
func (g *Graph) TotalWork() simtime.Duration { return g.totalWork }

// MaxWidth returns the maximum level-synchronous parallelism.
func (g *Graph) MaxWidth() int { return g.maxWidth }

// CriticalPath returns the longest work-weighted path through the DAG: the
// minimum possible elapsed time with unlimited processors.
func (g *Graph) CriticalPath() simtime.Duration {
	// Longest path via DFS with memoization; the graph is acyclic.
	memo := make([]simtime.Duration, len(g.threads))
	done := make([]bool, len(g.threads))
	var longest func(id ThreadID) simtime.Duration
	longest = func(id ThreadID) simtime.Duration {
		if done[id] {
			return memo[id]
		}
		var best simtime.Duration
		for _, s := range g.threads[id].Succs {
			if d := longest(s); d > best {
				best = d
			}
		}
		memo[id] = best + g.threads[id].Work
		done[id] = true
		return memo[id]
	}
	var best simtime.Duration
	for _, r := range g.roots {
		if d := longest(r); d > best {
			best = d
		}
	}
	return best
}
