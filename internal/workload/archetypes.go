package workload

import (
	"repro/internal/memtrace"
	"repro/internal/simtime"
	"repro/internal/xrand"
)

// This file provides additional application archetypes beyond the paper's
// three programs, for building custom workloads (see examples/customapp and
// the scheduler fuzz tests). Each returns a ready-to-run App with a
// plausible reference pattern; callers may replace Pattern or SharedFrac.

// ForkJoin builds the classic fork-join archetype: a root thread fans out
// to width parallel workers that join into a sink. Parallelism is flat at
// width between two sequential points.
func ForkJoin(width int, rootWork, workerWork, joinWork simtime.Duration) App {
	var b GraphBuilder
	root := b.AddThread(rootWork)
	sink := b.AddThread(joinWork)
	for i := 0; i < width; i++ {
		w := b.AddThread(workerWork)
		b.AddDep(root, w)
		b.AddDep(w, sink)
	}
	g, err := b.Build()
	if err != nil {
		panic(err) // static construction cannot fail
	}
	return App{
		Name:  "FORKJOIN",
		Graph: g,
		Pattern: memtrace.Pattern{
			Name: "FORKJOIN",
			Gap:  5 * simtime.Microsecond,
			Components: []memtrace.Component{
				{Lines: 64, Period: simtime.Millisecond},
				{Lines: 1200, Period: 60 * simtime.Millisecond},
			},
		},
		SharedFrac: 0.02,
	}
}

// Pipeline builds a two-stage map/shuffle/reduce pipeline: width map
// threads, a narrow shuffle barrier, width reduce threads, and a sink.
// Parallelism is bimodal with a sequential waist — a shape between MATRIX's
// flat profile and GRAVITY's barrier phases.
func Pipeline(width int, mapWork, reduceWork simtime.Duration) App {
	var b GraphBuilder
	shuffle := b.AddThread(30 * simtime.Millisecond)
	sink := b.AddThread(30 * simtime.Millisecond)
	for i := 0; i < width; i++ {
		m := b.AddThread(mapWork)
		b.AddDep(m, shuffle)
		r := b.AddThread(reduceWork)
		b.AddDep(shuffle, r)
		b.AddDep(r, sink)
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return App{
		Name:  "PIPELINE",
		Graph: g,
		Pattern: memtrace.Pattern{
			Name: "PIPELINE",
			Gap:  5 * simtime.Microsecond,
			Components: []memtrace.Component{
				{Lines: 96, Period: simtime.Millisecond},
				{Lines: 1400, Period: 40 * simtime.Millisecond},
				{Lines: 1800, Period: 500 * simtime.Millisecond, Permuted: true},
			},
		},
		SharedFrac: 0.03,
	}
}

// Divide builds a divide-and-conquer archetype: a binary tree of split
// threads fanning out to depth levels, leaf work at the bottom, and a
// mirrored merge tree. Parallelism doubles per level and then halves —
// a sharper version of MVA's grow-then-shrink profile.
func Divide(depth int, splitWork, leafWork simtime.Duration, seed uint64) App {
	rng := xrand.New(seed, 0xd1f)
	var b GraphBuilder
	// Build the split tree level by level; splits[i] is level i.
	level := []ThreadID{b.AddThread(splitWork)}
	for d := 1; d < depth; d++ {
		var next []ThreadID
		for _, parent := range level {
			for c := 0; c < 2; c++ {
				id := b.AddThread(splitWork)
				b.AddDep(parent, id)
				next = append(next, id)
			}
		}
		level = next
	}
	// Leaves with jittered work.
	var leaves []ThreadID
	for _, parent := range level {
		jitter := 0.75 + rng.Float64()/2
		id := b.AddThread(leafWork.Scale(jitter))
		b.AddDep(parent, id)
		leaves = append(leaves, id)
	}
	// Merge tree back down to one.
	for len(leaves) > 1 {
		var next []ThreadID
		for i := 0; i+1 < len(leaves); i += 2 {
			id := b.AddThread(splitWork)
			b.AddDep(leaves[i], id)
			b.AddDep(leaves[i+1], id)
			next = append(next, id)
		}
		if len(leaves)%2 == 1 {
			next = append(next, leaves[len(leaves)-1])
		}
		leaves = next
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return App{
		Name:  "DIVIDE",
		Graph: g,
		Pattern: memtrace.Pattern{
			Name: "DIVIDE",
			Gap:  5 * simtime.Microsecond,
			Components: []memtrace.Component{
				{Lines: 64, Period: simtime.Millisecond},
				{Lines: 900, Period: 30 * simtime.Millisecond},
				{Lines: 1500, Period: 300 * simtime.Millisecond},
			},
		},
		SharedFrac: 0.04,
	}
}
