package workload

import "fmt"

// Mix is one multiprogrammed workload: the number of instances of each
// application type, as in the paper's Table 2.
type Mix struct {
	// Number identifies the mix (1-6 for the paper's table).
	Number int
	// MVA, Matrix and Gravity are instance counts.
	MVA, Matrix, Gravity int
}

// String renders the mix as in the paper ("#5: 1 MATRIX + 1 GRAVITY").
func (m Mix) String() string {
	s := fmt.Sprintf("#%d:", m.Number)
	for _, part := range []struct {
		n    int
		name string
	}{{m.MVA, "MVA"}, {m.Matrix, "MATRIX"}, {m.Gravity, "GRAVITY"}} {
		if part.n > 0 {
			s += fmt.Sprintf(" %d %s", part.n, part.name)
		}
	}
	return s
}

// Jobs returns the number of jobs in the mix.
func (m Mix) Jobs() int { return m.MVA + m.Matrix + m.Gravity }

// Homogeneous reports whether the mix contains multiple instances of one
// application type and nothing else — the mixes for which the paper's
// Table 4 averages job response time.
func (m Mix) Homogeneous() bool {
	kinds := 0
	for _, n := range []int{m.MVA, m.Matrix, m.Gravity} {
		if n > 0 {
			kinds++
		}
	}
	return kinds == 1 && m.Jobs() > 1
}

// Apps instantiates the mix's applications in the paper's listing order
// (MVA, MATRIX, GRAVITY). seed feeds the GRAVITY instances' thread-time
// jitter; distinct instances get distinct derived seeds.
func (m Mix) Apps(seed uint64) []App {
	var out []App
	for i := 0; i < m.MVA; i++ {
		out = append(out, MVA())
	}
	for i := 0; i < m.Matrix; i++ {
		out = append(out, Matrix())
	}
	for i := 0; i < m.Gravity; i++ {
		out = append(out, Gravity(seed+uint64(i)*0x9e3779b9))
	}
	return out
}

// Validate checks the mix is non-empty with non-negative counts.
func (m Mix) Validate() error {
	if m.MVA < 0 || m.Matrix < 0 || m.Gravity < 0 {
		return fmt.Errorf("workload: mix %d has negative counts", m.Number)
	}
	if m.Jobs() == 0 {
		return fmt.Errorf("workload: mix %d is empty", m.Number)
	}
	return nil
}

// Mixes returns the paper's six workload mixes (Table 2):
//
//	        #1  #2  #3  #4  #5  #6
//	MVA      2   1   1   0   0   1
//	MATRIX   0   1   0   0   1   1
//	GRAVITY  0   0   1   2   1   1
func Mixes() []Mix {
	return []Mix{
		{Number: 1, MVA: 2},
		{Number: 2, MVA: 1, Matrix: 1},
		{Number: 3, MVA: 1, Gravity: 1},
		{Number: 4, Gravity: 2},
		{Number: 5, Matrix: 1, Gravity: 1},
		{Number: 6, MVA: 1, Matrix: 1, Gravity: 1},
	}
}

// MixByNumber returns the paper mix with the given number.
func MixByNumber(n int) (Mix, error) {
	for _, m := range Mixes() {
		if m.Number == n {
			return m, nil
		}
	}
	return Mix{}, fmt.Errorf("workload: no mix #%d (valid: 1-6)", n)
}
