package workload

import (
	"fmt"

	"repro/internal/memtrace"
	"repro/internal/simtime"
	"repro/internal/xrand"
)

// App couples a thread dependence graph with the application's memory
// reference behaviour. It is the static description of a program; a Job is
// one executing instance.
type App struct {
	// Name identifies the application (MVA, MATRIX, GRAVITY, or custom).
	Name string
	// Graph is the thread dependence DAG.
	Graph *Graph
	// Pattern describes the program's cache reference behaviour.
	Pattern memtrace.Pattern
	// SharedFrac is the fraction of the lines a task touches that are
	// written shared data: under the Symmetry's invalidation-based
	// coherency protocol, writing them invalidates any copies the job's
	// other tasks hold in their processors' caches. Zero disables the
	// effect.
	SharedFrac float64
}

// MaxParallelism returns the largest number of processors the app can use
// at any point — the cap used by Equipartition's allocation-number
// computation.
func (a App) MaxParallelism() int { return a.Graph.MaxWidth() }

// Validate checks the app for consistency.
func (a App) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("workload: app has no name")
	}
	if a.Graph == nil || a.Graph.NumThreads() == 0 {
		return fmt.Errorf("workload: app %s has no graph", a.Name)
	}
	if a.SharedFrac < 0 || a.SharedFrac > 1 {
		return fmt.Errorf("workload: app %s SharedFrac %v outside [0,1]", a.Name, a.SharedFrac)
	}
	return a.Pattern.Validate()
}

// The default application scales. Thread grain sizes are chosen so that the
// applications' isolated 16-processor elapsed times and average demands are
// in the same regime as the paper's Figures 2–4 (tens of seconds, demands
// between ~6 and 16), producing the same scheduling dynamics: reallocation
// intervals of a few hundred milliseconds under the Dynamic policies
// (Table 3 reports 218–445 ms).
const (
	mvaGridSize    = 24
	mvaThreadWork  = 180 * simtime.Millisecond
	matrixBlocks   = 22 // 22x22 output blocks = 484 threads
	matrixWork     = 850 * simtime.Millisecond
	gravitySteps   = 28
	gravitySeqWork = 200 * simtime.Millisecond
	gravityPhases  = 4
	gravityWidth   = 128
	gravityWork    = 20 * simtime.Millisecond
)

// MVA builds the paper's first application: a dynamic-programming
// ("wave front") computation whose parallelism slowly grows and then slowly
// decreases. Thread (i,j) of an n×n grid depends on (i-1,j) and (i,j-1).
func MVA() App {
	return MVASized(mvaGridSize, mvaThreadWork)
}

// MVASized builds an MVA instance with an n×n grid and the given per-thread
// work.
func MVASized(n int, work simtime.Duration) App {
	g := cachedGraph(graphKey{kind: "mva", a: n, w1: int64(work)}, func() *Graph {
		var b GraphBuilder
		ids := make([][]ThreadID, n)
		for i := 0; i < n; i++ {
			ids[i] = make([]ThreadID, n)
			for j := 0; j < n; j++ {
				ids[i][j] = b.AddThread(work)
				if i > 0 {
					b.AddDep(ids[i-1][j], ids[i][j])
				}
				if j > 0 {
					b.AddDep(ids[i][j-1], ids[i][j])
				}
			}
		}
		g, err := b.Build()
		if err != nil {
			panic(err) // static construction cannot fail
		}
		return g
	})
	// Wavefront cells share row/column boundaries with neighbours.
	return App{Name: "MVA", Graph: g, Pattern: memtrace.MVAPattern(), SharedFrac: 0.03}
}

// Matrix builds the paper's second application: a blocked parallel matrix
// multiply with massive, constant parallelism — one thread per output
// block, all independent, joined by a final reduction thread.
func Matrix() App {
	return MatrixSized(matrixBlocks, matrixWork)
}

// MatrixSized builds a MATRIX instance computing blocks×blocks output
// blocks with the given per-block work.
func MatrixSized(blocks int, work simtime.Duration) App {
	g := cachedGraph(graphKey{kind: "matrix", a: blocks, w1: int64(work)}, func() *Graph {
		var b GraphBuilder
		join := simtime.Duration(50 * simtime.Millisecond)
		sink := b.AddThread(join)
		for i := 0; i < blocks*blocks; i++ {
			id := b.AddThread(work)
			b.AddDep(id, sink)
		}
		g, err := b.Build()
		if err != nil {
			panic(err)
		}
		return g
	})
	// Output blocks are disjoint; only reduction results are written
	// shared.
	return App{Name: "MATRIX", Graph: g, Pattern: memtrace.MatrixPattern(), SharedFrac: 0.005}
}

// Gravity builds the paper's third application: the Barnes-Hut clustering
// algorithm. Each simulated time step repeats five phases — one sequential,
// four parallel — with a barrier (parallelism dropping to one) between the
// parallel phases. Thread execution times differ per phase and within some
// phases, which GravitySized models with seeded multiplicative jitter.
func Gravity(seed uint64) App {
	return GravitySized(gravitySteps, gravityWidth, gravitySeqWork, gravityWork, seed)
}

// GravitySized builds a GRAVITY instance with the given number of time
// steps, per-phase parallel width, sequential-phase work, and mean parallel
// thread work.
func GravitySized(steps, width int, seqWork, parWork simtime.Duration, seed uint64) App {
	// The jitter seed is part of the cache key: distinct seeds yield
	// distinct thread-time distributions.
	key := graphKey{kind: "gravity", a: steps, b: width, w1: int64(seqWork), w2: int64(parWork), seed: seed}
	g := cachedGraph(key, func() *Graph {
		rng := xrand.New(seed, 0xc0ffee)
		var b GraphBuilder
		var prevBarrier ThreadID = -1
		for s := 0; s < steps; s++ {
			// Sequential phase (tree build).
			seq := b.AddThread(seqWork)
			if prevBarrier >= 0 {
				b.AddDep(prevBarrier, seq)
			}
			join := seq
			for ph := 0; ph < gravityPhases; ph++ {
				// Parallel phase: 'width' threads; per-phase mean varies,
				// and threads within a phase vary around it (synchronization
				// delays in critical sections).
				phaseScale := 0.6 + 0.2*float64(ph)
				barrier := b.AddThread(10 * simtime.Millisecond)
				for w := 0; w < width; w++ {
					jitter := 0.75 + rng.Float64()/2 // uniform [0.75, 1.25)
					work := parWork.Scale(phaseScale * jitter)
					id := b.AddThread(work)
					b.AddDep(join, id)
					b.AddDep(id, barrier)
				}
				join = barrier
			}
			prevBarrier = join
		}
		g, err := b.Build()
		if err != nil {
			panic(err)
		}
		return g
	})
	// Body updates and tree rebuilds write data every task reads.
	return App{Name: "GRAVITY", Graph: g, Pattern: memtrace.GravityPattern(), SharedFrac: 0.08}
}

// AppByName builds a default-sized application by paper name. GRAVITY
// instances use the provided seed for thread-time jitter.
func AppByName(name string, seed uint64) (App, error) {
	switch name {
	case "MVA":
		return MVA(), nil
	case "MATRIX", "MAT":
		return Matrix(), nil
	case "GRAVITY", "GRAV":
		return Gravity(seed), nil
	}
	return App{}, fmt.Errorf("workload: unknown application %q", name)
}
