package workload

import "sync"

// Graph construction dominated the allocation profile of every campaign:
// the same MVA/MATRIX/GRAVITY instances were rebuilt for each of a
// campaign's (mix, policy, replication) cells, tens of megabytes of
// identical immutable DAG per run. Because the standard constructors are
// pure functions of their parameters (GRAVITY includes its jitter seed),
// their Graphs can be memoized and shared: a Graph is immutable after
// Build, and Jobs copy all mutable per-run state out of it.
//
// The cache is bounded; filling it past graphCacheMax evicts everything
// (simple, and harmless — eviction only costs a rebuild, never changes a
// result). Sharing is concurrency-safe: campaign workers only read the
// cached Graphs.

// graphKey identifies one memoizable graph construction.
type graphKey struct {
	kind   string // constructor name: "mva", "matrix", "gravity"
	a, b   int    // grid size / block count / (steps, width)
	w1, w2 int64  // work parameters in ns
	seed   uint64 // jitter seed (gravity only)
}

const graphCacheMax = 256

var graphCache = struct {
	sync.Mutex
	m map[graphKey]*Graph
}{m: make(map[graphKey]*Graph)}

// cachedGraph returns the memoized graph for key, building and caching it
// on first use.
func cachedGraph(key graphKey, build func() *Graph) *Graph {
	graphCache.Lock()
	g, ok := graphCache.m[key]
	graphCache.Unlock()
	if ok {
		return g
	}
	// Build outside the lock: construction is deterministic, so two racing
	// builders produce interchangeable graphs and last-write-wins is fine.
	g = build()
	graphCache.Lock()
	if cached, ok := graphCache.m[key]; ok {
		g = cached // keep the first stored instance for maximal sharing
	} else {
		if len(graphCache.m) >= graphCacheMax {
			clear(graphCache.m)
		}
		graphCache.m[key] = g
	}
	graphCache.Unlock()
	return g
}
