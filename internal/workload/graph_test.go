package workload

import (
	"testing"
	"testing/quick"

	"repro/internal/simtime"
	"repro/internal/xrand"
)

func chain(n int, work simtime.Duration) *Graph {
	var b GraphBuilder
	prev := b.AddThread(work)
	for i := 1; i < n; i++ {
		cur := b.AddThread(work)
		b.AddDep(prev, cur)
		prev = cur
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func TestBuildEmptyFails(t *testing.T) {
	var b GraphBuilder
	if _, err := b.Build(); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestAddThreadRejectsNonPositiveWork(t *testing.T) {
	var b GraphBuilder
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero work")
		}
	}()
	b.AddThread(0)
}

func TestBuildRejectsBadEdges(t *testing.T) {
	var b GraphBuilder
	id := b.AddThread(simtime.Second)
	b.AddDep(id, ThreadID(5))
	if _, err := b.Build(); err == nil {
		t.Error("out-of-range edge accepted")
	}

	var b2 GraphBuilder
	id2 := b2.AddThread(simtime.Second)
	b2.AddDep(id2, id2)
	if _, err := b2.Build(); err == nil {
		t.Error("self-edge accepted")
	}
}

func TestBuildRejectsCycle(t *testing.T) {
	var b GraphBuilder
	a := b.AddThread(simtime.Second)
	c := b.AddThread(simtime.Second)
	d := b.AddThread(simtime.Second)
	// a -> c -> d -> c is impossible to express; make c <-> d cyclic with a root a.
	b.AddDep(a, c)
	b.AddDep(c, d)
	b.AddDep(d, c)
	if _, err := b.Build(); err == nil {
		t.Error("cyclic graph accepted")
	}
}

func TestChainProperties(t *testing.T) {
	g := chain(10, simtime.Second)
	if g.NumThreads() != 10 {
		t.Errorf("NumThreads = %d", g.NumThreads())
	}
	if g.MaxWidth() != 1 {
		t.Errorf("MaxWidth = %d, want 1", g.MaxWidth())
	}
	if g.TotalWork() != 10*simtime.Second {
		t.Errorf("TotalWork = %v", g.TotalWork())
	}
	if g.CriticalPath() != 10*simtime.Second {
		t.Errorf("CriticalPath = %v", g.CriticalPath())
	}
	if len(g.Roots()) != 1 {
		t.Errorf("Roots = %v", g.Roots())
	}
}

func TestForkJoinProperties(t *testing.T) {
	var b GraphBuilder
	root := b.AddThread(simtime.Second)
	join := b.AddThread(simtime.Second)
	for i := 0; i < 8; i++ {
		id := b.AddThread(2 * simtime.Second)
		b.AddDep(root, id)
		b.AddDep(id, join)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.MaxWidth() != 8 {
		t.Errorf("MaxWidth = %d, want 8", g.MaxWidth())
	}
	if g.CriticalPath() != 4*simtime.Second {
		t.Errorf("CriticalPath = %v, want 4s", g.CriticalPath())
	}
	if g.TotalWork() != 18*simtime.Second {
		t.Errorf("TotalWork = %v", g.TotalWork())
	}
}

func TestMVAShape(t *testing.T) {
	app := MVASized(5, simtime.Second)
	g := app.Graph
	if g.NumThreads() != 25 {
		t.Errorf("threads = %d, want 25", g.NumThreads())
	}
	// Wavefront: widest anti-diagonal of a 5x5 grid is 5.
	if g.MaxWidth() != 5 {
		t.Errorf("MaxWidth = %d, want 5", g.MaxWidth())
	}
	// Critical path: 2n-1 threads.
	if g.CriticalPath() != 9*simtime.Second {
		t.Errorf("CriticalPath = %v, want 9s", g.CriticalPath())
	}
	if len(g.Roots()) != 1 {
		t.Errorf("MVA should have a single root, got %d", len(g.Roots()))
	}
}

func TestMatrixShape(t *testing.T) {
	app := MatrixSized(4, simtime.Second)
	g := app.Graph
	if g.NumThreads() != 17 { // 16 blocks + sink
		t.Errorf("threads = %d, want 17", g.NumThreads())
	}
	if g.MaxWidth() != 16 {
		t.Errorf("MaxWidth = %d, want 16 (massive constant parallelism)", g.MaxWidth())
	}
	if len(g.Roots()) != 16 {
		t.Errorf("roots = %d, want 16", len(g.Roots()))
	}
}

func TestGravityShape(t *testing.T) {
	app := GravitySized(3, 8, simtime.Second, simtime.Second, 42)
	g := app.Graph
	// Per step: 1 seq + 4 phases * (8 threads + 1 barrier) = 37.
	if g.NumThreads() != 3*37 {
		t.Errorf("threads = %d, want %d", g.NumThreads(), 3*37)
	}
	if g.MaxWidth() != 8 {
		t.Errorf("MaxWidth = %d, want 8", g.MaxWidth())
	}
	// Single root: the first sequential phase.
	if len(g.Roots()) != 1 {
		t.Errorf("roots = %d, want 1", len(g.Roots()))
	}
}

func TestGravityJitterDeterministic(t *testing.T) {
	a := Gravity(7)
	b := Gravity(7)
	c := Gravity(8)
	for i := 0; i < a.Graph.NumThreads(); i++ {
		if a.Graph.Thread(ThreadID(i)).Work != b.Graph.Thread(ThreadID(i)).Work {
			t.Fatal("same seed produced different thread works")
		}
	}
	same := 0
	for i := 0; i < a.Graph.NumThreads(); i++ {
		if a.Graph.Thread(ThreadID(i)).Work == c.Graph.Thread(ThreadID(i)).Work {
			same++
		}
	}
	if same == a.Graph.NumThreads() {
		t.Error("different seeds produced identical thread works")
	}
}

func TestAppByName(t *testing.T) {
	for _, name := range []string{"MVA", "MATRIX", "MAT", "GRAVITY", "GRAV"} {
		app, err := AppByName(name, 1)
		if err != nil {
			t.Errorf("AppByName(%q): %v", name, err)
			continue
		}
		if err := app.Validate(); err != nil {
			t.Errorf("%s invalid: %v", name, err)
		}
	}
	if _, err := AppByName("NOPE", 1); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestAppValidate(t *testing.T) {
	if err := (App{}).Validate(); err == nil {
		t.Error("empty app accepted")
	}
	if err := (App{Name: "x"}).Validate(); err == nil {
		t.Error("graphless app accepted")
	}
}

func TestDefaultAppScalesSane(t *testing.T) {
	// The default applications must be in the paper's regime: max
	// parallelism at least 16 for MATRIX (massive), wavefront peak for MVA
	// matching its grid, and total work tens-to-hundreds of seconds.
	mva, mat, grav := MVA(), Matrix(), Gravity(1)
	if mva.MaxParallelism() != mvaGridSize {
		t.Errorf("MVA MaxParallelism = %d", mva.MaxParallelism())
	}
	if mat.MaxParallelism() < 16 {
		t.Errorf("MATRIX MaxParallelism = %d, want >= 16", mat.MaxParallelism())
	}
	if grav.MaxParallelism() != gravityWidth {
		t.Errorf("GRAVITY MaxParallelism = %d", grav.MaxParallelism())
	}
	for _, app := range []App{mva, mat, grav} {
		tw := app.Graph.TotalWork()
		if tw < 30*simtime.Second || tw > 1000*simtime.Second {
			t.Errorf("%s total work %v outside sane range", app.Name, tw)
		}
	}
}

// Property: for random DAGs, MaxWidth is between 1 and NumThreads, and
// CriticalPath is between max thread work and TotalWork.
func TestQuickGraphBounds(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed, 3)
		var b GraphBuilder
		n := 2 + rng.Intn(40)
		var maxWork simtime.Duration
		for i := 0; i < n; i++ {
			w := simtime.Duration(1+rng.Intn(1000)) * simtime.Millisecond
			if w > maxWork {
				maxWork = w
			}
			b.AddThread(w)
		}
		// Random forward edges only: acyclic by construction.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(6) == 0 {
					b.AddDep(ThreadID(i), ThreadID(j))
				}
			}
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		if g.MaxWidth() < 1 || g.MaxWidth() > n {
			return false
		}
		cp := g.CriticalPath()
		return cp >= maxWork && cp <= g.TotalWork()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
