package workload

import (
	"testing"
	"testing/quick"

	"repro/internal/simtime"
	"repro/internal/xrand"
)

func TestNewJobValidates(t *testing.T) {
	if _, err := NewJob(0, App{}); err == nil {
		t.Error("invalid app accepted")
	}
}

func TestMustNewJobPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustNewJob(0, App{})
}

func TestJobLifecycleChain(t *testing.T) {
	app := App{Name: "chain", Graph: chain(3, simtime.Second), Pattern: MVA().Pattern}
	j := MustNewJob(1, app)
	if j.ReadyCount() != 1 || j.Demand() != 1 {
		t.Fatalf("initial ready=%d demand=%d", j.ReadyCount(), j.Demand())
	}
	for i := 0; i < 3; i++ {
		id, ok := j.Attach()
		if !ok {
			t.Fatalf("Attach failed at step %d", i)
		}
		if j.ThreadStateOf(id) != ThreadRunning {
			t.Fatal("attached thread not running")
		}
		if rem := j.Progress(id, 400*simtime.Millisecond); rem != 600*simtime.Millisecond {
			t.Fatalf("Remaining = %v", rem)
		}
		j.Progress(id, 600*simtime.Millisecond)
		if j.Remaining(id) != 0 {
			t.Fatalf("thread not drained: %v", j.Remaining(id))
		}
		newly := j.Complete(id)
		if i < 2 && len(newly) != 1 {
			t.Fatalf("step %d released %d threads, want 1", i, len(newly))
		}
	}
	if !j.Done() {
		t.Fatal("job not done after all threads complete")
	}
	if _, ok := j.Attach(); ok {
		t.Fatal("Attach succeeded on finished job")
	}
}

func TestDemandTracksAttachAndReady(t *testing.T) {
	app := Matrix()
	j := MustNewJob(0, app)
	d0 := j.Demand()
	if d0 != app.Graph.NumThreads()-1 { // all blocks ready, sink blocked
		t.Fatalf("initial demand = %d", d0)
	}
	id, _ := j.Attach()
	if j.Demand() != d0 {
		t.Fatal("Attach changed demand")
	}
	if j.AttachedCount() != 1 {
		t.Fatalf("AttachedCount = %d", j.AttachedCount())
	}
	j.Progress(id, j.Remaining(id))
	j.Complete(id)
	if j.Demand() != d0-1 {
		t.Fatalf("demand after completion = %d, want %d", j.Demand(), d0-1)
	}
}

func TestDetachReturnsThreadToReady(t *testing.T) {
	j := MustNewJob(0, Matrix())
	id, _ := j.Attach()
	r0 := j.ReadyCount()
	j.Detach(id)
	if j.ReadyCount() != r0+1 {
		t.Fatal("Detach did not return thread to ready set")
	}
	if j.ThreadStateOf(id) != ThreadReady {
		t.Fatal("detached thread not ready")
	}
}

func TestLifecyclePanicsOnMisuse(t *testing.T) {
	j := MustNewJob(0, Matrix())
	id, _ := j.Attach()
	j.Progress(id, j.Remaining(id))
	j.Complete(id)
	for name, fn := range map[string]func(){
		"Progress on done thread": func() { j.Progress(id, 1) },
		"Complete on done thread": func() { j.Complete(id) },
		"Detach on done thread":   func() { j.Detach(id) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestProgressClampsAtZero(t *testing.T) {
	j := MustNewJob(0, Matrix())
	id, _ := j.Attach()
	if rem := j.Progress(id, 100*simtime.Second*100); rem != 0 {
		t.Fatalf("over-progress left %v", rem)
	}
}

func TestMixesMatchTable2(t *testing.T) {
	ms := Mixes()
	if len(ms) != 6 {
		t.Fatalf("mixes = %d, want 6", len(ms))
	}
	want := []struct{ mva, mat, grav int }{
		{2, 0, 0}, {1, 1, 0}, {1, 0, 1}, {0, 0, 2}, {0, 1, 1}, {1, 1, 1},
	}
	for i, m := range ms {
		if m.Number != i+1 {
			t.Errorf("mix %d numbered %d", i, m.Number)
		}
		if m.MVA != want[i].mva || m.Matrix != want[i].mat || m.Gravity != want[i].grav {
			t.Errorf("mix #%d = %+v", m.Number, m)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("mix #%d invalid: %v", m.Number, err)
		}
	}
}

func TestMixProperties(t *testing.T) {
	m1, _ := MixByNumber(1)
	m4, _ := MixByNumber(4)
	m5, _ := MixByNumber(5)
	if !m1.Homogeneous() || !m4.Homogeneous() {
		t.Error("mixes 1 and 4 are the paper's homogeneous mixes")
	}
	if m5.Homogeneous() {
		t.Error("mix 5 is heterogeneous")
	}
	if m5.Jobs() != 2 {
		t.Errorf("mix 5 jobs = %d", m5.Jobs())
	}
	if _, err := MixByNumber(7); err == nil {
		t.Error("mix 7 accepted")
	}
	if err := (Mix{Number: 9}).Validate(); err == nil {
		t.Error("empty mix accepted")
	}
	if err := (Mix{Number: 9, MVA: -1}).Validate(); err == nil {
		t.Error("negative mix accepted")
	}
}

func TestMixAppsInstantiation(t *testing.T) {
	m6, _ := MixByNumber(6)
	apps := m6.Apps(1)
	if len(apps) != 3 {
		t.Fatalf("apps = %d", len(apps))
	}
	if apps[0].Name != "MVA" || apps[1].Name != "MATRIX" || apps[2].Name != "GRAVITY" {
		t.Errorf("app order wrong: %v %v %v", apps[0].Name, apps[1].Name, apps[2].Name)
	}
	// Two GRAVITY instances in mix 4 must differ (distinct jitter seeds).
	m4, _ := MixByNumber(4)
	gs := m4.Apps(1)
	identical := true
	for i := 0; i < gs[0].Graph.NumThreads(); i++ {
		if gs[0].Graph.Thread(ThreadID(i)).Work != gs[1].Graph.Thread(ThreadID(i)).Work {
			identical = false
			break
		}
	}
	if identical {
		t.Error("two GRAVITY instances have identical thread works")
	}
}

func TestMixString(t *testing.T) {
	m5, _ := MixByNumber(5)
	if got := m5.String(); got != "#5: 1 MATRIX + 1 GRAVITY" && got != "#5: 1 MATRIX 1 GRAVITY" {
		// Accept the actual format; just require both names present.
		if got == "" {
			t.Error("empty String")
		}
	}
}

// Property: driving a job with a random scheduler always terminates with
// every thread done, total executed work equal to the graph's total work,
// and demand never negative.
func TestQuickJobConservation(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed, 4)
		j := MustNewJob(0, MVASized(6, simtime.Second))
		var executed simtime.Duration
		type slot struct {
			id ThreadID
		}
		var running []slot
		for !j.Done() {
			if j.Demand() < 0 {
				return false
			}
			// Randomly attach up to demand.
			for j.ReadyCount() > 0 && rng.Intn(2) == 0 {
				id, ok := j.Attach()
				if !ok {
					return false
				}
				running = append(running, slot{id})
			}
			if len(running) == 0 {
				// Must attach at least one to make progress.
				id, ok := j.Attach()
				if !ok {
					return false
				}
				running = append(running, slot{id})
			}
			// Progress a random running thread by a random amount.
			k := rng.Intn(len(running))
			id := running[k].id
			step := simtime.Duration(1+rng.Intn(1500)) * simtime.Millisecond
			rem := j.Remaining(id)
			if step > rem {
				step = rem
			}
			executed += step
			if j.Progress(id, step) == 0 {
				j.Complete(id)
				running = append(running[:k], running[k+1:]...)
			}
		}
		return executed == j.App.Graph.TotalWork()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
