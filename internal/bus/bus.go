// Package bus models contention on the shared memory bus.
//
// Every cache miss occupies the bus for the uncontended line-fill time; the
// observed service time is inflated by a queueing factor derived from the
// bus utilization over a sliding window, approximating an M/M/1 server:
// service = fill / (1 - ρ), clamped. The paper folds contention into the
// work term of its response-time model (Section 2); this component exists
// so that migration-heavy schedules, which raise miss rates, also raise
// effective work — the same indirect effect the paper describes.
package bus

import (
	"fmt"

	"repro/internal/simtime"
)

// maxInflation caps the contention multiplier so that a transiently
// saturated window cannot stall the simulation.
const maxInflation = 8.0

// Bus tracks utilization of the shared bus over a sliding window of
// fixed-width buckets and computes contention-inflated miss service times.
type Bus struct {
	fill    simtime.Duration
	bucketW simtime.Duration
	busy    []simtime.Duration // busy time per bucket, ring buffer
	cur     int64              // index of the current bucket (monotonic)
	total   simtime.Duration   // busy time summed over the ring

	transactions uint64
	busyAllTime  simtime.Duration
}

// New creates a bus with the given uncontended line-fill time and averaging
// window. The window is divided into 16 buckets.
func New(fill, window simtime.Duration) (*Bus, error) {
	if fill <= 0 {
		return nil, fmt.Errorf("bus: fill time must be positive, got %v", fill)
	}
	if window < 16 {
		return nil, fmt.Errorf("bus: window too small: %v", window)
	}
	return &Bus{
		fill:    fill,
		bucketW: window / 16,
		busy:    make([]simtime.Duration, 16),
	}, nil
}

// MustNew is New for known-good parameters.
func MustNew(fill, window simtime.Duration) *Bus {
	b, err := New(fill, window)
	if err != nil {
		panic(err)
	}
	return b
}

// Reset reinitialises b in place with new parameters, reusing its ring
// buffer. A reset bus is indistinguishable from MustNew(fill, window); like
// MustNew it panics on invalid parameters.
func (b *Bus) Reset(fill, window simtime.Duration) {
	if fill <= 0 {
		panic(fmt.Sprintf("bus: fill time must be positive, got %v", fill))
	}
	if window < 16 {
		panic(fmt.Sprintf("bus: window too small: %v", window))
	}
	b.fill = fill
	b.bucketW = window / 16
	for i := range b.busy {
		b.busy[i] = 0
	}
	b.cur = 0
	b.total = 0
	b.transactions = 0
	b.busyAllTime = 0
}

// advance rotates the ring so that it covers the bucket containing now.
func (b *Bus) advance(now simtime.Time) {
	idx := int64(now) / int64(b.bucketW)
	for b.cur < idx {
		b.cur++
		slot := int(b.cur % int64(len(b.busy)))
		b.total -= b.busy[slot]
		b.busy[slot] = 0
	}
}

// Utilization returns the fraction of the sliding window the bus was busy,
// in [0, 1].
func (b *Bus) Utilization(now simtime.Time) float64 {
	b.advance(now)
	window := b.bucketW * simtime.Duration(len(b.busy))
	u := float64(b.total) / float64(window)
	if u > 1 {
		u = 1
	}
	return u
}

// Service records one line-fill transaction starting at now and returns its
// contention-inflated duration.
func (b *Bus) Service(now simtime.Time) simtime.Duration {
	b.advance(now)
	u := b.Utilization(now)
	inflation := 1.0
	if u < 1 {
		inflation = 1 / (1 - u)
	}
	if inflation > maxInflation {
		inflation = maxInflation
	}
	d := b.fill.Scale(inflation)
	slot := int(b.cur % int64(len(b.busy)))
	b.busy[slot] += b.fill // bus occupancy is the uncontended transfer time
	b.total += b.fill
	b.transactions++
	b.busyAllTime += b.fill
	return d
}

// ServiceN records n back-to-back transactions at now and returns their
// total inflated duration. It is the bulk path used when a resuming task
// reloads many lines at once.
func (b *Bus) ServiceN(now simtime.Time, n int) simtime.Duration {
	var total simtime.Duration
	for i := 0; i < n; i++ {
		total += b.Service(now.Add(total))
	}
	return total
}

// Stats describes cumulative bus activity.
type Stats struct {
	Transactions uint64
	BusyTime     simtime.Duration
}

// Stats returns cumulative counters.
func (b *Bus) Stats() Stats {
	return Stats{Transactions: b.transactions, BusyTime: b.busyAllTime}
}
