package bus

import (
	"testing"
	"testing/quick"

	"repro/internal/simtime"
)

func fill() simtime.Duration { return simtime.Duration(750) } // 0.75 µs

func TestNewValidation(t *testing.T) {
	if _, err := New(0, simtime.Millisecond); err == nil {
		t.Error("zero fill accepted")
	}
	if _, err := New(fill(), 1); err == nil {
		t.Error("tiny window accepted")
	}
	if _, err := New(fill(), simtime.Millisecond); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustNew(0, 0)
}

func TestIdleBusServesAtFillTime(t *testing.T) {
	b := MustNew(fill(), 10*simtime.Millisecond)
	if got := b.Service(0); got != fill() {
		t.Errorf("first service = %v, want %v", got, fill())
	}
}

func TestUtilizationRisesWithLoad(t *testing.T) {
	b := MustNew(fill(), 10*simtime.Millisecond)
	if u := b.Utilization(0); u != 0 {
		t.Errorf("idle utilization = %v", u)
	}
	// Saturate: issue transactions back to back.
	now := simtime.Time(0)
	for i := 0; i < 10000; i++ {
		now = now.Add(b.Service(now))
	}
	// Back-to-back arrivals equilibrate near ρ = 0.5: the inflated service
	// time 1/(1-ρ) already includes queueing delay, so busy time accrues at
	// half the rate the clock advances.
	if u := b.Utilization(now); u < 0.4 {
		t.Errorf("utilization after saturation = %v, want >= 0.4", u)
	}
}

func TestContentionInflatesService(t *testing.T) {
	b := MustNew(fill(), 10*simtime.Millisecond)
	now := simtime.Time(0)
	for i := 0; i < 10000; i++ {
		now = now.Add(b.Service(now))
	}
	if got := b.Service(now); got <= fill() {
		t.Errorf("service under load = %v, want > %v", got, fill())
	}
	// And bounded by the inflation cap.
	if got := b.Service(now); got > fill().Scale(maxInflation) {
		t.Errorf("service = %v exceeds cap", got)
	}
}

func TestUtilizationDecaysWhenIdle(t *testing.T) {
	b := MustNew(fill(), 10*simtime.Millisecond)
	now := simtime.Time(0)
	for i := 0; i < 5000; i++ {
		now = now.Add(b.Service(now))
	}
	busy := b.Utilization(now)
	later := now.Add(simtime.Seconds(1))
	if got := b.Utilization(later); got != 0 {
		t.Errorf("utilization after 1s idle = %v (was %v), want 0", got, busy)
	}
}

func TestServiceN(t *testing.T) {
	b := MustNew(fill(), 10*simtime.Millisecond)
	total := b.ServiceN(0, 100)
	if total < 100*fill() {
		t.Errorf("ServiceN(100) = %v, want >= %v", total, 100*fill())
	}
	if got := b.Stats().Transactions; got != 100 {
		t.Errorf("transactions = %d, want 100", got)
	}
	if got := b.ServiceN(0, 0); got != 0 {
		t.Errorf("ServiceN(0) = %v", got)
	}
}

func TestStats(t *testing.T) {
	b := MustNew(fill(), 10*simtime.Millisecond)
	b.Service(0)
	b.Service(100)
	st := b.Stats()
	if st.Transactions != 2 || st.BusyTime != 2*fill() {
		t.Errorf("stats = %+v", st)
	}
}

// Property: service time is always in [fill, fill*cap], and utilization is
// always in [0, 1], for arbitrary arrival sequences.
func TestQuickServiceBounds(t *testing.T) {
	f := func(gaps []uint16) bool {
		b := MustNew(fill(), 10*simtime.Millisecond)
		now := simtime.Time(0)
		for _, g := range gaps {
			now = now.Add(simtime.Duration(g) * simtime.Microsecond / 4)
			d := b.Service(now)
			if d < fill() || d > fill().Scale(maxInflation)+1 {
				return false
			}
			u := b.Utilization(now)
			if u < 0 || u > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkService(b *testing.B) {
	bus := MustNew(fill(), 10*simtime.Millisecond)
	now := simtime.Time(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		now = now.Add(bus.Service(now) + simtime.Microsecond)
	}
}
