package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Errorf("Workers(4) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != 1 {
		t.Errorf("Workers(-3) = %d, want 1", got)
	}
}

func TestForEachCoversAllCells(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 33} {
		const n = 100
		var hits [n]atomic.Int32
		err := ForEach(context.Background(), workers, n, func(_ context.Context, i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: cell %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForEachFirstErrorWins(t *testing.T) {
	// Whichever worker count is used, the reported error must be the
	// lowest-indexed one, as in a sequential loop.
	for _, workers := range []int{1, 2, 8} {
		err := ForEach(context.Background(), workers, 50, func(_ context.Context, i int) error {
			if i == 7 || i == 30 {
				return fmt.Errorf("cell %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "cell 7 failed" {
			t.Errorf("workers=%d: err = %v, want cell 7 failed", workers, err)
		}
	}
}

func TestForEachCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := ForEach(ctx, 4, 10, func(context.Context, int) error {
		ran = true
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Error("cell ran after cancellation")
	}
}

func TestForEachErrorCancelsRemaining(t *testing.T) {
	// After the failure is observed, pending cells must see a cancelled
	// context and be skipped.
	var started atomic.Int32
	err := ForEach(context.Background(), 2, 1000, func(ctx context.Context, i int) error {
		started.Add(1)
		if i == 0 {
			return errors.New("boom")
		}
		// Give the failure time to propagate.
		time.Sleep(time.Millisecond)
		return nil
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v", err)
	}
	if n := started.Load(); n > 100 {
		t.Errorf("%d cells started after failure, expected early cutoff", n)
	}
}

func TestForEachPanicBecomesError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForEach(context.Background(), workers, 10, func(_ context.Context, i int) error {
			if i == 3 {
				panic("kaboom")
			}
			return nil
		})
		if err == nil || err.Error() != "parallel: cell 3 panicked: kaboom" {
			t.Errorf("workers=%d: err = %v", workers, err)
		}
	}
}

func TestCellSeedDeterministicAndDistinct(t *testing.T) {
	a := CellSeed(1, 2, 3, 4)
	if b := CellSeed(1, 2, 3, 4); b != a {
		t.Fatalf("CellSeed not deterministic: %x vs %x", a, b)
	}
	seen := map[uint64]string{}
	for mix := uint64(0); mix < 8; mix++ {
		for pol := uint64(0); pol < 8; pol++ {
			for rep := uint64(0); rep < 8; rep++ {
				s := CellSeed(1, mix, pol, rep)
				key := fmt.Sprintf("%d/%d/%d", mix, pol, rep)
				if prev, dup := seen[s]; dup {
					t.Fatalf("seed collision: %s and %s both map to %x", prev, key, s)
				}
				seen[s] = key
			}
		}
	}
	if CellSeed(1, 2) == CellSeed(2, 1) {
		t.Error("CellSeed insensitive to coordinate/root swap")
	}
	if CellSeed(1) == CellSeed(1, 0) {
		t.Error("CellSeed insensitive to coordinate count")
	}
}

// TestForEachSequentialFastPathStopsEarly pins the workers=1 contract: no
// cell after a failing one runs.
func TestForEachSequentialFastPathStopsEarly(t *testing.T) {
	var last int
	err := ForEach(context.Background(), 1, 10, func(_ context.Context, i int) error {
		last = i
		if i == 4 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil || last != 4 {
		t.Fatalf("err=%v last=%d", err, last)
	}
}

func TestFoldVisitsInIndexOrder(t *testing.T) {
	cells := []int{10, 20, 30, 40}
	var order []int
	sum := 0
	Fold(cells, func(i, c int) {
		order = append(order, i)
		sum += c
	})
	if sum != 100 {
		t.Fatalf("sum = %d, want 100", sum)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("visit order %v not ascending", order)
		}
	}
}
