// Package parallel is the experiment layer's campaign runner: a bounded
// worker pool that fans independent simulation cells out across CPUs while
// keeping campaign results bitwise identical to a sequential run.
//
// The experiment drivers (internal/experiments) decompose a campaign into a
// flat grid of cells — (mix × policy × replication) for the scheduling
// comparison, (scenario × point) for the future-machine sweeps — and every
// cell is an independent simulation. Two properties make the fan-out safe:
//
//   - Determinism by construction, not by ordering. Each cell derives its
//     own random seed from the campaign root seed and the cell's grid
//     coordinates (CellSeed, a SplitMix64 mix), and writes its result into
//     a dedicated slot of a pre-sized results slice. Worker count and
//     completion order therefore cannot perturb any output bit.
//   - Isolation. Cells share no mutable state: policies are constructed
//     per cell (alloc.Policy values carry per-run state), and the sched
//     package's reusable runners are pooled per worker, never shared.
//
// The pool size defaults to runtime.GOMAXPROCS(0) and is bounded by the
// cell count; ForEach degenerates to a plain loop for a single worker, so
// sequential behaviour is exactly the historical code path.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count option: n itself when positive, the
// runtime's GOMAXPROCS when n is zero. Negative counts are invalid and
// resolve to 1 (Options.Validate rejects them upstream).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	if n < 0 {
		return 1
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(ctx, i) for every i in [0, n) on a pool of at most
// workers goroutines (resolved via Workers). It returns the error of the
// lowest-numbered failing cell — the same error a sequential loop that
// stops at the first failure would return — or ctx's error if the context
// was cancelled before the work completed.
//
// When a cell fails, the context passed to the remaining cells is
// cancelled so long-running simulations can abort early; cells that have
// already started may still run to completion. fn must confine its writes
// to per-index state (e.g. results[i]) for the fan-out to be
// deterministic.
func ForEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		// Sequential fast path: no goroutines, stop at the first error.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := runCell(ctx, i, fn); err != nil {
				return err
			}
		}
		return nil
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next   atomic.Int64 // next unclaimed cell index
		mu     sync.Mutex
		firstI = n // lowest failing index seen
		firstE error
		wg     sync.WaitGroup
	)
	fail := func(i int, err error) {
		mu.Lock()
		if i < firstI {
			firstI, firstE = i, err
		}
		mu.Unlock()
		cancel()
	}
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				if cctx.Err() != nil {
					return
				}
				if err := runCell(cctx, i, fn); err != nil {
					fail(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstE != nil {
		return firstE
	}
	return ctx.Err()
}

// runCell invokes fn, converting a panic into an error so one corrupt cell
// cannot take down the whole campaign process with an unhelpful stack on a
// random goroutine. The cell's grid index rides as a pprof label, so CPU
// profiles of a campaign attribute samples to the cells that burned them
// even below the experiment layer's own kind/cell labels.
func runCell(ctx context.Context, i int, fn func(ctx context.Context, i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("parallel: cell %d panicked: %v", i, r)
		}
	}()
	pprof.Do(ctx, pprof.Labels("parallel_cell", strconv.Itoa(i)), func(ctx context.Context) {
		err = fn(ctx, i)
	})
	return err
}

// Fold visits every cell result in ascending index order — the one order
// that is independent of worker count and completion timing — so callers
// can merge per-cell statistics (or any other reduction where order
// matters, e.g. floating-point sums) deterministically after a ForEach
// completes. It is deliberately trivial; its value is the contract:
// reductions over fan-out results must happen here, in grid order, never
// inside the worker callbacks.
func Fold[T any](cells []T, merge func(i int, cell T)) {
	for i, c := range cells {
		merge(i, c)
	}
}

// CellSeed derives a deterministic per-cell seed from a campaign root seed
// and the cell's grid coordinates, by chaining SplitMix64 over the
// coordinates. Distinct coordinate vectors yield decorrelated seeds;
// the same (root, coords) always yields the same seed, independent of
// worker count, scheduling order, or which other cells exist.
func CellSeed(root uint64, coords ...uint64) uint64 {
	s := root
	out := splitmix64(&s)
	for _, c := range coords {
		// Spread the (typically tiny) coordinate across the word before
		// folding it in, so neighbouring grid cells mix apart.
		s = out ^ (c+1)*0xda942042e4dd58b5
		out = splitmix64(&s)
	}
	return out
}

// splitmix64 advances a SplitMix64 state and returns the next output
// (same construction as internal/xrand, duplicated to keep this package
// dependency-free).
func splitmix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
