package fleet

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/version"
)

// addTestWorker inserts a live worker directly into the registry, the
// way handleRegister would.
func addTestWorker(c *Coordinator, url string, capacity int) {
	now := time.Now()
	c.mu.Lock()
	c.workers[url] = &workerState{
		id:            WorkerID(url),
		url:           url,
		capacity:      capacity,
		engineVersion: version.Engine,
		registered:    now,
		lastSeen:      now,
		rttHist:       &obs.Histogram{},
	}
	c.mu.Unlock()
}

// TestPlacementNeverExceedsCapacity is the scorer's safety property:
// across randomized fleets, pick never reserves a slot on a worker whose
// capacity is fully occupied, the fleet saturates at exactly the sum of
// capacities, and a saturated fleet yields no placement at all.
func TestPlacementNeverExceedsCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		c := NewCoordinator(Config{})
		capacities := make(map[string]int)
		total := 0
		for i := 0; i < 1+rng.Intn(6); i++ {
			url := fmt.Sprintf("http://w%d", i)
			capa := 1 + rng.Intn(4)
			capacities[url] = capa
			total += capa
			addTestWorker(c, url, capa)
			// Random pre-existing placement signals must not break the
			// invariant either.
			c.mu.Lock()
			ws := c.workers[url]
			ws.rttEWMANs = float64(rng.Intn(50)) * 1e6
			if rng.Intn(3) == 0 {
				ws.addFailure(time.Now())
			}
			c.mu.Unlock()
		}
		picked := make(map[string]int)
		for n := 0; n < total; n++ {
			url, placement := c.pick(map[string]bool{})
			if url == "" {
				t.Fatalf("trial %d: fleet refused placement %d/%d with capacity free", trial, n, total)
			}
			if placement == "" {
				t.Fatalf("trial %d: empty placement attribution", trial)
			}
			picked[url]++
			if picked[url] > capacities[url] {
				t.Fatalf("trial %d: %s picked %d times, capacity %d", trial, url, picked[url], capacities[url])
			}
		}
		// Saturated: every slot held (nothing released), so the next pick
		// must refuse rather than overload anyone.
		if url, _ := c.pick(map[string]bool{}); url != "" {
			t.Fatalf("trial %d: pick placed on %s beyond fleet capacity", trial, url)
		}
		if c.Stats.PlacementCapacitySkips.Load() == 0 {
			t.Errorf("trial %d: saturation never counted a capacity skip", trial)
		}
	}
}

// TestPlacementHysteresisConverges pins the failure penalty's shape: a
// failed worker is immediately deprioritized, stays deprioritized while
// the penalty dominates, and converges back to winning placements once
// the decay crosses the floor — deprioritized, never dropped.
func TestPlacementHysteresisConverges(t *testing.T) {
	c := NewCoordinator(Config{})
	// flaky would win on load (bigger capacity) if penalties were equal.
	addTestWorker(c, "http://flaky", 8)
	addTestWorker(c, "http://steady", 2)

	url, _ := c.pick(map[string]bool{})
	if url != "http://flaky" {
		t.Fatalf("baseline pick = %s, want the higher-capacity worker", url)
	}
	c.release("http://flaky", 0, true, false) // soft failure: penalize, keep

	// Immediately after the failure the penalty (1.0) dwarfs the load
	// advantage, so the steady worker wins.
	url, _ = c.pick(map[string]bool{})
	if url != "http://steady" {
		t.Fatalf("post-failure pick = %s, want the steady worker", url)
	}
	c.release("http://steady", 0, false, false)

	// The worker is still registered — deprioritized is not dropped.
	if got := c.LiveWorkers(); got != 2 {
		t.Fatalf("LiveWorkers = %d after soft failure, want 2", got)
	}

	// Convergence: the decayed penalty reaches exactly 0 once it crosses
	// the floor, so the scores return to their baseline ordering.
	c.mu.Lock()
	flaky := c.workers["http://flaky"]
	now := flaky.penaltyAt
	if p := flaky.failurePenaltyAt(now); p != penaltyPerFailure {
		t.Errorf("penalty at failure time = %v, want %v", p, penaltyPerFailure)
	}
	if p := flaky.failurePenaltyAt(now.Add(penaltyHalfLife)); p != penaltyPerFailure/2 {
		t.Errorf("penalty after one half-life = %v, want %v", p, penaltyPerFailure/2)
	}
	converged := now.Add(20 * penaltyHalfLife) // 2^-20 is far below the floor
	if p := flaky.failurePenaltyAt(converged); p != 0 {
		t.Errorf("penalty after 20 half-lives = %v, want exactly 0", p)
	}
	sFlaky := flaky.score(converged, 0)
	sSteady := c.workers["http://steady"].score(converged, 0)
	c.mu.Unlock()
	if sFlaky >= sSteady {
		t.Errorf("converged scores: flaky %v >= steady %v, want baseline order restored", sFlaky, sSteady)
	}
}

// TestPlacementPrefersMeasuredRTT: with load equal, the worker with the
// lower RTT EWMA wins, and an unmeasured worker scores as if it matched
// the fastest (optimism earns fresh workers a measurement).
func TestPlacementPrefersMeasuredRTT(t *testing.T) {
	c := NewCoordinator(Config{})
	addTestWorker(c, "http://far", 4)
	addTestWorker(c, "http://near", 4)
	c.mu.Lock()
	c.workers["http://far"].rttEWMANs = 80e6 // 80ms
	c.workers["http://near"].rttEWMANs = 2e6 // 2ms
	c.mu.Unlock()

	url, placement := c.pick(map[string]bool{})
	if url != "http://near" {
		t.Fatalf("pick = %s (%s), want the near worker", url, placement)
	}
	// An unmeasured newcomer is scored optimistically — rtt term 1.0, as
	// if it matched the fastest candidate — never worse. With a lighter
	// load it therefore beats a measured worker outright.
	addTestWorker(c, "http://zfresh", 8)
	tried := map[string]bool{"http://near": true}
	url, _ = c.pick(tried)
	if url != "http://zfresh" {
		t.Fatalf("pick among {far, fresh} = %s, want the unmeasured fresh worker", url)
	}
	c.mu.Lock()
	fresh := c.workers["http://zfresh"].score(time.Now(), 80e6)
	far := c.workers["http://far"].score(time.Now(), 80e6)
	c.mu.Unlock()
	if fresh > far {
		t.Errorf("unmeasured score %v > measured-slowest score %v; optimism lost", fresh, far)
	}
}

// TestBudgetSemantics pins Budget's accounting: n units then latched
// exhaustion, nil and non-positive budgets unlimited.
func TestBudgetSemantics(t *testing.T) {
	b := NewBudget(2)
	if !b.TrySpend() || !b.TrySpend() {
		t.Fatal("budget refused within its allowance")
	}
	if b.Exhausted() {
		t.Fatal("Exhausted latched before any refusal")
	}
	if b.TrySpend() {
		t.Fatal("budget allowed a third spend of 2")
	}
	if !b.Exhausted() {
		t.Fatal("Exhausted not latched after refusal")
	}

	var nilBudget *Budget
	unlimited := NewBudget(0)
	for i := 0; i < 100; i++ {
		if !nilBudget.TrySpend() || !unlimited.TrySpend() {
			t.Fatal("unlimited budget refused")
		}
	}
	if nilBudget.Exhausted() || unlimited.Exhausted() {
		t.Fatal("unlimited budget reported exhaustion")
	}
}

// TestDispatchBudgetExhausted: with every worker dead and a one-unit
// budget, the dispatch spends its single retry, then stops relaunching
// and reports ErrBudgetExhausted — the caller's cue to run locally.
func TestDispatchBudgetExhausted(t *testing.T) {
	c := NewCoordinator(Config{Backoff: time.Millisecond, HedgeDelay: time.Minute})
	ts := coordServer(t, c)
	for i := 0; i < 3; i++ {
		dead := httptest.NewServer(nil)
		url := dead.URL
		dead.Close()
		registerWorker(t, ts.URL, url, 4, version.Engine)
	}

	budget := NewBudget(1)
	_, err := c.DispatchBudget(context.Background(), execReq("c0"), budget)
	if err != ErrBudgetExhausted {
		t.Fatalf("DispatchBudget error = %v, want ErrBudgetExhausted", err)
	}
	if !budget.Exhausted() {
		t.Error("budget not latched exhausted")
	}
	if got := c.Stats.Retries.Load(); got != 1 {
		t.Errorf("Retries = %d, want exactly the budgeted 1", got)
	}
	// With the budget already dry, the next dispatch cannot even retry:
	// one attempt on the last live worker, then exhaustion again (every
	// attempt failed and nothing may relaunch).
	if _, err := c.DispatchBudget(context.Background(), execReq("c1"), budget); err == nil {
		t.Fatal("second dispatch succeeded with all workers dead")
	}
}
