package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"

	"repro/internal/diskstore"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/resultcache"
	"repro/internal/version"
)

// WorkerConfig parameterizes a Worker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL ("http://host:port").
	Coordinator string
	// Capacity is advertised to the coordinator as the max concurrent
	// cells this worker wants (<=0 lets the coordinator default it).
	Capacity int
	// Cache and Store are the worker's local tiers, consulted before
	// peer fill and execution; either may be nil.
	Cache *resultcache.Cache
	Store *diskstore.Store
	// Heartbeat is the registration re-POST interval (default 2s).
	Heartbeat time.Duration
	// Client overrides the HTTP client used for heartbeats and peer
	// fill.
	Client *http.Client
	// Logf, when non-nil, receives registration failures (a worker keeps
	// retrying — the coordinator may simply not be up yet).
	Logf func(format string, args ...any)
}

// WorkerMetrics are the worker-side counters rendered as
// affinityd_fleet_worker_* at /metrics.
type WorkerMetrics struct {
	// Requests counts execute requests received.
	Requests obs.Counter
	// Executions counts cells this worker simulated to completion.
	Executions obs.Counter
	// CacheHits/DiskHits count execute requests served from the
	// worker's local memory cache / disk store.
	CacheHits obs.Counter
	DiskHits  obs.Counter
	// PeerFills counts cells served by asking the coordinator's store
	// instead of executing.
	PeerFills obs.Counter
	// Errors counts execute requests that failed (bad plan coordinate,
	// identity mismatch, or execution error).
	Errors obs.Counter
	// ExecNs is the local execution wall time per executed cell.
	ExecNs obs.Histogram
}

// Worker executes dispatched cells and keeps itself registered with the
// coordinator.
type Worker struct {
	cfg    WorkerConfig
	client *http.Client

	// Stats holds the worker counters; read directly by /metrics.
	Stats WorkerMetrics

	mu        sync.Mutex
	advertise string

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// NewWorker builds a Worker; Start begins the heartbeat loop once the
// advertised URL is known (after the listener binds).
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 2 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = defaultClient()
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Worker{cfg: cfg, client: client, ctx: ctx, cancel: cancel}
}

// RegisterHandlers mounts the worker's execute endpoint.
func (w *Worker) RegisterHandlers(mux *http.ServeMux) {
	mux.HandleFunc("POST "+PathExecute, w.handleExecute)
}

// Start begins registering (and re-registering every heartbeat) with
// the coordinator, advertising the given base URL. The first
// registration is attempted synchronously so a worker that prints
// "joined" is already dispatchable; failures are retried in the
// background.
func (w *Worker) Start(advertise string) {
	w.mu.Lock()
	w.advertise = advertise
	w.mu.Unlock()
	w.register()
	w.wg.Add(1)
	go w.heartbeatLoop()
}

// Stop ends the heartbeat loop.
func (w *Worker) Stop() {
	w.cancel()
	w.wg.Wait()
}

func (w *Worker) heartbeatLoop() {
	defer w.wg.Done()
	tick := time.NewTicker(w.cfg.Heartbeat)
	defer tick.Stop()
	for {
		select {
		case <-w.ctx.Done():
			return
		case <-tick.C:
			w.register()
		}
	}
}

// register POSTs one registration/heartbeat, bounded by the heartbeat
// interval so a hung coordinator cannot back the loop up.
func (w *Worker) register() {
	w.mu.Lock()
	advertise := w.advertise
	w.mu.Unlock()
	body, err := json.Marshal(RegisterRequest{
		URL:           advertise,
		Capacity:      w.cfg.Capacity,
		EngineVersion: version.Engine,
	})
	if err != nil {
		return
	}
	ctx, cancel := context.WithTimeout(w.ctx, w.cfg.Heartbeat)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+PathRegister, bytes.NewReader(body))
	if err != nil {
		w.logf("fleet: register: %v", err)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		w.logf("fleet: register with %s: %v", w.cfg.Coordinator, err)
		return
	}
	defer resp.Body.Close()
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		// 409 is engine-version skew: permanent until redeploy, but a
		// redeploy is exactly what fixes it, so keep heartbeating.
		w.logf("fleet: register with %s: status %d: %.200s", w.cfg.Coordinator, resp.StatusCode, msg)
	}
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// handleExecute runs one dispatched cell. Lookup order mirrors the
// coordinator's own tiers, extended by peer cache fill: local memory →
// local disk → coordinator store → execute. Whatever the source, the
// response carries the cell's canonical bytes and their provenance.
func (w *Worker) handleExecute(rw http.ResponseWriter, r *http.Request) {
	w.Stats.Requests.Inc()
	var req ExecuteRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		w.Stats.Errors.Inc()
		writeFleetError(rw, http.StatusBadRequest, fmt.Sprintf("bad execute body: %v", err))
		return
	}
	plan, err := experiments.Cells(req.Kind, req.Params)
	if err != nil {
		w.Stats.Errors.Inc()
		writeFleetError(rw, http.StatusBadRequest, fmt.Sprintf("cell plan: %v", err))
		return
	}
	if req.Index < 0 || req.Index >= len(plan.Cells) {
		w.Stats.Errors.Inc()
		writeFleetError(rw, http.StatusBadRequest, fmt.Sprintf("cell index %d outside plan (%d cells)", req.Index, len(plan.Cells)))
		return
	}
	cell := &plan.Cells[req.Index]
	key := resultcache.Key(cell.KeyKind, cell.KeyParams, version.Engine)
	if cell.ID != req.CellID || key != req.Key {
		// The two sides derived different plans from the same params —
		// engine-version skew or a protocol bug. Refusing is the only
		// safe answer: these bytes would be filed under the wrong key.
		w.Stats.Errors.Inc()
		writeFleetError(rw, http.StatusConflict, fmt.Sprintf(
			"plan mismatch: computed cell %q key %.16s, dispatched %q %.16s", cell.ID, key, req.CellID, req.Key))
		return
	}
	w.mu.Lock()
	advertise := w.advertise
	w.mu.Unlock()
	resp := ExecuteResponse{CellID: cell.ID, Key: key, Worker: advertise, Engine: cell.Engine}

	if w.cfg.Cache != nil {
		if body, ok := w.cfg.Cache.Get(key); ok {
			w.Stats.CacheHits.Inc()
			resp.Source, resp.Body = "cache", body
			writeFleetJSON(rw, http.StatusOK, resp)
			return
		}
	}
	if w.cfg.Store != nil {
		if body, costNs, ok := w.cfg.Store.Get(key); ok {
			w.Stats.DiskHits.Inc()
			if w.cfg.Cache != nil {
				w.cfg.Cache.PutCost(key, body, costNs)
			}
			resp.Source, resp.Body, resp.ExecNs = "disk", body, costNs
			writeFleetJSON(rw, http.StatusOK, resp)
			return
		}
	}
	if body, costNs, ok := w.peerFetch(r.Context(), key); ok {
		w.Stats.PeerFills.Inc()
		if w.cfg.Cache != nil {
			w.cfg.Cache.PutCost(key, body, costNs)
		}
		resp.Source, resp.Body, resp.ExecNs = "peer", body, costNs
		writeFleetJSON(rw, http.StatusOK, resp)
		return
	}

	start := time.Now()
	var res any
	var runErr error
	pprof.Do(r.Context(), pprof.Labels("campaign", plan.Kind, "cell", cell.ID), func(ctx context.Context) {
		res, runErr = cell.Run(ctx)
	})
	if runErr != nil {
		w.Stats.Errors.Inc()
		writeFleetError(rw, http.StatusInternalServerError, fmt.Sprintf("cell %s: %v", cell.ID, runErr))
		return
	}
	body, err := report.CanonicalJSON(res)
	if err != nil {
		w.Stats.Errors.Inc()
		writeFleetError(rw, http.StatusInternalServerError, fmt.Sprintf("encode cell %s: %v", cell.ID, err))
		return
	}
	elapsed := uint64(time.Since(start))
	w.Stats.Executions.Inc()
	w.Stats.ExecNs.Observe(elapsed)
	// Cache locally in both tiers: the worker's future dispatches (and
	// its own client traffic, if any) reuse the work even if the
	// coordinator's copy is evicted.
	if w.cfg.Cache != nil {
		w.cfg.Cache.PutCost(key, body, elapsed)
	}
	if w.cfg.Store != nil {
		w.cfg.Store.Put(key, body, elapsed)
	}
	resp.Source, resp.Body, resp.ExecNs = "executed", body, elapsed
	writeFleetJSON(rw, http.StatusOK, resp)
}

// peerFetch asks the coordinator's cache tiers for a cell body before
// paying to execute it — the fleet-wide read path that makes N daemons
// one logical cache.
func (w *Worker) peerFetch(ctx context.Context, key string) ([]byte, uint64, bool) {
	if w.cfg.Coordinator == "" {
		return nil, 0, false
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.cfg.Coordinator+PathCells+url.PathEscape(key), nil)
	if err != nil {
		return nil, 0, false
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return nil, 0, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, 0, false
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil || len(body) == 0 || !json.Valid(body) {
		return nil, 0, false
	}
	costNs, _ := strconv.ParseUint(resp.Header.Get(execCostHeader), 10, 64)
	return body, costNs, true
}
