package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/diskstore"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/resultcache"
	"repro/internal/version"
)

// WorkerConfig parameterizes a Worker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL ("http://host:port").
	Coordinator string
	// Token is the fleet's shared secret; must match the coordinator's
	// -fleet-token or every registration is refused with 401. Empty
	// disables signing.
	Token string
	// Capacity is advertised to the coordinator as the max concurrent
	// cells this worker wants (<=0 lets the coordinator default it). The
	// worker also enforces it locally: execute requests beyond capacity
	// are refused with 429 so an overeager or skewed coordinator cannot
	// pile work past what was advertised.
	Capacity int
	// Cache and Store are the worker's local tiers, consulted before
	// peer fill and execution, and served back to the fleet via the
	// cell-read endpoint; either may be nil.
	Cache *resultcache.Cache
	Store *diskstore.Store
	// Heartbeat is the registration re-POST interval (default 2s).
	Heartbeat time.Duration
	// Client overrides the HTTP client used for heartbeats and peer
	// fill.
	Client *http.Client
	// Logf, when non-nil, receives registration failures (a worker keeps
	// retrying — the coordinator may simply not be up yet).
	Logf func(format string, args ...any)
}

// WorkerMetrics are the worker-side counters rendered as
// affinityd_fleet_worker_* at /metrics.
type WorkerMetrics struct {
	// Requests counts execute requests received.
	Requests obs.Counter
	// Executions counts cells this worker simulated to completion.
	Executions obs.Counter
	// CacheHits/DiskHits count execute requests served from the
	// worker's local memory cache / disk store.
	CacheHits obs.Counter
	DiskHits  obs.Counter
	// PeerFills counts cells served by asking the coordinator's store
	// instead of executing.
	PeerFills obs.Counter
	// CellServes counts cell-read requests this worker answered from its
	// own tiers — the worker's half of bidirectional peer fill.
	CellServes obs.Counter
	// AuthRejections counts fleet requests this worker refused with 401.
	AuthRejections obs.Counter
	// Rejections counts execute requests refused with 429 because the
	// worker was already at its advertised capacity.
	Rejections obs.Counter
	// Errors counts execute requests that failed (bad plan coordinate,
	// identity mismatch, or execution error).
	Errors obs.Counter
	// ExecNs is the local execution wall time per executed cell.
	ExecNs obs.Histogram
}

// Worker executes dispatched cells and keeps itself registered with the
// coordinator.
type Worker struct {
	cfg    WorkerConfig
	client *http.Client
	auth   *authenticator

	// Stats holds the worker counters; read directly by /metrics.
	Stats WorkerMetrics

	mu        sync.Mutex
	advertise string

	inflight atomic.Int64

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// NewWorker builds a Worker; Start begins the heartbeat loop once the
// advertised URL is known (after the listener binds).
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 2 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = defaultClient()
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Worker{
		cfg:    cfg,
		client: client,
		auth:   newAuthenticator(cfg.Token),
		ctx:    ctx,
		cancel: cancel,
	}
}

// RegisterHandlers mounts the worker's fleet endpoints: cell execution,
// and the cell-read endpoint that exposes the worker's own memory+disk
// tiers to the rest of the fleet (the coordinator relays misses here).
func (w *Worker) RegisterHandlers(mux *http.ServeMux) {
	mux.HandleFunc("POST "+PathExecute, w.handleExecute)
	mux.HandleFunc("GET "+PathCells+"{key}", w.handleCell)
}

// capacity is the worker's locally-enforced concurrent execute bound.
func (w *Worker) capacity() int64 {
	if w.cfg.Capacity > 0 {
		return int64(w.cfg.Capacity)
	}
	return 4 // mirrors the coordinator's DefaultCapacity
}

// Start begins registering (and re-registering every heartbeat) with
// the coordinator, advertising the given base URL. The first
// registration is attempted synchronously so a worker that prints
// "joined" is already dispatchable; failures are retried in the
// background.
func (w *Worker) Start(advertise string) {
	w.mu.Lock()
	w.advertise = advertise
	w.mu.Unlock()
	w.register()
	w.wg.Add(1)
	go w.heartbeatLoop()
}

// Stop ends the heartbeat loop.
func (w *Worker) Stop() {
	w.cancel()
	w.wg.Wait()
}

func (w *Worker) heartbeatLoop() {
	defer w.wg.Done()
	tick := time.NewTicker(w.cfg.Heartbeat)
	defer tick.Stop()
	for {
		select {
		case <-w.ctx.Done():
			return
		case <-tick.C:
			w.register()
		}
	}
}

// register POSTs one signed registration/heartbeat, bounded by the
// heartbeat interval so a hung coordinator cannot back the loop up.
func (w *Worker) register() {
	w.mu.Lock()
	advertise := w.advertise
	w.mu.Unlock()
	body, err := json.Marshal(RegisterRequest{
		URL:           advertise,
		Capacity:      w.cfg.Capacity,
		EngineVersion: version.Engine,
	})
	if err != nil {
		return
	}
	ctx, cancel := context.WithTimeout(w.ctx, w.cfg.Heartbeat)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+PathRegister, bytes.NewReader(body))
	if err != nil {
		w.logf("fleet: register: %v", err)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	w.auth.sign(req, body)
	resp, err := w.client.Do(req)
	if err != nil {
		w.logf("fleet: register with %s: %v", w.cfg.Coordinator, err)
		return
	}
	defer resp.Body.Close()
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		// 409 is engine-version skew: permanent until redeploy, but a
		// redeploy is exactly what fixes it, so keep heartbeating. 401 is
		// a token mismatch — same deal: fixing the flag and restarting is
		// the remedy, and the log line says which daemon to fix.
		w.logf("fleet: register with %s: status %d: %.200s", w.cfg.Coordinator, resp.StatusCode, msg)
	}
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// handleExecute runs one dispatched cell. Lookup order mirrors the
// coordinator's own tiers, extended by peer cache fill: local memory →
// local disk → coordinator store → execute. Whatever the source, the
// response carries the cell's canonical bytes and their provenance.
func (w *Worker) handleExecute(rw http.ResponseWriter, r *http.Request) {
	w.Stats.Requests.Inc()
	api.EchoRequestID(rw, r)
	raw, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		w.Stats.Errors.Inc()
		writeFleetError(rw, http.StatusBadRequest, "invalid_request", "", fmt.Sprintf("read body: %v", err))
		return
	}
	if err := w.auth.verify(r, raw); err != nil {
		w.Stats.AuthRejections.Inc()
		writeAuthError(rw, err)
		return
	}
	var req ExecuteRequest
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		w.Stats.Errors.Inc()
		writeFleetError(rw, http.StatusBadRequest, "invalid_request", "", fmt.Sprintf("bad execute body: %v", err))
		return
	}
	// Enforce the advertised capacity locally: a worker is the authority
	// on its own concurrency, whatever the coordinator believes. The
	// Retry-After matches the coordinator's backoff scale — the refused
	// attempt retries elsewhere, and capacity frees within a cell's
	// execution time.
	if n := w.inflight.Add(1); n > w.capacity() {
		w.inflight.Add(-1)
		w.Stats.Rejections.Inc()
		rw.Header().Set("Retry-After", "1")
		writeFleetError(rw, http.StatusTooManyRequests, "over_capacity", "",
			fmt.Sprintf("worker at capacity (%d cells in flight)", w.capacity()))
		return
	}
	defer w.inflight.Add(-1)
	plan, err := experiments.Cells(req.Kind, req.Params)
	if err != nil {
		w.Stats.Errors.Inc()
		writeFleetError(rw, http.StatusBadRequest, "invalid_param", "params", fmt.Sprintf("cell plan: %v", err))
		return
	}
	if req.Index < 0 || req.Index >= len(plan.Cells) {
		w.Stats.Errors.Inc()
		writeFleetError(rw, http.StatusBadRequest, "invalid_param", "index",
			fmt.Sprintf("cell index %d outside plan (%d cells)", req.Index, len(plan.Cells)))
		return
	}
	cell := &plan.Cells[req.Index]
	key := resultcache.Key(cell.KeyKind, cell.KeyParams, version.Engine)
	if cell.ID != req.CellID || key != req.Key {
		// The two sides derived different plans from the same params —
		// engine-version skew or a protocol bug. Refusing is the only
		// safe answer: these bytes would be filed under the wrong key.
		w.Stats.Errors.Inc()
		writeFleetError(rw, http.StatusConflict, "plan_mismatch", "", fmt.Sprintf(
			"plan mismatch: computed cell %q key %.16s, dispatched %q %.16s", cell.ID, key, req.CellID, req.Key))
		return
	}
	w.mu.Lock()
	advertise := w.advertise
	w.mu.Unlock()
	resp := ExecuteResponse{APIVersion: api.Version, CellID: cell.ID, Key: key, Worker: advertise, Engine: cell.Engine}

	if w.cfg.Cache != nil {
		if body, ok := w.cfg.Cache.Get(key); ok {
			w.Stats.CacheHits.Inc()
			resp.Source, resp.Body = "cache", body
			writeFleetJSON(rw, http.StatusOK, resp)
			return
		}
	}
	if w.cfg.Store != nil {
		if body, costNs, ok := w.cfg.Store.Get(key); ok {
			w.Stats.DiskHits.Inc()
			if w.cfg.Cache != nil {
				w.cfg.Cache.PutCost(key, body, costNs)
			}
			resp.Source, resp.Body, resp.ExecNs = "disk", body, costNs
			writeFleetJSON(rw, http.StatusOK, resp)
			return
		}
	}
	if body, costNs, ok := w.peerFetch(r.Context(), key, r.Header.Get(api.RequestIDHeader)); ok {
		w.Stats.PeerFills.Inc()
		if w.cfg.Cache != nil {
			w.cfg.Cache.PutCost(key, body, costNs)
		}
		resp.Source, resp.Body, resp.ExecNs = "peer", body, costNs
		writeFleetJSON(rw, http.StatusOK, resp)
		return
	}

	start := time.Now()
	var res any
	var runErr error
	pprof.Do(r.Context(), pprof.Labels("campaign", plan.Kind, "cell", cell.ID), func(ctx context.Context) {
		res, runErr = cell.Run(ctx)
	})
	if runErr != nil {
		w.Stats.Errors.Inc()
		writeFleetError(rw, http.StatusInternalServerError, "internal", "", fmt.Sprintf("cell %s: %v", cell.ID, runErr))
		return
	}
	body, err := report.CanonicalJSON(res)
	if err != nil {
		w.Stats.Errors.Inc()
		writeFleetError(rw, http.StatusInternalServerError, "internal", "", fmt.Sprintf("encode cell %s: %v", cell.ID, err))
		return
	}
	elapsed := uint64(time.Since(start))
	w.Stats.Executions.Inc()
	w.Stats.ExecNs.Observe(elapsed)
	// Cache locally in both tiers: the worker's future dispatches (and
	// the rest of the fleet, via the cell-read endpoint) reuse the work
	// even if the coordinator's copy is evicted.
	if w.cfg.Cache != nil {
		w.cfg.Cache.PutCost(key, body, elapsed)
	}
	if w.cfg.Store != nil {
		w.cfg.Store.Put(key, body, elapsed)
	}
	resp.Source, resp.Body, resp.ExecNs = "executed", body, elapsed
	writeFleetJSON(rw, http.StatusOK, resp)
}

// handleCell serves the worker's own tiers to the fleet: the read half
// of bidirectional peer fill. The coordinator relays its own cell-read
// misses here, so bytes only this worker ever computed are reachable
// from every other fleet member.
func (w *Worker) handleCell(rw http.ResponseWriter, r *http.Request) {
	api.EchoRequestID(rw, r)
	if err := w.auth.verify(r, nil); err != nil {
		w.Stats.AuthRejections.Inc()
		writeAuthError(rw, err)
		return
	}
	key := r.PathValue("key")
	if w.cfg.Cache != nil {
		if body, costNs, ok := w.cfg.Cache.GetCost(key); ok {
			w.Stats.CellServes.Inc()
			serveCell(rw, body, costNs)
			return
		}
	}
	if w.cfg.Store != nil {
		if body, costNs, ok := w.cfg.Store.Get(key); ok {
			w.Stats.CellServes.Inc()
			serveCell(rw, body, costNs)
			return
		}
	}
	writeFleetError(rw, http.StatusNotFound, "not_found", "", "cell not in this worker's tiers")
}

// peerFetch asks the coordinator's cache tiers for a cell body before
// paying to execute it — the fleet-wide read path that makes N daemons
// one logical cache. The X-Fleet-Peer header names this worker so the
// coordinator's relay skips it, and the request id rides along so the
// whole fan-out correlates.
func (w *Worker) peerFetch(ctx context.Context, key, requestID string) ([]byte, uint64, bool) {
	if w.cfg.Coordinator == "" {
		return nil, 0, false
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.cfg.Coordinator+PathCells+url.PathEscape(key), nil)
	if err != nil {
		return nil, 0, false
	}
	w.mu.Lock()
	req.Header.Set(peerHeader, w.advertise)
	w.mu.Unlock()
	if requestID != "" {
		req.Header.Set(api.RequestIDHeader, requestID)
	}
	w.auth.sign(req, nil)
	resp, err := w.client.Do(req)
	if err != nil {
		return nil, 0, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, 0, false
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil || len(body) == 0 || !json.Valid(body) {
		return nil, 0, false
	}
	costNs, _ := strconv.ParseUint(resp.Header.Get(execCostHeader), 10, 64)
	return body, costNs, true
}
