package fleet

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"net/http"
	"strconv"
	"time"
)

// Fleet transport authentication: a shared secret (-fleet-token on every
// daemon) never crosses the wire. Each request instead carries an HMAC-
// SHA256 signature over (method, path, timestamp, body) plus the
// timestamp it was signed at:
//
//	X-Fleet-Timestamp: unix seconds
//	X-Fleet-Signature: hex(HMAC-SHA256(token, method \n path \n ts \n body))
//
// Verification recomputes the MAC and compares in constant time
// (hmac.Equal), so a byte-wise timing oracle cannot leak the expected
// signature. The timestamp bounds replay: a signature older (or further
// in the future — clocks skew both ways) than the skew window is
// refused even though its MAC is valid, so a captured register or
// execute request cannot be replayed later against a fleet whose
// membership it no longer describes. Within the window a replayed
// request is harmless by construction: every fleet operation is
// idempotent (registration upserts, execution is content-addressed).
//
// An empty token disables authentication entirely — the pre-auth flat
// trusted network mode — so in-process tests and single-machine setups
// keep working unchanged.

// Auth header names.
const (
	authTimestampHeader = "X-Fleet-Timestamp"
	authSignatureHeader = "X-Fleet-Signature"
)

// authMaxSkew is how far a request's signing timestamp may lie from the
// verifier's clock before the signature counts as stale/replayed.
const authMaxSkew = 2 * time.Minute

// Auth verification failures, all surfaced to clients as 401 with the
// standard envelope (code "unauthenticated"); the distinct values keep
// tests and logs precise about *why*.
var (
	errAuthMissing = errors.New("fleet: request unsigned (missing auth headers)")
	errAuthStale   = errors.New("fleet: signature timestamp outside the replay window")
	errAuthBad     = errors.New("fleet: signature mismatch")
)

// authenticator signs outbound and verifies inbound fleet requests. The
// zero value (or nil) is the disabled authenticator: it signs nothing
// and accepts everything.
type authenticator struct {
	token []byte
	// maxSkew overrides authMaxSkew when positive (tests).
	maxSkew time.Duration
	// now overrides time.Now (tests).
	now func() time.Time
}

func newAuthenticator(token string) *authenticator {
	if token == "" {
		return nil
	}
	return &authenticator{token: []byte(token)}
}

func (a *authenticator) enabled() bool { return a != nil && len(a.token) > 0 }

func (a *authenticator) clock() time.Time {
	if a.now != nil {
		return a.now()
	}
	return time.Now()
}

func (a *authenticator) skew() time.Duration {
	if a.maxSkew > 0 {
		return a.maxSkew
	}
	return authMaxSkew
}

// mac computes the request MAC. The parts are newline-joined; none of
// them can contain a newline (method and timestamp by construction, the
// path because it is an escaped URL path), so the framing is unambiguous
// before the body begins.
func (a *authenticator) mac(method, path, ts string, body []byte) []byte {
	h := hmac.New(sha256.New, a.token)
	h.Write([]byte(method))
	h.Write([]byte{'\n'})
	h.Write([]byte(path))
	h.Write([]byte{'\n'})
	h.Write([]byte(ts))
	h.Write([]byte{'\n'})
	h.Write(body)
	return h.Sum(nil)
}

// sign stamps req with the timestamp and signature headers. body must be
// exactly the bytes the request will carry. A disabled authenticator is
// a no-op.
func (a *authenticator) sign(req *http.Request, body []byte) {
	if !a.enabled() {
		return
	}
	ts := strconv.FormatInt(a.clock().Unix(), 10)
	req.Header.Set(authTimestampHeader, ts)
	req.Header.Set(authSignatureHeader,
		hex.EncodeToString(a.mac(req.Method, req.URL.EscapedPath(), ts, body)))
}

// verify checks r's signature against body (the already-read request
// body). A disabled authenticator accepts everything.
func (a *authenticator) verify(r *http.Request, body []byte) error {
	if !a.enabled() {
		return nil
	}
	ts := r.Header.Get(authTimestampHeader)
	sig := r.Header.Get(authSignatureHeader)
	if ts == "" || sig == "" {
		return errAuthMissing
	}
	sec, err := strconv.ParseInt(ts, 10, 64)
	if err != nil {
		return errAuthBad
	}
	if d := a.clock().Sub(time.Unix(sec, 0)); d > a.skew() || d < -a.skew() {
		return errAuthStale
	}
	got, err := hex.DecodeString(sig)
	if err != nil {
		return errAuthBad
	}
	if !hmac.Equal(got, a.mac(r.Method, r.URL.EscapedPath(), ts, body)) {
		return errAuthBad
	}
	return nil
}
