package fleet

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/version"
)

// signedRegister builds a register POST for workerURL signed by a (nil a
// = unsigned), with mutate applied to the request after signing.
func signedRegister(t *testing.T, a *authenticator, coordURL, workerURL string, mutate func(*http.Request)) *http.Request {
	t.Helper()
	body, _ := json.Marshal(RegisterRequest{URL: workerURL, Capacity: 2, EngineVersion: version.Engine})
	req, err := http.NewRequest(http.MethodPost, coordURL+PathRegister, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if a != nil {
		a.sign(req, body)
	}
	if mutate != nil {
		mutate(req)
	}
	return req
}

// decodeEnvelope parses a non-2xx fleet response as the standard /v1
// error envelope, failing the test on any shape violation.
func decodeEnvelope(t *testing.T, resp *http.Response) api.ErrorEnvelope {
	t.Helper()
	defer resp.Body.Close()
	var env api.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("response is not the error envelope: %v", err)
	}
	if env.APIVersion != api.Version {
		t.Errorf("envelope api_version = %q, want %q", env.APIVersion, api.Version)
	}
	if env.Error.Code == "" {
		t.Error("envelope error.code empty")
	}
	return env
}

// TestAuthRejectionTable drives the coordinator's register endpoint
// through the signature failure modes: missing, garbled, replayed
// (stale timestamp), future-dated, and tampered-body requests are all
// refused with the 401 envelope, and a correctly signed request is
// accepted.
func TestAuthRejectionTable(t *testing.T) {
	const token = "test-fleet-secret"
	c := NewCoordinator(Config{Token: token})
	ts := coordServer(t, c)
	good := newAuthenticator(token)

	cases := []struct {
		name   string
		auth   *authenticator
		mutate func(*http.Request)
		want   int
	}{
		{name: "signed", auth: good, want: http.StatusOK},
		{name: "missing signature", auth: nil, want: http.StatusUnauthorized},
		{name: "garbled signature", auth: good, want: http.StatusUnauthorized,
			mutate: func(r *http.Request) { r.Header.Set(authSignatureHeader, "not-hex-at-all") }},
		{name: "wrong token", auth: newAuthenticator("some-other-secret"), want: http.StatusUnauthorized},
		{name: "replayed (stale timestamp)", want: http.StatusUnauthorized,
			auth: &authenticator{token: []byte(token), now: func() time.Time { return time.Now().Add(-authMaxSkew - time.Minute) }}},
		{name: "future timestamp", want: http.StatusUnauthorized,
			auth: &authenticator{token: []byte(token), now: func() time.Time { return time.Now().Add(authMaxSkew + time.Minute) }}},
		{name: "tampered body", auth: good, want: http.StatusUnauthorized,
			mutate: func(r *http.Request) {
				tampered, _ := json.Marshal(RegisterRequest{URL: "http://evil", Capacity: 2, EngineVersion: version.Engine})
				r.ContentLength = int64(len(tampered))
				r.Body = io.NopCloser(bytes.NewReader(tampered))
			}},
	}
	rejections := uint64(0)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := signedRegister(t, tc.auth, ts.URL, "http://w-"+strings.ReplaceAll(tc.name, " ", "-"), tc.mutate)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.want)
			}
			if tc.want == http.StatusUnauthorized {
				rejections++
				env := decodeEnvelope(t, resp)
				if env.Error.Code != "unauthenticated" {
					t.Errorf("error.code = %q, want unauthenticated", env.Error.Code)
				}
			} else {
				resp.Body.Close()
			}
		})
	}
	if got := c.Stats.AuthRejections.Load(); got != rejections {
		t.Errorf("AuthRejections = %d, want %d", got, rejections)
	}
	// Only the correctly signed registration landed.
	if got := c.LiveWorkers(); got != 1 {
		t.Errorf("LiveWorkers = %d, want 1 (only the signed registration)", got)
	}
}

// TestWorkerAuth covers the worker side of the transport: its execute
// and cell-read endpoints refuse unsigned requests with the 401
// envelope, and a worker holding the wrong token never joins the
// coordinator's registry.
func TestWorkerAuth(t *testing.T) {
	const token = "worker-auth-secret"
	c := NewCoordinator(Config{Token: token})
	coord := coordServer(t, c)

	w := NewWorker(WorkerConfig{Coordinator: coord.URL, Token: "wrong-token", Capacity: 2, Heartbeat: 20 * time.Millisecond})
	wmux := http.NewServeMux()
	w.RegisterHandlers(wmux)
	wts := newTestServer(t, wmux)
	w.Start(wts.URL)
	t.Cleanup(w.Stop)

	// The mis-tokened worker's registrations are refused: it never
	// appears in the registry no matter how long it heartbeats.
	time.Sleep(60 * time.Millisecond)
	if got := c.LiveWorkers(); got != 0 {
		t.Fatalf("mis-tokened worker joined: LiveWorkers = %d", got)
	}
	if c.Stats.AuthRejections.Load() == 0 {
		t.Error("coordinator counted no auth rejections")
	}

	// The worker's own endpoints are guarded too (its token is
	// "wrong-token", so requests signed with no token at all fail).
	resp, err := http.Post(wts.URL+PathExecute, "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unsigned execute: status %d, want 401", resp.StatusCode)
	}
	if env := decodeEnvelope(t, resp); env.Error.Code != "unauthenticated" {
		t.Errorf("execute error.code = %q", env.Error.Code)
	}
	resp, err = http.Get(wts.URL + PathCells + "somekey")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unsigned cell read: status %d, want 401", resp.StatusCode)
	}
	resp.Body.Close()
	if got := w.Stats.AuthRejections.Load(); got != 2 {
		t.Errorf("worker AuthRejections = %d, want 2", got)
	}
}

// newTestServer mounts mux behind an httptest listener cleaned up with
// the test.
func newTestServer(t *testing.T, mux *http.ServeMux) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestEngineSkewEnvelope pins the 409 contract: the envelope code is
// engine_skew, the offending field is named, and Retry-After invites
// re-registration after redeploy.
func TestEngineSkewEnvelope(t *testing.T) {
	c := NewCoordinator(Config{})
	ts := coordServer(t, c)
	body, _ := json.Marshal(RegisterRequest{URL: "http://w1", Capacity: 2, EngineVersion: "skewed-v0"})
	resp, err := http.Post(ts.URL+PathRegister, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status %d, want 409", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "30" {
		t.Errorf("Retry-After = %q, want 30", ra)
	}
	env := decodeEnvelope(t, resp)
	if env.Error.Code != "engine_skew" || env.Error.Field != "engine_version" {
		t.Errorf("error = %+v, want code engine_skew field engine_version", env.Error)
	}
}

// TestWorkerCapacityRejection pins the 429 contract: an execute request
// beyond the worker's advertised capacity gets the over_capacity
// envelope with a Retry-After, and the worker never touches the plan.
func TestWorkerCapacityRejection(t *testing.T) {
	w := NewWorker(WorkerConfig{Capacity: 1})
	wmux := http.NewServeMux()
	w.RegisterHandlers(wmux)
	wts := newTestServer(t, wmux)

	// Occupy the single capacity slot directly; the next request is over.
	w.inflight.Add(1)
	defer w.inflight.Add(-1)
	payload, _ := json.Marshal(execReq("c1"))
	resp, err := http.Post(wts.URL+PathExecute, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want 1", ra)
	}
	env := decodeEnvelope(t, resp)
	if env.Error.Code != "over_capacity" {
		t.Errorf("error.code = %q, want over_capacity", env.Error.Code)
	}
	if got := w.Stats.Rejections.Load(); got != 1 {
		t.Errorf("Rejections = %d, want 1", got)
	}
}

// TestRequestIDEcho verifies the propagation contract on the worker's
// endpoints: an inbound X-Request-Id comes back on the response, even on
// errors.
func TestRequestIDEcho(t *testing.T) {
	w := NewWorker(WorkerConfig{Capacity: 2})
	wmux := http.NewServeMux()
	w.RegisterHandlers(wmux)
	wts := newTestServer(t, wmux)

	req, _ := http.NewRequest(http.MethodPost, wts.URL+PathExecute, strings.NewReader("not json"))
	req.Header.Set(api.RequestIDHeader, "r00000042")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(api.RequestIDHeader); got != "r00000042" {
		t.Errorf("echoed request id = %q, want r00000042", got)
	}
}
