// Package fleet turns a set of affinityd processes into one logical
// campaign executor. One daemon runs as the coordinator: it owns the
// job queue, the two-tier result cache (memory LRU + disk store), and
// the deterministic Merge. Any number of daemons join as workers: they
// register with the coordinator, heartbeat, and execute individual
// campaign cells on demand.
//
// The unit of distribution is the cell (internal/experiments.Cells):
// content-addressed, individually cacheable, and deterministic, so a
// cell can execute on any worker — or twice on two workers — and the
// bytes are identical. That property carries the whole design:
//
//   - Dispatch is at-least-once. A cell may be retried after a worker
//     failure and hedged when a worker straggles; the first valid
//     result wins and duplicates are discarded by cell key. Because
//     cells are deterministic, duplicates are byte-identical and
//     discarding is safe.
//   - The wire format is a plan coordinate, not code: the coordinator
//     sends (kind, normalized params, cell index, cell id, cache key)
//     and the worker recomputes the plan locally. Workers verify that
//     their recomputed cell id and cache key match the request, and
//     registration rejects engine-version skew, so a mixed-version
//     fleet can never silently serve wrong bytes.
//   - Results flow back into the coordinator's caches, so the fleet
//     shares one logical cache. Peer cache fill closes the loop: a
//     worker asks the coordinator's store (GET /fleet/v1/cells/{key})
//     before executing, so work any fleet member ever finished is
//     never repeated anywhere.
//
// Failure model: workers are soft state. They expire when heartbeats
// stop, are dropped immediately on connection failure, and re-register
// themselves; the coordinator falls back to local execution when no
// worker can serve a cell, so a fleet of zero workers degrades to
// exactly the single-process daemon.
package fleet

import (
	"encoding/json"
	"net/http"
	"time"

	"repro/internal/experiments"
)

// Wire paths, mounted on both daemons' ServeMux by RegisterHandlers.
const (
	// PathRegister is the worker registration/heartbeat endpoint
	// (coordinator side).
	PathRegister = "/fleet/v1/register"
	// PathExecute is the cell execution endpoint (worker side).
	PathExecute = "/fleet/v1/execute"
	// PathCells is the peer cache-fill prefix (coordinator side);
	// GET PathCells + key returns the cached cell body or 404.
	PathCells = "/fleet/v1/cells/"
)

// RegisterRequest is a worker's registration POST body; re-POSTed every
// heartbeat interval (registration and heartbeat are the same message,
// so a coordinator restart loses no state it cannot rebuild within one
// interval).
type RegisterRequest struct {
	// URL is the worker's advertised base URL ("http://host:port").
	// It is the worker's identity: re-registering the same URL updates
	// the existing entry.
	URL string `json:"url"`
	// Capacity bounds the cells the coordinator dispatches to this
	// worker concurrently (<=0 selects the coordinator's default).
	Capacity int `json:"capacity,omitempty"`
	// EngineVersion is the worker's version.Engine. The coordinator
	// rejects a mismatch with 409: cache keys embed the engine version,
	// so a skewed worker could never produce usable results.
	EngineVersion string `json:"engine_version"`
}

// RegisterResponse acknowledges a registration.
type RegisterResponse struct {
	OK bool `json:"ok"`
	// HeartbeatSec is the interval the coordinator wants heartbeats at
	// (a third of its worker TTL).
	HeartbeatSec float64 `json:"heartbeat_sec"`
}

// ExecuteRequest dispatches one cell: a coordinate into the plan that
// experiments.Cells derives from (Kind, Params), plus the identity the
// worker must reproduce.
type ExecuteRequest struct {
	Kind string `json:"kind"`
	// Params are the job's normalized campaign params; the worker
	// recomputes the cell plan from them, so the wire carries no code
	// and no partial state.
	Params experiments.CampaignParams `json:"params"`
	// Index is the cell's position in the plan.
	Index int `json:"index"`
	// CellID is the expected plan.Cells[Index].ID; a mismatch means the
	// two sides built different plans and the worker must refuse.
	CellID string `json:"cell_id"`
	// Key is the expected cell cache key (content address), verified the
	// same way.
	Key string `json:"key"`
}

// ExecuteResponse is a worker's reply: the cell's canonical JSON body
// plus provenance.
type ExecuteResponse struct {
	CellID string `json:"cell_id"`
	Key    string `json:"key"`
	// Worker is the responding worker's advertised URL.
	Worker string `json:"worker"`
	// Engine is the cell's resolved execution tier ("sim"/"analytic").
	Engine string `json:"engine,omitempty"`
	// Source tells where the worker got the bytes: "executed",
	// "cache" (worker memory), "disk" (worker store), or "peer"
	// (coordinator store via cache fill).
	Source string `json:"source"`
	// ExecNs is the execution wall time when Source == "executed", else
	// the cost metadata that rode along with the cached bytes (0 if
	// unknown). It becomes the eviction currency in the coordinator's
	// caches.
	ExecNs uint64 `json:"exec_ns,omitempty"`
	// Body is the cell's canonical JSON partial, verbatim.
	Body json.RawMessage `json:"body"`
}

// execCostHeader carries the exec-cost metadata on peer cache-fill
// responses, which return the raw body (not an envelope).
const execCostHeader = "X-Exec-Cost-Ns"

// fleetError is the JSON error body of a non-2xx fleet response.
type fleetError struct {
	Error string `json:"error"`
}

func writeFleetJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeFleetError(w http.ResponseWriter, code int, msg string) {
	writeFleetJSON(w, code, fleetError{Error: msg})
}

// defaultClient is the HTTP client both sides use when the caller does
// not supply one: keep-alive, no global timeout (dispatch attempts are
// bounded by hedging and context cancellation, heartbeats by their own
// per-request contexts).
func defaultClient() *http.Client {
	return &http.Client{Transport: &http.Transport{
		MaxIdleConnsPerHost: 16,
		IdleConnTimeout:     90 * time.Second,
	}}
}
