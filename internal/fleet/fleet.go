// Package fleet turns a set of affinityd processes into one logical
// campaign executor. One daemon runs as the coordinator: it owns the
// job queue, the two-tier result cache (memory LRU + disk store), and
// the deterministic Merge. Any number of daemons join as workers: they
// register with the coordinator, heartbeat, and execute individual
// campaign cells on demand.
//
// The unit of distribution is the cell (internal/experiments.Cells):
// content-addressed, individually cacheable, and deterministic, so a
// cell can execute on any worker — or twice on two workers — and the
// bytes are identical. That property carries the whole design:
//
//   - Dispatch is at-least-once. A cell may be retried after a worker
//     failure and hedged when a worker straggles; the first valid
//     result wins and duplicates are discarded by cell key. Because
//     cells are deterministic, duplicates are byte-identical and
//     discarding is safe. A per-campaign budget (Budget) bounds the
//     total retries+hedges so a pathological cell cannot hedge forever:
//     past the budget the cell falls back to local execution.
//   - The wire format is a plan coordinate, not code: the coordinator
//     sends (kind, normalized params, cell index, cell id, cache key)
//     and the worker recomputes the plan locally. Workers verify that
//     their recomputed cell id and cache key match the request, and
//     registration rejects engine-version skew, so a mixed-version
//     fleet can never silently serve wrong bytes.
//   - Results flow back into the coordinator's caches, so the fleet
//     shares one logical cache. Peer cache fill closes the loop in both
//     directions: a worker asks the coordinator's store
//     (GET /v1/fleet/cells/{key}) before executing, and the coordinator
//     relays its own misses to the other workers' memory+disk tiers —
//     so work any fleet member ever finished is never repeated
//     anywhere, with exec-cost metadata riding along so eviction
//     currency stays uniform fleet-wide.
//
// The wire protocol is part of the /v1 API contract (DESIGN.md §7):
// every response body carries "api_version", every non-2xx response is
// the standard error envelope (internal/api), X-Request-Id propagates
// coordinator→worker and is echoed back, and transport is authenticated
// by a shared-secret HMAC when a fleet token is configured (auth.go).
//
// Failure model: workers are soft state. They expire when heartbeats
// stop, are dropped immediately on connection failure, and re-register
// themselves; the coordinator falls back to local execution when no
// worker can serve a cell, so a fleet of zero workers degrades to
// exactly the single-process daemon. Placement over the live workers is
// capacity-aware (placement.go): a scorer over each worker's inflight
// load, RTT, and decaying failure penalty, so a briefly slow worker is
// deprioritized — not dropped — and recovers as its penalty decays.
package fleet

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/experiments"
)

// Wire paths, mounted on both daemons' ServeMux by RegisterHandlers.
// The fleet surface lives in the same versioned namespace as the rest
// of the /v1 API.
const (
	// PathRegister is the worker registration/heartbeat endpoint
	// (coordinator side).
	PathRegister = "/v1/fleet/register"
	// PathExecute is the cell execution endpoint (worker side).
	PathExecute = "/v1/fleet/execute"
	// PathCells is the cell-read prefix, mounted on BOTH sides:
	// GET PathCells + key returns the cached cell body or a 404
	// envelope. On the coordinator it serves its two tiers (relaying a
	// miss to the other workers); on a worker it serves the worker's
	// own memory+disk tiers, which is what makes peer fill
	// bidirectional.
	PathCells = "/v1/fleet/cells/"
)

// RegisterRequest is a worker's registration POST body; re-POSTed every
// heartbeat interval (registration and heartbeat are the same message,
// so a coordinator restart loses no state it cannot rebuild within one
// interval).
type RegisterRequest struct {
	// URL is the worker's advertised base URL ("http://host:port").
	// It is the worker's identity: re-registering the same URL updates
	// the existing entry.
	URL string `json:"url"`
	// Capacity bounds the cells the coordinator dispatches to this
	// worker concurrently (<=0 selects the coordinator's default).
	Capacity int `json:"capacity,omitempty"`
	// EngineVersion is the worker's version.Engine. The coordinator
	// rejects a mismatch with 409: cache keys embed the engine version,
	// so a skewed worker could never produce usable results.
	EngineVersion string `json:"engine_version"`
}

// RegisterResponse acknowledges a registration.
type RegisterResponse struct {
	APIVersion string `json:"api_version"`
	OK         bool   `json:"ok"`
	// ID is the worker's stable identity in the /v1/workers surface,
	// derived from its advertised URL.
	ID string `json:"id"`
	// HeartbeatSec is the interval the coordinator wants heartbeats at
	// (a third of its worker TTL).
	HeartbeatSec float64 `json:"heartbeat_sec"`
}

// ExecuteRequest dispatches one cell: a coordinate into the plan that
// experiments.Cells derives from (Kind, Params), plus the identity the
// worker must reproduce.
type ExecuteRequest struct {
	Kind string `json:"kind"`
	// Params are the job's normalized campaign params; the worker
	// recomputes the cell plan from them, so the wire carries no code
	// and no partial state.
	Params experiments.CampaignParams `json:"params"`
	// Index is the cell's position in the plan.
	Index int `json:"index"`
	// CellID is the expected plan.Cells[Index].ID; a mismatch means the
	// two sides built different plans and the worker must refuse.
	CellID string `json:"cell_id"`
	// Key is the expected cell cache key (content address), verified the
	// same way.
	Key string `json:"key"`
	// RequestID is the submitting request's X-Request-Id, carried as a
	// header (never in the signed body) and echoed back by the worker.
	RequestID string `json:"-"`
}

// ExecuteResponse is a worker's reply: the cell's canonical JSON body
// plus provenance.
type ExecuteResponse struct {
	APIVersion string `json:"api_version"`
	CellID     string `json:"cell_id"`
	Key        string `json:"key"`
	// Worker is the responding worker's advertised URL.
	Worker string `json:"worker"`
	// Engine is the cell's resolved execution tier ("sim"/"analytic").
	Engine string `json:"engine,omitempty"`
	// Source tells where the worker got the bytes: "executed",
	// "cache" (worker memory), "disk" (worker store), or "peer"
	// (coordinator store via cache fill).
	Source string `json:"source"`
	// ExecNs is the execution wall time when Source == "executed", else
	// the cost metadata that rode along with the cached bytes (0 if
	// unknown). It becomes the eviction currency in the coordinator's
	// caches.
	ExecNs uint64 `json:"exec_ns,omitempty"`
	// Body is the cell's canonical JSON partial, verbatim.
	Body json.RawMessage `json:"body"`
	// Placement attributes the coordinator's placement decision for the
	// winning attempt ("score=… load=… rtt_ms=… penalty=…"); filled by
	// the coordinator after the race resolves, never by the worker.
	Placement string `json:"placement,omitempty"`
}

// execCostHeader carries the exec-cost metadata on peer cache-fill
// responses, which return the raw body (not an envelope).
const execCostHeader = "X-Exec-Cost-Ns"

// peerHeader names the requesting fleet member on a cell-read, so the
// coordinator's relay never asks the requester for the bytes it just
// reported missing.
const peerHeader = "X-Fleet-Peer"

// Budget is a per-campaign cap on dispatch overshoot: every retry and
// hedge beyond a cell's first attempt spends one unit. When the budget
// runs dry, in-flight attempts still resolve but nothing new launches —
// the cell falls back to local execution — and Exhausted latches so the
// job view can report budget_exhausted. First attempts are never
// charged: the budget bounds pathology (a cell hedging forever across
// the fleet), not normal dispatch.
type Budget struct {
	remaining atomic.Int64
	unlimited bool
	exhausted atomic.Bool
}

// NewBudget builds a Budget allowing n retries+hedges per campaign;
// n <= 0 means unlimited.
func NewBudget(n int) *Budget {
	b := &Budget{unlimited: n <= 0}
	b.remaining.Store(int64(n))
	return b
}

// TrySpend consumes one unit, reporting false (and latching Exhausted)
// when none remain. A nil Budget is unlimited.
func (b *Budget) TrySpend() bool {
	if b == nil || b.unlimited {
		return true
	}
	if b.remaining.Add(-1) < 0 {
		b.exhausted.Store(true)
		return false
	}
	return true
}

// Exhausted reports whether any spend was ever refused.
func (b *Budget) Exhausted() bool { return b != nil && b.exhausted.Load() }

// writeFleetJSON writes a fleet response body. Unlike the client-facing
// /v1 endpoints, fleet bodies are compact, not indented: an
// ExecuteResponse embeds the cell's canonical bytes as a RawMessage,
// and an indenting encoder would re-format them — breaking the
// byte-identity the whole dispatch design rests on.
func writeFleetJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// writeFleetError writes the standard /v1 error envelope.
func writeFleetError(w http.ResponseWriter, status int, code, field, msg string) {
	api.WriteError(w, status, code, field, msg)
}

// writeAuthError maps an authenticator verdict to its 401 envelope.
func writeAuthError(w http.ResponseWriter, err error) {
	writeFleetError(w, http.StatusUnauthorized, "unauthenticated", "", err.Error())
}

// defaultClient is the HTTP client both sides use when the caller does
// not supply one: keep-alive, no global timeout (dispatch attempts are
// bounded by hedging and context cancellation, heartbeats by their own
// per-request contexts).
func defaultClient() *http.Client {
	return &http.Client{Transport: &http.Transport{
		MaxIdleConnsPerHost: 16,
		IdleConnTimeout:     90 * time.Second,
	}}
}
