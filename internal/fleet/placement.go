package fleet

import (
	"fmt"
	"math"
	"time"

	"repro/internal/obs"
)

// Capacity-aware placement. Round-robin rotation treats a loaded,
// distant, or flapping worker exactly like an idle local one; the
// scorer instead ranks every live worker by the signals it already
// reports back to the coordinator, and the dispatch picks the minimum:
//
//	score = load + rtt + penalty
//
//	load    = (inflight + 1) / capacity — the fraction of the worker's
//	          declared capacity this dispatch would occupy. The +1
//	          prices the attempt being placed, so an idle 1-slot worker
//	          (1.0) ranks below an idle 8-slot worker (0.125).
//	rtt     = rttEWMA / min(rttEWMA over candidates) — relative
//	          round-trip cost, 1.0 for the fastest candidate. Workers
//	          with no completed dispatch yet score 1.0 (optimistic, so
//	          fresh workers get traffic and earn a measurement).
//	penalty = decaying failure pressure (below).
//
// Hysteresis: each failed attempt adds penaltyPerFailure to the
// worker's penalty, and the penalty halves every penaltyHalfLife. A
// briefly slow or flapping worker is therefore *deprioritized* — other
// candidates win while its penalty dominates — but never dropped: as
// the penalty decays below penaltyFloor it vanishes entirely and the
// worker's score converges back to load+rtt. (Hard connection failures
// still drop the worker immediately; the penalty covers the soft
// failures — timeouts, 5xx, identity mismatches — where dropping would
// overreact.)
const (
	// penaltyPerFailure is the score added per failed attempt. One unit
	// equals a full capacity's worth of load, so one failure roughly
	// sends the next few cells elsewhere without blacklisting.
	penaltyPerFailure = 1.0
	// penaltyHalfLife is the decay half-life of accumulated penalty.
	penaltyHalfLife = 5 * time.Second
	// penaltyFloor is where decayed penalty snaps to zero — the
	// convergence point of the hysteresis.
	penaltyFloor = 1e-3
)

// failurePenaltyAt returns ws's decayed failure penalty at now.
func (ws *workerState) failurePenaltyAt(now time.Time) float64 {
	if ws.penalty <= 0 {
		return 0
	}
	elapsed := now.Sub(ws.penaltyAt)
	if elapsed < 0 {
		elapsed = 0
	}
	p := ws.penalty * math.Exp2(-float64(elapsed)/float64(penaltyHalfLife))
	if p < penaltyFloor {
		return 0
	}
	return p
}

// addFailure folds one failed attempt into ws's penalty at now.
func (ws *workerState) addFailure(now time.Time) {
	ws.penalty = ws.failurePenaltyAt(now) + penaltyPerFailure
	ws.penaltyAt = now
}

// rttEWMAAlpha weights the newest RTT sample in the per-worker EWMA.
const rttEWMAAlpha = 0.3

// observeRTT folds one successful attempt's round-trip time into ws.
func (ws *workerState) observeRTT(rtt time.Duration) {
	ns := float64(rtt)
	if ws.rttEWMANs <= 0 {
		ws.rttEWMANs = ns
	} else {
		ws.rttEWMANs = rttEWMAAlpha*ns + (1-rttEWMAAlpha)*ws.rttEWMANs
	}
	ws.rttHist.Observe(uint64(rtt))
}

// score ranks ws for one placement at now; lower wins. minRTT is the
// smallest rttEWMANs among the decision's candidates (<=0 when no
// candidate has a measurement yet).
func (ws *workerState) score(now time.Time, minRTT float64) float64 {
	capacity := ws.capacity
	if capacity <= 0 {
		capacity = 1
	}
	load := float64(ws.inflight+1) / float64(capacity)
	rtt := 1.0
	if ws.rttEWMANs > 0 && minRTT > 0 {
		rtt = ws.rttEWMANs / minRTT
	}
	return load + rtt + ws.failurePenaltyAt(now)
}

// placementString renders the winning decision for event attribution:
// the score and its components at pick time.
func placementString(score float64, inflight, capacity int, rttNs, penalty float64) string {
	return fmt.Sprintf("score=%.3f load=%d/%d rtt_ms=%.2f penalty=%.2f",
		score, inflight, capacity, rttNs/1e6, penalty)
}

// histPercentile returns the inclusive upper bound (in raw units) of
// the bucket containing the p-th percentile observation, or 0 when the
// histogram is empty. The log2 buckets make this an upper bound within
// 2× of the true value — plenty for a "is this worker slow" summary.
func histPercentile(snap obs.HistogramSnapshot, p float64) uint64 {
	if snap.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p / 100 * float64(snap.Count)))
	if rank < 1 {
		rank = 1
	}
	cum := uint64(0)
	for i := 0; i < obs.HistogramBuckets; i++ {
		cum += snap.Counts[i]
		if cum >= rank {
			return obs.BucketBound(i)
		}
	}
	return obs.BucketBound(obs.HistogramBuckets - 1)
}
