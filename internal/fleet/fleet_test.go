package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/resultcache"
	"repro/internal/version"
)

// coordServer mounts a coordinator's fleet endpoints behind an httptest
// listener, cleaned up with the test.
func coordServer(t *testing.T, c *Coordinator) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	c.RegisterHandlers(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// registerWorker POSTs one registration for url, returning the response
// status.
func registerWorker(t *testing.T, coordURL, workerURL string, capacity int, engine string) int {
	t.Helper()
	body, _ := json.Marshal(RegisterRequest{URL: workerURL, Capacity: capacity, EngineVersion: engine})
	resp, err := http.Post(coordURL+PathRegister, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// stubWorker is a fake worker endpoint that answers execute requests
// with a valid response after a per-request delay.
type stubWorker struct {
	ts *httptest.Server
	// delay returns how long request number n should take.
	delay func(n int) time.Duration

	mu     sync.Mutex
	served int
}

func newStubWorker(t *testing.T, delay func(n int) time.Duration) *stubWorker {
	t.Helper()
	s := &stubWorker{delay: delay}
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathExecute, func(w http.ResponseWriter, r *http.Request) {
		var req ExecuteRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeFleetError(w, http.StatusBadRequest, "invalid_request", "", err.Error())
			return
		}
		s.mu.Lock()
		n := s.served
		s.served++
		s.mu.Unlock()
		if s.delay != nil {
			select {
			case <-time.After(s.delay(n)):
			case <-r.Context().Done():
				return
			}
		}
		writeFleetJSON(w, http.StatusOK, ExecuteResponse{
			CellID: req.CellID,
			Key:    req.Key,
			Worker: s.ts.URL,
			Source: "executed",
			ExecNs: 1,
			Body:   json.RawMessage(fmt.Sprintf(`{"cell":%q}`, req.CellID)),
		})
	})
	s.ts = httptest.NewServer(mux)
	t.Cleanup(s.ts.Close)
	return s
}

func (s *stubWorker) servedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served
}

// execReq builds a dispatchable request for an arbitrary cell id; the
// stub workers echo identity, so any id works.
func execReq(id string) ExecuteRequest {
	return ExecuteRequest{Kind: "compare", Index: 0, CellID: id, Key: "key-" + id}
}

func TestRegistrationHeartbeatAndExpiry(t *testing.T) {
	c := NewCoordinator(Config{WorkerTTL: 80 * time.Millisecond})
	ts := coordServer(t, c)

	if code := registerWorker(t, ts.URL, "http://w1", 2, version.Engine); code != http.StatusOK {
		t.Fatalf("register: status %d", code)
	}
	if got := c.LiveWorkers(); got != 1 {
		t.Fatalf("LiveWorkers = %d, want 1", got)
	}
	// A re-register is a heartbeat: same worker, no new registration.
	if code := registerWorker(t, ts.URL, "http://w1", 2, version.Engine); code != http.StatusOK {
		t.Fatalf("heartbeat: status %d", code)
	}
	if got := c.Stats.Registrations.Load(); got != 1 {
		t.Errorf("Registrations = %d after heartbeat, want 1", got)
	}
	ws := c.Workers()
	if len(ws) != 1 || ws[0].URL != "http://w1" || ws[0].Capacity != 2 {
		t.Errorf("Workers() = %+v, want one w1 with capacity 2", ws)
	}

	// Heartbeats stop: the worker expires after the TTL.
	deadline := time.Now().Add(5 * time.Second)
	for c.LiveWorkers() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker did not expire after TTL")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := c.Stats.Expirations.Load(); got != 1 {
		t.Errorf("Expirations = %d, want 1", got)
	}
}

func TestRegisterRejectsEngineSkew(t *testing.T) {
	c := NewCoordinator(Config{})
	ts := coordServer(t, c)
	if code := registerWorker(t, ts.URL, "http://w1", 2, "someone-elses-engine"); code != http.StatusConflict {
		t.Fatalf("skewed register: status %d, want 409", code)
	}
	if got := c.LiveWorkers(); got != 0 {
		t.Errorf("skewed worker admitted: LiveWorkers = %d", got)
	}
}

func TestDispatchNoWorkersFallsBack(t *testing.T) {
	c := NewCoordinator(Config{})
	if _, err := c.Dispatch(context.Background(), execReq("c1")); err != ErrNoWorkers {
		t.Fatalf("Dispatch with no workers: %v, want ErrNoWorkers", err)
	}
	if got := c.Stats.Fallbacks.Load(); got != 1 {
		t.Errorf("Fallbacks = %d, want 1", got)
	}
}

// TestDispatchRetriesDeadWorker: a dispatch that lands on a dead worker
// retries on a live one, and the dead worker is dropped from the
// registry immediately — not left to soak up redispatches until TTL.
func TestDispatchRetriesDeadWorker(t *testing.T) {
	c := NewCoordinator(Config{Backoff: time.Millisecond, HedgeDelay: time.Minute})
	ts := coordServer(t, c)
	live := newStubWorker(t, nil)

	// The dead worker: a listener that is already closed.
	dead := httptest.NewServer(http.NewServeMux())
	deadURL := dead.URL
	dead.Close()

	// The dead worker advertises far more capacity, so the scorer's load
	// term ((inflight+1)/capacity) deterministically places the first
	// attempt on it — both are unmeasured, so RTT contributes equally.
	registerWorker(t, ts.URL, deadURL, 16, version.Engine)
	registerWorker(t, ts.URL, live.ts.URL, 1, version.Engine)

	resp, err := c.Dispatch(context.Background(), execReq("c0"))
	if err != nil {
		t.Fatalf("dispatch: %v", err)
	}
	if resp.Worker != live.ts.URL {
		t.Fatalf("dispatch won by %q, want the live stub", resp.Worker)
	}
	if c.Stats.Retries.Load() == 0 {
		t.Fatalf("no dispatch retried off the dead worker (failures=%d)", c.Stats.Failures.Load())
	}
	ws := c.Workers()
	if len(ws) != 1 || ws[0].URL != live.ts.URL {
		t.Errorf("dead worker still registered: %+v", ws)
	}
	if got := c.Stats.Expirations.Load(); got != 1 {
		t.Errorf("Expirations = %d, want 1 (connection-failure drop)", got)
	}
}

// TestHedgedDispatchFirstValidWins: a straggling first attempt is hedged
// to a second worker; the fast hedge's result is delivered, and the
// straggler's late result is discarded as a duplicate — never a second
// delivery.
func TestHedgedDispatchFirstValidWins(t *testing.T) {
	c := NewCoordinator(Config{HedgeDelay: 10 * time.Millisecond, Backoff: time.Millisecond})
	ts := coordServer(t, c)
	slow := newStubWorker(t, func(int) time.Duration { return 300 * time.Millisecond })
	fast := newStubWorker(t, nil)

	// The straggler advertises more capacity, so the scorer's load term
	// deterministically places the first attempt on it (neither has an
	// RTT measurement yet); the hedge then races the fast worker.
	registerWorker(t, ts.URL, slow.ts.URL, 16, version.Engine)
	registerWorker(t, ts.URL, fast.ts.URL, 1, version.Engine)

	start := time.Now()
	resp, err := c.Dispatch(context.Background(), execReq("c0"))
	if err != nil {
		t.Fatalf("dispatch: %v", err)
	}
	// The fast worker wins as the hedge racing a 300ms straggler.
	if resp.Worker != fast.ts.URL {
		t.Fatalf("dispatch won by %q after %v, want the fast worker", resp.Worker, time.Since(start))
	}
	if c.Stats.Hedges.Load() != 1 || c.Stats.HedgeWins.Load() != 1 {
		t.Fatalf("hedge accounting: hedges=%d wins=%d, want 1/1",
			c.Stats.Hedges.Load(), c.Stats.HedgeWins.Load())
	}
	// The straggler's late result drains as a discarded duplicate — it is
	// never delivered as a second response.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats.Duplicates.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("straggler result never drained as duplicate (dup=%d fail=%d)",
				c.Stats.Duplicates.Load(), c.Stats.Failures.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestHedgeDeterminismProperty is the dispatch-determinism property test:
// across many dispatches with adversarially jittered worker latencies
// (some straggling past the hedge delay, some fast), every Dispatch call
// delivers exactly one result, and every launched attempt is accounted
// exactly once as the win, a discarded duplicate, or a failure — so
// duplicates can never double-fold into cell stats or a merge, and the
// caller's misses == execution-attempts invariant holds fleet-wide.
func TestHedgeDeterminismProperty(t *testing.T) {
	c := NewCoordinator(Config{HedgeDelay: 3 * time.Millisecond, Backoff: time.Millisecond})
	ts := coordServer(t, c)
	rng := rand.New(rand.NewSource(1))
	var mu sync.Mutex
	jitter := func(int) time.Duration {
		mu.Lock()
		defer mu.Unlock()
		// Half the requests straggle past the hedge delay.
		if rng.Intn(2) == 0 {
			return time.Duration(4+rng.Intn(8)) * time.Millisecond
		}
		return time.Duration(rng.Intn(2)) * time.Millisecond
	}
	w1 := newStubWorker(t, jitter)
	w2 := newStubWorker(t, jitter)
	registerWorker(t, ts.URL, w1.ts.URL, 64, version.Engine)
	registerWorker(t, ts.URL, w2.ts.URL, 64, version.Engine)

	const cells = 48
	delivered := make([]*ExecuteResponse, cells)
	var wg sync.WaitGroup
	for i := 0; i < cells; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := c.Dispatch(context.Background(), execReq(fmt.Sprintf("c%03d", i)))
			if err != nil {
				t.Errorf("dispatch %d: %v", i, err)
				return
			}
			delivered[i] = resp
		}(i)
	}
	wg.Wait()

	// Exactly one delivery per call, each echoing its own cell identity.
	for i, resp := range delivered {
		if resp == nil {
			t.Fatalf("cell %d delivered nothing", i)
		}
		if want := fmt.Sprintf("c%03d", i); resp.CellID != want {
			t.Errorf("cell %d delivered %q", i, resp.CellID)
		}
	}
	if got := c.Stats.RemoteCells.Load(); got != cells {
		t.Errorf("RemoteCells = %d, want %d (one win per dispatch)", got, cells)
	}

	// Every launched attempt resolves exactly once: win, duplicate, or
	// failure. Late stragglers drain in the background, so poll.
	deadline := time.Now().Add(10 * time.Second)
	for {
		d := c.Stats.Dispatches.Load()
		resolved := c.Stats.RemoteCells.Load() + c.Stats.Duplicates.Load() + c.Stats.Failures.Load()
		if d == resolved {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("attempt accounting never converged: dispatches=%d wins=%d dup=%d fail=%d",
				d, c.Stats.RemoteCells.Load(), c.Stats.Duplicates.Load(), c.Stats.Failures.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The workers' served totals bound the duplicates: everything served
	// beyond one per cell was hedging overshoot, discarded.
	served := w1.servedCount() + w2.servedCount()
	if served < cells {
		t.Errorf("workers served %d < %d cells", served, cells)
	}
	if dup := int(c.Stats.Duplicates.Load()); dup > served-cells {
		t.Errorf("Duplicates = %d exceeds overshoot %d", dup, served-cells)
	}
}

// TestWorkerEndToEnd runs the real Worker against a real cell plan: the
// worker registers itself, verifies the dispatched plan coordinate,
// executes the cell, and returns bytes identical to a local run; a cell
// already in the coordinator's cache is served by peer fill without
// executing.
func TestWorkerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation cell in -short mode")
	}
	cache := resultcache.New(1 << 20)
	c := NewCoordinator(Config{Cache: cache, HedgeDelay: time.Minute})
	coord := coordServer(t, c)

	w := NewWorker(WorkerConfig{Coordinator: coord.URL, Capacity: 4, Heartbeat: 50 * time.Millisecond})
	wmux := http.NewServeMux()
	w.RegisterHandlers(wmux)
	wts := httptest.NewServer(wmux)
	t.Cleanup(wts.Close)
	w.Start(wts.URL)
	t.Cleanup(w.Stop)

	if got := c.LiveWorkers(); got != 1 {
		t.Fatalf("worker did not register synchronously: LiveWorkers = %d", got)
	}

	campaign, ok := experiments.CampaignByKind("compare")
	if !ok {
		t.Fatal("compare kind unregistered")
	}
	params, err := campaign.Normalize(experiments.CampaignParams{
		Fast: true, Replications: 1, Mix: 5, Policies: []string{"Equipartition"}, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := experiments.Cells("compare", params)
	if err != nil {
		t.Fatal(err)
	}
	cell := &plan.Cells[0]
	key := resultcache.Key(cell.KeyKind, cell.KeyParams, version.Engine)

	// Local reference execution.
	res, err := cell.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, err := report.CanonicalJSON(res)
	if err != nil {
		t.Fatal(err)
	}

	req := ExecuteRequest{Kind: "compare", Params: params, Index: 0, CellID: cell.ID, Key: key}
	resp, err := c.Dispatch(context.Background(), req)
	if err != nil {
		t.Fatalf("dispatch: %v", err)
	}
	if resp.Source != "executed" || !bytes.Equal(resp.Body, want) {
		t.Fatalf("remote cell source=%q, body differs from local run: %.120s", resp.Source, resp.Body)
	}
	if got := w.Stats.Executions.Load(); got != 1 {
		t.Errorf("worker Executions = %d, want 1", got)
	}

	// Peer fill: a different key already in the coordinator's cache is
	// served without the worker executing anything.
	peerBody := []byte(`{"peer":"filled"}`)
	cache.PutCost("peer-key", peerBody, 77)
	peerReq := ExecuteRequest{Kind: "compare", Params: params, Index: 0, CellID: cell.ID, Key: key}
	peerReq.Key = "peer-key"
	// The worker verifies plan identity before its tier lookups, so the
	// mismatched key must be refused, not served.
	if _, err := c.Dispatch(context.Background(), peerReq); err == nil {
		t.Fatal("dispatch with mismatched key succeeded; worker must refuse")
	}

	// A legitimate peer fill: seed the coordinator cache under the true
	// key for a worker with empty tiers.
	w2 := NewWorker(WorkerConfig{Coordinator: coord.URL, Capacity: 4, Heartbeat: 50 * time.Millisecond})
	w2mux := http.NewServeMux()
	w2.RegisterHandlers(w2mux)
	w2ts := httptest.NewServer(w2mux)
	t.Cleanup(w2ts.Close)
	w2.Start(w2ts.URL)
	t.Cleanup(w2.Stop)
	cache.PutCost(key, want, 123)

	// Force the dispatch onto w2 by filling w1's capacity… simpler: ask
	// w2 directly over HTTP, which is exactly what a dispatch does.
	payload, _ := json.Marshal(req)
	hr, err := http.Post(w2ts.URL+PathExecute, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	var peerResp ExecuteResponse
	if err := json.NewDecoder(hr.Body).Decode(&peerResp); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if peerResp.Source != "peer" || !bytes.Equal(peerResp.Body, want) || peerResp.ExecNs != 123 {
		t.Fatalf("peer fill source=%q execNs=%d, want peer/123 with the cached body", peerResp.Source, peerResp.ExecNs)
	}
	if got := w2.Stats.PeerFills.Load(); got != 1 {
		t.Errorf("worker PeerFills = %d, want 1", got)
	}
	if got := w2.Stats.Executions.Load(); got != 0 {
		t.Errorf("peer-filled worker executed %d cells, want 0", got)
	}
	if got := c.Stats.PeerHits.Load(); got != 1 {
		t.Errorf("coordinator PeerHits = %d, want 1", got)
	}
}
