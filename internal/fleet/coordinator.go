package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/diskstore"
	"repro/internal/obs"
	"repro/internal/resultcache"
	"repro/internal/version"
)

// ErrNoWorkers reports that a dispatch found no live worker with spare
// capacity; the caller executes the cell locally.
var ErrNoWorkers = errors.New("fleet: no live workers")

// Config parameterizes a Coordinator. Zero values select the defaults
// noted per field.
type Config struct {
	// Cache and Store are the coordinator's cell cache and persistent
	// tier — the same instances the service reads — so peer cache fill
	// serves exactly what the coordinator would have served itself.
	// Either may be nil.
	Cache *resultcache.Cache
	Store *diskstore.Store
	// WorkerTTL expires a worker that has not heartbeated (default 10s).
	WorkerTTL time.Duration
	// HedgeDelay is how long a dispatch waits on an attempt before
	// re-issuing the cell to another worker (default 1s). The first
	// valid result wins; the straggler's is discarded.
	HedgeDelay time.Duration
	// MaxAttempts bounds attempts per cell across retries and hedges
	// (default 3). Each attempt targets a distinct worker.
	MaxAttempts int
	// Backoff is the pause before relaunching after a failed attempt
	// (default 50ms).
	Backoff time.Duration
	// DefaultCapacity is assumed for workers that register without one
	// (default 4).
	DefaultCapacity int
	// Client overrides the HTTP client used for dispatch.
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.WorkerTTL <= 0 {
		c.WorkerTTL = 10 * time.Second
	}
	if c.HedgeDelay <= 0 {
		c.HedgeDelay = time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.Backoff <= 0 {
		c.Backoff = 50 * time.Millisecond
	}
	if c.DefaultCapacity <= 0 {
		c.DefaultCapacity = 4
	}
	return c
}

// Metrics are the coordinator's fleet counters, written lock-free on
// the dispatch path and rendered as affinityd_fleet_* at /metrics.
type Metrics struct {
	// Dispatches counts attempts launched (first tries, retries, and
	// hedges all included).
	Dispatches obs.Counter
	// RemoteCells counts Dispatch calls resolved by a worker's result.
	RemoteCells obs.Counter
	// Retries counts attempts relaunched after a failed one.
	Retries obs.Counter
	// Hedges counts attempts launched by the straggler timer while an
	// earlier attempt was still in flight.
	Hedges obs.Counter
	// HedgeWins counts dispatches whose winning result came from a
	// retry or hedge rather than the first attempt.
	HedgeWins obs.Counter
	// Duplicates counts valid results that arrived after a winner and
	// were discarded by cell key — the at-least-once overshoot.
	Duplicates obs.Counter
	// Failures counts attempts that returned an error (connection
	// failure, non-200, or an identity mismatch).
	Failures obs.Counter
	// Fallbacks counts dispatches that returned no result, sending the
	// cell to local execution.
	Fallbacks obs.Counter
	// Registrations counts new workers; heartbeats of a known worker do
	// not count.
	Registrations obs.Counter
	// Expirations counts workers dropped — heartbeat TTL expiry or a
	// connection-level dispatch failure (they re-register if alive).
	Expirations obs.Counter
	// PeerHits/PeerMisses count peer cache-fill lookups served/missed
	// from the coordinator's cache tiers.
	PeerHits   obs.Counter
	PeerMisses obs.Counter
	// RTTNs is the round-trip time of successful dispatch attempts.
	RTTNs obs.Histogram
}

// workerState is one registered worker; all fields are guarded by
// Coordinator.mu.
type workerState struct {
	url           string
	capacity      int
	engineVersion string
	registered    time.Time
	lastSeen      time.Time
	inflight      int
	dispatched    uint64
	failures      uint64
}

// Coordinator owns the fleet's worker registry and cell dispatch.
type Coordinator struct {
	cfg    Config
	client *http.Client

	// Stats holds the dispatch counters; read directly by /metrics.
	Stats Metrics

	mu      sync.Mutex
	workers map[string]*workerState // by advertised URL
	rr      uint64                  // round-robin cursor
}

// NewCoordinator builds a Coordinator.
func NewCoordinator(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	client := cfg.Client
	if client == nil {
		client = defaultClient()
	}
	return &Coordinator{cfg: cfg, client: client, workers: make(map[string]*workerState)}
}

// RegisterHandlers mounts the coordinator's fleet endpoints.
func (c *Coordinator) RegisterHandlers(mux *http.ServeMux) {
	mux.HandleFunc("POST "+PathRegister, c.handleRegister)
	mux.HandleFunc("GET "+PathCells+"{key}", c.handleCell)
}

// handleRegister upserts a worker. Registration doubles as heartbeat.
func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeFleetError(w, http.StatusBadRequest, fmt.Sprintf("bad register body: %v", err))
		return
	}
	if req.URL == "" {
		writeFleetError(w, http.StatusBadRequest, "register: url required")
		return
	}
	if req.EngineVersion != version.Engine {
		// A skewed worker's cache keys would never match ours; refusing
		// here keeps wrong-version results out by construction.
		writeFleetError(w, http.StatusConflict, fmt.Sprintf(
			"engine version %q does not match coordinator %q", req.EngineVersion, version.Engine))
		return
	}
	capacity := req.Capacity
	if capacity <= 0 {
		capacity = c.cfg.DefaultCapacity
	}
	now := time.Now()
	c.mu.Lock()
	ws := c.workers[req.URL]
	if ws == nil {
		ws = &workerState{url: req.URL, registered: now}
		c.workers[req.URL] = ws
		c.Stats.Registrations.Inc()
	}
	ws.capacity = capacity
	ws.engineVersion = req.EngineVersion
	ws.lastSeen = now
	c.mu.Unlock()
	writeFleetJSON(w, http.StatusOK, RegisterResponse{OK: true, HeartbeatSec: (c.cfg.WorkerTTL / 3).Seconds()})
}

// handleCell is peer cache fill: a worker asks for a cell body the
// fleet may already have paid for, checking the coordinator's memory
// tier then its disk store.
func (c *Coordinator) handleCell(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if c.cfg.Cache != nil {
		if body, costNs, ok := c.cfg.Cache.GetCost(key); ok {
			c.Stats.PeerHits.Inc()
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set(execCostHeader, strconv.FormatUint(costNs, 10))
			w.Write(body)
			return
		}
	}
	if c.cfg.Store != nil {
		if body, costNs, ok := c.cfg.Store.Get(key); ok {
			c.Stats.PeerHits.Inc()
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set(execCostHeader, strconv.FormatUint(costNs, 10))
			w.Write(body)
			return
		}
	}
	c.Stats.PeerMisses.Inc()
	writeFleetError(w, http.StatusNotFound, "cell not cached")
}

// WorkerView is the /v1/workers wire form of one registered worker.
type WorkerView struct {
	URL           string `json:"url"`
	Capacity      int    `json:"capacity"`
	EngineVersion string `json:"engine_version"`
	Registered    string `json:"registered"`
	LastSeen      string `json:"last_seen"`
	InFlight      int    `json:"inflight"`
	Dispatched    uint64 `json:"dispatched"`
	Failures      uint64 `json:"failures"`
}

// Workers snapshots the live registry (expired entries pruned), sorted
// by URL.
func (c *Coordinator) Workers() []WorkerView {
	now := time.Now()
	c.mu.Lock()
	c.expireLocked(now)
	out := make([]WorkerView, 0, len(c.workers))
	for _, ws := range c.workers {
		out = append(out, WorkerView{
			URL:           ws.url,
			Capacity:      ws.capacity,
			EngineVersion: ws.engineVersion,
			Registered:    ws.registered.UTC().Format(time.RFC3339Nano),
			LastSeen:      ws.lastSeen.UTC().Format(time.RFC3339Nano),
			InFlight:      ws.inflight,
			Dispatched:    ws.dispatched,
			Failures:      ws.failures,
		})
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, k int) bool { return out[i].URL < out[k].URL })
	return out
}

// LiveWorkers returns the number of unexpired workers (the
// affinityd_fleet_workers gauge).
func (c *Coordinator) LiveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(time.Now())
	return len(c.workers)
}

// expireLocked drops workers whose heartbeats stopped. Callers hold
// c.mu.
func (c *Coordinator) expireLocked(now time.Time) {
	for url, ws := range c.workers {
		if now.Sub(ws.lastSeen) > c.cfg.WorkerTTL {
			delete(c.workers, url)
			c.Stats.Expirations.Inc()
		}
	}
}

// pick reserves one unit of capacity on a live worker not yet tried for
// this cell, round-robin so a grid spreads evenly. Returns "" when no
// worker qualifies.
func (c *Coordinator) pick(tried map[string]bool) string {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	urls := make([]string, 0, len(c.workers))
	for url, ws := range c.workers {
		if tried[url] || ws.inflight >= ws.capacity {
			continue
		}
		urls = append(urls, url)
	}
	if len(urls) == 0 {
		return ""
	}
	sort.Strings(urls)
	url := urls[c.rr%uint64(len(urls))]
	c.rr++
	ws := c.workers[url]
	ws.inflight++
	ws.dispatched++
	return url
}

// release returns a worker's capacity unit after an attempt, recording
// the outcome. A connection-level failure drops the worker entirely —
// it re-registers on its next heartbeat if it is actually alive — so a
// killed worker stops receiving dispatches after one failed attempt
// instead of lingering until TTL expiry.
func (c *Coordinator) release(url string, failed, drop bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ws := c.workers[url]
	if ws == nil {
		return
	}
	ws.inflight--
	if failed {
		ws.failures++
	} else {
		ws.lastSeen = time.Now() // a served cell is as good as a heartbeat
	}
	if drop {
		delete(c.workers, url)
		c.Stats.Expirations.Inc()
	}
}

// attemptOutcome is one dispatch attempt's result.
type attemptOutcome struct {
	resp    *ExecuteResponse
	err     error
	attempt int // 1-based launch order
}

// Dispatch executes one cell on the fleet: bounded retry with backoff
// on failure, hedged re-dispatch of stragglers after HedgeDelay, first
// valid result wins. Exactly one response is ever returned per call —
// late duplicates are drained and counted, never delivered — so the
// caller's one-result-per-miss accounting (misses == execution
// attempts) holds no matter how the race resolves. A non-nil error
// (ErrNoWorkers, every attempt failed, or ctx cancelled) means the
// caller should execute the cell locally.
func (c *Coordinator) Dispatch(ctx context.Context, req ExecuteRequest) (*ExecuteResponse, error) {
	tried := make(map[string]bool, c.cfg.MaxAttempts)
	ch := make(chan attemptOutcome, c.cfg.MaxAttempts)
	launched := 0
	launch := func() bool {
		if launched >= c.cfg.MaxAttempts {
			return false
		}
		url := c.pick(tried)
		if url == "" {
			return false
		}
		tried[url] = true
		launched++
		attempt := launched
		c.Stats.Dispatches.Inc()
		go func() {
			resp, err := c.execute(ctx, url, req)
			ch <- attemptOutcome{resp: resp, err: err, attempt: attempt}
		}()
		return true
	}
	if !launch() {
		c.Stats.Fallbacks.Inc()
		return nil, ErrNoWorkers
	}
	hedge := time.NewTimer(c.cfg.HedgeDelay)
	defer hedge.Stop()
	outstanding := 1
	var lastErr error
	for {
		select {
		case out := <-ch:
			outstanding--
			if out.err == nil {
				c.Stats.RemoteCells.Inc()
				if out.attempt > 1 {
					c.Stats.HedgeWins.Inc()
				}
				if outstanding > 0 {
					go c.drainLate(ch, outstanding)
				}
				return out.resp, nil
			}
			c.Stats.Failures.Inc()
			lastErr = out.err
			if launched < c.cfg.MaxAttempts {
				// Brief pause so a flapping fleet doesn't spin; the
				// context still cancels promptly.
				select {
				case <-time.After(c.cfg.Backoff):
				case <-ctx.Done():
					c.abandon(ch, outstanding)
					return nil, ctx.Err()
				}
				if launch() {
					c.Stats.Retries.Inc()
					outstanding++
					continue
				}
			}
			if outstanding == 0 {
				c.Stats.Fallbacks.Inc()
				return nil, lastErr
			}
		case <-hedge.C:
			// The attempt is straggling: re-issue the cell elsewhere and
			// race the two. Determinism makes either answer correct.
			if launch() {
				c.Stats.Hedges.Inc()
				outstanding++
			}
		case <-ctx.Done():
			c.abandon(ch, outstanding)
			return nil, ctx.Err()
		}
	}
}

// abandon drains outstanding attempts in the background after the
// dispatch stops caring, counting the fallback.
func (c *Coordinator) abandon(ch chan attemptOutcome, outstanding int) {
	c.Stats.Fallbacks.Inc()
	if outstanding > 0 {
		go c.drainLate(ch, outstanding)
	}
}

// drainLate consumes attempts that finished after a winner (or after
// abandonment): valid duplicates are counted and discarded — never
// folded into stats or a merge — and late failures are counted as
// failures.
func (c *Coordinator) drainLate(ch chan attemptOutcome, n int) {
	for i := 0; i < n; i++ {
		out := <-ch
		if out.err == nil {
			c.Stats.Duplicates.Inc()
		} else {
			c.Stats.Failures.Inc()
		}
	}
}

// execute runs one HTTP attempt against one worker and validates the
// response's identity: the returned key and cell id must echo the
// request, and the body must be non-empty JSON. Anything else is an
// attempt failure, never a result.
func (c *Coordinator) execute(ctx context.Context, workerURL string, req ExecuteRequest) (*ExecuteResponse, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		c.release(workerURL, true, false)
		return nil, err
	}
	start := time.Now()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, workerURL+PathExecute, bytes.NewReader(payload))
	if err != nil {
		c.release(workerURL, true, false)
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := c.client.Do(hreq)
	if err != nil {
		// Connection-level failure: the worker is unreachable (killed,
		// crashed, partitioned). Drop it now rather than redispatching
		// into the hole until TTL expiry.
		c.release(workerURL, true, true)
		return nil, fmt.Errorf("fleet: worker %s: %w", workerURL, err)
	}
	defer hresp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(hresp.Body, 64<<20))
	if err != nil {
		c.release(workerURL, true, true)
		return nil, fmt.Errorf("fleet: worker %s: read: %w", workerURL, err)
	}
	if hresp.StatusCode != http.StatusOK {
		c.release(workerURL, true, false)
		return nil, fmt.Errorf("fleet: worker %s: status %d: %.200s", workerURL, hresp.StatusCode, body)
	}
	var resp ExecuteResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		c.release(workerURL, true, false)
		return nil, fmt.Errorf("fleet: worker %s: bad response: %w", workerURL, err)
	}
	if resp.Key != req.Key || resp.CellID != req.CellID || len(resp.Body) == 0 || !json.Valid(resp.Body) {
		c.release(workerURL, true, false)
		return nil, fmt.Errorf("fleet: worker %s: identity mismatch (cell %q key %.16q)", workerURL, resp.CellID, resp.Key)
	}
	c.release(workerURL, false, false)
	c.Stats.RTTNs.Observe(uint64(time.Since(start)))
	return &resp, nil
}
