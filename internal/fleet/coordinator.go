package fleet

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/diskstore"
	"repro/internal/obs"
	"repro/internal/resultcache"
	"repro/internal/version"
)

// ErrNoWorkers reports that a dispatch found no live worker with spare
// capacity; the caller executes the cell locally.
var ErrNoWorkers = errors.New("fleet: no live workers")

// ErrBudgetExhausted reports that the campaign's retry+hedge budget ran
// out before any attempt succeeded; the caller executes the cell
// locally.
var ErrBudgetExhausted = errors.New("fleet: re-dispatch budget exhausted")

// Config parameterizes a Coordinator. Zero values select the defaults
// noted per field.
type Config struct {
	// Cache and Store are the coordinator's cell cache and persistent
	// tier — the same instances the service reads — so peer cache fill
	// serves exactly what the coordinator would have served itself.
	// Either may be nil.
	Cache *resultcache.Cache
	Store *diskstore.Store
	// Token is the fleet's shared secret (-fleet-token). Non-empty
	// enables HMAC authentication on every fleet request, inbound and
	// outbound (auth.go); empty keeps the open trusted-network mode.
	Token string
	// WorkerTTL expires a worker that has not heartbeated (default 10s).
	WorkerTTL time.Duration
	// HedgeDelay is how long a dispatch waits on an attempt before
	// re-issuing the cell to another worker (default 1s). The first
	// valid result wins; the straggler's is discarded.
	HedgeDelay time.Duration
	// MaxAttempts bounds attempts per cell across retries and hedges
	// (default 3). Each attempt targets a distinct worker.
	MaxAttempts int
	// Backoff is the pause before relaunching after a failed attempt
	// (default 50ms).
	Backoff time.Duration
	// DefaultCapacity is assumed for workers that register without one
	// (default 4).
	DefaultCapacity int
	// PeerFillTimeout bounds each worker probed while relaying a cell
	// read (default 500ms): the relay is an optimization, so a slow
	// tier must not stall the requester past what executing would cost.
	PeerFillTimeout time.Duration
	// Client overrides the HTTP client used for dispatch.
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.WorkerTTL <= 0 {
		c.WorkerTTL = 10 * time.Second
	}
	if c.HedgeDelay <= 0 {
		c.HedgeDelay = time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.Backoff <= 0 {
		c.Backoff = 50 * time.Millisecond
	}
	if c.DefaultCapacity <= 0 {
		c.DefaultCapacity = 4
	}
	if c.PeerFillTimeout <= 0 {
		c.PeerFillTimeout = 500 * time.Millisecond
	}
	return c
}

// peerFillFanout caps how many workers one relayed cell read probes.
const peerFillFanout = 3

// Metrics are the coordinator's fleet counters, written lock-free on
// the dispatch path and rendered as affinityd_fleet_* at /metrics.
type Metrics struct {
	// Dispatches counts attempts launched (first tries, retries, and
	// hedges all included).
	Dispatches obs.Counter
	// RemoteCells counts Dispatch calls resolved by a worker's result.
	RemoteCells obs.Counter
	// Retries counts attempts relaunched after a failed one.
	Retries obs.Counter
	// Hedges counts attempts launched by the straggler timer while an
	// earlier attempt was still in flight.
	Hedges obs.Counter
	// HedgeWins counts dispatches whose winning result came from a
	// retry or hedge rather than the first attempt.
	HedgeWins obs.Counter
	// Duplicates counts valid results that arrived after a winner and
	// were discarded by cell key — the at-least-once overshoot.
	Duplicates obs.Counter
	// Failures counts attempts that returned an error (connection
	// failure, non-200, or an identity mismatch).
	Failures obs.Counter
	// Fallbacks counts dispatches that returned no result, sending the
	// cell to local execution.
	Fallbacks obs.Counter
	// Registrations counts new workers; heartbeats of a known worker do
	// not count.
	Registrations obs.Counter
	// AuthRejections counts fleet requests refused with 401 (missing,
	// garbled, or stale signature).
	AuthRejections obs.Counter
	// Expirations counts workers dropped — heartbeat TTL expiry or a
	// connection-level dispatch failure (they re-register if alive).
	Expirations obs.Counter
	// PeerHits/PeerMisses count peer cache-fill lookups served/missed
	// from the coordinator's own cache tiers.
	PeerHits   obs.Counter
	PeerMisses obs.Counter
	// WorkerFills counts cell reads the coordinator resolved by
	// relaying to another worker's tiers after missing its own.
	WorkerFills obs.Counter
	// PlacementDecisions counts scored placement decisions (one per
	// launched attempt).
	PlacementDecisions obs.Counter
	// PlacementCapacitySkips counts candidate workers passed over
	// because every capacity slot was occupied.
	PlacementCapacitySkips obs.Counter
	// PlacementPenalized counts decisions made while at least one
	// candidate carried a decaying failure penalty — the hysteresis
	// actively steering load.
	PlacementPenalized obs.Counter
	// BudgetExhausted counts campaigns whose retry+hedge budget ran dry
	// (incremented by the service, once per campaign).
	BudgetExhausted obs.Counter
	// RTTNs is the round-trip time of successful dispatch attempts.
	RTTNs obs.Histogram
}

// workerState is one registered worker; all fields are guarded by
// Coordinator.mu except rttHist (internally atomic).
type workerState struct {
	id            string
	url           string
	capacity      int
	engineVersion string
	registered    time.Time
	lastSeen      time.Time
	inflight      int
	dispatched    uint64
	succeeded     uint64
	failures      uint64
	// Placement signals (placement.go): RTT EWMA in nanoseconds, and
	// the decaying failure penalty with its last-update instant.
	rttEWMANs float64
	penalty   float64
	penaltyAt time.Time
	rttHist   *obs.Histogram
}

// WorkerID derives a worker's stable /v1/workers identity from its
// advertised URL: "w" + the first 12 hex digits of its SHA-256. Stable
// across re-registrations and coordinator restarts.
func WorkerID(url string) string {
	sum := sha256.Sum256([]byte(url))
	return "w" + hex.EncodeToString(sum[:6])
}

// Coordinator owns the fleet's worker registry and cell dispatch.
type Coordinator struct {
	cfg    Config
	client *http.Client
	auth   *authenticator

	// Stats holds the dispatch counters; read directly by /metrics.
	Stats Metrics

	mu      sync.Mutex
	workers map[string]*workerState // by advertised URL
}

// NewCoordinator builds a Coordinator.
func NewCoordinator(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	client := cfg.Client
	if client == nil {
		client = defaultClient()
	}
	return &Coordinator{
		cfg:     cfg,
		client:  client,
		auth:    newAuthenticator(cfg.Token),
		workers: make(map[string]*workerState),
	}
}

// AuthEnabled reports whether the fleet transport requires signatures.
func (c *Coordinator) AuthEnabled() bool { return c.auth.enabled() }

// RegisterHandlers mounts the coordinator's fleet endpoints.
func (c *Coordinator) RegisterHandlers(mux *http.ServeMux) {
	mux.HandleFunc("POST "+PathRegister, c.handleRegister)
	mux.HandleFunc("GET "+PathCells+"{key}", c.handleCell)
}

// readVerified reads and authenticates a fleet request's body. On
// failure it writes the 401 envelope and returns false.
func (c *Coordinator) readVerified(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeFleetError(w, http.StatusBadRequest, "invalid_request", "", fmt.Sprintf("read body: %v", err))
		return nil, false
	}
	if err := c.auth.verify(r, body); err != nil {
		c.Stats.AuthRejections.Inc()
		writeAuthError(w, err)
		return nil, false
	}
	return body, true
}

// handleRegister upserts a worker. Registration doubles as heartbeat.
func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	api.EchoRequestID(w, r)
	body, ok := c.readVerified(w, r)
	if !ok {
		return
	}
	var req RegisterRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeFleetError(w, http.StatusBadRequest, "invalid_request", "", fmt.Sprintf("bad register body: %v", err))
		return
	}
	if req.URL == "" {
		writeFleetError(w, http.StatusBadRequest, "invalid_param", "url", "register: url required")
		return
	}
	if req.EngineVersion != version.Engine {
		// A skewed worker's cache keys would never match ours; refusing
		// here keeps wrong-version results out by construction. The
		// Retry-After invites re-registration: a redeploy is exactly what
		// fixes the skew, and the worker keeps heartbeating meanwhile.
		w.Header().Set("Retry-After", "30")
		writeFleetError(w, http.StatusConflict, "engine_skew", "engine_version", fmt.Sprintf(
			"engine version %q does not match coordinator %q", req.EngineVersion, version.Engine))
		return
	}
	capacity := req.Capacity
	if capacity <= 0 {
		capacity = c.cfg.DefaultCapacity
	}
	now := time.Now()
	c.mu.Lock()
	ws := c.workers[req.URL]
	if ws == nil {
		ws = &workerState{id: WorkerID(req.URL), url: req.URL, registered: now, rttHist: &obs.Histogram{}}
		c.workers[req.URL] = ws
		c.Stats.Registrations.Inc()
	}
	ws.capacity = capacity
	ws.engineVersion = req.EngineVersion
	ws.lastSeen = now
	id := ws.id
	c.mu.Unlock()
	writeFleetJSON(w, http.StatusOK, RegisterResponse{
		APIVersion:   api.Version,
		OK:           true,
		ID:           id,
		HeartbeatSec: (c.cfg.WorkerTTL / 3).Seconds(),
	})
}

// handleCell is peer cache fill: a fleet member asks for a cell body
// the fleet may already have paid for. The coordinator checks its own
// memory tier, then its disk store, then relays the read to the other
// workers' tiers — excluding the requester (X-Fleet-Peer), which just
// reported the miss.
func (c *Coordinator) handleCell(w http.ResponseWriter, r *http.Request) {
	api.EchoRequestID(w, r)
	if err := c.auth.verify(r, nil); err != nil {
		c.Stats.AuthRejections.Inc()
		writeAuthError(w, err)
		return
	}
	key := r.PathValue("key")
	if c.cfg.Cache != nil {
		if body, costNs, ok := c.cfg.Cache.GetCost(key); ok {
			c.Stats.PeerHits.Inc()
			serveCell(w, body, costNs)
			return
		}
	}
	if c.cfg.Store != nil {
		if body, costNs, ok := c.cfg.Store.Get(key); ok {
			c.Stats.PeerHits.Inc()
			serveCell(w, body, costNs)
			return
		}
	}
	if body, costNs, ok := c.peerFill(r.Context(), key, r.Header.Get(peerHeader)); ok {
		c.Stats.WorkerFills.Inc()
		serveCell(w, body, costNs)
		return
	}
	c.Stats.PeerMisses.Inc()
	writeFleetError(w, http.StatusNotFound, "not_found", "", "cell not cached anywhere in the fleet")
}

// serveCell writes a raw cell body with its exec-cost metadata.
func serveCell(w http.ResponseWriter, body []byte, costNs uint64) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(execCostHeader, strconv.FormatUint(costNs, 10))
	w.Write(body)
}

// PeerFill asks the live workers' memory+disk tiers for a cell body the
// coordinator itself is missing — the reverse direction of peer cache
// fill. Used by the service when dispatch cannot run the cell remotely
// (budget exhausted, all attempts failed) but a worker may still hold
// the bytes. Returns the serving worker's URL alongside the body.
func (c *Coordinator) PeerFill(ctx context.Context, key string) (body []byte, costNs uint64, worker string, ok bool) {
	return c.peerFillAttributed(ctx, key, "")
}

// peerFill is PeerFill without attribution, for the relay path.
func (c *Coordinator) peerFill(ctx context.Context, key, exclude string) ([]byte, uint64, bool) {
	body, costNs, _, ok := c.peerFillAttributed(ctx, key, exclude)
	return body, costNs, ok
}

func (c *Coordinator) peerFillAttributed(ctx context.Context, key, exclude string) ([]byte, uint64, string, bool) {
	now := time.Now()
	c.mu.Lock()
	c.expireLocked(now)
	type cand struct {
		url   string
		score float64
	}
	cands := make([]cand, 0, len(c.workers))
	minRTT := 0.0
	for _, ws := range c.workers {
		if ws.url == exclude {
			continue
		}
		if ws.rttEWMANs > 0 && (minRTT == 0 || ws.rttEWMANs < minRTT) {
			minRTT = ws.rttEWMANs
		}
	}
	for _, ws := range c.workers {
		if ws.url == exclude {
			continue
		}
		cands = append(cands, cand{url: ws.url, score: ws.score(now, minRTT)})
	}
	c.mu.Unlock()
	// Probe the best-scored workers first: a read costs one capacity-free
	// GET, so score order just minimizes expected latency.
	sort.Slice(cands, func(i, k int) bool {
		if cands[i].score != cands[k].score {
			return cands[i].score < cands[k].score
		}
		return cands[i].url < cands[k].url
	})
	if len(cands) > peerFillFanout {
		cands = cands[:peerFillFanout]
	}
	for _, cd := range cands {
		if ctx.Err() != nil {
			return nil, 0, "", false
		}
		body, costNs, ok := c.fetchCell(ctx, cd.url, key)
		if ok {
			// Promote: the coordinator's own tiers now have the bytes, so
			// the next reader anywhere in the fleet stops at tier one.
			if c.cfg.Cache != nil {
				c.cfg.Cache.PutCost(key, body, costNs)
			}
			if c.cfg.Store != nil {
				c.cfg.Store.Put(key, body, costNs)
			}
			return body, costNs, cd.url, true
		}
	}
	return nil, 0, "", false
}

// fetchCell GETs one worker's cell-read endpoint, bounded by the
// peer-fill timeout.
func (c *Coordinator) fetchCell(ctx context.Context, workerURL, key string) ([]byte, uint64, bool) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.PeerFillTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, workerURL+PathCells+url.PathEscape(key), nil)
	if err != nil {
		return nil, 0, false
	}
	c.auth.sign(req, nil)
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, 0, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, 0, false
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil || len(body) == 0 || !json.Valid(body) {
		return nil, 0, false
	}
	costNs, _ := strconv.ParseUint(resp.Header.Get(execCostHeader), 10, 64)
	return body, costNs, true
}

// WorkerView is the /v1/workers wire form of one registered worker.
type WorkerView struct {
	ID            string `json:"id"`
	URL           string `json:"url"`
	Capacity      int    `json:"capacity"`
	EngineVersion string `json:"engine_version"`
	Registered    string `json:"registered"`
	LastSeen      string `json:"last_seen"`
	InFlight      int    `json:"inflight"`
	// Dispatched counts attempts sent to this worker; Succeeded the
	// attempts that returned a valid result; Failures the rest.
	Dispatched uint64 `json:"dispatched"`
	Succeeded  uint64 `json:"succeeded"`
	Failures   uint64 `json:"failures"`
}

// WorkerDetail is the GET /v1/workers/{id} wire form: the listing row
// plus the placement signals behind the scorer — the RTT histogram
// summary and the decaying failure penalty.
type WorkerDetail struct {
	APIVersion string `json:"api_version"`
	WorkerView
	// FailurePenalty is the decayed hysteresis penalty at snapshot time
	// (0 = fully recovered).
	FailurePenalty float64 `json:"failure_penalty"`
	// RTTMeanMs is the EWMA the scorer uses; the percentiles summarize
	// the full per-worker histogram (log2 buckets, so upper bounds
	// within 2×).
	RTTMeanMs  float64 `json:"rtt_mean_ms"`
	RTTCount   uint64  `json:"rtt_count"`
	RTTP50Ms   float64 `json:"rtt_p50_ms"`
	RTTP90Ms   float64 `json:"rtt_p90_ms"`
	RTTP99Ms   float64 `json:"rtt_p99_ms"`
}

func (ws *workerState) view() WorkerView {
	return WorkerView{
		ID:            ws.id,
		URL:           ws.url,
		Capacity:      ws.capacity,
		EngineVersion: ws.engineVersion,
		Registered:    ws.registered.UTC().Format(time.RFC3339Nano),
		LastSeen:      ws.lastSeen.UTC().Format(time.RFC3339Nano),
		InFlight:      ws.inflight,
		Dispatched:    ws.dispatched,
		Succeeded:     ws.succeeded,
		Failures:      ws.failures,
	}
}

// Workers snapshots the live registry (expired entries pruned), sorted
// by ID — the keyset /v1/workers paginates over.
func (c *Coordinator) Workers() []WorkerView {
	now := time.Now()
	c.mu.Lock()
	c.expireLocked(now)
	out := make([]WorkerView, 0, len(c.workers))
	for _, ws := range c.workers {
		out = append(out, ws.view())
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// WorkerByID returns the detail view of one live worker.
func (c *Coordinator) WorkerByID(id string) (WorkerDetail, bool) {
	now := time.Now()
	c.mu.Lock()
	c.expireLocked(now)
	var found *workerState
	for _, ws := range c.workers {
		if ws.id == id {
			found = ws
			break
		}
	}
	if found == nil {
		c.mu.Unlock()
		return WorkerDetail{}, false
	}
	d := WorkerDetail{
		APIVersion:     api.Version,
		WorkerView:     found.view(),
		FailurePenalty: found.failurePenaltyAt(now),
		RTTMeanMs:      found.rttEWMANs / 1e6,
	}
	hist := found.rttHist
	c.mu.Unlock()
	snap := hist.Snapshot()
	d.RTTCount = snap.Count
	d.RTTP50Ms = float64(histPercentile(snap, 50)) / 1e6
	d.RTTP90Ms = float64(histPercentile(snap, 90)) / 1e6
	d.RTTP99Ms = float64(histPercentile(snap, 99)) / 1e6
	return d, true
}

// LiveWorkers returns the number of unexpired workers (the
// affinityd_fleet_workers gauge).
func (c *Coordinator) LiveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(time.Now())
	return len(c.workers)
}

// expireLocked drops workers whose heartbeats stopped. Callers hold
// c.mu.
func (c *Coordinator) expireLocked(now time.Time) {
	for url, ws := range c.workers {
		if now.Sub(ws.lastSeen) > c.cfg.WorkerTTL {
			delete(c.workers, url)
			c.Stats.Expirations.Inc()
		}
	}
}

// pick reserves one unit of capacity on the best-scored live worker not
// yet tried for this cell (placement.go). Returns "" when no worker
// qualifies, else the worker's URL and the rendered placement decision
// for event attribution.
func (c *Coordinator) pick(tried map[string]bool) (string, string) {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	// First pass: the minimum RTT EWMA among eligible candidates
	// normalizes the scorer's rtt term.
	minRTT := 0.0
	for _, ws := range c.workers {
		if tried[ws.url] || ws.inflight >= ws.capacity {
			continue
		}
		if ws.rttEWMANs > 0 && (minRTT == 0 || ws.rttEWMANs < minRTT) {
			minRTT = ws.rttEWMANs
		}
	}
	var best *workerState
	bestScore := 0.0
	penalized := false
	for _, ws := range c.workers {
		if tried[ws.url] {
			continue
		}
		if ws.inflight >= ws.capacity {
			c.Stats.PlacementCapacitySkips.Inc()
			continue
		}
		if ws.failurePenaltyAt(now) > 0 {
			penalized = true
		}
		s := ws.score(now, minRTT)
		// Lower score wins; URL order breaks ties deterministically.
		if best == nil || s < bestScore || (s == bestScore && ws.url < best.url) {
			best, bestScore = ws, s
		}
	}
	if best == nil {
		return "", ""
	}
	c.Stats.PlacementDecisions.Inc()
	if penalized {
		c.Stats.PlacementPenalized.Inc()
	}
	placement := placementString(bestScore, best.inflight, best.capacity,
		best.rttEWMANs, best.failurePenaltyAt(now))
	best.inflight++
	best.dispatched++
	return best.url, placement
}

// release returns a worker's capacity unit after an attempt, recording
// the outcome. A connection-level failure drops the worker entirely —
// it re-registers on its next heartbeat if it is actually alive — so a
// killed worker stops receiving dispatches after one failed attempt
// instead of lingering until TTL expiry. Soft failures (bad status,
// identity mismatch) instead add to the worker's decaying placement
// penalty, deprioritizing without dropping.
func (c *Coordinator) release(url string, rtt time.Duration, failed, drop bool) {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	ws := c.workers[url]
	if ws == nil {
		return
	}
	ws.inflight--
	if failed {
		ws.failures++
		ws.addFailure(now)
	} else {
		ws.succeeded++
		ws.lastSeen = now // a served cell is as good as a heartbeat
		if rtt > 0 {
			ws.observeRTT(rtt)
		}
	}
	if drop {
		delete(c.workers, url)
		c.Stats.Expirations.Inc()
	}
}

// attemptOutcome is one dispatch attempt's result.
type attemptOutcome struct {
	resp      *ExecuteResponse
	err       error
	attempt   int    // 1-based launch order
	placement string // the scored decision that launched it
}

// Dispatch executes one cell on the fleet with an unlimited re-dispatch
// budget; see DispatchBudget.
func (c *Coordinator) Dispatch(ctx context.Context, req ExecuteRequest) (*ExecuteResponse, error) {
	return c.DispatchBudget(ctx, req, nil)
}

// DispatchBudget executes one cell on the fleet: bounded retry with
// backoff on failure, hedged re-dispatch of stragglers after
// HedgeDelay, first valid result wins. Exactly one response is ever
// returned per call — late duplicates are drained and counted, never
// delivered — so the caller's one-result-per-miss accounting (misses ==
// execution attempts) holds no matter how the race resolves. Every
// retry and hedge beyond the first attempt spends one unit of budget
// (nil = unlimited); when the budget is dry the attempt is simply not
// launched. A non-nil error (ErrNoWorkers, ErrBudgetExhausted, every
// attempt failed, or ctx cancelled) means the caller should execute the
// cell locally.
func (c *Coordinator) DispatchBudget(ctx context.Context, req ExecuteRequest, budget *Budget) (*ExecuteResponse, error) {
	tried := make(map[string]bool, c.cfg.MaxAttempts)
	ch := make(chan attemptOutcome, c.cfg.MaxAttempts)
	launched := 0
	launch := func() bool {
		if launched >= c.cfg.MaxAttempts {
			return false
		}
		url, placement := c.pick(tried)
		if url == "" {
			return false
		}
		tried[url] = true
		launched++
		attempt := launched
		c.Stats.Dispatches.Inc()
		go func() {
			resp, err := c.execute(ctx, url, req)
			ch <- attemptOutcome{resp: resp, err: err, attempt: attempt, placement: placement}
		}()
		return true
	}
	if !launch() {
		c.Stats.Fallbacks.Inc()
		return nil, ErrNoWorkers
	}
	hedge := time.NewTimer(c.cfg.HedgeDelay)
	defer hedge.Stop()
	outstanding := 1
	var lastErr error
	for {
		select {
		case out := <-ch:
			outstanding--
			if out.err == nil {
				c.Stats.RemoteCells.Inc()
				if out.attempt > 1 {
					c.Stats.HedgeWins.Inc()
				}
				if outstanding > 0 {
					go c.drainLate(ch, outstanding)
				}
				out.resp.Placement = out.placement
				return out.resp, nil
			}
			c.Stats.Failures.Inc()
			lastErr = out.err
			if launched < c.cfg.MaxAttempts {
				// Brief pause so a flapping fleet doesn't spin; the
				// context still cancels promptly.
				select {
				case <-time.After(c.cfg.Backoff):
				case <-ctx.Done():
					c.abandon(ch, outstanding)
					return nil, ctx.Err()
				}
				// A retry is re-dispatch overshoot: it spends budget. When
				// the campaign's budget is dry the cell stops retrying and
				// (if nothing is still in flight) falls back locally.
				if budget.TrySpend() {
					if launch() {
						c.Stats.Retries.Inc()
						outstanding++
						continue
					}
				} else if outstanding == 0 {
					c.Stats.Fallbacks.Inc()
					return nil, ErrBudgetExhausted
				}
			}
			if outstanding == 0 {
				c.Stats.Fallbacks.Inc()
				return nil, lastErr
			}
		case <-hedge.C:
			// The attempt is straggling: re-issue the cell elsewhere and
			// race the two. Determinism makes either answer correct. A
			// hedge spends budget like a retry; once dry, the straggler
			// simply races on alone.
			if budget.TrySpend() && launch() {
				c.Stats.Hedges.Inc()
				outstanding++
			}
		case <-ctx.Done():
			c.abandon(ch, outstanding)
			return nil, ctx.Err()
		}
	}
}

// abandon drains outstanding attempts in the background after the
// dispatch stops caring, counting the fallback.
func (c *Coordinator) abandon(ch chan attemptOutcome, outstanding int) {
	c.Stats.Fallbacks.Inc()
	if outstanding > 0 {
		go c.drainLate(ch, outstanding)
	}
}

// drainLate consumes attempts that finished after a winner (or after
// abandonment): valid duplicates are counted and discarded — never
// folded into stats or a merge — and late failures are counted as
// failures.
func (c *Coordinator) drainLate(ch chan attemptOutcome, n int) {
	for i := 0; i < n; i++ {
		out := <-ch
		if out.err == nil {
			c.Stats.Duplicates.Inc()
		} else {
			c.Stats.Failures.Inc()
		}
	}
}

// execute runs one HTTP attempt against one worker and validates the
// response's identity: the returned key and cell id must echo the
// request, and the body must be non-empty JSON. Anything else is an
// attempt failure, never a result.
func (c *Coordinator) execute(ctx context.Context, workerURL string, req ExecuteRequest) (*ExecuteResponse, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		c.release(workerURL, 0, true, false)
		return nil, err
	}
	start := time.Now()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, workerURL+PathExecute, bytes.NewReader(payload))
	if err != nil {
		c.release(workerURL, 0, true, false)
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if req.RequestID != "" {
		hreq.Header.Set(api.RequestIDHeader, req.RequestID)
	}
	c.auth.sign(hreq, payload)
	hresp, err := c.client.Do(hreq)
	if err != nil {
		// Connection-level failure: the worker is unreachable (killed,
		// crashed, partitioned). Drop it now rather than redispatching
		// into the hole until TTL expiry.
		c.release(workerURL, 0, true, true)
		return nil, fmt.Errorf("fleet: worker %s: %w", workerURL, err)
	}
	defer hresp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(hresp.Body, 64<<20))
	if err != nil {
		c.release(workerURL, 0, true, true)
		return nil, fmt.Errorf("fleet: worker %s: read: %w", workerURL, err)
	}
	if hresp.StatusCode != http.StatusOK {
		c.release(workerURL, 0, true, false)
		return nil, fmt.Errorf("fleet: worker %s: status %d: %.200s", workerURL, hresp.StatusCode, body)
	}
	var resp ExecuteResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		c.release(workerURL, 0, true, false)
		return nil, fmt.Errorf("fleet: worker %s: bad response: %w", workerURL, err)
	}
	if resp.Key != req.Key || resp.CellID != req.CellID || len(resp.Body) == 0 || !json.Valid(resp.Body) {
		c.release(workerURL, 0, true, false)
		return nil, fmt.Errorf("fleet: worker %s: identity mismatch (cell %q key %.16q)", workerURL, resp.CellID, resp.Key)
	}
	rtt := time.Since(start)
	c.release(workerURL, rtt, false, false)
	c.Stats.RTTNs.Observe(uint64(rtt))
	return &resp, nil
}
