// Package footprint is the analytic per-processor cache occupancy model
// used inside the discrete-event scheduler simulation.
//
// Replaying every memory reference through the exact simulator in
// internal/cache is affordable for the Section-4 single-processor
// measurements, but not inside multi-minute, twenty-processor scheduling
// runs. Following Thiebaut & Stone's footprint treatment (which the paper
// cites for exactly this purpose), this package tracks, for each processor,
// the expected number of cache lines each task has resident, with:
//
//   - saturating footprint growth driven by the task's reference pattern
//     (memtrace.Pattern.TouchRate);
//   - proportional eviction: a task's new lines displace other tasks'
//     lines in proportion to their current occupancy;
//   - overlap discounting: of the distinct lines a resuming task touches,
//     a fraction equal to its resident share is assumed still cached.
//
// The model is validated against the exact cache simulator in the package
// tests and in the ablation benchmark (see DESIGN.md §4).
package footprint

import (
	"fmt"
	"math"

	"repro/internal/simtime"
)

// overlapExponent shapes the survival discount in Segment. With exponent 1
// (uniform overlap) the model badly overestimates reload misses at short
// resume intervals, because LRU preferentially evicts a task's stalest
// lines while the resuming task re-touches its freshest lines first.
// Calibration against the exact simulator (see TestModelAgreesWithExactCache
// and cmd/calib) shows an exponent of 1.2 tracks actual reload misses
// within about a factor of two across the 100–400 ms reallocation
// intervals the scheduling experiments operate at.
const overlapExponent = 1.2

// Profile describes a task's reference behaviour; memtrace.Pattern
// implements it.
type Profile interface {
	// TouchRate returns the expected number of distinct lines touched
	// during an execution interval of the given length.
	TouchRate(d simtime.Duration) float64
	// LiveFootprint returns the asymptotic number of distinct lines with
	// cacheable reuse.
	LiveFootprint() int
}

// Cache models one processor's cache occupancy, in (fractional) lines,
// keyed by task identifier.
//
// Occupancy entries are stored in a slice (with a map only as an index) so
// that the proportional-eviction arithmetic iterates tasks in a
// deterministic order: identical simulation runs must produce bitwise
// identical results, and map iteration order would perturb floating-point
// accumulation.
type Cache struct {
	capacity float64
	idx      map[int]int // task -> position in entries
	entries  []entry
	occupied float64
}

type entry struct {
	task  int
	lines float64
}

// New creates an occupancy model for a cache of the given capacity in
// lines.
func New(capacityLines int) (*Cache, error) {
	if capacityLines <= 0 {
		return nil, fmt.Errorf("footprint: capacity must be positive, got %d", capacityLines)
	}
	return &Cache{
		capacity: float64(capacityLines),
		idx:      make(map[int]int),
	}, nil
}

// MustNew is New for known-good capacities.
func MustNew(capacityLines int) *Cache {
	c, err := New(capacityLines)
	if err != nil {
		panic(err)
	}
	return c
}

// Capacity returns the modelled capacity in lines.
func (c *Cache) Capacity() float64 { return c.capacity }

// Resident returns the expected number of lines task currently has
// resident.
func (c *Cache) Resident(task int) float64 {
	if i, ok := c.idx[task]; ok {
		return c.entries[i].lines
	}
	return 0
}

// Occupied returns the total expected occupancy in lines.
func (c *Cache) Occupied() float64 { return c.occupied }

// Flush empties the cache.
func (c *Cache) Flush() {
	clear(c.idx)
	c.entries = c.entries[:0]
	c.occupied = 0
}

// Reset prepares the cache for a fresh simulation run: occupancy is
// emptied while the entry slice and index map keep their allocated
// capacity, so a cache reused across the replications of an experiment
// cell stops re-growing its internals after the first run.
func (c *Cache) Reset() { c.Flush() }

// remove drops the entry at position i by swapping with the last entry.
func (c *Cache) remove(i int) {
	last := len(c.entries) - 1
	delete(c.idx, c.entries[i].task)
	if i != last {
		c.entries[i] = c.entries[last]
		c.idx[c.entries[i].task] = i
	}
	c.entries = c.entries[:last]
}

// Evict removes all of task's lines (e.g. on task exit).
func (c *Cache) Evict(task int) {
	if i, ok := c.idx[task]; ok {
		c.occupied -= c.entries[i].lines
		c.remove(i)
	}
}

// Invalidate removes up to lines of task's residency, modelling coherency
// invalidations when another processor writes lines this task has cached.
// It returns the number of lines actually invalidated.
func (c *Cache) Invalidate(task int, lines float64) float64 {
	if lines <= 0 {
		return 0
	}
	i, ok := c.idx[task]
	if !ok {
		return 0
	}
	if lines >= c.entries[i].lines {
		removed := c.entries[i].lines
		c.occupied -= removed
		c.remove(i)
		return removed
	}
	c.entries[i].lines -= lines
	c.occupied -= lines
	return lines
}

// Load installs lines for task, displacing other tasks' lines
// proportionally to their occupancy when the cache is full. The task's own
// residency is capped at capacity.
func (c *Cache) Load(task int, lines float64) {
	if lines <= 0 {
		return
	}
	r := c.Resident(task)
	target := r + lines
	if target > c.capacity {
		target = c.capacity
	}
	grow := target - r
	if grow <= 0 {
		return
	}
	free := c.capacity - c.occupied
	if grow > free {
		// Displace others proportionally to their share of the cache.
		need := grow - free
		others := c.occupied - r
		if others > 0 {
			scale := 1 - need/others
			if scale < 0 {
				scale = 0
			}
			for i := 0; i < len(c.entries); {
				e := &c.entries[i]
				if e.task == task {
					i++
					continue
				}
				nv := e.lines * scale
				c.occupied += nv - e.lines
				if nv < 1e-9 {
					c.occupied -= nv
					c.remove(i)
					continue // a swapped-in entry now occupies slot i
				}
				e.lines = nv
				i++
			}
		}
	}
	if i, ok := c.idx[task]; ok {
		c.entries[i].lines += grow
	} else {
		c.idx[task] = len(c.entries)
		c.entries = append(c.entries, entry{task: task, lines: r + grow})
	}
	c.occupied += grow
	if c.occupied > c.capacity {
		c.occupied = c.capacity
	}
}

// Segment computes the expected number of cache misses when a task with
// profile p executes the compute interval [t0, t1) of its current
// scheduling dispatch, having had r0 lines resident at dispatch time.
//
// Coverage is measured from the start of the dispatch: the task touches
// TouchRate(t1) − TouchRate(t0) distinct lines during the interval, and a
// fraction r0/LiveFootprint of them are assumed still resident.
func Segment(p Profile, t0, t1 simtime.Duration, r0 float64) float64 {
	if t1 <= t0 {
		return 0
	}
	touched := p.TouchRate(t1) - p.TouchRate(t0)
	if touched <= 0 {
		return 0
	}
	live := float64(p.LiveFootprint())
	if live <= 0 {
		return touched
	}
	frac := 1 - r0/live
	if frac < 0 {
		frac = 0
	}
	return touched * math.Pow(frac, overlapExponent)
}

// RunSegment applies Segment and updates the cache occupancy: the misses
// are installed as new lines for the task. It returns the expected miss
// count.
func (c *Cache) RunSegment(task int, p Profile, t0, t1 simtime.Duration, r0 float64) float64 {
	misses := Segment(p, t0, t1, r0)
	c.Load(task, misses)
	return misses
}

// ReloadEstimate returns the expected misses a task must take to rebuild
// its steady-state footprint from r0 resident lines: the gap between its
// live footprint (capped at capacity) and what survives.
func (c *Cache) ReloadEstimate(p Profile, r0 float64) float64 {
	live := float64(p.LiveFootprint())
	if live > c.capacity {
		live = c.capacity
	}
	gap := live - r0
	if gap < 0 {
		return 0
	}
	return gap
}
