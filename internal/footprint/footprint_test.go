package footprint

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/memtrace"
	"repro/internal/simtime"
	"repro/internal/xrand"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := New(-5); err == nil {
		t.Error("negative capacity accepted")
	}
	c, err := New(4096)
	if err != nil {
		t.Fatal(err)
	}
	if c.Capacity() != 4096 {
		t.Errorf("Capacity = %v", c.Capacity())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustNew(0)
}

func TestLoadAndResident(t *testing.T) {
	c := MustNew(100)
	c.Load(1, 40)
	if got := c.Resident(1); got != 40 {
		t.Errorf("Resident = %v, want 40", got)
	}
	if got := c.Occupied(); got != 40 {
		t.Errorf("Occupied = %v, want 40", got)
	}
	c.Load(1, -5) // no-op
	c.Load(1, 0)  // no-op
	if got := c.Resident(1); got != 40 {
		t.Errorf("Resident after no-op loads = %v", got)
	}
}

func TestLoadCapsAtCapacity(t *testing.T) {
	c := MustNew(100)
	c.Load(1, 500)
	if got := c.Resident(1); got != 100 {
		t.Errorf("Resident = %v, want capacity 100", got)
	}
	if got := c.Occupied(); got != 100 {
		t.Errorf("Occupied = %v", got)
	}
}

func TestProportionalEviction(t *testing.T) {
	c := MustNew(100)
	c.Load(1, 60)
	c.Load(2, 30)
	// Loading 20 more for task 3 requires evicting 10 lines from tasks 1+2
	// proportionally: task1 loses 10*(60/90)=6.67, task2 loses 3.33.
	c.Load(3, 20)
	if got := c.Occupied(); math.Abs(got-100) > 1e-6 {
		t.Errorf("Occupied = %v, want 100", got)
	}
	r1, r2 := c.Resident(1), c.Resident(2)
	if math.Abs(r1-53.333) > 0.01 || math.Abs(r2-26.667) > 0.01 {
		t.Errorf("proportional eviction wrong: r1=%v r2=%v", r1, r2)
	}
	if got := c.Resident(3); got != 20 {
		t.Errorf("Resident(3) = %v", got)
	}
}

func TestOwnLinesNotSelfEvicted(t *testing.T) {
	c := MustNew(100)
	c.Load(1, 90)
	c.Load(1, 50) // capped at capacity, not displacing itself below
	if got := c.Resident(1); got != 100 {
		t.Errorf("Resident = %v, want 100", got)
	}
}

func TestFlushAndEvict(t *testing.T) {
	c := MustNew(100)
	c.Load(1, 30)
	c.Load(2, 30)
	c.Evict(1)
	if c.Resident(1) != 0 || c.Occupied() != 30 {
		t.Error("Evict wrong")
	}
	c.Evict(99) // absent: no-op
	c.Flush()
	if c.Occupied() != 0 || c.Resident(2) != 0 {
		t.Error("Flush wrong")
	}
}

func TestSegmentBasics(t *testing.T) {
	p := memtrace.MVAPattern()
	// Empty/inverted intervals cost nothing.
	if got := Segment(p, 10, 10, 0); got != 0 {
		t.Errorf("zero interval = %v", got)
	}
	if got := Segment(p, 20, 10, 0); got != 0 {
		t.Errorf("inverted interval = %v", got)
	}
	// Cold start over 25ms touches about TouchRate(25ms) lines.
	cold := Segment(p, 0, 25*simtime.Millisecond, 0)
	if want := p.TouchRate(25 * simtime.Millisecond); math.Abs(cold-want) > 1e-9 {
		t.Errorf("cold Segment = %v, want %v", cold, want)
	}
	// Full residency means no misses.
	if got := Segment(p, 0, 25*simtime.Millisecond, float64(p.LiveFootprint())); got != 0 {
		t.Errorf("warm Segment = %v, want 0", got)
	}
	// Over-full residency clamps rather than going negative.
	if got := Segment(p, 0, 25*simtime.Millisecond, 2*float64(p.LiveFootprint())); got != 0 {
		t.Errorf("over-warm Segment = %v, want 0", got)
	}
}

func TestRunSegmentUpdatesOccupancy(t *testing.T) {
	p := memtrace.MatrixPattern()
	c := MustNew(4096)
	misses := c.RunSegment(1, p, 0, 100*simtime.Millisecond, 0)
	if misses <= 0 {
		t.Fatal("no misses on cold cache")
	}
	if got := c.Resident(1); math.Abs(got-misses) > 1e-9 {
		t.Errorf("Resident = %v, want %v", got, misses)
	}
}

func TestReloadEstimate(t *testing.T) {
	p := memtrace.GravityPattern()
	c := MustNew(4096)
	full := c.ReloadEstimate(p, 0)
	live := float64(p.LiveFootprint())
	if live > 4096 {
		live = 4096
	}
	if full != live {
		t.Errorf("cold ReloadEstimate = %v, want %v", full, live)
	}
	if got := c.ReloadEstimate(p, live); got != 0 {
		t.Errorf("warm ReloadEstimate = %v, want 0", got)
	}
	if got := c.ReloadEstimate(p, live+100); got != 0 {
		t.Errorf("over-warm ReloadEstimate = %v", got)
	}
}

// Validation against the exact cache simulator: the footprint model's
// predicted reload misses after an intervening task must be within a
// reasonable factor of the misses the exact simulator actually takes.
func TestModelAgreesWithExactCache(t *testing.T) {
	mcCache := cache.SymmetryConfig()
	capLines := mcCache.Lines()
	measured := memtrace.MVAPattern()
	interv := memtrace.MatrixPattern()

	runFor := func(c *cache.Cache, g *memtrace.Generator, owner int, d simtime.Duration) (misses int) {
		start := g.Elapsed()
		for g.Elapsed()-start < d {
			addr, _ := g.Next()
			if !c.Access(owner, addr) {
				misses++
			}
		}
		return misses
	}

	for _, q := range []simtime.Duration{100 * simtime.Millisecond, 200 * simtime.Millisecond, 400 * simtime.Millisecond} {
		// Exact: warm measured task, run intervening for q, resume for q.
		c := cache.MustNew(mcCache)
		gm := memtrace.NewGenerator(measured, 0, 11)
		gi := memtrace.NewGenerator(interv, 1<<40, 13)
		runFor(c, gm, 0, simtime.Second) // warm
		residentBefore := float64(c.Resident(0))
		runFor(c, gi, 1, q)
		residentAfter := float64(c.Resident(0))
		exactResume := runFor(c, gm, 0, q)

		// Model: same protocol end to end.
		fp := MustNew(capLines)
		fp.Load(0, residentBefore)
		fp.RunSegment(1, interv, 0, q, 0)
		modelSurvive := fp.Resident(0)
		modelResume := Segment(measured, 0, q, modelSurvive)

		// Survival prediction within a factor of about 1.6 of exact.
		if residentAfter > 50 {
			ratio := modelSurvive / residentAfter
			if ratio < 0.6 || ratio > 1.6 {
				t.Errorf("q=%v: survival model=%v exact=%v (ratio %.2f)", q, modelSurvive, residentAfter, ratio)
			}
		}
		// Resume-miss prediction within a factor of about 2.2 — the
		// fidelity target at the reallocation intervals the scheduling
		// experiments operate at (Table 3 reports 200–450 ms).
		if exactResume > 50 {
			ratio := modelResume / float64(exactResume)
			if ratio < 0.45 || ratio > 2.2 {
				t.Errorf("q=%v: resume misses model=%v exact=%d (ratio %.2f)", q, modelResume, exactResume, ratio)
			}
		}
	}
}

// Property: occupancy never exceeds capacity and residents stay
// non-negative under arbitrary Load/Evict/Flush sequences.
func TestQuickInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed, 2)
		c := MustNew(1000)
		for i := 0; i < 500; i++ {
			switch rng.Intn(10) {
			case 0:
				c.Flush()
			case 1:
				c.Evict(rng.Intn(5))
			default:
				c.Load(rng.Intn(5), float64(rng.Intn(400)))
			}
			if c.Occupied() > c.Capacity()+1e-6 {
				return false
			}
			total := 0.0
			for task := 0; task < 5; task++ {
				r := c.Resident(task)
				if r < 0 {
					return false
				}
				total += r
			}
			if math.Abs(total-c.Occupied()) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: Segment is monotone in interval length and antitone in
// residency.
func TestQuickSegmentMonotone(t *testing.T) {
	p := memtrace.GravityPattern()
	f := func(aRaw, bRaw uint16, rRaw uint16) bool {
		a := simtime.Duration(aRaw) * simtime.Millisecond / 4
		b := a + simtime.Duration(bRaw)*simtime.Millisecond/4
		r := float64(rRaw % 4096)
		s1 := Segment(p, 0, a, r)
		s2 := Segment(p, 0, b, r)
		if s2 < s1-1e-9 {
			return false
		}
		lowR := Segment(p, 0, b, r/2)
		return lowR >= s2-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInvalidate(t *testing.T) {
	c := MustNew(100)
	c.Load(1, 50)
	if got := c.Invalidate(1, 20); got != 20 {
		t.Errorf("Invalidate = %v, want 20", got)
	}
	if c.Resident(1) != 30 || c.Occupied() != 30 {
		t.Errorf("after partial invalidate: r=%v occ=%v", c.Resident(1), c.Occupied())
	}
	// Over-invalidation removes everything and reports the actual amount.
	if got := c.Invalidate(1, 100); got != 30 {
		t.Errorf("over-Invalidate = %v, want 30", got)
	}
	if c.Resident(1) != 0 || c.Occupied() != 0 {
		t.Error("residue after full invalidate")
	}
	// Absent task and non-positive amounts are no-ops.
	if got := c.Invalidate(9, 10); got != 0 {
		t.Errorf("absent-task Invalidate = %v", got)
	}
	if got := c.Invalidate(1, -5); got != 0 {
		t.Errorf("negative Invalidate = %v", got)
	}
}

func TestResetEquivalentToFresh(t *testing.T) {
	c := MustNew(1000)
	c.Load(1, 400)
	c.Load(2, 800)
	c.Reset()
	if c.Occupied() != 0 || c.Resident(1) != 0 || c.Resident(2) != 0 {
		t.Fatalf("reset cache not empty: occ=%v", c.Occupied())
	}
	// Identical behaviour after Reset as on a fresh cache.
	fresh := MustNew(1000)
	for _, cc := range []*Cache{c, fresh} {
		cc.Load(3, 600)
		cc.Load(4, 700)
	}
	if c.Resident(3) != fresh.Resident(3) || c.Resident(4) != fresh.Resident(4) ||
		c.Occupied() != fresh.Occupied() {
		t.Fatalf("reset cache diverges from fresh: %v/%v vs %v/%v",
			c.Resident(3), c.Resident(4), fresh.Resident(3), fresh.Resident(4))
	}
}
