package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/simtime"
)

func TestFiresInTimeOrder(t *testing.T) {
	var q Queue
	var got []int
	q.At(30, func() { got = append(got, 3) })
	q.At(10, func() { got = append(got, 1) })
	q.At(20, func() { got = append(got, 2) })
	for q.Step() {
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("fire order = %v, want [1 2 3]", got)
	}
	if q.Now() != 30 {
		t.Errorf("Now = %v, want 30", q.Now())
	}
	if q.Fired() != 3 {
		t.Errorf("Fired = %d, want 3", q.Fired())
	}
}

func TestTieBreakIsSchedulingOrder(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		q.At(100, func() { got = append(got, i) })
	}
	for q.Step() {
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events fired out of scheduling order: %v", got)
		}
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	var q Queue
	var at2 simtime.Time
	q.At(5, func() {
		q.After(7, func() { at2 = q.Now() })
	})
	for q.Step() {
	}
	if at2 != 12 {
		t.Fatalf("After fired at %v, want 12", at2)
	}
}

func TestCancel(t *testing.T) {
	var q Queue
	fired := false
	e := q.At(10, func() { fired = true })
	q.Cancel(e)
	if !e.Cancelled() {
		t.Error("event not marked cancelled")
	}
	for q.Step() {
	}
	if fired {
		t.Error("cancelled event fired")
	}
	// Double cancel and nil cancel are no-ops.
	q.Cancel(e)
	q.Cancel(nil)
}

func TestCancelMiddleOfHeap(t *testing.T) {
	var q Queue
	var got []int
	var es []*Event
	for i := 0; i < 20; i++ {
		i := i
		es = append(es, q.At(simtime.Time(i), func() { got = append(got, i) }))
	}
	// Cancel the odd ones.
	for i := 1; i < 20; i += 2 {
		q.Cancel(es[i])
	}
	for q.Step() {
	}
	if len(got) != 10 {
		t.Fatalf("fired %d events, want 10", len(got))
	}
	for i, v := range got {
		if v != 2*i {
			t.Fatalf("got %v, want evens in order", got)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	var q Queue
	q.At(10, func() {})
	q.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic scheduling in the past")
		}
	}()
	q.At(5, func() {})
}

func TestNilFirePanics(t *testing.T) {
	var q Queue
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for nil Fire")
		}
	}()
	q.At(5, nil)
}

func TestNegativeAfterPanics(t *testing.T) {
	var q Queue
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative delay")
		}
	}()
	q.After(-1, func() {})
}

func TestPeek(t *testing.T) {
	var q Queue
	if q.Peek() != simtime.Never {
		t.Errorf("Peek on empty = %v, want Never", q.Peek())
	}
	q.At(42, func() {})
	if q.Peek() != 42 {
		t.Errorf("Peek = %v, want 42", q.Peek())
	}
}

func TestRunUntil(t *testing.T) {
	var q Queue
	var got []simtime.Time
	for _, at := range []simtime.Time{5, 10, 15, 20} {
		at := at
		q.At(at, func() { got = append(got, at) })
	}
	n := q.RunUntil(15)
	if n != 3 {
		t.Fatalf("RunUntil fired %d, want 3", n)
	}
	if q.Len() != 1 || q.Peek() != 20 {
		t.Fatalf("remaining queue wrong: len=%d peek=%v", q.Len(), q.Peek())
	}
}

func TestRunCap(t *testing.T) {
	var q Queue
	var reschedule func()
	reschedule = func() { q.After(1, reschedule) }
	q.After(1, reschedule)
	n, err := q.Run(1000)
	if err == nil {
		t.Fatal("want livelock error")
	}
	if n != 1000 {
		t.Fatalf("fired %d, want 1000", n)
	}
}

func TestRunDrains(t *testing.T) {
	var q Queue
	count := 0
	for i := 0; i < 50; i++ {
		q.At(simtime.Time(i), func() { count++ })
	}
	n, err := q.Run(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 || count != 50 {
		t.Fatalf("n=%d count=%d, want 50", n, count)
	}
}

// Property: for random schedules (with random cancellations), surviving
// events fire in nondecreasing time order and exactly the survivors fire.
func TestQuickRandomScheduleOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var q Queue
		n := 50 + rng.Intn(100)
		type rec struct {
			at        simtime.Time
			ev        *Event
			cancelled bool
		}
		recs := make([]*rec, n)
		var fired []simtime.Time
		for i := 0; i < n; i++ {
			r := &rec{at: simtime.Time(rng.Intn(1000))}
			r.ev = q.At(r.at, func() { fired = append(fired, r.at) })
			recs[i] = r
		}
		for _, r := range recs {
			if rng.Intn(3) == 0 {
				q.Cancel(r.ev)
				r.cancelled = true
			}
		}
		for q.Step() {
		}
		// Order check.
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		// Exactly the survivors fired, as a multiset.
		var want []simtime.Time
		for _, r := range recs {
			if !r.cancelled {
				want = append(want, r.at)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(want) != len(fired) {
			return false
		}
		for i := range want {
			if want[i] != fired[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: events scheduled at identical times from within a firing event
// still respect global scheduling order.
func TestQuickNestedScheduling(t *testing.T) {
	f := func(k uint8) bool {
		depth := int(k%8) + 1
		var q Queue
		var got []int
		var schedule func(level int)
		schedule = func(level int) {
			if level >= depth {
				return
			}
			q.After(0, func() {
				got = append(got, level)
				schedule(level + 1)
			})
		}
		schedule(0)
		for q.Step() {
		}
		if len(got) != depth {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResetReusesQueue(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		q.At(simtime.Time(i), func() { got = append(got, i) })
	}
	// Leave two events pending, then reset: they must never fire.
	q.Step()
	q.Step()
	pending := q.At(simtime.Time(99), func() { t.Error("reset event fired") })
	q.Reset()
	if q.Len() != 0 || q.Now() != 0 || q.Fired() != 0 {
		t.Fatalf("after Reset: len=%d now=%v fired=%d", q.Len(), q.Now(), q.Fired())
	}
	if !pending.Cancelled() {
		t.Error("pending event not marked cancelled by Reset")
	}
	// The queue is fully reusable, with sequence numbering restarted so
	// tie-breaks replay identically.
	order := []int{}
	q.At(simtime.Time(1), func() { order = append(order, 1) })
	q.At(simtime.Time(1), func() { order = append(order, 2) })
	for q.Step() {
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("post-Reset order = %v", order)
	}
	if len(got) != 2 {
		t.Fatalf("pre-Reset events fired after reset: %v", got)
	}
}

func TestFreeRecyclesEvents(t *testing.T) {
	var q Queue
	fired := 0
	e1 := q.At(simtime.Time(1), func() { fired++ })
	// Freeing a still-queued event is refused.
	q.Free(e1)
	if e1.Cancelled() {
		t.Fatal("Free removed a queued event")
	}
	q.Step()
	q.Free(e1)
	q.Free(e1) // double-free is a no-op
	if len(q.free) != 1 {
		t.Fatalf("free list = %d, want 1", len(q.free))
	}
	e2 := q.At(simtime.Time(2), func() { fired++ })
	if e2 != e1 {
		t.Error("At did not reuse the freed event")
	}
	if len(q.free) != 0 {
		t.Error("free list not drained")
	}
	q.Step()
	if fired != 2 {
		t.Fatalf("fired = %d", fired)
	}
	q.Free(e2)
	// Cancelled events can be freed too; e3 reuses the freed object and
	// returns it on cancellation.
	e3 := q.At(simtime.Time(3), func() {})
	if e3 != e2 {
		t.Error("At did not reuse the re-freed event")
	}
	q.Cancel(e3)
	q.Free(e3)
	if len(q.free) != 1 {
		t.Fatalf("free list = %d, want 1", len(q.free))
	}
	q.Free(nil) // nil-safe
}

func TestFreeDeterminismAcrossReuse(t *testing.T) {
	// A run that recycles events must fire in the same order as one that
	// does not: ordering depends only on (At, seq).
	run := func(recycle bool) []int {
		var q Queue
		var got []int
		var done []*Event
		for i := 0; i < 20; i++ {
			i := i
			at := simtime.Time((i * 7) % 13)
			e := q.At(at, func() { got = append(got, i) })
			if recycle && i%3 == 0 {
				q.Cancel(e)
				q.Free(e)
				done = append(done, e)
				e2 := q.At(at, func() { got = append(got, i) })
				if e2 != e {
					// Reuse expected but not required for correctness.
					_ = done
				}
			}
		}
		for q.Step() {
		}
		return got
	}
	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order diverged at %d: %v vs %v", i, a, b)
		}
	}
}

func TestPeakDepth(t *testing.T) {
	var q Queue
	if q.Peak() != 0 {
		t.Fatalf("fresh queue Peak = %d, want 0", q.Peak())
	}
	noop := func() {}
	for i := 0; i < 5; i++ {
		q.At(simtime.Time(i), noop)
	}
	if q.Peak() != 5 {
		t.Fatalf("Peak after 5 pushes = %d, want 5", q.Peak())
	}
	// Draining does not lower the high-water mark.
	for q.Step() {
	}
	if q.Peak() != 5 {
		t.Fatalf("Peak after drain = %d, want 5", q.Peak())
	}
	// Refilling to a lower depth keeps the old peak; exceeding it raises it.
	q.At(q.Now(), noop)
	if q.Peak() != 5 {
		t.Fatalf("Peak after shallow refill = %d, want 5", q.Peak())
	}
	q.Reset()
	if q.Peak() != 0 {
		t.Fatalf("Peak after Reset = %d, want 0", q.Peak())
	}
	for i := 0; i < 7; i++ {
		q.At(simtime.Time(i), noop)
	}
	if q.Peak() != 7 {
		t.Fatalf("Peak after 7 pushes = %d, want 7", q.Peak())
	}
}
