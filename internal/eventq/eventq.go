// Package eventq implements the deterministic pending-event set at the heart
// of the discrete-event simulator.
//
// Events are ordered primarily by simulated firing time and secondarily by a
// monotonically increasing sequence number assigned at scheduling time, so
// that two events scheduled for the same instant always fire in the order
// they were scheduled. This tie-break makes whole-simulation runs bitwise
// reproducible, which the experiment harness relies on for replication and
// regression testing.
//
// Scheduled events may be cancelled in O(log n); cancellation is the normal
// case in the scheduler (a processor's thread-completion event is cancelled
// whenever the processor is preempted).
//
// The heap is implemented directly (no container/heap indirection) and Run
// drains simultaneous events into a flat batch before dispatching them, so
// the steady-state event loop performs no interface calls and no
// per-event allocation.
package eventq

import (
	"fmt"

	"repro/internal/simtime"
)

// Event index sentinels. A non-negative index is the event's heap slot.
const (
	// idxDone marks an event that has fired or been cancelled.
	idxDone = -1
	// idxBatched marks an event drained into Run's current batch but not
	// yet fired. Cancelling a batched event moves it to idxDone, which the
	// batch loop observes and skips — batching is invisible to callers.
	idxBatched = -2
)

// Event is a pending simulator action.
type Event struct {
	// At is the simulated instant the event fires.
	At simtime.Time
	// Fire is invoked when the event reaches the head of the queue.
	Fire func()

	seq    uint64
	index  int  // heap slot, or idxDone / idxBatched
	pooled bool // true while parked on the owning queue's free list
}

// Cancelled reports whether the event has been removed from its queue
// (either by Cancel or by firing).
func (e *Event) Cancelled() bool { return e.index == idxDone }

// Queue is a time-ordered pending-event set. The zero value is ready to use.
type Queue struct {
	h       []*Event
	nextSeq uint64
	now     simtime.Time
	fired   uint64
	peak    int      // high-water mark of pending-event depth
	free    []*Event // recycled Event objects (see Free)
	batch   []*Event // reused scratch for Run's same-instant drain
}

// Reset returns the queue to its zero state while retaining the heap's and
// free list's allocated capacity, so one Queue can serve many simulation
// runs (e.g. the replications of an experiment cell) without re-growing its
// backing arrays. Any outstanding *Event pointers become invalid.
func (q *Queue) Reset() {
	for i, e := range q.h {
		e.index = idxDone
		q.h[i] = nil
	}
	q.h = q.h[:0]
	q.nextSeq = 0
	q.now = 0
	q.fired = 0
	q.peak = 0
}

// Free returns a fired or cancelled event to the queue's internal pool so
// a subsequent At/After reuses its allocation. Only the owner of the
// *Event may free it, and must drop every reference at the same time:
// after Free the object will be handed out again by a later At. Freeing
// nil, a still-queued event, or an already-freed event is a no-op, so
// callers can free unconditionally at the points where they nil their
// reference.
func (q *Queue) Free(e *Event) {
	if e == nil || e.index != idxDone || e.pooled {
		return
	}
	e.pooled = true
	e.Fire = nil
	q.free = append(q.free, e)
}

// Now returns the current simulated time: the firing time of the most
// recently popped event (or zero before any event has fired).
func (q *Queue) Now() simtime.Time { return q.now }

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// Fired returns the total number of events that have fired.
func (q *Queue) Fired() uint64 { return q.fired }

// Peak returns the high-water mark of pending-event depth since the
// queue was created or last Reset.
func (q *Queue) Peak() int { return q.peak }

// At schedules fire to run at the absolute simulated time at. Scheduling in
// the past (before Now) panics: it always indicates a simulator bug, and
// silently reordering time would corrupt every downstream measurement.
func (q *Queue) At(at simtime.Time, fire func()) *Event {
	if at < q.now {
		panic(fmt.Sprintf("eventq: scheduling at %v, before now %v", at, q.now))
	}
	if fire == nil {
		panic("eventq: nil Fire function")
	}
	var e *Event
	if n := len(q.free); n > 0 {
		e = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		e.pooled = false
		e.At, e.Fire = at, fire
		e.seq = q.nextSeq
	} else {
		e = &Event{At: at, Fire: fire, seq: q.nextSeq}
	}
	q.nextSeq++
	e.index = len(q.h)
	q.h = append(q.h, e)
	q.siftUp(e.index)
	if n := len(q.h); n > q.peak {
		q.peak = n
	}
	return e
}

// After schedules fire to run d after the current simulated time.
func (q *Queue) After(d simtime.Duration, fire func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("eventq: negative delay %v", d))
	}
	return q.At(q.now.Add(d), fire)
}

// Cancel removes e from the queue. Cancelling an event that already fired or
// was already cancelled is a no-op, so callers can cancel unconditionally.
// An event already drained into Run's in-flight batch is marked done and
// will not fire.
func (q *Queue) Cancel(e *Event) {
	if e == nil {
		return
	}
	if e.index == idxBatched {
		e.index = idxDone
		return
	}
	if e.index < 0 {
		return
	}
	q.removeAt(e.index)
	e.index = idxDone
}

// pop removes and returns the earliest pending event, leaving its index at
// idxDone. The caller must know the heap is non-empty.
func (q *Queue) pop() *Event {
	e := q.h[0]
	n := len(q.h) - 1
	q.h[0] = q.h[n]
	q.h[0].index = 0
	q.h[n] = nil
	q.h = q.h[:n]
	if n > 0 {
		q.siftDown(0)
	}
	e.index = idxDone
	return e
}

// removeAt deletes the event in heap slot i.
func (q *Queue) removeAt(i int) {
	n := len(q.h) - 1
	if i != n {
		q.h[i] = q.h[n]
		q.h[i].index = i
		q.h[n] = nil
		q.h = q.h[:n]
		if !q.siftDown(i) {
			q.siftUp(i)
		}
		return
	}
	q.h[n] = nil
	q.h = q.h[:n]
}

// less orders events by (At, seq).
func (q *Queue) less(i, j int) bool {
	a, b := q.h[i], q.h[j]
	if a.At != b.At {
		return a.At < b.At
	}
	return a.seq < b.seq
}

func (q *Queue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		q.h[i].index = i
		q.h[parent].index = parent
		i = parent
	}
}

// siftDown restores the heap below slot i, reporting whether i moved.
func (q *Queue) siftDown(i int) bool {
	start := i
	n := len(q.h)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && q.less(right, left) {
			least = right
		}
		if !q.less(least, i) {
			break
		}
		q.h[i], q.h[least] = q.h[least], q.h[i]
		q.h[i].index = i
		q.h[least].index = least
		i = least
	}
	return i > start
}

// Step pops and fires the earliest pending event, advancing Now to its
// firing time. It reports false when the queue is empty.
func (q *Queue) Step() bool {
	if len(q.h) == 0 {
		return false
	}
	e := q.pop()
	q.now = e.At
	q.fired++
	e.Fire()
	return true
}

// Peek returns the firing time of the earliest pending event, or
// simtime.Never when the queue is empty.
func (q *Queue) Peek() simtime.Time {
	if len(q.h) == 0 {
		return simtime.Never
	}
	return q.h[0].At
}

// RunUntil fires events in order until the queue is empty or the next event
// would fire strictly after limit. It returns the number of events fired.
func (q *Queue) RunUntil(limit simtime.Time) int {
	n := 0
	for len(q.h) > 0 && q.h[0].At <= limit {
		q.Step()
		n++
	}
	return n
}

// Run fires events until the queue is empty, with a hard cap on the number
// of events as a runaway-simulation backstop. It returns the number of
// events fired and an error if the cap was hit.
//
// Run drains every event scheduled for the same instant into a flat batch
// (a reused scratch slice) before dispatching any of them, so bursts of
// simultaneous events — all arrivals at time zero, a barrier releasing a
// wave of threads — are processed without re-entering the heap per event.
// Semantics are identical to calling Step in a loop: batched events fire in
// (At, seq) order, an event scheduled during the batch for the same instant
// fires after the batch (its seq is necessarily higher), and a batched
// event cancelled by an earlier batch member does not fire.
func (q *Queue) Run(maxEvents uint64) (uint64, error) {
	var n uint64
	for len(q.h) > 0 {
		// Drain the run of events sharing the earliest firing time.
		t := q.h[0].At
		q.batch = q.batch[:0]
		for len(q.h) > 0 && q.h[0].At == t {
			e := q.pop()
			e.index = idxBatched
			q.batch = append(q.batch, e)
		}
		q.now = t
		for i, e := range q.batch {
			q.batch[i] = nil
			if e.index != idxBatched {
				continue // cancelled by an earlier batch member
			}
			e.index = idxDone
			q.fired++
			e.Fire()
			n++
			if n >= maxEvents {
				// Anything still batched returns to pending state for the
				// caller's post-mortem; precise restoration is not needed
				// beyond not leaking idxBatched markers.
				for _, rest := range q.batch[i+1:] {
					if rest != nil && rest.index == idxBatched {
						rest.index = idxDone
					}
				}
				return n, fmt.Errorf("eventq: event cap %d reached at t=%v (likely livelock)", maxEvents, q.now)
			}
		}
	}
	return n, nil
}
