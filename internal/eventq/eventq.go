// Package eventq implements the deterministic pending-event set at the heart
// of the discrete-event simulator.
//
// Events are ordered primarily by simulated firing time and secondarily by a
// monotonically increasing sequence number assigned at scheduling time, so
// that two events scheduled for the same instant always fire in the order
// they were scheduled. This tie-break makes whole-simulation runs bitwise
// reproducible, which the experiment harness relies on for replication and
// regression testing.
//
// Scheduled events may be cancelled in O(log n); cancellation is the normal
// case in the scheduler (a processor's thread-completion event is cancelled
// whenever the processor is preempted).
package eventq

import (
	"container/heap"
	"fmt"

	"repro/internal/simtime"
)

// Event is a pending simulator action.
type Event struct {
	// At is the simulated instant the event fires.
	At simtime.Time
	// Fire is invoked when the event reaches the head of the queue.
	Fire func()

	seq    uint64
	index  int  // position in the heap, or -1 if not queued
	pooled bool // true while parked on the owning queue's free list
}

// Cancelled reports whether the event has been removed from its queue
// (either by Cancel or by firing).
func (e *Event) Cancelled() bool { return e.index < 0 }

// Queue is a time-ordered pending-event set. The zero value is ready to use.
type Queue struct {
	h       eventHeap
	nextSeq uint64
	now     simtime.Time
	fired   uint64
	peak    int      // high-water mark of pending-event depth
	free    []*Event // recycled Event objects (see Free)
}

// Reset returns the queue to its zero state while retaining the heap's and
// free list's allocated capacity, so one Queue can serve many simulation
// runs (e.g. the replications of an experiment cell) without re-growing its
// backing arrays. Any outstanding *Event pointers become invalid.
func (q *Queue) Reset() {
	for i, e := range q.h {
		e.index = -1
		q.h[i] = nil
	}
	q.h = q.h[:0]
	q.nextSeq = 0
	q.now = 0
	q.fired = 0
	q.peak = 0
}

// Free returns a fired or cancelled event to the queue's internal pool so
// a subsequent At/After reuses its allocation. Only the owner of the
// *Event may free it, and must drop every reference at the same time:
// after Free the object will be handed out again by a later At. Freeing
// nil, a still-queued event, or an already-freed event is a no-op, so
// callers can free unconditionally at the points where they nil their
// reference.
func (q *Queue) Free(e *Event) {
	if e == nil || e.index >= 0 || e.pooled {
		return
	}
	e.pooled = true
	e.Fire = nil
	q.free = append(q.free, e)
}

// Now returns the current simulated time: the firing time of the most
// recently popped event (or zero before any event has fired).
func (q *Queue) Now() simtime.Time { return q.now }

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// Fired returns the total number of events that have fired.
func (q *Queue) Fired() uint64 { return q.fired }

// Peak returns the high-water mark of pending-event depth since the
// queue was created or last Reset.
func (q *Queue) Peak() int { return q.peak }

// At schedules fire to run at the absolute simulated time at. Scheduling in
// the past (before Now) panics: it always indicates a simulator bug, and
// silently reordering time would corrupt every downstream measurement.
func (q *Queue) At(at simtime.Time, fire func()) *Event {
	if at < q.now {
		panic(fmt.Sprintf("eventq: scheduling at %v, before now %v", at, q.now))
	}
	if fire == nil {
		panic("eventq: nil Fire function")
	}
	var e *Event
	if n := len(q.free); n > 0 {
		e = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		e.pooled = false
		e.At, e.Fire = at, fire
		e.seq = q.nextSeq
	} else {
		e = &Event{At: at, Fire: fire, seq: q.nextSeq}
	}
	q.nextSeq++
	heap.Push(&q.h, e)
	if n := len(q.h); n > q.peak {
		q.peak = n
	}
	return e
}

// After schedules fire to run d after the current simulated time.
func (q *Queue) After(d simtime.Duration, fire func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("eventq: negative delay %v", d))
	}
	return q.At(q.now.Add(d), fire)
}

// Cancel removes e from the queue. Cancelling an event that already fired or
// was already cancelled is a no-op, so callers can cancel unconditionally.
func (q *Queue) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		return
	}
	heap.Remove(&q.h, e.index)
	e.index = -1
}

// Step pops and fires the earliest pending event, advancing Now to its
// firing time. It reports false when the queue is empty.
func (q *Queue) Step() bool {
	if len(q.h) == 0 {
		return false
	}
	e := heap.Pop(&q.h).(*Event)
	q.now = e.At
	q.fired++
	e.Fire()
	return true
}

// Peek returns the firing time of the earliest pending event, or
// simtime.Never when the queue is empty.
func (q *Queue) Peek() simtime.Time {
	if len(q.h) == 0 {
		return simtime.Never
	}
	return q.h[0].At
}

// RunUntil fires events in order until the queue is empty or the next event
// would fire strictly after limit. It returns the number of events fired.
func (q *Queue) RunUntil(limit simtime.Time) int {
	n := 0
	for len(q.h) > 0 && q.h[0].At <= limit {
		q.Step()
		n++
	}
	return n
}

// Run fires events until the queue is empty, with a hard cap on the number
// of events as a runaway-simulation backstop. It returns the number of
// events fired and an error if the cap was hit.
func (q *Queue) Run(maxEvents uint64) (uint64, error) {
	var n uint64
	for q.Step() {
		n++
		if n >= maxEvents {
			return n, fmt.Errorf("eventq: event cap %d reached at t=%v (likely livelock)", maxEvents, q.now)
		}
	}
	return n, nil
}

// eventHeap implements heap.Interface ordered by (At, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
