// Package memtrace generates the synthetic memory reference streams that
// stand in for the paper's three applications (MVA, MATRIX, GRAVITY) when
// driving the exact cache simulator.
//
// # Model
//
// A Pattern is a mixture of cyclic sweep components. Component i is a region
// of Lines_i cache lines that the program re-walks completely once every
// Period_i of execution time; on each reference the generator picks a
// component with probability proportional to Lines_i*Gap/Period_i and
// advances that component's walk by one line. References not assigned to
// any component re-touch the most recently touched line, representing the
// very-short-distance locality (registers, current line) that never causes
// cache traffic.
//
// This two-parameter-per-component model captures the property the paper's
// Section 4 measurements hinge on: a program's "live" cache footprint
// (lines that will be re-referenced while still cacheable) is re-touched at
// a characteristic rate, so the cache penalty of losing the footprint is a
// saturating function of the scheduling quantum Q — small quanta re-touch
// only part of the footprint before the next disruption, large quanta
// re-touch all of it. The default patterns below are calibrated so that the
// Table-1 harness reproduces the paper's shape (see EXPERIMENTS.md).
//
// # Application patterns
//
//   - MATRIX: blocked matrix multiply. Reuse at two scales — the current
//     block pair (fast) and the full block working set sized to the cache
//     (slow) — plus a small hot set of loop state.
//   - MVA: wavefront dynamic programming. Fast reuse of the current and
//     previous diagonal, slow reuse of the whole table.
//   - GRAVITY: Barnes-Hut. One large, slowly and irregularly re-walked
//     region (tree + bodies), walked in pseudo-random permutation order,
//     plus hot loop state.
package memtrace

import (
	"fmt"

	"repro/internal/simtime"
	"repro/internal/xrand"
)

// Component is one cyclic reuse scale of a pattern.
type Component struct {
	// Lines is the region size in cache lines.
	Lines int
	// Period is the execution time over which the region is walked once.
	Period simtime.Duration
	// Permuted selects pseudo-random walk order instead of sequential.
	Permuted bool
}

// Pattern describes an application's reference behaviour.
type Pattern struct {
	// Name identifies the application.
	Name string
	// Gap is the execution (think) time between successive line references.
	Gap simtime.Duration
	// Components are the reuse scales; their selection weights
	// Lines*Gap/Period must sum to at most 1.
	Components []Component
	// PhaseEvery, when non-zero, relocates every region to fresh addresses
	// each time this much execution time passes, modelling computation
	// phases that abandon old data (new block pairs, new time steps).
	PhaseEvery simtime.Duration
}

// LineBytes is the address granularity of generated references. It matches
// the Symmetry's 16-byte cache line; generators emit one address per line
// touch, so line size only scales addresses.
const LineBytes = 16

// Validate checks the pattern's internal consistency.
func (p Pattern) Validate() error {
	if p.Gap <= 0 {
		return fmt.Errorf("memtrace: %s: Gap must be positive", p.Name)
	}
	if len(p.Components) == 0 {
		return fmt.Errorf("memtrace: %s: no components", p.Name)
	}
	total := 0.0
	for i, c := range p.Components {
		if c.Lines <= 0 || c.Period <= 0 {
			return fmt.Errorf("memtrace: %s: component %d has non-positive Lines/Period", p.Name, i)
		}
		total += c.weight(p.Gap)
	}
	if total > 1+1e-9 {
		return fmt.Errorf("memtrace: %s: component weights sum to %.3f > 1", p.Name, total)
	}
	return nil
}

func (c Component) weight(gap simtime.Duration) float64 {
	return float64(c.Lines) * float64(gap) / float64(c.Period)
}

// LiveFootprint returns the total region size in lines: the asymptotic
// number of distinct lines with cacheable reuse. This parameterizes the
// analytic footprint model in internal/footprint.
func (p Pattern) LiveFootprint() int {
	total := 0
	for _, c := range p.Components {
		total += c.Lines
	}
	return total
}

// TouchRate returns the expected number of distinct region lines touched
// during an execution interval of length d, assuming each component's walk
// covers its region uniformly: sum_i Lines_i * min(d/Period_i, 1).
func (p Pattern) TouchRate(d simtime.Duration) float64 {
	total := 0.0
	for _, c := range p.Components {
		frac := float64(d) / float64(c.Period)
		if frac > 1 {
			frac = 1
		}
		total += float64(c.Lines) * frac
	}
	return total
}

// Generator produces the reference stream of one running task.
type Generator struct {
	pat     Pattern
	rng     *xrand.Source
	base    uint64
	cum     []float64 // cumulative component selection weights
	pos     []int     // walk position per component
	perm    [][]int32 // permutation per permuted component
	offsets []uint64  // region base offsets (lines)
	phase   uint64    // phase counter, relocates regions
	elapsed simtime.Duration
	last    uint64 // most recently emitted address
	emitted uint64
}

// NewGenerator builds a generator for pattern p. base is the task's address
// space origin (distinct tasks must use disjoint bases); seed fixes the
// random walk. NewGenerator panics if the pattern is invalid, since all
// patterns are program constants.
func NewGenerator(p Pattern, base uint64, seed uint64) *Generator {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	g := &Generator{
		pat:  p,
		rng:  xrand.New(seed, 0x7a5e),
		base: base,
		pos:  make([]int, len(p.Components)),
		perm: make([][]int32, len(p.Components)),
		last: base,
	}
	cum := 0.0
	for _, c := range p.Components {
		cum += c.weight(p.Gap)
		g.cum = append(g.cum, cum)
	}
	g.layoutRegions()
	return g
}

// layoutRegions assigns each component a contiguous region of lines,
// shifted by the current phase so that phase changes reference fresh
// addresses.
func (g *Generator) layoutRegions() {
	g.offsets = g.offsets[:0]
	off := g.phase * uint64(g.pat.LiveFootprint()+1024)
	for i, c := range g.pat.Components {
		g.offsets = append(g.offsets, off)
		off += uint64(c.Lines)
		if c.Permuted {
			p := g.rng.Perm(c.Lines)
			g.perm[i] = make([]int32, c.Lines)
			for j, v := range p {
				g.perm[i][j] = int32(v)
			}
		}
		g.pos[i] = 0
	}
}

// Next returns the next referenced byte address and the execution time that
// precedes the reference. It is the single-reference form of FillBlock; the
// think time is always the pattern's Gap.
func (g *Generator) Next() (addr uint64, think simtime.Duration) {
	var one [1]uint64
	g.FillBlock(one[:])
	return one[0], g.pat.Gap
}

// Gap returns the execution (think) time between successive references —
// constant for a generator, so callers can convert an execution interval
// into an exact reference count: an interval w consumes RefsFor(w)
// references.
func (g *Generator) Gap() simtime.Duration { return g.pat.Gap }

// RefsFor returns the number of references Next (or FillBlock) produces
// while executing for w: each reference is preceded by Gap of think time,
// so the count is ceil(w/Gap). Zero for non-positive w.
func (g *Generator) RefsFor(w simtime.Duration) int {
	if w <= 0 {
		return 0
	}
	gap := g.pat.Gap
	return int((w + gap - 1) / gap)
}

// FillBlock generates the next len(dst) referenced byte addresses into dst,
// exactly equivalent to len(dst) successive Next calls. Batching keeps the
// generator state (rng, walk positions, elapsed clock) in registers across
// the block, which is what makes exact replay cheap: the per-reference cost
// is one rng draw, one component select, and one position bump, with no
// per-call bookkeeping.
func (g *Generator) FillBlock(dst []uint64) {
	gap := g.pat.Gap
	rng := g.rng
	cum := g.cum
	elapsed := g.elapsed
	last := g.last
	// Next phase boundary; Never when the pattern has no phases.
	nextPhase := simtime.Duration(simtime.Never)
	if g.pat.PhaseEvery > 0 {
		nextPhase = simtime.Duration(g.phase+1) * g.pat.PhaseEvery
	}
	for i := range dst {
		elapsed += gap
		if elapsed >= nextPhase {
			g.phase++
			g.layoutRegions()
			nextPhase = simtime.Duration(g.phase+1) * g.pat.PhaseEvery
		}
		u := rng.Float64()
		for k := 0; k < len(cum); k++ {
			if u < cum[k] {
				c := &g.pat.Components[k]
				idx := g.pos[k]
				next := idx + 1
				if next == c.Lines {
					next = 0
				}
				g.pos[k] = next
				line := idx
				if c.Permuted {
					line = int(g.perm[k][idx])
				}
				last = g.base + (g.offsets[k]+uint64(line))*LineBytes
				break
			}
			// Residual probability: very local reuse; re-touch the last
			// line (last unchanged).
		}
		dst[i] = last
	}
	g.elapsed = elapsed
	g.last = last
	g.emitted += uint64(len(dst))
}

// Mark is a saved generator position for Save/Restore. The zero value is
// ready to use; a Mark's buffers are reused across Saves, so a long-lived
// Mark makes the save/restore cycle allocation-free.
type Mark struct {
	rng     xrand.Source
	pos     []int
	offsets []uint64
	perm    [][]int32
	phase   uint64
	elapsed simtime.Duration
	last    uint64
	emitted uint64
	valid   bool
}

// Save records the generator's exact position in m. A later Restore(m)
// rewinds the generator to this position, after which it reproduces the
// same reference stream it produced the first time. This is what lets the
// exact cache model roll back a speculatively replayed segment (see
// internal/cachemodel) and the measurement harness un-consume block
// overshoot (see internal/measure).
func (g *Generator) Save(m *Mark) {
	m.rng = *g.rng
	m.pos = append(m.pos[:0], g.pos...)
	m.offsets = append(m.offsets[:0], g.offsets...)
	// perm's inner slices are replaced wholesale on phase changes and never
	// mutated in place, so copying the headers pins the walk orders.
	m.perm = append(m.perm[:0], g.perm...)
	m.phase = g.phase
	m.elapsed = g.elapsed
	m.last = g.last
	m.emitted = g.emitted
	m.valid = true
}

// Restore rewinds the generator to the position recorded by Save. It panics
// on a Mark that was never saved, or saved from a generator with a
// different component count.
func (g *Generator) Restore(m *Mark) {
	if !m.valid || len(m.pos) != len(g.pat.Components) {
		panic("memtrace: Restore from a foreign or unsaved Mark")
	}
	*g.rng = m.rng
	g.pos = append(g.pos[:0], m.pos...)
	g.offsets = append(g.offsets[:0], m.offsets...)
	g.perm = append(g.perm[:0], m.perm...)
	g.phase = m.phase
	g.elapsed = m.elapsed
	g.last = m.last
	g.emitted = m.emitted
}

// Emitted returns the number of references generated so far.
func (g *Generator) Emitted() uint64 { return g.emitted }

// Elapsed returns the total execution (think) time generated so far.
func (g *Generator) Elapsed() simtime.Duration { return g.elapsed }

// Default per-reference execution gap: 5 µs of compute per line-granularity
// touch (≈200 line touches per millisecond on the 16 MHz Symmetry CPU).
const defaultGap = 5 * simtime.Microsecond

// MatrixPattern returns the calibrated MATRIX (blocked matrix multiply)
// reference pattern.
func MatrixPattern() Pattern {
	return Pattern{
		Name: "MATRIX",
		Gap:  defaultGap,
		Components: []Component{
			{Lines: 64, Period: 1 * simtime.Millisecond},     // loop state, indices
			{Lines: 1150, Period: 25 * simtime.Millisecond},  // current block pair
			{Lines: 1150, Period: 350 * simtime.Millisecond}, // full cache-sized block set
		},
	}
}

// MVAPattern returns the calibrated MVA (wavefront dynamic programming)
// reference pattern.
func MVAPattern() Pattern {
	return Pattern{
		Name: "MVA",
		Gap:  defaultGap,
		Components: []Component{
			{Lines: 64, Period: 1 * simtime.Millisecond},     // loop state
			{Lines: 1100, Period: 20 * simtime.Millisecond},  // current + previous diagonal
			{Lines: 2100, Period: 420 * simtime.Millisecond}, // whole table
		},
	}
}

// GravityPattern returns the calibrated GRAVITY (Barnes-Hut) reference
// pattern.
func GravityPattern() Pattern {
	return Pattern{
		Name: "GRAVITY",
		Gap:  defaultGap,
		Components: []Component{
			{Lines: 64, Period: 1 * simtime.Millisecond},                     // loop state
			{Lines: 3500, Period: 130 * simtime.Millisecond, Permuted: true}, // tree + bodies
		},
		PhaseEvery: 900 * simtime.Millisecond, // new simulation time step
	}
}

// PatternByName returns the calibrated pattern for an application name
// (MATRIX, MVA, or GRAVITY).
func PatternByName(name string) (Pattern, error) {
	switch name {
	case "MATRIX", "MAT":
		return MatrixPattern(), nil
	case "MVA":
		return MVAPattern(), nil
	case "GRAVITY", "GRAV":
		return GravityPattern(), nil
	}
	return Pattern{}, fmt.Errorf("memtrace: unknown application %q", name)
}

// Patterns returns the three calibrated application patterns in the order
// the paper lists them (MVA, MATRIX, GRAVITY).
func Patterns() []Pattern {
	return []Pattern{MVAPattern(), MatrixPattern(), GravityPattern()}
}

// Clone returns an independent copy of the generator: the copy and the
// original produce identical subsequent streams but advance separately.
// Cloning is what lets the exact cache model "plan" a segment's misses on
// scratch state before committing it (see internal/cachemodel).
func (g *Generator) Clone() *Generator {
	out := *g
	out.rng = g.rng.Clone()
	out.cum = append([]float64(nil), g.cum...)
	out.pos = append([]int(nil), g.pos...)
	out.offsets = append([]uint64(nil), g.offsets...)
	// perm slices are replaced wholesale on phase changes and never
	// mutated in place, so sharing the backing arrays is safe; the slice
	// headers still need copying.
	out.perm = append([][]int32(nil), g.perm...)
	return &out
}
