package memtrace

import (
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/simtime"
)

func TestDefaultPatternsValid(t *testing.T) {
	for _, p := range Patterns() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestValidateRejectsBadPatterns(t *testing.T) {
	bad := []Pattern{
		{Name: "noGap", Components: []Component{{Lines: 1, Period: 1}}},
		{Name: "noComp", Gap: 1},
		{Name: "zeroLines", Gap: 1, Components: []Component{{Lines: 0, Period: 1}}},
		{Name: "zeroPeriod", Gap: 1, Components: []Component{{Lines: 1, Period: 0}}},
		{Name: "overweight", Gap: simtime.Millisecond,
			Components: []Component{{Lines: 100, Period: simtime.Millisecond}}},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: bad pattern accepted", p.Name)
		}
	}
}

func TestNewGeneratorPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for invalid pattern")
		}
	}()
	NewGenerator(Pattern{Name: "bad"}, 0, 1)
}

func TestPatternByName(t *testing.T) {
	for _, name := range []string{"MVA", "MATRIX", "MAT", "GRAVITY", "GRAV"} {
		if _, err := PatternByName(name); err != nil {
			t.Errorf("PatternByName(%q): %v", name, err)
		}
	}
	if _, err := PatternByName("NOPE"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestLiveFootprint(t *testing.T) {
	p := MatrixPattern()
	if got := p.LiveFootprint(); got != 64+1150+1150 {
		t.Errorf("LiveFootprint = %d", got)
	}
}

func TestTouchRateSaturates(t *testing.T) {
	p := MVAPattern()
	small := p.TouchRate(1 * simtime.Millisecond)
	big := p.TouchRate(10 * simtime.Second)
	if small >= big {
		t.Errorf("TouchRate not increasing: %v vs %v", small, big)
	}
	if big != float64(p.LiveFootprint()) {
		t.Errorf("TouchRate asymptote = %v, want %d", big, p.LiveFootprint())
	}
}

func TestDeterminism(t *testing.T) {
	a := NewGenerator(GravityPattern(), 0, 42)
	b := NewGenerator(GravityPattern(), 0, 42)
	for i := 0; i < 10000; i++ {
		aa, at := a.Next()
		ba, bt := b.Next()
		if aa != ba || at != bt {
			t.Fatalf("generators with identical seeds diverged at ref %d", i)
		}
	}
}

func TestSeedsProduceDifferentWalks(t *testing.T) {
	a := NewGenerator(GravityPattern(), 0, 1)
	b := NewGenerator(GravityPattern(), 0, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		aa, _ := a.Next()
		ba, _ := b.Next()
		if aa == ba {
			same++
		}
	}
	if same > 900 {
		t.Errorf("different seeds produced %d/1000 identical refs", same)
	}
}

func TestAddressesStayInRegion(t *testing.T) {
	for _, p := range Patterns() {
		base := uint64(1 << 30)
		g := NewGenerator(p, base, 7)
		// One phase relocation spans LiveFootprint+1024 lines.
		span := uint64(p.LiveFootprint()+1024) * LineBytes
		maxPhases := uint64(1)
		if p.PhaseEvery > 0 {
			maxPhases += uint64(simtime.Seconds(2) / p.PhaseEvery)
		}
		for g.Elapsed() < simtime.Seconds(2) {
			addr, _ := g.Next()
			if addr < base || addr >= base+(maxPhases+1)*span {
				t.Fatalf("%s: address %#x outside expected region", p.Name, addr)
			}
		}
	}
}

func TestThinkTimeAccumulates(t *testing.T) {
	g := NewGenerator(MatrixPattern(), 0, 1)
	var sum simtime.Duration
	for i := 0; i < 1000; i++ {
		_, think := g.Next()
		if think <= 0 {
			t.Fatal("non-positive think time")
		}
		sum += think
	}
	if g.Elapsed() != sum {
		t.Errorf("Elapsed = %v, sum of thinks = %v", g.Elapsed(), sum)
	}
	if g.Emitted() != 1000 {
		t.Errorf("Emitted = %d", g.Emitted())
	}
}

// The pivotal calibration property: running a pattern against the exact
// cache simulator, the number of distinct lines touched in an interval d
// should approximate TouchRate(d).
func TestCoverageMatchesTouchRate(t *testing.T) {
	for _, p := range Patterns() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			g := NewGenerator(p, 0, 3)
			for _, d := range []simtime.Duration{25 * simtime.Millisecond, 100 * simtime.Millisecond} {
				distinct := make(map[uint64]bool)
				start := g.Elapsed()
				for g.Elapsed()-start < d {
					addr, _ := g.Next()
					distinct[addr/LineBytes] = true
				}
				want := p.TouchRate(d) + 1 // +1 for the hot "last line"
				got := float64(len(distinct))
				if got < want*0.85 || got > want*1.15 {
					t.Errorf("%s d=%v: distinct lines = %v, predicted %v", p.Name, d, got, want)
				}
			}
		})
	}
}

// After warming, the steady-state miss ratio on a Symmetry-sized cache must
// be small: these programs are cache-friendly by construction (MATRIX is
// explicitly blocked to fit the cache).
func TestSteadyStateMissRatioIsLow(t *testing.T) {
	for _, p := range Patterns() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			c := cache.MustNew(cache.SymmetryConfig())
			g := NewGenerator(p, 0, 9)
			// Warm for 1 simulated second.
			for g.Elapsed() < simtime.Second {
				addr, _ := g.Next()
				c.Access(1, addr)
			}
			before := c.Stats()
			for g.Elapsed() < 2*simtime.Second {
				addr, _ := g.Next()
				c.Access(1, addr)
			}
			after := c.Stats()
			misses := after.Misses - before.Misses
			accesses := after.Accesses - before.Accesses
			ratio := float64(misses) / float64(accesses)
			if ratio > 0.10 {
				t.Errorf("%s steady-state miss ratio %.3f too high", p.Name, ratio)
			}
		})
	}
}

// Property: generators never emit a zero think time and never regress
// elapsed time, for arbitrary seeds.
func TestQuickMonotoneElapsed(t *testing.T) {
	f := func(seed uint64) bool {
		g := NewGenerator(MVAPattern(), 0, seed)
		prev := simtime.Duration(0)
		for i := 0; i < 500; i++ {
			g.Next()
			if g.Elapsed() <= prev {
				return false
			}
			prev = g.Elapsed()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGeneratorNext(b *testing.B) {
	g := NewGenerator(GravityPattern(), 0, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

func TestClone(t *testing.T) {
	g := NewGenerator(GravityPattern(), 0, 5)
	for i := 0; i < 5000; i++ {
		g.Next()
	}
	c := g.Clone()
	// Identical continuations.
	for i := 0; i < 5000; i++ {
		a1, t1 := g.Next()
		a2, t2 := c.Next()
		if a1 != a2 || t1 != t2 {
			t.Fatalf("clone diverged at ref %d", i)
		}
	}
	// Independence: advancing the clone leaves the original untouched.
	base := g.Clone()
	probe := g.Clone()
	for i := 0; i < 1000; i++ {
		probe.Next()
	}
	a1, _ := base.Next()
	a2, _ := g.Next()
	if a1 != a2 {
		t.Fatal("advancing a clone perturbed its sibling")
	}
}

func TestCloneAcrossPhaseChange(t *testing.T) {
	// GRAVITY relocates regions every PhaseEvery; clones taken just before
	// a phase boundary must still agree after crossing it.
	p := GravityPattern()
	g := NewGenerator(p, 0, 6)
	for g.Elapsed() < p.PhaseEvery-simtime.Millisecond {
		g.Next()
	}
	c := g.Clone()
	for i := 0; i < 100000; i++ {
		a1, _ := g.Next()
		a2, _ := c.Next()
		if a1 != a2 {
			t.Fatalf("clone diverged at ref %d after phase change", i)
		}
	}
}
