package diskstore

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// One frame is the durable form of one store entry, appended to a segment
// file. Layout (all integers little-endian):
//
//	offset  size  field
//	0       4     magic "AFS1"
//	4       2     key length
//	6       2     engine-version length
//	8       4     body length
//	12      8     exec cost (nanoseconds of engine time that produced body)
//	20      k     key bytes (the content address, as the caller spells it)
//	20+k    e     engine-version bytes
//	20+k+e  b     body bytes
//	…       4     CRC32-C over everything above (magic through body)
//
// The trailing checksum makes torn writes and bit rot detectable: a frame
// whose CRC does not verify is dead data, never servable bytes. The
// header's length fields are bounded (maxKeyLen/maxEngineLen/maxBodyLen),
// so a corrupted header is recognizably implausible rather than an excuse
// to allocate gigabytes.

const (
	frameMagic   = 0x31534641 // "AFS1" read little-endian
	headerLen    = 20
	crcLen       = 4
	maxKeyLen    = 1 << 12
	maxEngineLen = 1 << 8
	maxBodyLen   = 1 << 30
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Decode errors, ordered by how much of the segment they condemn:
// errChecksum dooms one frame (the framing itself was plausible, so the
// scan can step over it); errCorrupt means the framing cannot be trusted
// from here on; errTorn means the segment simply ends mid-frame.
var (
	errTorn     = errors.New("diskstore: torn frame (segment ends mid-frame)")
	errCorrupt  = errors.New("diskstore: corrupt frame header")
	errChecksum = errors.New("diskstore: frame checksum mismatch")
)

// frame is the decoded form of one entry.
type frame struct {
	key    string
	engine string
	execNs uint64
	body   []byte
}

// frameSize returns the encoded size of a frame with the given payload
// lengths.
func frameSize(keyLen, engineLen, bodyLen int) int64 {
	return int64(headerLen + keyLen + engineLen + bodyLen + crcLen)
}

// appendFrame appends f's encoding to buf and returns the extended slice.
func appendFrame(buf []byte, f *frame) []byte {
	start := len(buf)
	var h [headerLen]byte
	binary.LittleEndian.PutUint32(h[0:], frameMagic)
	binary.LittleEndian.PutUint16(h[4:], uint16(len(f.key)))
	binary.LittleEndian.PutUint16(h[6:], uint16(len(f.engine)))
	binary.LittleEndian.PutUint32(h[8:], uint32(len(f.body)))
	binary.LittleEndian.PutUint64(h[12:], f.execNs)
	buf = append(buf, h[:]...)
	buf = append(buf, f.key...)
	buf = append(buf, f.engine...)
	buf = append(buf, f.body...)
	crc := crc32.Checksum(buf[start:], castagnoli)
	var c [crcLen]byte
	binary.LittleEndian.PutUint32(c[:], crc)
	return append(buf, c[:]...)
}

// decodeFrame parses the frame starting at data[0]. On success it returns
// the frame and its encoded length. On errChecksum n is still the frame's
// full length, so a scan can skip the dead frame and keep going; on
// errTorn or errCorrupt the rest of data is unusable.
//
// The returned body aliases data; key and engine are copied (they outlive
// the scan buffer as index state).
func decodeFrame(data []byte) (f frame, n int, err error) {
	if len(data) < headerLen {
		return frame{}, 0, errTorn
	}
	if binary.LittleEndian.Uint32(data[0:]) != frameMagic {
		return frame{}, 0, errCorrupt
	}
	keyLen := int(binary.LittleEndian.Uint16(data[4:]))
	engineLen := int(binary.LittleEndian.Uint16(data[6:]))
	bodyLen := int(binary.LittleEndian.Uint32(data[8:]))
	if keyLen == 0 || keyLen > maxKeyLen || engineLen > maxEngineLen || bodyLen > maxBodyLen {
		return frame{}, 0, errCorrupt
	}
	total := int(frameSize(keyLen, engineLen, bodyLen))
	if len(data) < total {
		return frame{}, 0, errTorn
	}
	want := binary.LittleEndian.Uint32(data[total-crcLen:])
	if crc32.Checksum(data[:total-crcLen], castagnoli) != want {
		return frame{}, total, errChecksum
	}
	off := headerLen
	f.key = string(data[off : off+keyLen])
	off += keyLen
	f.engine = string(data[off : off+engineLen])
	off += engineLen
	f.body = data[off : off+bodyLen : off+bodyLen]
	f.execNs = binary.LittleEndian.Uint64(data[12:])
	return f, total, nil
}
