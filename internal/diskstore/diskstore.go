// Package diskstore is the persistent tier beneath the in-memory result
// caches: a disk-backed, content-addressed store that survives restarts,
// so a redeployed or crashed daemon warms up from bytes it already paid
// engine time for instead of re-simulating the world.
//
// Shape of the design:
//
//   - Entries are immutable (key, engine-version, cost, body) records,
//     one checksummed frame each (see frame.go), appended to segment
//     files ("seg-00000012.seg"). Segments are append-only while active
//     and sealed at a size threshold; nothing is ever updated in place,
//     so a crash can only tear the tail of the newest segment.
//   - Put is write-behind: the serving path enqueues onto a bounded
//     channel and returns; a single background flusher appends frames in
//     batches. When the queue is full the Put is dropped and counted —
//     the disk tier degrades to a smaller cache, never to backpressure
//     on the serving path.
//   - Get is read-through material for the tier above: a hit re-verifies
//     the frame's CRC before returning bytes, so disk corruption degrades
//     to a miss (and the entry is dropped), never to wrong bytes.
//   - Open scans every segment, recovering all valid frames and skipping
//     or truncating torn and corrupt ones; a damaged store always boots.
//   - Eviction is cost-aware, not LRU: when the disk budget is exceeded,
//     entries with the lowest exec-nanoseconds-per-byte go first, so a
//     cell that cost two seconds of engine time outlives an equal-sized
//     cheap one. Evicting marks frames dead; fully-dead segments are
//     deleted and mostly-dead ones compacted (live frames re-appended)
//     to actually return the bytes.
//
// Because keys are content addresses (internal/resultcache.Key folds the
// campaign kind, canonical params, and engine version into a SHA-256),
// a disk hit is indistinguishable from a fresh run, and duplicate frames
// for one key are byte-identical by construction.
package diskstore

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Options parameterizes a Store. Zero values select the defaults noted
// on each field.
type Options struct {
	// Budget bounds total on-disk bytes across all segments (<= 0: no
	// bound). Exceeding it triggers a cost-aware eviction pass on the
	// flusher goroutine.
	Budget int64
	// SegmentBytes is the active-segment size at which it is sealed and
	// a new one started (default 64 MiB).
	SegmentBytes int64
	// QueueDepth bounds the write-behind queue (default 256 Puts).
	QueueDepth int
	// SyncEach fsyncs the active segment after every flushed batch.
	// Default off: the contract is then flush-to-filesystem on every
	// batch and fsync at Sync/Close (graceful drain), which loses at
	// most the unflushed queue on a machine crash and nothing on a
	// process crash.
	SyncEach bool
	// EngineVersion is recorded in every frame written by this store
	// (forensic metadata; the key already folds it into the address).
	EngineVersion string
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	return o
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	Hits           uint64 // Gets served from a verified frame
	Misses         uint64 // Gets that found no (valid) entry
	Puts           uint64 // Puts accepted onto the write-behind queue
	Dropped        uint64 // Puts dropped because the queue was full
	FlushedFrames  uint64 // frames durably appended by the flusher
	Evictions      uint64 // entries evicted by the byte budget
	CorruptFrames  uint64 // frames rejected by CRC/header checks (scan or Get)
	DupFrames      uint64 // duplicate-key frames skipped (scan or flush)
	TruncatedBytes uint64 // bytes cut from segment tails by the scan
	Entries        int    // live entries in the index
	Segments       int    // segment files on disk
	DiskBytes      int64  // total segment bytes on disk (live + dead)
	LiveBytes      int64  // bytes of frames still reachable via the index
	CostNs         uint64 // total exec-nanos of live entries
	Budget         int64  // configured disk budget
	QueueDepth     int    // write-behind queue occupancy right now
}

// segment is one on-disk file of frames.
type segment struct {
	id        uint64
	path      string
	f         *os.File
	size      int64 // bytes on disk
	live      int64 // bytes of index-reachable frames
	liveCount int
}

// entryRef locates one live entry inside a segment.
type entryRef struct {
	seg     *segment
	off     int64 // frame start
	n       int64 // full frame length
	bodyOff int64 // body start (absolute file offset)
	bodyLen int
	execNs  uint64
}

// putReq is one write-behind queue item. A nil-key request with a non-nil
// ack is a sync barrier: the flusher writes everything queued before it,
// fsyncs the active segment, and closes ack.
type putReq struct {
	key    string
	body   []byte
	execNs uint64
	ack    chan struct{}
}

// Store is a disk-backed content-addressed cache. All methods are safe
// for concurrent use.
type Store struct {
	dir string
	opt Options

	queue chan putReq
	done  chan struct{}
	wg    sync.WaitGroup

	// closeMu orders Put/Sync enqueues against Close: writers hold the
	// read side across the closed-check and the channel send, Close holds
	// the write side while flipping closed. Without it a Put could pass
	// the check, lose the CPU while Close signals the flusher, and land
	// its request in the queue after the final drain — an accepted
	// (true-returning) Put that never reaches disk.
	closeMu sync.RWMutex
	closed  atomic.Bool

	mu        sync.Mutex
	index     map[string]entryRef
	segs      []*segment // ascending id; last may be the active one
	active    *segment
	nextID    uint64
	diskBytes int64
	liveBytes int64
	liveCost  uint64

	hits, misses, puts, dropped   atomic.Uint64
	flushed, evictions            atomic.Uint64
	corrupt, dups, truncatedBytes atomic.Uint64

	// flusher-owned scratch: the frame encode buffer and the batch slice,
	// reused across batches so steady-state flushing does not allocate.
	scratch []byte
	batch   []putReq
}

// Open loads (or creates) the store rooted at dir. Every segment is
// scanned: valid frames are indexed, corrupt frames skipped, and torn or
// unframeable tails truncated — recovery never fails the boot. Only real
// I/O errors (unreadable directory, untruncatable file) are returned.
func Open(dir string, opt Options) (*Store, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	s := &Store{
		dir:   dir,
		opt:   opt,
		queue: make(chan putReq, opt.QueueDepth),
		done:  make(chan struct{}),
		index: make(map[string]entryRef),
		batch: make([]putReq, 0, 64),
	}
	if err := s.scanDir(); err != nil {
		s.closeFilesLocked()
		return nil, err
	}
	if err := s.rotateLocked(); err != nil {
		s.closeFilesLocked()
		return nil, err
	}
	s.wg.Add(1)
	go s.flusher()
	return s, nil
}

// scanDir loads every existing segment in id order. Called from Open only
// (no lock needed yet, but the *Locked helpers it shares with the flusher
// expect s.mu conventions, so it is documented as holding the lock).
func (s *Store) scanDir() error {
	names, err := filepath.Glob(filepath.Join(s.dir, "seg-*.seg"))
	if err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	type cand struct {
		id   uint64
		path string
	}
	var cands []cand
	for _, path := range names {
		base := filepath.Base(path)
		var id uint64
		if _, err := fmt.Sscanf(strings.TrimSuffix(base, ".seg"), "seg-%d", &id); err != nil {
			continue // not ours; leave it alone
		}
		cands = append(cands, cand{id, path})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].id < cands[j].id })
	for _, c := range cands {
		if err := s.scanSegment(c.id, c.path); err != nil {
			return err
		}
		if c.id >= s.nextID {
			s.nextID = c.id + 1
		}
	}
	return nil
}

// scanSegment recovers one segment file: every valid frame is indexed
// (first occurrence of a key wins — duplicates are byte-identical by
// content addressing), checksum-failed frames are skipped as dead bytes,
// and the file is truncated at the first torn or unframeable offset.
// Empty-after-truncation segments are deleted.
func (s *Store) scanSegment(id uint64, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	seg := &segment{id: id, path: path}
	type pending struct {
		ref entryRef
		key string
	}
	off := 0
scan:
	for off < len(data) {
		f, n, err := decodeFrame(data[off:])
		switch err {
		case nil:
			ref := entryRef{
				seg:     seg,
				off:     int64(off),
				n:       int64(n),
				bodyOff: int64(off + headerLen + len(f.key) + len(f.engine)),
				bodyLen: len(f.body),
				execNs:  f.execNs,
			}
			if _, dup := s.index[f.key]; dup {
				s.dups.Add(1) // dead bytes: earlier copy already indexed
			} else {
				s.index[f.key] = ref
				seg.live += int64(n)
				seg.liveCount++
				s.liveBytes += int64(n)
				s.liveCost += f.execNs
			}
			off += n
		case errChecksum:
			// Framing plausible, payload rotten: step over the dead frame
			// and keep recovering what follows.
			s.corrupt.Add(1)
			off += n
		default: // errTorn, errCorrupt
			if err == errCorrupt {
				s.corrupt.Add(1)
			}
			s.truncatedBytes.Add(uint64(len(data) - off))
			if terr := os.Truncate(path, int64(off)); terr != nil {
				return fmt.Errorf("diskstore: truncating %s: %w", path, terr)
			}
			data = data[:off]
			break scan
		}
	}
	seg.size = int64(len(data))
	if seg.size == 0 {
		os.Remove(path)
		return nil
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	seg.f = f
	s.segs = append(s.segs, seg)
	s.diskBytes += seg.size
	return nil
}

// Get returns the body and exec cost stored under key. The frame is
// CRC-verified on every read: a failed check drops the entry and reports
// a miss, so corruption never becomes served bytes. The returned slice is
// freshly read from disk and owned by the caller's tier (treat as
// immutable once promoted).
func (s *Store) Get(key string) (body []byte, execNs uint64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ref, found := s.index[key]
	if !found || s.closed.Load() {
		s.misses.Add(1)
		return nil, 0, false
	}
	buf := make([]byte, ref.n)
	if _, err := ref.seg.f.ReadAt(buf, ref.off); err != nil {
		s.corrupt.Add(1)
		s.dropEntryLocked(key, ref)
		s.misses.Add(1)
		return nil, 0, false
	}
	f, _, err := decodeFrame(buf)
	if err != nil || f.key != key {
		s.corrupt.Add(1)
		s.dropEntryLocked(key, ref)
		s.misses.Add(1)
		return nil, 0, false
	}
	s.hits.Add(1)
	return f.body, ref.execNs, true
}

// Contains reports whether key is currently indexed, without touching the
// disk or the hit/miss counters.
func (s *Store) Contains(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[key]
	return ok
}

// Put enqueues (key, body, execNs) for write-behind persistence and
// reports whether it was accepted. It never blocks: a full queue drops
// the Put with a metric (the disk tier shrinks; the serving path does not
// slow down). An accepted Put is durable once the queue is flushed —
// Sync and Close both guarantee that. body must not be mutated afterwards
// (the store shares the caller's immutable cache bytes until flushed).
func (s *Store) Put(key string, body []byte, execNs uint64) bool {
	if len(key) == 0 || len(key) > maxKeyLen || len(body) == 0 || len(body) > maxBodyLen {
		s.dropped.Add(1)
		return false
	}
	if n := frameSize(len(key), len(s.opt.EngineVersion), len(body)); s.opt.Budget > 0 && n > s.opt.Budget {
		s.dropped.Add(1)
		return false
	}
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed.Load() {
		s.dropped.Add(1)
		return false
	}
	select {
	case s.queue <- putReq{key: key, body: body, execNs: execNs}:
		s.puts.Add(1)
		return true
	default:
		s.dropped.Add(1)
		return false
	}
}

// Sync flushes everything enqueued before the call and fsyncs the active
// segment, bounded by ctx. A closed store is already flushed and returns
// nil.
func (s *Store) Sync(ctx context.Context) error {
	s.closeMu.RLock()
	if s.closed.Load() {
		s.closeMu.RUnlock()
		return nil
	}
	ack := make(chan struct{})
	select {
	case s.queue <- putReq{ack: ack}:
		s.closeMu.RUnlock()
	case <-s.done:
		s.closeMu.RUnlock()
		return nil // Close is draining; it flushes and fsyncs everything
	case <-ctx.Done():
		s.closeMu.RUnlock()
		return fmt.Errorf("diskstore: sync interrupted: %w", ctx.Err())
	}
	select {
	case <-ack:
		return nil
	case <-s.done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("diskstore: sync interrupted: %w", ctx.Err())
	}
}

// Close drains the write-behind queue, fsyncs the active segment, stops
// the flusher, and closes every segment file. Every Put accepted before
// Close is on disk when it returns. Safe to call more than once.
func (s *Store) Close() error {
	// Take the write side so every in-flight Put/Sync has either finished
	// its enqueue or will observe closed — only then signal the flusher,
	// whose final drain is thereby guaranteed to see every accepted
	// request.
	s.closeMu.Lock()
	already := s.closed.Swap(true)
	s.closeMu.Unlock()
	if already {
		return nil
	}
	close(s.done)
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closeFilesLocked()
	return nil
}

func (s *Store) closeFilesLocked() {
	for _, seg := range s.segs {
		if seg.f != nil {
			seg.f.Close()
		}
	}
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits:           s.hits.Load(),
		Misses:         s.misses.Load(),
		Puts:           s.puts.Load(),
		Dropped:        s.dropped.Load(),
		FlushedFrames:  s.flushed.Load(),
		Evictions:      s.evictions.Load(),
		CorruptFrames:  s.corrupt.Load(),
		DupFrames:      s.dups.Load(),
		TruncatedBytes: s.truncatedBytes.Load(),
		Entries:        len(s.index),
		Segments:       len(s.segs),
		DiskBytes:      s.diskBytes,
		LiveBytes:      s.liveBytes,
		CostNs:         s.liveCost,
		Budget:         s.opt.Budget,
		QueueDepth:     len(s.queue),
	}
}

// flusher is the single background writer: it drains the queue in
// batches, appends frames, honors sync barriers, and runs the eviction
// pass when the budget is exceeded. On shutdown it drains whatever is
// left and fsyncs, making Close's durability guarantee.
func (s *Store) flusher() {
	defer s.wg.Done()
	for {
		select {
		case req := <-s.queue:
			s.flushBatch(req)
		case <-s.done:
			for {
				select {
				case req := <-s.queue:
					s.flushBatch(req)
				default:
					s.mu.Lock()
					if s.active != nil && s.active.f != nil {
						s.active.f.Sync()
					}
					s.mu.Unlock()
					return
				}
			}
		}
	}
}

// flushBatch writes first plus everything else currently queued as one
// locked batch: one lock acquisition, sequential appends, at most one
// fsync.
func (s *Store) flushBatch(first putReq) {
	batch := append(s.batch[:0], first)
fill:
	for len(batch) < cap(batch) {
		select {
		case r := <-s.queue:
			batch = append(batch, r)
		default:
			break fill
		}
	}
	s.batch = batch

	var acks []chan struct{}
	needSync := s.opt.SyncEach
	s.mu.Lock()
	for i := range batch {
		r := &batch[i]
		if r.ack != nil {
			acks = append(acks, r.ack)
			needSync = true
			continue
		}
		s.writeLocked(r.key, r.body, r.execNs)
		r.body = nil // release the cache bytes the queue was pinning
	}
	if needSync && s.active != nil && s.active.f != nil {
		s.active.f.Sync()
	}
	if s.opt.Budget > 0 && s.diskBytes > s.opt.Budget {
		s.evictLocked()
	}
	s.mu.Unlock()
	for _, ack := range acks {
		close(ack)
	}
}

// writeLocked appends one entry's frame to the active segment and indexes
// it. Duplicate keys are skipped (content addressing makes the bytes
// identical). Callers hold s.mu.
func (s *Store) writeLocked(key string, body []byte, execNs uint64) {
	if _, dup := s.index[key]; dup {
		s.dups.Add(1)
		return
	}
	f := frame{key: key, engine: s.opt.EngineVersion, execNs: execNs, body: body}
	n := frameSize(len(key), len(f.engine), len(body))
	if s.active == nil || (s.active.size > 0 && s.active.size+n > s.opt.SegmentBytes) {
		if err := s.rotateLocked(); err != nil {
			s.dropped.Add(1)
			return
		}
	}
	s.scratch = appendFrame(s.scratch[:0], &f)
	seg := s.active
	wrote, err := seg.f.Write(s.scratch)
	if wrote > 0 {
		seg.size += int64(wrote)
		s.diskBytes += int64(wrote)
	}
	if err != nil || wrote != len(s.scratch) {
		// The tail of the active segment is now garbage; seal it so the
		// next frame starts a clean file. Boot-time scanning would
		// truncate the partial frame anyway.
		s.dropped.Add(1)
		s.rotateLocked()
		return
	}
	s.index[key] = entryRef{
		seg:     seg,
		off:     seg.size - n,
		n:       n,
		bodyOff: seg.size - n + int64(headerLen+len(key)+len(f.engine)),
		bodyLen: len(body),
		execNs:  execNs,
	}
	seg.live += n
	seg.liveCount++
	s.liveBytes += n
	s.liveCost += execNs
	s.flushed.Add(1)
}

// rotateLocked seals the current active segment (if any) and opens a new
// empty one. Callers hold s.mu.
func (s *Store) rotateLocked() error {
	id := s.nextID
	s.nextID++
	path := filepath.Join(s.dir, fmt.Sprintf("seg-%08d.seg", id))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		s.active = nil
		return fmt.Errorf("diskstore: %w", err)
	}
	seg := &segment{id: id, path: path, f: f}
	s.segs = append(s.segs, seg)
	s.active = seg
	return nil
}

// dropEntryLocked removes key from the index, turning its frame into dead
// bytes inside its segment. Callers hold s.mu.
func (s *Store) dropEntryLocked(key string, ref entryRef) {
	delete(s.index, key)
	ref.seg.live -= ref.n
	ref.seg.liveCount--
	s.liveBytes -= ref.n
	s.liveCost -= ref.execNs
}

// evictLocked enforces the disk budget in two phases. Phase one evicts
// entries in ascending exec-nanoseconds-per-byte — the shared eviction
// currency of both tiers — until the live bytes fit: expensive results
// outlive cheap ones of equal size, regardless of recency. Phase two
// returns the freed bytes to the filesystem: fully-dead segments are
// deleted outright, and while the on-disk total still exceeds the budget
// the deadest sealed segment is compacted (its live frames re-appended to
// the active segment) and removed. Callers hold s.mu.
func (s *Store) evictLocked() {
	if s.liveBytes > s.opt.Budget {
		type cand struct {
			key string
			ref entryRef
		}
		cands := make([]cand, 0, len(s.index))
		for k, r := range s.index {
			cands = append(cands, cand{k, r})
		}
		// Cheapest per byte first; ties broken by key so eviction order is
		// deterministic for tests and replayable from logs.
		sort.Slice(cands, func(i, j int) bool {
			vi := float64(cands[i].ref.execNs) / float64(cands[i].ref.n)
			vj := float64(cands[j].ref.execNs) / float64(cands[j].ref.n)
			if vi != vj {
				return vi < vj
			}
			return cands[i].key < cands[j].key
		})
		for _, c := range cands {
			if s.liveBytes <= s.opt.Budget {
				break
			}
			s.dropEntryLocked(c.key, c.ref)
			s.evictions.Add(1)
		}
	}
	// Delete segments with nothing live (never the active one).
	for i := 0; i < len(s.segs); {
		seg := s.segs[i]
		if seg != s.active && seg.liveCount == 0 {
			s.deleteSegLocked(i)
			continue
		}
		i++
	}
	// Compact until the disk total fits. liveBytes <= Budget already, so
	// squeezing dead bytes out of the deadest segments must converge.
	for s.diskBytes > s.opt.Budget {
		var victim *segment
		victimIdx := -1
		for i, seg := range s.segs {
			if seg == s.active {
				continue
			}
			if victim == nil || seg.size-seg.live > victim.size-victim.live {
				victim, victimIdx = seg, i
			}
		}
		if victim == nil || victim.size == victim.live {
			// Only the active segment holds dead bytes; seal it and let
			// the next iteration compact it.
			if s.active != nil && s.active.size > s.active.live {
				if s.rotateLocked() != nil {
					return
				}
				continue
			}
			return
		}
		s.compactLocked(victim, victimIdx)
	}
}

// compactLocked re-appends victim's live frames to the active segment and
// deletes the file. A frame that fails verification during the move is
// dropped (counted corrupt) rather than propagated. Callers hold s.mu.
func (s *Store) compactLocked(victim *segment, idx int) {
	type moved struct {
		key string
		ref entryRef
	}
	var entries []moved
	for k, r := range s.index {
		if r.seg == victim {
			entries = append(entries, moved{k, r})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].ref.off < entries[j].ref.off })
	for _, e := range entries {
		buf := make([]byte, e.ref.n)
		if _, err := victim.f.ReadAt(buf, e.ref.off); err != nil {
			s.corrupt.Add(1)
			s.dropEntryLocked(e.key, e.ref)
			continue
		}
		f, _, err := decodeFrame(buf)
		if err != nil || f.key != e.key {
			s.corrupt.Add(1)
			s.dropEntryLocked(e.key, e.ref)
			continue
		}
		// Re-home the entry: account it out of the victim, append the raw
		// frame to the active segment, and repoint the index.
		s.dropEntryLocked(e.key, e.ref)
		s.writeLocked(e.key, f.body, e.ref.execNs)
	}
	s.deleteSegLocked(idx)
}

// deleteSegLocked closes and removes the segment at s.segs[idx]. Callers
// hold s.mu and guarantee it has no live entries.
func (s *Store) deleteSegLocked(idx int) {
	seg := s.segs[idx]
	if seg.f != nil {
		seg.f.Close()
	}
	os.Remove(seg.path)
	s.diskBytes -= seg.size
	s.segs = append(s.segs[:idx], s.segs[idx+1:]...)
}
