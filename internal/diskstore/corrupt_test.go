package diskstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// Corruption-recovery contract (ISSUE 8): the startup scan recovers every
// valid frame from a damaged store and accounts for the rest in Stats —
// a torn tail is truncated, a bit-flipped body is skipped, duplicate keys
// collapse to one entry — and boot never fails on bad frames.

// seedStore writes n entries synchronously and closes the store, then
// returns the single segment file holding them.
func seedStore(t *testing.T, dir string, n int) (bodies map[string][]byte, segPath string) {
	t.Helper()
	s, err := Open(dir, Options{EngineVersion: "test"})
	if err != nil {
		t.Fatal(err)
	}
	bodies = map[string][]byte{}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("cell-%03d", i)
		b := bytes.Repeat([]byte{byte('A' + i%26)}, 200+i)
		bodies[k] = b
		if !s.Put(k, b, uint64(i+1)*1000) {
			t.Fatalf("Put %s rejected", k)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segment written: %v %v", segs, err)
	}
	// Entries fit one segment at default SegmentBytes; pick the non-empty one.
	for _, p := range segs {
		if fi, _ := os.Stat(p); fi != nil && fi.Size() > 0 {
			return bodies, p
		}
	}
	t.Fatal("no non-empty segment")
	return nil, ""
}

func TestScanTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	bodies, seg := seedStore(t, dir, 5)
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the file mid-way through the last frame: a torn append.
	if err := os.Truncate(seg, fi.Size()-37); err != nil {
		t.Fatal(err)
	}
	s := open(t, dir, Options{EngineVersion: "test"})
	st := s.Stats()
	if st.Entries != 4 {
		t.Fatalf("recovered %d entries from torn segment, want 4 (stats %+v)", st.Entries, st)
	}
	if st.TruncatedBytes == 0 {
		t.Error("scan did not report truncated bytes")
	}
	for i := 0; i < 4; i++ {
		k := fmt.Sprintf("cell-%03d", i)
		got, _, ok := s.Get(k)
		if !ok || !bytes.Equal(got, bodies[k]) {
			t.Errorf("entry %s not recovered intact", k)
		}
	}
	if _, _, ok := s.Get("cell-004"); ok {
		t.Error("torn entry served")
	}
	// The tear is gone from disk: a second reopen is clean.
	s.Close()
	s2 := open(t, dir, Options{EngineVersion: "test"})
	if st2 := s2.Stats(); st2.TruncatedBytes != 0 || st2.Entries != 4 {
		t.Errorf("second reopen not clean: %+v", st2)
	}
}

func TestScanBitFlippedBody(t *testing.T) {
	dir := t.TempDir()
	bodies, seg := seedStore(t, dir, 5)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Locate frame 2 and flip one bit inside its body.
	off := 0
	for i := 0; i < 2; i++ {
		_, n, err := decodeFrame(data[off:])
		if err != nil {
			t.Fatal(err)
		}
		off += n
	}
	data[off+headerLen+20] ^= 0x10 // 20 bytes into frame 2's key+body region
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s := open(t, dir, Options{EngineVersion: "test"})
	st := s.Stats()
	if st.CorruptFrames != 1 {
		t.Errorf("corrupt frames = %d, want 1 (stats %+v)", st.CorruptFrames, st)
	}
	if st.Entries != 4 {
		t.Errorf("entries = %d, want 4: the scan must step over the rotten frame and recover the rest", st.Entries)
	}
	// Every frame after the flipped one was recovered — CRC damage is
	// contained to one frame, not the segment tail.
	for _, i := range []int{0, 1, 3, 4} {
		k := fmt.Sprintf("cell-%03d", i)
		got, _, ok := s.Get(k)
		if !ok || !bytes.Equal(got, bodies[k]) {
			t.Errorf("entry %s lost to an unrelated frame's corruption", k)
		}
	}
	if _, _, ok := s.Get("cell-002"); ok {
		t.Error("bit-flipped entry served: corruption must degrade to a miss, never wrong bytes")
	}
}

func TestScanDuplicateKeysAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	bodies, _ := seedStore(t, dir, 3)
	// Hand-craft a second segment duplicating cell-001 (byte-identical, as
	// content addressing guarantees) plus one new key.
	var buf []byte
	buf = appendFrame(buf, &frame{key: "cell-001", engine: "test", execNs: 2000, body: bodies["cell-001"]})
	buf = appendFrame(buf, &frame{key: "extra", engine: "test", execNs: 99, body: []byte("new entry")})
	if err := os.WriteFile(filepath.Join(dir, "seg-00000099.seg"), buf, 0o644); err != nil {
		t.Fatal(err)
	}

	s := open(t, dir, Options{EngineVersion: "test"})
	st := s.Stats()
	if st.Entries != 4 {
		t.Errorf("entries = %d, want 4 (3 seeded + extra, dup collapsed)", st.Entries)
	}
	if st.DupFrames != 1 {
		t.Errorf("dup frames = %d, want 1", st.DupFrames)
	}
	if got, _, ok := s.Get("cell-001"); !ok || !bytes.Equal(got, bodies["cell-001"]) {
		t.Error("duplicated key unreadable")
	}
	if got, _, ok := s.Get("extra"); !ok || !bytes.Equal(got, []byte("new entry")) {
		t.Error("entry after the duplicate unreadable")
	}
	// New segments append after the crafted id, never clobbering it.
	if st2 := s.Stats(); st2.Segments < 2 {
		t.Errorf("segments = %d, want >= 2", st2.Segments)
	}
}

func TestScanGarbageFileBoots(t *testing.T) {
	dir := t.TempDir()
	bodies, _ := seedStore(t, dir, 2)
	// A segment of pure garbage: no valid magic anywhere.
	if err := os.WriteFile(filepath.Join(dir, "seg-00000050.seg"), bytes.Repeat([]byte{0xde, 0xad}, 500), 0o644); err != nil {
		t.Fatal(err)
	}
	s := open(t, dir, Options{EngineVersion: "test"})
	st := s.Stats()
	if st.Entries != 2 {
		t.Errorf("entries = %d, want 2: garbage segment must not block boot", st.Entries)
	}
	if st.CorruptFrames == 0 || st.TruncatedBytes == 0 {
		t.Errorf("garbage not accounted: %+v", st)
	}
	for k, want := range bodies {
		if got, _, ok := s.Get(k); !ok || !bytes.Equal(got, want) {
			t.Errorf("entry %s lost", k)
		}
	}
}

// TestGetVerifiesOnRead: corruption that lands after the boot scan (the
// scan read clean bytes, the disk rotted later) is caught by Get's
// per-read CRC check.
func TestGetVerifiesOnRead(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{EngineVersion: "test"})
	body := bytes.Repeat([]byte("q"), 300)
	putSync(t, s, "rot", body, 1)
	// Corrupt the body on disk behind the open store's back.
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	var seg string
	for _, p := range segs {
		if fi, _ := os.Stat(p); fi != nil && fi.Size() > 0 {
			seg = p
		}
	}
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-crcLen-10] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Get("rot"); ok {
		t.Fatal("Get served a frame whose CRC no longer verifies")
	}
	st := s.Stats()
	if st.CorruptFrames != 1 || st.Entries != 0 {
		t.Errorf("stats after rotten read = %+v, want the entry dropped and counted", st)
	}
	// Degraded to a miss: a re-put repairs the store.
	putSync(t, s, "rot", body, 1)
	if got, _, ok := s.Get("rot"); !ok || !bytes.Equal(got, body) {
		t.Error("re-put after corruption not served")
	}
}
