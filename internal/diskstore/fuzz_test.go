package diskstore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzFrameDecode drives the frame decoder with arbitrary bytes. The
// invariants: it never panics, a successful decode is exactly invertible
// (re-encoding reproduces the consumed bytes — the CRC leaves no slack
// for two encodings of one frame), and the reported length never
// overruns the input.
func FuzzFrameDecode(f *testing.F) {
	valid := appendFrame(nil, &frame{key: "abcd", engine: "3", execNs: 42, body: []byte("hello world")})
	f.Add(valid)
	f.Add(valid[:len(valid)-3])                 // torn tail
	f.Add(append([]byte{0, 0, 0, 0}, valid...)) // bad magic
	flipped := bytes.Clone(valid)
	flipped[headerLen+2] ^= 0x40
	f.Add(flipped) // checksum mismatch
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := decodeFrame(data)
		if n < 0 || n > len(data) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(data))
		}
		if err != nil {
			return
		}
		if n == 0 {
			t.Fatal("successful decode consumed nothing")
		}
		if !bytes.Equal(appendFrame(nil, &fr), data[:n]) {
			t.Fatalf("decode/encode not inverse for %d-byte frame", n)
		}
	})
}

// FuzzSegmentScan feeds arbitrary bytes to the boot-time segment scan:
// whatever is on disk, Open must succeed, every entry it indexes must be
// servable, and a second open of the (possibly truncated) store must see
// the same entries.
func FuzzSegmentScan(f *testing.F) {
	var seed []byte
	seed = appendFrame(seed, &frame{key: "k1", engine: "3", execNs: 1, body: []byte("one")})
	seed = appendFrame(seed, &frame{key: "k2", engine: "3", execNs: 2, body: []byte("two")})
	f.Add(seed)
	f.Add(seed[:len(seed)-5])
	f.Add([]byte("not a segment at all"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "seg-00000001.seg"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{EngineVersion: "3"})
		if err != nil {
			t.Fatalf("Open failed on scannable input: %v", err)
		}
		st := s.Stats()
		keys := make([]string, 0, st.Entries)
		s.mu.Lock()
		for k := range s.index {
			keys = append(keys, k)
		}
		s.mu.Unlock()
		got := map[string][]byte{}
		for _, k := range keys {
			body, _, ok := s.Get(k)
			if !ok {
				t.Fatalf("indexed key %q not servable", k)
			}
			got[k] = body
		}
		s.Close()

		s2, err := Open(dir, Options{EngineVersion: "3"})
		if err != nil {
			t.Fatalf("re-open failed: %v", err)
		}
		defer s2.Close()
		for k, want := range got {
			body, _, ok := s2.Get(k)
			if !ok || !bytes.Equal(body, want) {
				t.Fatalf("entry %q not stable across reopen", k)
			}
		}
	})
}
