package diskstore

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"
)

// open is the test constructor: small segments so rotation and compaction
// actually happen at test scale.
func open(t *testing.T, dir string, opt Options) *Store {
	t.Helper()
	s, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// putSync enqueues and forces the flusher to drain, so the entry is
// durable (and Get-able) when it returns.
func putSync(t *testing.T, s *Store, key string, body []byte, execNs uint64) {
	t.Helper()
	if !s.Put(key, body, execNs) {
		t.Fatalf("Put(%q) rejected", key)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Sync(ctx); err != nil {
		t.Fatalf("Sync: %v", err)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t, t.TempDir(), Options{EngineVersion: "test"})
	body := []byte(`{"result":"alpha"}`)
	putSync(t, s, "k1", body, 12345)

	got, cost, ok := s.Get("k1")
	if !ok {
		t.Fatal("Get(k1) missed after synced Put")
	}
	if !bytes.Equal(got, body) {
		t.Errorf("Get body = %q, want %q", got, body)
	}
	if cost != 12345 {
		t.Errorf("Get cost = %d, want 12345", cost)
	}
	if _, _, ok := s.Get("absent"); ok {
		t.Error("Get(absent) hit")
	}
	st := s.Stats()
	if st.Entries != 1 || st.Hits != 1 || st.Misses != 1 || st.FlushedFrames != 1 {
		t.Errorf("stats = %+v, want 1 entry, 1 hit, 1 miss, 1 flushed", st)
	}
	if st.LiveBytes == 0 || st.DiskBytes != st.LiveBytes || st.CostNs != 12345 {
		t.Errorf("byte/cost accounting wrong: %+v", st)
	}
}

func TestRestartRecoversEntries(t *testing.T) {
	dir := t.TempDir()
	bodies := map[string][]byte{}
	s1 := open(t, dir, Options{EngineVersion: "test"})
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("key-%02d", i)
		b := bytes.Repeat([]byte{byte(i + 1)}, 100+i)
		bodies[k] = b
		if !s1.Put(k, b, uint64(i)*1000) {
			t.Fatalf("Put %s rejected", k)
		}
	}
	if err := s1.Close(); err != nil { // Close drains the queue
		t.Fatal(err)
	}

	s2 := open(t, dir, Options{EngineVersion: "test"})
	st := s2.Stats()
	if st.Entries != 20 || st.CorruptFrames != 0 {
		t.Fatalf("reopened stats = %+v, want 20 clean entries", st)
	}
	for k, want := range bodies {
		got, _, ok := s2.Get(k)
		if !ok || !bytes.Equal(got, want) {
			t.Errorf("Get(%s) after restart = (%v, %q), want %q", k, ok, got, want)
		}
	}
}

// TestDuplicatePutSkipped: re-putting a key the index already holds must
// not grow the store — content addressing makes the bytes identical.
func TestDuplicatePutSkipped(t *testing.T) {
	s := open(t, t.TempDir(), Options{EngineVersion: "test"})
	body := []byte("same bytes either way")
	putSync(t, s, "k", body, 1)
	putSync(t, s, "k", body, 1)
	st := s.Stats()
	if st.Entries != 1 || st.FlushedFrames != 1 || st.DupFrames != 1 {
		t.Errorf("stats after duplicate put = %+v, want 1 entry, 1 flush, 1 dup", st)
	}
}

// TestQueueOverflowDrops: a full write-behind queue drops with a metric,
// it never blocks.
func TestQueueOverflowDrops(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{QueueDepth: 2, EngineVersion: "test"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// The flusher races us draining the queue, so overflow is not exact;
	// hammering it far past the depth guarantees at least one drop, and
	// the call must return promptly either way.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 10000; i++ {
			s.Put(fmt.Sprintf("k%05d", i), []byte("body"), 1)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Put blocked on a full queue")
	}
	if st := s.Stats(); st.Dropped == 0 {
		t.Logf("note: flusher kept up with 10k puts (dropped=0) — acceptable but unusual")
	}
}

// TestCostAwareEviction is the eviction-currency contract: under byte
// pressure, the entry that cost the most engine time per byte survives,
// even though it was written first (pure LRU would evict it).
func TestCostAwareEviction(t *testing.T) {
	dir := t.TempDir()
	body := bytes.Repeat([]byte("x"), 1024)
	frame := frameSize(len("expensive"), len("test"), len(body)) // all keys same length
	// Budget fits two entries' frames but not three.
	s, err := Open(dir, Options{
		Budget:        2*frame + frame/2,
		SegmentBytes:  frame, // one frame per segment: eviction can reclaim per-entry
		EngineVersion: "test",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	putSync(t, s, "expensive", body, 2_000_000_000) // 2s of engine time
	putSync(t, s, "cheap-one", body, 1_000_000)
	putSync(t, s, "cheap-two", body, 2_000_000) // pushes past the budget

	if _, _, ok := s.Get("expensive"); !ok {
		t.Error("expensive entry was evicted; cost-aware eviction should keep it")
	}
	if _, _, ok := s.Get("cheap-one"); ok {
		t.Error("cheapest entry survived; it should be the eviction victim")
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Errorf("no evictions recorded: %+v", st)
	}
	if st.DiskBytes > st.Budget {
		t.Errorf("disk bytes %d still over budget %d after eviction", st.DiskBytes, st.Budget)
	}
}

// TestCompactionReclaimsDeadBytes: evicted entries inside a shared
// segment only become reclaimable through compaction; the survivors must
// remain readable afterwards.
func TestCompactionReclaimsDeadBytes(t *testing.T) {
	dir := t.TempDir()
	body := bytes.Repeat([]byte("y"), 512)
	frame := frameSize(8, len("test"), len(body))
	// All entries land in one big segment; budget forces roughly half out.
	s, err := Open(dir, Options{
		Budget:        5 * frame,
		SegmentBytes:  64 << 20,
		EngineVersion: "test",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 10; i++ {
		// Cost rises with i: the early (cheap) entries are the victims.
		putSync(t, s, fmt.Sprintf("entry-%02d", i), body, uint64(i+1)*1_000_000)
	}
	st := s.Stats()
	if st.DiskBytes > st.Budget {
		t.Errorf("disk bytes %d over budget %d after compaction", st.DiskBytes, st.Budget)
	}
	if st.Evictions == 0 {
		t.Errorf("expected evictions, got %+v", st)
	}
	// The most expensive entries survive and still verify.
	for i := 10 - st.Entries; i < 10; i++ {
		k := fmt.Sprintf("entry-%02d", i)
		if got, _, ok := s.Get(k); !ok || !bytes.Equal(got, body) {
			t.Errorf("surviving entry %s unreadable after compaction", k)
		}
	}
	// On-disk accounting matches reality.
	var real int64
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		fi, err := os.Stat(filepath.Join(dir, e.Name()))
		if err == nil {
			real += fi.Size()
		}
	}
	if real != st.DiskBytes {
		t.Errorf("DiskBytes=%d but files total %d", st.DiskBytes, real)
	}
}

// TestSegmentRotation: exceeding SegmentBytes seals the active segment
// and starts a new one; entries across segments all stay readable.
func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	body := bytes.Repeat([]byte("z"), 256)
	s, err := Open(dir, Options{SegmentBytes: 600, EngineVersion: "test"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 6; i++ {
		putSync(t, s, fmt.Sprintf("rot-%d", i), body, 1)
	}
	st := s.Stats()
	if st.Segments < 3 {
		t.Errorf("segments = %d, want >= 3 (rotation at 600B with ~330B frames)", st.Segments)
	}
	for i := 0; i < 6; i++ {
		if _, _, ok := s.Get(fmt.Sprintf("rot-%d", i)); !ok {
			t.Errorf("rot-%d unreadable after rotation", i)
		}
	}
}

// TestSyncDurability: Sync (the graceful-drain primitive) makes every
// previously accepted Put visible to a second store opened on the same
// directory, with no Close in between — the process-crash-after-drain
// contract.
func TestSyncDurability(t *testing.T) {
	dir := t.TempDir()
	s1 := open(t, dir, Options{EngineVersion: "test"})
	for i := 0; i < 8; i++ {
		if !s1.Put(fmt.Sprintf("sync-%d", i), []byte("durable"), 7) {
			t.Fatal("Put rejected")
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	// No Close: simulate the process dying right after the drain.
	s2 := open(t, dir, Options{EngineVersion: "test"})
	for i := 0; i < 8; i++ {
		if _, _, ok := s2.Get(fmt.Sprintf("sync-%d", i)); !ok {
			t.Errorf("sync-%d lost despite Sync before crash", i)
		}
	}
}

func TestClosedStoreDegrades(t *testing.T) {
	s := open(t, t.TempDir(), Options{EngineVersion: "test"})
	putSync(t, s, "k", []byte("v"), 1)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if _, _, ok := s.Get("k"); ok {
		t.Error("Get hit on a closed store")
	}
	if s.Put("k2", []byte("v"), 1) {
		t.Error("Put accepted on a closed store")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Sync(ctx); err != nil {
		t.Errorf("Sync on closed store: %v", err)
	}
}

// TestOversizedPutRejected: a single value larger than the whole budget
// is refused up front instead of thrashing the eviction pass.
func TestOversizedPutRejected(t *testing.T) {
	s := open(t, t.TempDir(), Options{Budget: 1024, EngineVersion: "test"})
	if s.Put("big", bytes.Repeat([]byte("b"), 4096), 1) {
		t.Error("oversized Put accepted")
	}
	if s.Put("", []byte("v"), 1) {
		t.Error("empty-key Put accepted")
	}
	if s.Put("k", nil, 1) {
		t.Error("empty-body Put accepted")
	}
	if st := s.Stats(); st.Dropped != 3 {
		t.Errorf("dropped = %d, want 3", st.Dropped)
	}
}

// TestConcurrentPutCloseNoLostAcks is the regression test for the
// accepted-but-lost window: a Put could pass the closed check, lose the
// CPU while Close signalled the flusher, and land its request in the
// queue after the final drain — acknowledged (true) but never written.
// Hammer Put from many goroutines racing one Close and require every
// acknowledged key to be present when the directory is reopened.
func TestConcurrentPutCloseNoLostAcks(t *testing.T) {
	for round := 0; round < 20; round++ {
		dir := t.TempDir()
		s, err := Open(dir, Options{EngineVersion: "test"})
		if err != nil {
			t.Fatal(err)
		}
		const writers = 8
		acked := make([][]string, writers)
		var wg sync.WaitGroup
		start := make(chan struct{})
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				<-start
				for i := 0; ; i++ {
					key := fmt.Sprintf("r%d-w%d-k%d", round, w, i)
					if !s.Put(key, []byte(`{"v":1}`), 1) {
						return // store closed (or queue full): stop
					}
					acked[w] = append(acked[w], key)
				}
			}(w)
		}
		close(start)
		// Let the writers race the close decision itself.
		runtime.Gosched()
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		wg.Wait()

		re, err := Open(dir, Options{EngineVersion: "test"})
		if err != nil {
			t.Fatal(err)
		}
		for w := range acked {
			for _, key := range acked[w] {
				if _, _, ok := re.Get(key); !ok {
					t.Fatalf("round %d: acknowledged Put %q lost across Close (%+v)", round, key, re.Stats())
				}
			}
		}
		re.Close()
	}
}
