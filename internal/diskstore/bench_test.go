package diskstore

import (
	"bytes"
	"context"
	"testing"
	"time"
)

// BenchmarkPutEnqueue measures the serving path's cost of handing a
// result to the disk tier: one select onto the write-behind queue. The
// acceptance bar is zero allocations — persistence must not add a single
// alloc to the cell hot path (drops under queue pressure take the same
// no-alloc path, so the measurement is valid either way).
func BenchmarkPutEnqueue(b *testing.B) {
	s, err := Open(b.TempDir(), Options{QueueDepth: 1024, EngineVersion: "bench"})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	body := bytes.Repeat([]byte("r"), 4096)
	// One key: after the first flush every Put dedups in the flusher, so
	// the benchmark holds disk traffic constant while exercising the
	// enqueue path b.N times.
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Put("benchmark-key", body, 1000)
	}
}

func BenchmarkGetHit(b *testing.B) {
	s, err := Open(b.TempDir(), Options{EngineVersion: "bench"})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	body := bytes.Repeat([]byte("r"), 4096)
	s.Put("k", body, 1000)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Sync(ctx); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := s.Get("k"); !ok {
			b.Fatal("miss")
		}
	}
}
