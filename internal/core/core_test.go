package core

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/simtime"
)

// state builds a snapshot with the given per-job (active, demand, alloc)
// triples on a machine with procs processors; processors are assigned to
// jobs round-robin up to each job's alloc.
func state(procs int, jobs [][3]int) *alloc.State {
	s := alloc.NewState(procs, len(jobs))
	p := 0
	for j, row := range jobs {
		s.Active[j] = row[0] != 0
		s.Demand[j] = row[1]
		s.MaxPar[j] = 1 << 20
		for k := 0; k < row[2]; k++ {
			s.ProcJob[p] = j
			s.Alloc[j]++
			p++
		}
	}
	return s
}

func apply(s *alloc.State, decs []alloc.Decision) {
	// Decisions were already applied provisionally by the policies via
	// s.Assign; this helper just sanity-checks them.
	for _, d := range decs {
		if d.Proc < 0 || d.Proc >= s.Procs {
			panic("decision out of range")
		}
	}
}

func TestPolicyIdentities(t *testing.T) {
	cases := []struct {
		pol      alloc.Policy
		name     string
		affinity bool
		delay    simtime.Duration
		quantum  simtime.Duration
	}{
		{NewEquipartition(), "Equipartition", true, 0, 0},
		{NewDynamic(), "Dynamic", false, 0, 0},
		{NewDynAff(), "Dyn-Aff", true, 0, 0},
		{NewDynAffNoPri(), "Dyn-Aff-NoPri", true, 0, 0},
		{NewDynAffDelay(), "Dyn-Aff-Delay", true, DefaultYieldDelay, 0},
		{NewTimeShare(0), "TimeShare-RR", false, 0, DefaultQuantum},
	}
	for _, c := range cases {
		if c.pol.Name() != c.name {
			t.Errorf("Name = %q, want %q", c.pol.Name(), c.name)
		}
		if c.pol.PrefersAffinity() != c.affinity {
			t.Errorf("%s PrefersAffinity = %v", c.name, c.pol.PrefersAffinity())
		}
		if c.pol.YieldDelay() != c.delay {
			t.Errorf("%s YieldDelay = %v", c.name, c.pol.YieldDelay())
		}
		if c.pol.Quantum() != c.quantum {
			t.Errorf("%s Quantum = %v", c.name, c.pol.Quantum())
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"Equipartition", "Dynamic", "Dyn-Aff",
		"Dyn-Aff-NoPri", "Dyn-Aff-Delay", "TimeShare-RR",
		"equi", "dynamic", "dynaff", "dynaffnopri", "dynaffdelay", "timeshare"} {
		if _, ok := ByName(name); !ok {
			t.Errorf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("bogus"); ok {
		t.Error("bogus name accepted")
	}
	if len(All()) != 5 {
		t.Errorf("All() = %d policies, want the paper's 5", len(All()))
	}
}

func TestEquipartitionSplitsEqually(t *testing.T) {
	pol := NewEquipartition()
	s := state(16, [][3]int{{1, 100, 0}, {1, 100, 0}})
	decs := pol.Rebalance(s, alloc.TrigArrival, 1)
	apply(s, decs)
	if s.Alloc[0] != 8 || s.Alloc[1] != 8 {
		t.Fatalf("allocs = %v, want 8/8", s.Alloc)
	}
}

func TestEquipartitionRespectsMaxParallelism(t *testing.T) {
	pol := NewEquipartition()
	s := state(16, [][3]int{{1, 100, 0}, {1, 100, 0}})
	s.MaxPar[0] = 3 // job 0 can never use more than 3
	decs := pol.Rebalance(s, alloc.TrigArrival, 1)
	apply(s, decs)
	if s.Alloc[0] != 3 || s.Alloc[1] != 13 {
		t.Fatalf("allocs = %v, want 3/13", s.Alloc)
	}
}

func TestEquipartitionOnlyReallocatesOnArrivalCompletion(t *testing.T) {
	pol := NewEquipartition()
	s := state(16, [][3]int{{1, 100, 12}, {1, 100, 4}})
	for _, trig := range []alloc.Trigger{alloc.TrigDemandUp, alloc.TrigProcFree, alloc.TrigQuantum} {
		if decs := pol.Rebalance(s, trig, 0); len(decs) != 0 {
			t.Errorf("Equipartition reallocated on %v", trig)
		}
	}
	// But rebalances on completion.
	s.Active[1] = false
	decs := pol.Rebalance(s, alloc.TrigCompletion, 1)
	apply(s, decs)
	if s.Alloc[0] != 16 {
		t.Errorf("after completion alloc = %v", s.Alloc)
	}
}

func TestEquipartitionReleasesAllWhenEmpty(t *testing.T) {
	pol := NewEquipartition()
	s := state(4, [][3]int{{0, 0, 3}})
	decs := pol.Rebalance(s, alloc.TrigCompletion, 0)
	if len(decs) != 3 {
		t.Fatalf("released %d procs, want 3", len(decs))
	}
	for _, d := range decs {
		if d.Job != -1 {
			t.Errorf("release decision assigned job %d", d.Job)
		}
	}
}

func TestDynamicServesFromUnassignedFirst(t *testing.T) {
	pol := NewDynamic()
	s := state(8, [][3]int{{1, 4, 0}})
	decs := pol.Rebalance(s, alloc.TrigArrival, 0)
	if len(decs) != 4 {
		t.Fatalf("decisions = %v, want 4 assignments", decs)
	}
	if s.Alloc[0] != 4 {
		t.Fatalf("alloc = %d", s.Alloc[0])
	}
}

func TestDynamicUsesYieldingProcs(t *testing.T) {
	pol := NewDynamic()
	s := state(4, [][3]int{{1, 4, 4}, {1, 2, 0}})
	s.ProcYield[2] = true
	s.ProcYield[3] = true
	decs := pol.Rebalance(s, alloc.TrigProcFree, 2)
	apply(s, decs)
	if s.Alloc[1] != 2 || s.ProcJob[2] != 1 || s.ProcJob[3] != 1 {
		t.Fatalf("yielding procs not transferred: alloc=%v procjob=%v", s.Alloc, s.ProcJob)
	}
}

func TestDynamicD3Equity(t *testing.T) {
	pol := NewDynamic()
	// Job 0 holds everything and is working; job 1 arrives needing 8.
	s := state(16, [][3]int{{1, 100, 16}, {1, 8, 0}})
	for p := range s.ProcWorking {
		s.ProcWorking[p] = true
	}
	decs := pol.Rebalance(s, alloc.TrigArrival, 1)
	apply(s, decs)
	// Equity: preempt until within one processor.
	if s.Alloc[1] < 7 || s.Alloc[0] > 9 {
		t.Fatalf("D.3 equity failed: allocs = %v", s.Alloc)
	}
}

func TestDynamicD3RespectsPriority(t *testing.T) {
	pol := NewDynamic()
	s := state(16, [][3]int{{1, 100, 16}, {1, 8, 0}})
	s.Credit[0] = 10 // victim has far more credit: cannot be preempted
	s.Credit[1] = 0
	decs := pol.Rebalance(s, alloc.TrigDemandUp, 1)
	if len(decs) != 0 {
		t.Fatalf("preempted from a higher-priority job: %v", decs)
	}
}

func TestDynamicCreditSpendingBurst(t *testing.T) {
	pol := NewDynamic()
	// Requester has a large credit surplus: may push the victim to half
	// its fair share (fair = 8, floor = 4).
	s := state(16, [][3]int{{1, 100, 16}, {1, 16, 0}})
	s.Credit[1] = creditSpendThreshold + 1
	decs := pol.Rebalance(s, alloc.TrigDemandUp, 1)
	apply(s, decs)
	if s.Alloc[0] != 4 || s.Alloc[1] != 12 {
		t.Fatalf("burst allocs = %v, want 4/12", s.Alloc)
	}
}

func TestDynAffNoPriNeverPreempts(t *testing.T) {
	pol := NewDynAffNoPri()
	s := state(16, [][3]int{{1, 100, 16}, {1, 8, 0}})
	decs := pol.Rebalance(s, alloc.TrigDemandUp, 1)
	if len(decs) != 0 {
		t.Fatalf("Dyn-Aff-NoPri preempted: %v", decs)
	}
}

func TestDynAffA1GivesProcToLastTask(t *testing.T) {
	pol := NewDynAff()
	// Proc 3 yielded by job 0; its last task belongs to job 1, which wants
	// more processors.
	s := state(4, [][3]int{{1, 4, 4}, {1, 2, 0}})
	s.ProcYield[3] = true
	s.ProcLastTask[3] = alloc.TaskRef{Job: 1, Task: 0}
	s.LastTaskResumable[3] = true
	decs := pol.Rebalance(s, alloc.TrigProcFree, 3)
	apply(s, decs)
	if s.ProcJob[3] != 1 {
		t.Fatalf("A.1 did not return proc to its last task's job: %v", decs)
	}
	if !decs[0].HasTask || decs[0].Task != (alloc.TaskRef{Job: 1, Task: 0}) {
		t.Fatalf("A.1 grant not task-targeted: %+v", decs[0])
	}
}

func TestDynAffA1DefersToPriority(t *testing.T) {
	pol := NewDynAff()
	// Last task's job (1) has much lower credit than requester job 2.
	s := state(4, [][3]int{{1, 4, 4}, {1, 2, 0}, {1, 2, 0}})
	s.ProcYield[3] = true
	s.ProcLastTask[3] = alloc.TaskRef{Job: 1, Task: 0}
	s.LastTaskResumable[3] = true
	s.Credit[1] = 0
	s.Credit[2] = 10
	decs := pol.Rebalance(s, alloc.TrigProcFree, 3)
	apply(s, decs)
	if s.ProcJob[3] != 2 {
		t.Fatalf("A.1 overrode a higher-priority requester: proc 3 -> job %d", s.ProcJob[3])
	}
}

func TestDynAffNoPriA1IgnoresPriority(t *testing.T) {
	pol := NewDynAffNoPri()
	s := state(4, [][3]int{{1, 4, 4}, {1, 2, 0}, {1, 2, 0}})
	s.ProcYield[3] = true
	s.ProcLastTask[3] = alloc.TaskRef{Job: 1, Task: 0}
	s.LastTaskResumable[3] = true
	s.Credit[1] = 0
	s.Credit[2] = 10
	decs := pol.Rebalance(s, alloc.TrigProcFree, 3)
	apply(s, decs)
	if s.ProcJob[3] != 1 {
		t.Fatalf("NoPri A.1 should ignore priority: proc 3 -> job %d", s.ProcJob[3])
	}
}

func TestDynAffA2PrefersDesiredProcessor(t *testing.T) {
	pol := NewDynAff()
	// Four unassigned procs; job 0 desires proc 3 for its task 2.
	s := state(4, [][3]int{{1, 2, 0}})
	s.Desired[0] = []alloc.DesiredProc{{Proc: 3, Task: alloc.TaskRef{Job: 0, Task: 2}}}
	decs := pol.Rebalance(s, alloc.TrigDemandUp, 0)
	apply(s, decs)
	if len(decs) == 0 || decs[0].Proc != 3 {
		t.Fatalf("A.2 did not prefer desired processor: %v", decs)
	}
	if !decs[0].HasTask || decs[0].Task.Task != 2 {
		t.Fatalf("A.2 grant not task-targeted: %+v", decs[0])
	}
	// The second grant is untargeted: some other supply proc, no task.
	if len(decs) < 2 || decs[1].Proc == 3 || decs[1].HasTask {
		t.Fatalf("second grant wrong: %+v", decs)
	}
}

func TestDynamicIgnoresDesired(t *testing.T) {
	pol := NewDynamic()
	s := state(4, [][3]int{{1, 1, 0}})
	s.Desired[0] = []alloc.DesiredProc{{Proc: 3, Task: alloc.TaskRef{Job: 0, Task: 0}}}
	decs := pol.Rebalance(s, alloc.TrigDemandUp, 0)
	if len(decs) == 0 || decs[0].HasTask {
		t.Fatalf("Dynamic grant should be untargeted: %v", decs)
	}
}

func TestTimeShareRotates(t *testing.T) {
	pol := NewTimeShare(DefaultQuantum)
	s := state(4, [][3]int{{1, 10, 0}, {1, 10, 0}})
	decs := pol.Rebalance(s, alloc.TrigArrival, 0)
	apply(s, decs)
	first := append([]int(nil), s.ProcJob...)
	decs = pol.Rebalance(s, alloc.TrigQuantum, -1)
	apply(s, decs)
	same := 0
	for p := range first {
		if first[p] == s.ProcJob[p] {
			same++
		}
	}
	if same == len(first) {
		t.Fatal("quantum expiry did not rotate assignments")
	}
	// Ignores other triggers.
	if decs := pol.Rebalance(s, alloc.TrigDemandUp, 0); len(decs) != 0 {
		t.Error("TimeShare acted on demand-up")
	}
	// Releases everything when no job is active.
	s.Active[0], s.Active[1] = false, false
	decs = pol.Rebalance(s, alloc.TrigCompletion, 0)
	for _, d := range decs {
		if d.Job != -1 {
			t.Error("release decision with a job")
		}
	}
}

func TestTimeShareDefaultQuantum(t *testing.T) {
	if NewTimeShare(-5).Quantum() != DefaultQuantum {
		t.Error("negative quantum not defaulted")
	}
	if NewTimeShare(simtime.Second).Quantum() != simtime.Second {
		t.Error("explicit quantum ignored")
	}
}

func TestTimeShareAff(t *testing.T) {
	pol := NewTimeShareAff(DefaultQuantum)
	if pol.Name() != "TimeShare-Aff" {
		t.Errorf("Name = %q", pol.Name())
	}
	if !pol.PrefersAffinity() {
		t.Error("TimeShare-Aff must prefer affinity")
	}
	if p, ok := ByName("timeshareaff"); !ok || !p.PrefersAffinity() {
		t.Error("ByName(timeshareaff) wrong")
	}
	// It still rotates like the base policy.
	s := state(4, [][3]int{{1, 10, 0}, {1, 10, 0}})
	decs := pol.Rebalance(s, alloc.TrigArrival, 0)
	if len(decs) != 4 {
		t.Fatalf("arrival decisions = %d", len(decs))
	}
}
