// Package core implements the paper's space-sharing processor allocation
// policies — the system under study:
//
//   - Equipartition: constant equal allocation, reallocating only on job
//     arrival and completion (Tucker & Gupta's "process control"); the
//     static extreme, with perfect affinity and maximum waste.
//   - Dynamic: McCann et al.'s policy; instantaneous demand-driven
//     reallocation via rules D.1–D.3 with a priority-credit scheme; the
//     dynamic extreme, minimal waste and maximal reallocations, oblivious
//     to affinity.
//   - Dyn-Aff: Dynamic plus affinity rules A.1 (offer a freed processor to
//     its last task) and A.2 (honor a requesting job's desired processor),
//     both subordinate to the priority scheme.
//   - Dyn-Aff-NoPri: the artificial variant that sacrifices the priority
//     scheme to affinity (A.1 unconditionally; no D.3 fairness
//     preemption). Used only to bound the benefit affinity could buy.
//   - Dyn-Aff-Delay: Dyn-Aff plus "yield delay" — a job holds an idle
//     processor briefly in the hope of new work, trading a little waste
//     for fewer reallocations.
//
// A quantum-driven time-sharing round-robin (TimeShare) is also provided as
// the baseline for the paper's Section-8 space-vs-time-sharing contrast.
package core

import (
	"repro/internal/alloc"
	"repro/internal/simtime"
)

// DefaultYieldDelay is the hold time Dyn-Aff-Delay keeps an idle processor
// before offering it for reallocation.
const DefaultYieldDelay = 20 * simtime.Millisecond

// DefaultQuantum is the time-sharing baseline's slice length; DYNIX used
// 100 ms.
const DefaultQuantum = 100 * simtime.Millisecond

// creditSpendThreshold is the priority-credit surplus (in processor-seconds)
// beyond which a requester may preempt to a fully equal split under rule
// D.3.
const creditSpendThreshold = 2.0

// Equipartition maintains, to the extent possible, a constant equal
// allocation of processors to all jobs, reallocating only on job arrival
// and completion.
type Equipartition struct {
	decs   []alloc.Decision // reused decision buffer (see Rebalance)
	target []int            // reused allocation-number scratch, by job id
}

// NewEquipartition returns the Equipartition policy.
func NewEquipartition() *Equipartition { return &Equipartition{} }

// Name implements alloc.Policy.
func (*Equipartition) Name() string { return "Equipartition" }

// YieldDelay implements alloc.Policy; Equipartition never yields idle
// processors between arrivals.
func (*Equipartition) YieldDelay() simtime.Duration { return 0 }

// Quantum implements alloc.Policy.
func (*Equipartition) Quantum() simtime.Duration { return 0 }

// PrefersAffinity implements alloc.Policy; under Equipartition tasks
// essentially never move, so resuming the local task is the natural
// behaviour.
func (*Equipartition) PrefersAffinity() bool { return true }

// Rebalance implements alloc.Policy. On arrival or completion it computes
// each job's allocation number — every active job's count is incremented in
// turn, jobs dropping out at their maximum parallelism, until processors
// are exhausted — and then moves processors to match. The returned slice is
// a buffer owned by the policy, valid until the next Rebalance call.
func (e *Equipartition) Rebalance(s *alloc.State, trig alloc.Trigger, arg int) []alloc.Decision {
	if trig != alloc.TrigArrival && trig != alloc.TrigCompletion {
		return nil
	}
	e.decs = e.decs[:0]
	jobs := s.ActiveJobs()
	if len(jobs) == 0 {
		// Release everything.
		for p, j := range s.ProcJob {
			if j != -1 {
				e.decs = append(e.decs, alloc.Decision{Proc: p, Job: -1})
				s.Assign(p, -1)
			}
		}
		return e.decs
	}

	// Allocation numbers, indexed by job id.
	if cap(e.target) < s.NumJobs() {
		e.target = make([]int, s.NumJobs())
	}
	target := e.target[:s.NumJobs()]
	for j := range target {
		target[j] = 0
	}
	remaining := s.Procs
	for remaining > 0 {
		progressed := false
		for _, j := range jobs {
			if remaining == 0 {
				break
			}
			if target[j] >= s.MaxPar[j] {
				continue
			}
			target[j]++
			remaining--
			progressed = true
		}
		if !progressed {
			break // every job at its maximum parallelism
		}
	}

	assign := func(p, j int) {
		e.decs = append(e.decs, alloc.Decision{Proc: p, Job: j})
		s.Assign(p, j)
	}
	// Strip processors from completed jobs and over-allocated jobs.
	for p, j := range s.ProcJob {
		if j == -1 {
			continue
		}
		if !s.Active[j] || s.Alloc[j] > target[j] {
			assign(p, -1)
		}
	}
	// Hand unassigned processors to under-allocated jobs.
	free := s.UnassignedProcs()
	for _, j := range jobs {
		for s.Alloc[j] < target[j] && len(free) > 0 {
			assign(free[0], j)
			free = free[1:]
		}
	}
	return e.decs
}

// dynamicCore implements the shared machinery of the Dynamic family. The
// flags select the affinity rules (A.1/A.2), whether the priority scheme
// constrains them, and whether the D.3 fairness preemption applies.
type dynamicCore struct {
	name       string
	affinity   bool // apply rules A.1 and A.2
	priority   bool // priority scheme constrains affinity; D.3 enabled
	yieldDelay simtime.Duration
	// cursor rotates untargeted supply picks so that repeated bursts do
	// not systematically reacquire the same processors (a real allocator's
	// "least valuable" choice is effectively arbitrary); per-run state.
	cursor int
	// decs is the reused decision buffer returned by Rebalance, and
	// yieldScratch the reused rule-D.2 supply filter; both valid until the
	// next Rebalance call.
	decs         []alloc.Decision
	yieldScratch []int
}

// assign appends a decision and applies it to the snapshot provisionally.
func (d *dynamicCore) assign(s *alloc.State, p, j int, task alloc.TaskRef) {
	d.decs = append(d.decs, alloc.Decision{Proc: p, Job: j, Task: task, HasTask: task.Valid()})
	s.Assign(p, j)
}

// Name implements alloc.Policy.
func (d *dynamicCore) Name() string { return d.name }

// YieldDelay implements alloc.Policy.
func (d *dynamicCore) YieldDelay() simtime.Duration { return d.yieldDelay }

// Quantum implements alloc.Policy.
func (d *dynamicCore) Quantum() simtime.Duration { return 0 }

// PrefersAffinity implements alloc.Policy: only the affinity variants ask
// the job runtime to resume the processor's previous task.
func (d *dynamicCore) PrefersAffinity() bool { return d.affinity }

// Rebalance implements alloc.Policy for the Dynamic family. The returned
// slice is a buffer owned by the policy, valid until the next Rebalance
// call.
func (d *dynamicCore) Rebalance(s *alloc.State, trig alloc.Trigger, arg int) []alloc.Decision {
	if trig == alloc.TrigQuantum {
		return nil
	}
	d.decs = d.decs[:0]

	// Rule A.1: when a specific processor has just become available, give
	// it to the last task that ran on it, provided that task is resumable
	// and — under the priority scheme — its job's priority is as high as
	// any requester's. The grant is task-targeted: that task resumes on
	// the processor it has affinity for.
	if d.affinity && trig == alloc.TrigProcFree && arg >= 0 {
		p := arg
		last := s.ProcLastTask[p]
		if last.Valid() && s.LastTaskResumable[p] &&
			s.Active[last.Job] && s.Demand[last.Job] > s.Alloc[last.Job] &&
			s.ProcJob[p] != last.Job {
			ok := true
			if d.priority {
				for _, r := range s.Requesters() {
					if r != last.Job && s.Credit[r] > s.Credit[last.Job] {
						ok = false
						break
					}
				}
			}
			if ok {
				d.assign(s, p, last.Job, last)
			}
		}
	}

	// Serve requesters highest-credit-first. Under rule A.2 each request
	// names a desired processor — where the requesting task last ran — and
	// the grant is task-targeted, but only when that processor is not
	// doing useful work (unassigned or willing to yield): affinity never
	// justifies preempting an active task, which is the consideration the
	// paper notes limits affinity's influence on the Dynamic discipline.
	// Remaining demand is served with the least valuable processor via
	// rules D.1, D.2 and D.3, and the job's runtime picks a task.
	for _, j := range s.Requesters() {
		desired := 0
		for s.Demand[j] > s.Alloc[j] {
			granted := false
			if d.affinity {
				for desired < len(s.Desired[j]) {
					dp := s.Desired[j][desired]
					desired++
					if dp.Proc >= 0 && idleAvailable(s, dp.Proc) && s.ProcJob[dp.Proc] != j {
						d.assign(s, dp.Proc, j, dp.Task)
						granted = true
						break
					}
				}
			}
			if granted {
				continue
			}
			p := d.takeProcessor(s, j, -1)
			if p < 0 {
				break
			}
			d.assign(s, p, j, alloc.NoTask)
		}
	}
	return d.decs
}

// idleAvailable reports whether a processor may be taken without preempting
// useful work: it is unassigned or marked willing to yield.
func idleAvailable(s *alloc.State, p int) bool {
	return s.ProcJob[p] == -1 || s.ProcYield[p]
}

// takeProcessor selects the least valuable available processor for job j,
// preferring the desired processor 'want' (-1 for none) when it is in the
// supply. It returns -1 when no processor may be taken.
func (d *dynamicCore) takeProcessor(s *alloc.State, j, want int) int {
	pick := func(supply []int) int {
		if len(supply) == 0 {
			return -1
		}
		for _, p := range supply {
			if p == want {
				return p
			}
		}
		d.cursor++
		return supply[d.cursor%len(supply)]
	}
	// D.1: unassigned processors.
	if p := pick(s.UnassignedProcs()); p >= 0 {
		return p
	}
	// D.2: willing-to-yield processors of other jobs.
	yield := d.yieldScratch[:0]
	for _, p := range s.YieldingProcs() {
		if s.ProcJob[p] != j {
			yield = append(yield, p)
		}
	}
	d.yieldScratch = yield
	if p := pick(yield); p >= 0 {
		return p
	}
	// D.3: equitable-allocation preemption. A requester holding
	// substantially more credit than the victim — accrued by using few
	// processors earlier, e.g. through sequential phases — may spend it to
	// acquire temporarily more than its fair share, down to a floor of
	// half the victim's fair share: the McCann scheme's credit-spending
	// behaviour. Without surplus credit, preemption stops once allocations
	// are within one processor of each other.
	if !d.priority {
		return -1
	}
	victim := s.LargestAllocJob(j)
	if victim < 0 {
		return -1
	}
	switch {
	case s.Credit[j] < s.Credit[victim]:
		// Preempting from a higher-priority job would undo its
		// legitimate credit spending and ping-pong processors.
		return -1
	case s.Credit[j] > s.Credit[victim]+creditSpendThreshold:
		floor := int(s.FairShare() / 2)
		if floor < 1 {
			floor = 1
		}
		if s.Alloc[victim] <= floor {
			return -1
		}
	default:
		if s.Alloc[victim] <= s.Alloc[j]+1 {
			return -1
		}
	}
	victimProcs := s.ProcsOf(victim)
	if len(victimProcs) == 0 {
		return -1
	}
	if p := pick(victimProcs); p >= 0 {
		return p
	}
	return victimProcs[0]
}

// NewDynamic returns the basic Dynamic policy (McCann et al.): maximal
// reallocation, no affinity consideration.
func NewDynamic() alloc.Policy {
	return &dynamicCore{name: "Dynamic", priority: true}
}

// NewDynAff returns Dynamic with affinity rules A.1 and A.2, subordinate to
// the priority scheme.
func NewDynAff() alloc.Policy {
	return &dynamicCore{name: "Dyn-Aff", affinity: true, priority: true}
}

// NewDynAffNoPri returns the artificial variant that sacrifices the
// priority scheme (and rule D.3's fairness preemption) to affinity. The
// paper uses it only to bound the benefit affinity scheduling could
// provide; it is not suggested for real systems.
func NewDynAffNoPri() alloc.Policy {
	return &dynamicCore{name: "Dyn-Aff-NoPri", affinity: true, priority: false}
}

// NewDynAffDelay returns Dyn-Aff with the default yield delay.
func NewDynAffDelay() alloc.Policy {
	return NewDynAffDelayD(DefaultYieldDelay)
}

// NewDynAffDelayD returns Dyn-Aff with a specific yield delay.
func NewDynAffDelayD(delay simtime.Duration) alloc.Policy {
	return &dynamicCore{name: "Dyn-Aff-Delay", affinity: true, priority: true, yieldDelay: delay}
}

// TimeShare is the quantum-driven round-robin baseline: on every quantum
// expiry, processors are redistributed round-robin over the active jobs,
// rotating the starting job so that tasks migrate — the behaviour whose
// poor cache characteristics Section 8 contrasts with space sharing.
//
// The affinity variant models the discipline studied by Squillante &
// Lazowska (whose conclusions the paper's Section 8.2 contrasts): the same
// quantum-driven rotation, but when a job's turn returns to a processor,
// the task that last ran there is resumed. Because the rotation is cyclic,
// a job revisits the same processors and affinity pays off far more than
// under space sharing — reproducing why time-sharing studies found affinity
// so much more important.
type TimeShare struct {
	quantum  simtime.Duration
	rotation int
	affinity bool
	decs     []alloc.Decision // reused decision buffer (see Rebalance)
}

// NewTimeShare returns a time-sharing baseline with the given quantum
// (DefaultQuantum if q <= 0).
func NewTimeShare(q simtime.Duration) *TimeShare {
	if q <= 0 {
		q = DefaultQuantum
	}
	return &TimeShare{quantum: q}
}

// NewTimeShareAff returns the affinity-aware time-sharing variant.
func NewTimeShareAff(q simtime.Duration) *TimeShare {
	t := NewTimeShare(q)
	t.affinity = true
	return t
}

// Name implements alloc.Policy.
func (t *TimeShare) Name() string {
	if t.affinity {
		return "TimeShare-Aff"
	}
	return "TimeShare-RR"
}

// YieldDelay implements alloc.Policy.
func (*TimeShare) YieldDelay() simtime.Duration { return 0 }

// Quantum implements alloc.Policy.
func (t *TimeShare) Quantum() simtime.Duration { return t.quantum }

// PrefersAffinity implements alloc.Policy.
func (t *TimeShare) PrefersAffinity() bool { return t.affinity }

// Rebalance implements alloc.Policy. Arrivals, completions and quantum
// expiries redistribute all processors round-robin; the rotation advances
// each quantum so allocations (and therefore tasks) move between
// processors. The returned slice is a buffer owned by the policy, valid
// until the next Rebalance call.
func (t *TimeShare) Rebalance(s *alloc.State, trig alloc.Trigger, arg int) []alloc.Decision {
	switch trig {
	case alloc.TrigArrival, alloc.TrigCompletion, alloc.TrigQuantum:
	default:
		return nil
	}
	t.decs = t.decs[:0]
	jobs := s.ActiveJobs()
	if len(jobs) == 0 {
		for p, j := range s.ProcJob {
			if j != -1 {
				t.decs = append(t.decs, alloc.Decision{Proc: p, Job: -1})
				s.Assign(p, -1)
			}
		}
		return t.decs
	}
	if trig == alloc.TrigQuantum {
		t.rotation++
	}
	for p := 0; p < s.Procs; p++ {
		j := jobs[(p+t.rotation)%len(jobs)]
		if s.ProcJob[p] != j {
			t.decs = append(t.decs, alloc.Decision{Proc: p, Job: j})
			s.Assign(p, j)
		}
	}
	return t.decs
}

// All returns one fresh instance of every policy the paper evaluates, in
// presentation order.
func All() []alloc.Policy {
	return []alloc.Policy{
		NewEquipartition(),
		NewDynamic(),
		NewDynAff(),
		NewDynAffDelay(),
		NewDynAffNoPri(),
	}
}

// PolicyNames lists the canonical names ByName accepts (lowercase
// aliases excluded), in presentation order — the space-sharing policies
// of Sections 5-6 followed by the Section-8 time-sharing pair.
func PolicyNames() []string {
	return []string{
		"Equipartition",
		"Dynamic",
		"Dyn-Aff",
		"Dyn-Aff-Delay",
		"Dyn-Aff-NoPri",
		"TimeShare-RR",
		"TimeShare-Aff",
	}
}

// ByName constructs a policy by its paper name.
func ByName(name string) (alloc.Policy, bool) {
	switch name {
	case "Equipartition", "equi":
		return NewEquipartition(), true
	case "Dynamic", "dynamic":
		return NewDynamic(), true
	case "Dyn-Aff", "dynaff":
		return NewDynAff(), true
	case "Dyn-Aff-NoPri", "dynaffnopri":
		return NewDynAffNoPri(), true
	case "Dyn-Aff-Delay", "dynaffdelay":
		return NewDynAffDelay(), true
	case "TimeShare-RR", "timeshare":
		return NewTimeShare(0), true
	case "TimeShare-Aff", "timeshareaff":
		return NewTimeShareAff(0), true
	}
	return nil, false
}
