package cachemodel

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/memtrace"
	"repro/internal/simtime"
)

func symCfg() cache.Config { return cache.SymmetryConfig() }

func TestNewValidation(t *testing.T) {
	if _, err := NewFootprint(0, 4096); err == nil {
		t.Error("zero procs accepted (footprint)")
	}
	if _, err := NewExact(0, symCfg(), 1); err == nil {
		t.Error("zero procs accepted (exact)")
	}
	if _, err := NewExact(2, cache.Config{}, 1); err == nil {
		t.Error("bad cache config accepted")
	}
	if _, err := New(Kind(99), 2, symCfg(), 1); err == nil {
		t.Error("unknown kind accepted")
	}
}

// An unknown-kind error must name the valid kinds: the message reaches CLI
// users via config validation, and a bare integer gives them nothing to fix.
func TestNewUnknownKindNamesValid(t *testing.T) {
	_, err := New(Kind(99), 2, symCfg(), 1)
	if err == nil {
		t.Fatal("unknown kind accepted")
	}
	for _, want := range []string{"footprint", "exact", "exact-naive", "99"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindFootprint.String() != "footprint" || KindExact.String() != "exact" {
		t.Error("kind names wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind empty")
	}
}

func TestNewDispatch(t *testing.T) {
	for _, k := range []Kind{KindFootprint, KindExact} {
		m, err := New(k, 2, symCfg(), 1)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if m.Name() != k.String() {
			t.Errorf("Name = %q for kind %v", m.Name(), k)
		}
	}
}

// Shared behavioural contract for both models.
func testModelContract(t *testing.T, m Model) {
	t.Helper()
	pat := memtrace.MVAPattern()
	const proc, task = 0, 1
	w := 200 * simtime.Millisecond

	if got := m.Resident(proc, task); got != 0 {
		t.Fatalf("initial residency = %v", got)
	}
	// Plan must not change state: two identical plans agree, and
	// residency is untouched.
	p1 := m.Plan(proc, task, &pat, 0, w, 0)
	p2 := m.Plan(proc, task, &pat, 0, w, 0)
	if p1 != p2 {
		t.Fatalf("Plan is not repeatable: %v vs %v", p1, p2)
	}
	if p1 <= 0 {
		t.Fatalf("cold plan = %v, want positive", p1)
	}
	if got := m.Resident(proc, task); got != 0 {
		t.Fatalf("Plan changed residency to %v", got)
	}
	// Full-segment commit equals the plan and installs lines.
	c1 := m.Commit(proc, task, &pat, 0, w, 0)
	if math.Abs(c1-p1) > 1e-9 {
		t.Fatalf("Commit %v != Plan %v for identical interval", c1, p1)
	}
	if got := m.Resident(proc, task); got <= 0 {
		t.Fatalf("residency after commit = %v", got)
	}
	// A second, warm interval misses less.
	p3 := m.Plan(proc, task, &pat, w, w, m.Resident(proc, task))
	if p3 >= p1 {
		t.Fatalf("warm plan %v not below cold plan %v", p3, p1)
	}
	// Zero-length intervals are free.
	if got := m.Plan(proc, task, &pat, 0, 0, 0); got != 0 {
		t.Fatalf("zero-length plan = %v", got)
	}
	if got := m.Commit(proc, task, &pat, 0, 0, 0); got != 0 {
		t.Fatalf("zero-length commit = %v", got)
	}
}

func TestFootprintContract(t *testing.T) {
	m, err := NewFootprint(2, symCfg().Lines())
	if err != nil {
		t.Fatal(err)
	}
	testModelContract(t, m)
}

func TestExactContract(t *testing.T) {
	m, err := NewExact(2, symCfg(), 7)
	if err != nil {
		t.Fatal(err)
	}
	testModelContract(t, m)
}

func TestExactIntervention(t *testing.T) {
	// An intervening task on the same processor raises the original
	// task's reload misses — the P^A effect — under the exact model.
	m, _ := NewExact(1, symCfg(), 3)
	mva := memtrace.MVAPattern()
	mat := memtrace.MatrixPattern()
	const proc = 0
	warm := simtime.Second
	q := 200 * simtime.Millisecond

	m.Commit(proc, 1, &mva, 0, warm, 0)
	baseline := m.Plan(proc, 1, &mva, warm, q, 0)
	m.Commit(proc, 2, &mat, 0, q, 0) // intervening task pollutes the cache
	disturbed := m.Plan(proc, 1, &mva, warm, q, 0)
	if disturbed <= baseline {
		t.Errorf("intervening task did not raise reload misses: %v vs %v", disturbed, baseline)
	}
}

func TestExactProcessorsIndependent(t *testing.T) {
	m, _ := NewExact(2, symCfg(), 3)
	pat := memtrace.GravityPattern()
	m.Commit(0, 1, &pat, 0, 500*simtime.Millisecond, 0)
	if got := m.Resident(1, 1); got != 0 {
		t.Errorf("running on proc 0 left %v lines on proc 1", got)
	}
	if got := m.Resident(0, 1); got <= 0 {
		t.Errorf("no residency on the processor that ran: %v", got)
	}
}

func TestExactDeterministicStreams(t *testing.T) {
	a, _ := NewExact(1, symCfg(), 9)
	b, _ := NewExact(1, symCfg(), 9)
	pat := memtrace.MatrixPattern()
	for i := 0; i < 5; i++ {
		ca := a.Commit(0, 3, &pat, 0, 100*simtime.Millisecond, 0)
		cb := b.Commit(0, 3, &pat, 0, 100*simtime.Millisecond, 0)
		if ca != cb {
			t.Fatalf("same-seed exact models diverged at segment %d", i)
		}
	}
}

// The calibration link: for a cold long segment the footprint plan should
// be within a modest factor of the exact plan.
func TestModelsAgreeOnColdSegment(t *testing.T) {
	fpm, _ := NewFootprint(1, symCfg().Lines())
	exm, _ := NewExact(1, symCfg(), 5)
	for _, pat := range memtrace.Patterns() {
		w := 300 * simtime.Millisecond
		fp := fpm.Plan(0, 1, &pat, 0, w, 0)
		ex := exm.Plan(0, 1, &pat, 0, w, 0)
		if ex == 0 {
			t.Fatalf("%s: exact plan zero", pat.Name)
		}
		ratio := fp / ex
		if ratio < 0.6 || ratio > 1.7 {
			t.Errorf("%s: cold plans disagree: footprint %v vs exact %v (ratio %.2f)",
				pat.Name, fp, ex, ratio)
		}
	}
}

func TestInvalidateShared(t *testing.T) {
	for _, k := range []Kind{KindFootprint, KindExact} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			m, err := New(k, 3, symCfg(), 1)
			if err != nil {
				t.Fatal(err)
			}
			pat := memtrace.MVAPattern()
			// Tasks 1 and 2 build footprints on procs 0 and 1.
			m.Commit(0, 1, &pat, 0, 500*simtime.Millisecond, 0)
			m.Commit(1, 2, &pat, 0, 500*simtime.Millisecond, 0)
			r1, r2 := m.Resident(0, 1), m.Resident(1, 2)
			// Task 1 (on proc 0) writes 100 shared lines: task 2's copies
			// on proc 1 shrink; task 1's own lines do not.
			got := m.InvalidateShared(0, []int{2}, 100)
			if got <= 0 {
				t.Fatalf("no lines invalidated")
			}
			if m.Resident(1, 2) >= r2 {
				t.Errorf("sibling residency did not shrink: %v -> %v", r2, m.Resident(1, 2))
			}
			if m.Resident(0, 1) != r1 {
				t.Errorf("writer's own residency changed: %v -> %v", r1, m.Resident(0, 1))
			}
			// Invalidating a task with no lines anywhere is a no-op.
			if got := m.InvalidateShared(0, []int{99}, 50); got != 0 {
				t.Errorf("phantom invalidation = %v", got)
			}
		})
	}
}

func TestModelResetEquivalentToFresh(t *testing.T) {
	pat := memtrace.MVAPattern()
	for _, kind := range []Kind{KindFootprint, KindExact} {
		used, err := New(kind, 2, cache.SymmetryConfig(), 5)
		if err != nil {
			t.Fatal(err)
		}
		// Dirty the model, then reset.
		used.Commit(0, 1, &pat, 0, 50*simtime.Millisecond, 0)
		used.Commit(1, 2, &pat, 0, 30*simtime.Millisecond, 0)
		used.Reset()
		fresh, err := New(kind, 2, cache.SymmetryConfig(), 5)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range []Model{used, fresh} {
			m.Commit(0, 1, &pat, 0, 40*simtime.Millisecond, 0)
		}
		if got, want := used.Resident(0, 1), fresh.Resident(0, 1); got != want {
			t.Errorf("%s: reset model residency %v, fresh %v", used.Name(), got, want)
		}
		if got := used.Resident(1, 2); got != 0 {
			t.Errorf("%s: residency survived Reset: %v", used.Name(), got)
		}
	}
}
