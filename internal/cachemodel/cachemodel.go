// Package cachemodel abstracts per-processor cache behaviour for the
// discrete-event scheduler, with two interchangeable implementations:
//
//   - Footprint: the fast analytic occupancy model (internal/footprint)
//     used for the paper-scale experiments; and
//   - Exact: a reference implementation that replays every task's actual
//     memory reference stream (internal/memtrace) through the exact
//     set-associative simulator (internal/cache).
//
// The exact model is orders of magnitude slower and exists to validate the
// analytic one at the whole-system level: running the same scheduling
// experiment under both must produce the same qualitative conclusions (see
// the sched package's cross-model tests and BenchmarkAblationExactEngine).
//
// # Plan/commit protocol
//
// The scheduler plans a whole execution segment up front (it needs the miss
// count to schedule the completion event), but a segment may be cut short
// by preemption. The Model interface therefore splits segment processing:
// Plan estimates the misses of a prospective compute interval without
// changing state; Commit applies the prefix that actually executed.
// Because per-processor caches are touched by exactly one task at a time,
// planning on cloned state and committing on real state is exact: no other
// task can interleave between a task's Plan and its Commit on the same
// processor.
package cachemodel

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/footprint"
	"repro/internal/memtrace"
	"repro/internal/simtime"
)

// Model is the scheduler's view of the per-processor caches.
type Model interface {
	// Resident returns (an estimate of) the number of cache lines task
	// has resident on proc.
	Resident(proc, task int) float64
	// Plan estimates the misses incurred if task executed the compute
	// interval [c0, c0+w) of its current dispatch on proc, where r0 was
	// its residency when the dispatch began. Plan must not change state.
	// The pattern is passed by pointer so the per-event call converts to
	// the footprint.Profile interface without heap-allocating a copy.
	Plan(proc, task int, pat *memtrace.Pattern, c0, w simtime.Duration, r0 float64) float64
	// Commit records that task actually executed [c0, c0+w) on proc and
	// returns the misses incurred. For a full segment (same arguments as
	// the preceding Plan) the result equals the plan.
	Commit(proc, task int, pat *memtrace.Pattern, c0, w simtime.Duration, r0 float64) float64
	// InvalidateShared models coherency traffic: a task on fromProc wrote
	// 'lines' job-shared lines, invalidating any copies the sibling tasks
	// (by id) hold on OTHER processors. It returns the total lines
	// invalidated.
	InvalidateShared(fromProc int, siblings []int, lines float64) float64
	// Reset empties every per-processor cache (cold start) while retaining
	// allocated capacity, so one model instance can serve many simulation
	// runs. A reset model is indistinguishable from a freshly built one.
	Reset()
	// Name identifies the model for reports.
	Name() string
}

// Footprint is the analytic occupancy model (the default).
type Footprint struct {
	procs []*footprint.Cache
}

// NewFootprint builds the analytic model for nprocs processors with caches
// of the given capacity.
func NewFootprint(nprocs, capacityLines int) (*Footprint, error) {
	if nprocs <= 0 {
		return nil, fmt.Errorf("cachemodel: need at least one processor")
	}
	f := &Footprint{}
	for i := 0; i < nprocs; i++ {
		fc, err := footprint.New(capacityLines)
		if err != nil {
			return nil, err
		}
		f.procs = append(f.procs, fc)
	}
	return f, nil
}

// Name implements Model.
func (f *Footprint) Name() string { return "footprint" }

// Reset implements Model.
func (f *Footprint) Reset() {
	for _, fc := range f.procs {
		fc.Reset()
	}
}

// Resident implements Model.
func (f *Footprint) Resident(proc, task int) float64 {
	return f.procs[proc].Resident(task)
}

// Plan implements Model.
func (f *Footprint) Plan(proc, task int, pat *memtrace.Pattern, c0, w simtime.Duration, r0 float64) float64 {
	return footprint.Segment(pat, c0, c0+w, r0)
}

// Commit implements Model.
func (f *Footprint) Commit(proc, task int, pat *memtrace.Pattern, c0, w simtime.Duration, r0 float64) float64 {
	return f.procs[proc].RunSegment(task, pat, c0, c0+w, r0)
}

// InvalidateShared implements Model.
func (f *Footprint) InvalidateShared(fromProc int, siblings []int, lines float64) float64 {
	total := 0.0
	for p, fc := range f.procs {
		if p == fromProc {
			continue
		}
		for _, sib := range siblings {
			total += fc.Invalidate(sib, lines)
		}
	}
	return total
}

// Exact replays actual reference streams through exact per-processor
// caches. Each task owns a deterministic trace generator whose position
// advances exactly with the compute the scheduler commits.
type Exact struct {
	cfg   cache.Config
	procs []*cache.Cache
	gens  map[int]*memtrace.Generator // task gid -> its stream
	seed  uint64
}

// NewExact builds the exact model for nprocs processors with the given
// cache geometry. seed fixes all trace streams.
func NewExact(nprocs int, cfg cache.Config, seed uint64) (*Exact, error) {
	if nprocs <= 0 {
		return nil, fmt.Errorf("cachemodel: need at least one processor")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Exact{cfg: cfg, gens: make(map[int]*memtrace.Generator), seed: seed}
	for i := 0; i < nprocs; i++ {
		e.procs = append(e.procs, cache.MustNew(cfg))
	}
	return e, nil
}

// Name implements Model.
func (e *Exact) Name() string { return "exact" }

// Reset implements Model: caches are flushed and every task's reference
// stream restarts from its seed, exactly as on first use.
func (e *Exact) Reset() {
	for _, c := range e.procs {
		c.Flush()
	}
	clear(e.gens)
}

// gen returns (creating on first use) task's reference stream. Tasks get
// disjoint address spaces and decorrelated seeds.
func (e *Exact) gen(task int, pat *memtrace.Pattern) *memtrace.Generator {
	if g, ok := e.gens[task]; ok {
		return g
	}
	base := uint64(task+1) << 32
	g := memtrace.NewGenerator(*pat, base, e.seed^uint64(task)*0x9e3779b97f4a7c15)
	e.gens[task] = g
	return g
}

// Resident implements Model.
func (e *Exact) Resident(proc, task int) float64 {
	return float64(e.procs[proc].Resident(task))
}

// replay drives g for w of compute against c, counting misses.
func replay(c *cache.Cache, g *memtrace.Generator, owner int, w simtime.Duration) float64 {
	misses := 0
	start := g.Elapsed()
	for g.Elapsed()-start < w {
		addr, _ := g.Next()
		if !c.Access(owner, addr) {
			misses++
		}
	}
	return float64(misses)
}

// Plan implements Model: it replays the prospective interval on cloned
// cache and stream state.
func (e *Exact) Plan(proc, task int, pat *memtrace.Pattern, c0, w simtime.Duration, r0 float64) float64 {
	if w <= 0 {
		return 0
	}
	cc := e.procs[proc].Clone()
	gg := e.gen(task, pat).Clone()
	return replay(cc, gg, task, w)
}

// Commit implements Model: it replays the executed interval on the real
// cache and stream.
func (e *Exact) Commit(proc, task int, pat *memtrace.Pattern, c0, w simtime.Duration, r0 float64) float64 {
	if w <= 0 {
		return 0
	}
	return replay(e.procs[proc], e.gen(task, pat), task, w)
}

// InvalidateShared implements Model.
func (e *Exact) InvalidateShared(fromProc int, siblings []int, lines float64) float64 {
	n := int(lines + 0.5)
	total := 0
	for p, c := range e.procs {
		if p == fromProc {
			continue
		}
		for _, sib := range siblings {
			total += c.InvalidateN(sib, n)
		}
	}
	return float64(total)
}

// Kind selects a model implementation in configuration structs.
type Kind int

// Available model kinds.
const (
	// KindFootprint is the fast analytic model (default).
	KindFootprint Kind = iota
	// KindExact replays full reference streams; orders of magnitude
	// slower, for validation.
	KindExact
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindFootprint:
		return "footprint"
	case KindExact:
		return "exact"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// New constructs a model of the given kind.
func New(k Kind, nprocs int, cfg cache.Config, seed uint64) (Model, error) {
	switch k {
	case KindFootprint:
		return NewFootprint(nprocs, cfg.Lines())
	case KindExact:
		return NewExact(nprocs, cfg, seed)
	}
	return nil, fmt.Errorf("cachemodel: unknown kind %d", int(k))
}
