// Package cachemodel abstracts per-processor cache behaviour for the
// discrete-event scheduler, with interchangeable implementations:
//
//   - Footprint: the fast analytic occupancy model (internal/footprint)
//     used for the paper-scale experiments;
//   - Exact: a reference implementation that replays every task's actual
//     memory reference stream (internal/memtrace) through the exact
//     set-associative simulator (internal/cache); and
//   - ExactNaive: the same exact model driven through the original
//     clone-and-replay-twice protocol, retained as the test oracle the
//     fast single-replay path is held bitwise equal to.
//
// The exact model is orders of magnitude slower than the analytic one and
// exists to validate it at the whole-system level: running the same
// scheduling experiment under both must produce the same qualitative
// conclusions (see the sched package's cross-model tests and
// BenchmarkAblationExactEngine).
//
// # Plan/commit protocol
//
// The scheduler plans a whole execution segment up front (it needs the miss
// count to schedule the completion event), but a segment may be cut short
// by preemption. The Model interface therefore splits segment processing:
// Plan estimates the misses of a prospective compute interval without
// observably changing state; Commit applies the prefix that actually
// executed. Because per-processor caches are touched by exactly one task at
// a time, no other task can interleave cache accesses between a task's Plan
// and its Commit on the same processor.
//
// The fast exact model exploits that: Plan replays the segment ONCE against
// the live cache under an undo journal (cache.BeginJournal) after saving the
// generator position (memtrace.Mark), and parks the result as a pending
// plan. When Commit then confirms the full segment — the common case — the
// journal is kept (cache.CommitJournal) and the recorded miss count is
// returned with no second replay and no clone. When the segment is cut
// short (preemption), or the planned state is disturbed before commit (a
// sibling's coherency invalidation, a Resident query, a re-Plan), the
// pending plan is resolved: the journal rolls back and the generator
// restores, leaving exactly the state the naive protocol would have, and
// Commit replays the actual prefix live. Differential tests and a fuzz
// target drive Exact and ExactNaive through identical call sequences and
// require bitwise-equal results.
package cachemodel

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/footprint"
	"repro/internal/memtrace"
	"repro/internal/simtime"
)

// Model is the scheduler's view of the per-processor caches.
type Model interface {
	// Resident returns (an estimate of) the number of cache lines task
	// has resident on proc.
	Resident(proc, task int) float64
	// Plan estimates the misses incurred if task executed the compute
	// interval [c0, c0+w) of its current dispatch on proc, where r0 was
	// its residency when the dispatch began. Plan must not observably
	// change state. The pattern is passed by pointer so the per-event
	// call converts to the footprint.Profile interface without
	// heap-allocating a copy.
	Plan(proc, task int, pat *memtrace.Pattern, c0, w simtime.Duration, r0 float64) float64
	// Commit records that task actually executed [c0, c0+w) on proc and
	// returns the misses incurred. For a full segment (same arguments as
	// the preceding Plan) the result equals the plan.
	Commit(proc, task int, pat *memtrace.Pattern, c0, w simtime.Duration, r0 float64) float64
	// InvalidateShared models coherency traffic: a task on fromProc wrote
	// 'lines' job-shared lines, invalidating any copies the sibling tasks
	// (by id) hold on OTHER processors. It returns the total lines
	// invalidated.
	InvalidateShared(fromProc int, siblings []int, lines float64) float64
	// Reset empties every per-processor cache (cold start) while retaining
	// allocated capacity, so one model instance can serve many simulation
	// runs. A reset model is indistinguishable from a freshly built one.
	Reset()
	// Stats returns cumulative operation counters since construction or
	// the last Reset. Only protocol-invariant quantities are counted
	// (call counts and returned invalidation totals, never journal or
	// rollback internals), so the exact model's fast and naive protocols
	// report identical Stats for identical call sequences.
	Stats() Stats
	// Name identifies the model for reports.
	Name() string
}

// Stats are a cache model's cumulative operation counters. All fields
// are deterministic functions of the call sequence the scheduler drives,
// independent of the model's internal protocol.
type Stats struct {
	Plans      uint64  // Plan calls
	Commits    uint64  // Commit calls
	Flushes    uint64  // InvalidateShared sweeps (coherency invalidation ops)
	InvalLines float64 // total lines invalidated by those sweeps
}

// Footprint is the analytic occupancy model (the default).
type Footprint struct {
	procs []*footprint.Cache
	stats Stats
}

// NewFootprint builds the analytic model for nprocs processors with caches
// of the given capacity.
func NewFootprint(nprocs, capacityLines int) (*Footprint, error) {
	if nprocs <= 0 {
		return nil, fmt.Errorf("cachemodel: need at least one processor")
	}
	f := &Footprint{}
	for i := 0; i < nprocs; i++ {
		fc, err := footprint.New(capacityLines)
		if err != nil {
			return nil, err
		}
		f.procs = append(f.procs, fc)
	}
	return f, nil
}

// Name implements Model.
func (f *Footprint) Name() string { return "footprint" }

// Reset implements Model.
func (f *Footprint) Reset() {
	for _, fc := range f.procs {
		fc.Reset()
	}
	f.stats = Stats{}
}

// Stats implements Model.
func (f *Footprint) Stats() Stats { return f.stats }

// Resident implements Model.
func (f *Footprint) Resident(proc, task int) float64 {
	return f.procs[proc].Resident(task)
}

// Plan implements Model.
func (f *Footprint) Plan(proc, task int, pat *memtrace.Pattern, c0, w simtime.Duration, r0 float64) float64 {
	f.stats.Plans++
	return footprint.Segment(pat, c0, c0+w, r0)
}

// Commit implements Model.
func (f *Footprint) Commit(proc, task int, pat *memtrace.Pattern, c0, w simtime.Duration, r0 float64) float64 {
	f.stats.Commits++
	return f.procs[proc].RunSegment(task, pat, c0, c0+w, r0)
}

// InvalidateShared implements Model.
func (f *Footprint) InvalidateShared(fromProc int, siblings []int, lines float64) float64 {
	total := 0.0
	for p, fc := range f.procs {
		if p == fromProc {
			continue
		}
		for _, sib := range siblings {
			total += fc.Invalidate(sib, lines)
		}
	}
	f.stats.Flushes++
	f.stats.InvalLines += total
	return total
}

// pendingPlan holds one processor's speculative segment between Plan and
// Commit: the planned miss count, the generator position before the replay
// (for rollback), and the segment identity Commit must match to keep it.
type pendingPlan struct {
	active bool
	task   int
	w      simtime.Duration
	misses float64
	mark   memtrace.Mark
}

// Exact replays actual reference streams through exact per-processor
// caches. Each task owns a deterministic trace generator whose position
// advances exactly with the compute the scheduler commits.
type Exact struct {
	cfg   cache.Config
	procs []*cache.Cache
	gens  map[int]*memtrace.Generator // task gid -> its stream
	seed  uint64
	pend  []pendingPlan // per-processor speculative segment
	naive bool          // clone-and-replay-twice oracle protocol
	stats Stats
}

// NewExact builds the exact model for nprocs processors with the given
// cache geometry. seed fixes all trace streams.
func NewExact(nprocs int, cfg cache.Config, seed uint64) (*Exact, error) {
	if nprocs <= 0 {
		return nil, fmt.Errorf("cachemodel: need at least one processor")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Exact{cfg: cfg, gens: make(map[int]*memtrace.Generator), seed: seed,
		pend: make([]pendingPlan, nprocs)}
	for i := 0; i < nprocs; i++ {
		e.procs = append(e.procs, cache.MustNew(cfg))
	}
	return e, nil
}

// NewExactNaive builds the exact model locked to the original
// clone-and-replay-twice protocol. It is the oracle the single-replay fast
// path is differentially tested against; production runs should never use
// it.
func NewExactNaive(nprocs int, cfg cache.Config, seed uint64) (*Exact, error) {
	e, err := NewExact(nprocs, cfg, seed)
	if err != nil {
		return nil, err
	}
	e.naive = true
	return e, nil
}

// Name implements Model.
func (e *Exact) Name() string {
	if e.naive {
		return "exact-naive"
	}
	return "exact"
}

// Reset implements Model: caches are flushed and every task's reference
// stream restarts from its seed, exactly as on first use.
func (e *Exact) Reset() {
	for p := range e.procs {
		e.resolve(p)
		e.procs[p].Flush()
	}
	clear(e.gens)
	e.stats = Stats{}
}

// Stats implements Model.
func (e *Exact) Stats() Stats { return e.stats }

// gen returns (creating on first use) task's reference stream. Tasks get
// disjoint address spaces and decorrelated seeds.
func (e *Exact) gen(task int, pat *memtrace.Pattern) *memtrace.Generator {
	if g, ok := e.gens[task]; ok {
		return g
	}
	base := uint64(task+1) << 32
	g := memtrace.NewGenerator(*pat, base, e.seed^uint64(task)*0x9e3779b97f4a7c15)
	e.gens[task] = g
	return g
}

// resolve abandons proc's pending plan, if any: the cache journal rolls
// back and the task's generator restores to its pre-Plan position, leaving
// exactly the state the naive protocol would have at the same point.
func (e *Exact) resolve(proc int) {
	p := &e.pend[proc]
	if !p.active {
		return
	}
	p.active = false
	e.procs[proc].Rollback()
	e.gens[p.task].Restore(&p.mark)
}

// Resident implements Model.
func (e *Exact) Resident(proc, task int) float64 {
	// A pending plan's speculative lines must not leak into residency
	// queries (the naive protocol's Plan leaves no trace). The scheduler
	// only queries an idle processor, so this resolve never fires there;
	// it keeps direct Model users and the differential tests exact.
	e.resolve(proc)
	return float64(e.procs[proc].Resident(task))
}

// replayBlock is the address-batch size for replay: large enough to
// amortize generator bookkeeping, small enough to stay on the stack.
const replayBlock = 256

// replay drives owner's stream g for w of compute against c, counting
// misses. The reference count of an interval is deterministic (one
// reference per think-time gap), so the stream is generated in blocks.
func replay(c *cache.Cache, g *memtrace.Generator, owner int, w simtime.Duration) float64 {
	n := g.RefsFor(w)
	misses := 0
	var buf [replayBlock]uint64
	for n > 0 {
		k := n
		if k > replayBlock {
			k = replayBlock
		}
		blk := buf[:k]
		g.FillBlock(blk)
		for _, addr := range blk {
			if !c.Access(owner, addr) {
				misses++
			}
		}
		n -= k
	}
	return float64(misses)
}

// Plan implements Model. The fast path replays the prospective interval
// once on the live cache under an undo journal and parks the result as the
// processor's pending plan; in naive (oracle) mode it replays on cloned
// cache and stream state instead.
func (e *Exact) Plan(proc, task int, pat *memtrace.Pattern, c0, w simtime.Duration, r0 float64) float64 {
	e.stats.Plans++
	if w <= 0 {
		return 0
	}
	if e.naive {
		cc := e.procs[proc].Clone()
		gg := e.gen(task, pat).Clone()
		return replay(cc, gg, task, w)
	}
	e.resolve(proc)
	g := e.gen(task, pat)
	p := &e.pend[proc]
	g.Save(&p.mark)
	c := e.procs[proc]
	c.BeginJournal()
	m := replay(c, g, task, w)
	p.active = true
	p.task = task
	p.w = w
	p.misses = m
	return m
}

// Commit implements Model. When the committed segment matches the pending
// plan — the common, full-segment case — the journaled replay becomes real
// at no cost. Otherwise (preemption truncated the segment, or the plan was
// already resolved) the executed prefix replays live.
func (e *Exact) Commit(proc, task int, pat *memtrace.Pattern, c0, w simtime.Duration, r0 float64) float64 {
	e.stats.Commits++
	if e.naive {
		if w <= 0 {
			return 0
		}
		return replay(e.procs[proc], e.gen(task, pat), task, w)
	}
	if w <= 0 {
		e.resolve(proc)
		return 0
	}
	p := &e.pend[proc]
	if p.active && p.task == task && p.w == w {
		p.active = false
		e.procs[proc].CommitJournal()
		return p.misses
	}
	e.resolve(proc)
	return replay(e.procs[proc], e.gen(task, pat), task, w)
}

// InvalidateShared implements Model. A sibling's write can land between a
// processor's Plan and Commit; the journaled speculative state must not
// absorb it. Any target with lines to lose first resolves its pending plan
// so the invalidation applies to the same pre-replay state the naive
// protocol would mutate. Targets provably clean in both the speculative and
// rolled-back state skip both the resolve and the scan.
func (e *Exact) InvalidateShared(fromProc int, siblings []int, lines float64) float64 {
	n := int(lines + 0.5)
	total := 0
	for p, c := range e.procs {
		if p == fromProc {
			continue
		}
		for _, sib := range siblings {
			if !e.naive && c.Resident(sib) == 0 && c.ResidentAtJournalStart(sib) == 0 {
				continue
			}
			e.resolve(p)
			total += c.InvalidateN(sib, n)
		}
	}
	e.stats.Flushes++
	e.stats.InvalLines += float64(total)
	return float64(total)
}

// Kind selects a model implementation in configuration structs.
type Kind int

// Available model kinds.
const (
	// KindFootprint is the fast analytic model (default).
	KindFootprint Kind = iota
	// KindExact replays full reference streams; orders of magnitude
	// slower than footprint, for validation.
	KindExact
	// KindExactNaive is KindExact driven through the original
	// clone-and-replay-twice protocol; the differential-test oracle.
	KindExactNaive
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindFootprint:
		return "footprint"
	case KindExact:
		return "exact"
	case KindExactNaive:
		return "exact-naive"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// New constructs a model of the given kind.
func New(k Kind, nprocs int, cfg cache.Config, seed uint64) (Model, error) {
	switch k {
	case KindFootprint:
		return NewFootprint(nprocs, cfg.Lines())
	case KindExact:
		return NewExact(nprocs, cfg, seed)
	case KindExactNaive:
		return NewExactNaive(nprocs, cfg, seed)
	}
	return nil, fmt.Errorf("cachemodel: unknown kind %d (valid: %s, %s, %s)",
		int(k), KindFootprint, KindExact, KindExactNaive)
}
