package cachemodel

import (
	"testing"
	"testing/quick"

	"repro/internal/memtrace"
	"repro/internal/simtime"
	"repro/internal/xrand"
)

// protoPatterns fixes each task's reference pattern for the differential
// drivers (a task's stream is created on first use and keyed by task id).
func protoPatterns() []memtrace.Pattern {
	return []memtrace.Pattern{
		memtrace.MVAPattern(),
		memtrace.MatrixPattern(),
		memtrace.GravityPattern(),
		memtrace.MVAPattern(),
	}
}

// driveBoth applies one protocol op to the fast model and the naive oracle
// and fails on any divergence in the returned values.
func driveBoth(t *testing.T, step int, fast, naive Model, op func(Model) float64) {
	t.Helper()
	got, want := op(fast), op(naive)
	if got != want {
		t.Fatalf("step %d: fast returned %v, naive oracle %v", step, got, want)
	}
}

// TestFastMatchesNaiveProtocol drives the single-replay fast path and the
// clone-and-replay-twice oracle through identical random Plan / Commit /
// partial-Commit / InvalidateShared / Resident / Reset sequences and
// requires bitwise-equal results — the whole-protocol version of the cache
// package's differential tests.
func TestFastMatchesNaiveProtocol(t *testing.T) {
	const nprocs, ntasks = 3, 4
	pats := protoPatterns()
	f := func(seed uint64) bool {
		fast, err := NewExact(nprocs, symCfg(), seed)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := NewExactNaive(nprocs, symCfg(), seed)
		if err != nil {
			t.Fatal(err)
		}
		rng := xrand.New(seed, 0x70a7)
		// planned[p] remembers the last planned (task, w) per processor so
		// the driver can commit full segments (the common case) as well as
		// truncated ones. It also enforces the scheduler invariant the fast
		// path relies on: a task runs on one processor at a time, so it is
		// never planned on a second processor while a plan for it is in
		// flight elsewhere (a pending plan advances the live stream; the
		// oracle's clone-based Plan does not).
		type plan struct {
			task int
			w    simtime.Duration
		}
		planned := make([]plan, nprocs)
		for i := range planned {
			planned[i] = plan{task: -1}
		}
		clearPlan := func(p int) { planned[p] = plan{task: -1} }
		// freeTask picks a task with no in-flight plan on a processor other
		// than p, or -1 when every task is busy.
		freeTask := func(p int) int {
			start := rng.Intn(ntasks)
			for k := 0; k < ntasks; k++ {
				task := (start + k) % ntasks
				busy := false
				for q, pl := range planned {
					if q != p && pl.task == task {
						busy = true
					}
				}
				if !busy {
					return task
				}
			}
			return -1
		}
		for step := 0; step < 250; step++ {
			p := rng.Intn(nprocs)
			w := simtime.Duration(1+rng.Intn(30)) * simtime.Millisecond
			switch rng.Intn(10) {
			case 0, 1: // plan only
				task := freeTask(p)
				if task < 0 {
					continue
				}
				pat := pats[task]
				driveBoth(t, step, fast, naive, func(m Model) float64 {
					return m.Plan(p, task, &pat, 0, w, 0)
				})
				planned[p] = plan{task: task, w: w}
			case 2, 3, 4, 5: // plan then commit the full segment
				task := freeTask(p)
				if task < 0 {
					continue
				}
				pat := pats[task]
				driveBoth(t, step, fast, naive, func(m Model) float64 {
					return m.Plan(p, task, &pat, 0, w, 0)
				})
				driveBoth(t, step, fast, naive, func(m Model) float64 {
					return m.Commit(p, task, &pat, 0, w, 0)
				})
				clearPlan(p)
			case 6: // commit a truncated or unplanned segment
				task, wc := freeTask(p), w
				if pl := planned[p]; pl.task >= 0 && rng.Intn(2) == 0 {
					task = pl.task
					wc = pl.w * simtime.Duration(rng.Intn(2)) / 2 // 0 or half
				}
				if task < 0 {
					continue
				}
				pat := pats[task]
				driveBoth(t, step, fast, naive, func(m Model) float64 {
					return m.Commit(p, task, &pat, 0, wc, 0)
				})
				clearPlan(p)
			case 7: // coherency invalidation between a sibling's plan/commit
				lines := float64(rng.Intn(200))
				sibs := []int{rng.Intn(ntasks), rng.Intn(ntasks)}
				driveBoth(t, step, fast, naive, func(m Model) float64 {
					return m.InvalidateShared(p, sibs, lines)
				})
			case 8: // residency query (resolves p's pending plan)
				task := rng.Intn(ntasks)
				driveBoth(t, step, fast, naive, func(m Model) float64 {
					return m.Resident(p, task)
				})
				clearPlan(p)
			case 9:
				if rng.Intn(10) == 0 {
					fast.Reset()
					naive.Reset()
					for i := range planned {
						clearPlan(i)
					}
				}
			}
		}
		// Final states agree everywhere.
		for p := 0; p < nprocs; p++ {
			for task := 0; task < ntasks; task++ {
				if got, want := fast.Resident(p, task), naive.Resident(p, task); got != want {
					t.Fatalf("final Resident(%d,%d): fast %v naive %v", p, task, got, want)
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// TestCommitWithoutPlanMatchesOracle pins the cold paths: a commit with no
// preceding plan, and a zero-length commit after a plan (total truncation),
// both match the oracle.
func TestCommitWithoutPlanMatchesOracle(t *testing.T) {
	pat := memtrace.MVAPattern()
	fast, _ := NewExact(1, symCfg(), 11)
	naive, _ := NewExactNaive(1, symCfg(), 11)
	w := 40 * simtime.Millisecond

	driveBoth(t, 0, fast, naive, func(m Model) float64 {
		return m.Commit(0, 1, &pat, 0, w, 0)
	})
	// Plan then commit zero work: the plan must be fully undone.
	driveBoth(t, 1, fast, naive, func(m Model) float64 {
		return m.Plan(0, 1, &pat, w, w, 0)
	})
	driveBoth(t, 2, fast, naive, func(m Model) float64 {
		return m.Commit(0, 1, &pat, w, 0, 0)
	})
	// The next full segment sees identical state in both worlds.
	driveBoth(t, 3, fast, naive, func(m Model) float64 {
		return m.Commit(0, 1, &pat, w, w, 0)
	})
}

// BenchmarkExactSegmentFast measures the exact model's per-segment cost on
// the fast single-replay path: one Plan + full-segment Commit, the
// scheduler's common case. Compare with BenchmarkExactSegmentNaive.
func BenchmarkExactSegmentFast(b *testing.B) {
	benchSegment(b, false)
}

// BenchmarkExactSegmentNaive measures the same Plan + Commit segment under
// the original clone-and-replay-twice protocol.
func BenchmarkExactSegmentNaive(b *testing.B) {
	benchSegment(b, true)
}

func benchSegment(b *testing.B, naive bool) {
	var m Model
	var err error
	if naive {
		m, err = NewExactNaive(1, symCfg(), 1)
	} else {
		m, err = NewExact(1, symCfg(), 1)
	}
	if err != nil {
		b.Fatal(err)
	}
	pat := memtrace.MVAPattern()
	w := 10 * simtime.Millisecond
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c0 := simtime.Duration(i) * w
		m.Plan(0, 1, &pat, c0, w, 0)
		m.Commit(0, 1, &pat, c0, w, 0)
	}
}

// BenchmarkExactSegmentPreempt measures the rollback path: every plan is
// truncated to half before commit.
func BenchmarkExactSegmentPreempt(b *testing.B) {
	m, err := NewExact(1, symCfg(), 1)
	if err != nil {
		b.Fatal(err)
	}
	pat := memtrace.MVAPattern()
	w := 10 * simtime.Millisecond
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c0 := simtime.Duration(i) * w
		m.Plan(0, 1, &pat, c0, w, 0)
		m.Commit(0, 1, &pat, c0, w/2, 0)
	}
}
