package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableWrite(t *testing.T) {
	tbl := Table{
		Title:   "Test Table",
		Headers: []string{"name", "value"},
	}
	tbl.AddRow("alpha", "1")
	tbl.AddRow("b") // short row padded
	var b strings.Builder
	if err := tbl.Write(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Test Table", "name", "value", "alpha", "----"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Columns are aligned: the header's second column starts at the same
	// offset as the first row's second column.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if strings.Index(lines[1], "value") != strings.Index(lines[3], "1") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tbl := Table{Headers: []string{"a", "b"}}
	tbl.AddRow("x,y", `say "hi"`)
	var b strings.Builder
	if err := tbl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"x,y"`) {
		t.Errorf("comma cell not quoted: %s", out)
	}
	if !strings.Contains(out, `"say ""hi"""`) {
		t.Errorf("quote cell not escaped: %s", out)
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("header wrong: %s", out)
	}
}

func TestChartBasics(t *testing.T) {
	c := Chart{
		Title:  "fig",
		Xs:     []float64{1, 2, 4, 8},
		Series: []Series{{Name: "dyn", Ys: []float64{0.5, 0.6, 0.8, 1.2}}},
		LogX:   true,
		RefY:   1.0,
		RefYOn: true,
	}
	var b strings.Builder
	if err := c.Write(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "fig") || !strings.Contains(out, "dyn") {
		t.Errorf("chart missing title/legend:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Error("chart has no data markers")
	}
	if !strings.Contains(out, "....") {
		t.Error("reference line missing")
	}
}

func TestChartEmptyAndMismatch(t *testing.T) {
	var b strings.Builder
	c := Chart{Title: "empty"}
	if err := c.Write(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no data") {
		t.Error("empty chart not flagged")
	}
	c = Chart{Xs: []float64{1, 2}, Series: []Series{{Name: "bad", Ys: []float64{1}}}}
	if err := c.Write(&b); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestChartHandlesNaNAndFlatSeries(t *testing.T) {
	c := Chart{
		Xs: []float64{1, 2, 3},
		Series: []Series{
			{Name: "flat", Ys: []float64{1, 1, 1}},
			{Name: "gap", Ys: []float64{math.NaN(), 2, math.NaN()}},
		},
	}
	var b strings.Builder
	if err := c.Write(&b); err != nil {
		t.Fatal(err)
	}
}

func TestChartMultipleSeriesDistinctMarkers(t *testing.T) {
	c := Chart{
		Xs: []float64{1, 2},
		Series: []Series{
			{Name: "a", Ys: []float64{1, 2}},
			{Name: "b", Ys: []float64{2, 1}},
		},
	}
	var b strings.Builder
	if err := c.Write(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "* = a") || !strings.Contains(out, "o = b") {
		t.Errorf("legend wrong:\n%s", out)
	}
}

func TestFormatters(t *testing.T) {
	if F(3.14159, 2) != "3.14" {
		t.Errorf("F = %q", F(3.14159, 2))
	}
	if Pct(0.25) != "25%" {
		t.Errorf("Pct = %q", Pct(0.25))
	}
}

func TestTableMarkdown(t *testing.T) {
	tbl := Table{Title: "MD", Headers: []string{"a", "b"}}
	tbl.AddRow("x|y", "2")
	var b strings.Builder
	if err := tbl.WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"**MD**", "| a | b |", "| --- | --- |", `x\|y`} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}
