// Package report renders experiment results as aligned ASCII tables, CSV,
// and simple ASCII line charts — the textual equivalents of the paper's
// tables and figures.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple rectangular table with a title and column headers.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row, padding or truncating to the header width.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// Write renders the table with aligned columns.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV (RFC-4180-style quoting for cells
// containing commas or quotes).
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Series is one named line of a chart.
type Series struct {
	Name string
	Ys   []float64
}

// Chart is an ASCII line chart over a shared x-axis.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Xs     []float64
	Series []Series
	// Height is the plot's character height (default 20).
	Height int
	// Width is the plot's character width (default 72).
	Width int
	// LogX renders the x-axis on a log2 scale.
	LogX bool
	// RefY, when non-zero with RefYOn, draws a horizontal reference line
	// (the figures mark relative RT = 1.0).
	RefY   float64
	RefYOn bool
}

// markers assigns each series a plot glyph.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Write renders the chart.
func (c *Chart) Write(w io.Writer) error {
	if len(c.Xs) == 0 || len(c.Series) == 0 {
		_, err := fmt.Fprintf(w, "%s: (no data)\n", c.Title)
		return err
	}
	for _, s := range c.Series {
		if len(s.Ys) != len(c.Xs) {
			return fmt.Errorf("report: series %q has %d points for %d xs", s.Name, len(s.Ys), len(c.Xs))
		}
	}
	height := c.Height
	if height <= 0 {
		height = 20
	}
	width := c.Width
	if width <= 0 {
		width = 72
	}

	xv := make([]float64, len(c.Xs))
	for i, x := range c.Xs {
		if c.LogX {
			xv[i] = math.Log2(x)
		} else {
			xv[i] = x
		}
	}
	minX, maxX := xv[0], xv[0]
	for _, x := range xv {
		minX = math.Min(minX, x)
		maxX = math.Max(maxX, x)
	}
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for _, y := range s.Ys {
			if math.IsNaN(y) {
				continue
			}
			minY = math.Min(minY, y)
			maxY = math.Max(maxY, y)
		}
	}
	if c.RefYOn {
		minY = math.Min(minY, c.RefY)
		maxY = math.Max(maxY, c.RefY)
	}
	if math.IsInf(minY, 1) {
		minY, maxY = 0, 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	if maxX == minX {
		maxX = minX + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	row := func(y float64) int {
		r := int((maxY - y) / (maxY - minY) * float64(height-1))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	col := func(x float64) int {
		cc := int((x - minX) / (maxX - minX) * float64(width-1))
		if cc < 0 {
			cc = 0
		}
		if cc >= width {
			cc = width - 1
		}
		return cc
	}
	if c.RefYOn {
		r := row(c.RefY)
		for cc := 0; cc < width; cc++ {
			grid[r][cc] = '.'
		}
	}
	for si, s := range c.Series {
		m := markers[si%len(markers)]
		for i, y := range s.Ys {
			if math.IsNaN(y) {
				continue
			}
			grid[row(y)][col(xv[i])] = m
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for r, line := range grid {
		label := "         "
		switch r {
		case 0:
			label = fmt.Sprintf("%8.3f ", maxY)
		case height - 1:
			label = fmt.Sprintf("%8.3f ", minY)
		case (height - 1) / 2:
			label = fmt.Sprintf("%8.3f ", (maxY+minY)/2)
		}
		fmt.Fprintf(&b, "%s|%s\n", label, string(line))
	}
	fmt.Fprintf(&b, "%s+%s\n", strings.Repeat(" ", 9), strings.Repeat("-", width))
	xl, xr := c.Xs[0], c.Xs[len(c.Xs)-1]
	axis := fmt.Sprintf("%-10.4g%s%10.4g", xl, strings.Repeat(" ", max(0, width-20)), xr)
	fmt.Fprintf(&b, "%s %s", strings.Repeat(" ", 9), axis)
	if c.XLabel != "" {
		fmt.Fprintf(&b, "   [%s]", c.XLabel)
	}
	b.WriteByte('\n')
	for si, s := range c.Series {
		fmt.Fprintf(&b, "          %c = %s\n", markers[si%len(markers)], s.Name)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// F formats a float compactly for table cells.
func F(v float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, v)
}

// Pct formats a fraction as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.0f%%", 100*v) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// WriteMarkdown renders the table as GitHub-flavored Markdown, the format
// used by EXPERIMENTS.md.
func (t *Table) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		b.WriteByte('|')
		for _, c := range cells {
			b.WriteByte(' ')
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
