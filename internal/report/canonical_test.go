package report

import (
	"bytes"
	"math"
	"testing"
)

// golden is a nested value exercising every JSON shape the campaign
// results use: maps (whose Go iteration order varies run to run), slices,
// strings needing escapes, integers, and floats with shortest-roundtrip
// formatting.
type goldenInner struct {
	Name  string             `json:"name"`
	Rel   map[string]float64 `json:"rel"`
	Count int                `json:"count"`
}

func goldenValue() map[string]any {
	return map[string]any{
		"zeta":  []float64{1, 0.1, 2.5, 1e21, 1e-7, math.MaxFloat64},
		"alpha": "with \"quotes\" and\nnewline",
		"mid": goldenInner{
			Name:  "wkload5 - GRAVITY",
			Rel:   map[string]float64{"Dyn-Aff": 0.931, "Dynamic": 1.004, "Equipartition": 1},
			Count: 42,
		},
		"cells": map[string]map[string]int{
			"400ms": {"MVA": 121, "MATRIX": 45, "GRAVITY": 203},
			"25ms":  {"MVA": 14, "MATRIX": 9, "GRAVITY": 33},
		},
		"empty_obj": map[string]int{},
		"empty_arr": []int{},
		"null":      nil,
		"flag":      true,
	}
}

// goldenBytes is the one true canonical encoding of goldenValue. If this
// test fails after an intentional encoding change, the engine version
// (internal/version.Engine) must be bumped — cached results keyed under
// the old encoding are no longer addressable.
const goldenBytes = `{"alpha":"with \"quotes\" and\nnewline",` +
	`"cells":{"25ms":{"GRAVITY":33,"MATRIX":9,"MVA":14},"400ms":{"GRAVITY":203,"MATRIX":45,"MVA":121}},` +
	`"empty_arr":[],"empty_obj":{},"flag":true,` +
	`"mid":{"count":42,"name":"wkload5 - GRAVITY","rel":{"Dyn-Aff":0.931,"Dynamic":1.004,"Equipartition":1}},` +
	`"null":null,` +
	`"zeta":[1,0.1,2.5,1e+21,1e-7,1.7976931348623157e+308]}`

func TestCanonicalJSONGolden(t *testing.T) {
	got, err := CanonicalJSON(goldenValue())
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != goldenBytes {
		t.Errorf("canonical encoding drifted:\n got: %s\nwant: %s", got, goldenBytes)
	}
}

// TestCanonicalJSONStableAcrossIterations re-encodes values containing
// maps many times; Go randomizes map iteration order per run and per
// range statement, so any order-dependence in the encoder would flake
// here quickly.
func TestCanonicalJSONStableAcrossIterations(t *testing.T) {
	first, err := CanonicalJSON(goldenValue())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		// Rebuild the value each time: literal construction order and
		// map internal layout must not matter either.
		got, err := CanonicalJSON(goldenValue())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, got) {
			t.Fatalf("iteration %d produced different bytes:\n got: %s\nwas: %s", i, got, first)
		}
	}
}

// TestCanonicalJSONSortsStructlessMaps checks key ordering is bytewise,
// including keys that differ only in case or length.
func TestCanonicalJSONKeyOrder(t *testing.T) {
	got, err := CanonicalJSON(map[string]int{"b": 2, "B": 1, "ab": 4, "a": 3, "": 0})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"":0,"B":1,"a":3,"ab":4,"b":2}`
	if string(got) != want {
		t.Errorf("got %s, want %s", got, want)
	}
}

// TestCanonicalJSONNumbersVerbatim checks number literals match plain
// encoding/json output exactly — the guarantee that a canonical body and
// a streamed body of the same value cannot disagree on float formatting.
func TestCanonicalJSONNumbersVerbatim(t *testing.T) {
	vals := []float64{0, -0, 1.0 / 3.0, 6.02e23, 5e-324, -42.125, 1<<53 - 1}
	got, err := CanonicalJSON(vals)
	if err != nil {
		t.Fatal(err)
	}
	want := `[0,0,0.3333333333333333,6.02e+23,5e-324,-42.125,9007199254740991]`
	if string(got) != want {
		t.Errorf("got %s, want %s", got, want)
	}
}

func TestCanonicalJSONMarshalError(t *testing.T) {
	if _, err := CanonicalJSON(math.NaN()); err == nil {
		t.Error("expected an error for NaN, got none")
	}
	if _, err := CanonicalJSON(make(chan int)); err == nil {
		t.Error("expected an error for chan, got none")
	}
}
