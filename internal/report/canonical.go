package report

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
)

// CanonicalJSON encodes v as canonical JSON: object keys sorted bytewise,
// no insignificant whitespace, numbers rendered exactly as encoding/json
// renders them. The same value always produces the same bytes, independent
// of Go map iteration order or the run it is produced in — the property
// that makes the bytes usable as a content address (the service's result
// cache hashes canonical parameter encodings) and lets cached response
// bodies be compared byte-for-byte against fresh ones.
//
// The encoding is produced by marshalling v with encoding/json and then
// rewriting the token stream with sorted keys. Number literals pass
// through verbatim, so float formatting is exactly encoding/json's
// shortest-roundtrip form and cannot drift from the non-canonical
// encoding of the same value.
func CanonicalJSON(v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.Grow(len(raw))
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var tree any
	if err := dec.Decode(&tree); err != nil {
		return nil, fmt.Errorf("report: canonicalize: %w", err)
	}
	if err := writeCanonical(&buf, tree); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// writeCanonical serializes one decoded JSON value with sorted object keys.
func writeCanonical(buf *bytes.Buffer, v any) error {
	switch x := v.(type) {
	case nil:
		buf.WriteString("null")
	case bool:
		if x {
			buf.WriteString("true")
		} else {
			buf.WriteString("false")
		}
	case json.Number:
		buf.WriteString(x.String())
	case string:
		b, err := json.Marshal(x)
		if err != nil {
			return err
		}
		buf.Write(b)
	case []any:
		buf.WriteByte('[')
		for i, e := range x {
			if i > 0 {
				buf.WriteByte(',')
			}
			if err := writeCanonical(buf, e); err != nil {
				return err
			}
		}
		buf.WriteByte(']')
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		buf.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				buf.WriteByte(',')
			}
			kb, err := json.Marshal(k)
			if err != nil {
				return err
			}
			buf.Write(kb)
			buf.WriteByte(':')
			if err := writeCanonical(buf, x[k]); err != nil {
				return err
			}
		}
		buf.WriteByte('}')
	default:
		return fmt.Errorf("report: canonicalize: unexpected decoded type %T", v)
	}
	return nil
}
