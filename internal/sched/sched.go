// Package sched is the discrete-event simulator that executes
// multiprogrammed workloads on the modelled multiprocessor under a
// processor allocation policy.
//
// The engine plays three roles from the paper's testbed at once:
//
//   - the hardware: processors with per-processor caches (modelled by
//     internal/footprint, calibrated against internal/cache) connected by a
//     contended bus (internal/bus);
//   - the operating system: context switches with the measured 750 µs path
//     length, plus the task preemption/resumption machinery;
//   - Minos and the jobs' user-level thread runtimes: jobs reflect their
//     instantaneous demand, mark idle processors willing-to-yield (after
//     the policy's yield delay), and the policy's decisions move
//     processors between jobs.
//
// Every quantity in the paper's response-time model (Figure 1) is measured
// per job: work, waste, number of reallocations, %affinity, cache penalty
// time, and average allocation.
package sched

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/cachemodel"
	"repro/internal/eventq"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// Config describes one simulation run.
type Config struct {
	// Machine is the hardware description.
	Machine machine.Config
	// Policy is the allocation discipline. Policy values carry per-run
	// state and must be freshly constructed per run.
	Policy alloc.Policy
	// Apps are the jobs to run; all arrive at time zero unless Arrivals
	// is set.
	Apps []workload.App
	// Arrivals optionally staggers job arrival times (len must equal
	// len(Apps) when non-nil).
	Arrivals []simtime.Time
	// UserSwitch is the user-level thread dispatch cost (baseline machine
	// units). Defaults to 50 µs.
	UserSwitch simtime.Duration
	// Seed drives the arbitrary choices of affinity-blind task dispatch
	// (real systems resolve these by queue timing noise). Runs with the
	// same seed are bitwise reproducible. Defaults to 1.
	Seed uint64
	// CacheModel selects the per-processor cache implementation: the fast
	// analytic footprint model (default) or the exact trace-replaying
	// reference model used for validation.
	CacheModel cachemodel.Kind
	// Trace, when non-nil, records every scheduler decision for Gantt
	// rendering and debugging (see internal/trace).
	Trace *trace.Log
	// MaxEvents caps the run as a livelock backstop. Defaults to 50M.
	MaxEvents uint64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.UserSwitch == 0 {
		out.UserSwitch = 50 * simtime.Microsecond
	}
	if out.MaxEvents == 0 {
		out.MaxEvents = 50_000_000
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	return out
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Machine.Validate(); err != nil {
		return err
	}
	if c.Machine.Processors >= 1<<taskGIDBits-1 {
		return fmt.Errorf("sched: %d processors overflow the %d-bit task-id field",
			c.Machine.Processors, taskGIDBits)
	}
	if c.Policy == nil {
		return fmt.Errorf("sched: no policy")
	}
	if len(c.Apps) == 0 {
		return fmt.Errorf("sched: no jobs")
	}
	for i, a := range c.Apps {
		if err := a.Validate(); err != nil {
			return fmt.Errorf("sched: app %d: %w", i, err)
		}
	}
	if c.Arrivals != nil && len(c.Arrivals) != len(c.Apps) {
		return fmt.Errorf("sched: %d arrival times for %d apps", len(c.Arrivals), len(c.Apps))
	}
	if c.UserSwitch < 0 {
		return fmt.Errorf("sched: negative user switch cost")
	}
	return nil
}

// JobMetrics reports one job's outcome, covering every term of the paper's
// response-time model.
type JobMetrics struct {
	// Job and App identify the job.
	Job int
	App string
	// Arrival and Completion bracket the job's residence.
	Arrival    simtime.Time
	Completion simtime.Time
	// ResponseTime is Completion − Arrival.
	ResponseTime simtime.Duration
	// Work is the pure compute executed, in baseline-machine
	// processor-time (divide by Machine.Speed for wall time).
	Work simtime.Duration
	// MissTime is wall processor-time stalled on cache misses.
	MissTime simtime.Duration
	// MissLines is the expected number of cache lines fetched.
	MissLines float64
	// SwitchTime is wall processor-time spent in kernel reallocation path
	// plus user-level thread dispatch.
	SwitchTime simtime.Duration
	// Waste is wall processor-time the job held processors idle.
	Waste simtime.Duration
	// InvalLines is the expected number of cache lines lost to coherency
	// invalidations (writes to job-shared data from other processors).
	InvalLines float64
	// Reallocations counts processor reallocation dispatches experienced.
	Reallocations int
	// AffinityHits counts reallocations where the task resumed on the
	// processor it last ran on.
	AffinityHits int
	// AvgAlloc is the time-average number of processors held.
	AvgAlloc float64
}

// PctAffinity returns AffinityHits/Reallocations (0 when none).
func (m JobMetrics) PctAffinity() float64 {
	if m.Reallocations == 0 {
		return 0
	}
	return float64(m.AffinityHits) / float64(m.Reallocations)
}

// ReallocInterval returns the mean per-processor time between
// reallocations, the quantity in row 3 of the paper's Table 3:
// ResponseTime × AvgAlloc / Reallocations.
func (m JobMetrics) ReallocInterval() simtime.Duration {
	if m.Reallocations == 0 {
		return 0
	}
	return simtime.Duration(float64(m.ResponseTime) * m.AvgAlloc / float64(m.Reallocations))
}

// Result reports a full simulation run.
type Result struct {
	Policy string
	Jobs   []JobMetrics
	// Makespan is the completion time of the last job.
	Makespan simtime.Time
	// Events is the number of simulator events fired.
	Events uint64
	// BusTransactions counts line fills across the run.
	BusTransactions uint64
	// Profile[k] is the total time exactly k processors were executing
	// threads (the parallelism profile of the whole run, as in the
	// paper's Figures 2–4 when run with a single job).
	Profile []simtime.Duration
	// Stats is the run's Figure 1 decomposition: reallocation counts
	// split by affinity (P^A vs P^NA charges), the cache-reload
	// transient, cache-model operation totals, and event-queue depth.
	// Every field is a deterministic function of Config — identical for
	// the exact model's fast and naive protocols — so whole Results stay
	// comparable in differential and reuse tests.
	Stats obs.SimStats
}

// MeanResponse returns the mean job response time in seconds.
func (r Result) MeanResponse() float64 {
	if len(r.Jobs) == 0 {
		return 0
	}
	var sum float64
	for _, j := range r.Jobs {
		sum += j.ResponseTime.SecondsF()
	}
	return sum / float64(len(r.Jobs))
}

// taskState tracks where a kernel task is.
type taskState int

const (
	taskIdle      taskState = iota // no thread attached, not on a processor
	taskPreempted                  // thread attached, awaiting a processor
	taskOnProc                     // dispatched on a processor
)

type taskRT struct {
	ref   alloc.TaskRef
	gid   int // footprint owner id, globally unique
	state taskState
	proc  int // current processor when onProc, else -1

	thread    workload.ThreadID
	hasThread bool

	lastProc int // affinity history, P = 1
	// dispatchCompute is the compute executed since the task last started
	// rebuilding its footprint on its current processor (reset on
	// reallocation dispatches).
	dispatchCompute simtime.Duration
	// residentAtDispatch is the footprint the task had on its processor
	// at that point.
	residentAtDispatch float64
}

type jobRT struct {
	id      int
	app     workload.App
	job     *workload.Job
	tasks   []*taskRT
	arrived bool
	arrival simtime.Time
	done    bool
	doneAt  simtime.Time

	// taskStore owns every taskRT ever created for this slot, so reused
	// engines recycle task structs instead of allocating: tasks is always a
	// prefix view of the same objects, re-initialised as the run spawns
	// kernel tasks.
	taskStore []*taskRT

	// arriveFn is the job's arrival callback, built once when the slot is
	// created (a jobRT at pool index i always simulates job id i).
	arriveFn func()

	// Metrics accumulation.
	work       simtime.Duration
	missTime   simtime.Duration
	missLines  float64
	switchTime simtime.Duration
	waste      simtime.Duration
	reallocs   int
	affinity   int

	invalLines float64

	allocInt        float64 // ∫ alloc dt, ns·processors
	curAlloc        int
	lastAllocChange simtime.Time

	// rng drives arbitrary task selection for affinity-blind policies,
	// modelling an unordered suspended-task queue: deterministic iteration
	// would pair the same tasks with the same processors run after run,
	// giving Dynamic an accidental %affinity far above the paper's
	// observed chance level (Table 3: 21-31%).
	rng *xrand.Source

	// pickScratch and sibScratch are reused buffers for pickArbitrary and
	// invalidateShared, both called once or more per execution segment.
	pickScratch []*taskRT
	sibScratch  []int
}

type procRT struct {
	id      int
	job     int // -1 unassigned
	task    *taskRT
	running bool
	idle    bool // assigned with no work; idleStart is valid
	yield   bool
	// bound, when valid, is the specific task an allocator decision
	// directed at this processor (rules A.1/A.2); consumed at dispatch.
	bound    alloc.TaskRef
	lastTask alloc.TaskRef

	// Current execution segment.
	segEv       *eventq.Event
	segStart    simtime.Time
	segWall     simtime.Duration
	segWork     simtime.Duration // baseline compute planned
	segMisses   float64
	segMissTime simtime.Duration

	idleStart simtime.Time
	yieldEv   *eventq.Event

	// segDoneFn and yieldFn are this processor's event callbacks, built
	// once at engine setup and reused for every scheduled event.
	segDoneFn func()
	yieldFn   func()
}

type engine struct {
	cfg   Config
	mc    machine.Config
	pol   alloc.Policy
	q     *eventq.Queue
	bus   *bus.Bus
	model cachemodel.Model
	jobs  []*jobRT
	procs []*procRT
	st    *alloc.State

	lastCredit  simtime.Time
	credits     []float64
	activeJobs  int
	runningCnt  int
	lastProfile simtime.Time
	profile     []simtime.Duration
	quantumEv   *eventq.Event

	// procPool and jobPool own every runtime struct the engine has ever
	// built; procs and jobs are prefix views sized to the current run. Pool
	// entries keep their once-built callbacks (segDoneFn/yieldFn/arriveFn)
	// across runs, so the steady-state run path allocates no closures.
	procPool []*procRT
	jobPool  []*jobRT

	// tickFn is the quantum-tick callback, built on first use and reused
	// for every tick of every run.
	tickFn func()

	// stats accumulates the run's dispatch-classification counters; plain
	// integer increments on the dispatch path (not atomics — the engine is
	// single-goroutine), folded into Result.Stats at the end of the run.
	stats obs.SimStats
}

// Runner executes simulation runs back to back, reusing the full engine
// substrate across runs: the pending-event heap (with its recycled Event
// objects), the per-processor cache model, the bus, the allocator state,
// and every per-processor/per-job runtime struct with its once-built event
// callbacks. A Runner is exactly as deterministic as Run: a reused Runner
// and a fresh one produce bitwise identical Results for the same Config,
// including across heterogeneous back-to-back configs (see DESIGN.md,
// "Allocation discipline").
//
// A Runner is NOT safe for concurrent use; the experiment campaign layer
// pools one Runner per worker goroutine (see internal/experiments).
type Runner struct {
	q   eventq.Queue
	eng *engine

	// Cached cache model, rebuilt only when the next run's construction
	// parameters differ from the ones it was built for.
	model      cachemodel.Model
	modelKind  cachemodel.Kind
	modelProcs int
	modelCache cache.Config
	modelSeed  uint64
}

// NewRunner returns an empty Runner; state is grown on first use.
func NewRunner() *Runner { return &Runner{} }

// model returns a cache model for the run, reusing (after a Reset) the
// previous run's instance when its construction parameters match. The
// footprint model is seed-independent, so for it a seed change alone never
// forces a rebuild.
func (r *Runner) cacheModel(cfg Config) (cachemodel.Model, error) {
	seedOK := r.modelSeed == cfg.Seed || cfg.CacheModel == cachemodel.KindFootprint
	if r.model != nil && r.modelKind == cfg.CacheModel &&
		r.modelProcs == cfg.Machine.Processors &&
		r.modelCache == cfg.Machine.Cache && seedOK {
		r.model.Reset()
		return r.model, nil
	}
	m, err := cachemodel.New(cfg.CacheModel, cfg.Machine.Processors, cfg.Machine.Cache, cfg.Seed)
	if err != nil {
		return nil, err
	}
	r.model = m
	r.modelKind = cfg.CacheModel
	r.modelProcs = cfg.Machine.Processors
	r.modelCache = cfg.Machine.Cache
	r.modelSeed = cfg.Seed
	return m, nil
}

// Run executes the configured simulation to completion. It is equivalent
// to the package-level Run but amortizes the whole engine substrate across
// calls; steady-state reuse allocates almost nothing per run.
func (r *Runner) Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	cfg = cfg.withDefaults()
	model, err := r.cacheModel(cfg)
	if err != nil {
		return Result{}, err
	}
	r.q.Reset()
	if r.eng == nil {
		r.eng = &engine{q: &r.q}
	}
	if err := r.eng.reset(cfg, model); err != nil {
		return Result{}, err
	}
	return r.eng.run()
}

// Run executes the configured simulation to completion on a fresh Runner.
func Run(cfg Config) (Result, error) {
	return NewRunner().Run(cfg)
}

// reset reinitialises the engine for a new run, reusing every piece of
// substrate whose geometry still fits and growing the pools otherwise. A
// reset engine is indistinguishable from a freshly constructed one.
func (e *engine) reset(cfg Config, model cachemodel.Model) error {
	e.cfg = cfg
	e.mc = cfg.Machine
	e.pol = cfg.Policy
	e.model = model
	nproc := cfg.Machine.Processors
	njob := len(cfg.Apps)

	if e.bus == nil {
		e.bus = bus.MustNew(cfg.Machine.LineFill, cfg.Machine.BusWindow)
	} else {
		e.bus.Reset(cfg.Machine.LineFill, cfg.Machine.BusWindow)
	}
	if e.st == nil {
		e.st = alloc.NewState(nproc, njob)
	} else {
		e.st.Reset(nproc, njob)
	}
	e.credits = sizedZero(e.credits, njob)
	e.profile = sizedZero(e.profile, nproc+1)
	e.lastCredit = 0
	e.activeJobs = 0
	e.runningCnt = 0
	e.lastProfile = 0
	e.quantumEv = nil
	e.stats = obs.SimStats{}

	// Processor runtime slots. Callbacks are built once per slot so that
	// the hot path (one completion event per execution segment, one yield
	// event per idle span) schedules them without allocating a fresh
	// closure per event — or even per run.
	for len(e.procPool) < nproc {
		pid := len(e.procPool)
		pr := &procRT{id: pid}
		pr.segDoneFn = func() { e.segmentDone(pid) }
		pr.yieldFn = func() { e.yieldFire(pid) }
		e.procPool = append(e.procPool, pr)
	}
	e.procs = e.procPool[:nproc]
	for _, pr := range e.procs {
		pr.job = -1
		pr.task = nil
		pr.running = false
		pr.idle = false
		pr.yield = false
		pr.bound = alloc.NoTask
		pr.lastTask = alloc.NoTask
		pr.segEv = nil
		pr.segStart = 0
		pr.segWall = 0
		pr.segWork = 0
		pr.segMisses = 0
		pr.segMissTime = 0
		pr.idleStart = 0
		pr.yieldEv = nil
	}

	// Job runtime slots, with their workload instances and RNG streams
	// rewound in place.
	for len(e.jobPool) < njob {
		i := len(e.jobPool)
		jr := &jobRT{id: i, job: &workload.Job{}, rng: &xrand.Source{}}
		jr.arriveFn = func() { e.arrive(i) }
		e.jobPool = append(e.jobPool, jr)
	}
	e.jobs = e.jobPool[:njob]
	for i, jr := range e.jobs {
		jr.app = cfg.Apps[i]
		if err := jr.job.Reset(i, cfg.Apps[i]); err != nil {
			return err
		}
		jr.rng.Seed(cfg.Seed, 0x100+uint64(i))
		jr.tasks = jr.tasks[:0]
		jr.arrived = false
		jr.arrival = 0
		jr.done = false
		jr.doneAt = 0
		jr.work = 0
		jr.missTime = 0
		jr.missLines = 0
		jr.switchTime = 0
		jr.waste = 0
		jr.reallocs = 0
		jr.affinity = 0
		jr.invalLines = 0
		jr.allocInt = 0
		jr.curAlloc = 0
		jr.lastAllocChange = 0
	}
	return nil
}

// sizedZero returns s with length n and every element zeroed, reusing its
// backing array when possible.
func sizedZero[T int64 | float64 | simtime.Duration](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// start seeds the event queue with the run's job arrivals and, for
// quantum-driven policies, the first quantum tick.
func (e *engine) start() {
	cfg := e.cfg
	for i, jr := range e.jobs {
		at := simtime.Time(0)
		if cfg.Arrivals != nil {
			at = cfg.Arrivals[i]
		}
		e.q.At(at, jr.arriveFn)
	}
	if q := e.pol.Quantum(); q > 0 {
		if e.tickFn == nil {
			e.tickFn = func() {
				e.q.Free(e.quantumEv)
				e.quantumEv = nil
				if e.activeJobsRemaining() {
					e.policyEvent(alloc.TrigQuantum, -1)
					e.quantumEv = e.q.After(e.pol.Quantum(), e.tickFn)
				}
			}
		}
		e.quantumEv = e.q.After(q, e.tickFn)
	}
}

// run drives the event loop.
func (e *engine) run() (Result, error) {
	e.start()
	events, err := e.q.Run(e.cfg.MaxEvents)
	if err != nil {
		return Result{}, err
	}
	for _, j := range e.jobs {
		if !j.done {
			return Result{}, fmt.Errorf("sched: deadlock — job %d (%s) never completed (demand=%d alloc=%d)",
				j.id, j.app.Name, j.job.Demand(), j.curAlloc)
		}
	}
	return e.result(events), nil
}

func (e *engine) activeJobsRemaining() bool { return e.activeJobs > 0 }

func (e *engine) now() simtime.Time { return e.q.Now() }

// record appends a trace event when tracing is enabled.
func (e *engine) record(kind trace.Kind, proc, job, task int, realloc, affinity bool) {
	e.cfg.Trace.Record(trace.Event{
		At: e.now(), Kind: kind, Proc: proc, Job: job, Task: task,
		Realloc: realloc, Affinity: affinity,
	})
}

// ---------------------------------------------------------------------------
// Metrics plumbing.

func (e *engine) noteProfile() {
	now := e.now()
	e.profile[e.runningCnt] += now.Sub(e.lastProfile)
	e.lastProfile = now
}

func (e *engine) setRunning(p *procRT, running bool) {
	if p.running == running {
		return
	}
	e.noteProfile()
	p.running = running
	if running {
		e.runningCnt++
	} else {
		e.runningCnt--
	}
}

func (e *engine) noteAlloc(j *jobRT, delta int) {
	now := e.now()
	j.allocInt += float64(j.curAlloc) * float64(now.Sub(j.lastAllocChange))
	j.lastAllocChange = now
	j.curAlloc += delta
}

// beginIdle puts an assigned processor into the idle-held state, starting
// waste accrual and the yield-delay clock.
func (e *engine) beginIdle(p *procRT) {
	e.setRunning(p, false)
	p.task = nil
	p.idle = true
	p.idleStart = e.now()
	e.record(trace.Idle, p.id, p.job, -1, false, false)
	delay := e.pol.YieldDelay()
	if delay <= 0 {
		p.yield = true
		e.record(trace.Yield, p.id, p.job, -1, false, false)
		e.policyEvent(alloc.TrigProcFree, p.id)
		return
	}
	p.yieldEv = e.q.After(delay, p.yieldFn)
}

// yieldFire is the yield-delay expiry callback for processor pid.
func (e *engine) yieldFire(pid int) {
	pp := e.procs[pid]
	e.q.Free(pp.yieldEv)
	pp.yieldEv = nil
	if pp.job >= 0 && !pp.running {
		pp.yield = true
		e.record(trace.Yield, pid, pp.job, -1, false, false)
		e.policyEvent(alloc.TrigProcFree, pid)
	}
}

// endIdle stops waste accrual, attributing the idle span to the owning job.
func (e *engine) endIdle(p *procRT) {
	if !p.idle || p.job < 0 {
		return
	}
	p.idle = false
	e.jobs[p.job].waste += e.now().Sub(p.idleStart)
	if p.yieldEv != nil {
		e.q.Cancel(p.yieldEv)
		e.q.Free(p.yieldEv)
		p.yieldEv = nil
	}
	p.yield = false
}

// ---------------------------------------------------------------------------
// Job lifecycle.

func (e *engine) arrive(id int) {
	j := e.jobs[id]
	j.arrived = true
	j.arrival = e.now()
	j.lastAllocChange = e.now()
	e.activeJobs++
	e.record(trace.JobArrive, -1, id, -1, false, false)
	e.policyEvent(alloc.TrigArrival, id)
}

func (e *engine) completeJob(j *jobRT) {
	j.done = true
	j.doneAt = e.now()
	e.record(trace.JobComplete, -1, j.id, -1, false, false)
	e.noteAlloc(j, 0)
	e.activeJobs--
	// Release the job's processors.
	for _, p := range e.procs {
		if p.job == j.id {
			e.releaseProc(p)
		}
	}
	e.policyEvent(alloc.TrigCompletion, j.id)
}

// releaseProc returns a processor to the unassigned pool.
func (e *engine) releaseProc(p *procRT) {
	if p.job < 0 {
		return
	}
	if p.running {
		e.preempt(p)
	}
	e.endIdle(p)
	e.record(trace.Release, p.id, p.job, -1, false, false)
	e.noteAlloc(e.jobs[p.job], -1)
	p.job = -1
	p.task = nil
	p.bound = alloc.NoTask
}

// ---------------------------------------------------------------------------
// Dispatch and execution.

// taskGIDBits is the width reserved for the within-job task index in a
// global task id. 2^20 tasks per job is far beyond any machine size the
// simulator accepts (Config.Validate bounds Processors accordingly), and
// taskGID itself fails loudly rather than silently colliding.
const taskGIDBits = 20

// taskGID assigns globally unique footprint owner ids.
func taskGID(job, task int) int {
	if task+1 >= 1<<taskGIDBits {
		panic(fmt.Sprintf("sched: task index %d overflows the %d-bit task-id field", task, taskGIDBits))
	}
	return job<<taskGIDBits | (task + 1)
}

// chooseTask selects which of job j's kernel tasks should run on processor
// p, honoring the policy's affinity preference. It returns nil when the job
// has no dispatchable work.
func (e *engine) chooseTask(j *jobRT, p *procRT) *taskRT {
	// A task the allocator targeted at this processor (rules A.1/A.2).
	if p.bound.Valid() && p.bound.Job == j.id && p.bound.Task < len(j.tasks) {
		t := j.tasks[p.bound.Task]
		if t.state == taskPreempted || (t.state == taskIdle && j.job.ReadyCount() > 0) {
			return t
		}
	}
	if e.pol.PrefersAffinity() {
		// Affinity policies keep per-task processor histories (P = 1) in
		// the allocator; an untargeted grant still dispatches a task that
		// last ran on this processor when one is available.
		for _, t := range j.tasks {
			if t.lastProc != p.id || t.state == taskOnProc {
				continue
			}
			if t.state == taskPreempted || j.job.ReadyCount() > 0 {
				return t
			}
		}
	}
	// Any preempted task (it holds an in-progress thread), picked
	// arbitrarily from the suspended queue.
	if t := j.pickArbitrary(taskPreempted); t != nil {
		return t
	}
	// Any idle task, if there is a ready thread for it.
	if j.job.ReadyCount() > 0 {
		if t := j.pickArbitrary(taskIdle); t != nil {
			return t
		}
		// Create a new kernel task (jobs start workers lazily, up to one
		// per processor), recycling the slot's store on reused engines.
		if len(j.tasks) < e.mc.Processors {
			idx := len(j.tasks)
			var t *taskRT
			if idx < len(j.taskStore) {
				t = j.taskStore[idx]
			} else {
				t = &taskRT{}
				j.taskStore = append(j.taskStore, t)
			}
			*t = taskRT{
				ref:      alloc.TaskRef{Job: j.id, Task: idx},
				gid:      taskGID(j.id, idx),
				proc:     -1,
				lastProc: -1,
			}
			j.tasks = append(j.tasks, t)
			return t
		}
	}
	return nil
}

// dispatch places a task of processor p's assigned job onto p and starts
// (or resumes) a thread. If the job has no dispatchable work the processor
// idles in place.
func (e *engine) dispatch(p *procRT) {
	j := e.jobs[p.job]
	t := e.chooseTask(j, p)
	if t == nil {
		e.beginIdle(p)
		return
	}
	if !t.hasThread {
		tid, ok := j.job.Attach()
		if !ok {
			e.beginIdle(p)
			return
		}
		t.thread = tid
		t.hasThread = true
	}

	// Classify the dispatch. A reallocation occurred when the task is not
	// simply continuing on the processor it occupied with nothing having
	// run in between.
	continuation := t.lastProc == p.id && p.lastTask == t.ref
	var overhead simtime.Duration
	if continuation {
		overhead = e.mc.Compute(e.cfg.UserSwitch)
	} else {
		overhead = e.mc.SwitchPath
		j.reallocs++
		e.stats.Reallocations++
		if t.lastProc == p.id {
			j.affinity++
			e.stats.PACharges++
		} else {
			e.stats.PNACharges++
			if t.lastProc >= 0 {
				e.stats.Migrations++
			}
		}
		// The footprint rebuild restarts: coverage is measured from here,
		// discounted by whatever survived on this processor.
		t.dispatchCompute = 0
		t.residentAtDispatch = e.model.Resident(p.id, t.gid)
	}
	j.switchTime += overhead

	t.state = taskOnProc
	t.proc = p.id
	p.task = t
	p.bound = alloc.NoTask
	e.record(trace.Dispatch, p.id, j.id, t.ref.Task, !continuation, !continuation && t.lastProc == p.id)
	e.endIdle(p)
	e.startSegment(p, overhead)
	if !continuation {
		// The first segment after a reallocation bears the cache-reload
		// transient: its miss stall is the penalty the paper charges per
		// switch (P^A when the footprint partially survived, P^NA when not).
		e.stats.PenaltyNs += int64(p.segMissTime)
	}
}

// startSegment schedules execution of the task's current thread to
// completion (unless preempted first).
func (e *engine) startSegment(p *procRT, overhead simtime.Duration) {
	t := p.task
	j := e.jobs[p.job]
	w := j.job.Remaining(t.thread)
	c0 := t.dispatchCompute
	misses := e.model.Plan(p.id, t.gid, &j.app.Pattern, c0, w, t.residentAtDispatch)
	missTime := e.bus.ServiceN(e.now(), int(misses+0.5))
	wall := overhead + e.mc.Compute(w) + missTime

	p.segStart = e.now()
	p.segWall = wall
	p.segWork = w
	p.segMisses = misses
	p.segMissTime = missTime
	e.setRunning(p, true)
	p.segEv = e.q.After(wall, p.segDoneFn)
}

// segmentDone fires when a thread finishes on processor pid.
func (e *engine) segmentDone(pid int) {
	p := e.procs[pid]
	t := p.task
	j := e.jobs[p.job]
	e.q.Free(p.segEv)

	// Account the completed segment.
	committed := e.model.Commit(p.id, t.gid, &j.app.Pattern, t.dispatchCompute, p.segWork, t.residentAtDispatch)
	e.invalidateShared(p, j, t, p.segWork)
	t.dispatchCompute += p.segWork
	j.work += p.segWork
	j.missTime += p.segMissTime
	j.missLines += committed
	j.job.Progress(t.thread, p.segWork)
	j.job.Complete(t.thread)
	t.hasThread = false
	p.lastTask = t.ref
	t.lastProc = p.id
	p.segEv = nil

	if j.job.Done() {
		t.state = taskIdle
		t.proc = -1
		e.setRunning(p, false)
		e.completeJob(j)
		return
	}

	// Continue this task with the next ready thread, if any.
	if tid, ok := j.job.Attach(); ok {
		t.thread = tid
		t.hasThread = true
		overhead := e.mc.Compute(e.cfg.UserSwitch)
		j.switchTime += overhead
		e.startSegment(p, overhead)
	} else {
		t.state = taskIdle
		t.proc = -1
		e.beginIdle(p)
	}

	// New threads released by the completion may be runnable on the job's
	// other idle processors, or may raise demand above allocation.
	e.fillIdleProcs(j)
	if j.job.Demand() > j.curAlloc {
		e.policyEvent(alloc.TrigDemandUp, j.id)
	}
}

// fillIdleProcs dispatches a job's runnable work onto processors it already
// holds idle — a user-level action requiring no allocator involvement.
func (e *engine) fillIdleProcs(j *jobRT) {
	if j.done {
		return
	}
	for _, p := range e.procs {
		if p.job != j.id || p.running {
			continue
		}
		if j.job.ReadyCount() == 0 && !e.hasPreempted(j) {
			break
		}
		e.dispatch(p)
	}
}

// invalidateShared models the coherency cost of the segment just committed:
// the fraction of the task's touched lines that are written shared data
// invalidates the job's sibling tasks' copies on other processors.
func (e *engine) invalidateShared(p *procRT, j *jobRT, t *taskRT, w simtime.Duration) {
	shared := j.app.SharedFrac
	if shared <= 0 || w <= 0 {
		return
	}
	c0 := t.dispatchCompute
	touched := j.app.Pattern.TouchRate(c0+w) - j.app.Pattern.TouchRate(c0)
	writes := touched * shared
	if writes < 0.5 {
		return
	}
	siblings := j.sibScratch[:0]
	for _, sib := range j.tasks {
		if sib != t {
			siblings = append(siblings, sib.gid)
		}
	}
	j.sibScratch = siblings
	if len(siblings) == 0 {
		return
	}
	j.invalLines += e.model.InvalidateShared(p.id, siblings, writes)
}

// pickArbitrary returns a uniformly random task of j in the wanted state,
// or nil if none exists.
func (j *jobRT) pickArbitrary(want taskState) *taskRT {
	candidates := j.pickScratch[:0]
	for _, t := range j.tasks {
		if t.state == want {
			candidates = append(candidates, t)
		}
	}
	j.pickScratch = candidates
	if len(candidates) == 0 {
		return nil
	}
	return candidates[j.rng.Intn(len(candidates))]
}

func (e *engine) hasPreempted(j *jobRT) bool {
	for _, t := range j.tasks {
		if t.state == taskPreempted {
			return true
		}
	}
	return false
}

// preempt stops the processor's current segment, returning partial progress
// to the task (which keeps its thread — that is what affinity is about).
func (e *engine) preempt(p *procRT) {
	t := p.task
	j := e.jobs[p.job]
	e.q.Cancel(p.segEv)
	e.q.Free(p.segEv)
	p.segEv = nil

	elapsed := e.now().Sub(p.segStart)
	var frac float64
	if p.segWall > 0 {
		frac = float64(elapsed) / float64(p.segWall)
	}
	if frac > 1 {
		frac = 1
	}
	workDone := p.segWork.Scale(frac)
	missTimeDone := p.segMissTime.Scale(frac)

	missDone := e.model.Commit(p.id, t.gid, &j.app.Pattern, t.dispatchCompute, workDone, t.residentAtDispatch)
	e.invalidateShared(p, j, t, workDone)
	t.dispatchCompute += workDone
	j.work += workDone
	j.missTime += missTimeDone
	j.missLines += missDone
	j.job.Progress(t.thread, workDone)

	t.state = taskPreempted
	t.proc = -1
	t.lastProc = p.id
	p.lastTask = t.ref
	p.task = nil
	e.record(trace.Preempt, p.id, j.id, t.ref.Task, false, false)
	e.setRunning(p, false)
}

// ---------------------------------------------------------------------------
// Policy interaction.

// updateCredits integrates the McCann-style priority credits: a job gains
// credit while holding fewer processors than its fair share and spends it
// while holding more.
func (e *engine) updateCredits() {
	now := e.now()
	dt := now.Sub(e.lastCredit).SecondsF()
	e.lastCredit = now
	if dt <= 0 || e.activeJobs == 0 {
		return
	}
	fair := float64(e.mc.Processors) / float64(e.activeJobs)
	for _, j := range e.jobs {
		if j.arrived && !j.done {
			e.credits[j.id] += (fair - float64(j.curAlloc)) * dt
		}
	}
}

// buildState publishes the allocator-visible snapshot.
func (e *engine) buildState() {
	s := e.st
	for _, j := range e.jobs {
		s.Active[j.id] = j.arrived && !j.done
		s.Credit[j.id] = e.credits[j.id]
		s.Demand[j.id] = j.job.Demand()
		s.Alloc[j.id] = j.curAlloc
		s.MaxPar[j.id] = j.app.MaxParallelism()
		s.Desired[j.id] = s.Desired[j.id][:0]
		if s.Active[j.id] {
			// Desired processors, most critical tasks first: preempted
			// tasks hold in-progress threads; idle tasks can take new
			// work when the job has ready threads.
			for _, t := range j.tasks {
				if t.state == taskPreempted && t.lastProc >= 0 {
					s.Desired[j.id] = append(s.Desired[j.id],
						alloc.DesiredProc{Proc: t.lastProc, Task: t.ref})
				}
			}
			if j.job.ReadyCount() > 0 {
				for _, t := range j.tasks {
					if t.state == taskIdle && t.lastProc >= 0 {
						s.Desired[j.id] = append(s.Desired[j.id],
							alloc.DesiredProc{Proc: t.lastProc, Task: t.ref})
					}
				}
			}
		}
	}
	for _, p := range e.procs {
		s.ProcJob[p.id] = p.job
		s.ProcWorking[p.id] = p.running
		s.ProcYield[p.id] = p.yield && !p.running
		s.ProcLastTask[p.id] = p.lastTask
		s.LastTaskResumable[p.id] = false
		if p.lastTask.Valid() {
			lj := e.jobs[p.lastTask.Job]
			if lj.arrived && !lj.done {
				lt := lj.tasks[p.lastTask.Task]
				if lt.state == taskPreempted ||
					(lt.state == taskIdle && lj.job.ReadyCount() > 0) {
					s.LastTaskResumable[p.id] = true
				}
			}
		}
	}
}

// policyEvent invokes the policy and applies its decisions.
func (e *engine) policyEvent(trig alloc.Trigger, arg int) {
	e.updateCredits()
	e.buildState()
	decs := e.pol.Rebalance(e.st, trig, arg)
	e.applyDecisions(decs)
}

// applyDecisions moves processors between jobs as directed.
func (e *engine) applyDecisions(decs []alloc.Decision) {
	for _, d := range decs {
		if d.Proc < 0 || d.Proc >= len(e.procs) {
			panic(fmt.Sprintf("sched: policy %s decided for processor %d of %d",
				e.pol.Name(), d.Proc, len(e.procs)))
		}
		p := e.procs[d.Proc]
		if d.Job == p.job {
			continue
		}
		if d.Job >= 0 {
			nj := e.jobs[d.Job]
			if !nj.arrived || nj.done {
				continue // stale decision against a finished job
			}
		}
		e.releaseProc(p)
		if d.Job < 0 {
			continue
		}
		p.job = d.Job
		if d.HasTask {
			p.bound = d.Task
		} else {
			p.bound = alloc.NoTask
		}
		e.noteAlloc(e.jobs[d.Job], +1)
		e.dispatch(p)
	}
}

// ---------------------------------------------------------------------------
// Results.

func (e *engine) result(events uint64) Result {
	e.noteProfile()
	res := Result{
		Policy:          e.pol.Name(),
		Events:          events,
		BusTransactions: e.bus.Stats().Transactions,
		// The engine's profile accumulator is reused across runs, so the
		// returned Result gets its own copy.
		Profile: append([]simtime.Duration(nil), e.profile...),
		Stats:   e.stats,
	}
	res.Stats.Runs = 1
	res.Stats.Events = events
	res.Stats.EventqPeak = uint64(e.q.Peak())
	ms := e.model.Stats()
	res.Stats.Plans = ms.Plans
	res.Stats.Commits = ms.Commits
	res.Stats.Flushes = ms.Flushes
	res.Stats.InvalLines = ms.InvalLines
	for _, j := range e.jobs {
		res.Stats.WorkNs += int64(j.work)
		res.Stats.WasteNs += int64(j.waste)
		res.Stats.SwitchNs += int64(j.switchTime)
		res.Stats.MissNs += int64(j.missTime)
	}
	res.Jobs = make([]JobMetrics, 0, len(e.jobs))
	for _, j := range e.jobs {
		rt := j.doneAt.Sub(j.arrival)
		avgAlloc := 0.0
		if rt > 0 {
			avgAlloc = j.allocInt / float64(rt)
		}
		res.Jobs = append(res.Jobs, JobMetrics{
			Job:           j.id,
			App:           j.app.Name,
			Arrival:       j.arrival,
			Completion:    j.doneAt,
			ResponseTime:  rt,
			Work:          j.work,
			MissTime:      j.missTime,
			MissLines:     j.missLines,
			SwitchTime:    j.switchTime,
			Waste:         j.waste,
			InvalLines:    j.invalLines,
			Reallocations: j.reallocs,
			AffinityHits:  j.affinity,
			AvgAlloc:      avgAlloc,
		})
		if j.doneAt > res.Makespan {
			res.Makespan = j.doneAt
		}
	}
	return res
}
