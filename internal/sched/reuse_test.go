package sched

import (
	"testing"

	"repro/internal/cachemodel"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/simtime"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// requireSameResult fails the test unless got is bitwise identical to want
// in every field of the Result, including the Stats decomposition.
func requireSameResult(t *testing.T, label string, got, want Result) {
	t.Helper()
	if got.Policy != want.Policy || got.Makespan != want.Makespan ||
		got.Events != want.Events || got.BusTransactions != want.BusTransactions {
		t.Fatalf("%s: header diverged:\ngot  %+v\nwant %+v", label, got, want)
	}
	if got.Stats != want.Stats {
		t.Fatalf("%s: stats diverged:\ngot  %+v\nwant %+v", label, got.Stats, want.Stats)
	}
	if len(got.Jobs) != len(want.Jobs) || len(got.Profile) != len(want.Profile) {
		t.Fatalf("%s: shape diverged: %d/%d jobs, %d/%d profile bins",
			label, len(got.Jobs), len(want.Jobs), len(got.Profile), len(want.Profile))
	}
	for i := range want.Jobs {
		if got.Jobs[i] != want.Jobs[i] {
			t.Fatalf("%s: job %d diverged:\ngot  %+v\nwant %+v", label, i, got.Jobs[i], want.Jobs[i])
		}
	}
	for i := range want.Profile {
		if got.Profile[i] != want.Profile[i] {
			t.Fatalf("%s: profile[%d] diverged: %v vs %v", label, i, got.Profile[i], want.Profile[i])
		}
	}
}

// TestRunnerReuseHeterogeneousConfigs drives one Runner through a gauntlet
// of configs that differ in every dimension the engine substrate is reused
// across — job mixes (growing and shrinking the job/task pools), policies
// (quantum-driven and event-driven), processor counts (growing and
// shrinking the processor pool and profile), seeds, staggered arrivals, and
// cache models — and requires each Result to be bitwise identical to a
// fresh Run of the same config.
func TestRunnerReuseHeterogeneousConfigs(t *testing.T) {
	procs := func(n int) machine.Config {
		m := machine.Symmetry()
		m.Processors = n
		return m
	}
	mks := []func() Config{
		// Large geometry first, so later smaller runs exercise pool
		// shrinking rather than growth.
		func() Config {
			pol, _ := core.ByName("Equipartition")
			return Config{Machine: procs(16), Policy: pol,
				Apps: []workload.App{smallMVA(), smallMatrix(), smallGravity()}, Seed: 11}
		},
		func() Config {
			pol, _ := core.ByName("Dyn-Aff")
			return Config{Machine: procs(4), Policy: pol,
				Apps: []workload.App{smallGravity()}, Seed: 2}
		},
		func() Config {
			pol, _ := core.ByName("TimeShare-RR") // quantum-driven
			return Config{Machine: procs(8), Policy: pol,
				Apps: []workload.App{smallMatrix(), smallMVA()}, Seed: 7}
		},
		func() Config {
			pol, _ := core.ByName("Dyn-Aff-Delay")
			return Config{Machine: procs(12), Policy: pol,
				Apps: []workload.App{smallMVA(), smallMVA()}, Seed: 7,
				Arrivals: []simtime.Time{0, simtime.Time(2 * simtime.Second)}}
		},
		func() Config {
			pol, _ := core.ByName("Dyn-Aff")
			return Config{Machine: procs(6), Policy: pol,
				Apps: []workload.App{smallGravity(), smallMVA()}, Seed: 5,
				CacheModel: cachemodel.KindExact}
		},
		// Same config as the first run again: the substrate has been through
		// every other shape in between.
		func() Config {
			pol, _ := core.ByName("Equipartition")
			return Config{Machine: procs(16), Policy: pol,
				Apps: []workload.App{smallMVA(), smallMatrix(), smallGravity()}, Seed: 11}
		},
	}
	fresh := make([]Result, len(mks))
	for i, mk := range mks {
		r, err := Run(mk())
		if err != nil {
			t.Fatalf("fresh run %d: %v", i, err)
		}
		fresh[i] = r
	}
	rn := NewRunner()
	for i, mk := range mks {
		r, err := rn.Run(mk())
		if err != nil {
			t.Fatalf("reused run %d: %v", i, err)
		}
		requireSameResult(t, "run "+string(rune('A'+i)), r, fresh[i])
	}
}

// FuzzRunnerReuse interleaves randomly generated configs through a single
// Runner and checks every Result against a fresh Run, bitwise. It is the
// adversarial counterpart of TestRunnerReuseHeterogeneousConfigs: random
// DAG shapes, machine sizes, policies, and seeds probe reuse paths the
// hand-written gauntlet misses.
func FuzzRunnerReuse(f *testing.F) {
	f.Add(uint64(1))
	f.Add(uint64(42))
	f.Add(uint64(0xdeadbeef))
	f.Add(uint64(31415926535))
	policies := []string{"Equipartition", "Dynamic", "Dyn-Aff", "Dyn-Aff-NoPri",
		"Dyn-Aff-Delay", "TimeShare-RR", "TimeShare-Aff"}
	f.Fuzz(func(t *testing.T, seed uint64) {
		rng := xrand.New(seed, 0xfe0de)
		rn := NewRunner()
		nruns := 2 + rng.Intn(3)
		for k := 0; k < nruns; k++ {
			mc := machine.Symmetry()
			mc.Processors = 2 + rng.Intn(15)
			apps := make([]workload.App, 1+rng.Intn(3))
			for j := range apps {
				apps[j] = randomApp(rng, "RND")
			}
			name := policies[rng.Intn(len(policies))]
			runSeed := rng.Uint64()
			mk := func() Config {
				pol, _ := core.ByName(name)
				return Config{Machine: mc, Policy: pol, Apps: apps, Seed: runSeed}
			}
			want, err := Run(mk())
			if err != nil {
				t.Skipf("run %d rejected: %v", k, err)
			}
			got, err := rn.Run(mk())
			if err != nil {
				t.Fatalf("reused run %d failed where fresh succeeded: %v", k, err)
			}
			requireSameResult(t, "fuzz run", got, want)
		}
	})
}
