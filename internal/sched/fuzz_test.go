package sched

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// randomApp builds a random small application: a layered DAG with random
// widths and thread works, and a random (valid) reference pattern.
func randomApp(rng *xrand.Source, name string) workload.App {
	var b workload.GraphBuilder
	layers := 1 + rng.Intn(4)
	var prev []workload.ThreadID
	for l := 0; l < layers; l++ {
		width := 1 + rng.Intn(12)
		var cur []workload.ThreadID
		for w := 0; w < width; w++ {
			work := simtime.Duration(10+rng.Intn(300)) * simtime.Millisecond
			id := b.AddThread(work)
			// Random dependencies on the previous layer.
			for _, p := range prev {
				if rng.Intn(3) == 0 {
					b.AddDep(p, id)
				}
			}
			cur = append(cur, id)
		}
		prev = cur
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	pat := workload.MVA().Pattern
	return workload.App{
		Name:       name,
		Graph:      g,
		Pattern:    pat,
		SharedFrac: float64(rng.Intn(10)) / 100,
	}
}

// TestQuickPoliciesSurviveRandomWorkloads is the policy robustness fuzz:
// arbitrary DAG mixes must complete under every policy with conserved work
// and consistent metrics.
func TestQuickPoliciesSurviveRandomWorkloads(t *testing.T) {
	policies := []string{"Equipartition", "Dynamic", "Dyn-Aff", "Dyn-Aff-NoPri",
		"Dyn-Aff-Delay", "TimeShare-RR", "TimeShare-Aff"}
	f := func(seed uint64) bool {
		rng := xrand.New(seed, 0xf022)
		mc := machine.Symmetry()
		mc.Processors = 2 + rng.Intn(15)
		njobs := 1 + rng.Intn(3)
		var apps []workload.App
		for j := 0; j < njobs; j++ {
			apps = append(apps, randomApp(rng, "RND"))
		}
		pol, _ := core.ByName(policies[rng.Intn(len(policies))])
		res, err := Run(Config{Machine: mc, Policy: pol, Apps: apps, Seed: seed})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for i, j := range res.Jobs {
			if j.ResponseTime <= 0 {
				return false
			}
			want := apps[i].Graph.TotalWork()
			diff := j.Work - want
			if diff < 0 {
				diff = -diff
			}
			if diff > want/100+simtime.Millisecond {
				t.Logf("seed %d job %d: work %v, want %v", seed, i, j.Work, want)
				return false
			}
			if j.AvgAlloc < 0 || j.AvgAlloc > float64(mc.Processors) {
				return false
			}
			if j.AffinityHits > j.Reallocations {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestTraceStreamInvariants validates the recorded decision stream itself:
// every dispatch/preempt pairing is well-formed per processor, and no
// dispatch targets a job outside its arrival..completion window.
func TestTraceStreamInvariants(t *testing.T) {
	pol, _ := core.ByName("Dyn-Aff-Delay")
	log := &trace.Log{}
	_, err := Run(Config{
		Machine: mc16(),
		Policy:  pol,
		Apps:    []workload.App{smallMatrix(), smallGravity(), smallMVA()},
		Seed:    3,
		Trace:   log,
	})
	if err != nil {
		t.Fatal(err)
	}
	arrived := map[int]bool{}
	completed := map[int]bool{}
	running := map[int]int{} // proc -> job currently dispatched, -1 none
	for p := 0; p < mc16().Processors; p++ {
		running[p] = -1
	}
	var prev simtime.Time
	for i, e := range log.Events() {
		if e.At < prev {
			t.Fatalf("event %d out of time order", i)
		}
		prev = e.At
		switch e.Kind {
		case trace.JobArrive:
			arrived[e.Job] = true
		case trace.JobComplete:
			if !arrived[e.Job] {
				t.Fatalf("event %d: job %d completed before arriving", i, e.Job)
			}
			completed[e.Job] = true
		case trace.Dispatch:
			if !arrived[e.Job] || completed[e.Job] {
				t.Fatalf("event %d: dispatch for job %d outside its window", i, e.Job)
			}
			running[e.Proc] = e.Job
		case trace.Preempt:
			if running[e.Proc] != e.Job {
				t.Fatalf("event %d: preempt of job %d on cpu%d which runs %d",
					i, e.Job, e.Proc, running[e.Proc])
			}
			running[e.Proc] = -1
		case trace.Idle, trace.Yield:
			// Idle marks end of execution on the proc.
			running[e.Proc] = -1
		case trace.Release:
			running[e.Proc] = -1
		}
	}
	for j := range arrived {
		if !completed[j] {
			t.Errorf("job %d arrived but never completed", j)
		}
	}
}
