package sched

import (
	"math"
	"testing"

	"repro/internal/cachemodel"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// mc16 is the experiment machine: the Symmetry restricted to 16 processors,
// as in the paper's measurements.
func mc16() machine.Config {
	m := machine.Symmetry()
	m.Processors = 16
	return m
}

// smallApps returns scaled-down applications that keep unit tests fast.
func smallMVA() workload.App    { return workload.MVASized(8, 100*simtime.Millisecond) }
func smallMatrix() workload.App { return workload.MatrixSized(6, 200*simtime.Millisecond) }
func smallGravity() workload.App {
	return workload.GravitySized(3, 24, 50*simtime.Millisecond, 20*simtime.Millisecond, 7)
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	good := Config{Machine: mc16(), Policy: core.NewDynamic(), Apps: []workload.App{smallMVA()}}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []Config{
		{Machine: machine.Config{}, Policy: core.NewDynamic(), Apps: []workload.App{smallMVA()}},
		{Machine: mc16(), Apps: []workload.App{smallMVA()}},
		{Machine: mc16(), Policy: core.NewDynamic()},
		{Machine: mc16(), Policy: core.NewDynamic(), Apps: []workload.App{{}}},
		{Machine: mc16(), Policy: core.NewDynamic(), Apps: []workload.App{smallMVA()},
			Arrivals: []simtime.Time{0, 0}},
		{Machine: mc16(), Policy: core.NewDynamic(), Apps: []workload.App{smallMVA()},
			UserSwitch: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
		if _, err := Run(c); err == nil {
			t.Errorf("bad config %d ran", i)
		}
	}
}

func runOne(t *testing.T, pol string, apps ...workload.App) Result {
	t.Helper()
	p, ok := core.ByName(pol)
	if !ok {
		t.Fatalf("no policy %s", pol)
	}
	res, err := Run(Config{Machine: mc16(), Policy: p, Apps: apps})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSingleJobCompletes(t *testing.T) {
	for _, pol := range []string{"Equipartition", "Dynamic", "Dyn-Aff", "Dyn-Aff-Delay", "Dyn-Aff-NoPri", "TimeShare-RR"} {
		pol := pol
		t.Run(pol, func(t *testing.T) {
			res := runOne(t, pol, smallMVA())
			if len(res.Jobs) != 1 {
				t.Fatalf("jobs = %d", len(res.Jobs))
			}
			j := res.Jobs[0]
			if j.ResponseTime <= 0 {
				t.Fatal("non-positive response time")
			}
			// Work conservation: executed compute equals the graph total.
			want := smallMVA().Graph.TotalWork()
			if math.Abs(float64(j.Work-want)) > float64(want)/1000 {
				t.Errorf("work = %v, want %v", j.Work, want)
			}
			if res.Makespan != j.Completion {
				t.Errorf("makespan %v != completion %v", res.Makespan, j.Completion)
			}
		})
	}
}

func TestWorkConservationMultiJob(t *testing.T) {
	apps := []workload.App{smallMVA(), smallMatrix(), smallGravity()}
	for _, pol := range []string{"Equipartition", "Dynamic", "Dyn-Aff-Delay"} {
		res := runOne(t, pol, apps...)
		for i, j := range res.Jobs {
			want := apps[i].Graph.TotalWork()
			if math.Abs(float64(j.Work-want)) > float64(want)/1000 {
				t.Errorf("%s job %d: work %v, want %v", pol, i, j.Work, want)
			}
		}
	}
}

func TestResponseTimeLowerBound(t *testing.T) {
	// No job can beat its critical path or its work spread over all
	// processors.
	app := smallGravity()
	res := runOne(t, "Dynamic", app)
	j := res.Jobs[0]
	if j.ResponseTime < app.Graph.CriticalPath() {
		t.Errorf("RT %v below critical path %v", j.ResponseTime, app.Graph.CriticalPath())
	}
	if j.ResponseTime < app.Graph.TotalWork()/simtime.Duration(mc16().Processors) {
		t.Errorf("RT %v below work/P", j.ResponseTime)
	}
}

func TestDeterminism(t *testing.T) {
	apps := []workload.App{smallMVA(), smallGravity()}
	run := func() Result {
		return runOne(t, "Dyn-Aff", apps...)
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan || a.Events != b.Events {
		t.Fatalf("runs differ: %v/%v vs %v/%v", a.Makespan, a.Events, b.Makespan, b.Events)
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job %d metrics differ:\n%+v\n%+v", i, a.Jobs[i], b.Jobs[i])
		}
	}
}

func TestSeedChangesArbitraryChoices(t *testing.T) {
	apps := []workload.App{smallMatrix(), smallGravity()}
	pol1, _ := core.ByName("Dynamic")
	pol2, _ := core.ByName("Dynamic")
	a, err := Run(Config{Machine: mc16(), Policy: pol1, Apps: apps, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Machine: mc16(), Policy: pol2, Apps: apps, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Jobs[1].AffinityHits == b.Jobs[1].AffinityHits && a.Makespan == b.Makespan {
		t.Log("warning: different seeds produced identical outcomes (possible but unlikely)")
	}
}

func TestEquipartitionFewReallocations(t *testing.T) {
	res := runOne(t, "Equipartition", smallMatrix(), smallGravity())
	for _, j := range res.Jobs {
		// Reallocations only at arrival/completion: a handful per job.
		if j.Reallocations > 3*mc16().Processors {
			t.Errorf("%s: %d reallocations under Equipartition", j.App, j.Reallocations)
		}
	}
}

func TestDynamicReallocatesMuchMore(t *testing.T) {
	equi := runOne(t, "Equipartition", smallMatrix(), smallGravity())
	dyn := runOne(t, "Dynamic", smallMatrix(), smallGravity())
	var eq, dy int
	for i := range equi.Jobs {
		eq += equi.Jobs[i].Reallocations
		dy += dyn.Jobs[i].Reallocations
	}
	if dy < 3*eq {
		t.Errorf("Dynamic reallocations (%d) not much higher than Equipartition (%d)", dy, eq)
	}
}

func TestAffinityPolicyRaisesAffinityPct(t *testing.T) {
	apps := []workload.App{smallMatrix(), smallGravity()}
	dyn := runOne(t, "Dynamic", apps...)
	aff := runOne(t, "Dyn-Aff", apps...)
	// Compare the GRAVITY job (index 1), which reallocates heavily.
	if dyn.Jobs[1].PctAffinity() >= aff.Jobs[1].PctAffinity() {
		t.Errorf("%%affinity: Dynamic %.2f >= Dyn-Aff %.2f",
			dyn.Jobs[1].PctAffinity(), aff.Jobs[1].PctAffinity())
	}
	// At the scaled-down test sizes Dyn-Aff's %affinity is lower than the
	// paper-scale ~55-99%, but must still be far above chance.
	if aff.Jobs[1].PctAffinity() < 0.3 {
		t.Errorf("Dyn-Aff %%affinity only %.2f", aff.Jobs[1].PctAffinity())
	}
}

func TestYieldDelayReducesReallocations(t *testing.T) {
	apps := []workload.App{smallMatrix(), smallGravity()}
	aff := runOne(t, "Dyn-Aff", apps...)
	del := runOne(t, "Dyn-Aff-Delay", apps...)
	if del.Jobs[1].Reallocations >= aff.Jobs[1].Reallocations {
		t.Errorf("yield delay did not reduce reallocations: %d vs %d",
			del.Jobs[1].Reallocations, aff.Jobs[1].Reallocations)
	}
}

func TestEquipartitionWastesMoreThanDynamic(t *testing.T) {
	apps := []workload.App{smallMatrix(), smallGravity()}
	equi := runOne(t, "Equipartition", apps...)
	dyn := runOne(t, "Dynamic", apps...)
	// GRAVITY's barriers idle its Equipartition processors.
	if equi.Jobs[1].Waste <= dyn.Jobs[1].Waste {
		t.Errorf("waste: Equipartition %v <= Dynamic %v", equi.Jobs[1].Waste, dyn.Jobs[1].Waste)
	}
}

func TestProfileAccountsAllTime(t *testing.T) {
	res := runOne(t, "Dynamic", smallGravity())
	var total simtime.Duration
	for _, d := range res.Profile {
		if d < 0 {
			t.Fatal("negative profile bucket")
		}
		total += d
	}
	if total != simtime.Duration(res.Makespan) {
		t.Errorf("profile sums to %v, makespan %v", total, res.Makespan)
	}
}

func TestAvgAllocBounds(t *testing.T) {
	res := runOne(t, "Dynamic", smallMatrix(), smallGravity())
	for _, j := range res.Jobs {
		if j.AvgAlloc < 0 || j.AvgAlloc > float64(mc16().Processors) {
			t.Errorf("%s AvgAlloc = %v out of range", j.App, j.AvgAlloc)
		}
	}
}

func TestArrivalStagger(t *testing.T) {
	apps := []workload.App{smallMatrix(), smallMatrix()}
	pol, _ := core.ByName("Dynamic")
	res, err := Run(Config{
		Machine:  mc16(),
		Policy:   pol,
		Apps:     apps,
		Arrivals: []simtime.Time{0, simtime.Time(2 * simtime.Second)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[1].Arrival != simtime.Time(2*simtime.Second) {
		t.Errorf("arrival = %v", res.Jobs[1].Arrival)
	}
	if res.Jobs[1].Completion <= res.Jobs[1].Arrival {
		t.Error("completion before arrival")
	}
}

func TestTimeShareCompletesAndMigrates(t *testing.T) {
	res := runOne(t, "TimeShare-RR", smallMatrix(), smallGravity())
	for _, j := range res.Jobs {
		if j.ResponseTime <= 0 {
			t.Fatalf("%s did not complete", j.App)
		}
	}
	// Quantum-driven rotation must generate many reallocations.
	if res.Jobs[0].Reallocations < 20 {
		t.Errorf("TimeShare reallocations = %d, want many", res.Jobs[0].Reallocations)
	}
}

func TestMetricsDerivations(t *testing.T) {
	m := JobMetrics{Reallocations: 0}
	if m.PctAffinity() != 0 || m.ReallocInterval() != 0 {
		t.Error("zero-realloc metrics should be zero")
	}
	m = JobMetrics{
		Reallocations: 100,
		AffinityHits:  25,
		ResponseTime:  simtime.Seconds(10),
		AvgAlloc:      4,
	}
	if m.PctAffinity() != 0.25 {
		t.Errorf("PctAffinity = %v", m.PctAffinity())
	}
	// 10 s × 4 procs / 100 reallocs = 400 ms between reallocations.
	if got := m.ReallocInterval(); got != 400*simtime.Millisecond {
		t.Errorf("ReallocInterval = %v", got)
	}
}

func TestMeanResponse(t *testing.T) {
	r := Result{Jobs: []JobMetrics{
		{ResponseTime: simtime.Seconds(2)},
		{ResponseTime: simtime.Seconds(4)},
	}}
	if r.MeanResponse() != 3 {
		t.Errorf("MeanResponse = %v", r.MeanResponse())
	}
	if (Result{}).MeanResponse() != 0 {
		t.Error("empty MeanResponse not 0")
	}
}

func TestDynamicBeatsEquipartitionOnMeanResponse(t *testing.T) {
	// The paper's headline Figure-5 property, on the scaled-down mix.
	apps := []workload.App{smallMatrix(), smallGravity()}
	equi := runOne(t, "Equipartition", apps...)
	dyn := runOne(t, "Dynamic", apps...)
	if dyn.MeanResponse() >= equi.MeanResponse() {
		t.Errorf("Dynamic mean RT %.3f >= Equipartition %.3f",
			dyn.MeanResponse(), equi.MeanResponse())
	}
}

func TestFasterMachineShrinksResponseTime(t *testing.T) {
	app := smallMVA()
	slow := runOne(t, "Dynamic", app)
	fast4, err := mc16().Scaled(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	pol, _ := core.ByName("Dynamic")
	fast, err := Run(Config{Machine: fast4, Policy: pol, Apps: []workload.App{app}})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(fast.Jobs[0].ResponseTime) / float64(slow.Jobs[0].ResponseTime)
	if ratio > 0.5 {
		t.Errorf("4x machine only gave ratio %.2f", ratio)
	}
}

func TestMaxEventsBackstop(t *testing.T) {
	pol, _ := core.ByName("Dynamic")
	_, err := Run(Config{
		Machine:   mc16(),
		Policy:    pol,
		Apps:      []workload.App{smallMatrix()},
		MaxEvents: 5,
	})
	if err == nil {
		t.Fatal("event cap not enforced")
	}
}

// TestRunnerReuseBitwiseIdentical pins the Runner contract: a Runner
// reused across runs (reusing its event heap, recycled events, and cache
// model) must produce results bitwise identical to fresh runs, for both
// cache models and across differing configs interleaved on one Runner.
func TestRunnerReuseBitwiseIdentical(t *testing.T) {
	cfgA := func() Config {
		pol, _ := core.ByName("Dyn-Aff")
		return Config{Machine: mc16(), Policy: pol,
			Apps: []workload.App{smallMVA(), smallGravity()}, Seed: 3}
	}
	cfgB := func() Config {
		pol, _ := core.ByName("Dynamic")
		return Config{Machine: mc16(), Policy: pol,
			Apps: []workload.App{smallMatrix()}, Seed: 9}
	}
	cfgC := func() Config {
		pol, _ := core.ByName("Dyn-Aff")
		return Config{Machine: mc16(), Policy: pol,
			Apps: []workload.App{smallGravity()}, Seed: 3, CacheModel: cachemodel.KindExact}
	}
	fresh := make([]Result, 0, 4)
	for _, mk := range []func() Config{cfgA, cfgB, cfgA, cfgC} {
		r, err := Run(mk())
		if err != nil {
			t.Fatal(err)
		}
		fresh = append(fresh, r)
	}
	rn := NewRunner()
	for k, mk := range []func() Config{cfgA, cfgB, cfgA, cfgC} {
		r, err := rn.Run(mk())
		if err != nil {
			t.Fatal(err)
		}
		f := fresh[k]
		if r.Makespan != f.Makespan || r.Events != f.Events ||
			r.BusTransactions != f.BusTransactions {
			t.Fatalf("run %d: reused runner diverged: %+v vs %+v", k, r, f)
		}
		for i := range f.Jobs {
			if r.Jobs[i] != f.Jobs[i] {
				t.Fatalf("run %d job %d differs:\n%+v\n%+v", k, i, r.Jobs[i], f.Jobs[i])
			}
		}
		for i := range f.Profile {
			if r.Profile[i] != f.Profile[i] {
				t.Fatalf("run %d profile[%d] differs", k, i)
			}
		}
	}
}
