package sched

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/cachemodel"
	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

// runWithModel runs a small MATRIX+GRAVITY mix under the given cache model.
func runWithModel(t *testing.T, kind cachemodel.Kind, polName string) Result {
	t.Helper()
	pol, _ := core.ByName(polName)
	res, err := Run(Config{
		Machine:    mc16(),
		Policy:     pol,
		Apps:       []workload.App{smallMatrix(), smallGravity()},
		Seed:       1,
		CacheModel: kind,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestExactModelEndToEnd is the whole-system ablation: scheduling the same
// workload with the analytic footprint model and with full reference-stream
// replay must give closely matching response times and identical policy
// conclusions. This validates the central modelling substitution of the
// reproduction (DESIGN.md §2).
func TestExactModelEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("exact replay is seconds-long")
	}
	for _, pol := range []string{"Equipartition", "Dyn-Aff"} {
		fp := runWithModel(t, cachemodel.KindFootprint, pol)
		ex := runWithModel(t, cachemodel.KindExact, pol)
		for i := range fp.Jobs {
			f := fp.Jobs[i].ResponseTime.SecondsF()
			x := ex.Jobs[i].ResponseTime.SecondsF()
			ratio := f / x
			if ratio < 0.9 || ratio > 1.12 {
				t.Errorf("%s job %d (%s): footprint RT %.3fs vs exact RT %.3fs (ratio %.3f)",
					pol, i, fp.Jobs[i].App, f, x, ratio)
			}
		}
	}

	// The policy ordering must agree across models: the dynamic policy
	// beats Equipartition under both.
	equiEx := runWithModel(t, cachemodel.KindExact, "Equipartition")
	dynEx := runWithModel(t, cachemodel.KindExact, "Dyn-Aff")
	if dynEx.MeanResponse() >= equiEx.MeanResponse() {
		t.Errorf("under the exact model Dyn-Aff (%.3f) did not beat Equipartition (%.3f)",
			dynEx.MeanResponse(), equiEx.MeanResponse())
	}
}

// TestExactModelMissCountsSane checks that exact-model miss totals are of
// the same order as the footprint model's.
func TestExactModelMissCountsSane(t *testing.T) {
	if testing.Short() {
		t.Skip("exact replay is seconds-long")
	}
	fp := runWithModel(t, cachemodel.KindFootprint, "Dynamic")
	ex := runWithModel(t, cachemodel.KindExact, "Dynamic")
	for i := range fp.Jobs {
		f, x := fp.Jobs[i].MissLines, ex.Jobs[i].MissLines
		if x <= 0 {
			t.Fatalf("job %d: exact model recorded no misses", i)
		}
		ratio := f / x
		if ratio < 0.2 || ratio > 5 {
			t.Errorf("job %d (%s): miss lines footprint %.0f vs exact %.0f (ratio %.2f)",
				i, fp.Jobs[i].App, f, x, ratio)
		}
	}
}

// TestExactFastMatchesNaiveEndToEnd is the whole-system differential for
// the single-replay plan/commit protocol: the same workloads, policies and
// seeds must produce bitwise-identical scheduling Results under the fast
// exact model and under the clone-and-replay-twice oracle. The workloads
// include shared written data, so the coherency-invalidation interleavings
// between Plan and Commit are exercised, and preempting policies exercise
// the truncated-segment rollback path.
func TestExactFastMatchesNaiveEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("exact replay is seconds-long")
	}
	shared := smallGravity()
	shared.SharedFrac = 0.15
	for _, pol := range []string{"Equipartition", "Dyn-Aff", "Dynamic", "TimeShare-RR"} {
		for _, seed := range []uint64{1, 7} {
			run := func(kind cachemodel.Kind) Result {
				// Policies carry per-run state (rotation cursors), so each
				// run gets a fresh instance.
				p, _ := core.ByName(pol)
				res, err := Run(Config{
					Machine:    mc16(),
					Policy:     p,
					Apps:       []workload.App{smallMatrix(), shared},
					Seed:       seed,
					CacheModel: kind,
				})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			fast := run(cachemodel.KindExact)
			oracle := run(cachemodel.KindExactNaive)
			if !reflect.DeepEqual(fast, oracle) {
				t.Errorf("%s seed %d: fast exact result diverged from naive oracle\nfast:   %+v\noracle: %+v",
					pol, seed, fast, oracle)
			}
		}
	}
}

// TestTracing checks that a traced run records a coherent event stream.
func TestTracing(t *testing.T) {
	pol, _ := core.ByName("Dyn-Aff")
	log := &trace.Log{}
	res, err := Run(Config{
		Machine: mc16(),
		Policy:  pol,
		Apps:    []workload.App{smallMatrix(), smallGravity()},
		Seed:    1,
		Trace:   log,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := log.Counts()
	if counts[trace.JobArrive] != 2 || counts[trace.JobComplete] != 2 {
		t.Errorf("arrivals/completions = %d/%d, want 2/2",
			counts[trace.JobArrive], counts[trace.JobComplete])
	}
	if counts[trace.Dispatch] == 0 || counts[trace.Preempt] == 0 {
		t.Errorf("no dispatches (%d) or preemptions (%d) traced",
			counts[trace.Dispatch], counts[trace.Preempt])
	}
	// Reallocation dispatches in the trace match the job metrics.
	reallocs := 0
	for _, e := range log.Events() {
		if e.Kind == trace.Dispatch && e.Realloc {
			reallocs++
		}
	}
	want := res.Jobs[0].Reallocations + res.Jobs[1].Reallocations
	if reallocs != want {
		t.Errorf("traced reallocations %d != metrics %d", reallocs, want)
	}
	// The Gantt renders without panicking and mentions both jobs.
	g := trace.Gantt(log.Events(), mc16().Processors, 0, res.Makespan, 80, true)
	if !strings.Contains(g, "A") || !strings.Contains(g, "B") {
		t.Errorf("gantt missing job rows:\n%s", g)
	}
}

// TestSharedDataInvalidation checks the coherency model end to end: a job
// with written-shared data loses lines to sibling invalidations, and
// disabling sharing zeroes the metric without other effects.
func TestSharedDataInvalidation(t *testing.T) {
	run := func(sharedFrac float64) Result {
		app := smallGravity()
		app.SharedFrac = sharedFrac
		pol, _ := core.ByName("Dyn-Aff")
		res, err := Run(Config{
			Machine: mc16(),
			Policy:  pol,
			Apps:    []workload.App{app, smallMatrix()},
			Seed:    1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	with := run(0.1)
	without := run(0)
	if with.Jobs[0].InvalLines <= 0 {
		t.Error("shared app recorded no invalidations")
	}
	if without.Jobs[0].InvalLines != 0 {
		t.Errorf("unshared app recorded %v invalidations", without.Jobs[0].InvalLines)
	}
	// Invalidations cost misses: the sharing run stalls at least as much.
	if with.Jobs[0].MissLines < without.Jobs[0].MissLines {
		t.Errorf("sharing reduced misses: %v vs %v",
			with.Jobs[0].MissLines, without.Jobs[0].MissLines)
	}
	// SharedFrac out of range is rejected.
	bad := smallGravity()
	bad.SharedFrac = 1.5
	pol, _ := core.ByName("Dynamic")
	if _, err := Run(Config{Machine: mc16(), Policy: pol, Apps: []workload.App{bad}}); err == nil {
		t.Error("SharedFrac 1.5 accepted")
	}
}
