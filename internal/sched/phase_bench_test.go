package sched

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// BenchmarkRunPhases attributes a reused Runner's per-run cost to the three
// phases of Runner.Run — substrate reset (engine build), the event loop,
// and the metrics fold — by running the other phases with the benchmark
// timer stopped. testing.B only counts allocations while the timer runs, so
// each sub-benchmark's allocs/op is that phase's allocation bill alone.
func BenchmarkRunPhases(b *testing.B) {
	cfg := Config{
		Machine: mc16(),
		Apps:    []workload.App{smallMVA(), smallMatrix(), smallGravity()},
		Seed:    3,
	}

	// prepare re-creates exactly the pre-loop portion of Runner.Run.
	prepare := func(r *Runner) Config {
		pol, ok := core.ByName("Dyn-Aff")
		if !ok {
			b.Fatal("unknown policy Dyn-Aff")
		}
		c := cfg
		c.Policy = pol
		if err := c.Validate(); err != nil {
			b.Fatal(err)
		}
		c = c.withDefaults()
		model, err := r.cacheModel(c)
		if err != nil {
			b.Fatal(err)
		}
		r.q.Reset()
		if r.eng == nil {
			r.eng = &engine{q: &r.q}
		}
		if err := r.eng.reset(c, model); err != nil {
			b.Fatal(err)
		}
		return c
	}
	warm := func() *Runner {
		r := NewRunner()
		prepare(r)
		if _, err := r.eng.run(); err != nil {
			b.Fatal(err)
		}
		return r
	}

	b.Run("reset", func(b *testing.B) {
		r := warm()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			prepare(r)
			b.StopTimer()
			if _, err := r.eng.run(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	})
	b.Run("loop", func(b *testing.B) {
		r := warm()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			prepare(r)
			b.StartTimer()
			r.eng.start()
			events, err := r.eng.q.Run(r.eng.cfg.MaxEvents)
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			r.eng.result(events)
			b.StartTimer()
		}
	})
	b.Run("result", func(b *testing.B) {
		// result is idempotent once the run has finished (noteProfile adds a
		// zero-length span), so one simulation serves every iteration.
		r := warm()
		prepare(r)
		res, err := r.eng.run()
		if err != nil {
			b.Fatal(err)
		}
		events := res.Events
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.eng.result(events)
		}
	})
}
