package analytic

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"sync"
)

// promotionJSON is the checked-in calibration golden produced by
// `analyticcalib -write`: per-coordinate analytic-vs-sim errors and the
// promotion verdicts defining the envelope the `auto` engine trusts.
//
//go:embed promotion.json
var promotionJSON []byte

// MetricPair records one metric's exact-sim and analytic values with their
// relative error |analytic−sim| / max(|sim|, ε).
type MetricPair struct {
	Sim      float64 `json:"sim"`
	Analytic float64 `json:"analytic"`
	RelErr   float64 `json:"rel_err"`
}

// CalCell is one calibrated grid coordinate. The structured fields
// reconstruct the cell's configuration exactly; Coord is the derived
// canonical coordinate string used as the envelope lookup key (it must
// match the coordinate the experiment layer computes for the same cell).
type CalCell struct {
	Coord    string                `json:"coord"`
	Kind     string                `json:"kind"` // "compare" or "futuresim"
	Procs    int                   `json:"procs"`
	Reps     int                   `json:"reps"`
	AppScale int                   `json:"app_scale"`
	Seed     uint64                `json:"seed"`
	Mix      int                   `json:"mix"`
	Product  float64               `json:"product,omitempty"` // futuresim only
	Policy   string                `json:"policy"`
	Metrics  map[string]MetricPair `json:"metrics"`
	Promoted bool                  `json:"promoted"`
}

// PromotionTable is the calibration golden: the error tolerance pair and
// the calibrated cells. PromoteRelErr is the stricter bound a cell's mean
// response-time error must meet at -write time for promotion; TolRelErr is
// the looser bound -check (and the golden-based tests) re-enforce, leaving
// hysteresis so cross-platform float drift cannot flip a borderline cell.
type PromotionTable struct {
	PromoteRelErr float64   `json:"promote_rel_err"`
	TolRelErr     float64   `json:"tolerance_rel_err"`
	Cells         []CalCell `json:"cells"`
}

// PromotionMetric is the metric promotion is decided on.
const PromotionMetric = "mean_rt_sec"

// Default promotion thresholds (see PromotionTable).
const (
	DefaultPromoteRelErr = 0.08
	DefaultTolRelErr     = 0.10
)

// ParsePromotionTable decodes a promotion golden.
func ParsePromotionTable(data []byte) (*PromotionTable, error) {
	var t PromotionTable
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("analytic: bad promotion table: %w", err)
	}
	if t.PromoteRelErr <= 0 || t.TolRelErr <= 0 || t.PromoteRelErr > t.TolRelErr {
		return nil, fmt.Errorf("analytic: promotion table tolerances %v/%v invalid",
			t.PromoteRelErr, t.TolRelErr)
	}
	return &t, nil
}

// Envelope answers whether a cell coordinate is inside the differentially
// validated region the `auto` engine may serve analytically.
type Envelope struct {
	promoted map[string]bool
}

// Envelope builds the lookup set of promoted coordinates.
func (t *PromotionTable) Envelope() *Envelope {
	e := &Envelope{promoted: make(map[string]bool, len(t.Cells))}
	for _, c := range t.Cells {
		if c.Promoted {
			e.promoted[c.Coord] = true
		}
	}
	return e
}

// Promoted reports whether the coordinate is inside the envelope. Unknown
// coordinates — anything the calibration grid never measured — are outside.
func (e *Envelope) Promoted(coord string) bool { return e.promoted[coord] }

// Size returns the number of promoted coordinates.
func (e *Envelope) Size() int { return len(e.promoted) }

var (
	defaultOnce  sync.Once
	defaultTable *PromotionTable
	defaultEnv   *Envelope
)

func loadDefault() {
	t, err := ParsePromotionTable(promotionJSON)
	if err != nil {
		// The golden is checked in and covered by tests; a parse failure is
		// a build corruption, not a runtime condition.
		panic(err)
	}
	defaultTable = t
	defaultEnv = t.Envelope()
}

// DefaultTable returns the checked-in calibration golden.
func DefaultTable() *PromotionTable {
	defaultOnce.Do(loadDefault)
	return defaultTable
}

// DefaultEnvelope returns the envelope of the checked-in golden.
func DefaultEnvelope() *Envelope {
	defaultOnce.Do(loadDefault)
	return defaultEnv
}
