package analytic

import (
	"fmt"
	"math"

	"repro/internal/alloc"
	"repro/internal/footprint"
	"repro/internal/sched"
	"repro/internal/simtime"
)

// fixedPointIterations is the number of fluid-pass refinements. Each pass
// spreads the previous pass's estimated miss and switch overhead over the
// job's compute (the inflation factor phi), then re-derives the overheads
// from the new schedule. Three passes are enough for phi to settle to well
// under the calibration tolerance.
const fixedPointIterations = 3

// Affinity fractions by policy class, standing in for the simulator's
// measured %affinity (paper Table 3): Equipartition's tasks essentially
// never move; the Dyn-Aff family reacquires its processors most of the
// time; affinity-blind policies land at chance level, 1/allocation.
const (
	affEquipartition = 0.85
	affDynAff        = 0.70
)

// affContinuationFrac is the fraction of an affinity-honoring policy's
// processor reacquisitions that the simulator classifies as continuations
// rather than reallocations: rules A.1/A.2 hand a freed processor straight
// back to the task that held it, and a task resuming on its own processor
// with nothing run in between pays no reallocation at all. Calibrated
// against the Dyn-Aff/Dynamic reallocation-count ratio.
const affContinuationFrac = 0.5

// maxFluidEvents bounds one fluid pass as a livelock backstop; real
// workloads produce a few thousand level-boundary events at most.
const maxFluidEvents = 10_000_000

// policyClass selects the allocation behaviour the fluid model imitates.
type policyClass int

const (
	// classDynamic recomputes demand-capped equal shares at every level
	// boundary (the Dynamic family's instantaneous reallocation).
	classDynamic policyClass = iota
	// classEqui recomputes allocation numbers only on arrival and
	// completion, holding idle processors in between (Equipartition).
	classEqui
	// classTimeshare spreads all processors equally regardless of demand
	// and accrues reallocations at the quantum rate (TimeShare).
	classTimeshare
)

func classify(p alloc.Policy) policyClass {
	if p.Quantum() > 0 {
		return classTimeshare
	}
	if p.Name() == "Equipartition" {
		return classEqui
	}
	return classDynamic
}

// jobSim is one job's fluid state and accumulators. All times are in
// seconds: baseline compute for rem/workSec, wall time for everything else.
type jobSim struct {
	name     string
	levels   []level
	maxPar   int
	nthreads int
	workSec  float64 // total baseline compute
	workDur  simtime.Duration
	pattern  footprint.Profile

	phi float64 // compute inflation carrying miss+switch overhead

	// Fluid pass state.
	li           int
	width        int
	rem          float64 // remaining inflated baseline compute in level
	alloc        int
	lastUsed     float64
	done         bool
	needsInflate bool
	pending      []pendingHold
	pendHead     int

	// Accumulators (wall seconds unless noted).
	t        float64 // completion time
	allocInt float64 // ∫ alloc dt (processor-seconds held)
	usedInt  float64 // ∫ min(alloc, width) dt (processor-seconds used)
	realloc  float64
	heldIdle float64 // processor-seconds held idle under the yield delay

	// Overhead estimates from the latest refinement.
	aff       float64
	missLines float64
	missSec   float64
	switchSec float64
	wasteSec  float64

	scratch int // waterfill's provisional allocation
}

// pendingHold is a tranche of processors a yield-delay policy holds idle
// after the job's usage dropped: reacquired within the delay they cost no
// reallocation, past it they are released for real.
type pendingHold struct {
	t float64 // when usage dropped
	d float64 // processors held
}

// Run estimates the outcome of the configured run. It accepts the same
// Config as sched.Run and returns a Result of the same shape (populated
// JobMetrics, Makespan, Policy), so campaign summarization code works on
// either engine's output unchanged. Simulator-internal counters (Events,
// BusTransactions, Stats, Profile) are left zero.
func Run(cfg sched.Config) (sched.Result, error) {
	if err := cfg.Validate(); err != nil {
		return sched.Result{}, err
	}
	for _, at := range cfg.Arrivals {
		if at != 0 {
			return sched.Result{}, fmt.Errorf("analytic: staggered arrivals are not supported")
		}
	}
	userSwitch := cfg.UserSwitch
	if userSwitch == 0 {
		userSwitch = 50 * simtime.Microsecond
	}
	mc := cfg.Machine
	class := classify(cfg.Policy)
	quantumSec := cfg.Policy.Quantum().SecondsF()
	yieldSec := cfg.Policy.YieldDelay().SecondsF()

	jobs := make([]*jobSim, len(cfg.Apps))
	for i := range cfg.Apps {
		app := &cfg.Apps[i]
		jobs[i] = &jobSim{
			name:     app.Name,
			levels:   levelProfile(app.Graph),
			maxPar:   app.MaxParallelism(),
			nthreads: app.Graph.NumThreads(),
			workSec:  app.Graph.TotalWork().SecondsF(),
			workDur:  app.Graph.TotalWork(),
			pattern:  app.Pattern,
			phi:      1,
		}
	}

	capLines := float64(mc.Cache.Lines())
	lineFillSec := mc.LineFill.SecondsF()
	switchPathSec := mc.SwitchPath.SecondsF()
	userSwitchSec := mc.Compute(userSwitch).SecondsF()

	contFrac := 0.0
	if class == classDynamic && cfg.Policy.PrefersAffinity() {
		contFrac = affContinuationFrac
	}

	for iter := 0; iter < fixedPointIterations; iter++ {
		if err := fluidPass(jobs, mc.Processors, class, quantumSec, mc.Speed, yieldSec, contFrac); err != nil {
			return sched.Result{}, err
		}
		for _, j := range jobs {
			// %affinity for the policy class; affinity-blind policies sit at
			// chance level, one over the processors the job's tasks rotate
			// across.
			avgAlloc := j.allocInt / j.t
			switch {
			case class == classEqui:
				j.aff = affEquipartition
			case cfg.Policy.PrefersAffinity():
				j.aff = affDynAff
			default:
				j.aff = 1 / math.Max(1, avgAlloc)
			}

			// Cache-reload penalty: the job's compute splits into one
			// footprint-rebuild segment per reallocation dispatch. Between a
			// task's consecutive dispatches, the other tenants of the
			// processor touch roughly as many lines as the task does, so the
			// surviving fraction shrinks as the segment footprint approaches
			// capacity; r0 is what an affinity-honoring dispatch finds still
			// resident.
			segments := math.Max(1, math.Round(j.realloc))
			segCompute := simtime.Seconds(j.workSec / segments)
			resident := math.Min(j.pattern.TouchRate(segCompute), capLines)
			surv := 1 - resident/capLines
			if surv < 0 {
				surv = 0
			}
			r0 := j.aff * resident * surv
			j.missLines = segments * footprint.Segment(j.pattern, 0, segCompute, r0)
			j.missSec = j.missLines * lineFillSec

			// Switch time: the kernel reallocation path per reallocation
			// dispatch, plus the user-level thread dispatch for every other
			// thread start.
			userDispatches := float64(j.nthreads) - j.realloc
			if userDispatches < 0 {
				userDispatches = 0
			}
			j.switchSec = j.realloc*switchPathSec + userDispatches*userSwitchSec

			base := j.workSec / mc.Speed
			j.phi = (base + j.missSec + j.switchSec) / base
		}
	}

	res := sched.Result{
		Policy: cfg.Policy.Name(),
		Jobs:   make([]sched.JobMetrics, 0, len(jobs)),
	}
	for i, j := range jobs {
		rt := simtime.Seconds(j.t)
		avgAlloc := j.allocInt / j.t

		// Waste from the decomposition identity: held processor-seconds not
		// spent computing, resolving misses, or switching. The Dynamic
		// family releases idle processors (after the yield delay), so only
		// the used integral plus the yield-delay hold time counts for it;
		// Equipartition and TimeShare hold their full allocation throughout.
		held := j.allocInt
		if class == classDynamic {
			held = j.usedInt + j.heldIdle
		}
		busy := j.workSec/mc.Speed + j.missSec + j.switchSec
		j.wasteSec = held - busy
		if j.wasteSec < 0 {
			j.wasteSec = 0
		}

		reallocs := int(math.Round(j.realloc))
		res.Jobs = append(res.Jobs, sched.JobMetrics{
			Job:           i,
			App:           j.name,
			Arrival:       0,
			Completion:    simtime.Time(0).Add(rt),
			ResponseTime:  rt,
			Work:          j.workDur,
			MissTime:      simtime.Seconds(j.missSec),
			MissLines:     j.missLines,
			SwitchTime:    simtime.Seconds(j.switchSec),
			Waste:         simtime.Seconds(j.wasteSec),
			Reallocations: reallocs,
			AffinityHits:  int(math.Round(j.aff * float64(reallocs))),
			AvgAlloc:      avgAlloc,
		})
		if c := simtime.Time(0).Add(rt); c > res.Makespan {
			res.Makespan = c
		}
	}
	return res, nil
}

// fluidPass jointly executes all jobs through their level profiles,
// recomputing integer allocations at level-boundary events and integrating
// the allocation/usage accumulators. Each job's compute rate is
// min(alloc, width) × Speed / phi: phi spreads the estimated per-job
// overhead over the schedule so contention between jobs reflects it.
func fluidPass(jobs []*jobSim, procs int, class policyClass, quantumSec, speed, yieldSec, contFrac float64) error {
	for _, j := range jobs {
		j.li = -1
		j.width = 0
		j.rem = 0
		j.alloc = 0
		j.lastUsed = 0
		j.done = false
		j.needsInflate = false
		j.pending = j.pending[:0]
		j.pendHead = 0
		j.t = 0
		j.allocInt = 0
		j.usedInt = 0
		j.realloc = 0
		j.heldIdle = 0
		j.enterLevel()
	}
	remaining := len(jobs)
	t := 0.0
	recompute(jobs, procs, class, t, yieldSec, contFrac)
	applyInflation(jobs)

	// The fractional fallback: with more active jobs than processors the
	// integer water-fill leaves some jobs at zero; they progress at the
	// time-shared fractional rate instead of deadlocking the pass.
	fallback := func(active int) float64 {
		if active > procs {
			return float64(procs) / float64(active)
		}
		return 0
	}

	active := remaining
	for events := 0; remaining > 0; events++ {
		if events > maxFluidEvents {
			return fmt.Errorf("analytic: fluid pass exceeded %d events", maxFluidEvents)
		}
		// Shortest time to the next level boundary.
		frac := fallback(active)
		dt := math.Inf(1)
		for _, j := range jobs {
			if j.done {
				continue
			}
			rate := j.effUsed(frac) * speed / j.phi
			if rate <= 0 {
				return fmt.Errorf("analytic: job %s stalled with zero rate", j.name)
			}
			if d := j.rem / rate; d < dt {
				dt = d
			}
		}
		// Advance every job by dt.
		for _, j := range jobs {
			if j.done {
				continue
			}
			used := j.effUsed(frac)
			j.rem -= used * speed / j.phi * dt
			j.allocInt += float64(j.alloc) * dt
			j.usedInt += used * dt
			if class == classTimeshare && quantumSec > 0 {
				j.realloc += used * dt / quantumSec
			}
		}
		t += dt
		// Level boundaries and completions.
		completed := false
		for _, j := range jobs {
			if j.done || j.rem > 1e-12 {
				continue
			}
			j.enterLevel()
			if j.done {
				j.t = t
				remaining--
				active--
				completed = true
			}
		}
		if remaining == 0 {
			break
		}
		// Equipartition reconsiders allocation only on arrival/completion;
		// the dynamic classes at every event.
		if class != classEqui || completed {
			recompute(jobs, procs, class, t, yieldSec, contFrac)
		}
		applyInflation(jobs)
	}
	// Processors still held under the yield delay at completion expire.
	for _, j := range jobs {
		j.expireHolds(math.Inf(1), yieldSec)
	}
	return nil
}

// effUsed is the processors the job effectively drives: its integer
// allocation capped by its width, or the fractional time-shared rate when
// over-subscription left it with none.
func (j *jobSim) effUsed(frac float64) float64 {
	u := j.alloc
	if j.width < u {
		u = j.width
	}
	if u == 0 && frac > 0 {
		return math.Min(frac, float64(j.width))
	}
	return float64(u)
}

// enterLevel advances the job to its next level, marking it done past the
// last one. The new level's work is inflated for intra-level imbalance once
// the allocation it will run under is known (applyInflation).
func (j *jobSim) enterLevel() {
	j.li++
	if j.li >= len(j.levels) {
		j.done = true
		j.width = 0
		return
	}
	lv := j.levels[j.li]
	j.width = lv.width
	j.rem = lv.work.SecondsF()
	j.needsInflate = true
}

// applyInflation corrects each freshly entered level for thread-count
// imbalance: w threads on a processors execute in ceil(w/a) waves, the last
// of which runs under-populated, so the level takes ceil(w/a)·min(a,w)
// processor-rounds rather than the fluid w.
func applyInflation(jobs []*jobSim) {
	for _, j := range jobs {
		if !j.needsInflate || j.done {
			continue
		}
		j.needsInflate = false
		a := j.alloc
		if a <= 0 || j.width <= a {
			continue
		}
		waves := math.Ceil(float64(j.width) / float64(a))
		inflate := waves * float64(a) / float64(j.width)
		if inflate > 1 {
			j.rem *= inflate
		}
	}
}

// pushHold records processors whose usage just dropped under a yield-delay
// policy: they stay with the job for yieldSec before releasing for real.
func (j *jobSim) pushHold(t, d float64) {
	j.pending = append(j.pending, pendingHold{t: t, d: d})
}

// consumeHolds reacquires up to d held processors whose hold is still
// within the yield delay at time t, accruing their idle-held span as waste,
// and returns how many were reacquired (these cost no reallocation).
func (j *jobSim) consumeHolds(t, yieldSec, d float64) float64 {
	taken := 0.0
	for d > 1e-12 && j.pendHead < len(j.pending) {
		h := &j.pending[j.pendHead]
		if t-h.t > yieldSec {
			// Expired tranche: released for real after a full delay.
			j.heldIdle += h.d * yieldSec
			j.pendHead++
			continue
		}
		m := math.Min(d, h.d)
		j.heldIdle += m * (t - h.t)
		h.d -= m
		d -= m
		taken += m
		if h.d <= 1e-12 {
			j.pendHead++
		}
	}
	return taken
}

// expireHolds releases tranches held longer than the yield delay.
func (j *jobSim) expireHolds(t, yieldSec float64) {
	for j.pendHead < len(j.pending) {
		h := &j.pending[j.pendHead]
		if t-h.t <= yieldSec {
			return
		}
		j.heldIdle += h.d * yieldSec
		j.pendHead++
	}
}

// recompute water-fills the processors over the active jobs round-robin —
// the same allocation-number computation Equipartition.Rebalance performs —
// with the policy class choosing each job's cap, then folds the allocation
// deltas into the reallocation counters. Under a yield-delay policy a usage
// drop parks the processors in a pending hold; rises consume still-held
// tranches for free before counting reallocations, and affinity-honoring
// policies discount the continuation fraction of what remains.
func recompute(jobs []*jobSim, procs int, class policyClass, t, yieldSec, contFrac float64) {
	remaining := procs
	for _, j := range jobs {
		j.scratch = 0
	}
	for remaining > 0 {
		progressed := false
		for _, j := range jobs {
			if j.done || remaining == 0 {
				continue
			}
			cap := j.allocCap(class, procs)
			if j.scratch >= cap {
				continue
			}
			j.scratch++
			remaining--
			progressed = true
		}
		if !progressed {
			break
		}
	}
	for _, j := range jobs {
		if j.done {
			j.scratch = 0
		}
		switch class {
		case classEqui:
			// Tasks never move otherwise; only allocation-number changes
			// dispatch onto new processors.
			if d := j.scratch - j.alloc; d > 0 {
				j.realloc += float64(d)
			}
		case classDynamic:
			// Every rise in driven processors is a reallocation dispatch,
			// less what a yield-delay hold hands back for free and what
			// affinity turns into continuations.
			used := math.Min(float64(j.scratch), float64(j.width))
			d := used - j.lastUsed
			j.lastUsed = used
			switch {
			case d < 0 && yieldSec > 0:
				j.pushHold(t, -d)
			case d > 0:
				free := 0.0
				if yieldSec > 0 {
					free = j.consumeHolds(t, yieldSec, d)
				}
				if d > free {
					j.realloc += (d - free) * (1 - contFrac)
				}
			}
			if yieldSec > 0 {
				j.expireHolds(t, yieldSec)
			}
		case classTimeshare:
			// Reallocations accrue at the quantum rate instead.
		}
		j.alloc = j.scratch
	}
}

// allocCap is the most processors the water-fill may grant the job.
func (j *jobSim) allocCap(class policyClass, procs int) int {
	switch class {
	case classEqui:
		return j.maxPar
	case classTimeshare:
		return procs
	default:
		if j.width < procs {
			return j.width
		}
		return procs
	}
}
