package analytic

import "testing"

func TestParsePromotionTableRejectsBadTolerances(t *testing.T) {
	cases := []string{
		`{"promote_rel_err":0,"tolerance_rel_err":0.1,"cells":[]}`,
		`{"promote_rel_err":0.08,"tolerance_rel_err":0,"cells":[]}`,
		`{"promote_rel_err":0.2,"tolerance_rel_err":0.1,"cells":[]}`, // promote looser than check
		`not json`,
	}
	for _, c := range cases {
		if _, err := ParsePromotionTable([]byte(c)); err == nil {
			t.Errorf("bad table accepted: %s", c)
		}
	}
}

func TestDefaultEnvelopeLoads(t *testing.T) {
	table := DefaultTable()
	if table.PromoteRelErr != DefaultPromoteRelErr || table.TolRelErr != DefaultTolRelErr {
		t.Errorf("golden thresholds %v/%v, want %v/%v",
			table.PromoteRelErr, table.TolRelErr, DefaultPromoteRelErr, DefaultTolRelErr)
	}
	env := DefaultEnvelope()
	if env.Size() == 0 {
		t.Fatal("checked-in golden promotes no cells")
	}
	promoted := 0
	for _, c := range table.Cells {
		if c.Promoted != env.Promoted(c.Coord) {
			t.Errorf("%s: table says promoted=%v, envelope says %v",
				c.Coord, c.Promoted, env.Promoted(c.Coord))
		}
		if c.Promoted {
			promoted++
			// Promotion is decided on the strict threshold at -write time.
			if re := c.Metrics[PromotionMetric].RelErr; re > table.PromoteRelErr {
				t.Errorf("%s promoted at %.1f%% rel err, above the %.0f%% promote bound",
					c.Coord, 100*re, 100*table.PromoteRelErr)
			}
		}
	}
	if promoted != env.Size() {
		t.Errorf("envelope size %d, table promotes %d", env.Size(), promoted)
	}
	if env.Promoted("no-such-coordinate") {
		t.Error("unknown coordinate inside the envelope")
	}
}
