// Package analytic estimates campaign-cell results — per-policy response
// times, reallocation counts, and P^A/P^NA penalty charges — from the
// paper's response-time model (Figure 1) and the footprint curves of
// internal/footprint, without running the discrete-event simulator.
//
// The estimator plays the same role the paper's own Section-7 analysis
// plays: the authors never simulate their future machines, they extrapolate
// with the analytic model. Here that idea is productized as a fast engine
// tier: a level-synchronous fluid approximation of the workload's execution
// (levels.go), a processor water-fill standing in for the allocation policy
// (engine.go), and the footprint segment model supplying the cache-reload
// penalty term. A differential calibration harness
// (internal/experiments.Calibrate + cmd/analyticcalib) validates the
// estimator against the exact simulator cell by cell and promotes only the
// coordinates whose error stays within tolerance (envelope.go); the `auto`
// engine trusts exactly that envelope.
//
// The estimator is deterministic: all accumulation iterates slices in index
// order, and no maps participate in floating-point arithmetic, so a given
// Config always produces bitwise identical Results.
package analytic

import (
	"repro/internal/simtime"
	"repro/internal/workload"
)

// level is one rank of a job's thread dependence DAG under
// level-synchronous execution: width threads jointly holding work of
// baseline compute. Level k contains the threads whose predecessors all
// complete in levels < k, matching how Graph.MaxWidth and the paper's
// parallelism figures count runnable threads.
type level struct {
	width int
	work  simtime.Duration
}

// levelProfile decomposes a graph into its level-synchronous execution
// profile with the same Kahn traversal Graph.computeWidth uses.
func levelProfile(g *workload.Graph) []level {
	n := g.NumThreads()
	preds := make([]int, n)
	for id := 0; id < n; id++ {
		preds[id] = g.Thread(workload.ThreadID(id)).NPreds
	}
	frontier := g.Roots()
	levels := make([]level, 0, 64)
	var next []workload.ThreadID
	for len(frontier) > 0 {
		lv := level{width: len(frontier)}
		next = next[:0]
		for _, id := range frontier {
			th := g.Thread(id)
			lv.work += th.Work
			for _, s := range th.Succs {
				preds[s]--
				if preds[s] == 0 {
					next = append(next, s)
				}
			}
		}
		levels = append(levels, lv)
		frontier = append(frontier[:0], next...)
	}
	return levels
}
