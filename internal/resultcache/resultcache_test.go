package resultcache

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestKeyFraming(t *testing.T) {
	// Distinct (kind, params, version) splits of the same concatenated
	// bytes must produce distinct addresses.
	a := Key("ab", []byte("c"), "v")
	b := Key("a", []byte("bc"), "v")
	if a == b {
		t.Error("length framing failed: split-point collision")
	}
	if Key("t", []byte("p"), "1") == Key("t", []byte("p"), "2") {
		t.Error("engine version does not affect the key")
	}
	if Key("t", []byte("p"), "1") != Key("t", []byte("p"), "1") {
		t.Error("key not deterministic")
	}
	if len(a) != 64 {
		t.Errorf("key length %d, want 64 hex chars", len(a))
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := New(1 << 20)
	if _, ok := c.Get("k"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("k", []byte("body"))
	got, ok := c.Get("k")
	if !ok || !bytes.Equal(got, []byte("body")) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 4 {
		t.Errorf("stats %+v", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := New(10)
	c.Put("a", []byte("aaaa")) // 4
	c.Put("b", []byte("bbbb")) // 8
	c.Get("a")                 // a now most recent
	c.Put("c", []byte("cccc")) // 12 > 10: evict b (LRU), not a
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s should have survived", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Bytes != 8 {
		t.Errorf("stats %+v", st)
	}
}

func TestCacheOversizedAndZeroBudget(t *testing.T) {
	c := New(4)
	c.Put("big", []byte("12345")) // larger than the whole budget
	if _, ok := c.Get("big"); ok {
		t.Error("oversized value was stored")
	}
	z := New(0)
	z.Put("k", []byte("v"))
	if _, ok := z.Get("k"); ok {
		t.Error("zero-budget cache stored a value")
	}
}

func TestCacheRePutKeepsOriginal(t *testing.T) {
	c := New(100)
	c.Put("k", []byte("first"))
	c.Put("k", []byte("XXXXX"))
	got, _ := c.Get("k")
	if !bytes.Equal(got, []byte("first")) {
		t.Errorf("re-put replaced content-addressed bytes: %q", got)
	}
	if st := c.Stats(); st.Bytes != 5 || st.Entries != 1 {
		t.Errorf("stats %+v", st)
	}
}

// TestCacheConcurrent exercises the lock under -race.
func TestCacheConcurrent(t *testing.T) {
	c := New(1 << 10)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("key-%d", i%17)
				c.Put(k, []byte(k))
				if v, ok := c.Get(k); ok && !bytes.Equal(v, []byte(k)) {
					t.Errorf("corrupt value %q for %q", v, k)
				}
				c.Stats()
			}
		}(g)
	}
	wg.Wait()
}
