package resultcache

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestKeyFraming(t *testing.T) {
	// Distinct (kind, params, version) splits of the same concatenated
	// bytes must produce distinct addresses.
	a := Key("ab", []byte("c"), "v")
	b := Key("a", []byte("bc"), "v")
	if a == b {
		t.Error("length framing failed: split-point collision")
	}
	if Key("t", []byte("p"), "1") == Key("t", []byte("p"), "2") {
		t.Error("engine version does not affect the key")
	}
	if Key("t", []byte("p"), "1") != Key("t", []byte("p"), "1") {
		t.Error("key not deterministic")
	}
	if len(a) != 64 {
		t.Errorf("key length %d, want 64 hex chars", len(a))
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := New(1 << 20)
	if _, ok := c.Get("k"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("k", []byte("body"))
	got, ok := c.Get("k")
	if !ok || !bytes.Equal(got, []byte("body")) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 4 {
		t.Errorf("stats %+v", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := New(10)
	c.Put("a", []byte("aaaa")) // 4
	c.Put("b", []byte("bbbb")) // 8
	c.Get("a")                 // a now most recent
	c.Put("c", []byte("cccc")) // 12 > 10: evict b (LRU), not a
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s should have survived", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Bytes != 8 {
		t.Errorf("stats %+v", st)
	}
}

func TestCacheOversizedAndZeroBudget(t *testing.T) {
	c := New(4)
	c.Put("big", []byte("12345")) // larger than the whole budget
	if _, ok := c.Get("big"); ok {
		t.Error("oversized value was stored")
	}
	z := New(0)
	z.Put("k", []byte("v"))
	if _, ok := z.Get("k"); ok {
		t.Error("zero-budget cache stored a value")
	}
}

func TestCacheRePutKeepsOriginal(t *testing.T) {
	c := New(100)
	c.Put("k", []byte("first"))
	c.Put("k", []byte("XXXXX"))
	got, _ := c.Get("k")
	if !bytes.Equal(got, []byte("first")) {
		t.Errorf("re-put replaced content-addressed bytes: %q", got)
	}
	if st := c.Stats(); st.Bytes != 5 || st.Entries != 1 {
		t.Errorf("stats %+v", st)
	}
}

// TestCachePutBudgetDiscipline is a table-driven regression test for two
// budget-accounting hazards on the Put path:
//
//   - A value larger than the whole budget must be rejected up front — a
//     naive "evict until it fits" loop would evict every resident entry
//     and then fail to store anyway, trading a full cache for nothing.
//   - Re-putting an existing key (which the service does whenever a
//     deduped job finishes after its twin) must not double-count used
//     bytes; the accounting would otherwise leak budget until healthy
//     entries are evicted for phantom usage.
func TestCachePutBudgetDiscipline(t *testing.T) {
	cases := []struct {
		name string
		ops  func(c *Cache)
		// expectations after ops
		wantEntries   int
		wantBytes     int64
		wantEvictions uint64
		wantKeys      []string // must all hit
	}{
		{
			name: "oversized put is a no-op, residents survive",
			ops: func(c *Cache) {
				c.Put("a", []byte("aaaa"))
				c.Put("b", []byte("bbbb"))
				c.Put("huge", bytes.Repeat([]byte("x"), 11)) // > whole budget
			},
			wantEntries:   2,
			wantBytes:     8,
			wantEvictions: 0,
			wantKeys:      []string{"a", "b"},
		},
		{
			name: "exactly-budget value stores after evicting all",
			ops: func(c *Cache) {
				c.Put("a", []byte("aaaa"))
				c.Put("full", bytes.Repeat([]byte("y"), 10)) // == budget: legal
			},
			wantEntries:   1,
			wantBytes:     10,
			wantEvictions: 1,
			wantKeys:      []string{"full"},
		},
		{
			name: "re-put does not double-count used bytes",
			ops: func(c *Cache) {
				c.Put("k", []byte("12345"))
				for i := 0; i < 10; i++ {
					c.Put("k", []byte("12345"))
				}
				// 5 bytes of room must genuinely remain.
				c.Put("m", []byte("abcde"))
			},
			wantEntries:   2,
			wantBytes:     10,
			wantEvictions: 0,
			wantKeys:      []string{"k", "m"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := New(10)
			tc.ops(c)
			st := c.Stats()
			if st.Entries != tc.wantEntries || st.Bytes != tc.wantBytes || st.Evictions != tc.wantEvictions {
				t.Errorf("stats = entries %d bytes %d evictions %d, want %d/%d/%d",
					st.Entries, st.Bytes, st.Evictions,
					tc.wantEntries, tc.wantBytes, tc.wantEvictions)
			}
			for _, k := range tc.wantKeys {
				if _, ok := c.Get(k); !ok {
					t.Errorf("key %q missing", k)
				}
			}
		})
	}
}

// TestCacheConcurrent exercises the lock under -race.
func TestCacheConcurrent(t *testing.T) {
	c := New(1 << 10)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("key-%d", i%17)
				c.Put(k, []byte(k))
				if v, ok := c.Get(k); ok && !bytes.Equal(v, []byte(k)) {
					t.Errorf("corrupt value %q for %q", v, k)
				}
				c.Stats()
			}
		}(g)
	}
	wg.Wait()
}

// TestPutCostAccounting pins the shared eviction-currency bookkeeping:
// resident CostNs tracks inserts, evictions, and the adopt-on-repeat rule,
// while the zero-cost Put path stays byte-compatible (cost stays zero).
func TestPutCostAccounting(t *testing.T) {
	c := New(100)
	c.PutCost("a", make([]byte, 40), 5_000)
	c.PutCost("b", make([]byte, 40), 7_000)
	if st := c.Stats(); st.CostNs != 12_000 {
		t.Errorf("CostNs = %d, want 12000", st.CostNs)
	}
	// Evicting a (LRU) must release its cost.
	c.PutCost("c", make([]byte, 40), 1_000)
	st := c.Stats()
	if st.Entries != 2 || st.CostNs != 8_000 {
		t.Errorf("after eviction: entries=%d CostNs=%d, want 2 and 8000", st.Entries, st.CostNs)
	}
	// Re-putting an existing key keeps its original cost...
	c.PutCost("b", make([]byte, 40), 9_999)
	if st := c.Stats(); st.CostNs != 8_000 {
		t.Errorf("re-put changed cost: CostNs = %d, want 8000", st.CostNs)
	}
	// ...unless none was recorded, in which case the cost is adopted.
	c.Put("zero", make([]byte, 10))
	if st := c.Stats(); st.CostNs != 8_000 {
		t.Errorf("zero-cost Put contributed cost: %d", st.CostNs)
	}
	c.PutCost("zero", make([]byte, 10), 500)
	if st := c.Stats(); st.CostNs != 8_500 {
		t.Errorf("cost not adopted on re-put: CostNs = %d, want 8500", st.CostNs)
	}
}
