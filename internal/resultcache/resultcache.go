// Package resultcache memoizes completed campaign results: a
// content-addressed, byte-budgeted LRU cache from canonical request
// identity to the exact response body served for it.
//
// The content address is a SHA-256 over (campaign kind, canonical
// parameter encoding, engine version). Because campaign results are
// deterministic — bitwise identical for a given (kind, params, seed) at
// any worker count — a hit can serve the stored bytes verbatim and the
// client cannot distinguish it from a fresh run. The engine version is
// folded into the address so a semantics-changing build (see
// internal/version) can never serve a stale body; no explicit
// invalidation pass is needed.
package resultcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"
)

// Key derives the content address for one campaign execution. params must
// be the canonical encoding (report.CanonicalJSON) of the *normalized*
// request parameters with Workers zeroed — normalization makes
// semantically identical requests collide, and Workers cannot affect
// result bytes.
func Key(kind string, params []byte, engineVersion string) string {
	h := sha256.New()
	// Length-prefix framing so ("ab","c") and ("a","bc") cannot collide.
	for _, part := range [][]byte{[]byte(kind), params, []byte(engineVersion)} {
		var n [8]byte
		ln := len(part)
		for i := 0; i < 8; i++ {
			n[i] = byte(ln >> (8 * i))
		}
		h.Write(n[:])
		h.Write(part)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Entries   int
	Bytes     int64
	Budget    int64
	Evictions uint64
	// CostNs is the total production cost (engine exec nanoseconds) of the
	// resident entries — the bytes-per-simulated-second currency this tier
	// shares with the disk tier (internal/diskstore). Entries stored via
	// the zero-cost Put contribute nothing.
	CostNs uint64
}

// Cache is a thread-safe LRU over immutable byte values with a total byte
// budget. Values are stored and returned by reference: callers must treat
// both inserted and returned slices as read-only (the service serves them
// to many responses concurrently).
type Cache struct {
	mu        sync.Mutex
	budget    int64
	used      int64
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
	costNs    uint64 // total cost of resident entries
}

type entry struct {
	key    string
	val    []byte
	costNs uint64
}

// New builds a cache holding at most budget bytes of values (keys and
// bookkeeping are not counted). A non-positive budget disables storage:
// every Get misses and Put is a no-op, which keeps the serving path
// uniform for cacheless deployments.
func New(budget int64) *Cache {
	return &Cache{
		budget: budget,
		ll:     list.New(),
		items:  make(map[string]*list.Element),
	}
}

// Get returns the value stored under key, marking it most recently used.
// The returned slice is shared and must not be modified.
func (c *Cache) Get(key string) ([]byte, bool) {
	val, _, ok := c.GetCost(key)
	return val, ok
}

// GetCost is Get plus the entry's recorded production cost (engine exec
// nanoseconds; zero for entries stored via the legacy Put). The cost is
// the eviction currency shared with the disk tier, so a path that copies
// an entry into another tier — peer cache fill, disk promotion — should
// use GetCost and carry the value along rather than re-file the bytes as
// free.
func (c *Cache) GetCost(key string) ([]byte, uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, 0, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	e := el.Value.(*entry)
	return e.val, e.costNs, true
}

// Put stores val under key with zero cost metadata, evicting
// least-recently-used entries until the byte budget holds. It is the
// byte-compatible legacy path: behavior is identical to the pre-cost
// cache. A value larger than the whole budget is not stored. Re-putting
// an existing key refreshes its recency but keeps the original bytes:
// results are content-addressed, so a second body for the same key is
// byte-identical by construction and there is nothing to replace.
func (c *Cache) Put(key string, val []byte) { c.PutCost(key, val, 0) }

// PutCost stores val under key together with the engine time (in
// nanoseconds) it cost to produce — the eviction currency shared with the
// disk tier. This tier still evicts by recency; the cost rides along so
// Stats can report the simulated-seconds held resident and so a write-
// behind or promotion into the disk tier carries the entry's value with
// it. Re-putting an existing key keeps its bytes and recency semantics
// (see Put) but adopts the cost if none was recorded yet, so a zero-cost
// legacy Put followed by a costed one does not pin the entry at zero
// value forever.
func (c *Cache) PutCost(key string, val []byte, costNs uint64) {
	if c.budget <= 0 || int64(len(val)) > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		if e := el.Value.(*entry); e.costNs == 0 && costNs > 0 {
			e.costNs = costNs
			c.costNs += costNs
		}
		return
	}
	for c.used+int64(len(val)) > c.budget {
		oldest := c.ll.Back()
		if oldest == nil {
			break
		}
		e := oldest.Value.(*entry)
		c.ll.Remove(oldest)
		delete(c.items, e.key)
		c.used -= int64(len(e.val))
		c.costNs -= e.costNs
		c.evictions++
	}
	c.items[key] = c.ll.PushFront(&entry{key: key, val: val, costNs: costNs})
	c.used += int64(len(val))
	c.costNs += costNs
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Entries:   len(c.items),
		Bytes:     c.used,
		Budget:    c.budget,
		Evictions: c.evictions,
		CostNs:    c.costNs,
	}
}
