package alloc

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestTaskRef(t *testing.T) {
	if NoTask.Valid() {
		t.Error("NoTask is valid")
	}
	if !(TaskRef{Job: 0, Task: 0}).Valid() {
		t.Error("zero ref invalid")
	}
	if (TaskRef{Job: -1, Task: 3}).Valid() {
		t.Error("negative job valid")
	}
}

func TestTriggerString(t *testing.T) {
	names := map[Trigger]string{
		TrigArrival:    "arrival",
		TrigCompletion: "completion",
		TrigDemandUp:   "demand-up",
		TrigProcFree:   "proc-free",
		TrigQuantum:    "quantum",
	}
	for trig, want := range names {
		if got := trig.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", trig, got, want)
		}
	}
	if Trigger(42).String() == "" {
		t.Error("unknown trigger empty")
	}
}

func TestNewState(t *testing.T) {
	s := NewState(4, 3)
	if s.Procs != 4 || s.NumJobs() != 3 {
		t.Fatalf("dims wrong: %d procs %d jobs", s.Procs, s.NumJobs())
	}
	for p := 0; p < 4; p++ {
		if s.ProcJob[p] != -1 {
			t.Errorf("proc %d not unassigned", p)
		}
		if s.ProcLastTask[p].Valid() {
			t.Errorf("proc %d has a last task", p)
		}
	}
	if len(s.UnassignedProcs()) != 4 {
		t.Errorf("UnassignedProcs = %v", s.UnassignedProcs())
	}
}

func TestActiveJobsAndFairShare(t *testing.T) {
	s := NewState(16, 4)
	if s.FairShare() != 0 {
		t.Errorf("FairShare with no active jobs = %v", s.FairShare())
	}
	s.Active[1] = true
	s.Active[3] = true
	got := s.ActiveJobs()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("ActiveJobs = %v", got)
	}
	if s.FairShare() != 8 {
		t.Errorf("FairShare = %v", s.FairShare())
	}
}

func TestRequestersOrderedByCredit(t *testing.T) {
	s := NewState(8, 3)
	for j := 0; j < 3; j++ {
		s.Active[j] = true
		s.Demand[j] = 5
		s.Alloc[j] = 1
	}
	s.Credit[0] = 1
	s.Credit[1] = 5
	s.Credit[2] = 3
	got := s.Requesters()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 0 {
		t.Errorf("Requesters = %v, want [1 2 0]", got)
	}
	// Satisfied jobs are excluded.
	s.Alloc[1] = 5
	got = s.Requesters()
	if len(got) != 2 || got[0] != 2 || got[1] != 0 {
		t.Errorf("Requesters = %v, want [2 0]", got)
	}
	// Ties break by job ID.
	s.Credit[0], s.Credit[2] = 3, 3
	got = s.Requesters()
	if got[0] != 0 || got[1] != 2 {
		t.Errorf("tie-break wrong: %v", got)
	}
}

func TestSupplies(t *testing.T) {
	s := NewState(5, 2)
	s.Active[0], s.Active[1] = true, true
	s.Assign(0, 0)
	s.Assign(1, 0)
	s.Assign(2, 1)
	s.ProcYield[1] = true
	s.ProcYield[2] = true
	if got := s.UnassignedProcs(); len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Errorf("UnassignedProcs = %v", got)
	}
	if got := s.YieldingProcs(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("YieldingProcs = %v", got)
	}
	if got := s.ProcsOf(0); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("ProcsOf(0) = %v", got)
	}
}

func TestLargestAllocJob(t *testing.T) {
	s := NewState(10, 3)
	s.Active[0], s.Active[1], s.Active[2] = true, true, true
	s.Alloc[0], s.Alloc[1], s.Alloc[2] = 2, 5, 3
	if got := s.LargestAllocJob(-1); got != 1 {
		t.Errorf("LargestAllocJob = %d", got)
	}
	if got := s.LargestAllocJob(1); got != 2 {
		t.Errorf("LargestAllocJob(except 1) = %d", got)
	}
	s.Active[1] = false
	if got := s.LargestAllocJob(-1); got != 2 {
		t.Errorf("inactive job selected: %d", got)
	}
	empty := NewState(4, 2)
	if got := empty.LargestAllocJob(-1); got != -1 {
		t.Errorf("empty LargestAllocJob = %d", got)
	}
}

func TestAssignMaintainsCounts(t *testing.T) {
	s := NewState(4, 2)
	s.Active[0], s.Active[1] = true, true
	s.Assign(0, 0)
	s.Assign(1, 0)
	if s.Alloc[0] != 2 {
		t.Fatalf("Alloc[0] = %d", s.Alloc[0])
	}
	s.Assign(1, 1) // move
	if s.Alloc[0] != 1 || s.Alloc[1] != 1 {
		t.Fatalf("after move: %v", s.Alloc)
	}
	s.ProcYield[1] = true
	s.Assign(1, 1) // same job: no-op
	if !s.ProcYield[1] {
		t.Error("same-job Assign cleared yield")
	}
	s.Assign(1, -1) // release
	if s.Alloc[1] != 0 || s.ProcJob[1] != -1 {
		t.Fatalf("after release: alloc=%v procjob=%v", s.Alloc, s.ProcJob)
	}
}

// Property: after arbitrary Assign sequences, Alloc[j] always equals the
// number of processors whose ProcJob is j.
func TestQuickAssignConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed, 7)
		s := NewState(6, 3)
		for i := 0; i < 200; i++ {
			s.Assign(rng.Intn(6), rng.Intn(4)-1)
			counts := make([]int, 3)
			for _, j := range s.ProcJob {
				if j >= 0 {
					counts[j]++
				}
			}
			for j := 0; j < 3; j++ {
				if counts[j] != s.Alloc[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
