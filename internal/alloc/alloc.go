// Package alloc defines the Minos-style processor allocator framework: the
// allocator-visible system state, the triggers on which allocation is
// reconsidered, and the Policy interface that the paper's five space-sharing
// disciplines (implemented in internal/core) plug into.
//
// Minos, the allocator the paper uses, runs as a user-level process that
// jobs communicate with through shared memory: each job continually
// reflects its instantaneous processor demand, and marks processors it
// cannot use as "willing to yield". The discrete-event engine in
// internal/sched plays the role of the operating system plus that shared
// memory: before each policy invocation it publishes a fresh State snapshot
// (demands, allocations, priorities/credits, and the affinity histories of
// processors and tasks), and afterwards it applies the policy's
// reassignment decisions, charging reallocation costs.
package alloc

import (
	"fmt"

	"repro/internal/simtime"
)

// TaskRef identifies a kernel task: the Task'th worker of job Job.
type TaskRef struct {
	Job, Task int
}

// NoTask is the absent task reference.
var NoTask = TaskRef{Job: -1, Task: -1}

// Valid reports whether the reference denotes a real task.
func (t TaskRef) Valid() bool { return t.Job >= 0 && t.Task >= 0 }

// Trigger identifies why the allocator is being invoked.
type Trigger int

// Allocation triggers.
const (
	// TrigArrival fires when a job enters the system (arg = job).
	TrigArrival Trigger = iota
	// TrigCompletion fires when a job leaves the system (arg = job).
	TrigCompletion
	// TrigDemandUp fires when a job's demand rises above its allocation
	// (arg = job) — the job is requesting additional processors.
	TrigDemandUp
	// TrigProcFree fires when a processor becomes available for
	// reallocation: unassigned, or marked willing-to-yield (arg = proc).
	TrigProcFree
	// TrigQuantum fires on quantum expiry for quantum-driven policies
	// (arg = -1).
	TrigQuantum
)

// String names the trigger.
func (t Trigger) String() string {
	switch t {
	case TrigArrival:
		return "arrival"
	case TrigCompletion:
		return "completion"
	case TrigDemandUp:
		return "demand-up"
	case TrigProcFree:
		return "proc-free"
	case TrigQuantum:
		return "quantum"
	}
	return fmt.Sprintf("Trigger(%d)", int(t))
}

// Decision reassigns one processor. Job == -1 releases the processor to the
// unassigned pool. When HasTask is set, Task directs the engine to dispatch
// that specific task on the processor (the task-targeted grants of affinity
// rules A.1 and A.2); otherwise the job's runtime picks an arbitrary
// suspended task. Task is an inline value (not a pointer) so building a
// targeted decision never heap-allocates.
type Decision struct {
	Proc    int
	Job     int
	Task    TaskRef
	HasTask bool
}

// State is the allocator-visible snapshot the engine publishes before each
// Rebalance call. Policies may freely mutate it as scratch space (for
// example, updating Alloc/ProcJob provisionally while constructing a
// decision list); the engine rebuilds it from authoritative run state
// before the next invocation.
type State struct {
	// Procs is the machine's processor count.
	Procs int

	// Per-job state, indexed by job ID.
	Active []bool    // job is in the system
	Demand []int     // instantaneous processor demand
	Alloc  []int     // processors currently assigned
	Credit []float64 // accrued priority credit (McCann et al. scheme)
	MaxPar []int     // maximum parallelism (Equipartition's cap)

	// Per-processor state.
	ProcJob     []int  // assigned job, or -1
	ProcWorking []bool // assigned and currently executing a thread
	ProcYield   []bool // assigned, idle, and offered for reallocation

	// Affinity histories (T = P = 1, as in the paper).
	ProcLastTask []TaskRef // last task to have run on each processor
	// LastTaskResumable[p] reports whether ProcLastTask[p] is not active
	// elsewhere and its job has work for it (allocation rule A.1's
	// precondition), precomputed by the engine.
	LastTaskResumable []bool
	// Desired[j] lists job j's desired processors under allocation rule
	// A.2 — for each of the job's resumable tasks, the processor it last
	// ran on — ordered by criticality (preempted tasks, which hold
	// in-progress threads, before idle ones). The paper's constraint
	// applies: a desired processor is granted only when it is not doing
	// useful work, never by preempting its current task.
	Desired [][]DesiredProc

	// Reused backing for the query helpers (ActiveJobs, Requesters,
	// UnassignedProcs, YieldingProcs, ProcsOf). Each helper owns one
	// scratch slice, so the slice a helper returns stays valid until that
	// same helper is called again — the access pattern every policy
	// follows — and the per-Rebalance query storm allocates nothing.
	activeScratch, reqScratch, unassignedScratch, yieldScratch, procsOfScratch []int
}

// DesiredProc is a desired processor and the task that wants it.
type DesiredProc struct {
	Proc int
	Task TaskRef
}

// NewState allocates a State sized for the given processor and job counts.
func NewState(procs, jobs int) *State {
	s := &State{}
	s.Reset(procs, jobs)
	return s
}

// Reset re-sizes the snapshot for a new run's processor and job counts and
// restores every field to its initial value, retaining allocated capacity
// (including the Desired sub-slices and query scratch) so one State can
// serve many simulation runs. A reset State is indistinguishable from a
// freshly constructed one.
func (s *State) Reset(procs, jobs int) {
	s.Procs = procs
	s.Active = resize(s.Active, jobs)
	s.Demand = resize(s.Demand, jobs)
	s.Alloc = resize(s.Alloc, jobs)
	s.Credit = resize(s.Credit, jobs)
	s.MaxPar = resize(s.MaxPar, jobs)
	s.ProcJob = resize(s.ProcJob, procs)
	s.ProcWorking = resize(s.ProcWorking, procs)
	s.ProcYield = resize(s.ProcYield, procs)
	s.ProcLastTask = resize(s.ProcLastTask, procs)
	s.LastTaskResumable = resize(s.LastTaskResumable, procs)
	s.Desired = resize(s.Desired, jobs)
	for j := range jobs {
		s.Active[j] = false
		s.Demand[j] = 0
		s.Alloc[j] = 0
		s.Credit[j] = 0
		s.MaxPar[j] = 0
		s.Desired[j] = s.Desired[j][:0]
	}
	for p := 0; p < procs; p++ {
		s.ProcJob[p] = -1
		s.ProcWorking[p] = false
		s.ProcYield[p] = false
		s.ProcLastTask[p] = NoTask
		s.LastTaskResumable[p] = false
	}
}

// resize returns s with length n, retaining capacity where possible.
func resize[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return append(s[:cap(s)], make([]T, n-cap(s))...)
}

// NumJobs returns the number of job slots (active or not).
func (s *State) NumJobs() int { return len(s.Active) }

// ActiveJobs returns the IDs of jobs currently in the system. The returned
// slice is scratch owned by the State, valid until the next ActiveJobs call.
func (s *State) ActiveJobs() []int {
	out := s.activeScratch[:0]
	for j, a := range s.Active {
		if a {
			out = append(out, j)
		}
	}
	s.activeScratch = out
	return out
}

// NumActive returns the number of jobs currently in the system.
func (s *State) NumActive() int {
	n := 0
	for _, a := range s.Active {
		if a {
			n++
		}
	}
	return n
}

// FairShare returns the equal-division share of processors per active job
// (zero when no job is active).
func (s *State) FairShare() float64 {
	n := s.NumActive()
	if n == 0 {
		return 0
	}
	return float64(s.Procs) / float64(n)
}

// Requesters returns active jobs whose demand exceeds their allocation,
// ordered by descending credit (ties broken by lower job ID, keeping the
// simulation deterministic). The returned slice is scratch owned by the
// State, valid until the next Requesters call.
func (s *State) Requesters() []int {
	out := s.reqScratch[:0]
	for j := range s.Active {
		if s.Active[j] && s.Demand[j] > s.Alloc[j] {
			out = append(out, j)
		}
	}
	s.reqScratch = out
	// Insertion sort by (credit desc, id asc): requester lists are tiny.
	for i := 1; i < len(out); i++ {
		for k := i; k > 0; k-- {
			a, b := out[k-1], out[k]
			if s.Credit[b] > s.Credit[a] {
				out[k-1], out[k] = b, a
			} else {
				break
			}
		}
	}
	return out
}

// UnassignedProcs returns processors not assigned to any job, in index
// order (allocation rule D.1's supply). The returned slice is scratch owned
// by the State, valid until the next UnassignedProcs call.
func (s *State) UnassignedProcs() []int {
	out := s.unassignedScratch[:0]
	for p, j := range s.ProcJob {
		if j == -1 {
			out = append(out, p)
		}
	}
	s.unassignedScratch = out
	return out
}

// YieldingProcs returns processors marked willing-to-yield, in index order
// (allocation rule D.2's supply). The returned slice is scratch owned by
// the State, valid until the next YieldingProcs call.
func (s *State) YieldingProcs() []int {
	out := s.yieldScratch[:0]
	for p := range s.ProcJob {
		if s.ProcJob[p] != -1 && s.ProcYield[p] {
			out = append(out, p)
		}
	}
	s.yieldScratch = out
	return out
}

// LargestAllocJob returns the active job with the most processors,
// excluding 'except' (pass -1 to exclude none); ties break to the lower
// job ID. It returns -1 if no active job holds a processor.
func (s *State) LargestAllocJob(except int) int {
	best, bestAlloc := -1, 0
	for j := range s.Active {
		if !s.Active[j] || j == except {
			continue
		}
		if s.Alloc[j] > bestAlloc {
			best, bestAlloc = j, s.Alloc[j]
		}
	}
	return best
}

// ProcsOf returns the processors currently assigned to job j, in index
// order. The returned slice is scratch owned by the State, valid until the
// next ProcsOf call.
func (s *State) ProcsOf(j int) []int {
	out := s.procsOfScratch[:0]
	for p, owner := range s.ProcJob {
		if owner == j {
			out = append(out, p)
		}
	}
	s.procsOfScratch = out
	return out
}

// Assign provisionally applies a decision to the snapshot, so a policy's
// later logic observes its earlier choices within one Rebalance call.
func (s *State) Assign(proc, job int) {
	old := s.ProcJob[proc]
	if old == job {
		return
	}
	if old >= 0 {
		s.Alloc[old]--
	}
	s.ProcJob[proc] = job
	s.ProcYield[proc] = false
	s.ProcWorking[proc] = false
	if job >= 0 {
		s.Alloc[job]++
	}
}

// Policy is a processor allocation discipline.
//
// A Policy value carries per-run state (for example, a rotation cursor) and
// must not be shared between simulation runs.
type Policy interface {
	// Name returns the discipline's name as used in the paper.
	Name() string
	// Rebalance inspects the snapshot and returns processor reassignments.
	// arg is the trigger's subject (job or processor index, -1 if none).
	Rebalance(s *State, trig Trigger, arg int) []Decision
	// YieldDelay returns how long an idle processor is held by its job
	// before being offered for reallocation (0 = offered immediately).
	YieldDelay() simtime.Duration
	// Quantum returns the time slice for quantum-driven policies
	// (0 = event-driven only).
	Quantum() simtime.Duration
	// PrefersAffinity reports whether, when a processor is handed to a
	// job, the job's runtime should resume the task that last ran on that
	// processor (rather than an arbitrary suspended task). Affinity-blind
	// policies answer false, which keeps their measured %affinity at
	// chance level as in the paper's Table 3.
	PrefersAffinity() bool
}
