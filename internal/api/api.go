// Package api pins the /v1 wire conventions every HTTP surface of the
// daemon follows — the service's client-facing endpoints and the fleet's
// coordinator↔worker protocol alike:
//
//   - every JSON body carries "api_version";
//   - every non-2xx response is the uniform error envelope
//     {"api_version","error":{"code","message","field"}};
//   - X-Request-Id identifies a request end to end: minted at the edge,
//     propagated coordinator→worker on dispatch, and echoed back on the
//     response so one campaign's fan-out correlates across daemons.
//
// The package exists so the service and fleet layers cannot drift: both
// render errors through WriteError, so an envelope-shape change is one
// edit, and a fleet client can parse a worker's 401 with the same code
// it uses for the coordinator's 429.
package api

import (
	"encoding/json"
	"net/http"
)

// Version stamps every /v1 JSON body (views, listings, error envelopes,
// stream events) so clients can detect surface changes without relying
// on response headers.
const Version = "v1"

// RequestIDHeader carries the request id minted at the submitting edge.
// The coordinator forwards it on every dispatch and peer fill, and the
// serving side echoes it back, so one campaign's cells correlate across
// the whole fleet.
const RequestIDHeader = "X-Request-Id"

// Error is the machine-readable error payload carried by every non-2xx
// /v1 response (fleet endpoints included).
type Error struct {
	// Code is a stable, grep-able identifier: invalid_request,
	// unknown_kind, invalid_param, queue_full, draining, not_found,
	// job_failed, job_canceled, job_not_finished, unauthenticated,
	// engine_skew, plan_mismatch, over_capacity, internal.
	Code string `json:"code"`
	// Message is the human-readable description.
	Message string `json:"message"`
	// Field names the offending parameter for validation failures, as a
	// path into the request body (e.g. "params.mix", "url").
	Field string `json:"field,omitempty"`
}

// ErrorEnvelope is the wire form of a failed request.
type ErrorEnvelope struct {
	APIVersion string `json:"api_version"`
	Error      Error  `json:"error"`
}

// WriteJSON writes v as an indented JSON body with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// WriteError writes the uniform error envelope.
func WriteError(w http.ResponseWriter, status int, code, field, msg string) {
	WriteJSON(w, status, ErrorEnvelope{
		APIVersion: Version,
		Error:      Error{Code: code, Message: msg, Field: field},
	})
}

// EchoRequestID mirrors an inbound X-Request-Id onto the response, the
// serving half of the propagation contract. Call before writing the
// status line.
func EchoRequestID(w http.ResponseWriter, r *http.Request) {
	if rid := r.Header.Get(RequestIDHeader); rid != "" {
		w.Header().Set(RequestIDHeader, rid)
	}
}
