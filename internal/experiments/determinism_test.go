package experiments

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// The campaign runner's core guarantee: results are a pure function of the
// options, never of the worker count or of goroutine completion order. Each
// campaign below runs once sequentially and once on eight workers (on a grid
// much larger than eight cells, so work genuinely interleaves) and the
// outputs must match bitwise — reflect.DeepEqual over float64s tolerates no
// ULP of drift.

func determinismOpts() Options {
	o := FastOptions()
	o.MeasureBudget = 2 * simtime.Second
	return o
}

func TestComparePoliciesDeterministicAcrossWorkers(t *testing.T) {
	mixes := workload.Mixes()[:3]
	policies := []string{"Equipartition", "Dyn-Aff"}
	run := func(workers int) *CompareResult {
		t.Helper()
		o := determinismOpts()
		o.Workers = workers
		cr, err := ComparePoliciesCtx(context.Background(), o, mixes, policies)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return cr
	}
	seq, par := run(1), run(8)
	if !reflect.DeepEqual(seq.Summaries, par.Summaries) {
		t.Fatal("ComparePolicies summaries differ between Workers=1 and Workers=8")
	}
}

func TestFutureScenariosDeterministicAcrossWorkers(t *testing.T) {
	mixes := workload.Mixes()[:2]
	policies := []string{"Equipartition", "Dyn-Aff"}
	run := func(workers int) map[ScenarioKey]interface{} {
		t.Helper()
		o := determinismOpts()
		o.Workers = workers
		cr, err := ComparePoliciesCtx(context.Background(), o, mixes, policies)
		if err != nil {
			t.Fatalf("workers=%d: compare: %v", workers, err)
		}
		t1, err := Table1Ctx(context.Background(), o)
		if err != nil {
			t.Fatalf("workers=%d: table1: %v", workers, err)
		}
		scen, err := FutureScenarios(cr, t1)
		if err != nil {
			t.Fatalf("workers=%d: scenarios: %v", workers, err)
		}
		out := make(map[ScenarioKey]interface{}, len(scen))
		for k, v := range scen {
			out[k] = v
		}
		return out
	}
	seq, par := run(1), run(8)
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("FutureScenarios outputs differ between Workers=1 and Workers=8")
	}
}

func TestFutureSimulatedDeterministicAcrossWorkers(t *testing.T) {
	mix := workload.Mixes()[4]
	run := func(workers int) []FutureSimPoint {
		t.Helper()
		o := determinismOpts()
		o.Workers = workers
		pts, err := FutureSimulatedCtx(context.Background(), o, mix,
			[]string{"Dyn-Aff"}, []float64{1, 4})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return pts
	}
	if seq, par := run(1), run(8); !reflect.DeepEqual(seq, par) {
		t.Fatal("FutureSimulated points differ between Workers=1 and Workers=8")
	}
}

func TestCharacterizeDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []AppCharacter {
		t.Helper()
		o := determinismOpts()
		o.Workers = workers
		chars, err := CharacterizeCtx(context.Background(), o)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return chars
	}
	if seq, par := run(1), run(8); !reflect.DeepEqual(seq, par) {
		t.Fatal("Characterize results differ between Workers=1 and Workers=8")
	}
}

// TestSimStatsDeterministicAcrossWorkers extends the worker-count
// invariance to the out-of-band instrumentation: the folded SimStats —
// totals, per-policy breakdown, cell count, even the eventq high-water
// mark — must be identical whether cells ran sequentially or on eight
// workers. Stats are folded in grid order after the parallel phase, so
// this holds by construction; the test pins it.
func TestSimStatsDeterministicAcrossWorkers(t *testing.T) {
	mixes := workload.Mixes()[:3]
	policies := []string{"Equipartition", "Dyn-Aff"}
	run := func(workers int) obs.CampaignSnapshot {
		t.Helper()
		o := determinismOpts()
		o.Workers = workers
		o.Stats = obs.NewCampaignStats()
		if _, err := ComparePoliciesCtx(context.Background(), o, mixes, policies); err != nil {
			t.Fatalf("workers=%d: compare: %v", workers, err)
		}
		if _, err := Table1Ctx(context.Background(), o); err != nil {
			t.Fatalf("workers=%d: table1: %v", workers, err)
		}
		return o.Stats.Snapshot()
	}
	seq, par := run(1), run(8)
	if seq.Cells == 0 || seq.Total.Runs == 0 || seq.Total.Reallocations == 0 {
		t.Fatalf("collector stayed empty: %+v", seq.Total)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("SimStats differ between Workers=1 and Workers=8:\nseq %+v\npar %+v", seq, par)
	}
}

func TestValidateRejectsNegativeWorkers(t *testing.T) {
	o := FastOptions()
	o.Workers = -1
	if err := o.Validate(); err == nil {
		t.Fatal("Workers=-1 accepted")
	}
}

func TestComparePoliciesCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := determinismOpts()
	o.Workers = 4
	if _, err := ComparePoliciesCtx(ctx, o, workload.Mixes()[:1], []string{"Equipartition"}); err == nil {
		t.Fatal("cancelled campaign returned no error")
	}
}
