package experiments

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/report"
)

// StatsReport renders a campaign's accumulated simulation statistics as
// the paper's Figure 1 response-time decomposition: work, waste, switch
// overhead and miss stall, then the reallocation counts split into P^A
// and P^NA charges and the cache-reload transient they cost. One column
// per policy (sorted) plus a total column; rows are fixed, so output is
// deterministic for a given snapshot.
func StatsReport(cs *obs.CampaignStats) report.Table {
	snap := cs.Snapshot()
	t := report.Table{
		Title:   "Response-time decomposition (Figure 1 terms)",
		Headers: []string{"metric"},
	}
	cols := make([]obs.SimStats, 0, len(snap.PolicyOrder)+1)
	for _, pol := range snap.PolicyOrder {
		t.Headers = append(t.Headers, pol)
		cols = append(cols, snap.PerPolicy[pol])
	}
	t.Headers = append(t.Headers, "total")
	cols = append(cols, snap.Total)

	addRow := func(name string, get func(obs.SimStats) string) {
		row := []string{name}
		for _, s := range cols {
			row = append(row, get(s))
		}
		t.AddRow(row...)
	}
	count := func(get func(obs.SimStats) uint64) func(obs.SimStats) string {
		return func(s obs.SimStats) string { return fmt.Sprintf("%d", get(s)) }
	}
	cpuSec := func(get func(obs.SimStats) int64) func(obs.SimStats) string {
		return func(s obs.SimStats) string { return report.F(float64(get(s))/1e9, 2) }
	}

	addRow("simulation runs", count(func(s obs.SimStats) uint64 { return s.Runs }))
	addRow("events fired", count(func(s obs.SimStats) uint64 { return s.Events }))
	addRow("eventq peak depth", count(func(s obs.SimStats) uint64 { return s.EventqPeak }))
	addRow("work (cpu-s)", cpuSec(func(s obs.SimStats) int64 { return s.WorkNs }))
	addRow("waste (cpu-s)", cpuSec(func(s obs.SimStats) int64 { return s.WasteNs }))
	addRow("switch overhead (cpu-s)", cpuSec(func(s obs.SimStats) int64 { return s.SwitchNs }))
	addRow("miss stall (cpu-s)", cpuSec(func(s obs.SimStats) int64 { return s.MissNs }))
	addRow("reallocations", count(func(s obs.SimStats) uint64 { return s.Reallocations }))
	addRow("  P^A charges (affinity kept)", count(func(s obs.SimStats) uint64 { return s.PACharges }))
	addRow("  P^NA charges (cold cache)", count(func(s obs.SimStats) uint64 { return s.PNACharges }))
	addRow("  migrations", count(func(s obs.SimStats) uint64 { return s.Migrations }))
	addRow("cache-reload transient (cpu-s)", cpuSec(func(s obs.SimStats) int64 { return s.PenaltyNs }))
	addRow("coherency flushes", count(func(s obs.SimStats) uint64 { return s.Flushes }))
	addRow("lines invalidated", func(s obs.SimStats) string { return report.F(s.InvalLines, 0) })
	addRow("cache-model plans", count(func(s obs.SimStats) uint64 { return s.Plans }))
	addRow("cache-model commits", count(func(s obs.SimStats) uint64 { return s.Commits }))
	return t
}
