package experiments

import (
	"fmt"

	"repro/internal/analytic"
	"repro/internal/sched"
)

// Engine tiers for the grid-shaped campaign kinds. EngineSim runs every
// cell through the discrete-event simulator; EngineAnalytic estimates every
// cell with internal/analytic; EngineAuto serves a cell analytically only
// when its coordinate is inside the differentially validated promotion
// envelope (analytic.DefaultEnvelope) and falls back to the simulator
// elsewhere. The engine choice participates in cell and campaign cache
// keys, so simulated and analytic results never mix in a result cache.
const (
	EngineSim      = "sim"
	EngineAnalytic = "analytic"
	EngineAuto     = "auto"
)

// ValidateEngine reports whether engine names a tier the campaign kind
// can run: any known tier on the grid-shaped kinds (compare, future,
// futuresim), only "" or EngineSim elsewhere. The returned error is the
// same *ParamError the service surfaces (field "params.engine"), so a
// CLI flag and an HTTP request fail with identical diagnostics instead
// of the flag being silently ignored.
func ValidateEngine(kind, engine string) error {
	norm, err := normalizeEngine(engine)
	if err != nil {
		return &ParamError{Field: "params.engine", Msg: err.Error()}
	}
	switch kind {
	case "compare", "future", "futuresim":
		return nil
	}
	if norm != EngineSim {
		return &ParamError{Field: "params.engine",
			Msg: fmt.Sprintf("kind %q has no simulation grid; engine must be omitted or %q", kind, EngineSim)}
	}
	return nil
}

// normalizeEngine folds the empty default to EngineSim and rejects unknown
// tiers.
func normalizeEngine(engine string) (string, error) {
	switch engine {
	case "", EngineSim:
		return EngineSim, nil
	case EngineAnalytic, EngineAuto:
		return engine, nil
	}
	return "", fmt.Errorf("unknown engine %q (valid: %s, %s, %s)",
		engine, EngineSim, EngineAnalytic, EngineAuto)
}

// compareCellCoord is the canonical coordinate of one compare-grid cell —
// the envelope lookup key shared by the campaign runners, the cell planner,
// and the calibration harness. Every parameter that changes the cell's
// simulated bits participates.
func compareCellCoord(procs, reps, appScale int, seed uint64, mix int, policy string) string {
	return fmt.Sprintf("compare|procs=%d|reps=%d|app_scale=%d|seed=%d|mix=%d|policy=%s",
		procs, reps, appScale, seed, mix, policy)
}

// futureSimCellCoord is the canonical coordinate of one futuresim-grid
// cell.
func futureSimCellCoord(procs, reps, appScale int, seed uint64, mix int, product float64, policy string) string {
	return fmt.Sprintf("futuresim|procs=%d|reps=%d|app_scale=%d|seed=%d|mix=%d|product=%g|policy=%s",
		procs, reps, appScale, seed, mix, product, policy)
}

// resolveCellEngine maps the campaign-level engine choice to the engine one
// cell actually runs on: auto promotes exactly the envelope, everything
// else passes through. Resolution happens at planning time so cache keys
// carry only "sim" or "analytic" — an auto cell shares its cache entry with
// the same cell requested explicitly.
func resolveCellEngine(engine, coord string) string {
	if engine != EngineAuto {
		return engine
	}
	if analytic.DefaultEnvelope().Promoted(coord) {
		return EngineAnalytic
	}
	return EngineSim
}

// runCell executes one cell on the resolved engine tier.
func runCell(engine string, cfg sched.Config) (sched.Result, error) {
	if engine == EngineAnalytic {
		return analytic.Run(cfg)
	}
	return runSim(cfg)
}
