package experiments

import (
	"sync"

	"repro/internal/sched"
)

// runnerPool recycles sched.Runner engines across simulation cells: each
// worker checks one out per cell and returns it afterwards, so the event
// queue, cache model and their internal buffers are allocated once per
// worker rather than once per run. Reusing a Runner is bitwise equivalent
// to building a fresh engine (see the sched package's
// TestRunnerReuseBitwiseIdentical), so pooling cannot perturb results.
var runnerPool = sync.Pool{New: func() any { return sched.NewRunner() }}

// runSim executes one simulation cell on a pooled Runner.
func runSim(cfg sched.Config) (sched.Result, error) {
	r := runnerPool.Get().(*sched.Runner)
	defer runnerPool.Put(r)
	return r.Run(cfg)
}
