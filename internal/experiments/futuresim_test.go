package experiments

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestFutureSimulated(t *testing.T) {
	opts := FastOptions()
	opts.Replications = 1
	mix, _ := workload.MixByNumber(5)
	policies := []string{"Dynamic", "Dyn-Aff"}
	products := []float64{1, 16, 64}
	pts, err := FutureSimulated(opts, mix, policies, products)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, pt := range pts {
		for _, p := range policies {
			rel := pt.SimRel[p]
			if rel <= 0 || rel > 2 {
				t.Errorf("product %v %s: simulated relative RT %v implausible", pt.Product, p, rel)
			}
		}
	}
	// At product 1 the simulation is the baseline machine: the dynamic
	// policies beat Equipartition.
	if pts[0].SimRel["Dynamic"] > 1.02 {
		t.Errorf("baseline simulated relative RT %v > 1", pts[0].SimRel["Dynamic"])
	}
	// On much faster machines the dynamic policies must still not
	// collapse: the paper's conclusion is that they remain at or below
	// Equipartition far into the future, and the simulated applications
	// (with fixed 1991 footprints) are the optimistic bracket of the
	// model, so their relative RT stays below the model's growth.
	if pts[2].SimRel["Dyn-Aff"] > 1.1 {
		t.Errorf("simulated Dyn-Aff at product 64: relative RT %v", pts[2].SimRel["Dyn-Aff"])
	}

	modelRel := map[string][]float64{"Dynamic": {0.9, 0.95, 1.0}}
	tab := FutureSimTable(pts, modelRel, policies)
	var b strings.Builder
	if err := tab.Write(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "sim") || !strings.Contains(b.String(), "model") {
		t.Error("table missing sim/model columns")
	}
}

func TestFutureSimulatedErrors(t *testing.T) {
	opts := FastOptions()
	mix, _ := workload.MixByNumber(5)
	if _, err := FutureSimulated(opts, mix, []string{"Dynamic"}, []float64{0.5}); err == nil {
		t.Error("sub-unit product accepted")
	}
	if _, err := FutureSimulated(opts, mix, []string{"bogus"}, []float64{1}); err == nil {
		t.Error("bogus policy accepted")
	}
	if _, err := FutureSimulated(opts, workload.Mix{Number: 9}, []string{"Dynamic"}, []float64{1}); err == nil {
		t.Error("empty mix accepted")
	}
}
