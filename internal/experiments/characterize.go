package experiments

import (
	"context"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/workload"
)

// AppCharacter reports one application's characteristics measured in
// isolation on the experiment machine, as in the paper's Figures 2–4.
type AppCharacter struct {
	Name string
	// ElapsedSec is the isolated execution time.
	ElapsedSec float64
	// TotalWorkSec is the graph's total compute.
	TotalWorkSec float64
	// AvgDemand is the average number of processors executing threads.
	AvgDemand float64
	// MaxParallelism is the widest level of the dependence graph.
	MaxParallelism int
	// Threads is the thread count.
	Threads int
	// ProfilePct[k] is the percentage of elapsed time spent at physical
	// parallelism level k.
	ProfilePct []float64
}

// Characterize runs each application alone on the experiment machine and
// reports its parallelism characteristics (the paper's Figures 2–4). It is
// CharacterizeCtx without cancellation.
func Characterize(opts Options) ([]AppCharacter, error) {
	return CharacterizeCtx(context.Background(), opts)
}

// CharacterizeCtx is Characterize with cancellation, running the isolated
// per-application simulations on opts.Workers workers. Each cell writes its
// slot in the fixed application order, so output is identical for every
// worker count.
func CharacterizeCtx(ctx context.Context, opts Options) ([]AppCharacter, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	mixApps := characterizeApps(opts)
	out := make([]AppCharacter, len(mixApps))
	simStats := make([]obs.SimStats, len(mixApps))
	err := parallel.ForEach(ctx, opts.Workers, len(mixApps), func(ctx context.Context, i int) error {
		ch, st, err := characterizeApp(opts, mixApps[i])
		if err != nil {
			return err
		}
		out[i], simStats[i] = ch, st
		return nil
	})
	if err != nil {
		return nil, err
	}
	if opts.Stats != nil {
		parallel.Fold(simStats, func(_ int, s obs.SimStats) {
			opts.Stats.Add("Equipartition", s)
		})
	}
	return out, nil
}

// characterizeApps returns the applications characterized in isolation:
// the three single-application mixes instantiated at the configured
// scale, in fixed order.
func characterizeApps(opts Options) []workload.App {
	mixApps := []workload.App{}
	for _, m := range []workload.Mix{{Number: 0, MVA: 1}, {Number: 0, Matrix: 1}, {Number: 0, Gravity: 1}} {
		mixApps = append(mixApps, opts.apps(m, opts.Seed)...)
	}
	return mixApps
}

// characterizeApp simulates one application alone under Equipartition and
// derives its Figures 2-4 character. Shared by the monolithic campaign
// and the per-app cell path, so both produce identical values.
func characterizeApp(opts Options, app workload.App) (AppCharacter, obs.SimStats, error) {
	res, err := runSim(sched.Config{
		Machine: opts.Machine,
		Policy:  core.NewEquipartition(),
		Apps:    []workload.App{app},
		Seed:    opts.Seed,
	})
	if err != nil {
		return AppCharacter{}, obs.SimStats{}, err
	}
	j := res.Jobs[0]
	elapsed := j.ResponseTime.SecondsF()
	ch := AppCharacter{
		Name:           app.Name,
		ElapsedSec:     elapsed,
		TotalWorkSec:   app.Graph.TotalWork().SecondsF(),
		MaxParallelism: app.MaxParallelism(),
		Threads:        app.Graph.NumThreads(),
	}
	var weighted, total float64
	for level, d := range res.Profile {
		weighted += float64(level) * d.SecondsF()
		total += d.SecondsF()
	}
	ch.ProfilePct = make([]float64, len(res.Profile))
	if total > 0 {
		for level, d := range res.Profile {
			ch.ProfilePct[level] = 100 * d.SecondsF() / total
		}
		ch.AvgDemand = weighted / total
	}
	return ch, res.Stats, nil
}

// CharacterTable renders the characterization as a table in the spirit of
// the captions of Figures 2–4.
func CharacterTable(chars []AppCharacter) report.Table {
	t := report.Table{
		Title:   "Application characteristics (isolated, 16 processors) — Figures 2-4",
		Headers: []string{"app", "threads", "max par", "elapsed (s)", "total work (s)", "avg demand"},
	}
	for _, c := range chars {
		t.AddRow(c.Name,
			report.F(float64(c.Threads), 0),
			report.F(float64(c.MaxParallelism), 0),
			report.F(c.ElapsedSec, 2),
			report.F(c.TotalWorkSec, 1),
			report.F(c.AvgDemand, 1),
		)
	}
	return t
}

// ProfileTable renders the percentage of time spent at each parallelism
// level, the body of Figures 2–4.
func ProfileTable(chars []AppCharacter) report.Table {
	t := report.Table{
		Title:   "%% time at each level of physical parallelism",
		Headers: []string{"level"},
	}
	maxLevels := 0
	for _, c := range chars {
		t.Headers = append(t.Headers, c.Name)
		if len(c.ProfilePct) > maxLevels {
			maxLevels = len(c.ProfilePct)
		}
	}
	for level := 0; level < maxLevels; level++ {
		row := []string{report.F(float64(level), 0)}
		for _, c := range chars {
			v := 0.0
			if level < len(c.ProfilePct) {
				v = c.ProfilePct[level]
			}
			row = append(row, report.F(v, 1))
		}
		t.AddRow(row...)
	}
	return t
}
