package experiments

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// CampaignParams is the wire-level parameterization of one campaign: the
// subset of Options a service client may set, plus the per-kind knobs of
// the individual drivers. The zero value of every field means "use the
// kind's default", so a minimal request like {"kind":"table1"} is valid.
//
// Params are normalized (all defaults made explicit, irrelevant fields
// zeroed) before being hashed into a result-cache key, so two requests
// that differ only in spelling — {} versus {"seed":1} — share a cache
// entry. Workers is always excluded from the key: campaign results are
// bitwise identical at every worker count (the internal/parallel
// contract), so concurrency must not fork the cache.
type CampaignParams struct {
	// Fast selects the scaled-down FastOptions preset. Normalization folds
	// its effects into Replications/BudgetSec/AppScale and clears it.
	Fast bool `json:"fast,omitempty"`
	// Procs is the simulated machine's processor count (default 16).
	Procs int `json:"procs,omitempty"`
	// Replications per (mix, policy) cell (default 5; 2 under Fast).
	Replications int `json:"reps,omitempty"`
	// BudgetSec is the Table-1 per-run compute budget in seconds
	// (default 20; 4 under Fast). Used by table1 and future.
	BudgetSec float64 `json:"budget_sec,omitempty"`
	// AppScale shrinks applications for quick runs (default 1; 4 under
	// Fast).
	AppScale int `json:"app_scale,omitempty"`
	// Mix restricts compare to one workload mix (1-6, 0 = all six) and
	// selects the simulated mix for futuresim (default 5).
	Mix int `json:"mix,omitempty"`
	// Policies overrides the kind's default policy list, where the kind
	// has one (compare, future, futuresim).
	Policies []string `json:"policies,omitempty"`
	// MaxProduct bounds the future sweep's speed×cache axis (default 4096).
	MaxProduct float64 `json:"max_product,omitempty"`
	// Products lists the speed×cache points futuresim simulates
	// (default 1, 16, 64, 256, 1024).
	Products []float64 `json:"products,omitempty"`
	// Seed is the campaign root seed (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Engine selects the per-cell execution tier of the grid-shaped kinds
	// (compare, futuresim, and the comparison half of future): EngineSim,
	// EngineAnalytic, or EngineAuto; empty means EngineSim. Kinds without a
	// simulation grid always simulate and reject the other tiers. Engine is
	// part of the cache identity: analytic estimates and simulated results
	// never share a cache entry.
	Engine string `json:"engine,omitempty"`
	// Workers bounds concurrent simulation cells (0 = all CPUs). Never
	// part of the cache key.
	Workers int `json:"workers,omitempty"`
}

// options folds the params into an Options value. Zero means default;
// negative values are rejected rather than silently defaulted, each named
// by its wire field path.
func (p CampaignParams) options() (Options, error) {
	switch {
	case p.Procs < 0:
		return Options{}, &ParamError{Field: "params.procs", Msg: "must be >= 0"}
	case p.Replications < 0:
		return Options{}, &ParamError{Field: "params.reps", Msg: "must be >= 0"}
	case p.BudgetSec < 0:
		return Options{}, &ParamError{Field: "params.budget_sec", Msg: "must be >= 0"}
	case p.AppScale < 0:
		return Options{}, &ParamError{Field: "params.app_scale", Msg: "must be >= 0"}
	case p.Workers < 0:
		return Options{}, &ParamError{Field: "params.workers", Msg: "must be >= 0"}
	}
	if _, err := normalizeEngine(p.Engine); err != nil {
		return Options{}, &ParamError{Field: "params.engine", Msg: err.Error()}
	}
	o := DefaultOptions()
	if p.Fast {
		o = FastOptions()
	}
	if p.Procs > 0 {
		o.Machine.Processors = p.Procs
	}
	if p.Replications > 0 {
		o.Replications = p.Replications
	}
	if p.BudgetSec > 0 {
		o.MeasureBudget = simtime.Seconds(p.BudgetSec)
	}
	if p.AppScale > 0 {
		o.AppScale = p.AppScale
	}
	if p.Seed != 0 {
		o.Seed = p.Seed
	}
	o.Workers = p.Workers
	o.Engine = p.Engine
	if err := o.Validate(); err != nil {
		return Options{}, err
	}
	return o, nil
}

// optionsCtx is options plus the context's stats collector (if any): a
// caller that wrapped ctx with obs.WithCollector — the daemon does, per
// job — gets per-run simulation stats folded into it as the campaign
// executes. The collector rides out-of-band: it is not a params field,
// so it can never reach a cache key or a result body.
func (p CampaignParams) optionsCtx(ctx context.Context) (Options, error) {
	o, err := p.options()
	if err != nil {
		return Options{}, err
	}
	o.Stats = obs.CollectorFrom(ctx)
	return o, nil
}

// Campaign is one registered campaign kind: a name, a human description,
// and a dispatch function. Every experiment the repo can run is reachable
// through this one interface; the service, and any future batch or queue
// front end, needs no per-kind code.
type Campaign struct {
	// Kind is the wire name ("table1", "compare", ...).
	Kind string
	// Description is a one-line summary for listings.
	Description string
	run         func(ctx context.Context, p CampaignParams) (any, error)
}

// Run normalizes and validates p, then executes the campaign. The result
// is a JSON-marshalable value whose encoding is deterministic under
// report.CanonicalJSON. A cancelled ctx stops scheduling new simulation
// cells promptly and returns ctx's error.
func (c Campaign) Run(ctx context.Context, p CampaignParams) (any, error) {
	np, err := c.Normalize(p)
	if err != nil {
		return nil, err
	}
	return c.run(ctx, np)
}

// Normalize returns p with every default made explicit and every field
// the kind does not consume zeroed, validating the result. Normalized
// params are the canonical identity of a campaign: hash them (minus
// Workers, which Normalize preserves but cache keys must zero) and two
// semantically identical requests collide onto one cache entry.
func (c Campaign) Normalize(p CampaignParams) (CampaignParams, error) {
	o, err := p.options()
	if err != nil {
		return CampaignParams{}, err
	}
	n := CampaignParams{
		Procs:        o.Machine.Processors,
		Replications: o.Replications,
		AppScale:     o.AppScale,
		Seed:         o.Seed,
		Workers:      p.Workers,
	}
	// The engine tier only exists on the kinds with a simulation grid; the
	// others always simulate and must not silently accept (and then ignore)
	// a request for the analytic tier. ValidateEngine is the single gate —
	// the CLIs call it too, so a flag and a request body fail identically.
	engine := o.engine()
	if err := ValidateEngine(c.Kind, engine); err != nil {
		return CampaignParams{}, err
	}
	switch c.Kind {
	case "compare", "future", "futuresim":
		n.Engine = engine
	}
	// Per-kind knobs: only the fields the kind's driver reads survive.
	switch c.Kind {
	case "table1":
		n.BudgetSec = o.MeasureBudget.SecondsF()
		n.Replications = 0 // table1 has no replication axis
		n.AppScale = 0     // measurement patterns are not app-scaled
	case "characterize":
	case "relatedwork":
	case "compare":
		if p.Mix != 0 {
			if _, err := workload.MixByNumber(p.Mix); err != nil {
				return CampaignParams{}, &ParamError{Field: "params.mix", Msg: err.Error()}
			}
			n.Mix = p.Mix
		}
		n.Policies = p.Policies
		if len(n.Policies) == 0 {
			n.Policies = defaultComparePolicies()
		}
	case "future":
		n.BudgetSec = o.MeasureBudget.SecondsF()
		n.Policies = p.Policies
		if len(n.Policies) == 0 {
			n.Policies = defaultDynamicPolicies()
		}
		n.MaxProduct = p.MaxProduct
		if n.MaxProduct == 0 {
			n.MaxProduct = 4096
		}
		if n.MaxProduct < 1 {
			return CampaignParams{}, &ParamError{Field: "params.max_product",
				Msg: fmt.Sprintf("must be >= 1, got %v", n.MaxProduct)}
		}
	case "futuresim":
		n.Mix = p.Mix
		if n.Mix == 0 {
			n.Mix = 5
		}
		if _, err := workload.MixByNumber(n.Mix); err != nil {
			return CampaignParams{}, &ParamError{Field: "params.mix", Msg: err.Error()}
		}
		n.Policies = p.Policies
		if len(n.Policies) == 0 {
			n.Policies = defaultDynamicPolicies()
		}
		n.Products = p.Products
		if len(n.Products) == 0 {
			n.Products = []float64{1, 16, 64, 256, 1024}
		}
		for i, prod := range n.Products {
			if prod < 1 {
				return CampaignParams{}, &ParamError{Field: fmt.Sprintf("params.products[%d]", i),
					Msg: fmt.Sprintf("product %v below 1", prod)}
			}
		}
	default:
		return CampaignParams{}, fmt.Errorf("experiments: unknown campaign kind %q", c.Kind)
	}
	for i, pol := range n.Policies {
		if _, ok := core.ByName(pol); !ok {
			return CampaignParams{}, &ParamError{Field: fmt.Sprintf("params.policies[%d]", i),
				Msg: fmt.Sprintf("unknown policy %q", pol)}
		}
	}
	return n, nil
}

func defaultComparePolicies() []string {
	return []string{"Equipartition", "Dynamic", "Dyn-Aff", "Dyn-Aff-Delay", "Dyn-Aff-NoPri"}
}

func defaultDynamicPolicies() []string {
	return []string{"Dynamic", "Dyn-Aff", "Dyn-Aff-Delay"}
}

// campaignRegistry lists every campaign kind, in the order listings show
// them (paper order).
var campaignRegistry = []Campaign{
	{
		Kind:        "characterize",
		Description: "Figures 2-4: per-application parallelism characteristics, measured in isolation",
		run:         runCharacterizeCampaign,
	},
	{
		Kind:        "table1",
		Description: "Table 1: per-switch cache penalties P^A and P^NA by application and rescheduling interval",
		run:         runTable1Campaign,
	},
	{
		Kind:        "compare",
		Description: "Figures 5-6, Tables 3-4: policy comparison across the six workload mixes",
		run:         runCompareCampaign,
	},
	{
		Kind:        "future",
		Description: "Figures 8-13: analytic model sweep over future speed*cache products",
		run:         runFutureCampaign,
	},
	{
		Kind:        "futuresim",
		Description: "Section 7 validation: directly simulated scaled machines vs the analytic model",
		run:         runFutureSimCampaign,
	},
	{
		Kind:        "relatedwork",
		Description: "Section 8: affinity gains under time sharing vs space sharing",
		run:         runRelatedWorkCampaign,
	},
}

// Campaigns returns the registered campaigns in listing order.
func Campaigns() []Campaign {
	out := make([]Campaign, len(campaignRegistry))
	copy(out, campaignRegistry)
	return out
}

// CampaignByKind looks a campaign up by its wire name.
func CampaignByKind(kind string) (Campaign, bool) {
	for _, c := range campaignRegistry {
		if c.Kind == kind {
			return c, true
		}
	}
	return Campaign{}, false
}

// ---- JSON result shapes ------------------------------------------------
//
// Campaign results are explicit wire structs rather than the drivers'
// internal types: internal types carry unexported state (stats.Sample),
// simulation-unit fields, and map keys that are not strings. The wire
// structs hold only strings, numbers, slices and string-keyed maps, so
// report.CanonicalJSON over them is total and byte-stable.

// Table1CampaignResult is the table1 kind's result.
type Table1CampaignResult struct {
	// QsMs lists the rescheduling intervals in milliseconds, ascending.
	QsMs []float64 `json:"qs_ms"`
	// Apps lists the measured applications in protocol order.
	Apps []string `json:"apps"`
	// Cells maps Q (formatted as in QsMs, e.g. "400") then measured
	// application to its penalties.
	Cells map[string]map[string]Table1CampaignCell `json:"cells"`
}

// Table1CampaignCell is one (Q, application) cell: penalties in
// microseconds per switch, as in the paper's Table 1.
type Table1CampaignCell struct {
	PNAMicros float64            `json:"pna_us"`
	PAMicros  map[string]float64 `json:"pa_us"`
}

func runTable1Campaign(ctx context.Context, p CampaignParams) (any, error) {
	opts, err := p.optionsCtx(ctx)
	if err != nil {
		return nil, err
	}
	t1, err := Table1Ctx(ctx, opts)
	if err != nil {
		return nil, err
	}
	out := Table1CampaignResult{
		Apps:  append([]string(nil), t1.Apps...),
		Cells: make(map[string]map[string]Table1CampaignCell, len(t1.Qs)),
	}
	qs := append([]simtime.Duration(nil), t1.Qs...)
	sort.Slice(qs, func(i, j int) bool { return qs[i] < qs[j] })
	for _, q := range qs {
		out.QsMs = append(out.QsMs, q.Millis())
		cells := make(map[string]Table1CampaignCell, len(t1.Apps))
		for app, pen := range t1.Cells[q] {
			cell := Table1CampaignCell{
				PNAMicros: pen.PNA.Micros(),
				PAMicros:  make(map[string]float64, len(pen.PA)),
			}
			for iv, d := range pen.PA {
				cell.PAMicros[iv] = d.Micros()
			}
			cells[app] = cell
		}
		out.Cells[fmt.Sprintf("%g", q.Millis())] = cells
	}
	return out, nil
}

// CharacterizeCampaignResult is the characterize kind's result.
type CharacterizeCampaignResult struct {
	Apps []AppCharacter `json:"apps"`
}

func runCharacterizeCampaign(ctx context.Context, p CampaignParams) (any, error) {
	opts, err := p.optionsCtx(ctx)
	if err != nil {
		return nil, err
	}
	chars, err := CharacterizeCtx(ctx, opts)
	if err != nil {
		return nil, err
	}
	return CharacterizeCampaignResult{Apps: chars}, nil
}

// CompareCampaignRow is one (mix, policy, job) outcome of the compare
// kind, in replication-averaged units.
type CompareCampaignRow struct {
	Mix       int     `json:"mix"`
	Policy    string  `json:"policy"`
	Job       int     `json:"job"`
	App       string  `json:"app"`
	MeanRTSec float64 `json:"mean_rt_sec"`
	// RelRT is MeanRTSec divided by the same job's Equipartition mean;
	// 0 when Equipartition is not in the policy list.
	RelRT         float64 `json:"rel_rt,omitempty"`
	WorkSec       float64 `json:"work_sec"`
	WasteSec      float64 `json:"waste_sec"`
	MissSec       float64 `json:"miss_sec"`
	SwitchSec     float64 `json:"switch_sec"`
	AvgAlloc      float64 `json:"avg_alloc"`
	Reallocations float64 `json:"reallocations"`
	PctAffinity   float64 `json:"pct_affinity"`
	IntervalMs    float64 `json:"realloc_interval_ms"`
}

// CompareCampaignResult is the compare kind's result: rows ordered by
// (mix, policy, job) with policies in request order.
type CompareCampaignResult struct {
	Mixes    []int                `json:"mixes"`
	Policies []string             `json:"policies"`
	Rows     []CompareCampaignRow `json:"rows"`
}

func runCompareCampaign(ctx context.Context, p CampaignParams) (any, error) {
	opts, err := p.optionsCtx(ctx)
	if err != nil {
		return nil, err
	}
	mixes := workload.Mixes()
	if p.Mix != 0 {
		m, err := workload.MixByNumber(p.Mix)
		if err != nil {
			return nil, err
		}
		mixes = []workload.Mix{m}
	}
	cr, err := ComparePoliciesCtx(ctx, opts, mixes, p.Policies)
	if err != nil {
		return nil, err
	}
	return compareResultJSON(cr)
}

// compareResultJSON flattens a CompareResult into the wire shape.
func compareResultJSON(cr *CompareResult) (CompareCampaignResult, error) {
	out := CompareCampaignResult{Policies: append([]string(nil), cr.Policies...)}
	hasBaseline := false
	for _, pol := range cr.Policies {
		if pol == "Equipartition" {
			hasBaseline = true
		}
	}
	for _, mix := range cr.Mixes {
		out.Mixes = append(out.Mixes, mix.Number)
		for _, pol := range cr.Policies {
			var rel []float64
			if hasBaseline {
				var err error
				rel, err = cr.Relative(mix.Number, pol, "Equipartition")
				if err != nil {
					return CompareCampaignResult{}, err
				}
			}
			for ji, js := range cr.Summaries[mix.Number][pol] {
				row := CompareCampaignRow{
					Mix:           mix.Number,
					Policy:        pol,
					Job:           ji,
					App:           js.App,
					MeanRTSec:     js.MeanRT(),
					WorkSec:       js.WorkSec,
					WasteSec:      js.WasteSec,
					MissSec:       js.MissSec,
					SwitchSec:     js.SwitchSec,
					AvgAlloc:      js.AvgAlloc,
					Reallocations: js.Reallocations,
					PctAffinity:   js.PctAffinity,
					IntervalMs:    js.IntervalMs,
				}
				if rel != nil {
					row.RelRT = rel[ji]
				}
				out.Rows = append(out.Rows, row)
			}
		}
	}
	return out, nil
}

// FutureCampaignSweep is one policy's model sweep within one scenario.
type FutureCampaignSweep struct {
	Policy string `json:"policy"`
	// RelRT[i] is the predicted relative response time at Products[i].
	RelRT []float64 `json:"rel_rt"`
	// Crossover is the speed×cache product at which the policy's relative
	// RT reaches 1.0 (0 = never within the sweep).
	Crossover float64 `json:"crossover"`
}

// FutureCampaignScenario is one (mix, application) scenario of the future
// kind.
type FutureCampaignScenario struct {
	Mix      int                   `json:"mix"`
	App      string                `json:"app"`
	Policies []FutureCampaignSweep `json:"policies"`
}

// FutureCampaignResult is the future kind's result: the analytic model's
// relative response times over the product axis, per scenario.
type FutureCampaignResult struct {
	Products  []float64                `json:"products"`
	Scenarios []FutureCampaignScenario `json:"scenarios"`
}

func runFutureCampaign(ctx context.Context, p CampaignParams) (any, error) {
	opts, err := p.optionsCtx(ctx)
	if err != nil {
		return nil, err
	}
	cr, err := ComparePoliciesCtx(ctx, opts, workload.Mixes(), withBaseline(p.Policies))
	if err != nil {
		return nil, err
	}
	t1, err := Table1Ctx(ctx, opts)
	if err != nil {
		return nil, err
	}
	scen, err := FutureScenarios(cr, t1)
	if err != nil {
		return nil, err
	}
	return futureResultJSON(ctx, scen, p)
}

// withBaseline returns policies with Equipartition prepended unless it is
// already present: the future model needs the baseline's summaries, but
// listing it twice would simulate its cells — the most expensive in the
// sweep — twice over.
func withBaseline(policies []string) []string {
	for _, pol := range policies {
		if pol == "Equipartition" {
			return policies
		}
	}
	return append([]string{"Equipartition"}, policies...)
}

// futureResultJSON sweeps every scenario over the product axis into the
// wire shape, scenarios sorted by (mix, app).
func futureResultJSON(ctx context.Context, scen map[ScenarioKey]model.Scenario, p CampaignParams) (FutureCampaignResult, error) {
	products := model.Products(p.MaxProduct, 2)
	keys := make([]ScenarioKey, 0, len(scen))
	for k := range scen {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Mix != keys[j].Mix {
			return keys[i].Mix < keys[j].Mix
		}
		return keys[i].App < keys[j].App
	})
	out := FutureCampaignResult{Products: products}
	for _, k := range keys {
		if err := ctx.Err(); err != nil {
			return FutureCampaignResult{}, err
		}
		sc := scen[k]
		entry := FutureCampaignScenario{Mix: k.Mix, App: k.App}
		for _, pol := range p.Policies {
			if _, ok := sc.Policies[pol]; !ok {
				continue
			}
			ys, err := sc.SweepProduct(pol, products)
			if err != nil {
				return FutureCampaignResult{}, err
			}
			cross, err := sc.Crossover(pol, products)
			if err != nil {
				return FutureCampaignResult{}, err
			}
			entry.Policies = append(entry.Policies, FutureCampaignSweep{
				Policy: pol, RelRT: ys, Crossover: cross,
			})
		}
		out.Scenarios = append(out.Scenarios, entry)
	}
	return out, nil
}

// FutureSimCampaignPoint is one simulated product point.
type FutureSimCampaignPoint struct {
	Product float64 `json:"product"`
	// SimRel maps policy to the simulated relative response time.
	SimRel map[string]float64 `json:"sim_rel"`
}

// FutureSimCampaignResult is the futuresim kind's result.
type FutureSimCampaignResult struct {
	Mix      int                      `json:"mix"`
	Policies []string                 `json:"policies"`
	Points   []FutureSimCampaignPoint `json:"points"`
}

func runFutureSimCampaign(ctx context.Context, p CampaignParams) (any, error) {
	opts, err := p.optionsCtx(ctx)
	if err != nil {
		return nil, err
	}
	mix, err := workload.MixByNumber(p.Mix)
	if err != nil {
		return nil, err
	}
	pts, err := FutureSimulatedCtx(ctx, opts, mix, p.Policies, p.Products)
	if err != nil {
		return nil, err
	}
	out := FutureSimCampaignResult{Mix: p.Mix, Policies: append([]string(nil), p.Policies...)}
	for _, pt := range pts {
		out.Points = append(out.Points, FutureSimCampaignPoint{Product: pt.Product, SimRel: pt.SimRel})
	}
	return out, nil
}

// RelatedWorkCampaignResult is the relatedwork kind's result; the inner
// type already exposes only JSON-safe fields.
type RelatedWorkCampaignResult struct {
	Result *RelatedWorkResult `json:"result"`
}

func runRelatedWorkCampaign(ctx context.Context, p CampaignParams) (any, error) {
	opts, err := p.optionsCtx(ctx)
	if err != nil {
		return nil, err
	}
	rw, err := RelatedWorkCtx(ctx, opts)
	if err != nil {
		return nil, err
	}
	return RelatedWorkCampaignResult{Result: rw}, nil
}
